// Figure 7: F1 for entity pairs with different numbers of supporting
// sentences. The paper buckets by "# training sentences"; with disjoint
// train/test pair splits the analogous quantity for a held-out pair is the
// number of sentences in its own bag (how much textual evidence the model
// gets). The paper's finding holds in that form: PCNN+ATT degrades sharply
// on sparse bags while PA-TMR is propped up by the implicit mutual
// relations — the gap is widest at 1-2 sentences.
//
// A third column applies the serve tier's kNN-interpolated predictor
// (re::KnnPredictor over the ANN index) to the PA-TMR posteriors: training
// pairs' MR vectors vote on gate-failing test bags, which is exactly the
// sparse-bag regime this figure isolates.
#include <cstdio>

#include "bench_common.h"
#include "eval/buckets.h"
#include "re/knn_predictor.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace imr::bench {
namespace {

int BucketBySentences(const re::Bag& bag) {
  const size_t n = bag.sentences.size();
  if (n <= 1) return 0;
  if (n <= 2) return 1;
  if (n <= 4) return 2;
  if (n <= 8) return 3;
  return 4;
}

// Blends the kNN vote into each test bag's posterior (rows whose pair has
// no MR vector, or where the model clears the gate, pass through).
std::vector<std::vector<float>> KnnInterpolateScores(
    const PreparedData& data, const std::vector<std::vector<float>>& scores,
    int* fired) {
  re::KnnOptions options;
  const re::KnnPredictor knn = re::KnnPredictor::Build(
      data.embeddings, data.bags->train_bags(), data.bags->num_relations(),
      options, &util::GlobalPool());
  const auto& bags = data.bags->test_bags();
  std::vector<std::vector<float>> blended = scores;
  *fired = 0;
  for (size_t i = 0; i < blended.size() && i < bags.size(); ++i) {
    const re::Bag& bag = bags[i];
    if (static_cast<int>(bag.mutual_relation.size()) != knn.dim()) continue;
    if (static_cast<int>(blended[i].size()) != knn.num_relations()) continue;
    if (knn.Interpolate(bag.mutual_relation.data(), &blended[i])) ++(*fired);
  }
  return blended;
}

}  // namespace

int Run(const BenchContext& context) {
  std::printf("=== Figure 7: F1 by number of supporting sentences ===\n\n");
  const std::vector<std::string> labels = {"1", "2", "3-4", "5-8", ">8"};
  std::vector<std::vector<std::string>> tsv_rows;
  tsv_rows.push_back({"dataset", "sentences", "bags", "f1_pcnn_att",
                      "f1_pa_tmr", "f1_pa_tmr_knn"});
  for (const std::string& preset : {std::string("nyt"), std::string("gds")}) {
    PreparedData data = PrepareData(preset, context);
    const auto& bags = data.bags->test_bags();
    auto baseline =
        ResultFromScores(GetOrComputeScores("PCNN+ATT", data, context), data);
    const auto our_scores = GetOrComputeScores("PA-TMR", data, context);
    auto ours = ResultFromScores(our_scores, data);
    int knn_fired = 0;
    auto knn_result = ResultFromScores(
        KnnInterpolateScores(data, our_scores, &knn_fired), data);
    auto baseline_buckets =
        eval::F1ByBucket(bags, baseline.gold_labels,
                         baseline.hard_predictions, labels,
                         BucketBySentences);
    auto our_buckets =
        eval::F1ByBucket(bags, ours.gold_labels, ours.hard_predictions,
                         labels, BucketBySentences);
    auto knn_buckets =
        eval::F1ByBucket(bags, knn_result.gold_labels,
                         knn_result.hard_predictions, labels,
                         BucketBySentences);

    std::printf("--- %s ---\n", preset == "nyt" ? "NYT" : "GDS");
    std::printf("(kNN vote fired on %d/%zu test bags)\n", knn_fired,
                bags.size());
    std::printf("%-10s %6s %14s %12s %14s %8s\n", "#sent", "bags",
                "PCNN+ATT F1", "PA-TMR F1", "PA-TMR+kNN F1", "gap");
    for (size_t b = 0; b < labels.size(); ++b) {
      const double gap =
          our_buckets.scores[b].f1 - baseline_buckets.scores[b].f1;
      std::printf("%-10s %6lld %14.4f %12.4f %14.4f %+8.4f\n",
                  labels[b].c_str(),
                  static_cast<long long>(our_buckets.bag_counts[b]),
                  baseline_buckets.scores[b].f1, our_buckets.scores[b].f1,
                  knn_buckets.scores[b].f1, gap);
      tsv_rows.push_back(
          {preset, labels[b], std::to_string(our_buckets.bag_counts[b]),
           util::StrFormat("%.4f", baseline_buckets.scores[b].f1),
           util::StrFormat("%.4f", our_buckets.scores[b].f1),
           util::StrFormat("%.4f", knn_buckets.scores[b].f1)});
    }
    std::printf("\n");
  }
  std::printf("Expected shape (paper Fig. 7): both models improve with more "
              "sentences; PA-TMR's\nlead is largest for the sparsest bags, "
              "and the kNN vote moves sparse buckets\nwithout disturbing "
              "dense (gate-clearing) ones.\n");
  WriteTsv(context, "fig7_sparse_pairs", tsv_rows);
  return 0;
}

}  // namespace imr::bench

int main(int argc, char** argv) {
  return imr::bench::BenchMain(argc, argv, imr::bench::Run);
}
