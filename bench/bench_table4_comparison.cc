// Table IV: AUC / Precision / Recall / F1 (at the max-F1 point) / P@100 /
// P@200 for every method on both datasets, plus the Table III
// hyper-parameter block. Reuses the score matrices cached by
// bench_fig4_pr_curves when present.
//
// The paper reports each metric as the average of five runs; set the
// IMR_TABLE4_RUNS=5 environment variable to reproduce that protocol (each
// run re-generates the dataset and re-trains under a shifted seed;
// results are cached per seed).
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench_common.h"
#include "eval/aggregate.h"
#include "util/string_util.h"

namespace imr::bench {
namespace {

const std::vector<std::string>& TableModels() {
  static const std::vector<std::string>& kModels =
      *new std::vector<std::string>{"Mintz",  "MultiR",   "MIMLRE",
                                    "PCNN",   "PCNN+ATT", "BGWA",
                                    "CNN+RL", "PA-T",     "PA-MR",
                                    "PA-TMR"};
  return kModels;
}

void PrintTable3() {
  std::printf("--- Table III: model hyper-parameters ---\n");
  std::printf("  %-34s %s\n", "Embedding vector size ke", "128");
  std::printf("  %-34s %s\n", "Entity type embedding size kt",
              "20 (8 in fast bench dims)");
  std::printf("  %-34s %s\n", "Window size l", "3");
  std::printf("  %-34s %s\n", "CNN filters k", "230 (32 in fast bench dims)");
  std::printf("  %-34s %s\n", "POS embedding dim kp",
              "5 (3 in fast bench dims)");
  std::printf("  %-34s %s\n", "Word embedding dim kw",
              "50 (16 in fast bench dims)");
  std::printf("  %-34s %s\n", "Dropout p", "0.5");
  std::printf("  %-34s %s\n", "Sentence max length",
              "120 (40 in fast bench dims)");
  std::printf("  %-34s %s\n", "Optimizer",
              "Adam lr 0.01 (paper: SGD lr 0.3; see EXPERIMENTS.md)");
  std::printf("\n");
}

int RunCount() {
  const char* env = std::getenv("IMR_TABLE4_RUNS");
  if (env == nullptr) return 1;
  const int runs = std::atoi(env);
  return runs > 0 ? runs : 1;
}

}  // namespace

int Run(const BenchContext& context) {
  const int runs = RunCount();
  std::printf("=== Table IV: performance comparison (%d run%s) ===\n\n",
              runs, runs == 1 ? "" : "s, mean +/- stddev");
  PrintTable3();
  std::vector<std::vector<std::string>> tsv_rows;
  tsv_rows.push_back({"dataset", "model", "auc", "auc_std", "precision",
                      "recall", "f1", "p@100", "p@200", "runs"});
  for (const std::string& preset : {std::string("nyt"), std::string("gds")}) {
    std::printf("--- %s ---\n", preset == "nyt" ? "NYT" : "GDS");
    std::printf("%-10s %14s %10s %8s %9s %7s %7s\n", "Method", "AUC",
                "Precision", "Recall", "F1-Score", "P@100", "P@200");
    std::map<std::string, eval::RunStats> stats;
    for (int run = 0; run < runs; ++run) {
      BenchContext run_context = context;
      run_context.seed = context.seed + 1000ull * run;
      PreparedData data = PrepareData(preset, run_context);
      for (const std::string& model : TableModels()) {
        auto scores = GetOrComputeScores(model, data, run_context);
        stats[model].AddResult(ResultFromScores(scores, data));
      }
    }
    for (const std::string& model : TableModels()) {
      const eval::RunStats& model_stats = stats[model];
      const auto auc = model_stats.Summary("auc");
      const auto precision = model_stats.Summary("precision");
      const auto recall = model_stats.Summary("recall");
      const auto f1 = model_stats.Summary("f1");
      const auto p100 = model_stats.Summary("p@100");
      const auto p200 = model_stats.Summary("p@200");
      std::printf("%-10s %8.4f", model.c_str(), auc.mean);
      if (runs > 1)
        std::printf("+-%.3f", auc.stddev);
      else
        std::printf("      ");
      std::printf(" %10.4f %8.4f %9.4f %7.2f %7.2f\n", precision.mean,
                  recall.mean, f1.mean, p100.mean, p200.mean);
      tsv_rows.push_back({preset, model,
                          util::StrFormat("%.4f", auc.mean),
                          util::StrFormat("%.4f", auc.stddev),
                          util::StrFormat("%.4f", precision.mean),
                          util::StrFormat("%.4f", recall.mean),
                          util::StrFormat("%.4f", f1.mean),
                          util::StrFormat("%.2f", p100.mean),
                          util::StrFormat("%.2f", p200.mean),
                          std::to_string(runs)});
    }
    std::printf("\n");
  }
  std::printf("Expected shape (paper Table IV): PA-TMR best AUC on both "
              "datasets; PA-MR and PA-T\nbeat PCNN+ATT; PCNN trails every "
              "attention/RL model; gains are larger on GDS.\n");
  std::printf("(set IMR_TABLE4_RUNS=5 for the paper's five-run average)\n");
  WriteTsv(context, "table4_comparison", tsv_rows);
  return 0;
}

}  // namespace imr::bench

int main(int argc, char** argv) {
  return imr::bench::BenchMain(argc, argv, imr::bench::Run);
}
