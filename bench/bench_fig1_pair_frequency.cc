// Figure 1: number of entity pairs per co-occurrence-frequency range in
// the distant-supervision training corpora (log-scale y in the paper).
// Reproduces the long-tail shape: the overwhelming majority of pairs have
// fewer than 10 training sentences.
#include <cstdio>

#include "bench_common.h"
#include "datagen/stats.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace imr::bench {
int Run(const BenchContext& context) {
  std::printf("=== Figure 1: entity pairs per training-frequency range ===\n");
  std::printf("(paper: >90%% of GDS pairs and even more NYT pairs have <10 "
              "sentences)\n\n");
  std::vector<std::vector<std::string>> tsv_rows;
  tsv_rows.push_back({"dataset", "bucket", "pairs", "share"});
  for (const std::string& preset : {std::string("nyt"), std::string("gds")}) {
    datagen::PresetOptions options;
    options.scale = context.scale(preset);
    options.seed = context.seed;
    datagen::SyntheticDataset dataset =
        datagen::MakeDataset(preset, options);
    datagen::PairCounts counts = datagen::CountPairs(dataset.corpus.train);
    datagen::FrequencyHistogram histogram = datagen::HistogramOf(counts);
    int64_t total = 0;
    for (int64_t bucket : histogram.buckets) total += bucket;

    std::printf("%s (train):\n", preset == "nyt" ? "NYT" : "GDS");
    std::printf("  %-8s %10s %8s\n", "range", "pairs", "share");
    double small_share = 0;
    for (int b = 0; b < datagen::FrequencyHistogram::kNumBuckets; ++b) {
      const double share =
          total > 0 ? 100.0 * histogram.buckets[b] / total : 0.0;
      if (b <= 1) small_share += share;
      std::printf("  %-8s %10lld %7.1f%%\n",
                  datagen::FrequencyHistogram::BucketLabel(b),
                  static_cast<long long>(histogram.buckets[b]), share);
      tsv_rows.push_back({preset,
                          datagen::FrequencyHistogram::BucketLabel(b),
                          std::to_string(histogram.buckets[b]),
                          util::StrFormat("%.3f", share / 100.0)});
    }
    std::printf("  pairs with <10 sentences: %.1f%%\n\n", small_share);
  }
  WriteTsv(context, "fig1_pair_frequency", tsv_rows);
  return 0;
}

}  // namespace imr::bench

int main(int argc, char** argv) {
  return imr::bench::BenchMain(argc, argv, imr::bench::Run);
}
