// Shared infrastructure for the table/figure harnesses: dataset
// preparation (world + corpora + proximity graph + LINE embeddings), the
// model zoo keyed by the names the paper uses, and on-disk caching of
// per-bag score matrices so benches can reuse each other's training runs
// (bench_fig4 trains; bench_table4 / fig6 / fig7 reload).
#ifndef IMR_BENCH_BENCH_COMMON_H_
#define IMR_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "datagen/presets.h"
#include "eval/heldout.h"
#include "graph/embedding_store.h"
#include "graph/line.h"
#include "graph/proximity_graph.h"
#include "re/bag_dataset.h"
#include "re/config.h"
#include "util/flags.h"

namespace imr::bench {

struct BenchContext {
  std::string results_dir = "bench_results";
  double scale_gds = 2.0;
  double scale_nyt = 1.0;
  int epochs_gds = 60;
  int epochs_nyt = 40;
  int batch_size = 32;   // smaller than the paper's 160: tiny corpora need
                         // more SGD updates per epoch
  bool paper_dims = false;  // Table III dims instead of the fast bench dims
  bool no_cache = false;
  uint64_t seed = 7;

  double scale(const std::string& preset) const;
  int epochs(const std::string& preset) const;
};

/// Registers the shared flags; call Parse yourself, then FromFlags.
void RegisterCommonFlags(util::FlagParser* flags);
BenchContext ContextFromFlags(const util::FlagParser& flags);

/// Everything a bench needs for one dataset.
struct PreparedData {
  std::string preset;  // "nyt" | "gds"
  std::unique_ptr<datagen::SyntheticDataset> dataset;
  std::unique_ptr<re::BagDataset> bags;
  std::unique_ptr<graph::ProximityGraph> proximity;
  graph::EmbeddingStore embeddings;
};

/// Generates the dataset, builds the proximity graph from the unlabeled
/// corpus, trains (or cache-loads) the LINE embeddings, attaches MR
/// vectors to the bags.
PreparedData PrepareData(const std::string& preset,
                         const BenchContext& context);

/// The paper's model zoo. Valid names: Mintz, MultiR, PCNN, PCNN+ATT,
/// CNN+ATT, GRU+ATT, BGWA, CNN+RL, PA-T, PA-MR, PA-TMR, and the Fig. 5
/// "+TMR" variants CNN+ATT+TMR, GRU+ATT+TMR, PCNN+TMR, PCNN+ATT+TMR.
std::vector<std::string> AllModelNames();

/// Trains `model_name` on the prepared data (or loads the cached scores)
/// and returns the [num_test_bags x num_relations] probability matrix.
std::vector<std::vector<float>> GetOrComputeScores(
    const std::string& model_name, const PreparedData& data,
    const BenchContext& context);

/// Re-runs the held-out evaluation from a score matrix.
eval::HeldOutResult ResultFromScores(
    const std::vector<std::vector<float>>& scores, const PreparedData& data);

/// Writes rows to <results_dir>/<name>.tsv (logs a warning on IO errors).
void WriteTsv(const BenchContext& context, const std::string& name,
              const std::vector<std::vector<std::string>>& rows);

/// Standard bench entry point: registers flags, parses argv, runs `run`.
int BenchMain(int argc, char** argv, int (*run)(const BenchContext&));

}  // namespace imr::bench

#endif  // IMR_BENCH_BENCH_COMMON_H_
