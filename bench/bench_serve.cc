// Serving benchmark: trains a small PA-TMR pipeline, snapshots it, and
// drives the serve tier through a scenario matrix:
//
//   engine-*   the bare InferenceEngine (pre-router behavior): sync t1 is
//              the single-client latency floor, batch t4 oversubscribes
//              the cores and shows the tail blowup the router exists to
//              fix (~50x p99 on a 1-core host)
//   router-*   ServeRouter cells: {sync, batch, async} x replicas {1, 4}
//              x cache shards {1, 8}, total worker count pinned at 4, plus
//              int8-quantized variants. Admission control bounds
//              concurrent forwards to the core count, so queue wait stays
//              out of the forwards and p99 stays near the floor.
//   shed       a deadline-bounded router under deliberate overload:
//              demonstrates kUnavailable shedding past the SLO budget
//   hot-swap   sustained traffic while the snapshot is reloaded
//              repeatedly; the gate is ZERO failed requests
//   knn-swap   the same fire drill over ANNI-carrying snapshots: every
//              response is generation-stamped, the kNN vote fires on
//              gate-failing requests, and the gate is zero failed requests
//              plus zero out-of-range generation stamps
//   delta-swap the fire drill again, but every flip is an IMRD row-sparse
//              delta applied through ReloadDelta (copy-on-write block
//              aliasing) instead of a full snapshot load; chained base
//              hashes, zero failures, in-range generation stamps
//   reload     open/apply microbench at NYT entity scale (114042 x 50):
//              v1 parse-copy load vs v2 mmap open vs delta apply with
//              0.2% of rows touched
//
// Every cell reports p50/p99/p999/mean/max latency, qps, MR-cache hit
// rate, and admission counters into bench_results/BENCH_serve.json.
//
// SLO gates (exit nonzero on violation, in full and --smoke mode):
//   tail    router batch (4 workers, 8 shards) p99 <= 10x the
//           single-thread engine sync p99
//   cache   sharded (8-way) hit rate >= single-shard hit rate - 0.02 on
//           the same Zipf replay
//   swap    zero failed requests across all hot swaps under load
//   int8    quantized top-1 agreement >= 99.5%, max |prob delta| <= 0.05
//   reload  v2 mmap open >= 5x faster than v1 parse-copy load; delta
//           apply (0.2% rows) >= 10x faster than v1 parse-copy load
//   dswap   zero failed requests and zero out-of-range generation stamps
//           across all ReloadDelta flips under load
//
// --smoke runs a reduced replay (smaller preset, fewer epochs/requests)
// with only the gate-relevant cells; scripts/check.sh wires it in as the
// serve-smoke stage.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "imr.h"

namespace imr {
namespace {

void CheckOk(const util::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench_serve: %s\n", status.ToString().c_str());
    std::abort();
  }
}

struct Cell {
  std::string name;   // e.g. "router-batch r4 s8"
  std::string tier;   // "engine" | "router"
  std::string mode;   // "sync" | "batch" | "async"
  int replicas = 1;
  int shards = 1;
  int workers = 1;    // engine: pool threads; router: total worker threads
  bool quantized = false;
  serve::EngineStats stats;
  double hit_rate = 0.0;
  uint64_t ok = 0;
  uint64_t failed = 0;       // non-OK responses that were NOT expected
  uint64_t unavailable = 0;  // expected kUnavailable (shed / rejected)
  uint64_t reloads = 0;      // hot-swap cell only
  uint64_t bad_generation = 0;  // knn-swap cell: stamps outside [1, flips+1]
  uint64_t delta_reloads = 0;   // delta-swap cell: ReloadDelta applies
};

double HitRate(const serve::EngineStats& stats) {
  const uint64_t lookups = stats.mr_cache_hits + stats.mr_cache_misses;
  return lookups > 0
             ? static_cast<double>(stats.mr_cache_hits) /
                   static_cast<double>(lookups)
             : 0.0;
}

serve::Query BagToQuery(const re::Bag& bag,
                        const std::vector<text::LabeledSentence>& corpus) {
  serve::Query query;
  query.head = bag.head;
  query.tail = bag.tail;
  query.head_types = bag.head_types;
  query.tail_types = bag.tail_types;
  for (const text::LabeledSentence& labeled : corpus) {
    if (labeled.sentence.head_entity == bag.head &&
        labeled.sentence.tail_entity == bag.tail) {
      query.sentences.push_back(labeled.sentence);
      if (query.sentences.size() >= 4) break;  // cap bag size for latency
    }
  }
  return query;
}

// Pre-router baseline: the bare engine with an oversubscribed pool.
Cell RunEngineCell(const std::string& mode, int threads,
                   const std::string& snapshot_path,
                   const std::vector<serve::Query>& requests,
                   bool quantized) {
  serve::EngineOptions options;
  options.threads = threads;
  options.top_k = 1;
  options.quantized = quantized;
  options.cache_shards = 1;  // the old single-mutex cache shape
  auto engine = serve::InferenceEngine::Open(snapshot_path, options);
  CheckOk(engine.status());

  Cell cell;
  if (mode == "sync") {
    for (const serve::Query& query : requests) {
      auto prediction = (*engine)->Predict(query);
      CheckOk(prediction.status());
      ++cell.ok;
    }
  } else if (mode == "batch") {
    auto predictions = (*engine)->PredictBatch(requests);
    for (const auto& prediction : predictions) {
      CheckOk(prediction.status());
      ++cell.ok;
    }
  } else {  // async
    std::vector<std::future<util::StatusOr<serve::Prediction>>> futures;
    futures.reserve(requests.size());
    for (const serve::Query& query : requests)
      futures.push_back((*engine)->SubmitAsync(query));
    for (auto& future : futures) {
      CheckOk(future.get().status());
      ++cell.ok;
    }
  }
  cell.name = std::string(quantized ? "q-" : "") + "engine-" + mode + " t" +
              std::to_string(threads);
  cell.tier = "engine";
  cell.mode = mode;
  cell.workers = threads;
  cell.quantized = quantized;
  cell.stats = (*engine)->Stats();
  cell.hit_rate = HitRate(cell.stats);
  return cell;
}

// One router matrix cell. Total worker threads are pinned at
// max(4 / replicas, 1) * replicas so every configuration offers the same
// parallelism and the replica/shard axes isolate lock and queue effects.
Cell RunRouterCell(const std::string& mode, int replicas, int shards,
                   const std::string& snapshot_path,
                   const std::vector<serve::Query>& requests,
                   bool quantized) {
  serve::RouterOptions options;
  options.replicas = replicas;
  options.workers_per_replica = replicas < 4 ? 4 / replicas : 1;
  options.engine.top_k = 1;
  options.engine.cache_shards = static_cast<size_t>(shards);
  options.engine.quantized = quantized;
  auto router = serve::ServeRouter::Open(snapshot_path, options);
  CheckOk(router.status());

  Cell cell;
  const auto count = [&cell](const util::StatusOr<serve::Prediction>& r) {
    if (r.ok()) {
      ++cell.ok;
    } else if (r.status().code() == util::StatusCode::kUnavailable) {
      ++cell.unavailable;
    } else {
      ++cell.failed;
    }
  };
  if (mode == "sync") {
    for (const serve::Query& query : requests) count((*router)->Predict(query));
  } else if (mode == "batch") {
    for (const auto& result : (*router)->PredictBatch(requests)) count(result);
  } else {  // async
    std::vector<std::future<util::StatusOr<serve::Prediction>>> futures;
    futures.reserve(requests.size());
    for (const serve::Query& query : requests)
      futures.push_back((*router)->SubmitAsync(query));
    for (auto& future : futures) count(future.get());
  }
  cell.name = std::string(quantized ? "q-" : "") + "router-" + mode + " r" +
              std::to_string(replicas) + " s" + std::to_string(shards);
  cell.tier = "router";
  cell.mode = mode;
  cell.replicas = replicas;
  cell.shards = shards;
  cell.workers = options.workers_per_replica * replicas;
  cell.quantized = quantized;
  const serve::RouterStats stats = (*router)->Stats();
  cell.stats = stats.aggregate;
  cell.hit_rate = HitRate(cell.stats);
  return cell;
}

// Deadline-bounded router under deliberate overload: a 2ms queue budget
// against a many-requests burst sheds the backlog instead of serving it
// seconds late.
Cell RunShedCell(const std::string& snapshot_path,
                 const std::vector<serve::Query>& requests) {
  serve::RouterOptions options;
  options.replicas = 1;
  options.workers_per_replica = 1;
  options.engine.top_k = 1;
  options.engine.cache_shards = 8;
  options.admission.max_queue = 0;  // shedding, not door rejection
  options.admission.deadline_us = 2000;
  auto router = serve::ServeRouter::Open(snapshot_path, options);
  CheckOk(router.status());

  Cell cell;
  std::vector<std::future<util::StatusOr<serve::Prediction>>> futures;
  futures.reserve(requests.size());
  for (const serve::Query& query : requests)
    futures.push_back((*router)->SubmitAsync(query));
  for (auto& future : futures) {
    auto result = future.get();
    if (result.ok()) {
      ++cell.ok;
    } else if (result.status().code() == util::StatusCode::kUnavailable) {
      ++cell.unavailable;
    } else {
      ++cell.failed;
    }
  }
  cell.name = "router-shed r1 s8 d2000us";
  cell.tier = "router";
  cell.mode = "async";
  cell.replicas = 1;
  cell.shards = 8;
  cell.quantized = false;
  cell.stats = (*router)->Stats().aggregate;
  cell.hit_rate = HitRate(cell.stats);
  return cell;
}

// Hot swap under sustained load: traffic threads hammer the router while
// the main thread flips generations A<->B. The gate: zero failed
// requests (every response is OK and consistent with one generation).
Cell RunHotSwapCell(const std::string& snapshot_a,
                    const std::string& snapshot_b,
                    const std::vector<serve::Query>& requests, int flips) {
  serve::RouterOptions options;
  options.replicas = 2;
  options.workers_per_replica = 2;
  options.engine.top_k = 1;
  options.engine.cache_shards = 8;
  auto router = serve::ServeRouter::Open(snapshot_a, options);
  CheckOk(router.status());

  Cell cell;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok{0}, failed{0};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = (*router)->Predict(requests[i % requests.size()]);
        if (result.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        i += 2;
      }
    });
  }
  for (int flip = 0; flip < flips; ++flip) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    CheckOk((*router)->Reload(flip % 2 == 0 ? snapshot_b : snapshot_a));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (std::thread& t : traffic) t.join();

  cell.name = "router-hotswap r2 s8";
  cell.tier = "router";
  cell.mode = "sync";
  cell.replicas = 2;
  cell.shards = 8;
  cell.workers = 4;
  cell.ok = ok.load();
  cell.failed = failed.load();
  cell.reloads = static_cast<uint64_t>(flips);
  cell.stats = (*router)->Stats().aggregate;
  cell.hit_rate = HitRate(cell.stats);
  return cell;
}

// Hot swap over ANNI-carrying snapshots: traffic hammers the router while
// generations flip, and every response's generation stamp is range-checked
// (a stamp outside [1, flips+1] would mean a half-swapped or mixed-state
// response). The kNN vote fires per the predictor's confidence gate; the
// aggregate knn_fired counter proves the ANN index served under fire.
Cell RunKnnHotSwapCell(const std::string& snapshot_a,
                       const std::string& snapshot_b,
                       const std::vector<serve::Query>& requests, int flips) {
  serve::RouterOptions options;
  options.replicas = 2;
  options.workers_per_replica = 2;
  options.engine.top_k = 1;
  options.engine.cache_shards = 8;
  auto router = serve::ServeRouter::Open(snapshot_a, options);
  CheckOk(router.status());

  Cell cell;
  const uint64_t max_generation = static_cast<uint64_t>(flips) + 1;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok{0}, failed{0}, bad_generation{0};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = (*router)->Predict(requests[i % requests.size()]);
        if (result.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
          if (result->generation < 1 || result->generation > max_generation) {
            bad_generation.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        i += 2;
      }
    });
  }
  for (int flip = 0; flip < flips; ++flip) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    CheckOk((*router)->Reload(flip % 2 == 0 ? snapshot_b : snapshot_a));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (std::thread& t : traffic) t.join();

  cell.name = "router-knn-hotswap r2 s8";
  cell.tier = "router";
  cell.mode = "sync";
  cell.replicas = 2;
  cell.shards = 8;
  cell.workers = 4;
  cell.ok = ok.load();
  cell.failed = failed.load();
  cell.bad_generation = bad_generation.load();
  cell.reloads = static_cast<uint64_t>(flips);
  cell.stats = (*router)->Stats().aggregate;
  cell.hit_rate = HitRate(cell.stats);
  return cell;
}

// Hot swap where every flip is a row-sparse IMRD delta through
// ReloadDelta instead of a full snapshot load. The deltas are pre-chained
// off the serving generation's content hash (each applies on top of the
// previous result), so the cell also proves hash chaining holds under
// traffic. Gates: zero failed requests, zero out-of-range generation
// stamps, and every flip accounted as a delta reload.
Cell RunDeltaSwapCell(const std::string& snapshot_path,
                      const graph::EmbeddingStore& embeddings,
                      const re::PaModel& model,
                      const std::vector<serve::Query>& requests, int flips) {
  auto base = serve::LoadSnapshot(snapshot_path);
  CheckOk(base.status());
  graph::EmbeddingStore work(embeddings.num_vertices(), embeddings.dim());
  std::memcpy(work.Vector(0), embeddings.raw(),
              embeddings.value_count() * sizeof(float));
  uint64_t chain_hash = base->content_hash;
  std::vector<std::string> delta_paths;
  util::Rng rng(0xD17A);
  for (int flip = 0; flip < flips; ++flip) {
    serve::DeltaSpec spec;
    spec.include_quantized = false;  // base generation carries no QEMB
    for (int i = 0; i < 32; ++i) {
      const int row =
          static_cast<int>(rng.UniformInt(work.num_vertices()));
      spec.touched_rows.push_back(row);
      for (int d = 0; d < work.dim(); ++d) work.Vector(row)[d] += 0.01f;
    }
    const std::string path =
        "bench_results/serve_delta_" + std::to_string(flip) + ".imrd";
    auto result = serve::SaveDelta(chain_hash, work, &model, spec, path);
    CheckOk(result.status());
    chain_hash = *result;
    delta_paths.push_back(path);
  }

  serve::RouterOptions options;
  options.replicas = 2;
  options.workers_per_replica = 2;
  options.engine.top_k = 1;
  options.engine.cache_shards = 8;
  auto router = serve::ServeRouter::Open(snapshot_path, options);
  CheckOk(router.status());

  Cell cell;
  const uint64_t max_generation = static_cast<uint64_t>(flips) + 1;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok{0}, failed{0}, bad_generation{0};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = (*router)->Predict(requests[i % requests.size()]);
        if (result.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
          if (result->generation < 1 || result->generation > max_generation) {
            bad_generation.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        i += 2;
      }
    });
  }
  for (const std::string& path : delta_paths) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    CheckOk((*router)->ReloadDelta(path));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (std::thread& t : traffic) t.join();

  cell.name = "router-delta-swap r2 s8";
  cell.tier = "router";
  cell.mode = "sync";
  cell.replicas = 2;
  cell.shards = 8;
  cell.workers = 4;
  cell.ok = ok.load();
  cell.failed = failed.load();
  cell.bad_generation = bad_generation.load();
  const serve::RouterStats stats = (*router)->Stats();
  cell.reloads = stats.reloads;
  cell.delta_reloads = stats.delta_reloads;
  cell.stats = stats.aggregate;
  cell.hit_rate = HitRate(cell.stats);
  for (const std::string& path : delta_paths) std::remove(path.c_str());
  return cell;
}

// --- reload microbench: v1 parse-copy vs v2 mmap open vs delta apply ------

struct ReloadBench {
  int num_vertices = 0;
  int dim = 0;
  int touched_rows = 0;
  double v1_full_load_ms = 0.0;
  double v2_mmap_open_ms = 0.0;
  double delta_apply_ms = 0.0;
  double v2_speedup = 0.0;     // v1 / v2
  double delta_speedup = 0.0;  // v1 / delta
  bool v2_pass = false;
  bool delta_pass = false;
};

template <typename Fn>
double BestOfMs(int iterations, const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i < iterations; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

// Open/apply latency at the paper's NYT entity scale (114042 vertices,
// dim 50, ~23MB fp32 + int8 QEMB): the matrix dominates the file exactly
// as it does in a real deployment, so the three timings isolate what each
// reload path actually pays. Best-of-N swallows the cold first iteration.
ReloadBench RunReloadBench(bool smoke) {
  constexpr int kNumVertices = 114042;
  constexpr int kDim = 50;
  ReloadBench bench;
  bench.num_vertices = kNumVertices;
  bench.dim = kDim;
  bench.touched_rows = kNumVertices / 500;  // 0.2% of rows

  text::Vocabulary vocab;
  for (const char* word :
       {"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"}) {
    vocab.Count(word);
  }
  vocab.Freeze();
  re::PaModelConfig config;
  config.num_relations = 3;
  config.encoder = "pcnn";
  config.use_mutual_relation = true;
  config.mutual_relation_dim = kDim;
  config.encoder_config.vocab_size = vocab.size();
  config.encoder_config.word_dim = 8;
  config.encoder_config.position_dim = 2;
  config.encoder_config.max_position = 10;
  config.encoder_config.filters = 8;
  util::Rng rng(71);
  re::PaModel model(config, &rng);
  model.SetTraining(false);

  graph::EmbeddingStore embeddings(kNumVertices, kDim);
  float* values = embeddings.Vector(0);
  for (size_t i = 0; i < embeddings.value_count(); ++i) {
    values[i] = static_cast<float>(rng.Uniform() - 0.5);
  }
  const auto quantized = graph::QuantizedEmbeddingStore::Quantize(embeddings);
  const std::vector<std::string> relation_names = {"NA", "r1", "r2"};
  const std::string v2_path = "bench_results/reload_v2.imrs";
  const std::string v1_path = "bench_results/reload_v1.imrs";
  CheckOk(serve::SaveSnapshot(model, vocab, embeddings, relation_names, {},
                              {}, 1, "reload_bench", v2_path, &quantized,
                              nullptr, serve::kSnapshotFormatV2));
  CheckOk(serve::SaveSnapshot(model, vocab, embeddings, relation_names, {},
                              {}, 1, "reload_bench", v1_path, &quantized,
                              nullptr, serve::kSnapshotFormatV1));

  auto base = serve::LoadSnapshot(v2_path);
  CheckOk(base.status());
  graph::EmbeddingStore patched(kNumVertices, kDim);
  std::memcpy(patched.Vector(0), embeddings.raw(),
              embeddings.value_count() * sizeof(float));
  serve::DeltaSpec spec;
  util::Rng row_rng(99);
  while (spec.touched_rows.size() <
         static_cast<size_t>(bench.touched_rows)) {
    const int row = static_cast<int>(row_rng.UniformInt(kNumVertices));
    spec.touched_rows.push_back(row);
    for (int d = 0; d < kDim; ++d) patched.Vector(row)[d] += 0.125f;
  }
  const std::string delta_path = "bench_results/reload.imrd";
  CheckOk(serve::SaveDelta(base->content_hash, patched, &model, spec,
                           delta_path)
              .status());

  const int iterations = smoke ? 3 : 5;
  bench.v1_full_load_ms = BestOfMs(iterations, [&] {
    auto snapshot = serve::LoadSnapshot(v1_path);
    CheckOk(snapshot.status());
  });
  bench.v2_mmap_open_ms = BestOfMs(iterations, [&] {
    auto snapshot = serve::LoadSnapshot(v2_path);
    CheckOk(snapshot.status());
  });
  bench.delta_apply_ms = BestOfMs(iterations, [&] {
    auto snapshot = serve::ApplyDelta(*base, delta_path);
    CheckOk(snapshot.status());
  });
  bench.v2_speedup = bench.v2_mmap_open_ms > 0.0
                         ? bench.v1_full_load_ms / bench.v2_mmap_open_ms
                         : 0.0;
  bench.delta_speedup = bench.delta_apply_ms > 0.0
                            ? bench.v1_full_load_ms / bench.delta_apply_ms
                            : 0.0;
  bench.v2_pass = bench.v2_speedup >= 5.0;
  bench.delta_pass = bench.delta_speedup >= 10.0;
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  std::remove(delta_path.c_str());
  return bench;
}

// fp32-vs-quantized accuracy on one replay stream.
struct QuantizedGate {
  double top1_agreement = 0.0;
  double max_abs_prob_delta = 0.0;
  size_t requests = 0;
  bool pass = false;
};

QuantizedGate RunQuantizedGate(const std::string& snapshot_path,
                               const std::vector<serve::Query>& requests) {
  serve::EngineOptions fp32_options;
  fp32_options.threads = 1;
  auto fp32_engine = serve::InferenceEngine::Open(snapshot_path, fp32_options);
  CheckOk(fp32_engine.status());
  serve::EngineOptions quant_options = fp32_options;
  quant_options.quantized = true;
  auto quant_engine =
      serve::InferenceEngine::Open(snapshot_path, quant_options);
  CheckOk(quant_engine.status());

  QuantizedGate gate;
  gate.requests = requests.size();
  size_t agree = 0;
  for (const serve::Query& query : requests) {
    auto fp32 = (*fp32_engine)->Predict(query);
    auto quant = (*quant_engine)->Predict(query);
    CheckOk(fp32.status());
    CheckOk(quant.status());
    const std::vector<float>& p = fp32->probabilities;
    const std::vector<float>& q = quant->probabilities;
    IMR_CHECK(p.size() == q.size());
    size_t p_top = 0, q_top = 0;
    for (size_t i = 1; i < p.size(); ++i) {
      if (p[i] > p[p_top]) p_top = i;
      if (q[i] > q[q_top]) q_top = i;
    }
    if (p_top == q_top) ++agree;
    for (size_t i = 0; i < p.size(); ++i) {
      const double delta = std::fabs(static_cast<double>(p[i]) - q[i]);
      if (delta > gate.max_abs_prob_delta) gate.max_abs_prob_delta = delta;
    }
  }
  gate.top1_agreement =
      requests.empty() ? 0.0
                       : static_cast<double>(agree) /
                             static_cast<double>(requests.size());
  gate.pass =
      gate.top1_agreement >= 0.995 && gate.max_abs_prob_delta <= 0.05;
  return gate;
}

const Cell* FindCell(const std::vector<Cell>& cells, const std::string& name) {
  for (const Cell& cell : cells) {
    if (cell.name == name) return &cell;
  }
  return nullptr;
}

int Run(bool smoke) {
  // --- train a small pipeline on the NYT preset and snapshot it ----------
  datagen::PresetOptions preset_options;
  preset_options.scale = smoke ? 0.3 : 0.5;
  preset_options.seed = 13;
  datagen::SyntheticDataset dataset = datagen::MakeNytLike(preset_options);

  re::BagDatasetOptions bag_options;
  bag_options.max_sentence_length = 40;
  bag_options.max_position = 20;
  re::BagDataset bags = re::BagDataset::Build(
      dataset.world.graph, dataset.corpus.train, dataset.corpus.test,
      bag_options);

  graph::ProximityGraph proximity(dataset.world.graph.num_entities());
  proximity.AddCorpus(dataset.unlabeled.sentences);
  proximity.Finalize(2);
  graph::LineConfig line_config;
  line_config.dim = 32;
  line_config.samples_per_edge = 100;
  graph::EmbeddingStore embeddings = graph::TrainLine(proximity, line_config);
  CheckOk(bags.AttachMutualRelations(embeddings));

  re::PaModelConfig config;
  config.num_relations = bags.num_relations();
  config.encoder = "pcnn";
  config.aggregation = re::Aggregation::kAttention;
  config.use_mutual_relation = true;
  config.use_entity_type = true;
  config.mutual_relation_dim = embeddings.dim();
  config.type_dim = 8;
  config.encoder_config.vocab_size = bags.vocabulary().size();
  config.encoder_config.word_dim = 16;
  config.encoder_config.position_dim = 3;
  config.encoder_config.max_position = bag_options.max_position;
  config.encoder_config.filters = 32;

  util::Rng rng(preset_options.seed);
  re::PaModel model(config, &rng);
  re::TrainerConfig trainer_config;
  trainer_config.epochs = smoke ? 2 : 6;
  trainer_config.batch_size = 32;
  trainer_config.optimizer = "adam";
  trainer_config.learning_rate = 0.01f;
  re::Trainer trainer(&model, trainer_config);
  trainer.Train(bags.train_bags());

  CheckOk(util::MakeDirectories("bench_results"));
  const std::string snapshot_path = "bench_results/serve_model.imrs";
  CheckOk(serve::SaveSnapshot(model, bags.vocabulary(), embeddings,
                              dataset.world.graph, bag_options,
                              trainer_config.epochs, "bench_serve",
                              snapshot_path));
  // Generation B for the hot-swap cell: same model, embeddings retrained
  // with a different seed, saved with a QEMB section.
  graph::LineConfig line_b = line_config;
  line_b.seed = 181;
  graph::EmbeddingStore embeddings_b = graph::TrainLine(proximity, line_b);
  const auto quantized_b =
      graph::QuantizedEmbeddingStore::Quantize(embeddings_b);
  const std::string snapshot_b_path = "bench_results/serve_model_b.imrs";
  CheckOk(serve::SaveSnapshot(model, bags.vocabulary(), embeddings_b,
                              dataset.world.graph, bag_options,
                              trainer_config.epochs, "bench_serve_b",
                              snapshot_b_path, &quantized_b));

  // kNN-enabled generation pair for the knn-swap drill. A wide confidence
  // gate (0.95) makes the vote fire on most replay requests so the drill
  // actually exercises the ANN search under swap pressure; the fp32/int8
  // accuracy gates keep using the kNN-free snapshots above.
  re::KnnOptions knn_options;
  knn_options.confidence_gate = 0.95f;
  knn_options.min_pairs_for_ivf = 64;
  const re::KnnPredictor knn_a = re::KnnPredictor::Build(
      embeddings, bags.train_bags(), bags.num_relations(), knn_options,
      &util::GlobalPool());
  const re::KnnPredictor knn_b = re::KnnPredictor::Build(
      embeddings_b, bags.train_bags(), bags.num_relations(), knn_options,
      &util::GlobalPool());
  const std::string snapshot_knn_path = "bench_results/serve_model_knn.imrs";
  const std::string snapshot_knn_b_path =
      "bench_results/serve_model_knn_b.imrs";
  CheckOk(serve::SaveSnapshot(model, bags.vocabulary(), embeddings,
                              dataset.world.graph, bag_options,
                              trainer_config.epochs, "bench_serve_knn",
                              snapshot_knn_path, nullptr, &knn_a));
  CheckOk(serve::SaveSnapshot(model, bags.vocabulary(), embeddings_b,
                              dataset.world.graph, bag_options,
                              trainer_config.epochs, "bench_serve_knn_b",
                              snapshot_knn_b_path, &quantized_b, &knn_b));

  // --- request stream: held-out bags, replayed with pair-frequency skew --
  std::vector<serve::Query> unique_queries;
  for (const re::Bag& bag : bags.test_bags()) {
    serve::Query query = BagToQuery(bag, dataset.corpus.test);
    if (!query.sentences.empty()) unique_queries.push_back(std::move(query));
    if (unique_queries.size() >= 128) break;
  }
  IMR_CHECK(!unique_queries.empty());
  // Zipf-ish replay: pair k is queried roughly proportional to 1/(k+1),
  // mirroring the long-tailed pair frequencies the paper measures.
  std::vector<serve::Query> requests;
  util::Rng replay_rng(99);
  const size_t replay_size = smoke ? 256 : 768;
  while (requests.size() < replay_size) {
    const size_t k = static_cast<size_t>(
        static_cast<double>(unique_queries.size()) *
        replay_rng.Uniform() * replay_rng.Uniform());
    requests.push_back(unique_queries[std::min(k, unique_queries.size() - 1)]);
  }

  std::printf(
      "bench_serve%s: %zu unique pairs, %zu requests, %d relations\n",
      smoke ? " (smoke)" : "", unique_queries.size(), requests.size(),
      config.num_relations);

  // --- scenario matrix ----------------------------------------------------
  std::vector<Cell> cells;
  // Pre-router baseline: the single-client floor and the oversubscription
  // tail blowup the router was built to remove.
  cells.push_back(RunEngineCell("sync", 1, snapshot_path, requests, false));
  cells.push_back(RunEngineCell("batch", 4, snapshot_path, requests, false));
  // Gate-relevant router cells.
  cells.push_back(
      RunRouterCell("batch", 1, 1, snapshot_path, requests, false));
  cells.push_back(
      RunRouterCell("batch", 1, 8, snapshot_path, requests, false));
  cells.push_back(
      RunRouterCell("batch", 4, 8, snapshot_path, requests, false));
  if (!smoke) {
    cells.push_back(
        RunEngineCell("async", 4, snapshot_path, requests, false));
    cells.push_back(
        RunRouterCell("sync", 1, 1, snapshot_path, requests, false));
    cells.push_back(
        RunRouterCell("sync", 1, 8, snapshot_path, requests, false));
    cells.push_back(
        RunRouterCell("sync", 4, 8, snapshot_path, requests, false));
    cells.push_back(
        RunRouterCell("batch", 4, 1, snapshot_path, requests, false));
    cells.push_back(
        RunRouterCell("async", 1, 8, snapshot_path, requests, false));
    cells.push_back(
        RunRouterCell("async", 4, 8, snapshot_path, requests, false));
    cells.push_back(
        RunRouterCell("batch", 4, 8, snapshot_path, requests, true));
    cells.push_back(
        RunRouterCell("sync", 1, 8, snapshot_path, requests, true));
    cells.push_back(RunShedCell(snapshot_path, requests));
  }
  cells.push_back(RunHotSwapCell(snapshot_path, snapshot_b_path, requests,
                                 smoke ? 2 : 6));
  cells.push_back(RunKnnHotSwapCell(snapshot_knn_path, snapshot_knn_b_path,
                                    requests, smoke ? 2 : 6));
  cells.push_back(RunDeltaSwapCell(snapshot_path, embeddings, model,
                                   requests, smoke ? 2 : 6));

  const QuantizedGate quant_gate = RunQuantizedGate(snapshot_path, requests);
  const ReloadBench reload = RunReloadBench(smoke);

  // --- gates --------------------------------------------------------------
  const Cell* engine_sync = FindCell(cells, "engine-sync t1");
  const Cell* router_batch = FindCell(cells, "router-batch r4 s8");
  const Cell* cache_one = FindCell(cells, "router-batch r1 s1");
  const Cell* cache_many = FindCell(cells, "router-batch r1 s8");
  const Cell* hot_swap = FindCell(cells, "router-hotswap r2 s8");
  const Cell* knn_swap = FindCell(cells, "router-knn-hotswap r2 s8");
  const Cell* delta_swap = FindCell(cells, "router-delta-swap r2 s8");
  IMR_CHECK(engine_sync != nullptr && router_batch != nullptr &&
            cache_one != nullptr && cache_many != nullptr &&
            hot_swap != nullptr && knn_swap != nullptr &&
            delta_swap != nullptr);

  const double tail_ratio =
      engine_sync->stats.p99_latency_us > 0.0
          ? router_batch->stats.p99_latency_us /
                engine_sync->stats.p99_latency_us
          : 0.0;
  const bool tail_pass = tail_ratio <= 10.0;
  const bool cache_pass = cache_many->hit_rate >= cache_one->hit_rate - 0.02;
  const bool swap_pass = hot_swap->failed == 0 && hot_swap->ok > 0;
  const bool knn_swap_pass = knn_swap->failed == 0 && knn_swap->ok > 0 &&
                             knn_swap->bad_generation == 0 &&
                             knn_swap->stats.knn_fired > 0;
  const uint64_t delta_flips = static_cast<uint64_t>(smoke ? 2 : 6);
  const bool delta_swap_pass = delta_swap->failed == 0 &&
                               delta_swap->ok > 0 &&
                               delta_swap->bad_generation == 0 &&
                               delta_swap->delta_reloads == delta_flips;
  const bool all_pass = tail_pass && cache_pass && swap_pass &&
                        knn_swap_pass && quant_gate.pass &&
                        delta_swap_pass && reload.v2_pass &&
                        reload.delta_pass;

  // --- report -------------------------------------------------------------
  std::printf("%-24s %9s %9s %9s %9s %9s %7s %6s %6s\n", "cell", "qps",
              "p50_us", "p99_us", "p999_us", "mean_us", "hit%", "rej",
              "shed");
  for (const Cell& cell : cells) {
    std::printf(
        "%-24s %9.0f %9.0f %9.0f %9.0f %9.0f %6.1f%% %6llu %6llu\n",
        cell.name.c_str(), cell.stats.qps, cell.stats.p50_latency_us,
        cell.stats.p99_latency_us, cell.stats.p999_latency_us,
        cell.stats.mean_latency_us, 100.0 * cell.hit_rate,
        static_cast<unsigned long long>(cell.stats.rejected_queue_full),
        static_cast<unsigned long long>(cell.stats.shed_deadline));
  }
  // Per-shard traffic for the 8-way single-replica cell: the shard counters
  // are the satellite observability surface, show them once.
  std::printf("per-shard traffic (%s):", cache_many->name.c_str());
  for (size_t s = 0; s < cache_many->stats.cache_shards.size(); ++s) {
    const serve::CacheShardStats& shard = cache_many->stats.cache_shards[s];
    std::printf(" s%zu=%llu/%llu", s,
                static_cast<unsigned long long>(shard.hits),
                static_cast<unsigned long long>(shard.misses));
  }
  std::printf("  (hits/misses)\n");
  std::printf(
      "gates: tail p99 ratio %.2f (<= 10) %s | sharded hit %.4f vs "
      "single-shard %.4f (-0.02 slack) %s | hot-swap ok=%llu failed=%llu "
      "across %llu reloads %s | int8 top-1 %.4f delta %.5f %s\n",
      tail_ratio, tail_pass ? "PASS" : "FAIL", cache_many->hit_rate,
      cache_one->hit_rate, cache_pass ? "PASS" : "FAIL",
      static_cast<unsigned long long>(hot_swap->ok),
      static_cast<unsigned long long>(hot_swap->failed),
      static_cast<unsigned long long>(hot_swap->reloads),
      swap_pass ? "PASS" : "FAIL", quant_gate.top1_agreement,
      quant_gate.max_abs_prob_delta, quant_gate.pass ? "PASS" : "FAIL");
  std::printf(
      "       knn-swap ok=%llu failed=%llu bad_gen=%llu knn_fired=%llu "
      "across %llu reloads %s\n",
      static_cast<unsigned long long>(knn_swap->ok),
      static_cast<unsigned long long>(knn_swap->failed),
      static_cast<unsigned long long>(knn_swap->bad_generation),
      static_cast<unsigned long long>(knn_swap->stats.knn_fired),
      static_cast<unsigned long long>(knn_swap->reloads),
      knn_swap_pass ? "PASS" : "FAIL");
  std::printf(
      "       delta-swap ok=%llu failed=%llu bad_gen=%llu across %llu "
      "delta reloads %s\n",
      static_cast<unsigned long long>(delta_swap->ok),
      static_cast<unsigned long long>(delta_swap->failed),
      static_cast<unsigned long long>(delta_swap->bad_generation),
      static_cast<unsigned long long>(delta_swap->delta_reloads),
      delta_swap_pass ? "PASS" : "FAIL");
  std::printf(
      "       reload [%d x %d]: v1 full %.2fms | v2 mmap open %.2fms "
      "(%.1fx, >= 5x) %s | delta apply (%d rows) %.2fms (%.1fx, >= 10x) "
      "%s\n",
      reload.num_vertices, reload.dim, reload.v1_full_load_ms,
      reload.v2_mmap_open_ms, reload.v2_speedup,
      reload.v2_pass ? "PASS" : "FAIL", reload.touched_rows,
      reload.delta_apply_ms, reload.delta_speedup,
      reload.delta_pass ? "PASS" : "FAIL");

  // --- JSON ---------------------------------------------------------------
  std::FILE* out = std::fopen("bench_results/BENCH_serve.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"smoke\": %s,\n  \"requests\": %zu,\n"
               "  \"unique_pairs\": %zu,\n",
               smoke ? "true" : "false", requests.size(),
               unique_queries.size());
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    std::fprintf(
        out,
        "    {\"cell\": \"%s\", \"tier\": \"%s\", \"mode\": \"%s\", "
        "\"replicas\": %d, \"cache_shards\": %d, \"workers\": %d, "
        "\"quantized\": %s, \"qps\": %.2f, \"p50_us\": %.2f, "
        "\"p99_us\": %.2f, \"p999_us\": %.2f, \"mean_us\": %.2f, "
        "\"max_us\": %.2f, \"mr_cache_hit_rate\": %.4f, \"ok\": %llu, "
        "\"failed\": %llu, \"unavailable\": %llu, \"admitted\": %llu, "
        "\"rejected_queue_full\": %llu, \"shed_deadline\": %llu, "
        "\"queue_peak\": %llu, \"reloads\": %llu, \"knn_fired\": %llu}%s\n",
        cell.name.c_str(), cell.tier.c_str(), cell.mode.c_str(),
        cell.replicas, cell.shards, cell.workers,
        cell.quantized ? "true" : "false", cell.stats.qps,
        cell.stats.p50_latency_us, cell.stats.p99_latency_us,
        cell.stats.p999_latency_us, cell.stats.mean_latency_us,
        cell.stats.max_latency_us, cell.hit_rate,
        static_cast<unsigned long long>(cell.ok),
        static_cast<unsigned long long>(cell.failed),
        static_cast<unsigned long long>(cell.unavailable),
        static_cast<unsigned long long>(cell.stats.admitted),
        static_cast<unsigned long long>(cell.stats.rejected_queue_full),
        static_cast<unsigned long long>(cell.stats.shed_deadline),
        static_cast<unsigned long long>(cell.stats.queue_peak),
        static_cast<unsigned long long>(cell.reloads),
        static_cast<unsigned long long>(cell.stats.knn_fired),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"gates\": {\n"
               "    \"tail\": {\"p99_ratio\": %.4f, \"max\": 10.0, "
               "\"pass\": %s},\n"
               "    \"cache\": {\"sharded_hit_rate\": %.4f, "
               "\"single_shard_hit_rate\": %.4f, \"slack\": 0.02, "
               "\"pass\": %s},\n"
               "    \"hot_swap\": {\"ok\": %llu, \"failed\": %llu, "
               "\"reloads\": %llu, \"pass\": %s},\n"
               "    \"knn_swap\": {\"ok\": %llu, \"failed\": %llu, "
               "\"bad_generation\": %llu, \"knn_fired\": %llu, "
               "\"reloads\": %llu, \"pass\": %s},\n"
               "    \"quantized\": {\"top1_agreement\": %.4f, "
               "\"max_abs_prob_delta\": %.5f, \"requests\": %zu, "
               "\"top1_agreement_min\": 0.995, "
               "\"max_abs_prob_delta_max\": 0.05, \"pass\": %s},\n"
               "    \"delta_swap\": {\"ok\": %llu, \"failed\": %llu, "
               "\"bad_generation\": %llu, \"delta_reloads\": %llu, "
               "\"pass\": %s},\n"
               "    \"reload\": {\"num_vertices\": %d, \"dim\": %d, "
               "\"touched_rows\": %d, \"v1_full_load_ms\": %.3f, "
               "\"v2_mmap_open_ms\": %.3f, \"delta_apply_ms\": %.3f, "
               "\"v2_speedup\": %.2f, \"v2_speedup_min\": 5.0, "
               "\"delta_speedup\": %.2f, \"delta_speedup_min\": 10.0, "
               "\"v2_pass\": %s, \"delta_pass\": %s}\n"
               "  }\n}\n",
               tail_ratio, tail_pass ? "true" : "false",
               cache_many->hit_rate, cache_one->hit_rate,
               cache_pass ? "true" : "false",
               static_cast<unsigned long long>(hot_swap->ok),
               static_cast<unsigned long long>(hot_swap->failed),
               static_cast<unsigned long long>(hot_swap->reloads),
               swap_pass ? "true" : "false",
               static_cast<unsigned long long>(knn_swap->ok),
               static_cast<unsigned long long>(knn_swap->failed),
               static_cast<unsigned long long>(knn_swap->bad_generation),
               static_cast<unsigned long long>(knn_swap->stats.knn_fired),
               static_cast<unsigned long long>(knn_swap->reloads),
               knn_swap_pass ? "true" : "false", quant_gate.top1_agreement,
               quant_gate.max_abs_prob_delta, quant_gate.requests,
               quant_gate.pass ? "true" : "false",
               static_cast<unsigned long long>(delta_swap->ok),
               static_cast<unsigned long long>(delta_swap->failed),
               static_cast<unsigned long long>(delta_swap->bad_generation),
               static_cast<unsigned long long>(delta_swap->delta_reloads),
               delta_swap_pass ? "true" : "false", reload.num_vertices,
               reload.dim, reload.touched_rows, reload.v1_full_load_ms,
               reload.v2_mmap_open_ms, reload.delta_apply_ms,
               reload.v2_speedup, reload.delta_speedup,
               reload.v2_pass ? "true" : "false",
               reload.delta_pass ? "true" : "false");
  std::fclose(out);
  std::fprintf(stderr,
               "[bench_serve] written to bench_results/BENCH_serve.json\n");
  if (!all_pass) {
    std::fprintf(stderr, "[bench_serve] FAIL: SLO gate violated (see gates "
                         "line above)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace imr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return imr::Run(smoke);
}
