// Serving benchmark: trains a small PA-TMR pipeline, snapshots it, reloads
// it through serve::InferenceEngine, and measures request throughput and
// latency percentiles under three calling conventions:
//
//   sync         one Predict() at a time (single-client latency floor)
//   batch        one PredictBatch() over the whole request stream
//   async        SubmitAsync() + micro-batching dispatcher
//
// Each scenario also reports the mutual-relation cache hit rate (requests
// replay entity pairs with the skew real query streams show). The sync and
// batch scenarios are additionally run with the int8-quantized engine
// (EngineOptions::quantized), and the quantized path must pass an accuracy
// gate against fp32 on the same NYT-preset replay: top-1 prediction
// agreement >= 99.5% and max |probability delta| <= 0.05, or the bench
// exits non-zero. Results are printed and recorded in
// bench_results/BENCH_serve.json.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "imr.h"

namespace imr {
namespace {

void CheckOk(const util::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench_serve: %s\n", status.ToString().c_str());
    std::abort();
  }
}

struct ScenarioResult {
  std::string scenario;
  int threads = 0;
  serve::EngineStats stats;
  double cache_hit_rate = 0.0;
};

serve::Query BagToQuery(const re::Bag& bag,
                        const std::vector<text::LabeledSentence>& corpus) {
  serve::Query query;
  query.head = bag.head;
  query.tail = bag.tail;
  query.head_types = bag.head_types;
  query.tail_types = bag.tail_types;
  for (const text::LabeledSentence& labeled : corpus) {
    if (labeled.sentence.head_entity == bag.head &&
        labeled.sentence.tail_entity == bag.tail) {
      query.sentences.push_back(labeled.sentence);
      if (query.sentences.size() >= 4) break;  // cap bag size for latency
    }
  }
  return query;
}

ScenarioResult RunScenario(const std::string& scenario, int threads,
                           const std::string& snapshot_path,
                           const std::vector<serve::Query>& requests,
                           bool quantized = false) {
  serve::EngineOptions options;
  options.threads = threads;
  options.top_k = 1;
  options.quantized = quantized;
  auto engine = serve::InferenceEngine::Open(snapshot_path, options);
  CheckOk(engine.status());

  if (scenario == "sync") {
    for (const serve::Query& query : requests) {
      auto prediction = (*engine)->Predict(query);
      CheckOk(prediction.status());
    }
  } else if (scenario == "batch") {
    auto predictions = (*engine)->PredictBatch(requests);
    for (const auto& prediction : predictions) CheckOk(prediction.status());
  } else {  // async
    std::vector<std::future<util::StatusOr<serve::Prediction>>> futures;
    futures.reserve(requests.size());
    for (const serve::Query& query : requests)
      futures.push_back((*engine)->SubmitAsync(query));
    for (auto& future : futures) {
      CheckOk(future.get().status());
    }
  }

  ScenarioResult result;
  result.scenario = quantized ? "q-" + scenario : scenario;
  result.threads = threads;
  result.stats = (*engine)->Stats();
  const uint64_t lookups =
      result.stats.mr_cache_hits + result.stats.mr_cache_misses;
  result.cache_hit_rate =
      lookups > 0
          ? static_cast<double>(result.stats.mr_cache_hits) / lookups
          : 0.0;
  return result;
}

// fp32-vs-quantized accuracy on one replay stream.
struct QuantizedGate {
  double top1_agreement = 0.0;
  double max_abs_prob_delta = 0.0;
  size_t requests = 0;
  bool pass = false;
};

// Scores every request through a fp32 engine and a quantized engine over
// the same snapshot and compares the full probability vectors. The gate is
// the PR's acceptance bar for int8 serving: top-1 agreement >= 99.5% and
// max |probability delta| <= 0.05 on the NYT-preset replay.
QuantizedGate RunQuantizedGate(const std::string& snapshot_path,
                               const std::vector<serve::Query>& requests) {
  serve::EngineOptions fp32_options;
  fp32_options.threads = 1;
  auto fp32_engine = serve::InferenceEngine::Open(snapshot_path, fp32_options);
  CheckOk(fp32_engine.status());
  serve::EngineOptions quant_options = fp32_options;
  quant_options.quantized = true;
  auto quant_engine =
      serve::InferenceEngine::Open(snapshot_path, quant_options);
  CheckOk(quant_engine.status());

  QuantizedGate gate;
  gate.requests = requests.size();
  size_t agree = 0;
  for (const serve::Query& query : requests) {
    auto fp32 = (*fp32_engine)->Predict(query);
    auto quant = (*quant_engine)->Predict(query);
    CheckOk(fp32.status());
    CheckOk(quant.status());
    const std::vector<float>& p = fp32->probabilities;
    const std::vector<float>& q = quant->probabilities;
    IMR_CHECK(p.size() == q.size());
    size_t p_top = 0, q_top = 0;
    for (size_t i = 1; i < p.size(); ++i) {
      if (p[i] > p[p_top]) p_top = i;
      if (q[i] > q[q_top]) q_top = i;
    }
    if (p_top == q_top) ++agree;
    for (size_t i = 0; i < p.size(); ++i) {
      const double delta = std::fabs(static_cast<double>(p[i]) - q[i]);
      if (delta > gate.max_abs_prob_delta) gate.max_abs_prob_delta = delta;
    }
  }
  gate.top1_agreement =
      requests.empty() ? 0.0
                       : static_cast<double>(agree) /
                             static_cast<double>(requests.size());
  gate.pass =
      gate.top1_agreement >= 0.995 && gate.max_abs_prob_delta <= 0.05;
  return gate;
}

int Run() {
  // --- train a small pipeline on the NYT preset and snapshot it ----------
  datagen::PresetOptions preset_options;
  preset_options.scale = 0.5;
  preset_options.seed = 13;
  datagen::SyntheticDataset dataset = datagen::MakeNytLike(preset_options);

  re::BagDatasetOptions bag_options;
  bag_options.max_sentence_length = 40;
  bag_options.max_position = 20;
  re::BagDataset bags = re::BagDataset::Build(
      dataset.world.graph, dataset.corpus.train, dataset.corpus.test,
      bag_options);

  graph::ProximityGraph proximity(dataset.world.graph.num_entities());
  proximity.AddCorpus(dataset.unlabeled.sentences);
  proximity.Finalize(2);
  graph::LineConfig line_config;
  line_config.dim = 32;
  line_config.samples_per_edge = 100;
  graph::EmbeddingStore embeddings = graph::TrainLine(proximity, line_config);
  CheckOk(bags.AttachMutualRelations(embeddings));

  re::PaModelConfig config;
  config.num_relations = bags.num_relations();
  config.encoder = "pcnn";
  config.aggregation = re::Aggregation::kAttention;
  config.use_mutual_relation = true;
  config.use_entity_type = true;
  config.mutual_relation_dim = embeddings.dim();
  config.type_dim = 8;
  config.encoder_config.vocab_size = bags.vocabulary().size();
  config.encoder_config.word_dim = 16;
  config.encoder_config.position_dim = 3;
  config.encoder_config.max_position = bag_options.max_position;
  config.encoder_config.filters = 32;

  util::Rng rng(preset_options.seed);
  re::PaModel model(config, &rng);
  re::TrainerConfig trainer_config;
  trainer_config.epochs = 6;
  trainer_config.batch_size = 32;
  trainer_config.optimizer = "adam";
  trainer_config.learning_rate = 0.01f;
  re::Trainer trainer(&model, trainer_config);
  trainer.Train(bags.train_bags());

  CheckOk(util::MakeDirectories("bench_results"));
  const std::string snapshot_path = "bench_results/serve_model.imrs";
  CheckOk(serve::SaveSnapshot(model, bags.vocabulary(), embeddings,
                              dataset.world.graph, bag_options,
                              trainer_config.epochs, "bench_serve",
                              snapshot_path));

  // --- request stream: held-out bags, replayed with pair-frequency skew --
  std::vector<serve::Query> unique_queries;
  for (const re::Bag& bag : bags.test_bags()) {
    serve::Query query = BagToQuery(bag, dataset.corpus.test);
    if (!query.sentences.empty()) unique_queries.push_back(std::move(query));
    if (unique_queries.size() >= 128) break;
  }
  IMR_CHECK(!unique_queries.empty());
  // Zipf-ish replay: pair k is queried roughly proportional to 1/(k+1),
  // mirroring the long-tailed pair frequencies the paper measures.
  std::vector<serve::Query> requests;
  util::Rng replay_rng(99);
  while (requests.size() < 768) {
    const size_t k = static_cast<size_t>(
        static_cast<double>(unique_queries.size()) *
        replay_rng.Uniform() * replay_rng.Uniform());
    requests.push_back(unique_queries[std::min(k, unique_queries.size() - 1)]);
  }

  std::printf("bench_serve: %zu unique pairs, %zu requests, %d relations\n",
              unique_queries.size(), requests.size(), config.num_relations);

  // --- scenarios ---------------------------------------------------------
  std::vector<ScenarioResult> results;
  results.push_back(RunScenario("sync", 1, snapshot_path, requests));
  results.push_back(RunScenario("batch", 1, snapshot_path, requests));
  results.push_back(RunScenario("batch", 4, snapshot_path, requests));
  results.push_back(RunScenario("async", 4, snapshot_path, requests));
  results.push_back(
      RunScenario("sync", 1, snapshot_path, requests, /*quantized=*/true));
  results.push_back(
      RunScenario("batch", 4, snapshot_path, requests, /*quantized=*/true));

  const QuantizedGate gate = RunQuantizedGate(snapshot_path, requests);
  std::printf(
      "quantized accuracy: top-1 agreement %.4f (gate >= 0.995), "
      "max |prob delta| %.5f (gate <= 0.05) over %zu requests -> %s\n",
      gate.top1_agreement, gate.max_abs_prob_delta, gate.requests,
      gate.pass ? "PASS" : "FAIL");

  std::printf("%-8s %-8s %10s %10s %10s %10s %8s\n", "scenario", "threads",
              "qps", "p50_us", "p99_us", "mean_us", "mr_hit%");
  for (const ScenarioResult& r : results) {
    std::printf("%-8s %-8d %10.0f %10.0f %10.0f %10.0f %7.1f%%\n",
                r.scenario.c_str(), r.threads, r.stats.qps,
                r.stats.p50_latency_us, r.stats.p99_latency_us,
                r.stats.mean_latency_us, 100.0 * r.cache_hit_rate);
  }

  std::FILE* out = std::fopen("bench_results/BENCH_serve.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"requests\": %zu,\n  \"unique_pairs\": %zu,\n",
               requests.size(), unique_queries.size());
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(out,
                 "    {\"scenario\": \"%s\", \"threads\": %d, "
                 "\"qps\": %.2f, \"p50_us\": %.2f, \"p99_us\": %.2f, "
                 "\"mean_us\": %.2f, \"max_us\": %.2f, "
                 "\"batches\": %llu, \"mr_cache_hit_rate\": %.4f}%s\n",
                 r.scenario.c_str(), r.threads, r.stats.qps,
                 r.stats.p50_latency_us, r.stats.p99_latency_us,
                 r.stats.mean_latency_us, r.stats.max_latency_us,
                 static_cast<unsigned long long>(r.stats.batches),
                 r.cache_hit_rate, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"quantized_gate\": {\"top1_agreement\": %.4f, "
               "\"max_abs_prob_delta\": %.5f, \"requests\": %zu, "
               "\"top1_agreement_min\": 0.995, "
               "\"max_abs_prob_delta_max\": 0.05, \"pass\": %s}\n",
               gate.top1_agreement, gate.max_abs_prob_delta, gate.requests,
               gate.pass ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::fprintf(stderr,
               "[bench_serve] written to bench_results/BENCH_serve.json\n");
  if (!gate.pass) {
    std::fprintf(stderr,
                 "[bench_serve] FAIL: quantized serving missed the "
                 "accuracy gate (top-1 agreement %.4f, max |prob delta| "
                 "%.5f)\n",
                 gate.top1_agreement, gate.max_abs_prob_delta);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace imr

int main() { return imr::Run(); }
