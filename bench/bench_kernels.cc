// Kernel-level benchmark for the allocation-free hot path: per-op
// ns/element, buffer-pool acquisitions per step, fused-vs-unfused kernel
// times, pooled-vs-unpooled training-step times, and row-sparse vs dense
// embedding-step times over NYT-preset vocab sizes. Results go to
// bench_results/BENCH_kernels.json + bench_results/BENCH_sparse.json (and a
// human-readable table on stdout).
//
// It also runs the interleaved simd-vs-scalar A/B: every compiled vector
// backend is pinned via ScopedEvalBackend and timed against the scalar
// reference on the same bodies (tanh, add, mul, matmul forward,
// log-softmax), alternating short segments so both variants sample the
// same machine load. Results go to bench_results/BENCH_simd.json; on a
// host with no vector ISA the A/B runs scalar-vs-scalar and records
// parity instead of failing.
//
// Modes:
//   bench_kernels            full sizes, writes BENCH_kernels.json,
//                            BENCH_sparse.json and BENCH_simd.json
//   bench_kernels --smoke    tiny sizes, no JSON; exits non-zero when the
//                            warmed-up training step reports any pool miss
//                            or the embedding step performs a dense
//                            full-table gradient scan (SparseGradStats
//                            dense_fallbacks != 0 or the touched-row count
//                            is not a strict subset of the table), or when
//                            kernel dispatch silently falls back to scalar
//                            even though a vector ISA was detected and no
//                            explicit pin asked for scalar.
//                            scripts/check.sh runs this as its bench-smoke
//                            stage, so an allocation, sparsity or dispatch
//                            regression on the hot path fails CI even
//                            without running the full benchmark.
//   bench_kernels --list_backends
//                            prints one supported backend name per line
//                            (scalar first) and exits; scripts/check.sh
//                            iterates this list for its `simd` stage.
//
// Everything runs at threads = 1: these are single-kernel measurements, and
// a single thread makes the steady-state pool-counter assertions exact.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "nn/init.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "tensor/simd/dispatch.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/tsv_writer.h"
#include "util/thread_pool.h"

namespace imr {
namespace {

using tensor::Tensor;

// Keeps results alive past the optimiser without google-benchmark.
volatile float g_sink = 0.0f;

struct Timed {
  double ns_per_call = 0.0;
  int64_t calls = 0;
  // Pool traffic per call during the timed region (warmup excluded).
  double acquires_per_call = 0.0;
  uint64_t misses = 0;  // total steady-state misses, expected 0
};

// One timed segment: calls `body` until min_seconds elapse, returns ns/call.
template <typename Body>
double TimeSegment(const Body& body, double min_seconds,
                   int64_t* calls_out) {
  using clock = std::chrono::steady_clock;
  int64_t calls = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    body();
    ++calls;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds || calls < 3);
  *calls_out = calls;
  return elapsed * 1e9 / static_cast<double>(calls);
}

// Folds one segment's timing and pool traffic into `t`. Keeping the fastest
// segment rejects interference from other load on the machine; pool traffic
// accumulates over every timed call.
void FoldSegment(double ns, int64_t calls, uint64_t* acquires, Timed* t) {
  const tensor::PoolStatsSnapshot pool = tensor::PoolStats();
  if (t->calls == 0 || ns < t->ns_per_call) t->ns_per_call = ns;
  t->calls += calls;
  *acquires += pool.total_hits() + pool.total_misses();
  t->misses += pool.total_misses();
}

// Times two bodies by alternating short segments — both variants sample the
// same load profile, so their ratio is meaningful even on a busy machine.
// Each Timed keeps its own fastest segment and aggregate pool traffic.
template <typename BodyA, typename BodyB>
void RunPair(const BodyA& a, const BodyB& b, int warmup_calls,
             double min_seconds, Timed* ta, Timed* tb, int repeats = 7) {
  for (int i = 0; i < warmup_calls; ++i) a();
  for (int i = 0; i < warmup_calls; ++i) b();
  *ta = Timed{};
  *tb = Timed{};
  uint64_t acquires_a = 0, acquires_b = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    int64_t calls = 0;
    tensor::ResetPoolStats();
    double ns = TimeSegment(a, min_seconds, &calls);
    FoldSegment(ns, calls, &acquires_a, ta);
    tensor::ResetPoolStats();
    ns = TimeSegment(b, min_seconds, &calls);
    FoldSegment(ns, calls, &acquires_b, tb);
  }
  ta->acquires_per_call =
      static_cast<double>(acquires_a) / static_cast<double>(ta->calls);
  tb->acquires_per_call =
      static_cast<double>(acquires_b) / static_cast<double>(tb->calls);
}

// Single-variant measurement with the same fastest-segment policy.
template <typename Body>
Timed Run(const Body& body, int warmup_calls, double min_seconds,
          int repeats = 5) {
  for (int i = 0; i < warmup_calls; ++i) body();
  Timed t;
  uint64_t acquires = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    int64_t calls = 0;
    tensor::ResetPoolStats();
    const double ns = TimeSegment(body, min_seconds, &calls);
    FoldSegment(ns, calls, &acquires, &t);
  }
  t.acquires_per_call =
      static_cast<double>(acquires) / static_cast<double>(t.calls);
  return t;
}

struct OpRow {
  std::string name;
  double elements_per_call = 0.0;
  Timed timed;           // pool enabled (the default, "after")
  Timed timed_unpooled;  // PoolDisabledGuard (fresh heap per call, "before")

  double ns_per_element() const {
    return elements_per_call > 0 ? timed.ns_per_call / elements_per_call
                                 : 0.0;
  }
  double pooled_speedup() const {
    return timed.ns_per_call > 0
               ? timed_unpooled.ns_per_call / timed.ns_per_call
               : 0.0;
  }
};

// One row-sparse vs dense A/B at a fixed vocab size: the same
// embedding-dominated training step run on two identically-initialized
// models, one with the table's row-sparse gradient path (the default), one
// with it disabled. `rows_*` / `fallbacks` are exact per-5-step counters
// sampled after warmup.
struct SparseRow {
  int vocab = 0;
  int dim = 0;
  int batch = 0;
  Timed sparse;
  Timed dense;
  uint64_t rows_touched = 0;  // over the 5 sampled steady-state steps
  uint64_t rows_total = 0;
  uint64_t dense_fallbacks = 0;

  double speedup() const {
    return sparse.ns_per_call > 0
               ? dense.ns_per_call / sparse.ns_per_call
               : 0.0;
  }
};

// One interleaved vector-vs-scalar measurement: the same body timed with
// the eval backend pinned to `backend` and pinned to scalar, in
// alternating segments.
struct SimdRow {
  std::string backend;
  std::string op;
  double elements_per_call = 0.0;
  Timed vector;
  Timed scalar;

  double speedup() const {
    return vector.ns_per_call > 0
               ? scalar.ns_per_call / vector.ns_per_call
               : 0.0;
  }
  double vector_ns_per_element() const {
    return elements_per_call > 0 ? vector.ns_per_call / elements_per_call
                                 : 0.0;
  }
  double scalar_ns_per_element() const {
    return elements_per_call > 0 ? scalar.ns_per_call / elements_per_call
                                 : 0.0;
  }
};

struct Report {
  bool smoke = false;
  std::vector<OpRow> ops;
  // Interleaved simd-vs-scalar A/B, one row per (backend, op).
  std::vector<SimdRow> simd;
  // Warmed-up TinyModel training step, pooled vs pool-disabled.
  Timed step_pooled;
  Timed step_unpooled;
  // Fused AffineTanh vs the MatMul+AddRowVector+Tanh composition.
  Timed affine_fused;
  Timed affine_unfused;
  // Row-sparse vs dense embedding steps, one row per vocab size.
  std::vector<SparseRow> sparse_steps;
};

// The same representative model the buffer-pool tests train: embedding
// lookup, fused affine+tanh, dropout, linear head, fused cross-entropy.
struct StepModel : nn::Module {
  StepModel(int vocab, int dim, int hidden, int classes, util::Rng* rng)
      : embed(vocab, dim, rng),
        proj(dim, hidden, rng),
        out(hidden, classes, rng) {
    RegisterChild("embed", &embed);
    RegisterChild("proj", &proj);
    RegisterChild("out", &out);
  }
  nn::Embedding embed;
  nn::Linear proj;
  nn::Linear out;
};

Report RunAll(bool smoke) {
  Report report;
  report.smoke = smoke;
  const double min_seconds = smoke ? 0.002 : 0.15;
  const int warmup = smoke ? 3 : 10;
  // Smoke keeps every size tiny so check.sh stays fast.
  const int elt_n = smoke ? 1024 : 1 << 18;    // elementwise ops
  const int mm = smoke ? 16 : 128;             // square matmul side
  // Affine shape: a small inner dimension keeps the (identical) MatMul from
  // drowning out the passes the fusion actually removes.
  const int ar = smoke ? 12 : 128;             // affine rows
  const int ai = smoke ? 8 : 16;               // affine inner dim
  const int ad = smoke ? 16 : 128;             // affine out dim
  const int ce_rows = smoke ? 8 : 160;         // cross-entropy batch
  const int ce_cols = smoke ? 5 : 53;          // relations (NYT has 53)

  util::Rng rng(19);
  auto bench_op = [&](const std::string& name, double elements, auto body) {
    OpRow row;
    row.name = name;
    row.elements_per_call = elements;
    auto unpooled = [&body] {
      tensor::PoolDisabledGuard guard;
      body();
    };
    RunPair(body, unpooled, warmup, min_seconds, &row.timed,
            &row.timed_unpooled);
    report.ops.push_back(std::move(row));
  };

  {
    Tensor a = nn::NormalInit({elt_n}, 1.0f, &rng);
    Tensor b = nn::NormalInit({elt_n}, 1.0f, &rng);
    tensor::NoGradGuard no_grad;
    bench_op("add", elt_n, [&] { g_sink = g_sink + tensor::Add(a, b).data()[0]; });
    bench_op("mul", elt_n, [&] { g_sink = g_sink + tensor::Mul(a, b).data()[0]; });
    bench_op("tanh", elt_n, [&] { g_sink = g_sink + tensor::Tanh(a).data()[0]; });
  }
  {
    Tensor a = nn::NormalInit({mm, mm}, 1.0f, &rng);
    Tensor b = nn::NormalInit({mm, mm}, 1.0f, &rng);
    tensor::NoGradGuard no_grad;
    bench_op("matmul_forward", static_cast<double>(mm) * mm,
             [&] { g_sink = g_sink + tensor::MatMul(a, b).data()[0]; });
  }
  {
    Tensor x = nn::NormalInit({ce_rows, ce_cols}, 1.0f, &rng);
    x.set_requires_grad(true);
    std::vector<int> labels(static_cast<size_t>(ce_rows), 1);
    bench_op("cross_entropy_step",
             static_cast<double>(ce_rows) * ce_cols, [&] {
               x.ZeroGrad();
               tensor::Tensor loss = tensor::CrossEntropyLoss(x, labels);
               loss.Backward();
               g_sink = g_sink + loss.item();
             });
  }

  // Interleaved simd-vs-scalar A/B. All bodies run under NoGradGuard so
  // the eval table (and with it the ScopedEvalBackend pin) applies; the
  // pin sits inside the body because RunPair alternates segments of both
  // variants. On a scalar-only host the list below degenerates to
  // scalar-vs-scalar, recording parity rather than failing.
  {
    std::vector<tensor::simd::Backend> vector_backends;
    for (tensor::simd::Backend backend :
         tensor::simd::SupportedBackends()) {
      if (backend != tensor::simd::Backend::kScalar)
        vector_backends.push_back(backend);
    }
    if (vector_backends.empty())
      vector_backends.push_back(tensor::simd::Backend::kScalar);

    Tensor a = nn::NormalInit({elt_n}, 1.0f, &rng);
    Tensor b = nn::NormalInit({elt_n}, 1.0f, &rng);
    Tensor ma = nn::NormalInit({mm, mm}, 1.0f, &rng);
    Tensor mb = nn::NormalInit({mm, mm}, 1.0f, &rng);
    Tensor sx = nn::NormalInit({ce_rows, ce_cols}, 1.0f, &rng);
    tensor::NoGradGuard no_grad;
    for (tensor::simd::Backend backend : vector_backends) {
      auto ab = [&](const std::string& op, double elements, auto body) {
        SimdRow row;
        row.backend = tensor::simd::BackendName(backend);
        row.op = op;
        row.elements_per_call = elements;
        auto vectorized = [&body, backend] {
          tensor::simd::ScopedEvalBackend pin(backend);
          body();
        };
        auto scalar = [&body] {
          tensor::simd::ScopedEvalBackend pin(
              tensor::simd::Backend::kScalar);
          body();
        };
        RunPair(vectorized, scalar, warmup, min_seconds, &row.vector,
                &row.scalar);
        report.simd.push_back(std::move(row));
      };
      ab("tanh", elt_n, [&] { g_sink = g_sink + tensor::Tanh(a).data()[0]; });
      ab("add", elt_n, [&] { g_sink = g_sink + tensor::Add(a, b).data()[0]; });
      ab("mul", elt_n, [&] { g_sink = g_sink + tensor::Mul(a, b).data()[0]; });
      ab("matmul_forward", static_cast<double>(mm) * mm,
         [&] { g_sink = g_sink + tensor::MatMul(ma, mb).data()[0]; });
      ab("log_softmax", static_cast<double>(ce_rows) * ce_cols,
         [&] { g_sink = g_sink + tensor::LogSoftmax(sx).data()[0]; });
    }
  }

  // Fused vs unfused affine+tanh, full forward+backward in both shapes.
  {
    Tensor x = nn::NormalInit({ar, ai}, 1.0f, &rng);
    Tensor w = nn::NormalInit({ai, ad}, 0.5f, &rng);
    Tensor b = nn::NormalInit({ad}, 0.5f, &rng);
    x.set_requires_grad(true);
    w.set_requires_grad(true);
    b.set_requires_grad(true);
    auto clear = [&] {
      x.ZeroGrad();
      w.ZeroGrad();
      b.ZeroGrad();
    };
    RunPair(
        [&] {
          clear();
          tensor::Sum(tensor::AffineTanh(x, w, b)).Backward();
        },
        [&] {
          clear();
          tensor::Sum(tensor::Tanh(
                          tensor::AddRowVector(tensor::MatMul(x, w), b)))
              .Backward();
        },
        warmup, min_seconds, &report.affine_fused, &report.affine_unfused);
  }

  // Full training step — forward, backward, fused SGD update — pooled and
  // with the pool bypassed. The steady-state miss count of the pooled run
  // is the smoke gate: after warmup it must be exactly zero.
  {
    const int vocab = smoke ? 50 : 2000;
    const int dim = smoke ? 8 : 50;
    const int hidden = smoke ? 8 : 64;
    const int classes = smoke ? 4 : 53;
    const int batch = smoke ? 4 : 32;
    StepModel model(vocab, dim, hidden, classes, &rng);
    nn::Sgd opt(&model, 0.01f);
    util::Rng dropout_rng(23);
    std::vector<int> indices(static_cast<size_t>(batch));
    std::vector<int> labels(static_cast<size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      indices[static_cast<size_t>(i)] =
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(vocab)));
      labels[static_cast<size_t>(i)] =
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(classes)));
    }
    auto step = [&] {
      Tensor emb = model.embed.Forward(indices);
      Tensor h = model.proj.ForwardTanh(emb);
      Tensor d = tensor::Dropout(h, 0.5f, &dropout_rng, /*training=*/true);
      Tensor logits = model.out.Forward(d);
      Tensor loss = tensor::CrossEntropyLoss(logits, labels);
      loss.Backward();
      opt.Step();
      g_sink = g_sink + loss.item();
    };
    auto step_unpooled = [&step] {
      tensor::PoolDisabledGuard guard;
      step();
    };
    RunPair(step, step_unpooled, warmup, min_seconds, &report.step_pooled,
            &report.step_unpooled);
  }

  // Row-sparse vs dense embedding steps over the NYT-preset vocab sizes
  // (114042 is the NYT-10 word vocabulary; dim 50 the paper's word dim).
  // Both models start from identical weights; the dense twin has the
  // table's row-sparse gradient path switched off, so its clip-norm
  // reduction, update and ZeroGrad all walk the full vocab × dim table
  // while the sparse run walks only the rows the batch gathered.
  {
    const std::vector<int> vocabs =
        smoke ? std::vector<int>{64} : std::vector<int>{2000, 20000, 114042};
    const int dim = smoke ? 8 : 50;
    const int hidden = smoke ? 8 : 32;
    const int classes = smoke ? 4 : 53;
    const int batch = smoke ? 8 : 256;  // batch-typical touched rows
    for (int vocab : vocabs) {
      SparseRow row;
      row.vocab = vocab;
      row.dim = dim;
      row.batch = batch;
      util::Rng sparse_init(101);
      util::Rng dense_init(101);
      StepModel sparse_model(vocab, dim, hidden, classes, &sparse_init);
      StepModel dense_model(vocab, dim, hidden, classes, &dense_init);
      for (nn::NamedParameter& p : dense_model.Parameters())
        p.tensor.set_row_sparse_grad(false);
      nn::Sgd sparse_opt(&sparse_model, 0.3f, 0.0f, /*clip_norm=*/1.0f);
      nn::Sgd dense_opt(&dense_model, 0.3f, 0.0f, /*clip_norm=*/1.0f);
      std::vector<int> indices(static_cast<size_t>(batch));
      std::vector<int> labels(static_cast<size_t>(batch));
      for (int i = 0; i < batch; ++i) {
        indices[static_cast<size_t>(i)] =
            static_cast<int>(rng.UniformInt(static_cast<uint64_t>(vocab)));
        labels[static_cast<size_t>(i)] =
            static_cast<int>(rng.UniformInt(static_cast<uint64_t>(classes)));
      }
      auto make_step = [&indices, &labels](StepModel* model, nn::Sgd* opt) {
        return [model, opt, &indices, &labels] {
          Tensor emb = model->embed.Forward(indices);
          Tensor h = model->proj.ForwardTanh(emb);
          Tensor logits = model->out.Forward(h);
          Tensor loss = tensor::CrossEntropyLoss(logits, labels);
          loss.Backward();
          opt->Step();
          g_sink = g_sink + loss.item();
        };
      };
      auto sparse_step = make_step(&sparse_model, &sparse_opt);
      auto dense_step = make_step(&dense_model, &dense_opt);
      RunPair(sparse_step, dense_step, warmup, min_seconds, &row.sparse,
              &row.dense);
      // Exact steady-state sparsity counters over 5 post-warmup steps. The
      // dense twin's table is not sparse-capable, so it contributes nothing
      // here; any dense fallback therefore means the sparse model's own
      // step scanned the full table.
      tensor::ResetSparseGradStats();
      for (int i = 0; i < 5; ++i) sparse_step();
      const tensor::SparseGradStatsSnapshot stats =
          tensor::SparseGradStats();
      row.rows_touched = stats.rows_touched;
      row.rows_total = stats.rows_total;
      row.dense_fallbacks = stats.dense_fallbacks;
      report.sparse_steps.push_back(row);
    }
    tensor::ResetSparseGradStats();
  }
  return report;
}

double Speedup(const Timed& baseline, const Timed& fast) {
  return fast.ns_per_call > 0 ? baseline.ns_per_call / fast.ns_per_call
                              : 0.0;
}

void PrintReport(const Report& r) {
  std::printf("%-24s %12s %12s %12s %8s %8s %8s\n", "op", "ns/element",
              "ns/call", "unpooled", "speedup", "acq/call", "misses");
  for (const OpRow& op : r.ops) {
    std::printf("%-24s %12.3f %12.0f %12.0f %8.2f %8.2f %8llu\n",
                op.name.c_str(), op.ns_per_element(), op.timed.ns_per_call,
                op.timed_unpooled.ns_per_call, op.pooled_speedup(),
                op.timed.acquires_per_call,
                static_cast<unsigned long long>(op.timed.misses));
  }
  if (!r.simd.empty()) {
    std::printf("\n%-10s %-16s %14s %14s %8s\n", "backend", "op",
                "vec ns/elt", "scalar ns/elt", "speedup");
    for (const SimdRow& s : r.simd) {
      std::printf("%-10s %-16s %14.4f %14.4f %8.2f\n", s.backend.c_str(),
                  s.op.c_str(), s.vector_ns_per_element(),
                  s.scalar_ns_per_element(), s.speedup());
    }
  }
  std::printf("\naffine_tanh fused   %12.0f ns/call (%.2fx vs unfused "
              "%12.0f ns/call)\n",
              r.affine_fused.ns_per_call,
              Speedup(r.affine_unfused, r.affine_fused),
              r.affine_unfused.ns_per_call);
  std::printf("train step  pooled  %12.0f ns/step (%.2fx vs unpooled "
              "%12.0f ns/step), %.1f acquires/step, %llu steady misses\n",
              r.step_pooled.ns_per_call,
              Speedup(r.step_unpooled, r.step_pooled),
              r.step_unpooled.ns_per_call,
              r.step_pooled.acquires_per_call,
              static_cast<unsigned long long>(r.step_pooled.misses));
  for (const SparseRow& s : r.sparse_steps) {
    std::printf("embed step  vocab=%-7d sparse %12.0f ns/step (%.2fx vs "
                "dense %12.0f ns/step), touched %llu/%llu rows over 5 "
                "steps, %llu dense fallbacks\n",
                s.vocab, s.sparse.ns_per_call, s.speedup(),
                s.dense.ns_per_call,
                static_cast<unsigned long long>(s.rows_touched),
                static_cast<unsigned long long>(s.rows_total),
                static_cast<unsigned long long>(s.dense_fallbacks));
  }
}

void WriteTimedJson(std::FILE* out, const char* name, const Timed& t,
                    const char* suffix) {
  std::fprintf(out,
               "    \"%s\": {\"ns_per_call\": %.1f, \"calls\": %lld, "
               "\"acquires_per_call\": %.2f, \"steady_misses\": %llu}%s\n",
               name, t.ns_per_call, static_cast<long long>(t.calls),
               t.acquires_per_call,
               static_cast<unsigned long long>(t.misses), suffix);
}

bool WriteJson(const Report& r, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  std::fprintf(out, "{\n  \"threads\": 1,\n  \"ops\": [\n");
  for (size_t i = 0; i < r.ops.size(); ++i) {
    const OpRow& op = r.ops[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"ns_per_element\": %.4f, "
                 "\"ns_per_call\": %.1f, \"unpooled_ns_per_call\": %.1f, "
                 "\"pooled_speedup\": %.4f, \"elements_per_call\": %.0f, "
                 "\"acquires_per_call\": %.2f, \"steady_misses\": %llu}%s\n",
                 op.name.c_str(), op.ns_per_element(), op.timed.ns_per_call,
                 op.timed_unpooled.ns_per_call, op.pooled_speedup(),
                 op.elements_per_call, op.timed.acquires_per_call,
                 static_cast<unsigned long long>(op.timed.misses),
                 i + 1 < r.ops.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"affine_tanh\": {\n");
  WriteTimedJson(out, "fused", r.affine_fused, ",");
  WriteTimedJson(out, "unfused", r.affine_unfused, ",");
  std::fprintf(out, "    \"fused_speedup\": %.4f\n  },\n",
               Speedup(r.affine_unfused, r.affine_fused));
  std::fprintf(out, "  \"train_step\": {\n");
  WriteTimedJson(out, "pooled", r.step_pooled, ",");
  WriteTimedJson(out, "unpooled", r.step_unpooled, ",");
  std::fprintf(out, "    \"pooled_speedup\": %.4f\n  }\n}\n",
               Speedup(r.step_unpooled, r.step_pooled));
  std::fclose(out);
  return true;
}

// The simd A/B gets its own file: per-(backend, op) ns/element for the
// vectorized and scalar variants, plus the best vector backend's tanh and
// matmul-forward speedups, which are this PR's acceptance numbers.
bool WriteSimdJson(const Report& r, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const tensor::simd::Backend best = tensor::simd::DetectBestBackend();
  const char* best_name = tensor::simd::BackendName(best);
  std::fprintf(out, "{\n  \"threads\": 1,\n  \"detected_best\": \"%s\",\n",
               best_name);
  std::fprintf(out, "  \"backends\": [");
  const std::vector<tensor::simd::Backend> supported =
      tensor::simd::SupportedBackends();
  for (size_t i = 0; i < supported.size(); ++i) {
    std::fprintf(out, "\"%s\"%s", tensor::simd::BackendName(supported[i]),
                 i + 1 < supported.size() ? ", " : "");
  }
  std::fprintf(out, "],\n  \"results\": [\n");
  for (size_t i = 0; i < r.simd.size(); ++i) {
    const SimdRow& s = r.simd[i];
    std::fprintf(
        out,
        "    {\"backend\": \"%s\", \"op\": \"%s\", "
        "\"elements_per_call\": %.0f, \"vector_ns_per_call\": %.1f, "
        "\"scalar_ns_per_call\": %.1f, \"vector_ns_per_element\": %.4f, "
        "\"scalar_ns_per_element\": %.4f, \"speedup\": %.4f}%s\n",
        s.backend.c_str(), s.op.c_str(), s.elements_per_call,
        s.vector.ns_per_call, s.scalar.ns_per_call,
        s.vector_ns_per_element(), s.scalar_ns_per_element(), s.speedup(),
        i + 1 < r.simd.size() ? "," : "");
  }
  // Acceptance summary: the detected-best backend's rows (parity rows on a
  // scalar-only host, where detected_best itself is scalar).
  double tanh_speedup = 0.0, matmul_speedup = 0.0;
  for (const SimdRow& s : r.simd) {
    if (s.backend != best_name) continue;
    if (s.op == "tanh") tanh_speedup = s.speedup();
    if (s.op == "matmul_forward") matmul_speedup = s.speedup();
  }
  std::fprintf(out,
               "  ],\n  \"best_vector\": {\"backend\": \"%s\", "
               "\"tanh_speedup\": %.4f, \"matmul_forward_speedup\": "
               "%.4f}\n}\n",
               best_name, tanh_speedup, matmul_speedup);
  std::fclose(out);
  return true;
}

// The sparse-vs-dense A/B gets its own file so the README can cite it and
// downstream tooling can diff embedding-step numbers without parsing the
// kernel table.
bool WriteSparseJson(const Report& r, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  std::fprintf(out, "{\n  \"threads\": 1,\n  \"optimizer\": \"sgd\",\n"
                    "  \"clip_norm\": 1.0,\n  \"sparse_steps\": [\n");
  for (size_t i = 0; i < r.sparse_steps.size(); ++i) {
    const SparseRow& s = r.sparse_steps[i];
    std::fprintf(
        out,
        "    {\"vocab\": %d, \"dim\": %d, \"batch\": %d, "
        "\"sparse_ns_per_step\": %.1f, \"dense_ns_per_step\": %.1f, "
        "\"sparse_speedup\": %.4f, \"rows_touched\": %llu, "
        "\"rows_total\": %llu, \"dense_fallbacks\": %llu}%s\n",
        s.vocab, s.dim, s.batch, s.sparse.ns_per_call, s.dense.ns_per_call,
        s.speedup(), static_cast<unsigned long long>(s.rows_touched),
        static_cast<unsigned long long>(s.rows_total),
        static_cast<unsigned long long>(s.dense_fallbacks),
        i + 1 < r.sparse_steps.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--list_backends") == 0) {
      for (tensor::simd::Backend backend :
           tensor::simd::SupportedBackends()) {
        std::printf("%s\n", tensor::simd::BackendName(backend));
      }
      return 0;
    }
  }
  util::SetGlobalThreads(1);
  const Report report = RunAll(smoke);
  PrintReport(report);

  if (smoke) {
    // The gate: a warmed-up training step may not touch the heap. Any miss
    // means an op on the hot path stopped recycling its storage.
    if (report.step_pooled.misses != 0) {
      std::fprintf(stderr,
                   "[bench_kernels] FAIL: warmed-up training step reported "
                   "%llu pool misses (expected 0)\n",
                   static_cast<unsigned long long>(
                       report.step_pooled.misses));
      return 1;
    }
    // Second gate: a steady-state embedding step must stay row-sparse — no
    // dense full-table gradient scan, and the touched-row count must be a
    // non-empty strict subset of the table.
    for (const SparseRow& s : report.sparse_steps) {
      if (s.dense_fallbacks != 0 || s.rows_touched == 0 ||
          s.rows_touched >= s.rows_total) {
        std::fprintf(stderr,
                     "[bench_kernels] FAIL: embedding step at vocab=%d lost "
                     "row sparsity (touched %llu/%llu rows, %llu dense "
                     "fallbacks; expected 0 fallbacks and 0 < touched < "
                     "total)\n",
                     s.vocab,
                     static_cast<unsigned long long>(s.rows_touched),
                     static_cast<unsigned long long>(s.rows_total),
                     static_cast<unsigned long long>(s.dense_fallbacks));
        return 1;
      }
    }
    // Third gate: no silent scalar fallback. When the host has a vector
    // ISA and nothing pinned the backend (a pinned scalar is an explicit
    // choice, e.g. check.sh's per-backend runs), eval dispatch must
    // resolve to the detected-best table.
    const tensor::simd::Backend best = tensor::simd::DetectBestBackend();
    if (best != tensor::simd::Backend::kScalar &&
        !tensor::simd::EvalBackendPinned() &&
        tensor::simd::ActiveEvalBackend() != best) {
      std::fprintf(stderr,
                   "[bench_kernels] FAIL: host supports %s but eval "
                   "dispatch resolved to %s without an explicit pin "
                   "(silent scalar fallback)\n",
                   tensor::simd::BackendName(best),
                   tensor::simd::BackendName(
                       tensor::simd::ActiveEvalBackend()));
      return 1;
    }
    std::fprintf(stderr,
                 "[bench_kernels] smoke OK: steady-state training step ran "
                 "with zero pool misses, zero dense full-table gradient "
                 "scans, and no silent scalar fallback (eval backend: "
                 "%s%s)\n",
                 tensor::simd::BackendName(
                     tensor::simd::ActiveEvalBackend()),
                 tensor::simd::EvalBackendPinned() ? ", pinned" : "");
    return 0;
  }

  (void)util::MakeDirectories("bench_results");
  const std::string path = "bench_results/BENCH_kernels.json";
  if (!WriteJson(report, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const std::string sparse_path = "bench_results/BENCH_sparse.json";
  if (!WriteSparseJson(report, sparse_path)) {
    std::fprintf(stderr, "cannot write %s\n", sparse_path.c_str());
    return 1;
  }
  const std::string simd_path = "bench_results/BENCH_simd.json";
  if (!WriteSimdJson(report, simd_path)) {
    std::fprintf(stderr, "cannot write %s\n", simd_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench_kernels] results written to %s, %s and %s\n",
               path.c_str(), sparse_path.c_str(), simd_path.c_str());
  return 0;
}

}  // namespace
}  // namespace imr

int main(int argc, char** argv) { return imr::Main(argc, argv); }
