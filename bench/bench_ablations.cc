// Ablations for the design choices DESIGN.md calls out (GDS preset):
//   A. LINE order: first-only vs second-only vs concatenated, measured both
//      intrinsically (MR same-relation vs cross-relation cosine gap) and
//      extrinsically (PA-MR AUC).
//   B. Bag aggregation for the fused model: selective attention vs average
//      vs max.
//   C. Piecewise vs plain max pooling (PCNN+ATT vs CNN+ATT).
//   D. Proximity-graph co-occurrence threshold: edge count and MR quality.
//   E. Learned fusion weights (alpha, beta, gamma) of PA-TMR.
//   F. Embedding source for MR: LINE vs DeepWalk vs node2vec vs GNN-style
//      propagation (the paper's Section V future-work direction).
#include <cstdio>

#include "bench_common.h"
#include "graph/deepwalk.h"
#include "graph/node2vec.h"
#include "graph/line.h"
#include "graph/propagation.h"
#include "re/pa_model.h"
#include "re/trainer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace imr::bench {
namespace {

// Mean MR cosine for same-relation vs different-relation fact pairs.
void MrQuality(const PreparedData& data, const graph::EmbeddingStore& store,
               double* same, double* diff) {
  const auto& triples = data.dataset->world.graph.triples();
  double same_sum = 0, diff_sum = 0;
  int same_n = 0, diff_n = 0;
  for (size_t i = 0; i < triples.size(); i += 2) {
    for (size_t j = i + 1; j < triples.size(); j += 2) {
      auto mr_i = store.MutualRelation(static_cast<int>(triples[i].head),
                                       static_cast<int>(triples[i].tail));
      auto mr_j = store.MutualRelation(static_cast<int>(triples[j].head),
                                       static_cast<int>(triples[j].tail));
      const double cosine = graph::EmbeddingStore::Cosine(mr_i, mr_j);
      if (triples[i].relation == triples[j].relation) {
        same_sum += cosine;
        ++same_n;
      } else {
        diff_sum += cosine;
        ++diff_n;
      }
    }
  }
  *same = same_n > 0 ? same_sum / same_n : 0;
  *diff = diff_n > 0 ? diff_sum / diff_n : 0;
}

struct VariantResult {
  double auc = 0.0;
  float alpha = 0.0f;
  float beta = 0.0f;
  float gamma = 0.0f;
};

VariantResult TrainVariant(const PreparedData& data,
                           const BenchContext& context,
                           const std::string& encoder,
                           re::Aggregation aggregation, bool use_mr,
                           bool use_type, int mr_dim) {
  util::Rng rng(context.seed + 99);
  re::PaModelConfig config;
  config.num_relations = data.bags->num_relations();
  config.encoder = encoder;
  config.aggregation = aggregation;
  config.use_mutual_relation = use_mr;
  config.use_entity_type = use_type;
  config.mutual_relation_dim = mr_dim;
  config.type_dim = 8;
  config.encoder_config.vocab_size = data.bags->vocabulary().size();
  config.encoder_config.word_dim = 16;
  config.encoder_config.position_dim = 3;
  config.encoder_config.max_position = 20;
  config.encoder_config.filters = 32;
  config.encoder_config.dropout = 0.5f;
  config.encoder_config.word_dropout = 0.25f;
  re::PaModel model(config, &rng);
  re::TrainerConfig trainer_config;
  trainer_config.epochs = context.epochs("gds");
  trainer_config.batch_size = context.batch_size;
  trainer_config.optimizer = "adam";
  trainer_config.learning_rate = 0.01f;
  auto result = re::TrainAndEvaluate(&model, data.bags->train_bags(),
                                     data.bags->test_bags(),
                                     trainer_config);
  return {result.auc, model.alpha(), model.beta(), model.gamma()};
}

}  // namespace

int Run(const BenchContext& context) {
  std::printf("=== Ablations (GDS preset) ===\n\n");
  PreparedData data = PrepareData("gds", context);
  std::vector<std::vector<std::string>> tsv_rows;
  tsv_rows.push_back({"ablation", "variant", "metric", "value"});

  // --- A. LINE order ---
  std::printf("A. LINE proximity order (intrinsic MR quality + PA-MR AUC)\n");
  std::printf("   %-14s %10s %10s %8s %10s\n", "variant", "same-cos",
              "diff-cos", "gap", "PA-MR AUC");
  struct OrderVariant {
    const char* name;
    bool first, second;
  };
  for (const OrderVariant& variant :
       {OrderVariant{"first-only", true, false},
        OrderVariant{"second-only", false, true},
        OrderVariant{"concat", true, true}}) {
    graph::LineConfig line;
    line.dim = 128;
    line.first_order = variant.first;
    line.second_order = variant.second;
    line.samples_per_edge = 300;
    line.seed = context.seed + 1000;
    graph::EmbeddingStore store = graph::TrainLine(*data.proximity, line);
    double same = 0, diff = 0;
    MrQuality(data, store, &same, &diff);
    IMR_CHECK(data.bags->AttachMutualRelations(store).ok());
    const VariantResult variant_result =
        TrainVariant(data, context, "pcnn", re::Aggregation::kAttention,
                     /*use_mr=*/true, /*use_type=*/false, store.dim());
    std::printf("   %-14s %10.3f %10.3f %8.3f %10.4f\n", variant.name, same,
                diff, same - diff, variant_result.auc);
    tsv_rows.push_back({"line_order", variant.name, "mr_gap",
                        util::StrFormat("%.4f", same - diff)});
    tsv_rows.push_back({"line_order", variant.name, "pa_mr_auc",
                        util::StrFormat("%.4f", variant_result.auc)});
  }
  // Restore the default embeddings for later sections.
  IMR_CHECK(data.bags->AttachMutualRelations(data.embeddings).ok());

  // --- B. Aggregation ---
  std::printf("\nB. Bag aggregation for PA-TMR\n");
  struct AggVariant {
    const char* name;
    re::Aggregation aggregation;
  };
  for (const AggVariant& variant :
       {AggVariant{"attention", re::Aggregation::kAttention},
        AggVariant{"average", re::Aggregation::kAverage},
        AggVariant{"max", re::Aggregation::kMax}}) {
    const VariantResult variant_result =
        TrainVariant(data, context, "pcnn", variant.aggregation, true, true,
                     data.embeddings.dim());
    std::printf("   %-14s AUC=%.4f\n", variant.name, variant_result.auc);
    tsv_rows.push_back({"aggregation", variant.name, "auc",
                        util::StrFormat("%.4f", variant_result.auc)});
  }

  // --- C. Pooling (reuses the Fig.4/Table IV cache) ---
  std::printf("\nC. Piecewise vs plain max pooling\n");
  for (const char* model : {"PCNN+ATT", "CNN+ATT"}) {
    auto result =
        ResultFromScores(GetOrComputeScores(model, data, context), data);
    std::printf("   %-14s AUC=%.4f\n", model, result.auc);
    tsv_rows.push_back({"pooling", model, "auc",
                        util::StrFormat("%.4f", result.auc)});
  }

  // --- D. Proximity threshold ---
  std::printf("\nD. Proximity-graph co-occurrence threshold\n");
  for (int threshold : {1, 2, 4, 8}) {
    graph::ProximityGraph graph(data.dataset->world.graph.num_entities());
    graph.AddCorpus(data.dataset->unlabeled.sentences);
    graph.Finalize(threshold);
    graph::LineConfig line;
    line.dim = 64;
    line.samples_per_edge = 200;
    line.seed = context.seed + 2000;
    graph::EmbeddingStore store = graph::TrainLine(graph, line);
    double same = 0, diff = 0;
    MrQuality(data, store, &same, &diff);
    std::printf("   threshold %d: %zu edges, MR gap %.3f\n", threshold,
                graph.edges().size(), same - diff);
    tsv_rows.push_back({"threshold", std::to_string(threshold), "edges",
                        std::to_string(graph.edges().size())});
    tsv_rows.push_back({"threshold", std::to_string(threshold), "mr_gap",
                        util::StrFormat("%.4f", same - diff)});
  }

  // --- E. Learned fusion weights ---
  std::printf("\nE. Learned fusion weights of PA-TMR\n");
  const VariantResult fusion =
      TrainVariant(data, context, "pcnn", re::Aggregation::kAttention, true,
                   true, data.embeddings.dim());
  std::printf("   alpha (MR) = %.3f, beta (type) = %.3f, gamma (RE) = %.3f "
              "(AUC=%.4f)\n", fusion.alpha, fusion.beta, fusion.gamma,
              fusion.auc);
  tsv_rows.push_back({"fusion", "alpha", "weight",
                      util::StrFormat("%.4f", fusion.alpha)});
  tsv_rows.push_back({"fusion", "beta", "weight",
                      util::StrFormat("%.4f", fusion.beta)});
  tsv_rows.push_back({"fusion", "gamma", "weight",
                      util::StrFormat("%.4f", fusion.gamma)});

  // --- F. Embedding source: LINE vs DeepWalk vs LINE+propagation ---
  std::printf("\nF. MR embedding source (intrinsic gap + PA-MR AUC)\n");
  std::printf("   %-16s %8s %10s\n", "source", "MR gap", "PA-MR AUC");
  auto eval_source = [&](const char* name,
                         const graph::EmbeddingStore& store) {
    double same = 0, diff = 0;
    MrQuality(data, store, &same, &diff);
    IMR_CHECK(data.bags->AttachMutualRelations(store).ok());
    const VariantResult result =
        TrainVariant(data, context, "pcnn", re::Aggregation::kAttention,
                     /*use_mr=*/true, /*use_type=*/false, store.dim());
    std::printf("   %-16s %8.3f %10.4f\n", name, same - diff, result.auc);
    tsv_rows.push_back({"mr_source", name, "mr_gap",
                        util::StrFormat("%.4f", same - diff)});
    tsv_rows.push_back({"mr_source", name, "pa_mr_auc",
                        util::StrFormat("%.4f", result.auc)});
  };
  eval_source("line", data.embeddings);

  graph::DeepWalkConfig deepwalk;
  deepwalk.dim = data.embeddings.dim();
  deepwalk.seed = context.seed + 3000;
  eval_source("deepwalk", graph::TrainDeepWalk(*data.proximity, deepwalk));

  graph::Node2VecConfig node2vec;
  node2vec.dim = data.embeddings.dim();
  node2vec.p = 0.5;  // depth-first-ish walks favour role similarity
  node2vec.q = 2.0;
  node2vec.seed = context.seed + 4000;
  eval_source("node2vec", graph::TrainNode2Vec(*data.proximity, node2vec));

  graph::PropagationConfig propagation;
  propagation.rounds = 2;
  eval_source("line+propagate",
              graph::PropagateEmbeddings(*data.proximity, data.embeddings,
                                         propagation));
  // Leave the default embeddings attached for anyone extending this bench.
  IMR_CHECK(data.bags->AttachMutualRelations(data.embeddings).ok());

  WriteTsv(context, "ablations", tsv_rows);
  return 0;
}

}  // namespace imr::bench

int main(int argc, char** argv) {
  return imr::bench::BenchMain(argc, argv, imr::bench::Run);
}
