// Figure 4: precision-recall curves of all methods on both datasets. This
// is the bench that trains the main model zoo; its per-bag score matrices
// are cached under <results_dir>/cache and reused by bench_table4 /
// bench_fig6 / bench_fig7.
//
// Stdout shows the curves as precision sampled at fixed recall levels (one
// column per model); the full curves land in TSV files.
#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

namespace imr::bench {
namespace {

const std::vector<std::string>& CurveModels() {
  static const std::vector<std::string>& kModels =
      *new std::vector<std::string>{"Mintz",  "MultiR",   "MIMLRE",
                                    "PCNN",   "PCNN+ATT", "BGWA",
                                    "CNN+RL", "PA-T",     "PA-MR",
                                    "PA-TMR"};
  return kModels;
}

// Precision at a recall level: the max precision among curve points with
// recall >= level (standard interpolated reading of a PR curve).
double PrecisionAtRecall(const std::vector<eval::PrPoint>& curve,
                         double level) {
  double best = 0.0;
  for (const eval::PrPoint& point : curve) {
    if (point.recall >= level) best = std::max(best, point.precision);
  }
  return best;
}

}  // namespace

int Run(const BenchContext& context) {
  std::printf("=== Figure 4: precision-recall curves ===\n\n");
  for (const std::string& preset : {std::string("nyt"), std::string("gds")}) {
    PreparedData data = PrepareData(preset, context);
    std::printf("--- %s dataset: precision at recall levels ---\n",
                preset == "nyt" ? "NYT" : "GDS");
    std::printf("%-10s", "recall");
    for (const std::string& model : CurveModels())
      std::printf(" %9s", model.c_str());
    std::printf("\n");

    std::vector<std::vector<eval::PrPoint>> curves;
    std::vector<std::vector<std::string>> tsv_rows;
    tsv_rows.push_back({"model", "recall", "precision", "threshold"});
    for (const std::string& model : CurveModels()) {
      auto scores = GetOrComputeScores(model, data, context);
      eval::HeldOutResult result = ResultFromScores(scores, data);
      // Downsample the curve for the TSV trace.
      const size_t step = std::max<size_t>(1, result.curve.size() / 400);
      for (size_t i = 0; i < result.curve.size(); i += step) {
        tsv_rows.push_back(
            {model, util::StrFormat("%.4f", result.curve[i].recall),
             util::StrFormat("%.4f", result.curve[i].precision),
             util::StrFormat("%.6f", result.curve[i].threshold)});
      }
      curves.push_back(std::move(result.curve));
    }
    for (double recall = 0.05; recall <= 0.90; recall += 0.05) {
      std::printf("%-10.2f", recall);
      for (const auto& curve : curves)
        std::printf(" %9.3f", PrecisionAtRecall(curve, recall));
      std::printf("\n");
    }
    std::printf("\n");
    WriteTsv(context, "fig4_pr_curve_" + preset, tsv_rows);
  }
  std::printf("Expected shape (paper): PA-TMR dominates at matched recall; "
              "PA-T/PA-MR sit between\nPCNN+ATT and PA-TMR; non-neural "
              "Mintz/MultiR trail the neural models at high recall.\n");
  return 0;
}

}  // namespace imr::bench

int main(int argc, char** argv) {
  return imr::bench::BenchMain(argc, argv, imr::bench::Run);
}
