// Substrate micro-benchmarks (google-benchmark): tensor ops, encoder
// throughput, LINE edge-sampling throughput, alias sampling, and the
// evaluation pipeline. These are the performance counters a user needs to
// size real workloads.
#include <benchmark/benchmark.h>

#include "datagen/presets.h"
#include "graph/alias_sampler.h"
#include "graph/line.h"
#include "graph/proximity_graph.h"
#include "nn/encoders.h"
#include "nn/init.h"
#include "re/bag_dataset.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace imr {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  tensor::Tensor a = nn::NormalInit({n, n}, 1.0f, &rng);
  tensor::Tensor b = nn::NormalInit({n, n}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv1dSame(benchmark::State& state) {
  const int time = static_cast<int>(state.range(0));
  const int dim = 60, filters = 230, window = 3;
  util::Rng rng(2);
  tensor::Tensor x = nn::NormalInit({time, dim}, 1.0f, &rng);
  tensor::Tensor w = nn::NormalInit({filters, window * dim}, 0.1f, &rng);
  tensor::Tensor b = tensor::Tensor::Zeros({filters});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::Conv1dSame(x, w, b, window));
  }
  state.SetItemsProcessed(state.iterations() * time);
}
BENCHMARK(BM_Conv1dSame)->Arg(20)->Arg(60)->Arg(120);

void BM_SoftmaxBackward(benchmark::State& state) {
  util::Rng rng(3);
  tensor::Tensor x = nn::NormalInit({160, 53}, 1.0f, &rng);
  x.set_requires_grad(true);
  std::vector<int> labels(160, 1);
  for (auto _ : state) {
    x.ZeroGrad();
    tensor::Tensor loss = tensor::CrossEntropyLoss(x, labels);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_SoftmaxBackward);

std::unique_ptr<nn::SentenceEncoder> MakeBenchEncoder(
    const std::string& kind, util::Rng* rng) {
  nn::EncoderConfig config;
  config.vocab_size = 2000;
  config.word_dim = 50;
  config.position_dim = 5;
  config.max_position = 60;
  config.filters = 230;
  config.dropout = 0.0f;
  return nn::MakeEncoder(kind, config, rng);
}

nn::EncoderInput MakeBenchSentence(int length, util::Rng* rng) {
  nn::EncoderInput input;
  for (int t = 0; t < length; ++t) {
    input.word_ids.push_back(static_cast<int>(rng->UniformInt(2000)));
    input.head_offsets.push_back(60 + t);
    input.tail_offsets.push_back(60 + t - length / 2);
  }
  input.head_index = 0;
  input.tail_index = length / 2;
  return input;
}

void BM_EncoderForward(benchmark::State& state, const std::string& kind) {
  util::Rng rng(4);
  auto encoder = MakeBenchEncoder(kind, &rng);
  encoder->SetTraining(false);
  nn::EncoderInput sentence = MakeBenchSentence(40, &rng);
  tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder->Encode(sentence, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_EncoderForward, pcnn, "pcnn");
BENCHMARK_CAPTURE(BM_EncoderForward, cnn, "cnn");
BENCHMARK_CAPTURE(BM_EncoderForward, gru, "gru");
BENCHMARK_CAPTURE(BM_EncoderForward, bgwa, "bgwa");

void BM_EncoderTrainStep(benchmark::State& state) {
  util::Rng rng(5);
  auto encoder = MakeBenchEncoder("pcnn", &rng);
  nn::EncoderInput sentence = MakeBenchSentence(40, &rng);
  for (auto _ : state) {
    encoder->ZeroGrad();
    tensor::Tensor out = encoder->Encode(sentence, &rng);
    tensor::Sum(tensor::Mul(out, out)).Backward();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncoderTrainStep);

void BM_AliasSampler(benchmark::State& state) {
  util::Rng rng(6);
  std::vector<double> weights(100000);
  for (double& w : weights) w = rng.Uniform() + 0.01;
  graph::AliasSampler sampler(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasSampler);

void BM_LineTraining(benchmark::State& state) {
  datagen::PresetOptions options;
  options.scale = 0.5;
  datagen::SyntheticDataset dataset = datagen::MakeGdsLike(options);
  graph::ProximityGraph graph(dataset.world.graph.num_entities());
  graph.AddCorpus(dataset.unlabeled.sentences);
  graph.Finalize(2);
  for (auto _ : state) {
    graph::LineConfig config;
    config.dim = 64;
    config.samples_per_edge = 50;
    benchmark::DoNotOptimize(graph::TrainLine(graph, config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.edges().size()) * 50);
  state.SetLabel(std::to_string(graph.edges().size()) + " edges");
}
BENCHMARK(BM_LineTraining);

void BM_ProximityGraphBuild(benchmark::State& state) {
  datagen::PresetOptions options;
  options.scale = 1.0;
  datagen::SyntheticDataset dataset = datagen::MakeGdsLike(options);
  for (auto _ : state) {
    graph::ProximityGraph graph(dataset.world.graph.num_entities());
    graph.AddCorpus(dataset.unlabeled.sentences);
    graph.Finalize(2);
    benchmark::DoNotOptimize(graph.edges().size());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(dataset.unlabeled.sentences.size()));
}
BENCHMARK(BM_ProximityGraphBuild);

}  // namespace
}  // namespace imr

BENCHMARK_MAIN();
