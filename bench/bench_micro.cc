// Substrate micro-benchmarks (google-benchmark): tensor ops, encoder
// throughput, LINE edge-sampling throughput, alias sampling, and the
// evaluation pipeline. These are the performance counters a user needs to
// size real workloads.
//
// Besides the google-benchmark suite, main() first runs a thread-scaling
// sweep over imr_threads in {1, 2, 4, 8} for the parallelised hot paths
// (MatMul forward/backward, Conv1dSame, LINE SGNS) and records ops/sec and
// speedup-vs-1-thread in bench_results/micro_scaling.tsv plus the
// machine-readable bench_results/BENCH_parallel.json, so every later PR has
// a perf trajectory to compare against. Each row also records the tensor
// buffer-pool hit/miss counts for its timed region (warmup excluded), so a
// steady-state allocation regression shows up as pool_misses > 0, and the
// row-sparse gradient counters (rows_touched / rows_total), so a sweep row
// whose touch rate creeps toward 1.0 flags a sparsity regression. The sweep
// includes embedding-dominated train steps over a vocab sweep up to the
// NYT-10 word vocabulary, where those columns are the interesting ones. Pass
// --skip_scaling to go straight to google-benchmark, --scaling_only to stop
// after the sweep, or --warmup_iters=N to grow the untimed warmup.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "datagen/presets.h"
#include "graph/alias_sampler.h"
#include "graph/line.h"
#include "graph/proximity_graph.h"
#include "nn/encoders.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "re/bag_dataset.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/tsv_writer.h"

namespace imr {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  tensor::Tensor a = nn::NormalInit({n, n}, 1.0f, &rng);
  tensor::Tensor b = nn::NormalInit({n, n}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv1dSame(benchmark::State& state) {
  const int time = static_cast<int>(state.range(0));
  const int dim = 60, filters = 230, window = 3;
  util::Rng rng(2);
  tensor::Tensor x = nn::NormalInit({time, dim}, 1.0f, &rng);
  tensor::Tensor w = nn::NormalInit({filters, window * dim}, 0.1f, &rng);
  tensor::Tensor b = tensor::Tensor::Zeros({filters});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::Conv1dSame(x, w, b, window));
  }
  state.SetItemsProcessed(state.iterations() * time);
}
BENCHMARK(BM_Conv1dSame)->Arg(20)->Arg(60)->Arg(120);

void BM_SoftmaxBackward(benchmark::State& state) {
  util::Rng rng(3);
  tensor::Tensor x = nn::NormalInit({160, 53}, 1.0f, &rng);
  x.set_requires_grad(true);
  std::vector<int> labels(160, 1);
  for (auto _ : state) {
    x.ZeroGrad();
    tensor::Tensor loss = tensor::CrossEntropyLoss(x, labels);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_SoftmaxBackward);

std::unique_ptr<nn::SentenceEncoder> MakeBenchEncoder(
    const std::string& kind, util::Rng* rng) {
  nn::EncoderConfig config;
  config.vocab_size = 2000;
  config.word_dim = 50;
  config.position_dim = 5;
  config.max_position = 60;
  config.filters = 230;
  config.dropout = 0.0f;
  return nn::MakeEncoder(kind, config, rng);
}

nn::EncoderInput MakeBenchSentence(int length, util::Rng* rng) {
  nn::EncoderInput input;
  for (int t = 0; t < length; ++t) {
    input.word_ids.push_back(static_cast<int>(rng->UniformInt(2000)));
    input.head_offsets.push_back(60 + t);
    input.tail_offsets.push_back(60 + t - length / 2);
  }
  input.head_index = 0;
  input.tail_index = length / 2;
  return input;
}

void BM_EncoderForward(benchmark::State& state, const std::string& kind) {
  util::Rng rng(4);
  auto encoder = MakeBenchEncoder(kind, &rng);
  encoder->SetTraining(false);
  nn::EncoderInput sentence = MakeBenchSentence(40, &rng);
  tensor::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder->Encode(sentence, &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_EncoderForward, pcnn, "pcnn");
BENCHMARK_CAPTURE(BM_EncoderForward, cnn, "cnn");
BENCHMARK_CAPTURE(BM_EncoderForward, gru, "gru");
BENCHMARK_CAPTURE(BM_EncoderForward, bgwa, "bgwa");

void BM_EncoderTrainStep(benchmark::State& state) {
  util::Rng rng(5);
  auto encoder = MakeBenchEncoder("pcnn", &rng);
  nn::EncoderInput sentence = MakeBenchSentence(40, &rng);
  for (auto _ : state) {
    encoder->ZeroGrad();
    tensor::Tensor out = encoder->Encode(sentence, &rng);
    tensor::Sum(tensor::Mul(out, out)).Backward();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncoderTrainStep);

void BM_AliasSampler(benchmark::State& state) {
  util::Rng rng(6);
  std::vector<double> weights(100000);
  for (double& w : weights) w = rng.Uniform() + 0.01;
  graph::AliasSampler sampler(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(&rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasSampler);

void BM_LineTraining(benchmark::State& state) {
  datagen::PresetOptions options;
  options.scale = 0.5;
  datagen::SyntheticDataset dataset = datagen::MakeGdsLike(options);
  graph::ProximityGraph graph(dataset.world.graph.num_entities());
  graph.AddCorpus(dataset.unlabeled.sentences);
  graph.Finalize(2);
  for (auto _ : state) {
    graph::LineConfig config;
    config.dim = 64;
    config.samples_per_edge = 50;
    benchmark::DoNotOptimize(graph::TrainLine(graph, config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.edges().size()) * 50);
  state.SetLabel(std::to_string(graph.edges().size()) + " edges");
}
BENCHMARK(BM_LineTraining);

void BM_ProximityGraphBuild(benchmark::State& state) {
  datagen::PresetOptions options;
  options.scale = 1.0;
  datagen::SyntheticDataset dataset = datagen::MakeGdsLike(options);
  for (auto _ : state) {
    graph::ProximityGraph graph(dataset.world.graph.num_entities());
    graph.AddCorpus(dataset.unlabeled.sentences);
    graph.Finalize(2);
    benchmark::DoNotOptimize(graph.edges().size());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(dataset.unlabeled.sentences.size()));
}
BENCHMARK(BM_ProximityGraphBuild);

// ---- thread-scaling sweep -------------------------------------------------

struct ScalingRow {
  std::string bench;
  int threads = 1;
  double ops_per_sec = 0.0;
  double speedup = 1.0;  // vs the 1-thread row of the same bench
  // Buffer-pool traffic during the timed region (warmup excluded). A warm
  // steady state shows pool_misses == 0; a nonzero value flags an
  // allocation regression on that path.
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  // Row-sparse gradient traffic during the timed region: rows the
  // optimizer walked vs rows a dense pass would have walked. 0/0 for
  // benches with no row-sparse parameters; for the embed_step sweep a
  // touch rate near 1.0 (or rows_total inflated by dense fallbacks) flags
  // a sparsity regression.
  uint64_t rows_touched = 0;
  uint64_t rows_total = 0;
};

// Embedding-dominated training step for the vocab sweep: table lookup,
// linear head, cross-entropy, fused SGD update. Dominated by the gradient
// path of the `vocab × dim` table, which is the point.
struct EmbedStepModel : nn::Module {
  EmbedStepModel(int vocab, int dim, int classes, util::Rng* rng)
      : embed(vocab, dim, rng), out(dim, classes, rng) {
    RegisterChild("embed", &embed);
    RegisterChild("out", &out);
  }
  nn::Embedding embed;
  nn::Linear out;
};

// Warmup calls before the timed region; --warmup_iters=N overrides. More
// warmup stabilises paths that lazily grow state (thread pools, the tensor
// buffer pool) before the steady state is measured.
int g_warmup_iters = 1;

// Calls `body` (which performs `ops_per_call` units of work) repeatedly for
// at least `min_seconds` of wall clock and returns ops/sec. Pool and
// sparse-gradient counters are reset after warmup so the caller can read
// the timed region's traffic from tensor::PoolStats() /
// tensor::SparseGradStats().
template <typename Body>
double MeasureOpsPerSec(const Body& body, double ops_per_call,
                        double min_seconds = 0.2) {
  using clock = std::chrono::steady_clock;
  for (int i = 0; i < g_warmup_iters; ++i) body();
  tensor::ResetPoolStats();
  tensor::ResetSparseGradStats();
  int64_t calls = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    body();
    ++calls;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(calls) * ops_per_call / elapsed;
}

void RunScalingSweep() {
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<ScalingRow> rows;

  const int n = 256;
  util::Rng rng(11);
  tensor::Tensor a = nn::NormalInit({n, n}, 1.0f, &rng);
  tensor::Tensor b = nn::NormalInit({n, n}, 1.0f, &rng);
  tensor::Tensor ag = nn::NormalInit({n, n}, 1.0f, &rng);
  tensor::Tensor bg = nn::NormalInit({n, n}, 1.0f, &rng);
  ag.set_requires_grad(true);
  bg.set_requires_grad(true);

  const int time = 120, dim = 60, filters = 230, window = 3;
  tensor::Tensor cx = nn::NormalInit({time, dim}, 1.0f, &rng);
  tensor::Tensor cw = nn::NormalInit({filters, window * dim}, 0.1f, &rng);
  tensor::Tensor cb = tensor::Tensor::Zeros({filters});

  datagen::PresetOptions options;
  options.scale = 0.25;
  datagen::SyntheticDataset dataset = datagen::MakeGdsLike(options);
  graph::ProximityGraph graph(dataset.world.graph.num_entities());
  graph.AddCorpus(dataset.unlabeled.sentences);
  graph.Finalize(2);
  const int64_t line_samples_per_edge = 50;
  const double line_ops = static_cast<double>(graph.edges().size()) *
                          static_cast<double>(line_samples_per_edge);

  // Vocab sweep for the embedding step, up to the NYT-10 word vocabulary.
  // The models persist across thread counts (training just keeps going);
  // what the sweep measures is steady-state step throughput and the
  // touched-row fraction, neither of which cares about the weights.
  const std::vector<int> embed_vocabs = {2000, 20000, 114042};
  const int embed_dim = 50, embed_classes = 53, embed_batch = 128;
  std::vector<std::unique_ptr<EmbedStepModel>> embed_models;
  std::vector<std::unique_ptr<nn::Sgd>> embed_opts;
  std::vector<std::vector<int>> embed_indices, embed_labels;
  for (int vocab : embed_vocabs) {
    embed_models.push_back(std::make_unique<EmbedStepModel>(
        vocab, embed_dim, embed_classes, &rng));
    embed_opts.push_back(std::make_unique<nn::Sgd>(
        embed_models.back().get(), 0.3f, 0.0f, /*clip_norm=*/1.0f));
    std::vector<int> indices(static_cast<size_t>(embed_batch));
    std::vector<int> labels(static_cast<size_t>(embed_batch));
    for (int i = 0; i < embed_batch; ++i) {
      indices[static_cast<size_t>(i)] =
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(vocab)));
      labels[static_cast<size_t>(i)] = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(embed_classes)));
    }
    embed_indices.push_back(std::move(indices));
    embed_labels.push_back(std::move(labels));
  }

  for (int threads : thread_counts) {
    util::SetGlobalThreads(threads);

    // MeasureOpsPerSec resets the pool and sparse-gradient counters after
    // warmup, so the snapshots taken here cover exactly the timed region.
    auto add_row = [&rows, threads](const std::string& name,
                                    double ops_per_sec) {
      const tensor::PoolStatsSnapshot pool = tensor::PoolStats();
      const tensor::SparseGradStatsSnapshot sparse =
          tensor::SparseGradStats();
      rows.push_back({name, threads, ops_per_sec, 1.0, pool.total_hits(),
                      pool.total_misses(), sparse.rows_touched,
                      sparse.rows_total});
    };

    add_row("matmul256_forward",
            MeasureOpsPerSec(
                [&] {
                  tensor::NoGradGuard no_grad;
                  benchmark::DoNotOptimize(tensor::MatMul(a, b));
                },
                2.0 * n * n * n));

    add_row("matmul256_train_step",
            MeasureOpsPerSec(
                [&] {
                  ag.ZeroGrad();
                  bg.ZeroGrad();
                  tensor::Sum(tensor::MatMul(ag, bg)).Backward();
                },
                // forward + dA + dB
                3.0 * 2.0 * n * n * n));

    add_row("conv1d_forward",
            MeasureOpsPerSec(
                [&] {
                  tensor::NoGradGuard no_grad;
                  benchmark::DoNotOptimize(
                      tensor::Conv1dSame(cx, cw, cb, window));
                },
                2.0 * time * filters * window * dim));

    add_row("line_sgns",
            MeasureOpsPerSec(
                [&] {
                  graph::LineConfig config;
                  config.dim = 64;
                  config.samples_per_edge = line_samples_per_edge;
                  config.threads = threads;
                  benchmark::DoNotOptimize(
                      graph::TrainLine(graph, config));
                },
                line_ops, /*min_seconds=*/0.5));

    for (size_t vi = 0; vi < embed_vocabs.size(); ++vi) {
      EmbedStepModel& model = *embed_models[vi];
      nn::Sgd& opt = *embed_opts[vi];
      const std::vector<int>& indices = embed_indices[vi];
      const std::vector<int>& labels = embed_labels[vi];
      add_row("embed_step_v" + std::to_string(embed_vocabs[vi]),
              MeasureOpsPerSec(
                  [&] {
                    tensor::Tensor e = model.embed.Forward(indices);
                    tensor::Tensor logits = model.out.Forward(e);
                    tensor::CrossEntropyLoss(logits, labels).Backward();
                    opt.Step();
                  },
                  static_cast<double>(embed_batch)));
    }
  }
  util::SetGlobalThreads(0);  // restore default for the benchmark suite

  // Speedup vs the 1-thread row of the same benchmark.
  for (ScalingRow& row : rows) {
    for (const ScalingRow& base : rows) {
      if (base.bench == row.bench && base.threads == 1) {
        row.speedup = base.ops_per_sec > 0 ? row.ops_per_sec / base.ops_per_sec
                                           : 0.0;
        break;
      }
    }
  }

  (void)util::MakeDirectories("bench_results");
  {
    util::TsvWriter writer("bench_results/micro_scaling.tsv");
    writer.WriteRow({"bench", "threads", "ops_per_sec", "speedup_vs_1",
                     "pool_hits", "pool_misses", "rows_touched",
                     "rows_total"});
    for (const ScalingRow& row : rows) {
      char ops[64], speedup[64];
      std::snprintf(ops, sizeof(ops), "%.3e", row.ops_per_sec);
      std::snprintf(speedup, sizeof(speedup), "%.3f", row.speedup);
      writer.WriteRow({row.bench, std::to_string(row.threads), ops, speedup,
                       std::to_string(row.pool_hits),
                       std::to_string(row.pool_misses),
                       std::to_string(row.rows_touched),
                       std::to_string(row.rows_total)});
    }
    util::Status status = writer.Close();
    if (!status.ok())
      std::fprintf(stderr, "cannot write micro_scaling.tsv: %s\n",
                   status.ToString().c_str());
  }
  {
    std::FILE* out = std::fopen("bench_results/BENCH_parallel.json", "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
      return;
    }
    std::fprintf(out, "{\n  \"hardware_concurrency\": %u,\n  \"results\": [\n",
                 std::thread::hardware_concurrency());
    for (size_t i = 0; i < rows.size(); ++i) {
      const ScalingRow& row = rows[i];
      std::fprintf(out,
                   "    {\"bench\": \"%s\", \"threads\": %d, "
                   "\"ops_per_sec\": %.6e, \"speedup_vs_1\": %.4f, "
                   "\"pool_hits\": %llu, \"pool_misses\": %llu, "
                   "\"rows_touched\": %llu, \"rows_total\": %llu}%s\n",
                   row.bench.c_str(), row.threads, row.ops_per_sec,
                   row.speedup,
                   static_cast<unsigned long long>(row.pool_hits),
                   static_cast<unsigned long long>(row.pool_misses),
                   static_cast<unsigned long long>(row.rows_touched),
                   static_cast<unsigned long long>(row.rows_total),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }
  std::fprintf(stderr,
               "[bench_micro] scaling sweep written to "
               "bench_results/micro_scaling.tsv and BENCH_parallel.json\n");
}

}  // namespace
}  // namespace imr

int main(int argc, char** argv) {
  bool skip_scaling = false;
  bool scaling_only = false;
  // Strip our flags before google-benchmark sees (and rejects) them.
  int out_argc = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip_scaling") == 0) {
      skip_scaling = true;
    } else if (std::strcmp(argv[i], "--scaling_only") == 0) {
      scaling_only = true;
    } else if (std::strncmp(argv[i], "--warmup_iters=", 15) == 0) {
      const int warmup = std::atoi(argv[i] + 15);
      if (warmup >= 0) imr::g_warmup_iters = warmup;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!skip_scaling) imr::RunScalingSweep();
  if (!scaling_only) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
