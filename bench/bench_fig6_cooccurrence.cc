// Figure 6: F1 of PA-TMR (vs PCNN+ATT) for test pairs bucketed by the
// quantile of their co-occurrence frequency in the *unlabeled* corpus. The
// paper's finding: F1 rises with co-occurrence frequency, and PA-TMR leads
// at every quantile because the proximity-graph embedding of frequent
// pairs is better trained.
#include <cstdio>

#include "bench_common.h"
#include "eval/buckets.h"
#include "util/string_util.h"

namespace imr::bench {
int Run(const BenchContext& context) {
  std::printf("=== Figure 6: F1 by unlabeled-corpus co-occurrence quantile "
              "===\n\n");
  std::vector<std::vector<std::string>> tsv_rows;
  tsv_rows.push_back({"dataset", "quantile", "bags", "f1_pcnn_att",
                      "f1_pa_tmr"});
  for (const std::string& preset : {std::string("nyt"), std::string("gds")}) {
    PreparedData data = PrepareData(preset, context);
    const auto& bags = data.bags->test_bags();

    auto statistic = [&data](const re::Bag& bag) {
      return static_cast<double>(
          data.proximity->CooccurrenceCount(bag.head, bag.tail));
    };
    std::vector<std::string> labels;
    auto bucket_of = eval::QuantileBuckets(bags, statistic, 4, &labels);

    auto baseline =
        ResultFromScores(GetOrComputeScores("PCNN+ATT", data, context), data);
    auto ours =
        ResultFromScores(GetOrComputeScores("PA-TMR", data, context), data);
    auto baseline_buckets =
        eval::F1ByBucket(bags, baseline.gold_labels,
                         baseline.hard_predictions, labels, bucket_of);
    auto our_buckets = eval::F1ByBucket(bags, ours.gold_labels,
                                        ours.hard_predictions, labels,
                                        bucket_of);

    std::printf("--- %s ---\n", preset == "nyt" ? "NYT" : "GDS");
    std::printf("%-10s %6s %14s %12s\n", "quantile", "bags", "PCNN+ATT F1",
                "PA-TMR F1");
    for (size_t b = 0; b < labels.size(); ++b) {
      std::printf("%-10s %6lld %14.4f %12.4f\n", labels[b].c_str(),
                  static_cast<long long>(our_buckets.bag_counts[b]),
                  baseline_buckets.scores[b].f1, our_buckets.scores[b].f1);
      tsv_rows.push_back(
          {preset, labels[b], std::to_string(our_buckets.bag_counts[b]),
           util::StrFormat("%.4f", baseline_buckets.scores[b].f1),
           util::StrFormat("%.4f", our_buckets.scores[b].f1)});
    }
    std::printf("\n");
  }
  std::printf("Expected shape (paper Fig. 6): F1 trends upward with the "
              "co-occurrence quantile,\nand PA-TMR stays above PCNN+ATT "
              "across quantiles.\n");
  WriteTsv(context, "fig6_cooccurrence", tsv_rows);
  return 0;
}

}  // namespace imr::bench

int main(int argc, char** argv) {
  return imr::bench::BenchMain(argc, argv, imr::bench::Run);
}
