// Noise-robustness sweep (extra experiment beyond the paper's figures,
// motivated by its Section I "Noisy Data" discussion): AUC of PCNN
// (no noise handling), PCNN+ATT (selective attention) and PA-TMR (attention
// + implicit mutual relations) as the distant-supervision wrong-label rate
// grows. Expected shape: PCNN degrades fastest; attention mitigates;
// the MR/type components make PA-TMR the most robust because their signal
// does not come from the noisy sentences at all.
#include <cstdio>

#include "bench_common.h"
#include "datagen/distant_supervision.h"
#include "graph/line.h"
#include "re/pa_model.h"
#include "re/trainer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace imr::bench {
namespace {

struct SweepPoint {
  double noise = 0.0;
  double auc_pcnn = 0.0;
  double auc_pcnn_att = 0.0;
  double auc_pa_tmr = 0.0;
};

double TrainOne(const re::BagDataset& bags, int mr_dim, bool attention,
                bool extras, int epochs, int batch_size, uint64_t seed) {
  util::Rng rng(seed);
  re::PaModelConfig config;
  config.num_relations = bags.num_relations();
  config.encoder = "pcnn";
  config.aggregation =
      attention ? re::Aggregation::kAttention : re::Aggregation::kAverage;
  config.use_mutual_relation = extras;
  config.use_entity_type = extras;
  config.mutual_relation_dim = mr_dim;
  config.type_dim = 8;
  config.encoder_config.vocab_size = bags.vocabulary().size();
  config.encoder_config.word_dim = 16;
  config.encoder_config.position_dim = 3;
  config.encoder_config.max_position = 20;
  config.encoder_config.filters = 32;
  config.encoder_config.word_dropout = 0.25f;
  re::PaModel model(config, &rng);
  re::TrainerConfig trainer_config;
  trainer_config.epochs = epochs;
  trainer_config.batch_size = batch_size;
  trainer_config.optimizer = "adam";
  trainer_config.learning_rate = 0.01f;
  return re::TrainAndEvaluate(&model, bags.train_bags(), bags.test_bags(),
                              trainer_config)
      .auc;
}

}  // namespace

int Run(const BenchContext& context) {
  std::printf("=== Noise robustness: AUC vs wrong-label rate (GDS preset) "
              "===\n\n");
  std::printf("%-8s %10s %12s %10s\n", "noise", "PCNN", "PCNN+ATT",
              "PA-TMR");
  std::vector<std::vector<std::string>> tsv_rows;
  tsv_rows.push_back({"noise", "auc_pcnn", "auc_pcnn_att", "auc_pa_tmr"});

  for (double noise : {0.1, 0.3, 0.5, 0.7}) {
    // Regenerate the dataset at this noise rate (same world and unlabeled
    // corpus: only the DS labels degrade, exactly the paper's scenario).
    datagen::PresetOptions options;
    options.scale = context.scale("gds");
    options.seed = context.seed;
    datagen::SyntheticDataset dataset = datagen::MakeGdsLike(options);
    datagen::DistantSupervisionConfig ds_config;
    ds_config.train_fraction = 0.7;
    ds_config.na_pair_ratio = 0.6;
    ds_config.noise_rate = noise;
    ds_config.zipf_exponent = 1.6;
    ds_config.max_sentences_per_pair = 40;
    ds_config.seed = context.seed + 12;
    dataset.corpus = datagen::SampleDistantSupervision(
        dataset.world, dataset.realiser, ds_config);

    re::BagDatasetOptions bag_options;
    bag_options.max_sentence_length = 40;
    bag_options.max_position = 20;
    re::BagDataset bags =
        re::BagDataset::Build(dataset.world.graph, dataset.corpus.train,
                              dataset.corpus.test, bag_options);
    graph::ProximityGraph proximity(dataset.world.graph.num_entities());
    proximity.AddCorpus(dataset.unlabeled.sentences);
    proximity.Finalize(2);
    graph::LineConfig line;
    line.dim = 64;
    line.seed = context.seed + 1000;
    graph::EmbeddingStore embeddings = graph::TrainLine(proximity, line);
    IMR_CHECK(bags.AttachMutualRelations(embeddings).ok());

    SweepPoint point;
    point.noise = noise;
    const int epochs = context.epochs("gds");
    point.auc_pcnn = TrainOne(bags, embeddings.dim(), false, false, epochs,
                              context.batch_size, context.seed + 1);
    point.auc_pcnn_att = TrainOne(bags, embeddings.dim(), true, false,
                                  epochs, context.batch_size,
                                  context.seed + 2);
    point.auc_pa_tmr = TrainOne(bags, embeddings.dim(), true, true, epochs,
                                context.batch_size, context.seed + 3);
    std::printf("%-8.1f %10.4f %12.4f %10.4f\n", point.noise,
                point.auc_pcnn, point.auc_pcnn_att, point.auc_pa_tmr);
    tsv_rows.push_back({util::StrFormat("%.1f", noise),
                        util::StrFormat("%.4f", point.auc_pcnn),
                        util::StrFormat("%.4f", point.auc_pcnn_att),
                        util::StrFormat("%.4f", point.auc_pa_tmr)});
  }
  std::printf("\nExpected shape: all models degrade with noise; the "
              "attention model degrades more\ngracefully than plain PCNN, "
              "and PA-TMR stays highest because the MR/type heads do\nnot "
              "depend on the noisy sentences (paper Sections I and "
              "IV-D1).\n");
  WriteTsv(context, "noise_robustness", tsv_rows);
  return 0;
}

}  // namespace imr::bench

int main(int argc, char** argv) {
  return imr::bench::BenchMain(argc, argv, imr::bench::Run);
}
