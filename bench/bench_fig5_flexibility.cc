// Figure 5: flexibility of the framework — AUC of four base encoders
// (GRU+ATT, CNN+ATT, PCNN, PCNN+ATT) with and without the implicit-mutual-
// relation + entity-type components ("+TMR"), on both datasets.
#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

namespace imr::bench {
namespace {

struct FlexPair {
  const char* base;
  const char* improved;
};

constexpr FlexPair kPairs[] = {
    {"GRU+ATT", "GRU+ATT+TMR"},
    {"CNN+ATT", "CNN+ATT+TMR"},
    {"PCNN", "PCNN+TMR"},
    {"PCNN+ATT", "PCNN+ATT+TMR"},
};

}  // namespace

int Run(const BenchContext& context) {
  std::printf("=== Figure 5: +TMR improvement across base models ===\n\n");
  std::vector<std::vector<std::string>> tsv_rows;
  tsv_rows.push_back(
      {"dataset", "base_model", "auc_base", "auc_tmr", "improvement"});
  for (const std::string& preset : {std::string("nyt"), std::string("gds")}) {
    PreparedData data = PrepareData(preset, context);
    std::printf("--- %s ---\n", preset == "nyt" ? "NYT" : "GDS");
    std::printf("%-10s %10s %10s %12s\n", "Base", "AUC", "AUC+TMR",
                "improvement");
    for (const FlexPair& pair : kPairs) {
      auto base_result =
          ResultFromScores(GetOrComputeScores(pair.base, data, context),
                           data);
      auto improved_result = ResultFromScores(
          GetOrComputeScores(pair.improved, data, context), data);
      const double delta = improved_result.auc - base_result.auc;
      std::printf("%-10s %10.4f %10.4f %+11.4f\n", pair.base,
                  base_result.auc, improved_result.auc, delta);
      tsv_rows.push_back({preset, pair.base,
                          util::StrFormat("%.4f", base_result.auc),
                          util::StrFormat("%.4f", improved_result.auc),
                          util::StrFormat("%.4f", delta)});
    }
    std::printf("\n");
  }
  std::printf("Expected shape (paper Fig. 5): every base model improves "
              "when +TMR is bolted on\n(2-7%% AUC in the paper), without "
              "modifying the base architecture.\n");
  WriteTsv(context, "fig5_flexibility", tsv_rows);
  return 0;
}

}  // namespace imr::bench

int main(int argc, char** argv) {
  return imr::bench::BenchMain(argc, argv, imr::bench::Run);
}
