#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "re/cnn_rl.h"
#include "re/mimlre.h"
#include "re/mintz.h"
#include "re/multir.h"
#include "re/pa_model.h"
#include "re/trainer.h"
#include "tensor/simd/dispatch.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/tsv_writer.h"

namespace imr::bench {

double BenchContext::scale(const std::string& preset) const {
  return preset == "nyt" ? scale_nyt : scale_gds;
}

int BenchContext::epochs(const std::string& preset) const {
  return preset == "nyt" ? epochs_nyt : epochs_gds;
}

void RegisterCommonFlags(util::FlagParser* flags) {
  flags->AddString("results_dir", "bench_results",
                   "directory for TSV traces and the score cache");
  flags->AddDouble("scale_gds", 2.0, "GDS-preset size multiplier");
  flags->AddDouble("scale_nyt", 1.0, "NYT-preset size multiplier");
  flags->AddInt("epochs_gds", 60, "training epochs on the GDS preset");
  flags->AddInt("epochs_nyt", 40, "training epochs on the NYT preset");
  flags->AddInt("batch_size", 32, "SGD batch size");
  flags->AddBool("paper_dims", false,
                 "use the full Table III dimensions (slower)");
  flags->AddBool("no_cache", false, "ignore and overwrite cached scores");
  flags->AddInt("seed", 7, "master seed");
  flags->AddInt("imr_threads", 0,
                "worker threads for kernels/graph/trainer "
                "(0 = hardware concurrency, 1 = sequential bit-exact)");
  flags->AddString("imr_kernel_backend", "",
                   "pin the eval kernel backend: scalar|sse2|avx2|neon "
                   "(empty or auto = fastest the host supports)");
  flags->AddBool("imr_vectorized_training", false,
                 "let gradient-mode ops use the vectorized backend too "
                 "(default keeps training on the bit-exact scalar kernels)");
}

BenchContext ContextFromFlags(const util::FlagParser& flags) {
  BenchContext context;
  context.results_dir = flags.GetString("results_dir");
  context.scale_gds = flags.GetDouble("scale_gds");
  context.scale_nyt = flags.GetDouble("scale_nyt");
  context.epochs_gds = static_cast<int>(flags.GetInt("epochs_gds"));
  context.epochs_nyt = static_cast<int>(flags.GetInt("epochs_nyt"));
  context.batch_size = static_cast<int>(flags.GetInt("batch_size"));
  context.paper_dims = flags.GetBool("paper_dims");
  context.no_cache = flags.GetBool("no_cache");
  context.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  util::SetGlobalThreads(static_cast<int>(flags.GetInt("imr_threads")));
  const std::string backend = flags.GetString("imr_kernel_backend");
  if (!backend.empty()) {
    const util::Status status = tensor::simd::SetBackendByName(backend);
    if (!status.ok()) {
      IMR_LOG(Error) << "--imr_kernel_backend: " << status.ToString();
      std::abort();
    }
  }
  tensor::simd::SetVectorizedTraining(
      flags.GetBool("imr_vectorized_training"));
  return context;
}

namespace {

std::string CacheTag(const std::string& preset, const BenchContext& context) {
  return util::StrFormat("%s_s%.2f_e%d_b%d%s_seed%llu", preset.c_str(),
                         context.scale(preset), context.epochs(preset),
                         context.batch_size,
                         context.paper_dims ? "_paper" : "",
                         static_cast<unsigned long long>(context.seed));
}

re::BagDatasetOptions BagOptions(const BenchContext& context) {
  re::BagDatasetOptions options;
  if (context.paper_dims) {
    options.max_sentence_length = 120;
    options.max_position = 60;
  } else {
    options.max_sentence_length = 40;
    options.max_position = 20;
  }
  return options;
}

}  // namespace

PreparedData PrepareData(const std::string& preset,
                         const BenchContext& context) {
  PreparedData data;
  data.preset = preset;
  datagen::PresetOptions options;
  options.scale = context.scale(preset);
  options.seed = context.seed;
  data.dataset = std::make_unique<datagen::SyntheticDataset>(
      datagen::MakeDataset(preset, options));

  data.bags = std::make_unique<re::BagDataset>(re::BagDataset::Build(
      data.dataset->world.graph, data.dataset->corpus.train,
      data.dataset->corpus.test, BagOptions(context)));

  data.proximity = std::make_unique<graph::ProximityGraph>(
      data.dataset->world.graph.num_entities());
  data.proximity->AddCorpus(data.dataset->unlabeled.sentences);
  data.proximity->Finalize(/*min_cooccurrence=*/2);

  const std::string embedding_path = context.results_dir + "/cache/" +
                                     CacheTag(preset, context) +
                                     ".embeddings.bin";
  bool loaded = false;
  if (!context.no_cache) {
    auto cached = graph::EmbeddingStore::Load(embedding_path);
    if (cached.ok() &&
        cached->num_vertices() == data.proximity->num_vertices()) {
      data.embeddings = std::move(cached).value();
      loaded = true;
    }
  }
  if (!loaded) {
    graph::LineConfig line;
    line.dim = 128;
    line.samples_per_edge = 300;
    line.seed = context.seed + 1000;
    data.embeddings = graph::TrainLine(*data.proximity, line);
    (void)util::MakeDirectories(context.results_dir + "/cache");
    util::Status saved = data.embeddings.Save(embedding_path);
    if (!saved.ok()) {
      IMR_LOG(Warning) << "cannot cache embeddings: " << saved.ToString();
    }
  }
  util::Status attached = data.bags->AttachMutualRelations(data.embeddings);
  IMR_CHECK(attached.ok());
  return data;
}

std::vector<std::string> AllModelNames() {
  return {"Mintz",   "MultiR",     "MIMLRE",     "PCNN",
          "PCNN+ATT", "CNN+ATT",   "GRU+ATT",    "BGWA",
          "CNN+RL",  "PA-T",       "PA-MR",      "PA-TMR",
          "CNN+ATT+TMR", "GRU+ATT+TMR", "PCNN+TMR", "PCNN+ATT+TMR"};
}

namespace {

struct NeuralSpec {
  std::string encoder;
  re::Aggregation aggregation = re::Aggregation::kAttention;
  bool use_mr = false;
  bool use_type = false;
};

// Returns false for the non-neural / RL baselines that have their own path.
bool NeuralSpecFor(const std::string& name, NeuralSpec* spec) {
  if (name == "PCNN") {
    *spec = {"pcnn", re::Aggregation::kAverage, false, false};
  } else if (name == "PCNN+ATT") {
    *spec = {"pcnn", re::Aggregation::kAttention, false, false};
  } else if (name == "CNN+ATT") {
    *spec = {"cnn", re::Aggregation::kAttention, false, false};
  } else if (name == "GRU+ATT") {
    *spec = {"gru", re::Aggregation::kAttention, false, false};
  } else if (name == "BGWA") {
    *spec = {"bgwa", re::Aggregation::kAttention, false, false};
  } else if (name == "PA-T") {
    *spec = {"pcnn", re::Aggregation::kAttention, false, true};
  } else if (name == "PA-MR") {
    *spec = {"pcnn", re::Aggregation::kAttention, true, false};
  } else if (name == "PA-TMR" || name == "PCNN+ATT+TMR") {
    *spec = {"pcnn", re::Aggregation::kAttention, true, true};
  } else if (name == "CNN+ATT+TMR") {
    *spec = {"cnn", re::Aggregation::kAttention, true, true};
  } else if (name == "GRU+ATT+TMR") {
    *spec = {"gru", re::Aggregation::kAttention, true, true};
  } else if (name == "PCNN+TMR") {
    *spec = {"pcnn", re::Aggregation::kAverage, true, true};
  } else {
    return false;
  }
  return true;
}

re::PaModelConfig ModelConfig(const NeuralSpec& spec,
                              const PreparedData& data,
                              const BenchContext& context) {
  re::PaModelConfig config;
  config.num_relations = data.bags->num_relations();
  config.encoder = spec.encoder;
  config.aggregation = spec.aggregation;
  config.use_mutual_relation = spec.use_mr;
  config.use_entity_type = spec.use_type;
  config.mutual_relation_dim = data.embeddings.dim();
  config.encoder_config.vocab_size = data.bags->vocabulary().size();
  if (context.paper_dims) {
    config.encoder_config.word_dim = 50;
    config.encoder_config.position_dim = 5;
    config.encoder_config.max_position = 60;
    config.encoder_config.filters = 230;
    config.type_dim = 20;
  } else {
    config.encoder_config.word_dim = 16;
    config.encoder_config.position_dim = 3;
    config.encoder_config.max_position = 20;
    config.encoder_config.filters = 32;
    config.type_dim = 8;
  }
  config.encoder_config.dropout = 0.5f;
  // Word dropout counters bag memorisation on the generator-scaled corpora
  // (see DESIGN.md, "optimisation recipe").
  config.encoder_config.word_dropout = 0.25f;
  return config;
}

std::string ScoresPath(const std::string& model_name,
                       const PreparedData& data,
                       const BenchContext& context) {
  std::string sanitized = model_name;
  for (char& c : sanitized) {
    if (c == '+') c = 'p';
  }
  return context.results_dir + "/cache/" + CacheTag(data.preset, context) +
         "." + sanitized + ".scores.tsv";
}

bool LoadScores(const std::string& path, size_t num_bags, int num_relations,
                std::vector<std::vector<float>>* scores) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  scores->clear();
  std::string line;
  while (std::getline(in, line)) {
    std::vector<float> row;
    std::istringstream ss(line);
    float value;
    while (ss >> value) row.push_back(value);
    if (row.size() != static_cast<size_t>(num_relations)) return false;
    scores->push_back(std::move(row));
  }
  return scores->size() == num_bags;
}

void SaveScores(const std::string& path,
                const std::vector<std::vector<float>>& scores) {
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos)
    (void)util::MakeDirectories(path.substr(0, slash));
  std::ofstream out(path);
  if (!out.is_open()) {
    IMR_LOG(Warning) << "cannot cache scores to " << path;
    return;
  }
  for (const auto& row : scores) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ' ';
      out << row[i];
    }
    out << '\n';
  }
}

template <typename ScoreFn>
std::vector<std::vector<float>> ScoreAll(const PreparedData& data,
                                         const ScoreFn& score_one) {
  std::vector<std::vector<float>> scores;
  scores.reserve(data.bags->test_bags().size());
  for (const re::Bag& bag : data.bags->test_bags())
    scores.push_back(score_one(bag));
  return scores;
}

std::vector<std::vector<float>> ComputeScores(const std::string& model_name,
                                              const PreparedData& data,
                                              const BenchContext& context) {
  const int num_relations = data.bags->num_relations();
  util::Rng rng(context.seed + std::hash<std::string>{}(model_name));

  if (model_name == "Mintz") {
    re::MintzConfig config;
    re::MintzModel model(num_relations, config);
    model.Train(data.bags->train_bags());
    return ScoreAll(data,
                    [&](const re::Bag& bag) { return model.Predict(bag); });
  }
  if (model_name == "MultiR") {
    re::MultirConfig config;
    re::MultirModel model(num_relations, config);
    model.Train(data.bags->train_bags());
    return ScoreAll(data,
                    [&](const re::Bag& bag) { return model.Predict(bag); });
  }
  if (model_name == "MIMLRE") {
    re::MimlreConfig config;
    re::MimlreModel model(num_relations, config);
    model.Train(data.bags->train_bags());
    return ScoreAll(data,
                    [&](const re::Bag& bag) { return model.Predict(bag); });
  }
  if (model_name == "CNN+RL") {
    NeuralSpec spec{"cnn", re::Aggregation::kAverage, false, false};
    re::CnnRlConfig rl_config;
    // The classifier needs the full epoch budget to learn the text signal
    // before the selector episodes refine it.
    rl_config.pretrain_epochs = context.epochs(data.preset);
    rl_config.joint_epochs = std::max(1, context.epochs(data.preset) / 4);
    rl_config.batch_size = context.batch_size;
    rl_config.seed = context.seed + 31;
    re::CnnRlModel model(ModelConfig(spec, data, context), rl_config, &rng);
    model.Train(data.bags->train_bags());
    return ScoreAll(data,
                    [&](const re::Bag& bag) { return model.Predict(bag); });
  }

  NeuralSpec spec;
  IMR_CHECK(NeuralSpecFor(model_name, &spec));
  re::PaModel model(ModelConfig(spec, data, context), &rng);
  re::TrainerConfig trainer_config;
  trainer_config.epochs = context.epochs(data.preset);
  trainer_config.batch_size = context.batch_size;
  // Adam converges an order of magnitude faster than the paper's SGD on
  // the generator-scaled corpora; the paper schedule is available through
  // re::TrainerConfig for anyone running at full scale.
  trainer_config.optimizer = "adam";
  trainer_config.learning_rate = 0.01f;
  trainer_config.seed = context.seed + 17;
  re::Trainer trainer(&model, trainer_config);
  trainer.Train(data.bags->train_bags());
  model.SetTraining(false);
  return ScoreAll(data, [&](const re::Bag& bag) {
    return model.Predict(bag, &rng);
  });
}

}  // namespace

std::vector<std::vector<float>> GetOrComputeScores(
    const std::string& model_name, const PreparedData& data,
    const BenchContext& context) {
  const std::string path = ScoresPath(model_name, data, context);
  std::vector<std::vector<float>> scores;
  if (!context.no_cache &&
      LoadScores(path, data.bags->test_bags().size(),
                 data.bags->num_relations(), &scores)) {
    std::fprintf(stderr, "[bench] %-14s %s: cached\n", model_name.c_str(),
                 data.preset.c_str());
    return scores;
  }
  std::fprintf(stderr, "[bench] %-14s %s: training...\n", model_name.c_str(),
               data.preset.c_str());
  scores = ComputeScores(model_name, data, context);
  SaveScores(path, scores);
  return scores;
}

eval::HeldOutResult ResultFromScores(
    const std::vector<std::vector<float>>& scores,
    const PreparedData& data) {
  size_t index = 0;
  return eval::Evaluate(
      [&scores, &index](const re::Bag&) { return scores[index++]; },
      data.bags->test_bags(), data.bags->num_relations());
}

void WriteTsv(const BenchContext& context, const std::string& name,
              const std::vector<std::vector<std::string>>& rows) {
  util::TsvWriter writer(context.results_dir + "/" + name + ".tsv");
  for (const auto& row : rows) writer.WriteRow(row);
  util::Status status = writer.Close();
  if (!status.ok()) {
    IMR_LOG(Warning) << "failed writing " << name << ": "
                     << status.ToString();
  }
}

int BenchMain(int argc, char** argv, int (*run)(const BenchContext&)) {
  util::SetLogLevel(util::LogLevel::kWarning);
  util::FlagParser flags;
  RegisterCommonFlags(&flags);
  util::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    if (status.code() == util::StatusCode::kNotFound) return 0;  // --help
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return run(ContextFromFlags(flags));
}

}  // namespace imr::bench
