// Table II: dataset statistics (#relations, train/test sentences and
// entity pairs) for the NYT-like and GDS-like presets.
#include <cstdio>

#include "bench_common.h"
#include "datagen/stats.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace imr::bench {
int Run(const BenchContext& context) {
  std::printf("=== Table II: dataset descriptions ===\n");
  std::printf("(synthetic presets shaped after the paper's NYT and GDS; "
              "--scale_* to grow)\n\n");
  std::printf("%-8s %-10s %12s %14s\n", "Dataset", "Split", "#sentences",
              "#entity pairs");
  std::vector<std::vector<std::string>> tsv_rows;
  tsv_rows.push_back(
      {"dataset", "relations", "split", "sentences", "entity_pairs"});
  for (const std::string& preset : {std::string("nyt"), std::string("gds")}) {
    datagen::PresetOptions options;
    options.scale = context.scale(preset);
    options.seed = context.seed;
    datagen::SyntheticDataset dataset =
        datagen::MakeDataset(preset, options);
    const int relations = dataset.world.graph.num_relations();
    const datagen::CorpusStats train =
        datagen::StatsOf(dataset.corpus.train);
    const datagen::CorpusStats test = datagen::StatsOf(dataset.corpus.test);
    std::printf("%-8s (# Relations: %d)\n",
                preset == "nyt" ? "NYT" : "GDS", relations);
    std::printf("%-8s %-10s %12lld %14lld\n", "", "Training",
                static_cast<long long>(train.num_sentences),
                static_cast<long long>(train.num_entity_pairs));
    std::printf("%-8s %-10s %12lld %14lld\n", "", "Testing",
                static_cast<long long>(test.num_sentences),
                static_cast<long long>(test.num_entity_pairs));
    tsv_rows.push_back({preset, std::to_string(relations), "train",
                        std::to_string(train.num_sentences),
                        std::to_string(train.num_entity_pairs)});
    tsv_rows.push_back({preset, std::to_string(relations), "test",
                        std::to_string(test.num_sentences),
                        std::to_string(test.num_entity_pairs)});
  }
  std::printf("\npaper reference — NYT: 522,611/172,448 sentences, "
              "281,270/96,678 pairs, 53 relations;\n"
              "                  GDS: 13,161/5,663 sentences, "
              "7,580/3,247 pairs, 5 relations\n");
  WriteTsv(context, "table2_datasets", tsv_rows);
  return 0;
}

}  // namespace imr::bench

int main(int argc, char** argv) {
  return imr::bench::BenchMain(argc, argv, imr::bench::Run);
}
