// Table V / Figure 8: the embedding-space case study. The paper shows the
// 10 nearest neighbours of "Seattle" (mostly cities) and "University of
// Washington" (mostly universities). Our synthetic analogue picks one
// tail-role and one head-role entity of the same relation and reports the
// fraction of neighbours drawn from the same semantic role cluster.
#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

namespace imr::bench {
namespace {

// Prints neighbours of `entity` and returns how many share its cluster.
int PrintNeighbors(const PreparedData& data, kg::EntityId entity, int k,
                   std::vector<std::vector<std::string>>* tsv_rows) {
  const kg::KnowledgeGraph& graph = data.dataset->world.graph;
  const kg::Entity& center = graph.entity(entity);
  std::printf("Top %d nearest entities of %s (cluster %d):\n", k,
              center.name.c_str(), center.cluster);
  auto neighbors =
      data.embeddings.NearestNeighbors(static_cast<int>(entity), k);
  int same_cluster = 0;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    const kg::Entity& other =
        graph.entity(static_cast<kg::EntityId>(neighbors[i].vertex));
    const bool same = other.cluster == center.cluster;
    same_cluster += same;
    std::printf("  %2zu. %-28s cos=%.3f cluster=%d%s\n", i + 1,
                other.name.c_str(), neighbors[i].similarity, other.cluster,
                same ? "  (same role)" : "");
    tsv_rows->push_back({center.name, std::to_string(i + 1), other.name,
                         util::StrFormat("%.4f", neighbors[i].similarity),
                         same ? "1" : "0"});
  }
  std::printf("  -> %d/%zu from the same semantic role cluster\n\n",
              same_cluster, neighbors.size());
  return same_cluster;
}

}  // namespace

int Run(const BenchContext& context) {
  std::printf("=== Table V / Figure 8: nearest entities in embedding space "
              "===\n\n");
  PreparedData data = PrepareData("gds", context);
  const kg::KnowledgeGraph& graph = data.dataset->world.graph;

  // The analogue of (University of Washington, Seattle): the best-covered
  // fact of relation 1 — the paper's case study uses famous entities, i.e.
  // ones with plenty of unlabeled co-occurrences.
  const kg::Triple* fact = nullptr;
  int64_t best_cooccurrence = -1;
  for (const kg::Triple& triple : graph.triples()) {
    if (triple.relation != 1) continue;
    const int64_t cooccurrence =
        data.proximity->CooccurrenceCount(triple.head, triple.tail);
    if (cooccurrence > best_cooccurrence) {
      best_cooccurrence = cooccurrence;
      fact = &triple;
    }
  }
  if (fact == nullptr) {
    std::printf("no facts for relation 1; increase --scale_gds\n");
    return 1;
  }
  std::vector<std::vector<std::string>> tsv_rows;
  tsv_rows.push_back({"center", "rank", "neighbor", "cosine",
                      "same_cluster"});
  const int head_same = PrintNeighbors(data, fact->head, 10, &tsv_rows);
  const int tail_same = PrintNeighbors(data, fact->tail, 10, &tsv_rows);

  std::printf("Expected shape (paper Table V): most neighbours share the "
              "centre's semantic role\n(universities around University of "
              "Washington, cities around Seattle), with a few\nstray "
              "entities (the paper's 'San Gabriel Valley' case). Here: "
              "%d/10 and %d/10.\n", head_same, tail_same);
  WriteTsv(context, "table5_nearest_entities", tsv_rows);
  return 0;
}

}  // namespace imr::bench

int main(int argc, char** argv) {
  return imr::bench::BenchMain(argc, argv, imr::bench::Run);
}
