// Table V / Figure 8: the embedding-space case study. The paper shows the
// 10 nearest neighbours of "Seattle" (mostly cities) and "University of
// Washington" (mostly universities). Our synthetic analogue picks one
// tail-role and one head-role entity of the same relation and reports the
// fraction of neighbours drawn from the same semantic role cluster.
//
// The published table is served by the exact ANN FlatIndex (the same
// kernels the serve tier uses); an IVF A/B pass over the identical queries
// reports recall@10 against the exact results, so the case study doubles
// as a spot check of the approximate index on real (non-synthetic-bench)
// embeddings.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "graph/ann/flat_index.h"
#include "graph/ann/ivf_index.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace imr::bench {
namespace {

// The exact top-k of `entity`, excluding the entity itself (the index
// stores every vertex, so the query's own row surfaces with cos = 1).
std::vector<graph::ann::SearchResult> Neighbors(
    const graph::ann::AnnIndex& index, const PreparedData& data,
    kg::EntityId entity, int k) {
  std::vector<graph::ann::SearchResult> raw;
  index.Search(data.embeddings.Vector(static_cast<int>(entity)), k + 1, &raw);
  std::vector<graph::ann::SearchResult> out;
  out.reserve(static_cast<size_t>(k));
  for (const graph::ann::SearchResult& r : raw) {
    if (r.id == static_cast<int64_t>(entity)) continue;
    out.push_back(r);
    if (static_cast<int>(out.size()) == k) break;
  }
  return out;
}

// Prints neighbours of `entity` and returns how many share its cluster.
int PrintNeighbors(const PreparedData& data,
                   const graph::ann::FlatIndex& flat, kg::EntityId entity,
                   int k, std::vector<std::vector<std::string>>* tsv_rows) {
  const kg::KnowledgeGraph& graph = data.dataset->world.graph;
  const kg::Entity& center = graph.entity(entity);
  std::printf("Top %d nearest entities of %s (cluster %d):\n", k,
              center.name.c_str(), center.cluster);
  const auto neighbors = Neighbors(flat, data, entity, k);
  int same_cluster = 0;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    const kg::Entity& other =
        graph.entity(static_cast<kg::EntityId>(neighbors[i].id));
    const bool same = other.cluster == center.cluster;
    same_cluster += same;
    std::printf("  %2zu. %-28s cos=%.3f cluster=%d%s\n", i + 1,
                other.name.c_str(), neighbors[i].score, other.cluster,
                same ? "  (same role)" : "");
    tsv_rows->push_back({center.name, std::to_string(i + 1), other.name,
                         util::StrFormat("%.4f", neighbors[i].score),
                         same ? "1" : "0"});
  }
  std::printf("  -> %d/%zu from the same semantic role cluster\n\n",
              same_cluster, neighbors.size());
  return same_cluster;
}

// Fraction of the exact top-k the IVF probe recovered for `entity`.
double IvfRecall(const PreparedData& data, const graph::ann::FlatIndex& flat,
                 const graph::ann::IvfIndex& ivf, kg::EntityId entity,
                 int k) {
  const auto exact = Neighbors(flat, data, entity, k);
  const auto approx = Neighbors(ivf, data, entity, k);
  if (exact.empty()) return 1.0;
  int hit = 0;
  for (const graph::ann::SearchResult& e : exact) {
    for (const graph::ann::SearchResult& a : approx) {
      if (a.id == e.id) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

}  // namespace

int Run(const BenchContext& context) {
  std::printf("=== Table V / Figure 8: nearest entities in embedding space "
              "===\n\n");
  PreparedData data = PrepareData("gds", context);
  const kg::KnowledgeGraph& graph = data.dataset->world.graph;

  // The analogue of (University of Washington, Seattle): the best-covered
  // fact of relation 1 — the paper's case study uses famous entities, i.e.
  // ones with plenty of unlabeled co-occurrences.
  const kg::Triple* fact = nullptr;
  int64_t best_cooccurrence = -1;
  for (const kg::Triple& triple : graph.triples()) {
    if (triple.relation != 1) continue;
    const int64_t cooccurrence =
        data.proximity->CooccurrenceCount(triple.head, triple.tail);
    if (cooccurrence > best_cooccurrence) {
      best_cooccurrence = cooccurrence;
      fact = &triple;
    }
  }
  if (fact == nullptr) {
    std::printf("no facts for relation 1; increase --scale_gds\n");
    return 1;
  }

  const graph::ann::FlatIndex flat = graph::ann::FlatIndex::Over(
      data.embeddings, graph::ann::Metric::kCosine);

  std::vector<std::vector<std::string>> tsv_rows;
  tsv_rows.push_back({"center", "rank", "neighbor", "cosine",
                      "same_cluster"});
  const int head_same = PrintNeighbors(data, flat, fact->head, 10, &tsv_rows);
  const int tail_same = PrintNeighbors(data, flat, fact->tail, 10, &tsv_rows);

  // A/B the approximate index on the same queries: same centres, same k,
  // recall measured against the exact FlatIndex list above.
  graph::ann::IvfOptions ivf_options;
  ivf_options.nlist = std::min(64, std::max(1, data.embeddings.num_vertices()));
  const graph::ann::IvfIndex ivf = graph::ann::IvfIndex::Over(
      data.embeddings, graph::ann::Metric::kCosine, ivf_options,
      &util::GlobalPool());
  const double head_recall = IvfRecall(data, flat, ivf, fact->head, 10);
  const double tail_recall = IvfRecall(data, flat, ivf, fact->tail, 10);
  std::printf("IVF A/B (nlist=%d, nprobe=%d): recall@10 %.2f (head centre), "
              "%.2f (tail centre)\n\n",
              ivf.nlist(), ivf.nprobe(), head_recall, tail_recall);
  tsv_rows.push_back({"ivf_recall_at_10", "-",
                      util::StrFormat("nlist=%d;nprobe=%d", ivf.nlist(),
                                      ivf.nprobe()),
                      util::StrFormat("%.4f", (head_recall + tail_recall) / 2),
                      "-"});

  std::printf("Expected shape (paper Table V): most neighbours share the "
              "centre's semantic role\n(universities around University of "
              "Washington, cities around Seattle), with a few\nstray "
              "entities (the paper's 'San Gabriel Valley' case). Here: "
              "%d/10 and %d/10.\n", head_same, tail_same);
  WriteTsv(context, "table5_nearest_entities", tsv_rows);
  return 0;
}

}  // namespace imr::bench

int main(int argc, char** argv) {
  return imr::bench::BenchMain(argc, argv, imr::bench::Run);
}
