// ANN index benchmark + SLO gate: sub-millisecond approximate nearest
// neighbours over entity-embedding-shaped data.
//
// The workload is a clustered synthetic embedding table (mixture of
// Gaussian clusters on the unit sphere — the shape LINE/DeepWalk tables
// actually have, and the shape IVF's coarse quantizer exploits), 100k+
// rows by default. The harness:
//
//   1. builds the exact FlatIndex and takes the true top-10 of every query
//      (SearchBatch, so the ground truth itself runs the batch kernels)
//   2. builds the IVF index (k-means coarse quantizer) over the same rows
//   3. sweeps nprobe, measuring per-query latency percentiles and
//      recall@10 against the exact results
//
// Gates (exit nonzero on violation, in full and --smoke mode):
//   recall   IVF recall@10 >= 0.95 at the gated nprobe (any backend —
//            approximation quality is backend-independent by design)
//   latency  IVF single-query p99 < 1 ms at the 100k preset on a SIMD
//            backend; a scalar backend relaxes the bound 8x (latency is a
//            kernel property) but NEVER the recall gate
//
// --smoke keeps the full 100k row count (the gate is defined at that
// scale) and trims the query count; scripts/check.sh wires it in as the
// ann-smoke stage. Results land in bench_results/BENCH_ann.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "graph/ann/ann_index.h"
#include "graph/ann/flat_index.h"
#include "graph/ann/ivf_index.h"
#include "tensor/simd/dispatch.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/tsv_writer.h"

namespace imr {
namespace {

constexpr int kRows = 100000;
constexpr int kDim = 64;
constexpr int kClusters = 1024;
constexpr int kTopK = 10;
constexpr int kGateNprobe = 16;
constexpr double kGateRecall = 0.95;
constexpr double kGateP99Us = 1000.0;
constexpr double kScalarLatencySlack = 8.0;

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

// Mixture of Gaussians around unit-sphere cluster centres: rows land in
// tight angular clusters, so cosine neighbours are cluster-mates and the
// coarse quantizer has real structure to learn.
std::vector<float> MakeClusteredRows(int rows, int dim, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> centers(static_cast<size_t>(kClusters) * dim);
  for (float& c : centers) c = static_cast<float>(rng.Uniform(-1.0, 1.0));
  std::vector<float> data(static_cast<size_t>(rows) * dim);
  for (int r = 0; r < rows; ++r) {
    const float* center =
        centers.data() +
        static_cast<size_t>(rng.UniformInt(kClusters)) * dim;
    float* row = data.data() + static_cast<size_t>(r) * dim;
    for (int d = 0; d < dim; ++d) {
      row[d] = center[d] + static_cast<float>(rng.Uniform(-0.12, 0.12));
    }
  }
  return data;
}

// Queries perturb random base rows: on-manifold lookups, the serve-tier
// case (an entity's own MR neighbourhood), not isotropic noise.
std::vector<float> MakeQueries(const std::vector<float>& data, int rows,
                               int dim, int num_queries, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> queries(static_cast<size_t>(num_queries) * dim);
  for (int q = 0; q < num_queries; ++q) {
    const float* row =
        data.data() +
        static_cast<size_t>(rng.UniformInt(static_cast<uint64_t>(rows))) *
            dim;
    float* query = queries.data() + static_cast<size_t>(q) * dim;
    for (int d = 0; d < dim; ++d) {
      query[d] = row[d] + static_cast<float>(rng.Uniform(-0.05, 0.05));
    }
  }
  return queries;
}

double RecallAt(const std::vector<graph::ann::SearchResult>& exact,
                const std::vector<graph::ann::SearchResult>& approx) {
  if (exact.empty()) return 1.0;
  int hit = 0;
  for (const auto& e : exact) {
    for (const auto& a : approx) {
      if (a.id == e.id) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

struct SweepCell {
  std::string index;  // "flat" | "ivf"
  int nprobe = 0;     // 0 for flat
  double recall = 1.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
};

// Times index.Search per query across `passes` replays of the query set.
// Each query's latency is the BEST of its passes — the bench_kernels
// fastest-segment-wins idiom: on this 1-core host a scheduler preemption
// can add milliseconds to any single call, and the gate is about the
// index's intrinsic per-query cost, not the OS tail (bench_serve owns
// the end-to-end tail gates). max_us keeps the raw worst observation
// for the report.
SweepCell TimeIndex(const graph::ann::AnnIndex& index,
                    const std::vector<float>& queries, int num_queries,
                    int dim, int passes,
                    const std::vector<std::vector<graph::ann::SearchResult>>&
                        ground_truth) {
  SweepCell cell;
  std::vector<graph::ann::SearchResult> results;
  std::vector<double> best(static_cast<size_t>(num_queries),
                           std::numeric_limits<double>::infinity());
  double recall_sum = 0.0;
  for (int pass = 0; pass < passes; ++pass) {
    for (int q = 0; q < num_queries; ++q) {
      const float* query = queries.data() + static_cast<size_t>(q) * dim;
      const auto begin = std::chrono::steady_clock::now();
      index.Search(query, kTopK, &results);
      const auto end = std::chrono::steady_clock::now();
      const double us =
          std::chrono::duration<double, std::micro>(end - begin).count();
      best[static_cast<size_t>(q)] = std::min(best[static_cast<size_t>(q)], us);
      cell.max_us = std::max(cell.max_us, us);
      if (pass == 0) {
        recall_sum += RecallAt(ground_truth[static_cast<size_t>(q)], results);
      }
    }
  }
  double sum = 0.0;
  for (const double us : best) sum += us;
  cell.recall = num_queries > 0 ? recall_sum / num_queries : 1.0;
  cell.mean_us = best.empty() ? 0.0 : sum / static_cast<double>(best.size());
  cell.p50_us = Percentile(best, 0.50);
  cell.p99_us = Percentile(best, 0.99);
  return cell;
}

int Run(bool smoke) {
  const tensor::simd::Backend backend = tensor::simd::ActiveEvalBackend();
  const bool scalar = backend == tensor::simd::Backend::kScalar;
  const int num_queries = smoke ? 64 : 256;
  const int passes = smoke ? 3 : 4;

  std::printf("bench_ann%s: %d rows x %d dim, %d queries, backend %s\n",
              smoke ? " (smoke)" : "", kRows, kDim, num_queries,
              tensor::simd::BackendName(backend));

  const std::vector<float> data = MakeClusteredRows(kRows, kDim, 41);
  const std::vector<float> queries =
      MakeQueries(data, kRows, kDim, num_queries, 43);

  graph::ann::FlatIndex flat;
  flat.Build(data.data(), kRows, kDim, graph::ann::Metric::kCosine);

  // Exact ground truth through the batch kernels.
  std::vector<std::vector<graph::ann::SearchResult>> ground_truth;
  flat.SearchBatch(queries.data(), num_queries, kTopK, &ground_truth);

  graph::ann::IvfOptions ivf_options;
  ivf_options.nlist = 256;
  ivf_options.kmeans_iters = smoke ? 4 : 8;
  graph::ann::IvfIndex ivf;
  const auto build_begin = std::chrono::steady_clock::now();
  ivf.Build(data.data(), kRows, kDim, graph::ann::Metric::kCosine,
            ivf_options, &util::GlobalPool());
  const auto build_end = std::chrono::steady_clock::now();
  const double build_ms =
      std::chrono::duration<double, std::milli>(build_end - build_begin)
          .count();
  std::printf("ivf build: nlist=%d iters=%d in %.0f ms\n", ivf.nlist(),
              ivf_options.kmeans_iters, build_ms);

  std::vector<SweepCell> cells;
  {
    SweepCell cell =
        TimeIndex(flat, queries, num_queries, kDim, passes, ground_truth);
    cell.index = "flat";
    cells.push_back(cell);
  }
  for (const int nprobe : {4, 8, kGateNprobe, 32}) {
    ivf.set_nprobe(nprobe);
    SweepCell cell =
        TimeIndex(ivf, queries, num_queries, kDim, passes, ground_truth);
    cell.index = "ivf";
    cell.nprobe = nprobe;
    cells.push_back(cell);
  }

  std::printf("%-6s %7s %9s %9s %9s %9s %9s\n", "index", "nprobe",
              "recall@10", "p50_us", "p99_us", "mean_us", "max_us");
  const SweepCell* gated = nullptr;
  for (const SweepCell& cell : cells) {
    if (cell.index == "ivf" && cell.nprobe == kGateNprobe) gated = &cell;
    std::printf("%-6s %7d %9.4f %9.1f %9.1f %9.1f %9.1f\n",
                cell.index.c_str(), cell.nprobe, cell.recall, cell.p50_us,
                cell.p99_us, cell.mean_us, cell.max_us);
  }
  IMR_CHECK(gated != nullptr);

  const double p99_bound =
      scalar ? kGateP99Us * kScalarLatencySlack : kGateP99Us;
  const bool recall_pass = gated->recall >= kGateRecall;
  const bool latency_pass = gated->p99_us < p99_bound;
  std::printf(
      "gates: recall@10 %.4f (>= %.2f) %s | p99 %.1f us (< %.0f us%s) %s\n",
      gated->recall, kGateRecall, recall_pass ? "PASS" : "FAIL",
      gated->p99_us, p99_bound,
      scalar ? ", scalar backend slack 8x" : "",
      latency_pass ? "PASS" : "FAIL");

  util::Status mkdir = util::MakeDirectories("bench_results");
  if (!mkdir.ok()) {
    std::fprintf(stderr, "bench_ann: %s\n", mkdir.ToString().c_str());
    return 1;
  }
  std::FILE* out = std::fopen("bench_results/BENCH_ann.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_ann.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"smoke\": %s,\n  \"backend\": \"%s\",\n"
               "  \"rows\": %d,\n  \"dim\": %d,\n  \"queries\": %d,\n"
               "  \"ivf_nlist\": %d,\n  \"ivf_build_ms\": %.1f,\n",
               smoke ? "true" : "false", tensor::simd::BackendName(backend),
               kRows, kDim, num_queries, ivf.nlist(), build_ms);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    std::fprintf(out,
                 "    {\"index\": \"%s\", \"nprobe\": %d, "
                 "\"recall_at_10\": %.4f, \"p50_us\": %.2f, "
                 "\"p99_us\": %.2f, \"mean_us\": %.2f, \"max_us\": %.2f}%s\n",
                 cell.index.c_str(), cell.nprobe, cell.recall, cell.p50_us,
                 cell.p99_us, cell.mean_us, cell.max_us,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"gates\": {\n"
               "    \"recall\": {\"recall_at_10\": %.4f, \"min\": %.2f, "
               "\"pass\": %s},\n"
               "    \"latency\": {\"p99_us\": %.2f, \"max_us\": %.2f, "
               "\"scalar_slack\": %s, \"pass\": %s}\n"
               "  }\n}\n",
               gated->recall, kGateRecall, recall_pass ? "true" : "false",
               gated->p99_us, p99_bound, scalar ? "true" : "false",
               latency_pass ? "true" : "false");
  std::fclose(out);
  std::fprintf(stderr, "[bench_ann] written to bench_results/BENCH_ann.json\n");

  if (!recall_pass || !latency_pass) {
    std::fprintf(stderr, "[bench_ann] FAIL: gate violated (see gates line)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace imr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return imr::Run(smoke);
}
