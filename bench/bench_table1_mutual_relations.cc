// Table I: the motivating case study — semantically similar entity pairs
// share relations. For a "hard" pair (few supporting sentences) we list
// the pairs with the most similar implicit-mutual-relation vectors and
// show that they overwhelmingly carry the same relation.
#include <cstdio>

#include <algorithm>

#include "bench_common.h"
#include "datagen/stats.h"
#include "util/string_util.h"

namespace imr::bench {
int Run(const BenchContext& context) {
  std::printf("=== Table I: implicit mutual relations between entity pairs "
              "===\n\n");
  PreparedData data = PrepareData("gds", context);
  const kg::KnowledgeGraph& graph = data.dataset->world.graph;

  // Sentence counts per pair in the DS training corpus.
  datagen::PairCounts ds_counts =
      datagen::CountPairs(data.dataset->corpus.train);

  // Pick the non-NA fact with the fewest unlabeled co-occurrences that
  // still made it into the proximity graph: the "(Stanford University,
  // California)" analogue.
  const auto& triples = graph.triples();
  const kg::Triple* target = nullptr;
  int64_t target_cooccurrence = 0;
  for (const kg::Triple& triple : triples) {
    const int64_t cooccurrence =
        data.proximity->CooccurrenceCount(triple.head, triple.tail);
    if (cooccurrence < 2) continue;
    if (target == nullptr || cooccurrence < target_cooccurrence) {
      target = &triple;
      target_cooccurrence = cooccurrence;
    }
  }
  if (target == nullptr) {
    std::printf("proximity graph too sparse; increase --scale_gds\n");
    return 1;
  }

  auto pair_name = [&graph](const kg::Triple& triple) {
    return "(" + graph.entity(triple.head).name + ", " +
           graph.entity(triple.tail).name + ")";
  };
  auto ds_count_of = [&ds_counts](const kg::Triple& triple) {
    auto it = ds_counts.find({triple.head, triple.tail});
    return it == ds_counts.end() ? 0 : it->second;
  };

  std::vector<float> target_mr = data.embeddings.MutualRelation(
      static_cast<int>(target->head), static_cast<int>(target->tail));

  struct Similar {
    const kg::Triple* triple;
    double cosine;
  };
  std::vector<Similar> ranked;
  for (const kg::Triple& triple : triples) {
    if (triple.head == target->head && triple.tail == target->tail)
      continue;
    std::vector<float> mr = data.embeddings.MutualRelation(
        static_cast<int>(triple.head), static_cast<int>(triple.tail));
    ranked.push_back(
        {&triple, graph::EmbeddingStore::Cosine(target_mr, mr)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Similar& a, const Similar& b) {
              return a.cosine > b.cosine;
            });

  std::printf("Target pair %s — relation %s, only %d training sentence(s)\n",
              pair_name(*target).c_str(),
              graph.relation(target->relation).name.c_str(),
              ds_count_of(*target));
  std::printf("\n%-4s %-44s %6s %8s  %s\n", "ID", "Entity pair", "#sent",
              "MR-cos", "Relation");
  std::printf("%-4s %-44s %6d %8s  %s  <- target (hard to extract)\n", "1",
              pair_name(*target).c_str(), ds_count_of(*target), "-",
              graph.relation(target->relation).name.c_str());
  std::vector<std::vector<std::string>> tsv_rows;
  tsv_rows.push_back({"pair", "sentences", "mr_cosine", "relation",
                      "same_as_target"});
  int same_relation = 0;
  const int show = 8;
  for (int i = 0; i < show && i < static_cast<int>(ranked.size()); ++i) {
    const Similar& similar = ranked[static_cast<size_t>(i)];
    const bool same = similar.triple->relation == target->relation;
    same_relation += same;
    std::printf("%-4d %-44s %6d %8.3f  %s%s\n", i + 2,
                pair_name(*similar.triple).c_str(),
                ds_count_of(*similar.triple), similar.cosine,
                graph.relation(similar.triple->relation).name.c_str(),
                same ? "" : "  (different)");
    tsv_rows.push_back({pair_name(*similar.triple),
                        std::to_string(ds_count_of(*similar.triple)),
                        util::StrFormat("%.4f", similar.cosine),
                        graph.relation(similar.triple->relation).name,
                        same ? "1" : "0"});
  }
  std::printf("\n%d of the %d most MR-similar pairs share the target's "
              "relation.\n", same_relation, show);
  std::printf("(paper Table I: pairs like (University of Washington, "
              "Seattle) / (USC, Los Angeles)\nall carry locatedIn and "
              "mutually support extraction)\n");
  WriteTsv(context, "table1_mutual_relations", tsv_rows);
  return 0;
}

}  // namespace imr::bench

int main(int argc, char** argv) {
  return imr::bench::BenchMain(argc, argv, imr::bench::Run);
}
