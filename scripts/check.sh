#!/usr/bin/env bash
# Full verification matrix: plain build + ctest, the kernel-benchmark smoke
# gate (zero pool misses, zero dense full-table gradient scans in a
# warmed-up training step, no silent scalar kernel fallback), the serving
# SLO smoke gate (router tail latency, sharded cache hit rate, zero-failure
# hot swap, int8 parity), the ANN smoke gate (IVF recall@10 vs exact,
# sub-millisecond p99 at 100k entities), the SIMD
# backend matrix (full ctest under every compiled backend), ThreadSanitizer,
# AddressSanitizer, UndefinedBehaviorSanitizer, the clang thread-safety
# analysis build, the project linter (pass 1), and the cross-file analyzer
# (pass 2: lock-order cycles, hot-path reachability, Status propagation,
# with a >= 5x incremental-cache gate). Each stage reports pass/fail/skip
# and the script exits nonzero if anything failed.
#
# Usage: scripts/check.sh [-jN]   (run from the repo root)
set -u

JOBS="${1:--j$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

declare -a STAGE_NAMES=()
declare -a STAGE_RESULTS=()
FAILED=0

record() {  # name result
  STAGE_NAMES+=("$1")
  STAGE_RESULTS+=("$2")
  if [ "$2" = FAIL ]; then FAILED=1; fi
}

run_stage() {  # name command...
  local name="$1"
  shift
  echo
  echo "==== $name ===="
  if "$@"; then
    record "$name" PASS
  else
    record "$name" FAIL
  fi
}

build_and_test() {  # builddir cmake-extra-args... -- ctest-extra-args...
  local dir="$1"
  shift
  local cmake_args=()
  while [ $# -gt 0 ] && [ "$1" != "--" ]; do
    cmake_args+=("$1")
    shift
  done
  [ $# -gt 0 ] && shift  # drop --
  cmake -B "$dir" -S . "${cmake_args[@]}" >/dev/null \
    && cmake --build "$dir" "$JOBS" \
    && ctest --test-dir "$dir" --output-on-failure "$JOBS" "$@"
}

# 1. Plain release build, full test suite (includes the imr_lint ctest).
run_stage "build+ctest" build_and_test build -DCMAKE_BUILD_TYPE=Release --

# 1b. Kernel benchmark smoke: tiny sizes, exits nonzero if a warmed-up
# training step reports any buffer-pool miss (an allocation crept back onto
# the hot path), if the steady-state embedding step loses row sparsity
# (SparseGradStats reports a dense full-table gradient scan), or if kernel
# dispatch silently falls back to scalar on a vector-capable host.
if [ -x build/bench/bench_kernels ]; then
  run_stage "bench-smoke" build/bench/bench_kernels --smoke
else
  record "bench-smoke" SKIP
fi

# 1b'. Serving SLO smoke: reduced replay through the router matrix, exits
# nonzero if router tail latency regresses past 10x the single-thread
# floor, the sharded MR cache loses hit rate vs a single shard, a hot swap
# fails any request under load, or int8 serving diverges from fp32.
if [ -x build/bench/bench_serve ]; then
  run_stage "serve-smoke" build/bench/bench_serve --smoke
else
  record "serve-smoke" SKIP
fi

# 1b'''. Snapshot format compatibility: the SnapshotCompat* suite proves
# the current writer still emits loadable v1, v2 opens zero-copy with a
# valid content hash, and a v1-era reader cleanly rejects v2 files — the
# cross-version contract a serving fleet mid-rollout depends on.
if [ -x build/tests/serve_test ]; then
  run_stage "snapshot-compat" build/tests/serve_test \
      --gtest_filter='SnapshotCompat*'
else
  record "snapshot-compat" SKIP
fi

# 1b''. ANN smoke: IVF index over 100k x 64 clustered vectors, exits
# nonzero if recall@10 vs the exact FlatIndex drops below 0.95 or p99
# query latency exceeds 1 ms at nprobe=16. On the scalar backend the
# latency bound relaxes x8 (no SIMD distance sweep); the recall bound
# never relaxes.
if [ -x build/bench/bench_ann ]; then
  run_stage "ann-smoke" build/bench/bench_ann --smoke
else
  record "ann-smoke" SKIP
fi

# 1c. SIMD backend matrix: force every backend this build+host supports
# (bench_kernels --list_backends; scalar is always in the list) through the
# full test suite via the IMR_KERNEL_BACKEND pin, so a kernel that only
# breaks under one ISA — or a dispatch bug that ignores the pin — fails CI.
if [ -x build/bench/bench_kernels ]; then
  simd_matrix() {
    local backend ok=0
    for backend in $(build/bench/bench_kernels --list_backends); do
      echo "---- IMR_KERNEL_BACKEND=$backend ----"
      if ! IMR_KERNEL_BACKEND="$backend" \
           ctest --test-dir build --output-on-failure "$JOBS"; then
        ok=1
      fi
    done
    return "$ok"
  }
  run_stage "simd" simd_matrix
else
  record "simd" SKIP
fi

# 2-4. Sanitizers, each in its own build tree, selecting its label so a
# sanitizer tree only runs the suite it instruments.
run_stage "tsan" build_and_test build-tsan -DIMR_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -- -L tsan
run_stage "asan" build_and_test build-asan -DIMR_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -- -L asan
run_stage "ubsan" build_and_test build-ubsan -DIMR_SANITIZE=undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -- -L ubsan

# 5. Clang thread-safety analysis (compile-only gate; -Werror=thread-safety
# makes any violation a build failure). Skipped when clang is unavailable.
if command -v clang++ >/dev/null 2>&1; then
  echo
  echo "==== thread-safety ===="
  if cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
       -DIMR_THREAD_SAFETY=ON >/dev/null \
     && cmake --build build-tsa "$JOBS"; then
    record "thread-safety" PASS
  else
    record "thread-safety" FAIL
  fi
else
  echo
  echo "==== thread-safety ==== (skipped: clang++ not found)"
  record "thread-safety" SKIP
fi

# 6. Linter, standalone (also already ran inside stage 1's ctest; running
# it again here keeps the stage table complete even if stage 1 failed to
# build).
if [ -x build/tools/imr_lint ]; then
  run_stage "imr_lint" build/tools/imr_lint "$ROOT"
else
  record "imr_lint" SKIP
fi

# 7. Cross-file analyzer (pass 2): whole-program lock-order / hot-path /
# Status-propagation analyses against the checked-in baseline. Exits
# nonzero on any non-baselined finding and prints the per-analysis timing
# summary. The second invocation gates the incremental model cache: a warm
# re-run must be at least 5x faster than a cold one.
if [ -x build/tools/imr_analyze ]; then
  run_stage "analyze" build/tools/imr_analyze \
    --cache build/imr_analysis_cache "$ROOT"
  run_stage "analyze-cache" build/tools/imr_analyze \
    --bench-cache build/imr_analysis_cache_bench --min-speedup 5 "$ROOT"
else
  record "analyze" SKIP
  record "analyze-cache" SKIP
fi

echo
echo "==== summary ===="
for i in "${!STAGE_NAMES[@]}"; do
  printf '%-16s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}"
done
exit "$FAILED"
