// Pass 2 of the imr static-analysis framework: cross-file structural
// analysis over a lightweight model of every translation unit.
//
// Where pass 1 (tools/lint.h) matches per-line token patterns, pass 2
// tokenizes each file into a structural model — namespace/class/function
// scopes, call sites, `util::MutexLock` / manual `Lock()`/`Unlock()`
// acquisitions, blocking operations, pool-bypassing allocations, and
// Status-typed locals — then builds a project-wide symbol index and call
// graph (file parsing fans out over util::ThreadPool) and runs three
// whole-program analyses:
//
//   lock-order-cycle  every mutex held at the point another mutex is
//                     acquired (directly, or transitively through a call
//                     chain) contributes a held->acquired edge to the
//                     project lock-order graph; any cycle is a potential
//                     deadlock and is reported with the full acquisition
//                     chain. Generalizes pass 1's single-file
//                     blocking-under-shard-lock rule to the whole tree.
//   hot-path-blocking blocking operations (CondVar Wait/WaitUntil, file
//   hot-path-alloc    streams, fopen, LoadSnapshot, sleeps) and
//                     pool-bypassing allocations (`new`, malloc, naked
//                     std::vector<float> construction) reachable through
//                     the call graph from the training/serving entry
//                     points (Trainer::Train*/ParallelBatchStep,
//                     InferenceEngine::Predict*). Reported with the
//                     entry -> ... -> sink call chain.
//   status-drop       a util::Status / StatusOr local that is assigned
//                     and then never read again — the discard pattern
//                     -Werror=unused-result cannot see.
//
// The model is heuristic (no libclang): call edges resolve by name with
// same-class > same-file > unique-global precedence and ambiguous names
// resolve to nothing, so the analyses favor precision over recall. Mutex
// identities are canonicalized member paths (`Class::member_`,
// `shard.mutex`); distinct spellings of the same lock fragment the graph
// conservatively (fewer edges, never spurious cycles).
//
// Findings carry a line-independent `key` so the checked-in baseline
// (tools/analyze_baseline.txt) survives unrelated edits. Per-file models
// are cached on disk keyed by content hash: a warm re-run re-parses only
// changed files.
//
// Suppression: the pass-1 escape hatches apply — `// imr-lint:
// allow(rule)` on or above the reported line, `// imr-lint:
// allow-file(rule)` in the file header — plus the baseline for findings
// whose justification belongs in one reviewed place.
#ifndef IMR_TOOLS_ANALYZER_H_
#define IMR_TOOLS_ANALYZER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint.h"

namespace imr::analysis {

// ---- per-file structural model -------------------------------------------

struct CallSite {
  std::string callee;             // simple name at the call site
  int line = 0;                   // 1-based
  std::vector<std::string> held;  // canonical mutexes held at the call
};

struct LockAcquire {
  std::string mutex;  // canonical name (Class::member_, shard.mutex, ...)
  int line = 0;
  bool scoped = false;            // MutexLock RAII vs manual Lock()
  std::vector<std::string> held;  // mutexes already held when acquiring
};

struct BlockingOp {
  std::string what;  // e.g. "CondVar::Wait", "std::ifstream", "LoadSnapshot"
  int line = 0;
  std::vector<std::string> held;
};

struct AllocOp {
  std::string what;  // e.g. "new", "std::vector<float>", "malloc"
  int line = 0;
};

struct StatusLocal {
  std::string var;
  int line = 0;
  bool read = false;   // referenced again after the declaration
  bool typed = false;  // declared as Status/StatusOr (vs auto)
  std::string init_callee;  // for auto locals: the initializing call
};

struct FunctionModel {
  std::string qualified;   // Ns::Class::name (best effort)
  std::string name;        // simple name
  std::string class_name;  // enclosing class, "" for free functions
  bool returns_status = false;
  int line = 0;  // definition line
  std::vector<CallSite> calls;
  std::vector<LockAcquire> acquires;
  std::vector<BlockingOp> blocking;
  std::vector<AllocOp> allocs;
  std::vector<StatusLocal> status_locals;
};

struct FileModel {
  std::string path;   // repo-relative
  uint64_t hash = 0;  // content hash (cache key)
  std::vector<FunctionModel> functions;
  std::set<std::string> file_allows;
  std::map<int, std::set<std::string>> line_allows;  // 1-based
  std::vector<lint::Finding> lint_findings;  // pass 1, cached with the model
};

/// FNV-1a over content plus the model format version, so a format bump
/// invalidates every cache entry.
uint64_t HashContent(const std::string& content);

/// Parses one translation unit into its structural model (pass-1 findings
/// are not populated; AnalyzeTree/AnalyzeSources attach them).
FileModel BuildFileModel(const std::string& relpath,
                         const std::string& content);

// ---- whole-program analysis ----------------------------------------------

/// A hot-path root: functions of `class_name` whose simple name starts
/// with `name_prefix`.
struct EntryPoint {
  std::string class_name;
  std::string name_prefix;
};

struct AnalyzerOptions {
  /// Hot-path roots; empty selects the defaults (Trainer::Train*,
  /// Trainer::ParallelBatchStep, InferenceEngine::Predict*).
  std::vector<EntryPoint> entries;
  /// Directory for the on-disk model cache; empty disables caching.
  std::string cache_dir;
  /// Baseline file of justified findings; empty disables baselining.
  std::string baseline_path;
  /// Worker threads for the parallel parse (<= 0: hardware concurrency).
  int threads = 0;
  /// Also run the pass-1 line rules per file (cached with the model).
  bool run_lint = true;
};

struct AnalysisTiming {
  std::string name;
  double ms = 0.0;
};

struct AnalysisReport {
  std::vector<lint::Finding> findings;   // actionable (not baselined)
  std::vector<lint::Finding> baselined;  // matched the baseline
  std::vector<AnalysisTiming> timings;   // per-phase wall time
  int files_scanned = 0;
  int files_parsed = 0;  // cache misses (or no cache)
  int files_cached = 0;  // cache hits
};

/// Pass-2 rule ids in reporting order.
const std::vector<std::string>& AnalysisIds();

struct SourceFile {
  std::string path;
  std::string content;
};

/// Analyzes an in-memory file set (fixture tests). No cache, no baseline
/// unless set in `options`.
AnalysisReport AnalyzeSources(const std::vector<SourceFile>& files,
                              const AnalyzerOptions& options = {});

/// Walks root/{src,tests,bench,examples,tools}, parses (or loads from
/// cache) every .h/.cc/.cpp in parallel, and runs the whole-program
/// analyses. Paths in findings are repo-relative (lint::RepoRootFor).
AnalysisReport AnalyzeTree(const std::string& root,
                           const AnalyzerOptions& options = {});

/// Machine-readable report: findings (with keys and baselined flags),
/// per-phase timings, and cache counters.
std::string ReportToJson(const AnalysisReport& report,
                         const std::string& root);

/// Baseline file format: one `<rule-id> <key>` per line; `#` comments
/// carry the justification. Unknown/missing file yields an empty set.
std::set<std::pair<std::string, std::string>> LoadBaseline(
    const std::string& path);

}  // namespace imr::analysis

#endif  // IMR_TOOLS_ANALYZER_H_
