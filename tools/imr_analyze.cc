// Standalone analyzer binary: `imr_analyze [options] [project-root]` runs
// both static-analysis passes (the per-line lint rules and the cross-file
// structural analyses — see tools/analyzer.h) over src/, tests/, bench/,
// examples/, and tools/ under the root (default: cwd) and exits nonzero if
// any non-baselined finding fired.
//
//   --baseline <file>   justified-findings baseline
//                       (default: <root>/tools/analyze_baseline.txt)
//   --cache <dir>       on-disk model cache; only changed files re-parse
//   --json              print the machine-readable report to stdout
//   --threads <n>       parallel-parse worker count (default: hardware)
//   --bench-cache <dir> measure cold vs warm analysis with the cache at
//                       <dir>; exits nonzero below --min-speedup (def. 5)
//   --list-analyses     print the pass-2 rule ids
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "analyzer.h"
#include "lint.h"

namespace {

double RunOnceMs(const std::string& root,
                 const imr::analysis::AnalyzerOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  (void)imr::analysis::AnalyzeTree(root, options);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int BenchCache(const std::string& root, imr::analysis::AnalyzerOptions options,
               const std::string& cache_dir, double min_speedup) {
  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);
  options.cache_dir = cache_dir;
  const double cold_ms = RunOnceMs(root, options);
  const double warm_ms = RunOnceMs(root, options);
  const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
  std::printf("imr_analyze cache bench: cold %.1f ms, warm %.1f ms, %.2fx\n",
              cold_ms, warm_ms, speedup);
  if (speedup < min_speedup) {
    std::fprintf(stderr,
                 "imr_analyze: warm run only %.2fx faster than cold "
                 "(need >= %.1fx)\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string bench_cache_dir;
  double min_speedup = 5.0;
  bool json = false;
  imr::analysis::AnalyzerOptions options;
  bool baseline_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "imr_analyze: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list-analyses") {
      for (const std::string& id : imr::analysis::AnalysisIds()) {
        std::printf("%s\n", id.c_str());
      }
      return 0;
    } else if (arg == "--baseline") {
      options.baseline_path = value("--baseline");
      baseline_set = true;
    } else if (arg == "--cache") {
      options.cache_dir = value("--cache");
    } else if (arg == "--threads") {
      options.threads = std::atoi(value("--threads"));
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--bench-cache") {
      bench_cache_dir = value("--bench-cache");
    } else if (arg == "--min-speedup") {
      min_speedup = std::atof(value("--min-speedup"));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "imr_analyze: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      root = arg;
    }
  }
  if (!baseline_set) {
    const std::filesystem::path def =
        std::filesystem::path(root) / "tools" / "analyze_baseline.txt";
    std::error_code ec;
    if (std::filesystem::exists(def, ec)) {
      options.baseline_path = def.string();
    }
  }
  if (!bench_cache_dir.empty()) {
    return BenchCache(root, options, bench_cache_dir, min_speedup);
  }

  const imr::analysis::AnalysisReport report =
      imr::analysis::AnalyzeTree(root, options);
  if (json) {
    std::fputs(imr::analysis::ReportToJson(report, root).c_str(), stdout);
  } else {
    for (const imr::lint::Finding& f : report.findings) {
      std::fprintf(stderr, "%s\n", imr::lint::FormatFinding(f).c_str());
    }
    std::printf(
        "imr_analyze: %d files (%d parsed, %d cached), %zu finding(s), "
        "%zu baselined\n",
        report.files_scanned, report.files_parsed, report.files_cached,
        report.findings.size(), report.baselined.size());
    for (const imr::analysis::AnalysisTiming& t : report.timings) {
      std::printf("  %-12s %8.1f ms\n", t.name.c_str(), t.ms);
    }
  }
  return report.findings.empty() ? 0 : 1;
}
