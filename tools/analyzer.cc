#include "analyzer.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <tuple>

#include "util/thread_pool.h"

namespace imr::analysis {
namespace {

constexpr uint64_t kModelFormatVersion = 1;
constexpr size_t kNpos = static_cast<size_t>(-1);

// ---- tokenizer -----------------------------------------------------------

struct Tok {
  std::string text;
  int line = 0;  // 1-based
};

bool IsIdentText(const std::string& t) {
  if (t.empty()) return false;
  const unsigned char c0 = static_cast<unsigned char>(t[0]);
  if (!std::isalpha(c0) && c0 != '_') return false;
  for (char ch : t) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (!std::isalnum(c) && c != '_') return false;
  }
  return true;
}

/// Blanks preprocessor lines (including `\` continuations) so `#define`
/// bodies never unbalance the brace tracking, then splits the remaining
/// code into identifier / number / punctuation tokens. `::` and `->` are
/// kept as single tokens; every other punctuation char stands alone.
std::vector<Tok> Tokenize(std::vector<std::string> code) {
  bool continuation = false;
  for (std::string& line : code) {
    const size_t first = line.find_first_not_of(" \t\r");
    const bool directive =
        !continuation && first != std::string::npos && line[first] == '#';
    if (directive || continuation) {
      continuation = !line.empty() && line.back() == '\\';
      line.assign(line.size(), ' ');
    } else {
      continuation = false;
    }
  }
  std::vector<Tok> toks;
  for (size_t li = 0; li < code.size(); ++li) {
    const std::string& s = code[li];
    const int line = static_cast<int>(li) + 1;
    size_t i = 0;
    while (i < s.size()) {
      const unsigned char c = static_cast<unsigned char>(s[i]);
      if (std::isspace(c)) {
        ++i;
        continue;
      }
      if (std::isalpha(c) || c == '_') {
        size_t j = i + 1;
        while (j < s.size()) {
          const unsigned char d = static_cast<unsigned char>(s[j]);
          if (!std::isalnum(d) && d != '_') break;
          ++j;
        }
        toks.push_back(Tok{s.substr(i, j - i), line});
        i = j;
        continue;
      }
      if (std::isdigit(c)) {
        size_t j = i + 1;
        while (j < s.size()) {
          const unsigned char d = static_cast<unsigned char>(s[j]);
          if (!std::isalnum(d) && d != '.' && d != '\'') break;
          ++j;
        }
        toks.push_back(Tok{s.substr(i, j - i), line});
        i = j;
        continue;
      }
      if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
        toks.push_back(Tok{"::", line});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
        toks.push_back(Tok{"->", line});
        i += 2;
        continue;
      }
      toks.push_back(Tok{std::string(1, static_cast<char>(c)), line});
      ++i;
    }
  }
  return toks;
}

// ---- structural parser ---------------------------------------------------

const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kWords = {
      "if",     "for",      "while",   "switch",        "return",
      "sizeof", "alignof",  "alignas", "decltype",      "catch",
      "new",    "delete",   "throw",   "static_assert", "noexcept",
      "defined"};
  return kWords;
}

class FileParser {
 public:
  explicit FileParser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  void Parse(FileModel* out) {
    out_ = out;
    size_t i = 0;
    while (i < toks_.size()) {
      const std::string& t = Text(i);
      if (t == "template" && Text(i + 1) == "<") {
        i = MatchAngleFwd(i + 1) + 1;
      } else if (t == "namespace") {
        i = HandleNamespace(i);
      } else if (t == "class" || t == "struct" || t == "union") {
        i = HandleClass(i);
      } else if (t == "enum") {
        i = HandleEnum(i);
      } else if (t == "using" || t == "typedef" || t == "friend" ||
                 t == "static_assert" || t == "=") {
        i = SkipToStatementEnd(i) + 1;
      } else if (t == "{") {
        scopes_.push_back(Scope{Scope::kBlock, ""});
        ++i;
      } else if (t == "}") {
        if (!scopes_.empty()) scopes_.pop_back();
        ++i;
      } else if (t == "(") {
        i = HandleParen(i);
      } else {
        ++i;
      }
    }
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kBlock };
    Kind kind;
    std::string name;
  };

  const std::string& Text(size_t i) const {
    static const std::string kEmpty;
    return i < toks_.size() ? toks_[i].text : kEmpty;
  }
  int Line(size_t i) const {
    return i < toks_.size() ? toks_[i].line : 0;
  }

  // -- balanced-token matching (forward returns the closer's index, or the
  // last token when unbalanced; backward returns the opener's index or
  // kNpos) --

  size_t MatchFwd(size_t i, const char* open, const char* close) const {
    int depth = 1;
    size_t j = i + 1;
    for (; j < toks_.size(); ++j) {
      if (Text(j) == open) ++depth;
      else if (Text(j) == close && --depth == 0) return j;
    }
    return toks_.empty() ? 0 : toks_.size() - 1;
  }
  size_t MatchParenFwd(size_t i) const { return MatchFwd(i, "(", ")"); }
  size_t MatchBraceFwd(size_t i) const { return MatchFwd(i, "{", "}"); }
  size_t MatchAngleFwd(size_t i) const { return MatchFwd(i, "<", ">"); }

  size_t MatchBack(size_t i, const char* open, const char* close) const {
    int depth = 1;
    size_t j = i;
    while (j > 0) {
      --j;
      if (Text(j) == close) ++depth;
      else if (Text(j) == open && --depth == 0) return j;
    }
    return kNpos;
  }
  size_t MatchParenBack(size_t i) const { return MatchBack(i, "(", ")"); }
  size_t MatchBracketBack(size_t i) const { return MatchBack(i, "[", "]"); }
  size_t MatchAngleBack(size_t i) const { return MatchBack(i, "<", ">"); }

  /// Index of the `;` ending the statement starting at `i` (brackets of
  /// all three kinds balanced), or the index just before a `}` that would
  /// close the enclosing scope.
  size_t SkipToStatementEnd(size_t i) const {
    int depth = 0;
    for (size_t j = i; j < toks_.size(); ++j) {
      const std::string& u = Text(j);
      if (u == "(" || u == "{" || u == "[") ++depth;
      else if (u == ")" || u == "]") --depth;
      else if (u == "}") {
        if (depth == 0) return j == 0 ? 0 : j - 1;
        --depth;
      } else if (u == ";" && depth == 0) {
        return j;
      }
    }
    return toks_.empty() ? 0 : toks_.size() - 1;
  }

  size_t HandleNamespace(size_t i) {
    size_t j = i + 1;
    std::string name;
    while (IsIdentText(Text(j)) || Text(j) == "::") {
      name += Text(j);
      ++j;
    }
    if (Text(j) == "{") {
      scopes_.push_back(Scope{Scope::kNamespace, name});
      return j + 1;
    }
    return SkipToStatementEnd(j) + 1;  // namespace alias
  }

  size_t HandleClass(size_t i) {
    size_t j = i + 1;
    std::string name;
    bool frozen = false;  // name fixed once the base clause starts
    while (j < toks_.size()) {
      const std::string& u = Text(j);
      if (u == "{") {
        scopes_.push_back(Scope{Scope::kClass, name});
        return j + 1;
      }
      if (u == ";") return j + 1;  // forward declaration
      if (u == "(") {
        j = MatchParenFwd(j) + 1;  // attribute macro
        continue;
      }
      if (u == "<") {
        j = MatchAngleFwd(j) + 1;  // specialization args
        continue;
      }
      if (u == ":") frozen = true;
      if (IsIdentText(u) && !frozen) name = u;
      ++j;
    }
    return j;
  }

  size_t HandleEnum(size_t i) {
    size_t j = i + 1;
    while (j < toks_.size() && Text(j) != "{" && Text(j) != ";") ++j;
    if (Text(j) == "{") return MatchBraceFwd(j) + 1;
    return j + 1;
  }

  /// From the first token after a ctor-init-list `:`, returns the index
  /// of the body `{` (skipping initializer parens and brace-inits).
  size_t SkipInitList(size_t j) const {
    while (j < toks_.size()) {
      const std::string& u = Text(j);
      if (u == "{") {
        if (j > 0 && (IsIdentText(Text(j - 1)) || Text(j - 1) == ">")) {
          j = MatchBraceFwd(j) + 1;  // brace-initializer
          continue;
        }
        return j;  // function body
      }
      if (u == "(") {
        j = MatchParenFwd(j) + 1;
        continue;
      }
      if (u == ";") return j;
      ++j;
    }
    return j;
  }

  std::string EnclosingClass() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
      if (it->kind == Scope::kBlock) continue;
      break;  // namespace: no enclosing class
    }
    return "";
  }

  std::string QualifiedName(const std::string& name) const {
    std::string out;
    for (const Scope& s : scopes_) {
      if (s.name.empty()) continue;
      out += s.name;
      out += "::";
    }
    return out + name;
  }

  /// A `(` at declaration scope: either a function definition (parse the
  /// body) or a declaration/initializer (skip). Returns the next index.
  size_t HandleParen(size_t open) {
    // -- backward: declarator name --
    size_t k = open;
    std::string simple;
    if (k > 0 && IsIdentText(Text(k - 1))) {
      simple = Text(k - 1);
      --k;
      if (k > 0 && Text(k - 1) == "~") {
        simple = "~" + simple;
        --k;
      }
    } else {
      for (size_t back = 1; back <= 3 && back <= k; ++back) {
        if (Text(k - back) == "operator") {
          std::string sym;
          for (size_t q = k - back + 1; q < k; ++q) sym += Text(q);
          simple = "operator" + sym;
          k -= back;
          break;
        }
      }
    }
    std::string name = simple;
    std::string cls_qual;
    if (!simple.empty()) {
      while (k >= 2 && Text(k - 1) == "::") {
        size_t q = k - 2;
        std::string qual;
        if (Text(q) == ">") {
          const size_t lt = MatchAngleBack(q);
          if (lt == kNpos || lt == 0 || !IsIdentText(Text(lt - 1))) break;
          qual = Text(lt - 1);
          q = lt - 1;
        } else if (IsIdentText(Text(q))) {
          qual = Text(q);
        } else {
          break;
        }
        if (cls_qual.empty()) cls_qual = qual;  // innermost qualifier
        name = qual + "::" + name;
        k = q;
      }
    }
    // -- return type: scan back from the declarator for Status/StatusOr --
    bool returns_status = false;
    for (size_t back = 1; back <= 12 && back <= k; ++back) {
      const std::string& u = Text(k - back);
      if (u == ";" || u == "}" || u == "{" || u == ")" || u == ":") break;
      if (u == "Status" || u == "StatusOr") returns_status = true;
    }
    // -- forward: declaration vs definition --
    const size_t close = MatchParenFwd(open);
    size_t j = close + 1;
    bool body = false;
    while (j < toks_.size()) {
      const std::string& u = Text(j);
      if (u == "{") {
        body = true;
        break;
      }
      if (u == ";") break;
      if (u == "=") {
        j = SkipToStatementEnd(j);  // = default / delete / 0, or var init
        break;
      }
      if (u == ":") {
        j = SkipInitList(j + 1);
        body = Text(j) == "{";
        break;
      }
      if (u == "(" || (IsIdentText(u) && Text(j + 1) == "(")) {
        j = MatchParenFwd(u == "(" ? j : j + 1) + 1;  // noexcept/macro args
        continue;
      }
      ++j;
    }
    if (!body) return j + 1;
    if (simple.empty()) {
      scopes_.push_back(Scope{Scope::kBlock, ""});
      return j + 1;
    }
    FunctionModel fn;
    fn.name = simple;
    fn.class_name = !cls_qual.empty() ? cls_qual : EnclosingClass();
    fn.qualified = QualifiedName(name);
    fn.returns_status = returns_status;
    fn.line = Line(open);
    const size_t end = ParseBody(j, &fn);
    out_->functions.push_back(std::move(fn));
    return end + 1;
  }

  struct HeldLock {
    std::string mutex;
    int depth = 0;
    bool scoped = false;
  };

  std::vector<std::string> HeldNames(const std::vector<HeldLock>& held) const {
    std::vector<std::string> out;
    out.reserve(held.size());
    for (const HeldLock& h : held) out.push_back(h.mutex);
    return out;
  }

  /// Canonical mutex spelling for the token range [b, e): whitespace-free,
  /// `->` folded to `.`, subscripts to `[]`, `this.` and leading `&`/`*`
  /// stripped; a bare identifier is prefixed with the enclosing class so
  /// `mu_` and `other.mu_` in different methods of one class agree.
  std::string CanonRange(size_t b, size_t e, const std::string& cls) const {
    std::string s;
    for (size_t j = b; j < e && j < toks_.size(); ++j) {
      const std::string& t = Text(j);
      if (t == "->") {
        s += ".";
      } else if (t == "[") {
        s += "[]";
        j = MatchFwd(j, "[", "]");
      } else {
        s += t;
      }
    }
    while (!s.empty() && (s[0] == '&' || s[0] == '*')) s.erase(0, 1);
    if (s.rfind("this.", 0) == 0) s.erase(0, 5);
    if (IsIdentText(s) && !cls.empty()) s = cls + "::" + s;
    return s;
  }

  /// Start of the receiver expression whose last token is at `e`
  /// (exclusive): walks back over `a.b->c[i]`, `f(x).m` chains.
  size_t ReceiverBegin(size_t e) const {
    size_t b = e;
    while (b > 0) {
      const std::string& p = Text(b - 1);
      if (p == "]") {
        const size_t o = MatchBracketBack(b - 1);
        if (o == kNpos) break;
        b = o;
      } else if (p == ")") {
        const size_t o = MatchParenBack(b - 1);
        if (o == kNpos) break;
        b = o;
      } else if (IsIdentText(p) || p == "this" || p == "." || p == "->" ||
                 p == "::") {
        --b;
      } else {
        break;
      }
    }
    return b;
  }

  struct PendingStatus {
    std::string var;
    int line = 0;
    bool typed = false;
    std::string init_callee;
    size_t stmt_end = 0;
  };

  /// Walks one function body from its `{` at `open`; records call sites,
  /// lock acquisitions/releases (with the held set replayed by brace
  /// depth), blocking ops, pool-bypassing allocations, and Status locals.
  /// Returns the index of the closing `}`.
  size_t ParseBody(size_t open, FunctionModel* fn) {
    const std::string& cls = fn->class_name;
    std::vector<HeldLock> held;
    std::vector<PendingStatus> pending;
    int depth = 1;
    std::string prev = "{";
    size_t i = open + 1;
    while (i < toks_.size() && depth > 0) {
      const std::string& t = Text(i);
      const bool stmt_start = prev == "{" || prev == ";" || prev == "}";
      if (t == "{") {
        ++depth;
      } else if (t == "}") {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
        if (depth == 0) break;
      } else if (t == "MutexLock" && IsIdentText(Text(i + 1)) &&
                 Text(i + 2) == "(") {
        const size_t close = MatchParenFwd(i + 2);
        const std::string canon = CanonRange(i + 3, close, cls);
        if (!canon.empty()) {
          fn->acquires.push_back(
              LockAcquire{canon, Line(i), true, HeldNames(held)});
          held.push_back(HeldLock{canon, depth, true});
        }
        i = close;
      } else if ((t == "." || t == "->") &&
                 (Text(i + 1) == "Lock" || Text(i + 1) == "Unlock") &&
                 Text(i + 2) == "(") {
        const std::string canon = CanonRange(ReceiverBegin(i), i, cls);
        if (!canon.empty()) {
          if (Text(i + 1) == "Lock") {
            fn->acquires.push_back(
                LockAcquire{canon, Line(i), false, HeldNames(held)});
            held.push_back(HeldLock{canon, depth, false});
          } else {
            // release the most recent manual hold of this mutex
            for (size_t h = held.size(); h-- > 0;) {
              if (!held[h].scoped && held[h].mutex == canon) {
                held.erase(held.begin() + static_cast<ptrdiff_t>(h));
                break;
              }
            }
          }
        }
        i = MatchParenFwd(i + 2);
      } else if ((t == "." || t == "->") &&
                 (Text(i + 1) == "Wait" || Text(i + 1) == "WaitUntil") &&
                 Text(i + 2) == "(") {
        fn->blocking.push_back(
            BlockingOp{"CondVar::Wait", Line(i + 1), HeldNames(held)});
      } else if ((t == "sleep_for" || t == "sleep_until" || t == "usleep" ||
                  t == "nanosleep" || t == "sleep") &&
                 Text(i + 1) == "(") {
        fn->blocking.push_back(BlockingOp{"sleep", Line(i), HeldNames(held)});
      } else if ((t == "ifstream" || t == "ofstream" || t == "fstream") &&
                 IsIdentText(Text(i + 1))) {
        fn->blocking.push_back(
            BlockingOp{"std::" + t, Line(i), HeldNames(held)});
      } else if (t == "fopen" && Text(i + 1) == "(") {
        fn->blocking.push_back(BlockingOp{"fopen", Line(i), HeldNames(held)});
      } else if (t == "LoadSnapshot" && Text(i + 1) == "(") {
        fn->blocking.push_back(
            BlockingOp{"LoadSnapshot", Line(i), HeldNames(held)});
        fn->calls.push_back(CallSite{t, Line(i), HeldNames(held)});
      } else if (t == "new") {
        fn->allocs.push_back(AllocOp{"new", Line(i)});
      } else if ((t == "malloc" || t == "calloc" || t == "realloc") &&
                 Text(i + 1) == "(") {
        fn->allocs.push_back(AllocOp{t, Line(i)});
      } else if (t == "vector" && Text(i + 1) == "<" &&
                 Text(i + 2) == "float" && Text(i + 3) == ">" &&
                 (IsIdentText(Text(i + 4)) || Text(i + 4) == "(")) {
        // `std::vector<float> out = AcquireBuffer*(...)` is the sanctioned
        // pool path (same exemption as pass 1's kernel-alloc rule)
        if (!(Text(i + 5) == "=" &&
              Text(i + 6).rfind("AcquireBuffer", 0) == 0)) {
          fn->allocs.push_back(AllocOp{"std::vector<float>", Line(i)});
        }
      } else if (stmt_start && (HandleStatusDecl(i, &pending) ||
                                HandleAutoDecl(i, &pending))) {
        // declaration recorded; initializer tokens still flow through the
        // loop so calls inside it are seen
        if (IsIdentText(t) && Text(i + 1) == "(" &&
            CallKeywords().count(t) == 0) {
          fn->calls.push_back(CallSite{t, Line(i), HeldNames(held)});
        }
      } else if (IsIdentText(t) && Text(i + 1) == "(" &&
                 CallKeywords().count(t) == 0) {
        fn->calls.push_back(CallSite{t, Line(i), HeldNames(held)});
      }
      prev = Text(i);
      ++i;
    }
    const size_t body_close = std::min(i, toks_.size() - 1);
    for (const PendingStatus& p : pending) {
      bool read = false;
      for (size_t j = p.stmt_end + 1; j < body_close; ++j) {
        if (Text(j) == p.var) {
          read = true;
          break;
        }
      }
      fn->status_locals.push_back(
          StatusLocal{p.var, p.line, read, p.typed, p.init_callee});
    }
    return body_close;
  }

  /// `util::Status s = ...;` / `StatusOr<T> v(...);` at statement start.
  bool HandleStatusDecl(size_t i, std::vector<PendingStatus>* pending) {
    size_t j = i;
    while (IsIdentText(Text(j)) && Text(j) != "Status" &&
           Text(j) != "StatusOr" && Text(j + 1) == "::") {
      j += 2;
    }
    if (Text(j) != "Status" && Text(j) != "StatusOr") return false;
    size_t k = j + 1;
    if (Text(j) == "StatusOr") {
      if (Text(k) != "<") return false;
      k = MatchAngleFwd(k) + 1;
    }
    if (!IsIdentText(Text(k)) || CallKeywords().count(Text(k)) > 0) {
      return false;
    }
    const std::string& nx = Text(k + 1);
    if (nx != "=" && nx != "(" && nx != "{") return false;
    if (nx == "(" && Text(k + 2) == ")") return false;  // local fn decl
    pending->push_back(
        PendingStatus{Text(k), Line(k), true, "", SkipToStatementEnd(k)});
    return true;
  }

  /// `auto s = Call(...);` — flagged later iff the initializing call
  /// resolves to a Status-returning function.
  bool HandleAutoDecl(size_t i, std::vector<PendingStatus>* pending) {
    if (Text(i) != "auto" || !IsIdentText(Text(i + 1)) || Text(i + 2) != "=") {
      return false;
    }
    const size_t stmt_end = SkipToStatementEnd(i);
    std::string callee;
    for (size_t j = i + 3; j < stmt_end; ++j) {
      if (IsIdentText(Text(j)) && Text(j + 1) == "(" &&
          CallKeywords().count(Text(j)) == 0) {
        callee = Text(j);
        break;
      }
    }
    if (callee.empty()) return false;
    pending->push_back(
        PendingStatus{Text(i + 1), Line(i + 1), false, callee, stmt_end});
    return true;
  }

  std::vector<Tok> toks_;
  std::vector<Scope> scopes_;
  FileModel* out_ = nullptr;
};

// ---- whole-program analyses ----------------------------------------------

struct GlobalFn {
  const FileModel* file = nullptr;
  const FunctionModel* fn = nullptr;
};

struct Program {
  std::vector<GlobalFn> fns;
  std::map<std::string, std::vector<int>> by_name;
  std::vector<std::vector<std::vector<int>>> resolved;  // [fn][call] -> ids
};

/// Call-edge resolution: same-class candidates win, then same-file, then
/// the full candidate set — and a tier is only accepted when all of its
/// candidates share one class (an overload set); otherwise the name is
/// ambiguous and resolves to nothing.
std::vector<int> ResolveCall(const Program& prog, int caller,
                             const std::string& callee) {
  const auto it = prog.by_name.find(callee);
  if (it == prog.by_name.end()) return {};
  const GlobalFn& from = prog.fns[static_cast<size_t>(caller)];
  auto one_class = [&](const std::vector<int>& ids) {
    for (int id : ids) {
      if (prog.fns[static_cast<size_t>(id)].fn->class_name !=
          prog.fns[static_cast<size_t>(ids[0])].fn->class_name) {
        return false;
      }
    }
    return !ids.empty();
  };
  std::vector<int> same_class;
  std::vector<int> same_file;
  for (int id : it->second) {
    const GlobalFn& cand = prog.fns[static_cast<size_t>(id)];
    if (id == caller) continue;  // self-recursion adds nothing
    if (!from.fn->class_name.empty() &&
        cand.fn->class_name == from.fn->class_name) {
      same_class.push_back(id);
    }
    if (cand.file == from.file) same_file.push_back(id);
  }
  if (!same_class.empty()) return same_class;
  if (one_class(same_file)) return same_file;
  std::vector<int> all;
  for (int id : it->second) {
    if (id != caller) all.push_back(id);
  }
  if (one_class(all)) return all;
  return {};
}

Program BuildProgram(const std::vector<FileModel>& models) {
  Program prog;
  for (const FileModel& m : models) {
    for (const FunctionModel& f : m.functions) {
      prog.by_name[f.name].push_back(static_cast<int>(prog.fns.size()));
      prog.fns.push_back(GlobalFn{&m, &f});
    }
  }
  prog.resolved.resize(prog.fns.size());
  for (size_t f = 0; f < prog.fns.size(); ++f) {
    const FunctionModel& fn = *prog.fns[f].fn;
    prog.resolved[f].reserve(fn.calls.size());
    for (const CallSite& cs : fn.calls) {
      prog.resolved[f].push_back(
          ResolveCall(prog, static_cast<int>(f), cs.callee));
    }
  }
  return prog;
}

std::string JoinChain(const Program& prog, const std::vector<int>& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i) out += " -> ";
    out += prog.fns[static_cast<size_t>(path[i])].fn->qualified;
  }
  return out;
}

struct AcqEvidence {
  std::string file;
  int line = 0;
  std::vector<int> path;  // caller chain down to the acquiring function
};

void LockOrderAnalysis(const Program& prog,
                       std::vector<lint::Finding>* findings) {
  const size_t n = prog.fns.size();
  // all mutexes each function may acquire, directly or transitively
  std::vector<std::map<std::string, AcqEvidence>> acq(n);
  for (size_t f = 0; f < n; ++f) {
    const GlobalFn& g = prog.fns[f];
    for (const LockAcquire& a : g.fn->acquires) {
      if (acq[f].count(a.mutex) == 0) {
        acq[f][a.mutex] =
            AcqEvidence{g.file->path, a.line, {static_cast<int>(f)}};
      }
    }
  }
  bool changed = true;
  for (int round = 0; changed && round < 64; ++round) {
    changed = false;
    for (size_t f = 0; f < n; ++f) {
      for (const std::vector<int>& targets : prog.resolved[f]) {
        for (int t : targets) {
          for (const auto& [mu, ev] : acq[static_cast<size_t>(t)]) {
            if (acq[f].count(mu) > 0) continue;
            AcqEvidence up = ev;
            up.path.insert(up.path.begin(), static_cast<int>(f));
            acq[f][mu] = std::move(up);
            changed = true;
          }
        }
      }
    }
  }
  // held -> acquired edges
  struct EdgeEv {
    std::string file;
    int line = 0;
    std::vector<int> chain;
  };
  std::map<std::pair<std::string, std::string>, EdgeEv> edges;
  auto add_edge = [&](const std::string& held, const std::string& got,
                      const EdgeEv& ev) {
    if (held == got) return;
    edges.emplace(std::make_pair(held, got), ev);  // first evidence wins
  };
  for (size_t f = 0; f < n; ++f) {
    const GlobalFn& g = prog.fns[f];
    for (const LockAcquire& a : g.fn->acquires) {
      for (const std::string& h : a.held) {
        add_edge(h, a.mutex,
                 EdgeEv{g.file->path, a.line, {static_cast<int>(f)}});
      }
    }
    for (size_t c = 0; c < g.fn->calls.size(); ++c) {
      const CallSite& cs = g.fn->calls[c];
      if (cs.held.empty()) continue;
      for (int t : prog.resolved[f][c]) {
        for (const auto& [mu, ev] : acq[static_cast<size_t>(t)]) {
          for (const std::string& h : cs.held) {
            EdgeEv e{ev.file, ev.line, ev.path};
            e.chain.insert(e.chain.begin(), static_cast<int>(f));
            add_edge(h, mu, e);
          }
        }
      }
    }
  }
  // cycle detection via pairwise reachability (graphs are tiny)
  std::map<std::string, std::set<std::string>> adj;
  std::set<std::string> nodes;
  for (const auto& [e, ev] : edges) {
    adj[e.first].insert(e.second);
    nodes.insert(e.first);
    nodes.insert(e.second);
  }
  std::map<std::string, std::set<std::string>> reach;
  for (const std::string& s : nodes) {
    std::deque<std::string> queue(adj[s].begin(), adj[s].end());
    std::set<std::string>& r = reach[s];
    r.insert(adj[s].begin(), adj[s].end());
    while (!queue.empty()) {
      const std::string u = queue.front();
      queue.pop_front();
      for (const std::string& v : adj[u]) {
        if (r.insert(v).second) queue.push_back(v);
      }
    }
  }
  // group mutually-reachable nodes; one finding per cyclic group
  std::set<std::string> grouped;
  for (const std::string& s : nodes) {
    if (grouped.count(s) > 0 || reach[s].count(s) == 0) continue;
    std::vector<std::string> group;
    for (const std::string& v : nodes) {
      if (reach[s].count(v) > 0 && reach[v].count(s) > 0) {
        group.push_back(v);
        grouped.insert(v);
      }
    }
    // shortest cycle through the group leader, by BFS inside the group
    const std::set<std::string> in_group(group.begin(), group.end());
    std::map<std::string, std::string> parent;
    std::deque<std::string> queue = {s};
    std::string back_from;
    std::set<std::string> seen = {s};
    while (!queue.empty() && back_from.empty()) {
      const std::string u = queue.front();
      queue.pop_front();
      for (const std::string& v : adj[u]) {
        if (v == s) {
          back_from = u;
          break;
        }
        if (in_group.count(v) > 0 && seen.insert(v).second) {
          parent[v] = u;
          queue.push_back(v);
        }
      }
    }
    std::vector<std::string> cycle = {s};
    if (!back_from.empty()) {
      std::vector<std::string> tail;
      for (std::string u = back_from; u != s; u = parent[u]) {
        tail.push_back(u);
      }
      cycle.insert(cycle.end(), tail.rbegin(), tail.rend());
    }
    cycle.push_back(s);
    std::string msg = "potential deadlock, lock-order cycle: ";
    for (size_t i = 0; i + 1 < cycle.size(); ++i) {
      if (i) msg += ", then ";
      msg += cycle[i] + " -> " + cycle[i + 1];
      const auto it = edges.find({cycle[i], cycle[i + 1]});
      if (it != edges.end()) {
        msg += " (" + it->second.file + ":" +
               std::to_string(it->second.line) + " via " +
               JoinChain(prog, it->second.chain) + ")";
      }
    }
    std::string key;
    for (const std::string& v : group) {
      if (!key.empty()) key += "<->";
      key += v;
    }
    const auto first_edge = edges.find({cycle[0], cycle[1]});
    lint::Finding f;
    f.rule = "lock-order-cycle";
    f.file = first_edge != edges.end() ? first_edge->second.file : "";
    f.line = first_edge != edges.end() ? first_edge->second.line : 0;
    f.message = msg;
    f.key = key;
    findings->push_back(std::move(f));
  }
}

const std::vector<EntryPoint>& DefaultEntries() {
  static const std::vector<EntryPoint> kEntries = {
      {"Trainer", "Train"},
      {"Trainer", "ParallelBatchStep"},
      {"InferenceEngine", "Predict"},
      // ANN query paths promise an allocation-free steady state (the
      // bench_ann p99 gate depends on it); "Search" also covers
      // SearchBatch via prefix match.
      {"FlatIndex", "Search"},
      {"IvfIndex", "Search"},
      {"KnnPredictor", "Interpolate"},
  };
  return kEntries;
}

void HotPathAnalysis(const Program& prog,
                     const std::vector<EntryPoint>& entries,
                     std::vector<lint::Finding>* findings) {
  const size_t n = prog.fns.size();
  std::vector<int> parent(n, -1);
  std::vector<int> root(n, -1);
  std::vector<char> visited(n, 0);
  std::deque<int> queue;
  std::vector<int> order;
  for (const EntryPoint& e : entries) {
    for (size_t f = 0; f < n; ++f) {
      const FunctionModel& fn = *prog.fns[f].fn;
      if (fn.class_name == e.class_name &&
          fn.name.rfind(e.name_prefix, 0) == 0 && !visited[f]) {
        visited[f] = 1;
        root[f] = static_cast<int>(f);
        queue.push_back(static_cast<int>(f));
        order.push_back(static_cast<int>(f));
      }
    }
  }
  while (!queue.empty()) {
    const int f = queue.front();
    queue.pop_front();
    for (const std::vector<int>& targets :
         prog.resolved[static_cast<size_t>(f)]) {
      for (int t : targets) {
        if (visited[static_cast<size_t>(t)]) continue;
        visited[static_cast<size_t>(t)] = 1;
        parent[static_cast<size_t>(t)] = f;
        root[static_cast<size_t>(t)] = root[static_cast<size_t>(f)];
        queue.push_back(t);
        order.push_back(t);
      }
    }
  }
  auto chain_of = [&](int f) {
    std::vector<int> path;
    for (int u = f; u != -1; u = parent[static_cast<size_t>(u)]) {
      path.push_back(u);
    }
    std::reverse(path.begin(), path.end());
    return path;
  };
  for (int f : order) {
    const GlobalFn& g = prog.fns[static_cast<size_t>(f)];
    const std::string chain = JoinChain(prog, chain_of(f));
    const std::string root_q =
        prog.fns[static_cast<size_t>(root[static_cast<size_t>(f)])]
            .fn->qualified;
    for (const BlockingOp& b : g.fn->blocking) {
      lint::Finding out;
      out.rule = "hot-path-blocking";
      out.file = g.file->path;
      out.line = b.line;
      out.message = "blocking call (" + b.what +
                    ") reachable from hot-path entry point: " + chain;
      out.key = root_q + "->" + g.fn->qualified + ":" + b.what;
      findings->push_back(std::move(out));
    }
    for (const AllocOp& a : g.fn->allocs) {
      lint::Finding out;
      out.rule = "hot-path-alloc";
      out.file = g.file->path;
      out.line = a.line;
      out.message = "pool-bypassing allocation (" + a.what +
                    ") reachable from hot-path entry point: " + chain;
      out.key = root_q + "->" + g.fn->qualified + ":" + a.what;
      findings->push_back(std::move(out));
    }
  }
}

void StatusDropAnalysis(const Program& prog,
                        std::vector<lint::Finding>* findings) {
  for (size_t f = 0; f < prog.fns.size(); ++f) {
    const GlobalFn& g = prog.fns[f];
    for (const StatusLocal& sl : g.fn->status_locals) {
      if (sl.read) continue;
      if (!sl.typed) {
        bool status_call = false;
        for (int t : ResolveCall(prog, static_cast<int>(f), sl.init_callee)) {
          if (prog.fns[static_cast<size_t>(t)].fn->returns_status) {
            status_call = true;
          }
        }
        if (!status_call) continue;
      }
      lint::Finding out;
      out.rule = "status-drop";
      out.file = g.file->path;
      out.line = sl.line;
      out.message = "Status local '" + sl.var + "' in " + g.fn->qualified +
                    " is assigned but never read; propagate it or discard "
                    "explicitly with (void) and a comment";
      out.key = g.file->path + "#" + g.fn->qualified + "#" + sl.var;
      findings->push_back(std::move(out));
    }
  }
}

// ---- model cache ---------------------------------------------------------

std::string EscapeField(const std::string& s) {
  if (s.empty()) return "%-";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case ' ': out += "%20"; break;
      case ',': out += "%2C"; break;
      case '\n': out += "%0A"; break;
      case '\t': out += "%09"; break;
      case '\r': out += "%0D"; break;
      default: out += c;
    }
  }
  return out;
}

std::string UnescapeField(const std::string& s) {
  if (s == "%-") return "";
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const std::string hex = s.substr(i + 1, 2);
      char c = '\0';
      if (hex == "25") c = '%';
      else if (hex == "20") c = ' ';
      else if (hex == "2C") c = ',';
      else if (hex == "0A") c = '\n';
      else if (hex == "09") c = '\t';
      else if (hex == "0D") c = '\r';
      if (c != '\0') {
        out += c;
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

std::string EncodeHeld(const std::vector<std::string>& held) {
  if (held.empty()) return "%-";
  std::string out;
  for (size_t i = 0; i < held.size(); ++i) {
    if (i) out += ",";
    out += EscapeField(held[i]);
  }
  return out;
}

std::vector<std::string> DecodeHeld(const std::string& s) {
  std::vector<std::string> out;
  if (s == "%-") return out;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, ',')) out.push_back(UnescapeField(part));
  return out;
}

constexpr const char* kCacheHeader = "imr-analysis-cache v1";

void SaveCacheFile(const std::string& path,
                   const std::vector<FileModel>& models) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << kCacheHeader << "\n";
    for (const FileModel& m : models) {
      out << "F " << EscapeField(m.path) << " " << m.hash << "\n";
      for (const std::string& a : m.file_allows) {
        out << "A " << EscapeField(a) << "\n";
      }
      for (const auto& [line, rules] : m.line_allows) {
        out << "W " << line << " "
            << EncodeHeld({rules.begin(), rules.end()}) << "\n";
      }
      for (const lint::Finding& f : m.lint_findings) {
        out << "L " << EscapeField(f.rule) << " " << f.line << " "
            << EscapeField(f.key) << " " << EscapeField(f.message) << "\n";
      }
      for (const FunctionModel& fn : m.functions) {
        out << "U " << EscapeField(fn.qualified) << " "
            << EscapeField(fn.name) << " " << EscapeField(fn.class_name)
            << " " << fn.line << " " << (fn.returns_status ? 1 : 0) << "\n";
        for (const CallSite& c : fn.calls) {
          out << "C " << EscapeField(c.callee) << " " << c.line << " "
              << EncodeHeld(c.held) << "\n";
        }
        for (const LockAcquire& a : fn.acquires) {
          out << "Q " << EscapeField(a.mutex) << " " << a.line << " "
              << (a.scoped ? 1 : 0) << " " << EncodeHeld(a.held) << "\n";
        }
        for (const BlockingOp& b : fn.blocking) {
          out << "B " << EscapeField(b.what) << " " << b.line << " "
              << EncodeHeld(b.held) << "\n";
        }
        for (const AllocOp& a : fn.allocs) {
          out << "O " << EscapeField(a.what) << " " << a.line << "\n";
        }
        for (const StatusLocal& s : fn.status_locals) {
          out << "S " << EscapeField(s.var) << " " << s.line << " "
              << (s.read ? 1 : 0) << " " << (s.typed ? 1 : 0) << " "
              << EscapeField(s.init_callee) << "\n";
        }
      }
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

std::map<std::string, FileModel> LoadCacheFile(const std::string& path) {
  std::map<std::string, FileModel> cache;
  std::ifstream in(path, std::ios::binary);
  if (!in) return cache;
  std::string line;
  if (!std::getline(in, line) || line != kCacheHeader) return cache;
  FileModel* file = nullptr;
  FunctionModel* fn = nullptr;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::string tag;
    if (!(ss >> tag)) continue;
    if (tag == "F") {
      std::string p;
      uint64_t hash = 0;
      if (!(ss >> p >> hash)) return {};
      FileModel m;
      m.path = UnescapeField(p);
      m.hash = hash;
      file = &cache.emplace(m.path, std::move(m)).first->second;
      fn = nullptr;
    } else if (file == nullptr) {
      return {};
    } else if (tag == "A") {
      std::string a;
      if (!(ss >> a)) return {};
      file->file_allows.insert(UnescapeField(a));
    } else if (tag == "W") {
      int ln = 0;
      std::string rules;
      if (!(ss >> ln >> rules)) return {};
      const std::vector<std::string> list = DecodeHeld(rules);
      file->line_allows[ln] = {list.begin(), list.end()};
    } else if (tag == "L") {
      std::string rule, key, msg;
      int ln = 0;
      if (!(ss >> rule >> ln >> key >> msg)) return {};
      file->lint_findings.push_back(
          lint::Finding{UnescapeField(rule), file->path, ln,
                        UnescapeField(msg), UnescapeField(key)});
    } else if (tag == "U") {
      std::string q, name, cls;
      int ln = 0, ret = 0;
      if (!(ss >> q >> name >> cls >> ln >> ret)) return {};
      FunctionModel f;
      f.qualified = UnescapeField(q);
      f.name = UnescapeField(name);
      f.class_name = UnescapeField(cls);
      f.line = ln;
      f.returns_status = ret != 0;
      file->functions.push_back(std::move(f));
      fn = &file->functions.back();
    } else if (fn == nullptr) {
      return {};
    } else if (tag == "C") {
      std::string callee, held;
      int ln = 0;
      if (!(ss >> callee >> ln >> held)) return {};
      fn->calls.push_back(
          CallSite{UnescapeField(callee), ln, DecodeHeld(held)});
    } else if (tag == "Q") {
      std::string mu, held;
      int ln = 0, scoped = 0;
      if (!(ss >> mu >> ln >> scoped >> held)) return {};
      fn->acquires.push_back(LockAcquire{UnescapeField(mu), ln, scoped != 0,
                                         DecodeHeld(held)});
    } else if (tag == "B") {
      std::string what, held;
      int ln = 0;
      if (!(ss >> what >> ln >> held)) return {};
      fn->blocking.push_back(
          BlockingOp{UnescapeField(what), ln, DecodeHeld(held)});
    } else if (tag == "O") {
      std::string what;
      int ln = 0;
      if (!(ss >> what >> ln)) return {};
      fn->allocs.push_back(AllocOp{UnescapeField(what), ln});
    } else if (tag == "S") {
      std::string var, callee;
      int ln = 0, read = 0, typed = 0;
      if (!(ss >> var >> ln >> read >> typed >> callee)) return {};
      fn->status_locals.push_back(StatusLocal{UnescapeField(var), ln,
                                              read != 0, typed != 0,
                                              UnescapeField(callee)});
    } else {
      return {};
    }
  }
  return cache;
}

// ---- report assembly -----------------------------------------------------

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool AllowedByModel(const FileModel& m, const lint::Finding& f) {
  if (m.file_allows.count(f.rule) > 0) return true;
  for (int ln : {f.line, f.line - 1}) {
    const auto it = m.line_allows.find(ln);
    if (it != m.line_allows.end() && it->second.count(f.rule) > 0) {
      return true;
    }
  }
  return false;
}

/// Runs the three pass-2 analyses over the models, applies the allow /
/// allow-file escape hatches and the baseline, merges the cached pass-1
/// findings, and sorts everything deterministically.
void FinishReport(const std::vector<FileModel>& models,
                  const AnalyzerOptions& options, AnalysisReport* report) {
  using clock = std::chrono::steady_clock;
  auto t0 = clock::now();
  const Program prog = BuildProgram(models);
  report->timings.push_back(AnalysisTiming{"index", MsSince(t0)});

  std::vector<lint::Finding> pass2;
  t0 = clock::now();
  LockOrderAnalysis(prog, &pass2);
  report->timings.push_back(AnalysisTiming{"lock-order", MsSince(t0)});
  t0 = clock::now();
  HotPathAnalysis(prog, options.entries.empty() ? DefaultEntries()
                                                : options.entries,
                  &pass2);
  report->timings.push_back(AnalysisTiming{"hot-path", MsSince(t0)});
  t0 = clock::now();
  StatusDropAnalysis(prog, &pass2);
  report->timings.push_back(AnalysisTiming{"status-drop", MsSince(t0)});

  std::map<std::string, const FileModel*> by_path;
  for (const FileModel& m : models) by_path[m.path] = &m;
  const auto baseline = options.baseline_path.empty()
                            ? std::set<std::pair<std::string, std::string>>{}
                            : LoadBaseline(options.baseline_path);
  for (lint::Finding& f : pass2) {
    const auto it = by_path.find(f.file);
    if (it != by_path.end() && AllowedByModel(*it->second, f)) continue;
    if (baseline.count({f.rule, f.key}) > 0) {
      report->baselined.push_back(std::move(f));
    } else {
      report->findings.push_back(std::move(f));
    }
  }
  for (const FileModel& m : models) {
    report->findings.insert(report->findings.end(), m.lint_findings.begin(),
                            m.lint_findings.end());
  }
  auto order = [](const lint::Finding& a, const lint::Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.key, a.message) <
           std::tie(b.file, b.line, b.rule, b.key, b.message);
  };
  std::sort(report->findings.begin(), report->findings.end(), order);
  std::sort(report->baselined.begin(), report->baselined.end(), order);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void AppendFindingJson(const lint::Finding& f, bool baselined,
                       std::string* out) {
  *out += "    {\"rule\": \"" + JsonEscape(f.rule) + "\", \"file\": \"" +
          JsonEscape(f.file) + "\", \"line\": " + std::to_string(f.line) +
          ", \"key\": \"" + JsonEscape(f.key) + "\", \"baselined\": " +
          (baselined ? "true" : "false") + ", \"message\": \"" +
          JsonEscape(f.message) + "\"}";
}

}  // namespace

// ---- public API ----------------------------------------------------------

uint64_t HashContent(const std::string& content) {
  uint64_t h = 1469598103934665603ull ^
               (kModelFormatVersion * 1099511628211ull);
  for (char c : content) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

FileModel BuildFileModel(const std::string& relpath,
                         const std::string& content) {
  FileModel model;
  model.path = relpath;
  model.hash = HashContent(content);
  const lint::ScannedFile scan = lint::ScanSource(content);
  model.file_allows = lint::ParseFileAllows(scan);
  const std::vector<std::set<std::string>> line_allows =
      lint::ParseLineAllows(scan.comments);
  for (size_t i = 0; i < line_allows.size(); ++i) {
    if (!line_allows[i].empty()) {
      model.line_allows[static_cast<int>(i) + 1] = line_allows[i];
    }
  }
  FileParser parser(Tokenize(scan.code));
  parser.Parse(&model);
  return model;
}

const std::vector<std::string>& AnalysisIds() {
  static const std::vector<std::string> kIds = {
      "lock-order-cycle",
      "hot-path-blocking",
      "hot-path-alloc",
      "status-drop",
  };
  return kIds;
}

AnalysisReport AnalyzeSources(const std::vector<SourceFile>& files,
                              const AnalyzerOptions& options) {
  using clock = std::chrono::steady_clock;
  const auto t_total = clock::now();
  auto t0 = clock::now();
  AnalysisReport report;
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const SourceFile& f : files) {
    models.push_back(BuildFileModel(f.path, f.content));
    if (options.run_lint) {
      models.back().lint_findings = lint::LintSource(f.path, f.content);
    }
  }
  report.files_scanned = static_cast<int>(files.size());
  report.files_parsed = static_cast<int>(files.size());
  report.timings.push_back(AnalysisTiming{"parse", MsSince(t0)});
  FinishReport(models, options, &report);
  report.timings.push_back(AnalysisTiming{"total", MsSince(t_total)});
  return report;
}

AnalysisReport AnalyzeTree(const std::string& root,
                           const AnalyzerOptions& options) {
  namespace fs = std::filesystem;
  using clock = std::chrono::steady_clock;
  const auto t_total = clock::now();
  auto t0 = clock::now();
  AnalysisReport report;

  std::vector<fs::path> files;
  for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  const fs::path repo_root = lint::RepoRootFor(root);
  std::vector<std::string> relpaths(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    std::error_code ec;
    const fs::path canonical = fs::weakly_canonical(files[i], ec);
    relpaths[i] =
        fs::relative(ec ? files[i] : canonical, repo_root).generic_string();
  }
  report.files_scanned = static_cast<int>(files.size());

  const std::string cache_path =
      options.cache_dir.empty()
          ? ""
          : (fs::path(options.cache_dir) / "model_cache.txt").string();
  const std::map<std::string, FileModel> cache =
      cache_path.empty() ? std::map<std::string, FileModel>{}
                         : LoadCacheFile(cache_path);

  const size_t n = files.size();
  std::vector<FileModel> models(n);
  std::vector<char> hit(n, 0);
  std::vector<char> read_error(n, 0);
  auto parse_range = [&](int64_t b, int64_t e) {
    for (int64_t idx = b; idx < e; ++idx) {
      const size_t i = static_cast<size_t>(idx);
      std::ifstream in(files[i], std::ios::binary);
      if (!in) {
        read_error[i] = 1;
        models[i].path = relpaths[i];
        continue;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string content = buffer.str();
      const uint64_t hash = HashContent(content);
      const auto it = cache.find(relpaths[i]);
      if (it != cache.end() && it->second.hash == hash) {
        models[i] = it->second;
        hit[i] = 1;
        continue;
      }
      models[i] = BuildFileModel(relpaths[i], content);
      if (options.run_lint) {
        models[i].lint_findings = lint::LintSource(relpaths[i], content);
      }
    }
  };
  int threads = options.threads > 0
                    ? options.threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  if (threads > 1 && n > 1) {
    util::ThreadPool pool(threads);
    pool.ParallelFor(0, static_cast<int64_t>(n), 8, parse_range);
  } else {
    parse_range(0, static_cast<int64_t>(n));
  }
  for (size_t i = 0; i < n; ++i) {
    if (read_error[i]) {
      report.findings.push_back(
          lint::Finding{"read-error", relpaths[i], 0, "cannot open", ""});
    } else if (hit[i]) {
      ++report.files_cached;
    } else {
      ++report.files_parsed;
    }
  }
  if (!cache_path.empty()) SaveCacheFile(cache_path, models);
  report.timings.push_back(AnalysisTiming{"parse", MsSince(t0)});

  FinishReport(models, options, &report);
  report.timings.push_back(AnalysisTiming{"total", MsSince(t_total)});
  return report;
}

std::string ReportToJson(const AnalysisReport& report,
                         const std::string& root) {
  std::string out = "{\n";
  out += "  \"root\": \"" + JsonEscape(root) + "\",\n";
  out += "  \"files_scanned\": " + std::to_string(report.files_scanned) +
         ",\n";
  out += "  \"files_parsed\": " + std::to_string(report.files_parsed) + ",\n";
  out += "  \"files_cached\": " + std::to_string(report.files_cached) + ",\n";
  out += "  \"findings\": [\n";
  bool first = true;
  for (const lint::Finding& f : report.findings) {
    if (!first) out += ",\n";
    first = false;
    AppendFindingJson(f, false, &out);
  }
  for (const lint::Finding& f : report.baselined) {
    if (!first) out += ",\n";
    first = false;
    AppendFindingJson(f, true, &out);
  }
  out += "\n  ],\n";
  out += "  \"timings\": [\n";
  for (size_t i = 0; i < report.timings.size(); ++i) {
    if (i) out += ",\n";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", report.timings[i].ms);
    out += "    {\"name\": \"" + JsonEscape(report.timings[i].name) +
           "\", \"ms\": " + buf + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::set<std::pair<std::string, std::string>> LoadBaseline(
    const std::string& path) {
  std::set<std::pair<std::string, std::string>> baseline;
  std::ifstream in(path);
  if (!in) return baseline;
  std::string line;
  while (std::getline(in, line)) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const size_t last = line.find_last_not_of(" \t\r");
    const std::string trimmed = line.substr(first, last - first + 1);
    const size_t space = trimmed.find(' ');
    if (space == std::string::npos) continue;
    baseline.emplace(trimmed.substr(0, space), trimmed.substr(space + 1));
  }
  return baseline;
}

}  // namespace imr::analysis
