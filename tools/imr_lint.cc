// Standalone linter binary: `imr_lint [project-root]` lints src/, tests/,
// bench/, examples/, and tools/ under the root (default: cwd) and exits
// nonzero if any rule fired. Registered as a ctest so every `ctest` run
// lints the tree. `imr_lint --list-rules` prints the rule ids.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& rule : imr::lint::RuleIds()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    root = argv[i];
  }
  const std::vector<imr::lint::Finding> findings = imr::lint::LintTree(root);
  for (const imr::lint::Finding& finding : findings) {
    std::fprintf(stderr, "%s\n", imr::lint::FormatFinding(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "imr_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::printf("imr_lint: clean\n");
  return 0;
}
