#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

namespace imr::lint {

// ---- source scanning -----------------------------------------------------

ScannedFile ScanSource(const std::string& content) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  ScannedFile out;
  std::string code_line;
  std::string comment_line;
  State state = State::kCode;
  char prev_code = '\0';  // last code char, for digit-separator detection
  std::string raw_terminator;  // `)delim"` that ends the raw string
  size_t raw_matched = 0;      // prefix of raw_terminator seen so far
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      out.code.push_back(code_line);
      out.comments.push_back(comment_line);
      code_line.clear();
      comment_line.clear();
      if (state == State::kLineComment) state = State::kCode;
      if (state == State::kRawString) raw_matched = 0;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   !(std::isalnum(static_cast<unsigned char>(prev_code)) ||
                     prev_code == '_')) {
          // Raw string literal R"delim(...)delim" — embedded quotes and
          // escapes are literal text, so the whole thing is blanked until
          // the matching `)delim"` terminator.
          size_t j = i + 2;  // first delimiter char
          std::string delim;
          while (j < content.size() && content[j] != '(' &&
                 delim.size() < 17) {
            delim += content[j];
            ++j;
          }
          if (j < content.size() && content[j] == '(') {
            raw_terminator = ")" + delim + "\"";
            raw_matched = 0;
            state = State::kRawString;
            // blank "R", the quote, the delimiter, and the open paren
            code_line.append(j - i + 1, ' ');
            i = j;
            prev_code = '\0';
          } else {
            code_line += c;  // malformed; treat the R as code
            prev_code = c;
          }
        } else if (c == '"') {
          state = State::kString;
          code_line += ' ';
        } else if (c == '\'' &&
                   !(std::isalnum(static_cast<unsigned char>(prev_code)) ||
                     prev_code == '_')) {
          // A quote directly after an identifier/number char is a C++14
          // digit separator (1'000'000), not a char literal.
          state = State::kChar;
          code_line += ' ';
        } else {
          code_line += c;
          prev_code = c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
          code_line += ' ';
          prev_code = '\0';
        } else {
          code_line += ' ';
        }
        break;
      case State::kRawString:
        code_line += ' ';
        if (c == raw_terminator[raw_matched]) {
          ++raw_matched;
          if (raw_matched == raw_terminator.size()) {
            state = State::kCode;
            prev_code = '\0';
          }
        } else {
          // restart, allowing the failed char to begin a new `)` match
          raw_matched = (c == raw_terminator[0]) ? 1 : 0;
        }
        break;
    }
  }
  out.code.push_back(code_line);
  out.comments.push_back(comment_line);
  return out;
}

namespace {

void InsertRuleList(const std::string& list, std::set<std::string>* out) {
  std::stringstream rules(list);
  std::string rule;
  while (std::getline(rules, rule, ',')) {
    const size_t first = rule.find_first_not_of(' ');
    const size_t last = rule.find_last_not_of(' ');
    if (first == std::string::npos) continue;
    out->insert(rule.substr(first, last - first + 1));
  }
}

}  // namespace

std::vector<std::set<std::string>> ParseLineAllows(
    const std::vector<std::string>& comments) {
  // `allow(` only: the (?!-file) distinction is handled by requiring the
  // char after "allow" to be the open paren.
  static const std::regex kAllow(R"(imr-lint:\s*allow\(([A-Za-z0-9_,\- ]+)\))");
  std::vector<std::set<std::string>> allows(comments.size());
  for (size_t i = 0; i < comments.size(); ++i) {
    std::smatch match;
    if (!std::regex_search(comments[i], match, kAllow)) continue;
    InsertRuleList(match[1].str(), &allows[i]);
  }
  return allows;
}

std::set<std::string> ParseFileAllows(const ScannedFile& scan) {
  static const std::regex kAllowFile(
      R"(imr-lint:\s*allow-file\(([A-Za-z0-9_,\- ]+)\))");
  std::set<std::string> allows;
  for (size_t i = 0; i < scan.comments.size(); ++i) {
    // Stop at the first line that carries code: allow-file is a header
    // declaration, not an inline suppression.
    if (i < scan.code.size() &&
        scan.code[i].find_first_not_of(" \t\r") != std::string::npos) {
      break;
    }
    std::smatch match;
    if (std::regex_search(scan.comments[i], match, kAllowFile)) {
      InsertRuleList(match[1].str(), &allows);
    }
  }
  return allows;
}

std::string RepoRootFor(const std::string& start) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path base = fs::weakly_canonical(start, ec);
  if (ec || base.empty()) base = fs::path(start);
  for (fs::path dir = base;; dir = dir.parent_path()) {
    if (fs::exists(dir / ".git", ec) ||
        (fs::exists(dir / "ROADMAP.md", ec) &&
         fs::is_directory(dir / "src", ec) &&
         fs::is_directory(dir / "tools", ec))) {
      return dir.generic_string();
    }
    if (dir == dir.parent_path()) break;
  }
  return base.generic_string();
}

namespace {

class Linter {
 public:
  Linter(std::string relpath, const std::string& content)
      : relpath_(std::move(relpath)),
        scan_(ScanSource(content)),
        allows_(ParseLineAllows(scan_.comments)),
        file_allows_(ParseFileAllows(scan_)) {}

  std::vector<Finding> Run() {
    const bool in_src = relpath_.rfind("src/", 0) == 0;
    const bool is_rng = relpath_ == "src/util/rng.cc";
    const bool is_logging = relpath_ == "src/util/logging.cc" ||
                            relpath_ == "src/util/logging.h";
    if (!is_rng) CheckRawRandom();
    if (in_src) {
      CheckNakedNewDelete();
      CheckThrow();
      if (!is_logging) CheckIostream();
      CheckMutexGuard();
    }
    if (relpath_ == "src/tensor/ops.cc") CheckKernelAlloc();
    if (relpath_.rfind("src/graph/ann/", 0) == 0 ||
        relpath_ == "src/re/knn_predictor.cc") {
      CheckAnnSearchAlloc();
    }
    if (relpath_ == "src/nn/optimizer.cc") CheckOptimizerDenseGrad();
    if (relpath_.rfind("src/tensor/simd/", 0) != 0) CheckRawIntrinsics();
    if (relpath_.rfind("src/serve/", 0) == 0) {
      CheckBlockingUnderShardLock();
      CheckSnapshotFullCopy();
    }
    CheckIncludeHygiene();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
              });
    return std::move(findings_);
  }

  /// Include-hygiene needs the raw line: the include path is a string
  /// literal, which Scan() blanks.
  void set_raw_lines(std::vector<std::string> raw) { raw_ = std::move(raw); }

 private:
  void Add(const std::string& rule, size_t line_index, std::string message) {
    // `allow-file` in the header comment suppresses the rule everywhere;
    // `allow` on the offending line or the line directly above suppresses
    // the single occurrence.
    if (file_allows_.count(rule) > 0) return;
    if (line_index < allows_.size() && allows_[line_index].count(rule) > 0)
      return;
    if (line_index > 0 && allows_[line_index - 1].count(rule) > 0) return;
    findings_.push_back(Finding{rule, relpath_,
                                static_cast<int>(line_index) + 1,
                                std::move(message), ""});
  }

  void CheckRawRandom() {
    static const std::regex kPattern(
        R"(std::random_device|\brand\s*\(|\bsrand\s*\(|\btime\s*\(\s*(nullptr|NULL|0)\s*\))");
    for (size_t i = 0; i < scan_.code.size(); ++i) {
      std::smatch match;
      if (std::regex_search(scan_.code[i], match, kPattern)) {
        Add("no-raw-random", i,
            "'" + match[0].str() +
                "' breaks run-to-run determinism; draw randomness from "
                "util::Rng (seeded) instead");
      }
    }
  }

  void CheckNakedNewDelete() {
    static const std::regex kPattern(R"(\b(new|delete)\b)");
    for (size_t i = 0; i < scan_.code.size(); ++i) {
      const std::string& line = scan_.code[i];
      for (auto it = std::sregex_iterator(line.begin(), line.end(), kPattern);
           it != std::sregex_iterator(); ++it) {
        if ((*it)[1].str() == "delete") {
          // `= delete;` (deleted member) is a declaration, not ownership.
          const std::string before = line.substr(0, it->position());
          const size_t last = before.find_last_not_of(' ');
          if (last != std::string::npos && before[last] == '=') continue;
        }
        Add("no-naked-new", i,
            "naked '" + (*it)[1].str() +
                "' in library code; use std::make_unique / containers so "
                "ownership is explicit");
      }
    }
  }

  void CheckThrow() {
    static const std::regex kPattern(R"(\bthrow\b)");
    for (size_t i = 0; i < scan_.code.size(); ++i) {
      if (std::regex_search(scan_.code[i], kPattern)) {
        Add("no-throw", i,
            "library code reports errors through util::Status, not "
            "exceptions");
      }
    }
  }

  void CheckIostream() {
    static const std::regex kPattern(R"(std::(cout|cerr)\b)");
    for (size_t i = 0; i < scan_.code.size(); ++i) {
      std::smatch match;
      if (std::regex_search(scan_.code[i], match, kPattern)) {
        Add("no-iostream", i,
            "'" + match[0].str() +
                "' in library code; log through IMR_LOG so output honors "
                "the global log level");
      }
    }
  }

  void CheckIncludeHygiene() {
    static const std::regex kInclude(
        R"re(^\s*#\s*include\s+(?:<([^>]+)>|"([^"]+)"))re");
    // First path segment of every project include root.
    static const std::set<std::string> kProjectDirs = {
        "datagen", "eval", "graph", "kg",   "nn",    "re",
        "serve",   "tensor", "text", "util", "tools"};
    for (size_t i = 0; i < raw_.size(); ++i) {
      std::smatch match;
      if (!std::regex_search(raw_[i], match, kInclude)) continue;
      const bool angle = match[1].matched;
      const std::string path = angle ? match[1].str() : match[2].str();
      if (path.find("..") != std::string::npos) {
        Add("include-hygiene", i,
            "relative include '" + path +
                "'; use the project-relative path (e.g. \"util/foo.h\")");
        continue;
      }
      if (!angle && path.rfind("src/", 0) == 0) {
        Add("include-hygiene", i,
            "include '" + path + "' spells out src/; the build adds src/ "
                                 "to the include path, write \"" +
                path.substr(4) + "\"");
        continue;
      }
      const size_t slash = path.find('/');
      if (angle && slash != std::string::npos &&
          kProjectDirs.count(path.substr(0, slash)) > 0) {
        Add("include-hygiene", i,
            "project header <" + path + "> included with angle brackets; "
                                        "use quotes");
      }
    }
  }

  // The tensor kernels promise an allocation-free steady state: every
  // buffer comes from tensor/buffer_pool.h. A naked std::vector<float>
  // constructed in src/tensor/ops.cc bypasses the pool and reintroduces a
  // heap allocation on the hot path. Matches `std::vector<float> name(...)`,
  // `std::vector<float> name{...}` and `std::vector<float>(...)`
  // temporaries; declarations initialised from a pool call
  // (`std::vector<float> out = AcquireBuffer(n)`), references, pointers and
  // nested vector types don't construct a fresh buffer and are left alone.
  // V2 made snapshot opens O(header): the bulk arrays (EMBD fp32 matrix,
  // QEMB int8 matrix + scales) are aliased straight out of the mmap, never
  // parse-copied. A bulk deserialize call in serve code reintroduces the
  // O(matrix) copy v2 exists to remove — usually by someone "fixing" a
  // loader with the older copying idiom. The two sanctioned sites (the v1
  // fallback loader's EMBD and QEMB reads in snapshot.cc) carry
  // `imr-lint: allow(snapshot-full-copy)` with the justification inline.
  void CheckSnapshotFullCopy() {
    static const std::regex kPattern(
        R"(\bReadFloatVector\s*\(|\bReadByteVector\s*\(|\b(?:Quantized)?EmbeddingStore::ReadFrom\s*\()");
    for (size_t i = 0; i < scan_.code.size(); ++i) {
      if (std::regex_search(scan_.code[i], kPattern)) {
        Add("snapshot-full-copy", i,
            "bulk parse-copy deserialization in serve code; v2 snapshots "
            "alias bulk arrays out of the mapping (EmbeddingStore::View), "
            "so opens stay O(header) — copying is reserved for the v1 "
            "fallback, which must justify itself with an allow comment");
      }
    }
  }

  void CheckKernelAlloc() {
    static const std::regex kPattern(
        R"(std::vector<float>\s*(?:[A-Za-z_]\w*\s*)?[({])");
    for (size_t i = 0; i < scan_.code.size(); ++i) {
      if (std::regex_search(scan_.code[i], kPattern)) {
        Add("kernel-alloc", i,
            "naked std::vector<float> construction on the kernel hot path; "
            "acquire storage from tensor/buffer_pool.h (AcquireBuffer / "
            "AcquireBufferFill) so steady-state steps stay allocation-free");
      }
    }
  }

  // The ANN indexes advertise an allocation-free steady state for queries
  // (graph/ann/ann_index.h): Search scratch comes from the tensor buffer
  // pool and top-k selection reuses the caller's result vector. A naked
  // std::vector<float> constructed inside a Search / SearchBatch /
  // Interpolate body reintroduces a per-query heap allocation that the
  // bench_ann latency gate would only surface as noise much later. Build
  // paths may allocate freely — the check walks only the bodies of the
  // search-path functions (definitions found by name, braces matched; a
  // name followed by ';' is a declaration or call and is skipped).
  void CheckAnnSearchAlloc() {
    std::string flat;
    std::vector<size_t> line_offset;
    line_offset.reserve(scan_.code.size() + 1);
    line_offset.push_back(0);
    for (const std::string& line : scan_.code) {
      flat += line;
      flat += '\n';
      line_offset.push_back(flat.size());
    }
    const auto line_of = [&line_offset](size_t pos) {
      size_t lo = 0, hi = line_offset.size() - 1;
      while (lo + 1 < hi) {
        const size_t mid = (lo + hi) / 2;
        if (line_offset[mid] <= pos) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      return lo;
    };
    static const std::regex kSearchName(
        R"(\b(?:Search|SearchBatch|Interpolate)\s*\()");
    static const std::regex kNakedVector(
        R"(std::vector<float>\s*(?:[A-Za-z_]\w*\s*)?[({])");
    for (auto it = std::sregex_iterator(flat.begin(), flat.end(),
                                        kSearchName);
         it != std::sregex_iterator(); ++it) {
      // Walk past the parameter list, then require a body: between the
      // closing ')' and the '{' only qualifier tokens (const, noexcept,
      // override, final) may appear — anything else (';', ')', ',') means
      // a declaration, a call site, or a call inside a condition.
      size_t pos = static_cast<size_t>(it->position()) + it->length();
      size_t parens = 1;
      while (pos < flat.size() && parens > 0) {
        if (flat[pos] == '(') ++parens;
        if (flat[pos] == ')') --parens;
        ++pos;
      }
      bool is_definition = false;
      while (pos < flat.size()) {
        const char c = flat[pos];
        if (c == '{') {
          is_definition = true;
          break;
        }
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            std::isspace(static_cast<unsigned char>(c))) {
          ++pos;
          continue;
        }
        break;
      }
      if (!is_definition) continue;
      const size_t open = pos;
      size_t depth = 1;
      size_t close = open + 1;
      while (close < flat.size() && depth > 0) {
        if (flat[close] == '{') ++depth;
        if (flat[close] == '}') --depth;
        ++close;
      }
      const std::string body = flat.substr(open, close - open);
      for (auto alloc =
               std::sregex_iterator(body.begin(), body.end(), kNakedVector);
           alloc != std::sregex_iterator(); ++alloc) {
        Add("ann-search-alloc",
            line_of(open + static_cast<size_t>(alloc->position())),
            "naked std::vector<float> construction inside an ANN search-path "
            "body (Search / SearchBatch / Interpolate); acquire scratch from "
            "tensor/buffer_pool.h (AcquireBuffer / AcquireBufferFill) so "
            "per-query work stays allocation-free");
      }
    }
  }

  // The optimizers promise O(touched rows) updates for row-sparse
  // parameters, so src/nn/optimizer.cc must route every gradient walk
  // through the sanctioned sparse helpers (GradSquaredSum and the
  // grad_is_row_sparse() row loops). A range-for directly over a
  // `.grad()` expression or a `.grad().size()` loop bound is the classic
  // way a dense full-table scan sneaks back in; flag both. A genuinely
  // dense loop belongs in a helper with an
  // `// imr-lint: allow(optimizer-dense-grad)` justification.
  void CheckOptimizerDenseGrad() {
    static const std::regex kRangeFor(
        R"(for\s*\([^;)]*:[^;)]*\.grad\(\))");
    static const std::regex kSizeLoop(R"(\.grad\(\)\s*\.\s*size\s*\()");
    for (size_t i = 0; i < scan_.code.size(); ++i) {
      if (std::regex_search(scan_.code[i], kRangeFor) ||
          std::regex_search(scan_.code[i], kSizeLoop)) {
        Add("optimizer-dense-grad", i,
            "dense full-gradient iteration in the optimizer; row-sparse "
            "parameters must go through the sanctioned sparse helpers "
            "(GradSquaredSum / grad_touched_rows row loops) so embedding "
            "steps stay O(touched rows)");
      }
    }
  }

  // SIMD intrinsics are confined to src/tensor/simd/: every other file
  // must reach vector code through the dispatch table, so a new call site
  // cannot silently skip runtime CPU detection (and the per-TU -mavx2
  // build flags stay limited to the kernel TUs). Matches the x86 SSE/AVX
  // prefixes (_mm_/_mm256_/_mm512_) and the NEON load/store/arithmetic
  // prefixes (v...q_ style like vld1q_f32 / vaddq_f32).
  void CheckRawIntrinsics() {
    static const std::regex kPattern(
        R"(\b(_mm(?:256|512)?_[a-z0-9_]+|v(?:ld|st)[1-4]q?_[a-z0-9_]+|v(?:add|sub|mul|mla|fma|dup|max|min|abs|neg|cvt)q?_[a-z0-9_]+)\s*\()");
    for (size_t i = 0; i < scan_.code.size(); ++i) {
      std::smatch match;
      if (std::regex_search(scan_.code[i], match, kPattern)) {
        Add("raw-intrinsics", i,
            "'" + match[1].str() +
                "' outside src/tensor/simd/; raw SIMD intrinsics live in "
                "the kernel backend TUs and everything else dispatches "
                "through tensor/simd/dispatch.h");
      }
    }
  }

  // A mutex member in a class with no IMR_GUARDED_BY anywhere in the class
  // body means the lock protects... nothing the analysis can see. Either
  // annotate what it guards or document why not (allow).
  void CheckMutexGuard() {
    static const std::regex kMutexMember(
        R"(^\s*(?:mutable\s+)?(?:std::mutex|util::Mutex|Mutex)\s+[A-Za-z_]\w*\s*;)");
    std::string flat;
    std::vector<size_t> line_offset(scan_.code.size() + 1, 0);
    for (size_t i = 0; i < scan_.code.size(); ++i) {
      flat += scan_.code[i];
      flat += '\n';
      line_offset[i + 1] = flat.size();
    }

    struct Region {
      size_t open;
      size_t close;
    };
    std::vector<Region> regions;
    static const std::regex kClassKeyword(R"(\b(class|struct)\b)");
    for (auto it = std::sregex_iterator(flat.begin(), flat.end(),
                                        kClassKeyword);
         it != std::sregex_iterator(); ++it) {
      const size_t keyword_pos = static_cast<size_t>(it->position());
      // `enum class` / `enum struct` define enumerations, not classes.
      size_t back = keyword_pos;
      while (back > 0 && std::isspace(static_cast<unsigned char>(
                             flat[back - 1]))) {
        --back;
      }
      size_t word_begin = back;
      while (word_begin > 0 &&
             (std::isalnum(static_cast<unsigned char>(flat[word_begin - 1])) ||
              flat[word_begin - 1] == '_')) {
        --word_begin;
      }
      if (flat.compare(word_begin, back - word_begin, "enum") == 0) continue;
      // Find the body: the first '{' before any ';' (a ';' first means a
      // forward declaration or friend declaration — no body to scan).
      size_t pos = keyword_pos + it->length();
      while (pos < flat.size() && flat[pos] != '{' && flat[pos] != ';') ++pos;
      if (pos >= flat.size() || flat[pos] == ';') continue;
      size_t depth = 1;
      size_t close = pos + 1;
      while (close < flat.size() && depth > 0) {
        if (flat[close] == '{') ++depth;
        if (flat[close] == '}') --depth;
        ++close;
      }
      regions.push_back(Region{pos, close});
    }

    for (size_t i = 0; i < scan_.code.size(); ++i) {
      if (!std::regex_search(scan_.code[i], kMutexMember)) continue;
      const size_t member_pos = line_offset[i];
      const Region* innermost = nullptr;
      for (const Region& region : regions) {
        if (region.open < member_pos && member_pos < region.close &&
            (innermost == nullptr || region.open > innermost->open)) {
          innermost = &region;
        }
      }
      if (innermost == nullptr) continue;  // namespace-scope mutex
      const std::string body =
          flat.substr(innermost->open, innermost->close - innermost->open);
      if (body.find("IMR_GUARDED_BY") != std::string::npos ||
          body.find("IMR_PT_GUARDED_BY") != std::string::npos) {
        continue;
      }
      Add("mutex-guard", i,
          "mutex member in a class with no IMR_GUARDED_BY-annotated field; "
          "annotate what it protects (util/thread_annotations.h)");
    }
  }

  // Shard mutexes (sharded_cache.h) are leaf locks on the request hot
  // path: every request hashing to a shard serializes behind its holder,
  // so a blocking call made under one (a CondVar wait, file I/O, a
  // snapshot load, a sleep) turns a nanosecond critical section into a
  // convoy. Tracks brace depth through the flattened file: a lock is
  // "shard-scoped" when it is a util::MutexLock whose argument mentions a
  // shard, or a direct `...shard...Lock()` call; blocking patterns are
  // flagged until the lock's scope closes (RAII) or a matching
  // `...shard...Unlock()` runs.
  void CheckBlockingUnderShardLock() {
    std::string flat;
    std::vector<size_t> line_offset;
    line_offset.reserve(scan_.code.size() + 1);
    line_offset.push_back(0);
    for (const std::string& line : scan_.code) {
      flat += line;
      flat += '\n';
      line_offset.push_back(flat.size());
    }
    const auto line_of = [&line_offset](size_t pos) {
      size_t lo = 0, hi = line_offset.size() - 1;
      while (lo + 1 < hi) {
        const size_t mid = (lo + hi) / 2;
        if (line_offset[mid] <= pos) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      return lo;
    };

    enum EventKind { kAcquireScoped, kAcquireManual, kReleaseManual, kBlocks };
    struct Event {
      size_t pos;
      EventKind kind;
      std::string what;
    };
    std::vector<Event> events;
    const auto collect = [&flat, &events](const std::regex& pattern,
                                          EventKind kind) {
      for (auto it = std::sregex_iterator(flat.begin(), flat.end(), pattern);
           it != std::sregex_iterator(); ++it) {
        events.push_back(Event{static_cast<size_t>(it->position()), kind,
                               (*it)[0].str()});
      }
    };
    // `util::MutexLock lock(shard.mutex)` / `(shards_[i]->mutex)` — RAII,
    // held until the enclosing block closes.
    static const std::regex kScoped(
        R"((?:util::)?MutexLock\s+\w+\s*\([^)]*[Ss]hard[^)]*\))");
    // `shard.mutex.Lock()` style — held until Unlock() or scope close.
    static const std::regex kManualLock(
        R"([Ss]hard[\w\[\]().>-]*\s*\.\s*Lock\s*\()");
    static const std::regex kManualUnlock(
        R"([Ss]hard[\w\[\]().>-]*\s*\.\s*Unlock\s*\()");
    // The blocking operations that must never run under a shard lock.
    static const std::regex kBlocking(
        R"(\.\s*Wait(?:Until)?\s*\(|std::[io]?fstream\b|\bfopen\s*\(|\bLoadSnapshot\s*\(|\bsleep_for\b|\bsleep_until\b|\busleep\s*\(|\bsleep\s*\()");
    collect(kScoped, kAcquireScoped);
    collect(kManualLock, kAcquireManual);
    collect(kManualUnlock, kReleaseManual);
    collect(kBlocking, kBlocks);
    if (events.empty()) return;
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.pos < b.pos; });

    struct ActiveLock {
      size_t depth;
      bool manual;
    };
    std::vector<ActiveLock> held;
    size_t depth = 0;
    size_t next_event = 0;
    for (size_t pos = 0; pos < flat.size(); ++pos) {
      while (next_event < events.size() && events[next_event].pos == pos) {
        const Event& event = events[next_event++];
        switch (event.kind) {
          case kAcquireScoped:
            held.push_back(ActiveLock{depth, /*manual=*/false});
            break;
          case kAcquireManual:
            held.push_back(ActiveLock{depth, /*manual=*/true});
            break;
          case kReleaseManual:
            for (size_t h = held.size(); h-- > 0;) {
              if (held[h].manual) {
                held.erase(held.begin() + static_cast<long>(h));
                break;
              }
            }
            break;
          case kBlocks:
            if (!held.empty()) {
              Add("blocking-under-shard-lock", line_of(pos),
                  "'" + event.what +
                      "' while a cache-shard mutex is held; shard locks "
                      "are leaf locks on the request hot path — finish the "
                      "blocking work first, then take the lock");
            }
            break;
        }
      }
      if (flat[pos] == '{') {
        ++depth;
      } else if (flat[pos] == '}') {
        if (depth > 0) --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      }
    }
  }

  std::string relpath_;
  ScannedFile scan_;
  std::vector<std::set<std::string>> allows_;
  std::set<std::string> file_allows_;
  std::vector<std::string> raw_;
  std::vector<Finding> findings_;
};

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string line;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(line);
      line.clear();
    } else {
      line += c;
    }
  }
  lines.push_back(line);
  return lines;
}

}  // namespace

const std::vector<std::string>& RuleIds() {
  static const std::vector<std::string> kRules = {
      "no-raw-random", "no-naked-new",         "no-throw",
      "no-iostream",   "mutex-guard",          "include-hygiene",
      "kernel-alloc",  "optimizer-dense-grad", "raw-intrinsics",
      "blocking-under-shard-lock", "ann-search-alloc",
      "snapshot-full-copy"};
  return kRules;
}

std::vector<Finding> LintSource(const std::string& relpath,
                                const std::string& content) {
  Linter linter(relpath, content);
  linter.set_raw_lines(SplitLines(content));
  return linter.Run();
}

std::vector<Finding> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  // Findings report paths relative to the repository root (not the walk
  // root and not the invocation directory), so CI diffs and the analysis
  // baseline are stable however the tool is launched.
  const fs::path repo_root = RepoRootFor(root);
  for (const fs::path& path : files) {
    std::error_code rel_ec;
    const fs::path canonical = fs::weakly_canonical(path, rel_ec);
    const std::string relpath =
        fs::relative(rel_ec ? path : canonical, repo_root).generic_string();
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      findings.push_back(
          Finding{"read-error", relpath, 0, "cannot open", ""});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::vector<Finding> file_findings = LintSource(relpath, buffer.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace imr::lint
