// imr_lint: project-specific static analysis, token/regex based (no
// libclang). The linter enforces conventions the compiler cannot:
//
//   no-raw-random     std::random_device / rand() / srand() / time(nullptr)
//                     anywhere outside src/util/rng.cc — every source of
//                     nondeterminism must flow through util::Rng so runs
//                     are reproducible at any thread count
//   no-naked-new      `new` / `delete` expressions in src/ — ownership goes
//                     through std::unique_ptr / containers
//   no-throw          `throw` in src/ — the library reports errors through
//                     util::Status, never exceptions
//   no-iostream       std::cout / std::cerr in src/ outside util/logging —
//                     library code logs through IMR_LOG
//   mutex-guard       a mutex member (std::mutex, util::Mutex) in a class
//                     with no IMR_GUARDED_BY-annotated field — lock
//                     discipline must be machine-checkable
//   include-hygiene   project headers included as "util/foo.h" style
//                     project-relative paths: no "../" segments, no "src/"
//                     prefix, no <angle> includes of project directories
//   kernel-alloc      naked std::vector<float> construction in
//                     src/tensor/ops.cc — kernel storage comes from
//                     tensor/buffer_pool.h so steady-state steps stay
//                     allocation-free
//   optimizer-dense-grad
//                     range-for over a `.grad()` expression or a
//                     `.grad().size()` loop bound in src/nn/optimizer.cc —
//                     gradient walks go through the sanctioned row-sparse
//                     helpers so embedding updates stay O(touched rows)
//   raw-intrinsics    SIMD intrinsic calls (_mm_* / _mm256_* / _mm512_* /
//                     vld1q_* etc.) anywhere outside src/tensor/simd/ —
//                     vector code is reached through the runtime dispatch
//                     table, never called directly, so CPU detection and
//                     the per-TU ISA build flags cannot be bypassed
//   blocking-under-shard-lock
//                     a blocking call (CondVar Wait/WaitUntil, file I/O
//                     streams, fopen, LoadSnapshot, sleeps) while a
//                     cache-shard mutex is held, in src/serve/ — shard
//                     mutexes are leaf locks on the request hot path;
//                     blocking under one serializes every request hashing
//                     to that shard behind the slow operation
//   snapshot-full-copy
//                     bulk parse-copy deserialization (ReadFloatVector /
//                     ReadByteVector / EmbeddingStore::ReadFrom /
//                     QuantizedEmbeddingStore::ReadFrom) in src/serve/ —
//                     v2 snapshots alias bulk arrays out of the mmap so
//                     opens stay O(header); copying is reserved for the
//                     v1 fallback sites, which carry explicit allows
//
// These per-line rules are pass 1 of the two-pass framework; pass 2 (the
// cross-file structural analyses — lock-order cycles, hot-path
// reachability, Status propagation) lives in tools/analyzer.h and reuses
// the scanner exported below.
//
// Suppression: append `// imr-lint: allow(rule-id)` (comma-separated for
// several rules) on the offending line or on the line directly above it.
// A whole file opts out of a rule with `// imr-lint: allow-file(rule-id)`
// in the file's header comment (any comment line before the first line of
// code) — intended for fixture-heavy test files where per-line allows
// would repeat dozens of times.
//
// Comments, string literals, and char literals are blanked before rule
// matching, so prose and test fixtures never trip the rules
// (include-hygiene runs on the raw line because the include path *is* a
// string literal).
#ifndef IMR_TOOLS_LINT_H_
#define IMR_TOOLS_LINT_H_

#include <set>
#include <string>
#include <vector>

namespace imr::lint {

struct Finding {
  std::string rule;     // rule id, e.g. "no-throw"
  std::string file;     // repo-relative path
  int line = 0;         // 1-based
  std::string message;  // human-readable explanation
  /// Line-independent identity for baseline matching (pass-2 analyses
  /// only; empty for the per-line pass-1 rules).
  std::string key;
};

// ---- shared source scanner (used by pass 1 here and pass 2 in
// tools/analyzer.h) ----

/// The file split into per-line blanked code (comments and string/char
/// literals replaced by spaces, so token scans only ever see real code)
/// plus per-line comment text (so `imr-lint: allow(...)` still parses).
struct ScannedFile {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

ScannedFile ScanSource(const std::string& content);

/// Rules suppressed on each line via `imr-lint: allow(rule-a, rule-b)`.
std::vector<std::set<std::string>> ParseLineAllows(
    const std::vector<std::string>& comments);

/// Rules suppressed for the whole file via `imr-lint: allow-file(rule)`
/// in the header comment — only comment lines before the first line
/// containing code count, so a stray allow-file buried mid-file has no
/// effect.
std::set<std::string> ParseFileAllows(const ScannedFile& scan);

/// Walks up from `start` looking for the repository root (a directory
/// containing `.git`, or failing that the `src/` + `tools/` + ROADMAP.md
/// triple). Returns the canonicalized root, or canonicalized `start`
/// itself when no marker is found (fixture trees in tests). Finding paths
/// are made relative to this, so `file:line:` output is identical no
/// matter which directory the linter is invoked from.
std::string RepoRootFor(const std::string& start);

/// All rule ids the linter knows, in reporting order.
const std::vector<std::string>& RuleIds();

/// Lints one translation unit. `relpath` is the project-relative path
/// (e.g. "src/util/foo.cc"); it decides which rules apply (library-only
/// rules fire only under src/). `content` is the full file text.
std::vector<Finding> LintSource(const std::string& relpath,
                                const std::string& content);

/// Walks root/{src,tests,bench,examples,tools} for .h/.cc/.cpp files (in
/// sorted order, so output is deterministic) and lints each. Files that
/// cannot be read produce a "read-error" finding.
std::vector<Finding> LintTree(const std::string& root);

/// "file:line: [rule-id] message" — the one-line form tests and CI parse.
std::string FormatFinding(const Finding& finding);

}  // namespace imr::lint

#endif  // IMR_TOOLS_LINT_H_
