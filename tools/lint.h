// imr_lint: project-specific static analysis, token/regex based (no
// libclang). The linter enforces conventions the compiler cannot:
//
//   no-raw-random     std::random_device / rand() / srand() / time(nullptr)
//                     anywhere outside src/util/rng.cc — every source of
//                     nondeterminism must flow through util::Rng so runs
//                     are reproducible at any thread count
//   no-naked-new      `new` / `delete` expressions in src/ — ownership goes
//                     through std::unique_ptr / containers
//   no-throw          `throw` in src/ — the library reports errors through
//                     util::Status, never exceptions
//   no-iostream       std::cout / std::cerr in src/ outside util/logging —
//                     library code logs through IMR_LOG
//   mutex-guard       a mutex member (std::mutex, util::Mutex) in a class
//                     with no IMR_GUARDED_BY-annotated field — lock
//                     discipline must be machine-checkable
//   include-hygiene   project headers included as "util/foo.h" style
//                     project-relative paths: no "../" segments, no "src/"
//                     prefix, no <angle> includes of project directories
//   kernel-alloc      naked std::vector<float> construction in
//                     src/tensor/ops.cc — kernel storage comes from
//                     tensor/buffer_pool.h so steady-state steps stay
//                     allocation-free
//   optimizer-dense-grad
//                     range-for over a `.grad()` expression or a
//                     `.grad().size()` loop bound in src/nn/optimizer.cc —
//                     gradient walks go through the sanctioned row-sparse
//                     helpers so embedding updates stay O(touched rows)
//   raw-intrinsics    SIMD intrinsic calls (_mm_* / _mm256_* / _mm512_* /
//                     vld1q_* etc.) anywhere outside src/tensor/simd/ —
//                     vector code is reached through the runtime dispatch
//                     table, never called directly, so CPU detection and
//                     the per-TU ISA build flags cannot be bypassed
//   blocking-under-shard-lock
//                     a blocking call (CondVar Wait/WaitUntil, file I/O
//                     streams, fopen, LoadSnapshot, sleeps) while a
//                     cache-shard mutex is held, in src/serve/ — shard
//                     mutexes are leaf locks on the request hot path;
//                     blocking under one serializes every request hashing
//                     to that shard behind the slow operation
//
// Suppression: append `// imr-lint: allow(rule-id)` (comma-separated for
// several rules) on the offending line or on the line directly above it.
//
// Comments, string literals, and char literals are blanked before rule
// matching, so prose and test fixtures never trip the rules
// (include-hygiene runs on the raw line because the include path *is* a
// string literal).
#ifndef IMR_TOOLS_LINT_H_
#define IMR_TOOLS_LINT_H_

#include <string>
#include <vector>

namespace imr::lint {

struct Finding {
  std::string rule;     // rule id, e.g. "no-throw"
  std::string file;     // project-relative path as passed in
  int line = 0;         // 1-based
  std::string message;  // human-readable explanation
};

/// All rule ids the linter knows, in reporting order.
const std::vector<std::string>& RuleIds();

/// Lints one translation unit. `relpath` is the project-relative path
/// (e.g. "src/util/foo.cc"); it decides which rules apply (library-only
/// rules fire only under src/). `content` is the full file text.
std::vector<Finding> LintSource(const std::string& relpath,
                                const std::string& content);

/// Walks root/{src,tests,bench,examples,tools} for .h/.cc/.cpp files (in
/// sorted order, so output is deterministic) and lints each. Files that
/// cannot be read produce a "read-error" finding.
std::vector<Finding> LintTree(const std::string& root);

/// "file:line: [rule-id] message" — the one-line form tests and CI parse.
std::string FormatFinding(const Finding& finding);

}  // namespace imr::lint

#endif  // IMR_TOOLS_LINT_H_
