// Fixture coverage for tools/imr_lint: every rule is proven live by a
// minimal source with exactly one known violation, a clean file yields no
// findings, and the `// imr-lint: allow(...)` escape hatch suppresses both
// same-line and previous-line.
#include "lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace imr::lint {
namespace {

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& finding : findings) rules.push_back(finding.rule);
  return rules;
}

TEST(LintTest, CleanLibraryFileHasNoFindings) {
  const std::string source = R"cc(
#include <memory>

#include "util/status.h"

namespace imr::util {
std::unique_ptr<int> MakeBox(int v) { return std::make_unique<int>(v); }
}  // namespace imr::util
)cc";
  EXPECT_TRUE(LintSource("src/util/box.cc", source).empty());
}

TEST(LintTest, NoRawRandomFiresOnRandomDevice) {
  const std::string source =
      "#include <random>\n"
      "int Seed() {\n"
      "  std::random_device rd;\n"
      "  return static_cast<int>(rd());\n"
      "}\n";
  const auto findings = LintSource("src/util/seed.cc", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-raw-random");
  EXPECT_EQ(findings[0].file, "src/util/seed.cc");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintTest, NoRawRandomFiresOnTimeNull) {
  const auto findings =
      LintSource("src/re/trainer.cc", "long Now() { return time(nullptr); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-raw-random");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintTest, NoRawRandomExemptsRngImplementation) {
  const std::string source = "unsigned Entropy() { return std::random_device{}(); }\n";
  EXPECT_TRUE(LintSource("src/util/rng.cc", source).empty());
  // ...but only that one file.
  EXPECT_FALSE(LintSource("src/util/rng2.cc", source).empty());
}

TEST(LintTest, NoNakedNewFiresOnNewAndDelete) {
  const std::string source =
      "void Leak() {\n"
      "  int* p = new int(3);\n"
      "  delete p;\n"
      "}\n";
  const auto findings = LintSource("src/util/leak.cc", source);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "no-naked-new");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].rule, "no-naked-new");
  EXPECT_EQ(findings[1].line, 3);
}

TEST(LintTest, NoNakedNewIgnoresDeletedMembers) {
  const std::string source =
      "class Pool {\n"
      " public:\n"
      "  Pool(const Pool&) = delete;\n"
      "  Pool& operator=(const Pool&) = delete;\n"
      "};\n";
  EXPECT_TRUE(LintSource("src/util/pool.h", source).empty());
}

TEST(LintTest, NoThrowFiresInLibraryButNotInTests) {
  const std::string source = "void F() { throw 42; }\n";
  const auto findings = LintSource("src/nn/f.cc", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-throw");
  EXPECT_EQ(findings[0].line, 1);
  // Library-only rule: test code may exercise exceptions freely.
  EXPECT_TRUE(LintSource("tests/f_test.cc", source).empty());
}

TEST(LintTest, NoIostreamFiresOutsideLogging) {
  const std::string source =
      "#include <iostream>\n"
      "void Print() { std::cout << 1; }\n";
  const auto findings = LintSource("src/eval/print.cc", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-iostream");
  EXPECT_EQ(findings[0].line, 2);
  // The logging implementation is the one sanctioned stderr writer.
  EXPECT_TRUE(LintSource("src/util/logging.cc",
                         "void Emit() { std::cerr << 1; }\n")
                  .empty());
}

TEST(LintTest, MutexGuardFiresOnUnannotatedMutexMember) {
  const std::string source =
      "#include <mutex>\n"
      "class Counter {\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  int count_ = 0;\n"
      "};\n";
  const auto findings = LintSource("src/util/counter.h", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "mutex-guard");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintTest, MutexGuardSatisfiedByAnnotation) {
  const std::string source =
      "#include \"util/mutex.h\"\n"
      "#include \"util/thread_annotations.h\"\n"
      "class Counter {\n"
      " private:\n"
      "  util::Mutex mutex_;\n"
      "  int count_ IMR_GUARDED_BY(mutex_) = 0;\n"
      "};\n";
  EXPECT_TRUE(LintSource("src/util/counter.h", source).empty());
}

TEST(LintTest, MutexGuardIgnoresNamespaceScopeMutex) {
  const std::string source =
      "#include <mutex>\n"
      "namespace imr {\n"
      "std::mutex g_mutex;\n"
      "}\n";
  EXPECT_TRUE(LintSource("src/util/global.cc", source).empty());
}

TEST(LintTest, IncludeHygieneFiresOnParentRelativeAndSrcPrefixed) {
  const std::string source =
      "#include \"../util/status.h\"\n"
      "#include \"src/util/logging.h\"\n"
      "#include <util/rng.h>\n"
      "#include <vector>\n"
      "#include \"util/flags.h\"\n";
  const auto findings = LintSource("tests/hygiene_test.cc", source);
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule, "include-hygiene");
  }
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[2].line, 3);
}

TEST(LintTest, AllowSuppressesOnSameLine) {
  const std::string source =
      "void F() { throw 42; }  // imr-lint: allow(no-throw)\n";
  EXPECT_TRUE(LintSource("src/nn/f.cc", source).empty());
}

TEST(LintTest, AllowSuppressesFromPrecedingLine) {
  const std::string source =
      "// Rethrow is deliberate here: imr-lint: allow(no-throw)\n"
      "void F() { throw 42; }\n";
  EXPECT_TRUE(LintSource("src/nn/f.cc", source).empty());
}

TEST(LintTest, AllowIsRuleSpecific) {
  // Suppressing one rule must not blanket-suppress others on the line.
  const std::string source =
      "void F() { throw new int(7); }  // imr-lint: allow(no-throw)\n";
  const auto findings = LintSource("src/nn/f.cc", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-naked-new");
}

TEST(LintTest, AllowListSuppressesMultipleRules) {
  const std::string source =
      "void F() { throw new int(7); }"
      "  // imr-lint: allow(no-throw, no-naked-new)\n";
  EXPECT_TRUE(LintSource("src/nn/f.cc", source).empty());
}

TEST(LintTest, ViolationsInCommentsAndStringsAreIgnored) {
  const std::string source =
      "// don't use std::cout or throw or new in library code\n"
      "/* std::random_device is banned */\n"
      "const char* kDoc = \"never call rand() or time(nullptr)\";\n";
  EXPECT_TRUE(LintSource("src/util/doc.cc", source).empty());
}

TEST(LintTest, FormatFindingIsFileLineRule) {
  const auto findings =
      LintSource("src/nn/f.cc", "void F() { throw 42; }\n");
  ASSERT_EQ(findings.size(), 1u);
  const std::string formatted = FormatFinding(findings[0]);
  EXPECT_EQ(formatted.rfind("src/nn/f.cc:1: [no-throw]", 0), 0u) << formatted;
}

TEST(LintTest, KernelAllocFiresOnNakedVectorInOpsCc) {
  const std::string source =
      "namespace imr::tensor {\n"
      "void Kernel(int n) {\n"
      "  std::vector<float> scratch(static_cast<size_t>(n));\n"
      "  (void)scratch;\n"
      "}\n"
      "}  // namespace imr::tensor\n";
  const auto findings = LintSource("src/tensor/ops.cc", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "kernel-alloc");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintTest, KernelAllocFiresOnBraceInitAndTemporary) {
  const std::string source =
      "void A() { std::vector<float> buf{1.0f, 2.0f}; (void)buf; }\n"
      "void B(std::vector<float>* out) { *out = std::vector<float>(8); }\n";
  const auto findings = LintSource("src/tensor/ops.cc", source);
  EXPECT_EQ(Rules(findings),
            (std::vector<std::string>{"kernel-alloc", "kernel-alloc"}));
}

TEST(LintTest, KernelAllocIgnoresPoolAcquiresAndReferences) {
  const std::string source =
      "std::vector<float> out = AcquireBuffer(n);\n"
      "const std::vector<float>& view = out;\n"
      "std::vector<float>* GradOf();\n"
      "std::vector<std::vector<float>> buckets;\n";
  EXPECT_TRUE(LintSource("src/tensor/ops.cc", source).empty());
}

TEST(LintTest, KernelAllocOnlyAppliesToOpsCc) {
  const std::string source =
      "void Helper() { std::vector<float> tmp(4); (void)tmp; }\n";
  EXPECT_TRUE(LintSource("src/tensor/tensor.cc", source).empty());
  EXPECT_TRUE(LintSource("src/nn/layers.cc", source).empty());
}

TEST(LintTest, KernelAllocHonorsAllowEscape) {
  const std::string source =
      "// imr-lint: allow(kernel-alloc)\n"
      "std::vector<float> tmp(4);\n";
  EXPECT_TRUE(LintSource("src/tensor/ops.cc", source).empty());
}

TEST(LintTest, OptimizerDenseGradFiresOnRangeForOverGrad) {
  const std::string source =
      "void Sgd::Step() {\n"
      "  for (auto& p : params_) {\n"
      "    for (float gv : p.grad()) total += gv * gv;\n"
      "  }\n"
      "}\n";
  const auto findings = LintSource("src/nn/optimizer.cc", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "optimizer-dense-grad");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintTest, OptimizerDenseGradFiresOnGradSizeLoopBound) {
  const std::string source =
      "void Step() {\n"
      "  for (size_t i = 0; i < p.grad().size(); ++i) v[i] -= g[i];\n"
      "}\n";
  const auto findings = LintSource("src/nn/optimizer.cc", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "optimizer-dense-grad");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintTest, OptimizerDenseGradIgnoresSparseHelpers) {
  const std::string source =
      "double GradSquaredSum(const tensor::Tensor& p) {\n"
      "  const auto& g = p.grad();\n"
      "  for (int r : p.grad_touched_rows()) Walk(g, r);\n"
      "  return 0.0;\n"
      "}\n";
  EXPECT_TRUE(LintSource("src/nn/optimizer.cc", source).empty());
}

TEST(LintTest, OptimizerDenseGradOnlyAppliesToOptimizerCc) {
  const std::string source =
      "void F() { for (float gv : p.grad()) total += gv; }\n";
  EXPECT_TRUE(LintSource("src/nn/module.cc", source).empty());
  EXPECT_TRUE(LintSource("tests/optimizer_test.cc", source).empty());
}

TEST(LintTest, OptimizerDenseGradHonorsAllowEscape) {
  const std::string source =
      "// imr-lint: allow(optimizer-dense-grad)\n"
      "for (float gv : p.grad()) total += gv * gv;\n";
  EXPECT_TRUE(LintSource("src/nn/optimizer.cc", source).empty());
}

TEST(LintTest, RawIntrinsicsFiresOutsideSimdDirectory) {
  const std::string source =
      "void Add(const float* a, const float* b, float* o) {\n"
      "  _mm256_storeu_ps(o, _mm256_add_ps(_mm256_loadu_ps(a),\n"
      "                                    _mm256_loadu_ps(b)));\n"
      "}\n";
  const auto findings = LintSource("src/tensor/ops.cc", source);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "raw-intrinsics");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintTest, RawIntrinsicsFiresOnNeonOutsideSimdDirectory) {
  const std::string source =
      "void Copy(const float* a, float* o) { vst1q_f32(o, vld1q_f32(a)); }\n";
  const auto findings = LintSource("src/nn/layers.cc", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "raw-intrinsics");
}

TEST(LintTest, RawIntrinsicsAllowedInsideSimdDirectory) {
  const std::string source =
      "void Add(const float* a, const float* b, float* o) {\n"
      "  _mm_storeu_ps(o, _mm_add_ps(_mm_loadu_ps(a), _mm_loadu_ps(b)));\n"
      "}\n";
  EXPECT_TRUE(
      LintSource("src/tensor/simd/kernels_sse2.cc", source).empty());
}

TEST(LintTest, RawIntrinsicsIgnoresMentionsInCommentsAndStrings) {
  const std::string source =
      "// fast path uses _mm256_fmadd_ps(a, b, c) under the hood\n"
      "const char* kName = \"_mm_add_ps(x, y)\";\n";
  EXPECT_TRUE(LintSource("src/tensor/ops.cc", source).empty());
}

TEST(LintTest, RawIntrinsicsHonorsAllowEscape) {
  const std::string source =
      "// imr-lint: allow(raw-intrinsics)\n"
      "void Pause() { _mm_pause(); }\n";
  EXPECT_TRUE(LintSource("src/util/spin.cc", source).empty());
}

TEST(LintTest, BlockingUnderShardLockFiresOnCondVarWait) {
  const std::string source = R"cc(
void Bad(Shard& shard) {
  util::MutexLock lock(shard.mutex);
  while (empty()) shard.cv.Wait(shard.mutex);
}
)cc";
  const auto findings = LintSource("src/serve/bad_cache.cc", source);
  ASSERT_EQ(Rules(findings),
            std::vector<std::string>{"blocking-under-shard-lock"});
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintTest, BlockingUnderShardLockFiresOnFileIoAndSnapshotLoad) {
  const std::string source = R"cc(
void Bad(Shard& shard, const std::string& path) {
  util::MutexLock lock(shard.mutex);
  std::ifstream in(path);
  auto snapshot = LoadSnapshot(path);
}
)cc";
  const auto findings = LintSource("src/serve/bad_reload.cc", source);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "blocking-under-shard-lock");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_EQ(findings[1].rule, "blocking-under-shard-lock");
  EXPECT_EQ(findings[1].line, 5);
}

TEST(LintTest, BlockingUnderShardLockTracksManualLockPairs) {
  // Blocking after Unlock (or outside the lock scope) is fine; between
  // Lock and Unlock it is not.
  const std::string source = R"cc(
void Mixed(Shard& shard) {
  shard.mutex.Lock();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  shard.mutex.Unlock();
  std::ifstream in("ok_now.txt");
}
void ScopedOk(Shard& shard, const std::string& path) {
  {
    util::MutexLock lock(shard.mutex);
    touch(shard);
  }
  auto snapshot = LoadSnapshot(path);
}
)cc";
  const auto findings = LintSource("src/serve/manual_lock.cc", source);
  ASSERT_EQ(Rules(findings),
            std::vector<std::string>{"blocking-under-shard-lock"});
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintTest, BlockingUnderShardLockIgnoresOtherMutexes) {
  // Non-shard locks (dispatcher queue, stats ring) may block — the rule
  // is about the cache-shard leaf locks only.
  const std::string source = R"cc(
void Dispatcher() {
  util::MutexLock lock(queue_mutex_);
  while (queue_.empty()) queue_cv_.Wait(queue_mutex_);
}
)cc";
  EXPECT_TRUE(LintSource("src/serve/dispatch.cc", source).empty());
}

TEST(LintTest, BlockingUnderShardLockOnlyAppliesToServe) {
  const std::string source = R"cc(
void Elsewhere(Shard& shard) {
  util::MutexLock lock(shard.mutex);
  std::ifstream in("fine_outside_serve.txt");
}
)cc";
  EXPECT_TRUE(LintSource("src/graph/shards.cc", source).empty());
}

TEST(LintTest, BlockingUnderShardLockHonorsAllowEscape) {
  const std::string source = R"cc(
void Justified(Shard& shard) {
  util::MutexLock lock(shard.mutex);
  // imr-lint: allow(blocking-under-shard-lock)
  std::ifstream in("cold_path_by_design.txt");
}
)cc";
  EXPECT_TRUE(LintSource("src/serve/cold.cc", source).empty());
}

TEST(LintTest, AnnSearchAllocFiresInsideSearchBody) {
  const std::string source = R"cc(
namespace imr::graph::ann {
void FlatIndex::Search(const float* query, int k,
                       std::vector<SearchResult>* out) const {
  std::vector<float> scores(static_cast<size_t>(rows_));
  (void)scores;
}
}  // namespace imr::graph::ann
)cc";
  const auto findings = LintSource("src/graph/ann/flat_index.cc", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "ann-search-alloc");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(LintTest, AnnSearchAllocFiresInsideInterpolateBody) {
  const std::string source = R"cc(
bool KnnPredictor::Interpolate(const float* mr,
                               std::vector<float>* probs) const {
  std::vector<float> vote(static_cast<size_t>(num_relations_), 0.0f);
  (void)vote;
  return true;
}
)cc";
  const auto findings = LintSource("src/re/knn_predictor.cc", source);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "ann-search-alloc");
}

TEST(LintTest, AnnSearchAllocLeavesBuildPathsAlone) {
  // Build may allocate freely; only Search/SearchBatch/Interpolate bodies
  // carry the allocation-free contract.
  const std::string source = R"cc(
void IvfIndex::Build(const float* data, int rows, int dim) {
  std::vector<float> work(static_cast<size_t>(rows) * dim);
  (void)work;
}
void IvfIndex::Search(const float* query, int k,
                      std::vector<SearchResult>* out) const {
  const size_t n = tensor::internal::AcquireBuffer(cells_, &scores);
  (void)n;
}
)cc";
  EXPECT_TRUE(LintSource("src/graph/ann/ivf_index.cc", source).empty());
}

TEST(LintTest, AnnSearchAllocSkipsDeclarationsAndCallSites) {
  const std::string source = R"cc(
void Search(const float* query, int k, std::vector<SearchResult>* out) const;
void Caller() {
  index.Search(query, 10, &results);
  if (knn->Interpolate(mr, &probs)) {
    std::vector<float> copy(probs);
    (void)copy;
  }
}
)cc";
  EXPECT_TRUE(LintSource("src/graph/ann/ann_index.cc", source).empty());
}

TEST(LintTest, AnnSearchAllocOnlyAppliesToAnnSearchPaths) {
  const std::string source = R"cc(
void Thing::Search(const float* q, int k, std::vector<SearchResult>* out) {
  std::vector<float> scratch(8);
  (void)scratch;
}
)cc";
  EXPECT_TRUE(LintSource("src/eval/metrics.cc", source).empty());
  EXPECT_TRUE(LintSource("tests/ann_test.cc", source).empty());
}

TEST(LintTest, AnnSearchAllocHonorsAllowEscape) {
  const std::string source = R"cc(
void FlatIndex::Search(const float* q, int k,
                       std::vector<SearchResult>* out) const {
  // imr-lint: allow(ann-search-alloc)
  std::vector<float> justified(4);
  (void)justified;
}
)cc";
  EXPECT_TRUE(LintSource("src/graph/ann/flat_index.cc", source).empty());
}

TEST(LintTest, RuleIdsAreStable) {
  const std::vector<std::string> expected = {
      "no-raw-random", "no-naked-new", "no-throw",
      "no-iostream",   "mutex-guard",  "include-hygiene",
      "kernel-alloc",  "optimizer-dense-grad", "raw-intrinsics",
      "blocking-under-shard-lock", "ann-search-alloc",
      "snapshot-full-copy"};
  EXPECT_EQ(RuleIds(), expected);
}

TEST(LintTest, AllowFileHeaderSuppressesRuleForWholeFile) {
  const std::string source = R"cc(// fixture-heavy test helper
// imr-lint: allow-file(no-throw)
namespace imr {
void A() { throw 1; }
void B() { throw 2; }
}  // namespace imr
)cc";
  EXPECT_TRUE(LintSource("src/util/fixture.cc", source).empty());
}

TEST(LintTest, AllowFileTakesCommaSeparatedRuleList) {
  const std::string source = R"cc(// imr-lint: allow-file(no-throw, no-naked-new)
namespace imr {
void A() { throw 1; }
int* B() { return new int(2); }
}  // namespace imr
)cc";
  EXPECT_TRUE(LintSource("src/util/fixture.cc", source).empty());
}

TEST(LintTest, AllowFileOnlySuppressesTheNamedRule) {
  const std::string source = R"cc(// imr-lint: allow-file(no-naked-new)
namespace imr {
void A() { throw 1; }
}  // namespace imr
)cc";
  EXPECT_EQ(Rules(LintSource("src/util/fixture.cc", source)),
            (std::vector<std::string>{"no-throw"}));
}

TEST(LintTest, AllowFileBuriedAfterCodeHasNoEffect) {
  const std::string source = R"cc(namespace imr {
// imr-lint: allow-file(no-throw)
void A() { throw 1; }
}  // namespace imr
)cc";
  EXPECT_EQ(Rules(LintSource("src/util/fixture.cc", source)),
            (std::vector<std::string>{"no-throw"}));
}

TEST(LintTest, SnapshotFullCopyFiresOnBulkDeserializeInServe) {
  const std::string source = R"cc(
util::Status LoadTables(util::BinaryReader* reader, Snapshot* out) {
  auto embeddings = graph::EmbeddingStore::ReadFrom(reader);
  auto quantized = graph::QuantizedEmbeddingStore::ReadFrom(reader);
  auto scales = reader->ReadFloatVector();
  auto rows = reader->ReadByteVector();
  return util::OkStatus();
}
)cc";
  const auto findings = LintSource("src/serve/bad_loader.cc", source);
  ASSERT_EQ(findings.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(findings[static_cast<size_t>(i)].rule, "snapshot-full-copy");
    EXPECT_EQ(findings[static_cast<size_t>(i)].line, 3 + i);
  }
}

TEST(LintTest, SnapshotFullCopyOnlyAppliesToServe) {
  // The same calls are the sanctioned idiom everywhere else (training
  // checkpoints, tools) — only the serve load path promises O(header).
  const std::string source = R"cc(
util::Status Load(util::BinaryReader* reader) {
  auto embeddings = graph::EmbeddingStore::ReadFrom(reader);
  return util::OkStatus();
}
)cc";
  EXPECT_TRUE(LintSource("src/graph/checkpoint.cc", source).empty());
}

TEST(LintTest, SnapshotFullCopyHonorsAllowEscape) {
  const std::string source = R"cc(
util::Status LoadV1(util::BinaryReader* reader) {
  // v1 has no offset table, the copy is the format's cost:
  auto embeddings = graph::EmbeddingStore::ReadFrom(reader);  // imr-lint: allow(snapshot-full-copy)
  return util::OkStatus();
}
)cc";
  EXPECT_TRUE(LintSource("src/serve/v1_loader.cc", source).empty());
}

TEST(LintTest, RawStringLiteralContentsAreBlanked) {
  // without raw-string handling the embedded quote would end the literal
  // early and the fixture code would leak into rule matching
  const std::string source =
      "namespace imr {\n"
      "const char* kFixture = R\"inner(\n"
      "  const char* s = \"quote\";\n"
      "  void Bad() { throw 1; }\n"
      ")inner\";\n"
      "}  // namespace imr\n";
  EXPECT_TRUE(LintSource("src/util/fixture.cc", source).empty());
}

}  // namespace
}  // namespace imr::lint
