#include <gtest/gtest.h>

#include <set>

#include "kg/knowledge_graph.h"
#include "kg/types.h"

namespace imr::kg {
namespace {

TEST(TypesTest, ThirtyEightUniqueCoarseTypes) {
  const auto& names = CoarseTypeNames();
  EXPECT_EQ(static_cast<int>(names.size()), kNumCoarseTypes);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(TypesTest, LookupRoundTrip) {
  EXPECT_EQ(CoarseTypeId("person"), 0);
  EXPECT_EQ(CoarseTypeNames()[static_cast<size_t>(CoarseTypeId("location"))],
            "location");
  EXPECT_EQ(CoarseTypeId("not_a_type"), -1);
}

class KnowledgeGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_.AddRelation("NA");
    located_in_ = graph_.AddRelation("/location/contains",
                                     CoarseTypeId("organization"),
                                     CoarseTypeId("location"));
    uw_ = graph_.AddEntity("university_of_washington",
                           {CoarseTypeId("organization"),
                            CoarseTypeId("education")});
    seattle_ = graph_.AddEntity("seattle", {CoarseTypeId("location")});
    nyc_ = graph_.AddEntity("new_york_city", {CoarseTypeId("location")});
  }

  KnowledgeGraph graph_;
  int located_in_ = -1;
  EntityId uw_ = -1, seattle_ = -1, nyc_ = -1;
};

TEST_F(KnowledgeGraphTest, EntityAndRelationLookup) {
  EXPECT_EQ(graph_.num_entities(), 3);
  EXPECT_EQ(graph_.num_relations(), 2);
  auto found = graph_.FindEntity("seattle");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, seattle_);
  EXPECT_FALSE(graph_.FindEntity("atlantis").ok());
  auto rel = graph_.FindRelation("/location/contains");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(*rel, located_in_);
}

TEST_F(KnowledgeGraphTest, TriplesAndPairRelation) {
  graph_.AddTriple(uw_, located_in_, seattle_);
  EXPECT_EQ(graph_.PairRelation(uw_, seattle_), located_in_);
  EXPECT_EQ(graph_.PairRelation(uw_, nyc_), kNaRelation);
  EXPECT_TRUE(graph_.HasTriple(uw_, located_in_, seattle_));
  EXPECT_FALSE(graph_.HasTriple(uw_, located_in_, nyc_));
  EXPECT_EQ(graph_.triples().size(), 1u);
  // Duplicate ignored.
  graph_.AddTriple(uw_, located_in_, seattle_);
  EXPECT_EQ(graph_.triples().size(), 1u);
}

TEST_F(KnowledgeGraphTest, TypeCompatibility) {
  EXPECT_TRUE(graph_.TypeCompatible(uw_, located_in_, seattle_));
  // seattle is not an organization, so it cannot be the head.
  EXPECT_FALSE(graph_.TypeCompatible(seattle_, located_in_, uw_));
  // NA has no constraints.
  EXPECT_TRUE(graph_.TypeCompatible(seattle_, kNaRelation, uw_));
}

TEST_F(KnowledgeGraphTest, MultiTypedEntityMatchesAnyOfItsTypes) {
  const int education = CoarseTypeId("education");
  const int rel = graph_.AddRelation("/education/institution", education,
                                     CoarseTypeId("location"));
  EXPECT_TRUE(graph_.TypeCompatible(uw_, rel, seattle_));
}

}  // namespace
}  // namespace imr::kg
