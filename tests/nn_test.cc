#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.h"
#include "nn/encoders.h"
#include "nn/gradcheck.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace imr::nn {
namespace {

using tensor::Tensor;

EncoderConfig SmallConfig() {
  EncoderConfig config;
  config.vocab_size = 20;
  config.word_dim = 6;
  config.position_dim = 2;
  config.max_position = 10;
  config.window = 3;
  config.filters = 4;
  config.dropout = 0.0f;  // deterministic for gradient checks
  return config;
}

EncoderInput SmallInput() {
  EncoderInput input;
  input.word_ids = {3, 7, 1, 12, 5, 0};
  input.head_offsets = {10, 11, 12, 13, 14, 15};
  input.tail_offsets = {6, 7, 8, 9, 10, 11};
  input.head_index = 0;
  input.tail_index = 4;
  return input;
}

TEST(LinearTest, ShapesAndForward) {
  util::Rng rng(1);
  Linear layer(3, 2, &rng);
  EXPECT_EQ(layer.ParameterCount(), 3u * 2u + 2u);
  Tensor x = Tensor::FromData({2, 3}, {1, 0, 0, 0, 1, 0});
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 2}));
  // Row 0 of y equals row 0 of W (+ zero bias).
  EXPECT_FLOAT_EQ(y.at(0, 0), layer.weight().at(0, 0));
  Tensor v = Tensor::FromData({3}, {1, 1, 1});
  Tensor yv = layer.Forward(v);
  EXPECT_EQ(yv.rank(), 1);
  EXPECT_EQ(yv.size(), 2u);
}

TEST(LinearTest, GradCheck) {
  util::Rng rng(2);
  Linear layer(4, 3, &rng);
  Tensor x = NormalInit({2, 4}, 1.0f, &rng);
  auto result = CheckModuleGradients(&layer, [&] {
    return tensor::Sum(tensor::Tanh(layer.Forward(x)));
  });
  EXPECT_LT(result.max_abs_diff, 1e-2) << result.worst_parameter;
}

TEST(EmbeddingTest, LookupAndSetWeights) {
  util::Rng rng(3);
  Embedding emb(5, 3, &rng);
  Tensor rows = emb.Forward({4, 0, 4});
  EXPECT_EQ(rows.shape(), (std::vector<int>{3, 3}));
  EXPECT_FLOAT_EQ(rows.at(0, 1), rows.at(2, 1));  // same row twice

  std::vector<float> table(15, 0.5f);
  ASSERT_TRUE(emb.SetWeights(table).ok());
  EXPECT_FLOAT_EQ(emb.Forward({2}).at(0, 0), 0.5f);
  EXPECT_FALSE(emb.SetWeights({1.0f}).ok());
}

TEST(EmbeddingTest, GradAccumulatesOnRepeatedIndex) {
  util::Rng rng(4);
  Embedding emb(4, 2, &rng);
  Tensor rows = emb.Forward({1, 1});
  tensor::Sum(rows).Backward();
  const auto& grad = emb.table().grad();
  EXPECT_FLOAT_EQ(grad[1 * 2 + 0], 2.0f);
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
}

TEST(ModuleTest, ParameterNamesArePrefixed) {
  util::Rng rng(5);
  PcnnEncoder encoder(SmallConfig(), &rng);
  bool found_word_table = false;
  for (const auto& p : encoder.Parameters()) {
    if (p.name == "embedder.word.table") found_word_table = true;
  }
  EXPECT_TRUE(found_word_table);
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  util::Rng rng(6);
  Linear a(3, 2, &rng), b(3, 2, &rng);
  const std::string path = "/tmp/imr_nn_params.bin";
  ASSERT_TRUE(a.SaveParameters(path).ok());
  ASSERT_TRUE(b.LoadParameters(path).ok());
  EXPECT_EQ(a.weight().data(), b.weight().data());
  Embedding wrong(2, 2, &rng);
  EXPECT_FALSE(wrong.LoadParameters(path).ok());
  std::remove(path.c_str());
}

TEST(PcnnEncoderTest, OutputShapeAndGradCheck) {
  util::Rng rng(7);
  PcnnEncoder encoder(SmallConfig(), &rng);
  EncoderInput input = SmallInput();
  Tensor repr = encoder.Encode(input, &rng);
  EXPECT_EQ(repr.rank(), 1);
  EXPECT_EQ(repr.size(), static_cast<size_t>(encoder.output_dim()));
  EXPECT_EQ(encoder.output_dim(), 12);

  auto result = CheckModuleGradients(&encoder, [&] {
    Tensor out = encoder.Encode(input, &rng);
    return tensor::Sum(tensor::Mul(out, out));
  });
  EXPECT_LT(result.max_abs_diff, 2e-2)
      << result.worst_parameter << "[" << result.worst_index << "]";
}

TEST(CnnEncoderTest, OutputShapeAndGradCheck) {
  util::Rng rng(8);
  CnnEncoder encoder(SmallConfig(), &rng);
  EncoderInput input = SmallInput();
  Tensor repr = encoder.Encode(input, &rng);
  EXPECT_EQ(repr.size(), 4u);

  auto result = CheckModuleGradients(&encoder, [&] {
    Tensor out = encoder.Encode(input, &rng);
    return tensor::Sum(tensor::Mul(out, out));
  });
  EXPECT_LT(result.max_abs_diff, 2e-2) << result.worst_parameter;
}

TEST(GruEncoderTest, OutputShapeAndGradCheck) {
  util::Rng rng(9);
  GruEncoder encoder(SmallConfig(), /*word_attention=*/false, &rng);
  EncoderInput input = SmallInput();
  Tensor repr = encoder.Encode(input, &rng);
  EXPECT_EQ(repr.size(), static_cast<size_t>(encoder.output_dim()));

  auto result = CheckModuleGradients(&encoder, [&] {
    Tensor out = encoder.Encode(input, &rng);
    return tensor::Sum(tensor::Mul(out, out));
  });
  EXPECT_LT(result.max_abs_diff, 2e-2) << result.worst_parameter;
}

TEST(GruEncoderTest, WordAttentionGradCheck) {
  util::Rng rng(10);
  GruEncoder encoder(SmallConfig(), /*word_attention=*/true, &rng);
  EncoderInput input = SmallInput();
  auto result = CheckModuleGradients(&encoder, [&] {
    Tensor out = encoder.Encode(input, &rng);
    return tensor::Sum(tensor::Mul(out, out));
  });
  EXPECT_LT(result.max_abs_diff, 2e-2) << result.worst_parameter;
}

TEST(EncoderFactoryTest, MakesAllKinds) {
  util::Rng rng(11);
  for (const char* kind : {"pcnn", "cnn", "gru", "bgwa"}) {
    auto encoder = MakeEncoder(kind, SmallConfig(), &rng);
    ASSERT_NE(encoder, nullptr) << kind;
    Tensor repr = encoder->Encode(SmallInput(), &rng);
    EXPECT_EQ(repr.size(), static_cast<size_t>(encoder->output_dim()));
  }
  EXPECT_EQ(MakeEncoder("bogus", SmallConfig(), &rng), nullptr);
}

TEST(SelectiveAttentionTest, WeightsOnSimplex) {
  util::Rng rng(12);
  SelectiveAttention attention(6, 3, &rng);
  Tensor x = NormalInit({4, 6}, 1.0f, &rng);
  Tensor alpha = attention.Weights(x, 1);
  ASSERT_EQ(alpha.size(), 4u);
  float sum = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE(alpha.at(i), 0.0f);
    sum += alpha.at(i);
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(SelectiveAttentionTest, SingleSentenceBagIsIdentity) {
  util::Rng rng(13);
  SelectiveAttention attention(5, 2, &rng);
  Tensor x = NormalInit({1, 5}, 1.0f, &rng);
  Tensor bag = attention.BagRepresentation(x, 0);
  for (int c = 0; c < 5; ++c) EXPECT_NEAR(bag.at(c), x.at(0, c), 1e-6);
}

TEST(SelectiveAttentionTest, GradCheck) {
  util::Rng rng(14);
  SelectiveAttention attention(4, 2, &rng);
  Tensor x = NormalInit({3, 4}, 1.0f, &rng);
  auto result = CheckModuleGradients(&attention, [&] {
    Tensor bag = attention.BagRepresentation(x, 1);
    return tensor::Sum(tensor::Mul(bag, bag));
  });
  EXPECT_LT(result.max_abs_diff, 1e-2) << result.worst_parameter;
}

// A 2-layer MLP on a toy problem must fit it with each optimizer.
class ToyProblem : public Module {
 public:
  explicit ToyProblem(util::Rng* rng) : l1_(2, 8, rng), l2_(8, 2, rng) {
    RegisterChild("l1", &l1_);
    RegisterChild("l2", &l2_);
  }
  Tensor Loss() {
    // XOR-ish: four points, two classes.
    Tensor x = Tensor::FromData({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
    Tensor h = tensor::Tanh(l1_.Forward(x));
    Tensor logits = l2_.Forward(h);
    return tensor::CrossEntropyLoss(logits, {0, 1, 1, 0});
  }
  Linear l1_, l2_;
};

TEST(OptimizerTest, SgdFitsToyProblem) {
  util::Rng rng(15);
  ToyProblem model(&rng);
  Sgd opt(&model, 0.5f);
  float first_loss = model.Loss().item();
  for (int i = 0; i < 300; ++i) {
    model.ZeroGrad();
    model.Loss().Backward();
    opt.Step();
  }
  EXPECT_LT(model.Loss().item(), first_loss * 0.2f);
  EXPECT_LT(model.Loss().item(), 0.2f);
}

TEST(OptimizerTest, AdagradFitsToyProblem) {
  util::Rng rng(16);
  ToyProblem model(&rng);
  Adagrad opt(&model, 0.3f);
  for (int i = 0; i < 300; ++i) {
    model.ZeroGrad();
    model.Loss().Backward();
    opt.Step();
  }
  EXPECT_LT(model.Loss().item(), 0.2f);
}

TEST(OptimizerTest, AdamFitsToyProblem) {
  util::Rng rng(17);
  ToyProblem model(&rng);
  Adam opt(&model, 0.05f);
  for (int i = 0; i < 300; ++i) {
    model.ZeroGrad();
    model.Loss().Backward();
    opt.Step();
  }
  EXPECT_LT(model.Loss().item(), 0.2f);
}

TEST(OptimizerTest, SgdClipNormLimitsUpdate) {
  util::Rng rng(18);
  Linear layer(2, 2, &rng);
  const std::vector<float> before = layer.weight().data();
  // Gigantic loss -> gigantic gradient; clipping must bound the step.
  Tensor x = Tensor::FromData({1, 2}, {1e4f, 1e4f});
  Tensor loss = tensor::Sum(layer.Forward(x));
  layer.ZeroGrad();
  loss.Backward();
  Sgd opt(&layer, 0.1f, 0.0f, /*clip_norm=*/1.0f);
  opt.Step();
  double moved = 0;
  for (size_t i = 0; i < before.size(); ++i)
    moved += std::abs(layer.weight().data()[i] - before[i]);
  EXPECT_LT(moved, 0.5);  // lr * clip_norm bounds total movement
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  util::Rng rng(19);
  Linear layer(2, 2, &rng);
  double norm_before = 0;
  for (float v : layer.weight().data()) norm_before += std::abs(v);
  Sgd opt(&layer, 0.1f, /*weight_decay=*/0.5f);
  // No gradient, so the only effect is the decay.
  layer.ZeroGrad();
  tensor::Sum(tensor::Scale(layer.Forward(Tensor::Zeros({1, 2})), 0.0f))
      .Backward();
  opt.Step();
  double norm_after = 0;
  for (float v : layer.weight().data()) norm_after += std::abs(v);
  EXPECT_LT(norm_after, norm_before);
}

TEST(ModuleTest, TrainingFlagPropagates) {
  util::Rng rng(20);
  PcnnEncoder encoder(SmallConfig(), &rng);
  encoder.SetTraining(false);
  EXPECT_FALSE(encoder.training());
}

// Dropout behaves differently in train and eval; with p=0.5 and training on,
// some outputs should be exactly zero.
TEST(EncoderDropoutTest, TrainingDropsValues) {
  util::Rng rng(21);
  EncoderConfig config = SmallConfig();
  config.dropout = 0.5f;
  config.filters = 32;
  PcnnEncoder encoder(config, &rng);
  EncoderInput input = SmallInput();

  encoder.SetTraining(true);
  Tensor train_out = encoder.Encode(input, &rng);
  int zeros = 0;
  for (float v : train_out.data()) zeros += (v == 0.0f);
  EXPECT_GT(zeros, 10);

  encoder.SetTraining(false);
  Tensor eval_out = encoder.Encode(input, &rng);
  int eval_zeros = 0;
  for (float v : eval_out.data()) eval_zeros += (v == 0.0f);
  EXPECT_LT(eval_zeros, zeros);
}

}  // namespace
}  // namespace imr::nn
