// Buffer-pool behaviour: bucket reuse and counters, the disabled-guard
// bypass, bit-identity of pooled vs unpooled execution, EnsureGrad storage
// stability, and the headline property the pool exists for — a warmed-up
// training step and a cached serve Predict run with ZERO pool misses. The
// final test migrates buffers across threads for TSan coverage.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "datagen/presets.h"
#include "graph/line.h"
#include "graph/proximity_graph.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "re/bag_dataset.h"
#include "re/pa_model.h"
#include "re/trainer.h"
#include "serve/inference_engine.h"
#include "serve/snapshot.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace imr {
namespace {

using tensor::PoolStats;
using tensor::ResetPoolStats;
using tensor::Tensor;
using tensor::internal::AcquireBuffer;
using tensor::internal::ReleaseBuffer;
using tensor::internal::TrimThreadPool;

TEST(BufferPoolTest, BucketReuseAndCounters) {
  TrimThreadPool();  // start from an empty pool so hit/miss is deterministic
  ResetPoolStats();

  std::vector<float> a = AcquireBuffer(100);  // empty pool: miss
  EXPECT_EQ(a.size(), 100u);
  EXPECT_GE(a.capacity(), 128u);  // reserved to the full size class
  const float* storage = a.data();
  ReleaseBuffer(std::move(a));

  // 120 rounds up to the same 128 size class, so the released buffer
  // serves it.
  std::vector<float> b = AcquireBuffer(120);
  EXPECT_EQ(b.size(), 120u);
  EXPECT_EQ(b.data(), storage);

  // 129 needs the next class up: another miss.
  std::vector<float> c = AcquireBuffer(129);

  tensor::PoolStatsSnapshot stats = PoolStats();
  EXPECT_EQ(stats.buffer_hits, 1u);
  EXPECT_EQ(stats.buffer_misses, 2u);

  ReleaseBuffer(std::move(b));
  ReleaseBuffer(std::move(c));
  EXPECT_GE(PoolStats().pooled_buffers, 2u);
}

TEST(BufferPoolTest, AcquireBufferFillInitializes) {
  // Recycled storage holds stale floats; Fill must overwrite every element.
  std::vector<float> dirty = AcquireBuffer(64);
  for (float& v : dirty) v = 123.0f;
  ReleaseBuffer(std::move(dirty));
  std::vector<float> filled = tensor::internal::AcquireBufferFill(64, 2.5f);
  for (float v : filled) EXPECT_EQ(v, 2.5f);
  ReleaseBuffer(std::move(filled));
}

TEST(BufferPoolTest, DisabledGuardBypassesPool) {
  TrimThreadPool();
  ResetPoolStats();
  EXPECT_TRUE(tensor::PoolEnabled());
  {
    tensor::PoolDisabledGuard guard;
    EXPECT_FALSE(tensor::PoolEnabled());
    std::vector<float> buf = AcquireBuffer(64);
    EXPECT_EQ(buf.size(), 64u);
    for (float v : buf) EXPECT_EQ(v, 0.0f);  // disabled path zero-inits
    ReleaseBuffer(std::move(buf));
  }
  EXPECT_TRUE(tensor::PoolEnabled());
  tensor::PoolStatsSnapshot stats = PoolStats();
  EXPECT_EQ(stats.buffer_hits, 0u);
  EXPECT_EQ(stats.buffer_misses, 0u);
  EXPECT_EQ(stats.pooled_buffers, 0u);  // nothing was cached
}

TEST(BufferPoolTest, PooledVsUnpooledBitIdentical) {
  util::Rng rng(17);
  nn::Linear layer(8, 5, &rng);
  Tensor x = nn::NormalInit({4, 8}, 1.0f, &rng);
  const std::vector<int> labels = {0, 2, 4, 1};

  auto run = [&] {
    layer.ZeroGrad();
    Tensor loss = tensor::CrossEntropyLoss(layer.ForwardTanh(x), labels);
    loss.Backward();
    struct Result {
      float loss;
      std::vector<float> gw, gb;
    };
    return Result{loss.item(), layer.weight().grad(), layer.bias().grad()};
  };

  run();  // warm the pool so the pooled run reuses recycled storage
  const auto pooled = run();
  tensor::PoolDisabledGuard guard;
  const auto unpooled = run();
  EXPECT_EQ(pooled.loss, unpooled.loss);
  EXPECT_EQ(pooled.gw, unpooled.gw);
  EXPECT_EQ(pooled.gb, unpooled.gb);
}

TEST(BufferPoolTest, EnsureGradKeepsStorageAcrossSteps) {
  Tensor x = Tensor::FromData({16}, std::vector<float>(16, 0.5f),
                              /*requires_grad=*/true);
  tensor::Sum(tensor::Mul(x, x)).Backward();
  ASSERT_EQ(x.grad().size(), 16u);
  const float* storage = x.grad().data();
  x.ZeroGrad();
  tensor::Sum(tensor::Mul(x, x)).Backward();
  // The second backward must reuse the zeroed buffer, not reallocate.
  EXPECT_EQ(x.grad().data(), storage);
}

// A small but representative model: embedding lookup, fused affine+tanh,
// dropout, linear head, fused cross-entropy — every hot op family.
struct TinyModel : nn::Module {
  explicit TinyModel(util::Rng* rng)
      : embed(50, 16, rng), hidden(16, 12, rng), out(12, 4, rng) {
    RegisterChild("embed", &embed);
    RegisterChild("hidden", &hidden);
    RegisterChild("out", &out);
  }
  nn::Embedding embed;
  nn::Linear hidden;
  nn::Linear out;
};

TEST(BufferPoolTest, ZeroMissSteadyStateTrainingStep) {
  const int saved_threads = util::GlobalThreads();
  util::SetGlobalThreads(1);  // single thread: one pool, deterministic reuse
  util::Rng rng(7);
  TinyModel model(&rng);
  nn::Sgd opt(&model, 0.1f);
  util::Rng dropout_rng(99);
  const std::vector<int> indices = {1, 4, 7, 2, 9, 30};
  const std::vector<int> labels = {0, 2, 1, 3, 0, 2};

  auto step = [&] {
    Tensor emb = model.embed.Forward(indices);
    Tensor h = model.hidden.ForwardTanh(emb);
    Tensor d = tensor::Dropout(h, 0.25f, &dropout_rng, /*training=*/true);
    Tensor logits = model.out.Forward(d);
    Tensor loss = tensor::CrossEntropyLoss(logits, labels);
    loss.Backward();
    opt.Step();
  };

  for (int i = 0; i < 3; ++i) step();  // warmup populates the pool
  ResetPoolStats();
  for (int i = 0; i < 5; ++i) step();
  tensor::PoolStatsSnapshot stats = PoolStats();
  EXPECT_EQ(stats.total_misses(), 0u)
      << "buffer_misses=" << stats.buffer_misses
      << " node_misses=" << stats.node_misses;
  EXPECT_GT(stats.total_hits(), 0u);
  util::SetGlobalThreads(saved_threads);
}

TEST(BufferPoolTest, ZeroMissCachedServePredict) {
  const int saved_threads = util::GlobalThreads();
  util::SetGlobalThreads(1);

  // A slimmed-down version of the serve_test pipeline: train briefly, save
  // a snapshot, and serve it. Prediction quality is irrelevant here — only
  // the allocation behaviour of the warmed-up Predict path.
  datagen::PresetOptions preset;
  preset.scale = 0.5;
  preset.seed = 7;
  datagen::SyntheticDataset dataset = datagen::MakeGdsLike(preset);
  re::BagDatasetOptions bag_options;
  bag_options.max_sentence_length = 40;
  bag_options.max_position = 20;
  re::BagDataset bags =
      re::BagDataset::Build(dataset.world.graph, dataset.corpus.train,
                            dataset.corpus.test, bag_options);
  graph::ProximityGraph proximity(dataset.world.graph.num_entities());
  proximity.AddCorpus(dataset.unlabeled.sentences);
  proximity.Finalize(2);
  graph::LineConfig line;
  line.dim = 16;
  line.samples_per_edge = 60;
  graph::EmbeddingStore embeddings = graph::TrainLine(proximity, line);
  ASSERT_TRUE(bags.AttachMutualRelations(embeddings).ok());

  re::PaModelConfig config;
  config.num_relations = bags.num_relations();
  config.encoder = "pcnn";
  config.aggregation = re::Aggregation::kAttention;
  config.use_mutual_relation = true;
  config.mutual_relation_dim = embeddings.dim();
  config.encoder_config.vocab_size = bags.vocabulary().size();
  config.encoder_config.word_dim = 8;
  config.encoder_config.position_dim = 3;
  config.encoder_config.max_position = 20;
  config.encoder_config.filters = 8;

  util::Rng rng(1);
  re::PaModel model(config, &rng);
  re::TrainerConfig trainer_config;
  trainer_config.epochs = 1;
  trainer_config.batch_size = 32;
  trainer_config.optimizer = "sgd";
  trainer_config.learning_rate = 0.1f;
  trainer_config.seed = 3;
  re::Trainer trainer(&model, trainer_config);
  trainer.Train(bags.train_bags());
  model.SetTraining(false);

  const std::string path =
      testing::TempDir() + "/imr_buffer_pool_test.imrs";
  ASSERT_TRUE(serve::SaveSnapshot(model, bags.vocabulary(), embeddings,
                                  dataset.world.graph, bag_options,
                                  /*trained_steps=*/1, "buffer_pool_test",
                                  path)
                  .ok());

  auto engine_or = serve::InferenceEngine::Open(path);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().message();
  std::unique_ptr<serve::InferenceEngine> engine =
      std::move(engine_or).value();

  // Build one query from a held-out bag that has test-corpus sentences.
  serve::Query query;
  for (const re::Bag& bag : bags.test_bags()) {
    std::vector<text::Sentence> sentences;
    for (const text::LabeledSentence& labeled : dataset.corpus.test) {
      if (labeled.sentence.head_entity == bag.head &&
          labeled.sentence.tail_entity == bag.tail) {
        sentences.push_back(labeled.sentence);
        if (sentences.size() >= 4) break;
      }
    }
    if (sentences.empty()) continue;
    query.head = bag.head;
    query.tail = bag.tail;
    query.sentences = std::move(sentences);
    break;
  }
  ASSERT_GE(query.head, 0);

  // Two warmup calls: the first misses (cold pool + cold MR cache), the
  // second fills any remaining gaps. After that a cached Predict must be
  // fully served from recycled storage.
  ASSERT_TRUE(engine->Predict(query).ok());
  ASSERT_TRUE(engine->Predict(query).ok());
  ResetPoolStats();
  auto prediction = engine->Predict(query);
  ASSERT_TRUE(prediction.ok());
  EXPECT_TRUE(prediction.value().mr_cache_hit);
  tensor::PoolStatsSnapshot stats = PoolStats();
  EXPECT_EQ(stats.total_misses(), 0u)
      << "buffer_misses=" << stats.buffer_misses
      << " node_misses=" << stats.node_misses;
  EXPECT_GT(stats.total_hits(), 0u);

  // The engine surfaces the same counters through Stats().
  serve::EngineStats engine_stats = engine->Stats();
  EXPECT_EQ(engine_stats.pool_misses, stats.total_misses());
  std::remove(path.c_str());
  util::SetGlobalThreads(saved_threads);
}

TEST(BufferPoolTest, CrossThreadMigrationIsSafe) {
  // Buffers acquired on worker threads and released on the main thread (and
  // vice versa) must be safe under TSan; counters stay readable throughout.
  const int saved_threads = util::GlobalThreads();
  util::SetGlobalThreads(4);
  constexpr int64_t kChunks = 8;
  std::vector<std::vector<float>> migrated(kChunks);
  std::vector<float> sums(kChunks, 0.0f);
  util::GlobalPool().ParallelForChunks(
      0, kChunks, 1, [&](int64_t lo, int64_t, int64_t chunk) {
        // Tensor work on the worker: allocates from and releases to the
        // worker's own pool.
        Tensor x = Tensor::Full({8, 8}, static_cast<float>(lo + 1),
                                /*requires_grad=*/true);
        Tensor w = Tensor::Full({8, 8}, 0.25f);
        tensor::Sum(tensor::MatMul(x, w)).Backward();
        sums[static_cast<size_t>(chunk)] = x.grad()[0];
        // And a raw buffer that deliberately outlives the worker scope.
        migrated[static_cast<size_t>(chunk)] = AcquireBuffer(256);
      });
  for (int64_t c = 0; c < kChunks; ++c) {
    EXPECT_EQ(sums[static_cast<size_t>(c)], 2.0f);  // sum of a 0.25 row of 8
    ReleaseBuffer(std::move(migrated[static_cast<size_t>(c)]));
  }
  tensor::PoolStatsSnapshot stats = PoolStats();
  EXPECT_GT(stats.buffer_hits + stats.buffer_misses, 0u);
  TrimThreadPool();
  util::SetGlobalThreads(saved_threads);
}

}  // namespace
}  // namespace imr
