#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "datagen/presets.h"
#include "graph/line.h"
#include "graph/proximity_graph.h"
#include "nn/gradcheck.h"
#include "re/bag_dataset.h"
#include "re/cnn_rl.h"
#include "re/config.h"
#include "re/features.h"
#include "re/mimlre.h"
#include "re/mintz.h"
#include "re/multir.h"
#include "re/pa_model.h"
#include "re/trainer.h"

namespace imr::re {
namespace {

// A tiny dataset shared by the model tests.
struct Fixture {
  Fixture() {
    datagen::PresetOptions options;
    options.scale = 0.5;
    dataset = std::make_unique<datagen::SyntheticDataset>(
        datagen::MakeGdsLike(options));
    BagDatasetOptions bag_options;
    bag_options.max_sentence_length = 40;
    bag_options.max_position = 20;
    bags = std::make_unique<BagDataset>(
        BagDataset::Build(dataset->world.graph, dataset->corpus.train,
                          dataset->corpus.test, bag_options));
  }

  PaModelConfig SmallModelConfig(const std::string& encoder,
                                 Aggregation aggregation, bool use_mr,
                                 bool use_type) const {
    PaModelConfig config;
    config.num_relations = bags->num_relations();
    config.encoder = encoder;
    config.aggregation = aggregation;
    config.use_mutual_relation = use_mr;
    config.use_entity_type = use_type;
    config.mutual_relation_dim = 16;
    config.type_dim = 6;
    config.encoder_config.vocab_size = bags->vocabulary().size();
    config.encoder_config.word_dim = 16;
    config.encoder_config.position_dim = 3;
    config.encoder_config.max_position = 20;
    config.encoder_config.filters = 24;
    config.encoder_config.dropout = 0.0f;
    return config;
  }

  void AttachMr() {
    graph::ProximityGraph proximity(dataset->world.graph.num_entities());
    proximity.AddCorpus(dataset->unlabeled.sentences);
    proximity.Finalize(2);
    graph::LineConfig line;
    line.dim = 16;
    line.samples_per_edge = 150;
    auto store = graph::TrainLine(proximity, line);
    ASSERT_TRUE(bags->AttachMutualRelations(store).ok());
  }

  std::unique_ptr<datagen::SyntheticDataset> dataset;
  std::unique_ptr<BagDataset> bags;
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

TEST(BagDatasetTest, GroupsByPairAndKeepsLabels) {
  Fixture& f = SharedFixture();
  const auto& train = f.bags->train_bags();
  ASSERT_FALSE(train.empty());
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const Bag& bag : train) {
    EXPECT_FALSE(bag.sentences.empty());
    EXPECT_FALSE(bag.head_types.empty());
    EXPECT_FALSE(bag.tail_types.empty());
    EXPECT_TRUE(pairs.insert({bag.head, bag.tail}).second)
        << "duplicate bag for a pair";
    EXPECT_EQ(bag.relation,
              f.dataset->world.graph.PairRelation(bag.head, bag.tail));
  }
}

TEST(BagDatasetTest, EncoderInputsWellFormed) {
  Fixture& f = SharedFixture();
  for (const Bag& bag : f.bags->train_bags()) {
    for (const nn::EncoderInput& input : bag.sentences) {
      ASSERT_FALSE(input.word_ids.empty());
      EXPECT_LE(input.word_ids.size(), 40u);
      EXPECT_EQ(input.word_ids.size(), input.head_offsets.size());
      EXPECT_EQ(input.word_ids.size(), input.tail_offsets.size());
      EXPECT_GE(input.head_index, 0);
      EXPECT_LT(static_cast<size_t>(input.head_index),
                input.word_ids.size());
      for (int id : input.word_ids) {
        EXPECT_GE(id, 0);
        EXPECT_LT(id, f.bags->vocabulary().size());
      }
      for (int id : input.head_offsets) {
        EXPECT_GE(id, 0);
        EXPECT_LE(id, 40);
      }
    }
  }
}

TEST(BagDatasetTest, EntityBlindingUsesPlaceholders) {
  Fixture& f = SharedFixture();
  const int head_id = f.bags->vocabulary().Id(kHeadPlaceholder);
  const int tail_id = f.bags->vocabulary().Id(kTailPlaceholder);
  ASSERT_NE(head_id, text::Vocabulary::kUnkId);
  ASSERT_NE(tail_id, text::Vocabulary::kUnkId);
  for (const Bag& bag : f.bags->test_bags()) {
    for (const auto& input : bag.sentences) {
      EXPECT_EQ(input.word_ids[static_cast<size_t>(input.head_index)],
                head_id);
      EXPECT_EQ(input.word_ids[static_cast<size_t>(input.tail_index)],
                tail_id);
    }
  }
}

TEST(BagDatasetTest, WithoutBlindingTestEntitiesAreUnk) {
  Fixture& f = SharedFixture();
  BagDatasetOptions options;
  options.max_sentence_length = 40;
  options.max_position = 20;
  options.blind_entities = false;
  auto raw = BagDataset::Build(f.dataset->world.graph,
                               f.dataset->corpus.train,
                               f.dataset->corpus.test, options);
  // Entity names unique to test pairs cannot be in the train vocabulary.
  int unks = 0;
  for (const Bag& bag : raw.test_bags()) {
    for (const auto& input : bag.sentences) {
      for (int id : input.word_ids) unks += (id == text::Vocabulary::kUnkId);
    }
  }
  EXPECT_GT(unks, 0);
}

TEST(BagDatasetTest, MakeEncoderInputTruncatesLongSentence) {
  text::Sentence sentence;
  for (int i = 0; i < 100; ++i)
    sentence.tokens.push_back("w" + std::to_string(i));
  sentence.head_index = 50;
  sentence.tail_index = 55;
  text::Vocabulary vocab;
  vocab.Count("w50");
  vocab.Freeze();
  BagDatasetOptions options;
  options.max_sentence_length = 20;
  options.max_position = 10;
  options.blind_entities = false;
  nn::EncoderInput input = MakeEncoderInput(sentence, vocab, options);
  EXPECT_EQ(input.word_ids.size(), 20u);
  EXPECT_EQ(input.word_ids[static_cast<size_t>(input.head_index)],
            vocab.Id("w50"));
}

TEST(BagDatasetTest, AttachMutualRelationsFillsVectors) {
  Fixture& f = SharedFixture();
  f.AttachMr();
  for (const Bag& bag : f.bags->train_bags()) {
    ASSERT_EQ(bag.mutual_relation.size(), 16u);
  }
}

TEST(PaModelTest, LogitShapesForAllVariants) {
  Fixture& f = SharedFixture();
  f.AttachMr();
  util::Rng rng(71);
  const Bag& bag = f.bags->train_bags().front();
  for (bool use_mr : {false, true}) {
    for (bool use_type : {false, true}) {
      PaModelConfig config = f.SmallModelConfig(
          "pcnn", Aggregation::kAttention, use_mr, use_type);
      PaModel model(config, &rng);
      tensor::Tensor logits = model.BagLogits(bag, bag.relation, &rng);
      EXPECT_EQ(logits.size(),
                static_cast<size_t>(f.bags->num_relations()));
      auto probs = model.Predict(bag, &rng);
      EXPECT_EQ(probs.size(), static_cast<size_t>(f.bags->num_relations()));
      float sum = 0;
      for (float p : probs) {
        EXPECT_GE(p, 0.0f);
        sum += p;
      }
      if (config.aggregation != Aggregation::kAttention) {
        EXPECT_NEAR(sum, 1.0f, 1e-4);
      }
    }
  }
}

TEST(PaModelTest, FullFusionGradCheck) {
  Fixture& f = SharedFixture();
  f.AttachMr();
  util::Rng rng(73);
  PaModelConfig config =
      f.SmallModelConfig("cnn", Aggregation::kAttention, true, true);
  // Shrink further for the numeric check.
  config.encoder_config.word_dim = 6;
  config.encoder_config.filters = 6;
  PaModel model(config, &rng);
  const Bag& bag = f.bags->train_bags().front();
  std::vector<const Bag*> batch = {&bag};
  auto result = nn::CheckModuleGradients(
      &model, [&] { return model.BatchLoss(batch, &rng); }, 1e-2, 8);
  EXPECT_LT(result.max_abs_diff, 3e-2)
      << result.worst_parameter << "[" << result.worst_index << "]";
}

TEST(PaModelTest, AverageAndMaxAggregations) {
  Fixture& f = SharedFixture();
  util::Rng rng(79);
  for (Aggregation agg : {Aggregation::kAverage, Aggregation::kMax}) {
    PaModelConfig config = f.SmallModelConfig("pcnn", agg, false, false);
    PaModel model(config, &rng);
    const Bag& bag = f.bags->train_bags().front();
    auto probs = model.Predict(bag, &rng);
    EXPECT_EQ(probs.size(), static_cast<size_t>(f.bags->num_relations()));
  }
}

TEST(PaModelTest, FusionWeightsAreLearnable) {
  Fixture& f = SharedFixture();
  f.AttachMr();
  util::Rng rng(83);
  PaModelConfig config =
      f.SmallModelConfig("cnn", Aggregation::kAverage, true, true);
  PaModel model(config, &rng);
  EXPECT_FLOAT_EQ(model.alpha(), 0.5f);  // down-weighted init (see PaModel)
  const Bag& bag = f.bags->train_bags().front();
  model.ZeroGrad();
  model.BatchLoss({&bag}, &rng).Backward();
  // Gradients reached the fusion scalars.
  bool alpha_has_grad = false;
  for (const auto& p : model.Parameters()) {
    if (p.name == "alpha" && !p.tensor.grad().empty() &&
        p.tensor.grad()[0] != 0.0f)
      alpha_has_grad = true;
  }
  EXPECT_TRUE(alpha_has_grad);
}

TEST(FeatureExtractorTest, DeterministicAndBounded) {
  Fixture& f = SharedFixture();
  FeatureExtractor extractor(12);
  const Bag& bag = f.bags->train_bags().front();
  SparseFeatures a = extractor.BagFeatures(bag);
  SparseFeatures b = extractor.BagFeatures(bag);
  ASSERT_EQ(a.indices.size(), b.indices.size());
  for (size_t i = 0; i < a.indices.size(); ++i) {
    EXPECT_EQ(a.indices[i], b.indices[i]);
    EXPECT_LT(a.indices[i], static_cast<uint32_t>(extractor.dim()));
  }
}

TEST(FeatureExtractorTest, DifferentSentencesDiffer) {
  Fixture& f = SharedFixture();
  FeatureExtractor extractor(12);
  const auto& bags = f.bags->train_bags();
  SparseFeatures a = extractor.SentenceFeatures(bags[0].sentences[0]);
  SparseFeatures b = extractor.SentenceFeatures(bags[1].sentences[0]);
  EXPECT_NE(a.indices, b.indices);
}

// End-to-end learning: every model family must beat a uniform-random
// scorer by a wide margin on the small synthetic dataset.
double RandomBaselineAuc(const Fixture& f) {
  util::Rng rng(89);
  auto random_scorer = [&rng, &f](const Bag&) {
    std::vector<float> probs(
        static_cast<size_t>(f.bags->num_relations()));
    for (float& p : probs) p = static_cast<float>(rng.Uniform());
    return probs;
  };
  return eval::Evaluate(random_scorer, f.bags->test_bags(),
                        f.bags->num_relations())
      .auc;
}

// Uses its own larger dataset: text-only models need enough bags to prefer
// the trigger signal over memorisation (see DESIGN.md).
TEST(TrainingTest, PcnnAttLearnsSignal) {
  datagen::PresetOptions options;
  options.scale = 2.0;
  auto dataset = datagen::MakeGdsLike(options);
  BagDatasetOptions bag_options;
  bag_options.max_sentence_length = 40;
  bag_options.max_position = 20;
  auto bags = BagDataset::Build(dataset.world.graph, dataset.corpus.train,
                                dataset.corpus.test, bag_options);

  util::Rng rng(97);
  PaModelConfig config;
  config.num_relations = bags.num_relations();
  config.encoder = "pcnn";
  config.aggregation = Aggregation::kAttention;
  config.encoder_config.vocab_size = bags.vocabulary().size();
  config.encoder_config.word_dim = 16;
  config.encoder_config.position_dim = 3;
  config.encoder_config.max_position = 20;
  config.encoder_config.filters = 24;
  config.encoder_config.dropout = 0.5f;
  PaModel model(config, &rng);
  TrainerConfig trainer_config;
  trainer_config.epochs = 40;
  trainer_config.batch_size = 32;
  auto result = TrainAndEvaluate(&model, bags.train_bags(),
                                 bags.test_bags(), trainer_config);
  EXPECT_GT(result.auc, 0.5) << result.Summary();
}

TEST(TrainingTest, LossDecreasesOverEpochs) {
  Fixture& f = SharedFixture();
  util::Rng rng(101);
  PaModelConfig config =
      f.SmallModelConfig("cnn", Aggregation::kAverage, false, false);
  PaModel model(config, &rng);
  TrainerConfig trainer_config;
  trainer_config.epochs = 3;
  trainer_config.batch_size = 32;
  trainer_config.learning_rate = 0.2f;
  Trainer trainer(&model, trainer_config);
  auto history = trainer.Train(f.bags->train_bags());
  ASSERT_EQ(history.size(), 3u);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
}

TEST(TrainingTest, ParallelBatchesBitIdenticalAcrossThreadCounts) {
  // The data-parallel trainer splits each batch into a fixed number of
  // chunks whose boundaries depend only on the batch size, so every
  // thread count > 1 must yield bit-identical loss curves.
  Fixture& f = SharedFixture();
  auto run = [&f](int threads) {
    util::Rng rng(107);
    PaModelConfig config =
        f.SmallModelConfig("cnn", Aggregation::kAverage, false, false);
    PaModel model(config, &rng);
    TrainerConfig trainer_config;
    trainer_config.epochs = 2;
    trainer_config.batch_size = 32;
    trainer_config.learning_rate = 0.2f;
    trainer_config.threads = threads;
    Trainer trainer(&model, trainer_config);
    return trainer.Train(f.bags->train_bags());
  };
  auto two = run(2);
  auto four = run(4);
  ASSERT_EQ(two.size(), four.size());
  for (size_t e = 0; e < two.size(); ++e) {
    EXPECT_EQ(two[e].mean_loss, four[e].mean_loss) << "epoch " << e;
  }
}

TEST(TrainingTest, PaTmrBeatsUniformByWideMargin) {
  Fixture& f = SharedFixture();
  f.AttachMr();
  util::Rng rng(103);
  PaModelConfig config =
      f.SmallModelConfig("pcnn", Aggregation::kAttention, true, true);
  PaModel model(config, &rng);
  TrainerConfig trainer_config;
  trainer_config.epochs = 8;
  trainer_config.batch_size = 32;
  trainer_config.learning_rate = 0.3f;
  auto result = TrainAndEvaluate(&model, f.bags->train_bags(),
                                 f.bags->test_bags(), trainer_config);
  EXPECT_GT(result.auc, RandomBaselineAuc(f) + 0.2);
}

TEST(MintzTest, LearnsAboveRandom) {
  Fixture& f = SharedFixture();
  MintzConfig config;
  MintzModel model(f.bags->num_relations(), config);
  model.Train(f.bags->train_bags());
  auto result = eval::Evaluate(
      [&model](const Bag& bag) { return model.Predict(bag); },
      f.bags->test_bags(), f.bags->num_relations());
  EXPECT_GT(result.auc, RandomBaselineAuc(f) + 0.1);
}

TEST(MimlreTest, LearnsAboveRandom) {
  Fixture& f = SharedFixture();
  MimlreConfig config;
  MimlreModel model(f.bags->num_relations(), config);
  model.Train(f.bags->train_bags());
  auto result = eval::Evaluate(
      [&model](const Bag& bag) { return model.Predict(bag); },
      f.bags->test_bags(), f.bags->num_relations());
  EXPECT_GT(result.auc, RandomBaselineAuc(f) + 0.1);
  // Probabilities are a valid distribution over relations.
  auto probs = model.Predict(f.bags->test_bags().front());
  float total = 0;
  for (float p : probs) {
    EXPECT_GE(p, 0.0f);
    total += p;
  }
  EXPECT_NEAR(total, 1.0f, 1e-4);
}

TEST(MultirTest, LearnsAboveRandom) {
  Fixture& f = SharedFixture();
  MultirConfig config;
  MultirModel model(f.bags->num_relations(), config);
  model.Train(f.bags->train_bags());
  auto result = eval::Evaluate(
      [&model](const Bag& bag) { return model.Predict(bag); },
      f.bags->test_bags(), f.bags->num_relations());
  EXPECT_GT(result.auc, RandomBaselineAuc(f) + 0.1);
}

TEST(CnnRlTest, TrainsAndPredicts) {
  Fixture& f = SharedFixture();
  util::Rng rng(107);
  PaModelConfig config =
      f.SmallModelConfig("cnn", Aggregation::kAverage, false, false);
  CnnRlConfig rl_config;
  rl_config.pretrain_epochs = 1;
  rl_config.joint_epochs = 1;
  rl_config.batch_size = 32;
  CnnRlModel model(config, rl_config, &rng);
  model.Train(f.bags->train_bags());
  auto result = eval::Evaluate(
      [&model](const Bag& bag) {
        return const_cast<CnnRlModel&>(model).Predict(bag);
      },
      f.bags->test_bags(), f.bags->num_relations());
  // Smoke-level check: the dataset is tiny and the episode budget is 1+1,
  // so only require a sane, non-degenerate result here (the Table IV bench
  // exercises CNN+RL at full budget).
  EXPECT_GT(result.auc, 0.02);
  EXPECT_LE(result.auc, 1.0);
  // Selector produces valid probabilities.
  const Bag& bag = f.bags->train_bags().front();
  const float p = model.KeepProbability(bag.sentences[0]);
  EXPECT_GE(p, 0.0f);
  EXPECT_LE(p, 1.0f);
}

TEST(ConfigTest, PaperDefaultsMatchTableIII) {
  PaModelConfig config = PaperDefaults(53, 10000);
  EXPECT_EQ(config.encoder_config.word_dim, 50);
  EXPECT_EQ(config.encoder_config.position_dim, 5);
  EXPECT_EQ(config.encoder_config.window, 3);
  EXPECT_EQ(config.encoder_config.filters, 230);
  EXPECT_EQ(config.type_dim, 20);
  EXPECT_EQ(config.mutual_relation_dim, 128);
  EXPECT_FLOAT_EQ(config.encoder_config.dropout, 0.5f);
}

}  // namespace
}  // namespace imr::re
