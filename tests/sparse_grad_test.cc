// Row-sparse gradient path: touched-row bookkeeping in GatherRows'
// backward, dense-fallback transitions, sparse==dense bit-identity for all
// three optimizers (including Adam's lazy per-row catch-up), thread-count
// invariance through the ScopedGradSink merge, gradcheck with duplicate
// indices, the zero-dense-scan steady-state guarantee, and the satellite
// fixes (double beta-power Adam bias, in-place Embedding::SetWeights).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "nn/gradcheck.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace imr {
namespace {

using tensor::Tensor;

// Embedding-fronted classifier exercising the full sparse lifecycle:
// gather -> fused affine+tanh -> linear head -> cross-entropy.
struct EmbedModel : nn::Module {
  EmbedModel(int vocab, util::Rng* rng)
      : embed(vocab, 8, rng), hidden(8, 6, rng), out(6, 3, rng) {
    RegisterChild("embed", &embed);
    RegisterChild("hidden", &hidden);
    RegisterChild("out", &out);
  }
  nn::Embedding embed;
  nn::Linear hidden;
  nn::Linear out;
};

void RunStep(EmbedModel* model, const std::vector<int>& indices,
             const std::vector<int>& labels) {
  Tensor emb = model->embed.Forward(indices);
  Tensor h = model->hidden.ForwardTanh(emb);
  Tensor logits = model->out.Forward(h);
  tensor::CrossEntropyLoss(logits, labels).Backward();
}

std::vector<std::vector<float>> ParamValues(nn::Module* module) {
  std::vector<std::vector<float>> values;
  for (nn::NamedParameter& p : module->Parameters())
    values.push_back(p.tensor.data());
  return values;
}

// A varied index schedule: row 5 every step, a rotating window, and long
// gaps for high rows so Adam's lazy catch-up has real work to do.
std::vector<int> ScheduleIndices(int step, int vocab) {
  std::vector<int> indices = {5, (3 * step) % vocab, (3 * step + 1) % vocab,
                              (7 * step + 2) % vocab};
  if (step % 4 == 0) indices.push_back(vocab - 1 - (step % 3));
  return indices;
}

// Trains two identical models — one with the embedding table row-sparse
// (as constructed), one forced dense — through `make_optimizer` and
// demands bit-identical parameters after Finalize().
void ExpectSparseMatchesDense(
    const std::function<std::unique_ptr<nn::Optimizer>(nn::Module*)>&
        make_optimizer,
    int steps = 12) {
  constexpr int kVocab = 40;
  auto run = [&](bool sparse) {
    util::Rng rng(1234);  // same seed: identical initialization
    EmbedModel model(kVocab, &rng);
    if (!sparse) {
      for (nn::NamedParameter& p : model.Parameters())
        p.tensor.set_row_sparse_grad(false);
    }
    std::unique_ptr<nn::Optimizer> opt = make_optimizer(&model);
    for (int step = 0; step < steps; ++step) {
      model.ZeroGrad();
      const std::vector<int> indices = ScheduleIndices(step, kVocab);
      std::vector<int> labels(indices.size());
      for (size_t i = 0; i < labels.size(); ++i)
        labels[i] = static_cast<int>((i + step) % 3);
      RunStep(&model, indices, labels);
      opt->Step();
    }
    opt->Finalize();
    return ParamValues(&model);
  };
  const auto sparse = run(true);
  const auto dense = run(false);
  ASSERT_EQ(sparse.size(), dense.size());
  for (size_t p = 0; p < sparse.size(); ++p)
    EXPECT_EQ(sparse[p], dense[p]) << "parameter " << p;
}

TEST(SparseGradTest, GatherRowsRecordsSortedUniqueTouchedRows) {
  util::Rng rng(7);
  EmbedModel model(20, &rng);
  const Tensor& table = model.embed.table();
  ASSERT_TRUE(table.row_sparse_grad());

  RunStep(&model, {7, 3, 7, 11, 3}, {0, 1, 2, 0, 1});
  ASSERT_TRUE(table.grad_is_row_sparse());
  EXPECT_EQ(table.grad_touched_rows(), (std::vector<int>{3, 7, 11}));

  // Rows outside the touched set hold exact zeros; touched rows received
  // gradient (duplicates accumulate into one row).
  const auto& grad = table.grad();
  ASSERT_EQ(grad.size(), table.size());
  const int cols = table.cols();
  for (int r = 0; r < table.rows(); ++r) {
    bool touched = r == 3 || r == 7 || r == 11;
    float sum_abs = 0.0f;
    for (int c = 0; c < cols; ++c)
      sum_abs += std::fabs(grad[static_cast<size_t>(r) * cols + c]);
    if (touched) {
      EXPECT_GT(sum_abs, 0.0f) << "row " << r;
    } else {
      EXPECT_EQ(sum_abs, 0.0f) << "row " << r;
    }
  }

  model.ZeroGrad();
  EXPECT_TRUE(table.grad_touched_rows().empty());
  for (float g : table.grad()) EXPECT_EQ(g, 0.0f);
}

TEST(SparseGradTest, DenseWriteFallsBackUntilZeroGrad) {
  util::Rng rng(8);
  EmbedModel model(10, &rng);
  Tensor table = model.embed.table();

  RunStep(&model, {1, 2}, {0, 1});
  EXPECT_TRUE(table.grad_is_row_sparse());

  tensor::ResetSparseGradStats();
  table.mutable_grad();  // untracked dense write: fallback for the step
  EXPECT_FALSE(table.grad_is_row_sparse());
  EXPECT_TRUE(table.row_sparse_grad());  // capability is not lost
  EXPECT_EQ(tensor::SparseGradStats().dense_fallbacks, 1u);

  model.ZeroGrad();
  RunStep(&model, {1, 2}, {0, 1});
  EXPECT_TRUE(table.grad_is_row_sparse());  // recovered after ZeroGrad
}

TEST(SparseGradTest, SgdWithClipNormBitIdenticalToDense) {
  ExpectSparseMatchesDense([](nn::Module* m) {
    return std::make_unique<nn::Sgd>(m, 0.3f, /*weight_decay=*/0.0f,
                                     /*clip_norm=*/1.0f);
  });
}

TEST(SparseGradTest, SgdWeightDecayFallsBackDenseAndStaysIdentical) {
  ExpectSparseMatchesDense([](nn::Module* m) {
    return std::make_unique<nn::Sgd>(m, 0.3f, /*weight_decay=*/0.01f,
                                     /*clip_norm=*/0.0f);
  });
  // Weight decay must be counted as a dense fallback, not silently sparse.
  util::Rng rng(9);
  EmbedModel model(16, &rng);
  nn::Sgd opt(&model, 0.1f, /*weight_decay=*/0.01f);
  model.ZeroGrad();
  RunStep(&model, {1, 2, 3}, {0, 1, 2});
  tensor::ResetSparseGradStats();
  opt.Step();
  const auto stats = tensor::SparseGradStats();
  EXPECT_EQ(stats.dense_fallbacks, 1u);
  EXPECT_EQ(stats.rows_touched, stats.rows_total);
}

TEST(SparseGradTest, AdagradBitIdenticalToDense) {
  ExpectSparseMatchesDense(
      [](nn::Module* m) { return std::make_unique<nn::Adagrad>(m, 0.1f); });
}

TEST(SparseGradTest, AdamLazyCatchUpBitIdenticalToDense) {
  // The schedule leaves rows untouched for multiple steps; dense Adam
  // decays their m/v every step, sparse Adam replays the skipped decay on
  // re-touch (and Finalize() catches up never-again-touched rows).
  ExpectSparseMatchesDense(
      [](nn::Module* m) { return std::make_unique<nn::Adam>(m, 0.01f); },
      /*steps=*/17);
}

TEST(SparseGradTest, AdamFinalizeIsIdempotent) {
  util::Rng rng(10);
  EmbedModel model(12, &rng);
  nn::Adam opt(&model, 0.01f);
  for (int step = 0; step < 3; ++step) {
    model.ZeroGrad();
    RunStep(&model, {1, 2 + step}, {0, 1});
    opt.Step();
  }
  opt.Finalize();
  const auto once = ParamValues(&model);
  opt.Finalize();
  EXPECT_EQ(ParamValues(&model), once);
}

TEST(SparseGradTest, SinkMergeBitIdenticalAcrossThreadCountsAndToDense) {
  // Mirrors the trainer's data-parallel pass: a fixed chunk count, one
  // ScopedGradSink per chunk, ascending-order merge. The merged gradient
  // must be bit-identical across worker counts AND to the same pass run
  // with the embedding forced dense.
  constexpr int kVocab = 30;
  constexpr int64_t kChunks = 4;
  const std::vector<int> all_indices = {3, 9, 3, 14, 9,  22, 5, 5,
                                        1, 7, 8, 29, 14, 2,  6, 17};
  const int64_t n = static_cast<int64_t>(all_indices.size());
  const int64_t grain = (n + kChunks - 1) / kChunks;

  const int saved_threads = util::GlobalThreads();
  auto run = [&](int threads, bool sparse) {
    util::SetGlobalThreads(threads);
    util::Rng rng(77);
    EmbedModel model(kVocab, &rng);
    if (!sparse) {
      for (nn::NamedParameter& p : model.Parameters())
        p.tensor.set_row_sparse_grad(false);
    }
    model.ZeroGrad();
    std::vector<std::unique_ptr<tensor::internal::ScopedGradSink>> sinks(
        static_cast<size_t>(
            util::ThreadPool::NumChunks(0, n, grain)));
    util::GlobalPool().ParallelForChunks(
        0, n, grain, [&](int64_t lo, int64_t hi, int64_t chunk) {
          sinks[static_cast<size_t>(chunk)] =
              std::make_unique<tensor::internal::ScopedGradSink>();
          struct Guard {
            tensor::internal::ScopedGradSink* sink;
            ~Guard() { sink->Deactivate(); }
          } guard{sinks[static_cast<size_t>(chunk)].get()};
          std::vector<int> indices(
              all_indices.begin() + static_cast<long>(lo),
              all_indices.begin() + static_cast<long>(hi));
          std::vector<int> labels(indices.size());
          for (size_t i = 0; i < labels.size(); ++i)
            labels[i] = static_cast<int>(i % 3);
          RunStep(&model, indices, labels);
        });
    for (auto& sink : sinks) sink->MergeIntoShared();
    struct Result {
      std::vector<float> grad;
      std::vector<int> touched;
      bool sparse;
    };
    const Tensor& table = model.embed.table();
    return Result{table.grad(), table.grad_touched_rows(),
                  table.grad_is_row_sparse()};
  };

  const auto sparse2 = run(2, true);
  const auto sparse4 = run(4, true);
  const auto dense2 = run(2, false);
  util::SetGlobalThreads(saved_threads);

  EXPECT_TRUE(sparse2.sparse);
  EXPECT_EQ(sparse2.grad, sparse4.grad);
  EXPECT_EQ(sparse2.touched, sparse4.touched);
  EXPECT_EQ(sparse2.grad, dense2.grad);
  // The merged touched set is the sorted union of the chunks' rows.
  EXPECT_EQ(sparse2.touched,
            (std::vector<int>{1, 2, 3, 5, 6, 7, 8, 9, 14, 17, 22, 29}));
}

TEST(SparseGradTest, GradCheckGatherRowsWithDuplicateIndices) {
  util::Rng rng(11);
  EmbedModel model(15, &rng);
  // Duplicates make GatherRows' backward accumulate several slices into
  // one row — the numerical check validates the sparse scatter-add.
  const std::vector<int> indices = {4, 4, 9, 2, 9, 4};
  const std::vector<int> labels = {0, 1, 2, 0, 1, 2};
  auto result = nn::CheckModuleGradients(&model, [&] {
    Tensor emb = model.embed.Forward(indices);
    Tensor h = model.hidden.ForwardTanh(emb);
    return tensor::CrossEntropyLoss(model.out.Forward(h), labels);
  });
  EXPECT_LT(result.max_abs_diff, 2e-2)
      << "worst: " << result.worst_parameter << "[" << result.worst_index
      << "]";
}

TEST(SparseGradTest, ZeroDenseScanSteadyStateTrainingStep) {
  // Mirrors BufferPoolTest.ZeroMissSteadyStateTrainingStep: once warmed
  // up, an embedding-dominated training step must consume the table's
  // gradient sparsely every step — zero dense full-table scans.
  constexpr int kVocab = 50;
  util::Rng rng(12);
  EmbedModel model(kVocab, &rng);
  nn::Sgd opt(&model, 0.1f, /*weight_decay=*/0.0f, /*clip_norm=*/5.0f);
  const std::vector<int> indices = {1, 4, 7, 2, 9, 30};
  const std::vector<int> labels = {0, 2, 1, 0, 1, 2};
  auto step = [&] {
    model.ZeroGrad();
    RunStep(&model, indices, labels);
    opt.Step();
  };
  for (int i = 0; i < 3; ++i) step();
  tensor::ResetSparseGradStats();
  for (int i = 0; i < 5; ++i) step();
  const auto stats = tensor::SparseGradStats();
  EXPECT_EQ(stats.dense_fallbacks, 0u);
  EXPECT_EQ(stats.rows_total, 5u * kVocab);
  EXPECT_EQ(stats.rows_touched, 5u * 6u);  // six unique rows per step
}

TEST(SparseGradTest, AdamBiasCorrectionStableAt10kSteps) {
  // Regression for the float std::pow(beta, step) bias correction: pin the
  // optimizer against a reference loop that maintains running double
  // beta-power products, out to step 10k. The float-pow form drifts from
  // this reference long before that.
  util::Rng rng(13);
  nn::Linear layer(2, 2, &rng);
  const float lr = 0.01f, beta1 = 0.9f, beta2 = 0.999f, eps = 1e-8f;
  nn::Adam opt(&layer, lr, beta1, beta2, eps);

  std::vector<nn::NamedParameter> params = layer.Parameters();
  std::vector<std::vector<float>> ref_v, m, s;
  for (nn::NamedParameter& p : params) {
    ref_v.push_back(p.tensor.data());
    m.emplace_back(p.tensor.size(), 0.0f);
    s.emplace_back(p.tensor.size(), 0.0f);
  }
  double beta1_pow = 1.0, beta2_pow = 1.0;
  util::Rng grad_rng(14);
  for (int step = 1; step <= 10000; ++step) {
    // Synthetic but varying gradients, shared by optimizer and reference.
    std::vector<std::vector<float>> grads;
    for (nn::NamedParameter& p : params) {
      std::vector<float>& g = p.tensor.mutable_grad();
      for (float& gv : g) gv = static_cast<float>(grad_rng.Uniform(-1.0, 1.0));
      grads.push_back(g);
    }
    beta1_pow *= static_cast<double>(beta1);
    beta2_pow *= static_cast<double>(beta2);
    const float bias1 = static_cast<float>(1.0 - beta1_pow);
    const float bias2 = static_cast<float>(1.0 - beta2_pow);
    for (size_t p = 0; p < ref_v.size(); ++p) {
      for (size_t i = 0; i < ref_v[p].size(); ++i) {
        const float g = grads[p][i];
        m[p][i] = beta1 * m[p][i] + (1.0f - beta1) * g;
        s[p][i] = beta2 * s[p][i] + (1.0f - beta2) * g * g;
        const float m_hat = m[p][i] / bias1;
        const float v_hat = s[p][i] / bias2;
        ref_v[p][i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
      }
    }
    opt.Step();
    if (step == 1 || step == 100 || step == 1000 || step == 10000) {
      for (size_t p = 0; p < params.size(); ++p)
        ASSERT_EQ(params[p].tensor.data(), ref_v[p])
            << "step " << step << " param " << p;
    }
  }
  // The bias term is still strictly inside (0, 1): the running double
  // product has not collapsed to 0 or overshot.
  EXPECT_GT(beta2_pow, 0.0);
  EXPECT_LT(beta2_pow, 1.0);
}

TEST(SparseGradTest, SetWeightsCopiesInPlace) {
  util::Rng rng(15);
  nn::Embedding embed(6, 4, &rng);
  Tensor table = embed.table();
  const float* storage = table.data().data();
  std::vector<float> values(24);
  for (size_t i = 0; i < values.size(); ++i)
    values[i] = static_cast<float>(i) * 0.5f;
  ASSERT_TRUE(embed.SetWeights(values).ok());
  EXPECT_EQ(table.data(), values);
  // Same storage: pooled capacity and the data pointer survive the load.
  EXPECT_EQ(table.data().data(), storage);
  EXPECT_FALSE(embed.SetWeights(std::vector<float>(7)).ok());
}

}  // namespace
}  // namespace imr
