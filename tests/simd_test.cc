// Backend-equivalence suite for the runtime-dispatched SIMD kernels:
// every backend the host supports is driven through the same inputs and
// compared against the scalar reference — bit-identical where the contract
// promises it (elementwise, int8 GEMM), within documented ULP/relative
// bounds where vector math reassociates (tanh, matmul, softmax). Also
// covers the dispatch rule itself (train=scalar / eval=best), the scoped
// pin, and the int8 quantization round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "graph/embedding_store.h"
#include "nn/layers.h"
#include "tensor/ops.h"
#include "tensor/simd/dispatch.h"
#include "tensor/simd/vec_math.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace imr {
namespace {

namespace simd = tensor::simd;

// Distance in representable floats (0 = bitwise equal). Infinite for
// mismatched signs or non-finite values, which the kernels never produce
// on finite input.
int64_t UlpDistance(float a, float b) {
  if (a == b) return 0;
  int32_t ia, ib;
  std::memcpy(&ia, &a, sizeof ia);
  std::memcpy(&ib, &b, sizeof ib);
  if ((ia < 0) != (ib < 0)) return INT64_MAX;
  return std::llabs(static_cast<int64_t>(ia) - static_cast<int64_t>(ib));
}

std::vector<float> RandomFloats(size_t n, float lo, float hi,
                                uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> out(n);
  for (float& v : out) v = static_cast<float>(rng.Uniform(lo, hi));
  return out;
}

// Saves the process-global training-vectorization switch so tests can
// force the documented default (scalar training) and put the user's
// environment back afterwards.
class ScopedScalarTraining {
 public:
  ScopedScalarTraining() : previous_(simd::VectorizedTraining()) {
    simd::SetVectorizedTraining(false);
  }
  ~ScopedScalarTraining() { simd::SetVectorizedTraining(previous_); }

 private:
  bool previous_;
};

TEST(SimdDispatchTest, ScalarAlwaysSupportedAndBestIsSupported) {
  EXPECT_TRUE(simd::BackendSupported(simd::Backend::kScalar));
  EXPECT_TRUE(simd::BackendSupported(simd::DetectBestBackend()));
  const auto supported = simd::SupportedBackends();
  ASSERT_FALSE(supported.empty());
  EXPECT_EQ(supported.front(), simd::Backend::kScalar);
}

TEST(SimdDispatchTest, KernelTablesAreFullyPopulated) {
  for (simd::Backend backend : simd::SupportedBackends()) {
    const simd::Kernels& kernels = simd::KernelsFor(backend);
    EXPECT_EQ(kernels.backend, backend);
    EXPECT_NE(kernels.add, nullptr);
    EXPECT_NE(kernels.sub, nullptr);
    EXPECT_NE(kernels.mul, nullptr);
    EXPECT_NE(kernels.scale, nullptr);
    EXPECT_NE(kernels.tanh, nullptr);
    EXPECT_NE(kernels.affine_tanh_finish, nullptr);
    EXPECT_NE(kernels.matmul_panel_dot, nullptr);
    EXPECT_NE(kernels.matmul_ikj, nullptr);
    EXPECT_NE(kernels.softmax_rows, nullptr);
    EXPECT_NE(kernels.log_softmax_rows, nullptr);
    EXPECT_NE(kernels.gemm_s8s32, nullptr);
  }
}

TEST(SimdDispatchTest, TrainKernelsAreScalarByDefault) {
  ScopedScalarTraining scalar_training;
  EXPECT_EQ(simd::TrainKernels().backend, simd::Backend::kScalar);
  // GradModeEnabled() is the process default, so Active() == TrainKernels.
  EXPECT_EQ(simd::Active().backend, simd::Backend::kScalar);
}

TEST(SimdDispatchTest, EvalKernelsFollowDetectionUnlessPinned) {
  if (!simd::EvalBackendPinned()) {
    EXPECT_EQ(simd::EvalKernels().backend, simd::DetectBestBackend());
  }
  tensor::NoGradGuard no_grad;
  EXPECT_EQ(simd::Active().backend, simd::EvalKernels().backend);
}

TEST(SimdDispatchTest, ScopedPinOverridesAndRestores) {
  const bool was_pinned = simd::EvalBackendPinned();
  const simd::Backend before = simd::ActiveEvalBackend();
  {
    simd::ScopedEvalBackend pin(simd::Backend::kScalar);
    EXPECT_TRUE(simd::EvalBackendPinned());
    EXPECT_EQ(simd::ActiveEvalBackend(), simd::Backend::kScalar);
    EXPECT_EQ(simd::EvalKernels().backend, simd::Backend::kScalar);
  }
  EXPECT_EQ(simd::EvalBackendPinned(), was_pinned);
  EXPECT_EQ(simd::ActiveEvalBackend(), before);
}

TEST(SimdDispatchTest, VectorizedTrainingOptInLiftsTrainKernels) {
  ScopedScalarTraining scalar_training;
  simd::SetVectorizedTraining(true);
  EXPECT_EQ(simd::TrainKernels().backend, simd::ActiveEvalBackend());
  simd::SetVectorizedTraining(false);
  EXPECT_EQ(simd::TrainKernels().backend, simd::Backend::kScalar);
}

TEST(SimdDispatchTest, SetBackendByNameValidatesInput) {
  const bool was_pinned = simd::EvalBackendPinned();
  const simd::Backend before = simd::ActiveEvalBackend();

  EXPECT_EQ(simd::SetBackendByName("warp9").code(),
            util::StatusCode::kInvalidArgument);
  ASSERT_TRUE(simd::SetBackendByName("scalar").ok());
  EXPECT_EQ(simd::ActiveEvalBackend(), simd::Backend::kScalar);
#if !defined(__aarch64__)
  EXPECT_EQ(simd::SetBackendByName("neon").code(),
            util::StatusCode::kFailedPrecondition);
  // A rejected pin must not clobber the accepted one.
  EXPECT_EQ(simd::ActiveEvalBackend(), simd::Backend::kScalar);
#endif
  ASSERT_TRUE(simd::SetBackendByName("auto").ok());
  EXPECT_FALSE(simd::EvalBackendPinned());

  // Put the process back the way the environment had it.
  if (was_pinned) {
    ASSERT_TRUE(simd::SetBackendByName(simd::BackendName(before)).ok());
  }
}

// ---- backend equivalence --------------------------------------------------

TEST(SimdKernelTest, ElementwiseBitIdenticalAcrossBackends) {
  // Sizes straddle the vector widths so every tail path runs.
  for (const size_t n : {1u, 7u, 8u, 15u, 64u, 257u}) {
    const std::vector<float> a = RandomFloats(n, -3.0f, 3.0f, 11 + n);
    const std::vector<float> b = RandomFloats(n, -3.0f, 3.0f, 23 + n);
    std::vector<float> ref_add(n), ref_sub(n), ref_mul(n), ref_scale(n);
    const simd::Kernels& scalar = simd::KernelsFor(simd::Backend::kScalar);
    scalar.add(a.data(), b.data(), ref_add.data(), n);
    scalar.sub(a.data(), b.data(), ref_sub.data(), n);
    scalar.mul(a.data(), b.data(), ref_mul.data(), n);
    scalar.scale(a.data(), 1.7f, ref_scale.data(), n);
    for (simd::Backend backend : simd::SupportedBackends()) {
      const simd::Kernels& kernels = simd::KernelsFor(backend);
      std::vector<float> out(n);
      kernels.add(a.data(), b.data(), out.data(), n);
      EXPECT_EQ(out, ref_add) << simd::BackendName(backend) << " n=" << n;
      kernels.sub(a.data(), b.data(), out.data(), n);
      EXPECT_EQ(out, ref_sub) << simd::BackendName(backend) << " n=" << n;
      kernels.mul(a.data(), b.data(), out.data(), n);
      EXPECT_EQ(out, ref_mul) << simd::BackendName(backend) << " n=" << n;
      kernels.scale(a.data(), 1.7f, out.data(), n);
      EXPECT_EQ(out, ref_scale) << simd::BackendName(backend) << " n=" << n;
    }
  }
}

TEST(SimdKernelTest, TanhWithinDocumentedUlpBound) {
  // Cover the clamp region, the polynomial core, and denormal-adjacent
  // inputs; 8 ULP is the bound documented in vec_math.h.
  std::vector<float> x = RandomFloats(1000, -10.0f, 10.0f, 42);
  x.insert(x.end(), {0.0f, -0.0f, 1e-8f, -1e-8f, simd::kTanhClamp,
                     -simd::kTanhClamp, 25.0f, -25.0f});
  const size_t n = x.size();
  std::vector<float> reference(n);
  for (size_t i = 0; i < n; ++i) reference[i] = std::tanh(x[i]);
  for (simd::Backend backend : simd::SupportedBackends()) {
    const simd::Kernels& kernels = simd::KernelsFor(backend);
    std::vector<float> out(n);
    kernels.tanh(x.data(), out.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_LE(UlpDistance(out[i], reference[i]), 8)
          << simd::BackendName(backend) << " tanh(" << x[i] << ") = "
          << out[i] << " want " << reference[i];
    }
  }
}

TEST(SimdKernelTest, AffineTanhFinishMatchesScalarWithinUlpBound) {
  const int rows = 5, cols = 37;
  const std::vector<float> base =
      RandomFloats(static_cast<size_t>(rows) * cols, -4.0f, 4.0f, 77);
  const std::vector<float> bias = RandomFloats(cols, -1.0f, 1.0f, 78);
  std::vector<float> reference = base;
  simd::KernelsFor(simd::Backend::kScalar)
      .affine_tanh_finish(reference.data(), bias.data(), rows, cols);
  for (simd::Backend backend : simd::SupportedBackends()) {
    std::vector<float> out = base;
    simd::KernelsFor(backend).affine_tanh_finish(out.data(), bias.data(),
                                                 rows, cols);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_LE(UlpDistance(out[i], reference[i]), 8)
          << simd::BackendName(backend) << " at " << i;
    }
  }
}

TEST(SimdKernelTest, MatMulKernelsMatchScalarWithinTolerance) {
  const int rows = 9, inner = 67, cols = 21;
  const std::vector<float> a =
      RandomFloats(static_cast<size_t>(rows) * inner, -1.0f, 1.0f, 5);
  const std::vector<float> b =
      RandomFloats(static_cast<size_t>(inner) * cols, -1.0f, 1.0f, 6);
  // Packed B^T panel, the layout MatMulForwardInto hands the kernel.
  std::vector<float> bt(static_cast<size_t>(cols) * inner);
  for (int j = 0; j < cols; ++j) {
    for (int k = 0; k < inner; ++k) {
      bt[static_cast<size_t>(j) * inner + k] =
          b[static_cast<size_t>(k) * cols + j];
    }
  }
  const size_t out_size = static_cast<size_t>(rows) * cols;
  std::vector<float> ref_panel(out_size), ref_ikj(out_size, 0.0f);
  const simd::Kernels& scalar = simd::KernelsFor(simd::Backend::kScalar);
  scalar.matmul_panel_dot(a.data(), bt.data(), ref_panel.data(), 0, rows,
                          inner, cols);
  scalar.matmul_ikj(a.data(), b.data(), ref_ikj.data(), rows, inner, cols);
  for (simd::Backend backend : simd::SupportedBackends()) {
    const simd::Kernels& kernels = simd::KernelsFor(backend);
    std::vector<float> panel(out_size), ikj(out_size, 0.0f);
    kernels.matmul_panel_dot(a.data(), bt.data(), panel.data(), 0, rows,
                             inner, cols);
    kernels.matmul_ikj(a.data(), b.data(), ikj.data(), rows, inner, cols);
    for (size_t i = 0; i < out_size; ++i) {
      // Reassociated dot products over `inner` terms: allow a small
      // absolute slack scaled by the term count.
      EXPECT_NEAR(panel[i], ref_panel[i], 1e-5f * inner)
          << simd::BackendName(backend) << " panel at " << i;
      EXPECT_NEAR(ikj[i], ref_ikj[i], 1e-5f * inner)
          << simd::BackendName(backend) << " ikj at " << i;
    }
  }
}

TEST(SimdKernelTest, SoftmaxKernelsMatchScalarAndNormalize) {
  const int rows = 7, cols = 33;
  const std::vector<float> in =
      RandomFloats(static_cast<size_t>(rows) * cols, -8.0f, 8.0f, 13);
  const size_t n = in.size();
  std::vector<float> ref_soft(n), ref_log(n);
  const simd::Kernels& scalar = simd::KernelsFor(simd::Backend::kScalar);
  scalar.softmax_rows(in.data(), ref_soft.data(), rows, cols);
  scalar.log_softmax_rows(in.data(), ref_log.data(), rows, cols);
  for (simd::Backend backend : simd::SupportedBackends()) {
    const simd::Kernels& kernels = simd::KernelsFor(backend);
    std::vector<float> soft(n), logsoft(n);
    kernels.softmax_rows(in.data(), soft.data(), rows, cols);
    kernels.log_softmax_rows(in.data(), logsoft.data(), rows, cols);
    for (int r = 0; r < rows; ++r) {
      double sum = 0.0;
      for (int c = 0; c < cols; ++c) {
        const size_t i = static_cast<size_t>(r) * cols + c;
        sum += soft[i];
        EXPECT_NEAR(soft[i], ref_soft[i], 1e-5f)
            << simd::BackendName(backend) << " softmax at " << i;
        EXPECT_NEAR(logsoft[i], ref_log[i], 1e-4f)
            << simd::BackendName(backend) << " log_softmax at " << i;
      }
      EXPECT_NEAR(sum, 1.0, 1e-4) << simd::BackendName(backend);
    }
  }
}

TEST(SimdKernelTest, GemmS8S32BitIdenticalAcrossBackends) {
  const int rows = 6, inner = 53, cols = 19;
  util::Rng rng(99);
  std::vector<int8_t> a(static_cast<size_t>(rows) * inner);
  std::vector<int8_t> wt(static_cast<size_t>(cols) * inner);
  for (int8_t& v : a) {
    v = static_cast<int8_t>(static_cast<int>(rng.UniformInt(255)) - 127);
  }
  for (int8_t& v : wt) {
    v = static_cast<int8_t>(static_cast<int>(rng.UniformInt(255)) - 127);
  }
  const size_t out_size = static_cast<size_t>(rows) * cols;
  std::vector<int32_t> reference(out_size);
  simd::KernelsFor(simd::Backend::kScalar)
      .gemm_s8s32(a.data(), wt.data(), reference.data(), rows, inner, cols);
  // Spot-check the scalar reference against a plain double loop.
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      int64_t want = 0;
      for (int k = 0; k < inner; ++k) {
        want += static_cast<int64_t>(a[static_cast<size_t>(r) * inner + k]) *
                wt[static_cast<size_t>(c) * inner + k];
      }
      EXPECT_EQ(reference[static_cast<size_t>(r) * cols + c], want);
    }
  }
  for (simd::Backend backend : simd::SupportedBackends()) {
    std::vector<int32_t> out(out_size);
    simd::KernelsFor(backend).gemm_s8s32(a.data(), wt.data(), out.data(),
                                         rows, inner, cols);
    EXPECT_EQ(out, reference) << simd::BackendName(backend);
  }
}

// ---- dispatch through the tensor ops --------------------------------------

TEST(SimdOpsTest, TrainingModeTanhStaysBitIdenticalToStdTanh) {
  ScopedScalarTraining scalar_training;
  // Grad mode is on by default, so this goes through TrainKernels() ==
  // scalar even when the eval backend is pinned to a vector ISA.
  simd::ScopedEvalBackend pin(simd::DetectBestBackend());
  tensor::Tensor x = tensor::Tensor::FromData(
      {64}, RandomFloats(64, -5.0f, 5.0f, 314), /*requires_grad=*/true);
  tensor::Tensor y = tensor::Tanh(x);
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_EQ(y.data()[i], std::tanh(x.data()[i]));
  }
}

TEST(SimdOpsTest, EvalResultsAgreeAcrossBackendsWithinTolerance) {
  tensor::Tensor a = tensor::Tensor::FromData(
      {8, 48}, RandomFloats(8 * 48, -1.0f, 1.0f, 21));
  tensor::Tensor b = tensor::Tensor::FromData(
      {48, 12}, RandomFloats(48 * 12, -1.0f, 1.0f, 22));
  tensor::NoGradGuard no_grad;
  simd::ScopedEvalBackend scalar_pin(simd::Backend::kScalar);
  tensor::Tensor reference = tensor::Softmax(tensor::MatMul(a, b));
  for (simd::Backend backend : simd::SupportedBackends()) {
    simd::ScopedEvalBackend pin(backend);
    tensor::Tensor out = tensor::Softmax(tensor::MatMul(a, b));
    ASSERT_EQ(out.size(), reference.size());
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_NEAR(out.data()[i], reference.data()[i], 1e-5f)
          << simd::BackendName(backend) << " at " << i;
    }
  }
}

// ---- int8 quantization ----------------------------------------------------

TEST(QuantizationTest, EmbeddingRoundTripWithinHalfScale) {
  graph::EmbeddingStore store(10, 24);
  util::Rng rng(7);
  for (int v = 0; v < store.num_vertices(); ++v) {
    float* row = store.Vector(v);
    for (int d = 0; d < store.dim(); ++d) row[d] = rng.Uniform(-2.0f, 2.0f);
  }
  const auto quantized = graph::QuantizedEmbeddingStore::Quantize(store);
  EXPECT_EQ(quantized.num_vertices(), store.num_vertices());
  EXPECT_EQ(quantized.dim(), store.dim());
  for (int v = 0; v < store.num_vertices(); ++v) {
    const float bound = quantized.scale(v) * 0.5f + 1e-7f;
    const std::vector<float> back = quantized.Dequantize(v);
    for (int d = 0; d < store.dim(); ++d) {
      EXPECT_NEAR(back[static_cast<size_t>(d)], store.Vector(v)[d], bound);
    }
  }
  EXPECT_LE(quantized.MaxAbsError(store),
            0.5 * (2.0 / 127.0) + 1e-7);  // maxabs <= 2 => scale <= 2/127
}

TEST(QuantizationTest, ZeroRowsQuantizeToZeroScale) {
  graph::EmbeddingStore store(3, 8);
  float* row = store.Vector(1);
  for (int d = 0; d < store.dim(); ++d) row[d] = 0.5f * (d + 1);
  const auto quantized = graph::QuantizedEmbeddingStore::Quantize(store);
  EXPECT_EQ(quantized.scale(0), 0.0f);
  for (float v : quantized.Dequantize(0)) EXPECT_EQ(v, 0.0f);
  EXPECT_GT(quantized.scale(1), 0.0f);
}

TEST(QuantizationTest, QuantizedMutualRelationTracksFp32) {
  graph::EmbeddingStore store(6, 16);
  util::Rng rng(8);
  for (int v = 0; v < store.num_vertices(); ++v) {
    float* row = store.Vector(v);
    for (int d = 0; d < store.dim(); ++d) row[d] = rng.Uniform(-1.0f, 1.0f);
  }
  const auto quantized = graph::QuantizedEmbeddingStore::Quantize(store);
  const std::vector<float> exact = store.MutualRelation(2, 5);
  const std::vector<float> approx = quantized.MutualRelation(2, 5);
  ASSERT_EQ(exact.size(), approx.size());
  const float bound =
      0.5f * (quantized.scale(2) + quantized.scale(5)) + 1e-7f;
  for (size_t d = 0; d < exact.size(); ++d) {
    EXPECT_NEAR(approx[d], exact[d], bound) << "dim " << d;
  }
}

TEST(QuantizationTest, QuantizedLinearTracksFp32Forward) {
  util::Rng rng(17);
  nn::Linear linear(40, 11, &rng);
  const nn::QuantizedLinear quantized(linear);
  EXPECT_EQ(quantized.in_features(), 40);
  EXPECT_EQ(quantized.out_features(), 11);
  tensor::Tensor x = tensor::Tensor::FromData(
      {4, 40}, RandomFloats(4 * 40, -1.0f, 1.0f, 55));
  tensor::NoGradGuard no_grad;
  tensor::Tensor exact = linear.Forward(x);
  tensor::Tensor approx = quantized.Forward(x);
  ASSERT_EQ(approx.shape(), exact.shape());
  for (size_t i = 0; i < exact.size(); ++i) {
    // Each output sums 40 products of values in ~[-1, 1] quantized to
    // ~1/127 granularity; 0.05 is ~6x the observed worst case.
    EXPECT_NEAR(approx.data()[i], exact.data()[i], 0.05f) << "at " << i;
  }
  // Rank-1 path agrees with the corresponding rank-2 row.
  tensor::Tensor row = tensor::Tensor::FromData(
      {40}, std::vector<float>(x.data().begin(), x.data().begin() + 40));
  tensor::Tensor row_out = quantized.Forward(row);
  ASSERT_EQ(row_out.rank(), 1);
  for (size_t i = 0; i < row_out.size(); ++i) {
    EXPECT_EQ(row_out.data()[i], approx.data()[i]);
  }
}

TEST(QuantizationTest, QuantizedLinearIsBackendInvariant) {
  util::Rng rng(18);
  nn::Linear linear(32, 9, &rng);
  const nn::QuantizedLinear quantized(linear);
  tensor::Tensor x = tensor::Tensor::FromData(
      {3, 32}, RandomFloats(3 * 32, -2.0f, 2.0f, 56));
  tensor::NoGradGuard no_grad;
  std::vector<float> reference;
  {
    simd::ScopedEvalBackend pin(simd::Backend::kScalar);
    reference = quantized.Forward(x).data();
  }
  for (simd::Backend backend : simd::SupportedBackends()) {
    simd::ScopedEvalBackend pin(backend);
    // Integer accumulation plus one fp32 dequantize per output: the whole
    // forward is bit-identical on every backend.
    EXPECT_EQ(quantized.Forward(x).data(), reference)
        << simd::BackendName(backend);
  }
}

}  // namespace
}  // namespace imr
