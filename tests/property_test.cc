// Parameterized property suites: invariants that must hold across sweeps
// of random shapes, seeds and configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "eval/metrics.h"
#include "graph/alias_sampler.h"
#include "graph/embedding_store.h"
#include "graph/line.h"
#include "graph/proximity_graph.h"
#include "nn/init.h"
#include "tensor/ops.h"
#include "text/position.h"
#include "text/vocab.h"
#include "util/rng.h"

namespace imr {
namespace {

using tensor::Tensor;

// ---------- softmax properties over random shapes ----------

class SoftmaxProperty : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxProperty, RowsSumToOneAndShiftInvariant) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  const int rows = 1 + static_cast<int>(rng.UniformInt(6));
  const int cols = 2 + static_cast<int>(rng.UniformInt(10));
  Tensor x = nn::NormalInit({rows, cols}, 2.0f, &rng);
  Tensor s = tensor::Softmax(x);
  for (int r = 0; r < rows; ++r) {
    float sum = 0;
    for (int c = 0; c < cols; ++c) {
      EXPECT_GE(s.at(r, c), 0.0f);
      sum += s.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  // Shift invariance: softmax(x + c) == softmax(x).
  Tensor shifted = tensor::Softmax(tensor::AddScalar(x, 7.25f));
  for (size_t i = 0; i < s.size(); ++i)
    EXPECT_NEAR(s.data()[i], shifted.data()[i], 1e-5);
}

TEST_P(SoftmaxProperty, LogSoftmaxMatchesLogOfSoftmax) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  const int cols = 2 + static_cast<int>(rng.UniformInt(8));
  Tensor x = nn::NormalInit({3, cols}, 3.0f, &rng);
  Tensor log_soft = tensor::LogSoftmax(x);
  Tensor soft = tensor::Softmax(x);
  for (size_t i = 0; i < soft.size(); ++i)
    EXPECT_NEAR(log_soft.data()[i], std::log(soft.data()[i]), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxProperty, ::testing::Range(0, 8));

// ---------- pooling properties ----------

class PoolingProperty : public ::testing::TestWithParam<int> {};

TEST_P(PoolingProperty, PiecewiseMatchesPerSegmentMax) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  const int rows = 3 + static_cast<int>(rng.UniformInt(10));
  const int cols = 1 + static_cast<int>(rng.UniformInt(6));
  const int b1 = static_cast<int>(rng.UniformInt(rows + 1));
  const int b2 = b1 + static_cast<int>(
                          rng.UniformInt(static_cast<uint64_t>(rows - b1) + 1));
  Tensor x = nn::NormalInit({rows, cols}, 1.0f, &rng);
  Tensor pooled = tensor::PiecewiseMaxOverRows(x, b1, b2);
  ASSERT_EQ(pooled.size(), static_cast<size_t>(3 * cols));
  const int bounds[4] = {0, b1, b2, rows};
  for (int seg = 0; seg < 3; ++seg) {
    for (int c = 0; c < cols; ++c) {
      float expected = 0.0f;  // empty segment -> 0 by contract
      if (bounds[seg] < bounds[seg + 1]) {
        expected = x.at(bounds[seg], c);
        for (int r = bounds[seg]; r < bounds[seg + 1]; ++r)
          expected = std::max(expected, x.at(r, c));
      }
      EXPECT_FLOAT_EQ(pooled.at(seg * cols + c), expected)
          << "seg=" << seg << " c=" << c << " b1=" << b1 << " b2=" << b2;
    }
  }
}

TEST_P(PoolingProperty, MaxOverRowsIsUpperBoundOfEveryRow) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 3);
  const int rows = 1 + static_cast<int>(rng.UniformInt(8));
  const int cols = 1 + static_cast<int>(rng.UniformInt(8));
  Tensor x = nn::NormalInit({rows, cols}, 1.0f, &rng);
  Tensor pooled = tensor::MaxOverRows(x);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) EXPECT_GE(pooled.at(c), x.at(r, c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolingProperty, ::testing::Range(0, 10));

// ---------- conv properties ----------

class ConvProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConvProperty, LinearInInput) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 11);
  const int time = 2 + static_cast<int>(rng.UniformInt(8));
  const int dim = 1 + static_cast<int>(rng.UniformInt(5));
  const int filters = 1 + static_cast<int>(rng.UniformInt(4));
  Tensor w = nn::NormalInit({filters, 3 * dim}, 1.0f, &rng);
  Tensor zero_bias = Tensor::Zeros({filters});
  Tensor x = nn::NormalInit({time, dim}, 1.0f, &rng);
  Tensor y1 = tensor::Conv1dSame(x, w, zero_bias, 3);
  Tensor y2 = tensor::Conv1dSame(tensor::Scale(x, 2.0f), w, zero_bias, 3);
  for (size_t i = 0; i < y1.size(); ++i)
    EXPECT_NEAR(2.0f * y1.data()[i], y2.data()[i], 1e-3);
}

TEST_P(ConvProperty, BiasShiftsEveryOutput) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 13 + 29);
  const int time = 2 + static_cast<int>(rng.UniformInt(6));
  const int dim = 2;
  const int filters = 2;
  Tensor w = nn::NormalInit({filters, 3 * dim}, 1.0f, &rng);
  Tensor x = nn::NormalInit({time, dim}, 1.0f, &rng);
  Tensor y0 = tensor::Conv1dSame(x, w, Tensor::Zeros({filters}), 3);
  Tensor y1 = tensor::Conv1dSame(x, w, Tensor::Full({filters}, 1.5f), 3);
  for (size_t i = 0; i < y0.size(); ++i)
    EXPECT_NEAR(y0.data()[i] + 1.5f, y1.data()[i], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvProperty, ::testing::Range(0, 8));

// ---------- alias sampler across random distributions ----------

class AliasProperty : public ::testing::TestWithParam<int> {};

TEST_P(AliasProperty, EmpiricalMatchesWeights) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 101 + 1);
  const size_t n = 2 + rng.UniformInt(20);
  std::vector<double> weights(n);
  double total = 0;
  for (double& w : weights) {
    w = rng.Uniform() < 0.2 ? 0.0 : rng.Uniform(0.1, 5.0);
    total += w;
  }
  if (total == 0) {
    weights[0] = 1.0;
    total = 1.0;
  }
  graph::AliasSampler sampler(weights);
  std::vector<int> counts(n, 0);
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) counts[sampler.Sample(&rng)]++;
  for (size_t i = 0; i < n; ++i) {
    const double expected = weights[i] / total;
    const double observed = counts[i] / static_cast<double>(draws);
    EXPECT_NEAR(observed, expected, 0.02) << "index " << i;
    if (weights[i] == 0.0) EXPECT_EQ(counts[i], 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AliasProperty, ::testing::Range(0, 10));

// ---------- Zipf tails across exponents ----------

class ZipfProperty : public ::testing::TestWithParam<int> {};

TEST_P(ZipfProperty, HeavierExponentMeansMoreSingletons) {
  const double s_small = 1.1, s_large = 1.1 + 0.3 * (GetParam() + 1);
  util::Rng rng(77);
  int ones_small = 0, ones_large = 0;
  for (int i = 0; i < 20000; ++i) {
    ones_small += (rng.Zipf(100, s_small) == 1);
    ones_large += (rng.Zipf(100, s_large) == 1);
  }
  EXPECT_GT(ones_large, ones_small);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfProperty, ::testing::Range(0, 4));

// ---------- truncation invariants ----------

struct TruncationCase {
  int num_tokens;
  int head;
  int tail;
  int max_length;
};

class TruncationProperty
    : public ::testing::TestWithParam<TruncationCase> {};

TEST_P(TruncationProperty, WindowValidAndCoversEntitiesWhenPossible) {
  const TruncationCase& c = GetParam();
  auto result = text::TruncateAroundEntities(c.num_tokens, c.head, c.tail,
                                             c.max_length);
  EXPECT_GE(result.begin, 0);
  EXPECT_LE(result.end, c.num_tokens);
  EXPECT_EQ(result.end - result.begin,
            std::min(c.num_tokens, c.max_length));
  const int span = std::abs(c.head - c.tail);
  if (span < c.max_length) {
    EXPECT_LE(result.begin, std::min(c.head, c.tail));
    EXPECT_GT(result.end, std::max(c.head, c.tail));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TruncationProperty,
    ::testing::Values(TruncationCase{10, 0, 9, 5},
                      TruncationCase{100, 10, 20, 15},
                      TruncationCase{100, 95, 99, 15},
                      TruncationCase{100, 0, 1, 15},
                      TruncationCase{50, 49, 0, 50},
                      TruncationCase{120, 60, 59, 40},
                      TruncationCase{7, 3, 4, 120}));

// ---------- relative position ids ----------

class PositionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PositionProperty, IdsWithinRangeAndMonotone) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) + 400);
  const int n = 1 + static_cast<int>(rng.UniformInt(150));
  const int entity = static_cast<int>(rng.UniformInt(n));
  const int max_pos = 1 + static_cast<int>(rng.UniformInt(60));
  auto ids = text::RelativePositionIds(n, entity, max_pos);
  ASSERT_EQ(ids.size(), static_cast<size_t>(n));
  EXPECT_EQ(ids[static_cast<size_t>(entity)], max_pos);  // offset 0
  for (int t = 0; t < n; ++t) {
    EXPECT_GE(ids[static_cast<size_t>(t)], 0);
    EXPECT_LE(ids[static_cast<size_t>(t)], 2 * max_pos);
    if (t > 0) EXPECT_GE(ids[static_cast<size_t>(t)],
                         ids[static_cast<size_t>(t - 1)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PositionProperty, ::testing::Range(0, 10));

// ---------- PR-curve invariants over random rankings ----------

class MetricsProperty : public ::testing::TestWithParam<int> {};

TEST_P(MetricsProperty, CurveWellFormedAndAucBounded) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 3 + 500);
  std::vector<eval::ScoredFact> facts;
  int positives = 0;
  const int n = 50 + static_cast<int>(rng.UniformInt(200));
  for (int i = 0; i < n; ++i) {
    eval::ScoredFact fact;
    fact.head = i;
    fact.tail = i + 10000;
    fact.relation = 1 + static_cast<int>(rng.UniformInt(5));
    fact.score = rng.Uniform();
    fact.correct = rng.Bernoulli(0.3);
    positives += fact.correct;
    facts.push_back(fact);
  }
  if (positives == 0) {
    facts[0].correct = true;
    positives = 1;
  }
  auto curve = eval::PrecisionRecallCurve(&facts, positives);
  ASSERT_EQ(curve.size(), facts.size());
  double prev_recall = 0.0;
  for (const auto& point : curve) {
    EXPECT_GE(point.recall, prev_recall);        // recall monotone
    EXPECT_GE(point.precision, 0.0);
    EXPECT_LE(point.precision, 1.0 + 1e-12);
    prev_recall = point.recall;
  }
  EXPECT_NEAR(curve.back().recall, 1.0, 1e-9);   // all positives retrieved
  const double auc = eval::AucPr(curve);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0 + 1e-9);
  auto best = eval::MaxF1(curve);
  EXPECT_GE(best.f1, 0.0);
  EXPECT_LE(best.f1, 1.0 + 1e-9);
  // F1 at the chosen point must be consistent with its P and R.
  if (best.precision + best.recall > 0) {
    EXPECT_NEAR(best.f1,
                2 * best.precision * best.recall /
                    (best.precision + best.recall),
                1e-9);
  }
}

TEST_P(MetricsProperty, PerfectAboveRandomAboveInverted) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 900);
  auto make = [&](double quality) {
    std::vector<eval::ScoredFact> facts;
    for (int i = 0; i < 200; ++i) {
      eval::ScoredFact fact;
      fact.head = i;
      fact.tail = i;
      fact.relation = 1;
      fact.correct = (i < 60);
      const double signal = fact.correct ? 1.0 : 0.0;
      fact.score = quality * signal + (1 - quality) * rng.Uniform();
      facts.push_back(fact);
    }
    auto curve = eval::PrecisionRecallCurve(&facts, 60);
    return eval::AucPr(curve);
  };
  const double good = make(0.95);
  const double random = make(0.0);
  EXPECT_GT(good, random);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsProperty, ::testing::Range(0, 8));

// ---------- embedding-store algebra ----------

class EmbeddingProperty : public ::testing::TestWithParam<int> {};

TEST_P(EmbeddingProperty, MutualRelationAntisymmetric) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) + 321);
  graph::EmbeddingStore store(6, 8);
  for (int v = 0; v < 6; ++v)
    for (int d = 0; d < 8; ++d)
      store.Vector(v)[d] = static_cast<float>(rng.Normal());
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      auto forward = store.MutualRelation(i, j);
      auto backward = store.MutualRelation(j, i);
      for (size_t d = 0; d < forward.size(); ++d)
        EXPECT_FLOAT_EQ(forward[d], -backward[d]);
    }
  }
}

TEST_P(EmbeddingProperty, CosineSymmetricAndBounded) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) + 654);
  graph::EmbeddingStore store(5, 7);
  for (int v = 0; v < 5; ++v)
    for (int d = 0; d < 7; ++d)
      store.Vector(v)[d] = static_cast<float>(rng.Normal());
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(store.Cosine(i, i), 1.0, 1e-5);
    for (int j = 0; j < 5; ++j) {
      const double c = store.Cosine(i, j);
      EXPECT_NEAR(c, store.Cosine(j, i), 1e-9);
      EXPECT_GE(c, -1.0 - 1e-9);
      EXPECT_LE(c, 1.0 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmbeddingProperty, ::testing::Range(0, 6));

// ---------- proximity-graph weight law across count patterns ----------

class ProximityProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProximityProperty, WeightsFollowLogLaw) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 5 + 777);
  graph::ProximityGraph graph(20);
  std::map<std::pair<int, int>, int> expected;
  for (int e = 0; e < 30; ++e) {
    int a = static_cast<int>(rng.UniformInt(20));
    int b = static_cast<int>(rng.UniformInt(20));
    if (a == b) continue;
    const int count = 2 + static_cast<int>(rng.UniformInt(30));
    for (int k = 0; k < count; ++k) graph.AddCooccurrence(a, b);
    expected[{std::min(a, b), std::max(a, b)}] += count;
  }
  graph.Finalize(2);
  const double max_count =
      static_cast<double>(graph.max_cooccurrence());
  for (const auto& edge : graph.edges()) {
    const auto it = expected.find({edge.source, edge.target});
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(edge.cooccurrence, it->second);
    EXPECT_NEAR(edge.weight,
                std::log(static_cast<double>(it->second)) /
                    std::log(std::max(2.0, max_count)),
                1e-9);
    EXPECT_GT(edge.weight, 0.0);
    EXPECT_LE(edge.weight, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProximityProperty, ::testing::Range(0, 6));

// ---------- vocabulary bijection ----------

class VocabProperty : public ::testing::TestWithParam<int> {};

TEST_P(VocabProperty, IdWordRoundTrip) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) + 4242);
  text::Vocabulary vocab;
  std::vector<std::string> words;
  for (int i = 0; i < 50; ++i) {
    std::string word = "w" + std::to_string(rng.UniformInt(200));
    vocab.Count(word);
    words.push_back(word);
  }
  vocab.Freeze();
  for (const std::string& word : words) {
    const int id = vocab.Id(word);
    ASSERT_NE(id, text::Vocabulary::kUnkId);
    EXPECT_EQ(vocab.Word(id), word);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VocabProperty, ::testing::Range(0, 5));

}  // namespace
}  // namespace imr
