#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>

#include "datagen/presets.h"
#include "graph/alias_sampler.h"
#include "graph/embedding_store.h"
#include "graph/line.h"
#include "graph/proximity_graph.h"

namespace imr::graph {
namespace {

TEST(AliasSamplerTest, MatchesDistribution) {
  util::Rng rng(1);
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler(weights);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[sampler.Sample(&rng)]++;
  for (int i = 0; i < 4; ++i) {
    const double expected = weights[i] / 10.0;
    EXPECT_NEAR(counts[i] / static_cast<double>(n), expected, 0.01)
        << "index " << i;
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  util::Rng rng(2);
  AliasSampler sampler({0.0, 1.0, 0.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.Sample(&rng), 1u);
}

TEST(AliasSamplerTest, SingleElement) {
  util::Rng rng(3);
  AliasSampler sampler({5.0});
  EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(ProximityGraphTest, ThresholdAndWeights) {
  ProximityGraph graph(5);
  // Pair (0,1): 8 co-occurrences; (1,2): 2; (3,4): 1.
  for (int i = 0; i < 8; ++i) graph.AddCooccurrence(0, 1);
  graph.AddCooccurrence(1, 2);
  graph.AddCooccurrence(2, 1);  // symmetric counting
  graph.AddCooccurrence(3, 4);
  graph.Finalize(/*min_cooccurrence=*/2);

  ASSERT_EQ(graph.edges().size(), 2u);
  EXPECT_EQ(graph.max_cooccurrence(), 8);
  EXPECT_EQ(graph.CooccurrenceCount(0, 1), 8);
  EXPECT_EQ(graph.CooccurrenceCount(1, 0), 8);
  EXPECT_EQ(graph.CooccurrenceCount(3, 4), 1);

  // w = log(co) / log(max co).
  std::map<std::pair<int, int>, double> weights;
  for (const Edge& e : graph.edges())
    weights[{e.source, e.target}] = e.weight;
  EXPECT_NEAR((weights[{0, 1}]), 1.0, 1e-9);
  EXPECT_NEAR((weights[{1, 2}]), std::log(2.0) / std::log(8.0), 1e-9);
  EXPECT_EQ((weights.count({3, 4})), 0u);
}

TEST(ProximityGraphTest, SelfLoopsIgnored) {
  ProximityGraph graph(3);
  graph.AddCooccurrence(1, 1);
  graph.AddCooccurrence(0, 2);
  graph.AddCooccurrence(0, 2);
  graph.Finalize(2);
  ASSERT_EQ(graph.edges().size(), 1u);
  EXPECT_EQ(graph.edges()[0].source, 0);
  EXPECT_EQ(graph.edges()[0].target, 2);
}

TEST(ProximityGraphTest, DegreesAndNeighbors) {
  ProximityGraph graph(4);
  for (int i = 0; i < 4; ++i) graph.AddCooccurrence(0, 1);
  for (int i = 0; i < 4; ++i) graph.AddCooccurrence(0, 2);
  graph.Finalize(2);
  auto neighbors = graph.Neighbors(0);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0], 1);
  EXPECT_EQ(neighbors[1], 2);
  EXPECT_TRUE(graph.Neighbors(3).empty());
  EXPECT_GT(graph.degrees()[0], graph.degrees()[1]);
}

TEST(EmbeddingStoreTest, MutualRelationIsDifference) {
  EmbeddingStore store(3, 2);
  store.Vector(1)[0] = 1.0f;
  store.Vector(1)[1] = 2.0f;
  store.Vector(2)[0] = 4.0f;
  store.Vector(2)[1] = 6.0f;
  auto mr = store.MutualRelation(1, 2);
  ASSERT_EQ(mr.size(), 2u);
  EXPECT_FLOAT_EQ(mr[0], 3.0f);
  EXPECT_FLOAT_EQ(mr[1], 4.0f);
}

TEST(EmbeddingStoreTest, CosineAndNearestNeighbors) {
  EmbeddingStore store(4, 2);
  // v0 = (1,0), v1 = (0.9, 0.1), v2 = (0,1), v3 = (-1,0)
  store.Vector(0)[0] = 1;
  store.Vector(1)[0] = 0.9f;
  store.Vector(1)[1] = 0.1f;
  store.Vector(2)[1] = 1;
  store.Vector(3)[0] = -1;
  EXPECT_NEAR(store.Cosine(0, 3), -1.0, 1e-6);
  auto neighbors = store.NearestNeighbors(0, 2);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].vertex, 1);
  EXPECT_EQ(neighbors[1].vertex, 2);
}

TEST(EmbeddingStoreTest, NormalizeRows) {
  EmbeddingStore store(2, 2);
  store.Vector(0)[0] = 3;
  store.Vector(0)[1] = 4;
  store.NormalizeRows();  // zero row 1 untouched
  EXPECT_NEAR(store.Vector(0)[0], 0.6f, 1e-6);
  EXPECT_NEAR(store.Vector(0)[1], 0.8f, 1e-6);
  EXPECT_FLOAT_EQ(store.Vector(1)[0], 0.0f);
}

TEST(EmbeddingStoreTest, SaveLoadRoundTrip) {
  EmbeddingStore store(3, 4);
  for (int v = 0; v < 3; ++v)
    for (int d = 0; d < 4; ++d) store.Vector(v)[d] = v + 0.1f * d;
  const std::string path = "/tmp/imr_embedding_test.bin";
  ASSERT_TRUE(store.Save(path).ok());
  auto loaded = EmbeddingStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), 3);
  EXPECT_EQ(loaded->dim(), 4);
  EXPECT_FLOAT_EQ(loaded->Vector(2)[3], 2.3f);
  std::remove(path.c_str());
}

// Two clusters of vertices, dense within and sparse across: LINE must
// embed same-cluster vertices closer than cross-cluster ones.
TEST(LineTest, SeparatesCommunities) {
  const int n = 20;  // vertices 0-9 cluster A, 10-19 cluster B
  ProximityGraph graph(n);
  util::Rng rng(41);
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 10; ++i) {
      int a = static_cast<int>(rng.UniformInt(10));
      int b = static_cast<int>(rng.UniformInt(10));
      if (a != b) graph.AddCooccurrence(a, b);
      a = 10 + static_cast<int>(rng.UniformInt(10));
      b = 10 + static_cast<int>(rng.UniformInt(10));
      if (a != b) graph.AddCooccurrence(a, b);
    }
    // sparse cross edges
    if (round % 10 == 0) graph.AddCooccurrence(0, 10);
  }
  graph.Finalize(2);

  LineConfig config;
  config.dim = 16;
  config.samples_per_edge = 600;
  config.seed = 43;
  EmbeddingStore store = TrainLine(graph, config);

  double within = 0, across = 0;
  int nw = 0, na = 0;
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      within += store.Cosine(a, b);
      ++nw;
    }
    for (int b = 10; b < 20; ++b) {
      across += store.Cosine(a, b);
      ++na;
    }
  }
  within /= nw;
  across /= na;
  EXPECT_GT(within, across + 0.2)
      << "within=" << within << " across=" << across;
}

TEST(LineTest, HogwildSeparatesCommunities) {
  // Same two-cluster setup as SeparatesCommunities, but trained with four
  // Hogwild workers. The sharded path is not bit-exact with the sequential
  // one, so we assert the embedding quality, not the exact values.
  const int n = 20;
  ProximityGraph graph(n);
  util::Rng rng(41);
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 10; ++i) {
      int a = static_cast<int>(rng.UniformInt(10));
      int b = static_cast<int>(rng.UniformInt(10));
      if (a != b) graph.AddCooccurrence(a, b);
      a = 10 + static_cast<int>(rng.UniformInt(10));
      b = 10 + static_cast<int>(rng.UniformInt(10));
      if (a != b) graph.AddCooccurrence(a, b);
    }
    if (round % 10 == 0) graph.AddCooccurrence(0, 10);
  }
  graph.Finalize(2);

  LineConfig config;
  config.dim = 16;
  config.samples_per_edge = 600;
  config.seed = 43;
  config.threads = 4;
  EmbeddingStore store = TrainLine(graph, config);

  double within = 0, across = 0;
  int nw = 0, na = 0;
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      within += store.Cosine(a, b);
      ++nw;
    }
    for (int b = 10; b < 20; ++b) {
      across += store.Cosine(a, b);
      ++na;
    }
  }
  within /= nw;
  across /= na;
  EXPECT_GT(within, across + 0.2)
      << "within=" << within << " across=" << across;
}

TEST(LineTest, FirstOrderOnlyAndSecondOrderOnly) {
  ProximityGraph graph(6);
  for (int i = 0; i < 5; ++i) {
    graph.AddCooccurrence(0, 1);
    graph.AddCooccurrence(1, 2);
    graph.AddCooccurrence(3, 4);
    graph.AddCooccurrence(4, 5);
  }
  graph.Finalize(2);

  LineConfig first_only;
  first_only.dim = 8;
  first_only.first_order = true;
  first_only.second_order = false;
  first_only.samples_per_edge = 200;
  EmbeddingStore fo = TrainLine(graph, first_only);
  EXPECT_EQ(fo.dim(), 8);

  LineConfig second_only = first_only;
  second_only.first_order = false;
  second_only.second_order = true;
  EmbeddingStore so = TrainLine(graph, second_only);
  EXPECT_EQ(so.dim(), 8);

  LineConfig both = first_only;
  both.second_order = true;
  EmbeddingStore combined = TrainLine(graph, both);
  EXPECT_EQ(combined.dim(), 8);  // 4 + 4
}

// The paper's key case study (Table V): pairs of the same relation should
// have similar MR vectors after LINE embedding of the synthetic unlabeled
// corpus.
TEST(LineTest, MutualRelationsClusterByRelation) {
  datagen::PresetOptions options;
  options.scale = 0.3;
  datagen::SyntheticDataset dataset = datagen::MakeGdsLike(options);

  ProximityGraph graph(dataset.world.graph.num_entities());
  graph.AddCorpus(dataset.unlabeled.sentences);
  graph.Finalize(2);

  LineConfig config;
  config.dim = 32;
  config.samples_per_edge = 300;
  config.seed = 47;
  EmbeddingStore store = TrainLine(graph, config);

  // Average cosine of MR vectors for same-relation pairs vs different-
  // relation pairs.
  const auto& triples = dataset.world.graph.triples();
  double same = 0, diff = 0;
  int ns = 0, nd = 0;
  for (size_t i = 0; i < triples.size(); i += 3) {
    for (size_t j = i + 1; j < triples.size(); j += 3) {
      auto mr_i = store.MutualRelation(static_cast<int>(triples[i].head),
                                       static_cast<int>(triples[i].tail));
      auto mr_j = store.MutualRelation(static_cast<int>(triples[j].head),
                                       static_cast<int>(triples[j].tail));
      const double cosine = EmbeddingStore::Cosine(mr_i, mr_j);
      if (triples[i].relation == triples[j].relation) {
        same += cosine;
        ++ns;
      } else {
        diff += cosine;
        ++nd;
      }
    }
  }
  ASSERT_GT(ns, 10);
  ASSERT_GT(nd, 10);
  same /= ns;
  diff /= nd;
  EXPECT_GT(same, diff + 0.1) << "same=" << same << " diff=" << diff;
}

}  // namespace
}  // namespace imr::graph
