// Tests for the extension modules: corpus persistence, DeepWalk embedding,
// GNN-style embedding propagation (the paper's future-work direction), and
// multi-run aggregation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "datagen/presets.h"
#include "eval/aggregate.h"
#include "eval/per_relation.h"
#include "graph/deepwalk.h"
#include "graph/node2vec.h"
#include "graph/line.h"
#include "graph/propagation.h"
#include "re/bag_dataset.h"
#include "re/pa_model.h"
#include "re/trainer.h"
#include "text/corpus_io.h"
#include "util/rng.h"

namespace imr {
namespace {

// ---------- corpus persistence ----------

text::LabeledSentence MakeLabeled(int seed) {
  text::LabeledSentence labeled;
  labeled.sentence.tokens = {"the", "head" + std::to_string(seed), "works",
                             "at", "tail" + std::to_string(seed), "."};
  labeled.sentence.head_index = 1;
  labeled.sentence.tail_index = 4;
  labeled.sentence.head_entity = seed;
  labeled.sentence.tail_entity = seed + 100;
  labeled.relation = seed % 5;
  labeled.true_relation = (seed + 1) % 5;
  return labeled;
}

TEST(CorpusIoTest, LabeledRoundTrip) {
  std::vector<text::LabeledSentence> corpus;
  for (int i = 0; i < 25; ++i) corpus.push_back(MakeLabeled(i));
  const std::string path = "/tmp/imr_corpus_labeled.bin";
  ASSERT_TRUE(text::SaveLabeledCorpus(corpus, path).ok());
  auto loaded = text::LoadLabeledCorpus(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ((*loaded)[i].sentence.tokens, corpus[i].sentence.tokens);
    EXPECT_EQ((*loaded)[i].sentence.head_entity,
              corpus[i].sentence.head_entity);
    EXPECT_EQ((*loaded)[i].relation, corpus[i].relation);
    EXPECT_EQ((*loaded)[i].true_relation, corpus[i].true_relation);
  }
  std::remove(path.c_str());
}

TEST(CorpusIoTest, UnlabeledRoundTrip) {
  std::vector<text::Sentence> corpus;
  for (int i = 0; i < 10; ++i) corpus.push_back(MakeLabeled(i).sentence);
  const std::string path = "/tmp/imr_corpus_unlabeled.bin";
  ASSERT_TRUE(text::SaveUnlabeledCorpus(corpus, path).ok());
  auto loaded = text::LoadUnlabeledCorpus(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), corpus.size());
  EXPECT_EQ((*loaded)[3].tokens, corpus[3].tokens);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, WrongMagicRejected) {
  std::vector<text::Sentence> corpus = {MakeLabeled(1).sentence};
  const std::string path = "/tmp/imr_corpus_mixed.bin";
  ASSERT_TRUE(text::SaveUnlabeledCorpus(corpus, path).ok());
  EXPECT_FALSE(text::LoadLabeledCorpus(path).ok());  // labeled magic differs
  std::remove(path.c_str());
}

TEST(CorpusIoTest, GeneratedCorpusRoundTrip) {
  datagen::PresetOptions options;
  options.scale = 0.2;
  auto dataset = datagen::MakeGdsLike(options);
  const std::string path = "/tmp/imr_corpus_generated.bin";
  ASSERT_TRUE(text::SaveLabeledCorpus(dataset.corpus.train, path).ok());
  auto loaded = text::LoadLabeledCorpus(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), dataset.corpus.train.size());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, MissingFileFails) {
  EXPECT_FALSE(text::LoadLabeledCorpus("/tmp/imr_nonexistent_xyz.bin").ok());
}

// ---------- DeepWalk ----------

graph::ProximityGraph TwoCommunities() {
  graph::ProximityGraph graph(16);
  util::Rng rng(5);
  for (int round = 0; round < 60; ++round) {
    int a = static_cast<int>(rng.UniformInt(8));
    int b = static_cast<int>(rng.UniformInt(8));
    if (a != b) graph.AddCooccurrence(a, b);
    a = 8 + static_cast<int>(rng.UniformInt(8));
    b = 8 + static_cast<int>(rng.UniformInt(8));
    if (a != b) graph.AddCooccurrence(a, b);
  }
  graph.AddCooccurrence(0, 8);
  graph.AddCooccurrence(0, 8);
  graph.Finalize(2);
  return graph;
}

TEST(DeepWalkTest, SeparatesCommunities) {
  graph::ProximityGraph graph = TwoCommunities();
  graph::DeepWalkConfig config;
  config.dim = 16;
  config.walks_per_vertex = 20;
  graph::EmbeddingStore store = graph::TrainDeepWalk(graph, config);
  double within = 0, across = 0;
  int nw = 0, na = 0;
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      within += store.Cosine(a, b);
      ++nw;
    }
    for (int b = 8; b < 16; ++b) {
      across += store.Cosine(a, b);
      ++na;
    }
  }
  EXPECT_GT(within / nw, across / na + 0.2);
}

TEST(DeepWalkTest, RowsAreUnitNorm) {
  graph::ProximityGraph graph = TwoCommunities();
  graph::DeepWalkConfig config;
  config.dim = 8;
  config.walks_per_vertex = 4;
  graph::EmbeddingStore store = graph::TrainDeepWalk(graph, config);
  for (int v = 0; v < 16; ++v) {
    double norm = 0;
    for (int d = 0; d < 8; ++d)
      norm += static_cast<double>(store.Vector(v)[d]) * store.Vector(v)[d];
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4) << "vertex " << v;
  }
}

TEST(DeepWalkTest, DeterministicForSeed) {
  graph::ProximityGraph graph = TwoCommunities();
  graph::DeepWalkConfig config;
  config.dim = 8;
  config.walks_per_vertex = 3;
  auto a = graph::TrainDeepWalk(graph, config);
  auto b = graph::TrainDeepWalk(graph, config);
  EXPECT_EQ(a.flat(), b.flat());
}

// ---------- node2vec ----------

TEST(Node2VecTest, SeparatesCommunities) {
  graph::ProximityGraph graph = TwoCommunities();
  graph::Node2VecConfig config;
  config.dim = 16;
  config.walks_per_vertex = 20;
  graph::EmbeddingStore store = graph::TrainNode2Vec(graph, config);
  double within = 0, across = 0;
  int nw = 0, na = 0;
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      within += store.Cosine(a, b);
      ++nw;
    }
    for (int b = 8; b < 16; ++b) {
      across += store.Cosine(a, b);
      ++na;
    }
  }
  EXPECT_GT(within / nw, across / na + 0.2);
}

TEST(Node2VecTest, PQOneMatchesDeepWalkQualitatively) {
  // With p = q = 1 node2vec walks are unbiased; the embedding should be of
  // comparable quality to DeepWalk's (both separate the communities).
  graph::ProximityGraph graph = TwoCommunities();
  graph::Node2VecConfig config;
  config.dim = 8;
  config.walks_per_vertex = 10;
  config.p = 1.0;
  config.q = 1.0;
  graph::EmbeddingStore store = graph::TrainNode2Vec(graph, config);
  EXPECT_GT(store.Cosine(1, 2), store.Cosine(1, 12));
}

TEST(Node2VecTest, RowsAreUnitNormAndDeterministic) {
  graph::ProximityGraph graph = TwoCommunities();
  graph::Node2VecConfig config;
  config.dim = 8;
  config.walks_per_vertex = 3;
  config.p = 0.5;
  config.q = 2.0;
  auto a = graph::TrainNode2Vec(graph, config);
  auto b = graph::TrainNode2Vec(graph, config);
  EXPECT_EQ(a.flat(), b.flat());
  for (int v = 0; v < 16; ++v) {
    double norm = 0;
    for (int d = 0; d < 8; ++d)
      norm += static_cast<double>(a.Vector(v)[d]) * a.Vector(v)[d];
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
  }
}

// ---------- propagation ----------

TEST(PropagationTest, ZeroRoundsIsIdentity) {
  graph::ProximityGraph graph = TwoCommunities();
  graph::EmbeddingStore store(16, 4);
  util::Rng rng(3);
  for (int v = 0; v < 16; ++v)
    for (int d = 0; d < 4; ++d)
      store.Vector(v)[d] = static_cast<float>(rng.Normal());
  graph::PropagationConfig config;
  config.rounds = 0;
  auto out = graph::PropagateEmbeddings(graph, store, config);
  EXPECT_EQ(out.flat(), store.flat());
}

TEST(PropagationTest, IsolatedVertexUnchanged) {
  graph::ProximityGraph graph(4);
  graph.AddCooccurrence(0, 1);
  graph.AddCooccurrence(0, 1);
  graph.Finalize(2);  // vertices 2, 3 isolated
  graph::EmbeddingStore store(4, 3);
  for (int v = 0; v < 4; ++v)
    for (int d = 0; d < 3; ++d) store.Vector(v)[d] = v + d * 0.1f;
  graph::PropagationConfig config;
  config.rounds = 2;
  config.renormalize = false;
  auto out = graph::PropagateEmbeddings(graph, store, config);
  for (int d = 0; d < 3; ++d) {
    EXPECT_FLOAT_EQ(out.Vector(2)[d], store.Vector(2)[d]);
    EXPECT_FLOAT_EQ(out.Vector(3)[d], store.Vector(3)[d]);
  }
}

TEST(PropagationTest, SmoothingPullsNeighborsTogether) {
  graph::ProximityGraph graph = TwoCommunities();
  graph::LineConfig line;  // use LINE as base embedding
  line.dim = 16;
  line.samples_per_edge = 200;
  auto base = graph::TrainLine(graph, line);
  graph::PropagationConfig config;
  config.rounds = 2;
  auto smoothed = graph::PropagateEmbeddings(graph, base, config);
  // Average within-community cosine must not decrease.
  auto mean_within = [](const graph::EmbeddingStore& store) {
    double total = 0;
    int n = 0;
    for (int a = 0; a < 8; ++a)
      for (int b = a + 1; b < 8; ++b) {
        total += store.Cosine(a, b);
        ++n;
      }
    return total / n;
  };
  EXPECT_GE(mean_within(smoothed), mean_within(base) - 1e-6);
}

TEST(PropagationTest, AttentionWeightingRuns) {
  graph::ProximityGraph graph = TwoCommunities();
  graph::EmbeddingStore store(16, 8);
  util::Rng rng(9);
  for (int v = 0; v < 16; ++v)
    for (int d = 0; d < 8; ++d)
      store.Vector(v)[d] = static_cast<float>(rng.Normal());
  graph::PropagationConfig config;
  config.rounds = 1;
  config.weighting = graph::PropagationWeighting::kAttention;
  auto out = graph::PropagateEmbeddings(graph, store, config);
  for (float v : out.flat()) EXPECT_TRUE(std::isfinite(v));
}

// ---------- per-relation breakdown ----------

TEST(PerRelationTest, CountsAndMacroAverages) {
  // gold:      1 1 2 0 0
  // predicted: 1 2 2 0 1
  auto result =
      eval::PerRelationBreakdown({1, 1, 2, 0, 0}, {1, 2, 2, 0, 1}, 3);
  ASSERT_EQ(result.relations.size(), 3u);
  // Relation 1: support 2, predicted 2, tp 1.
  EXPECT_EQ(result.relations[1].support, 2);
  EXPECT_EQ(result.relations[1].predicted, 2);
  EXPECT_EQ(result.relations[1].true_positive, 1);
  EXPECT_NEAR(result.relations[1].precision, 0.5, 1e-12);
  EXPECT_NEAR(result.relations[1].recall, 0.5, 1e-12);
  // Relation 2: support 1, predicted 2, tp 1.
  EXPECT_NEAR(result.relations[2].precision, 0.5, 1e-12);
  EXPECT_NEAR(result.relations[2].recall, 1.0, 1e-12);
  // Macro over relations 1 and 2 only (NA excluded).
  EXPECT_EQ(result.relations_with_support, 2);
  EXPECT_NEAR(result.macro_precision, 0.5, 1e-12);
  EXPECT_NEAR(result.macro_recall, 0.75, 1e-12);
}

TEST(PerRelationTest, PerfectPredictions) {
  auto result = eval::PerRelationBreakdown({0, 1, 2}, {0, 1, 2}, 3);
  EXPECT_NEAR(result.macro_f1, 1.0, 1e-12);
}

TEST(PerRelationTest, EmptyInput) {
  auto result = eval::PerRelationBreakdown({}, {}, 4);
  EXPECT_EQ(result.relations_with_support, 0);
  EXPECT_EQ(result.macro_f1, 0.0);
}

// ---------- adversarial training ----------

TEST(AdversarialTrainingTest, RunsAndStillLearns) {
  datagen::PresetOptions options;
  options.scale = 0.4;
  auto dataset = datagen::MakeGdsLike(options);
  re::BagDatasetOptions bag_options;
  bag_options.max_sentence_length = 40;
  bag_options.max_position = 20;
  auto bags = re::BagDataset::Build(dataset.world.graph,
                                    dataset.corpus.train,
                                    dataset.corpus.test, bag_options);
  util::Rng rng(3);
  re::PaModelConfig config;
  config.num_relations = bags.num_relations();
  config.encoder = "cnn";
  config.aggregation = re::Aggregation::kAverage;
  config.encoder_config.vocab_size = bags.vocabulary().size();
  config.encoder_config.word_dim = 12;
  config.encoder_config.position_dim = 3;
  config.encoder_config.max_position = 20;
  config.encoder_config.filters = 16;
  re::PaModel model(config, &rng);

  re::TrainerConfig trainer_config;
  trainer_config.epochs = 8;
  trainer_config.batch_size = 32;
  trainer_config.optimizer = "adam";
  trainer_config.learning_rate = 0.01f;
  trainer_config.adversarial_epsilon = 0.01f;
  re::Trainer trainer(&model, trainer_config);
  auto history = trainer.Train(bags.train_bags());
  ASSERT_EQ(history.size(), 8u);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
  // Parameters stayed finite under the perturb/restore cycle.
  for (const auto& p : model.Parameters()) {
    for (float v : p.tensor.data()) ASSERT_TRUE(std::isfinite(v)) << p.name;
  }
}

// ---------- aggregation ----------

TEST(RunStatsTest, MeanAndStddev) {
  eval::RunStats stats;
  stats.Add("auc", 0.4);
  stats.Add("auc", 0.6);
  stats.Add("auc", 0.5);
  auto summary = stats.Summary("auc");
  EXPECT_EQ(summary.runs, 3);
  EXPECT_NEAR(summary.mean, 0.5, 1e-12);
  EXPECT_NEAR(summary.stddev, 0.1, 1e-9);
  EXPECT_NEAR(summary.min, 0.4, 1e-12);
  EXPECT_NEAR(summary.max, 0.6, 1e-12);
}

TEST(RunStatsTest, UnknownMetricIsZero) {
  eval::RunStats stats;
  auto summary = stats.Summary("nothing");
  EXPECT_EQ(summary.runs, 0);
  EXPECT_EQ(summary.mean, 0.0);
}

TEST(RunStatsTest, AddResultRecordsStandardSet) {
  eval::RunStats stats;
  eval::HeldOutResult result;
  result.auc = 0.7;
  result.best.precision = 0.8;
  result.best.recall = 0.6;
  result.best.f1 = 0.69;
  result.p_at_100 = 0.9;
  result.p_at_200 = 0.85;
  stats.AddResult(result);
  stats.AddResult(result);
  EXPECT_EQ(stats.Summary("auc").runs, 2);
  EXPECT_NEAR(stats.Summary("f1").mean, 0.69, 1e-12);
  EXPECT_EQ(stats.MetricNames().size(), 6u);
  EXPECT_NEAR(stats.Summary("auc").stddev, 0.0, 1e-12);
}

}  // namespace
}  // namespace imr
