#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace imr::tensor {
namespace {

// Numerical gradient check for a scalar-valued function of one leaf tensor.
// Returns the max absolute difference between analytic and numeric grads.
template <typename Fn>
double GradCheck(Tensor leaf, Fn fn, double eps = 1e-3) {
  leaf.set_requires_grad(true);
  Tensor loss = fn(leaf);
  leaf.ZeroGrad();
  loss.Backward();
  std::vector<float> analytic = leaf.grad();
  if (analytic.empty()) analytic.assign(leaf.size(), 0.0f);

  double max_diff = 0.0;
  for (size_t i = 0; i < leaf.size(); ++i) {
    const float saved = leaf.data()[i];
    leaf.mutable_data()[i] = saved + static_cast<float>(eps);
    const double up = fn(leaf).item();
    leaf.mutable_data()[i] = saved - static_cast<float>(eps);
    const double down = fn(leaf).item();
    leaf.mutable_data()[i] = saved;
    const double numeric = (up - down) / (2 * eps);
    max_diff = std::max(max_diff, std::abs(numeric - analytic[i]));
  }
  return max_diff;
}

Tensor RandomTensor(std::vector<int> shape, util::Rng* rng,
                    float scale = 1.0f) {
  size_t n = 1;
  for (int d : shape) n *= static_cast<size_t>(d);
  std::vector<float> data(n);
  for (float& v : data) v = static_cast<float>(rng->Normal()) * scale;
  return Tensor::FromData(std::move(shape), std::move(data));
}

TEST(TensorTest, FactoryShapes) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_FLOAT_EQ(t.at(1, 2), 0.0f);

  Tensor v = Tensor::FromData({3}, {1, 2, 3});
  EXPECT_EQ(v.rank(), 1);
  EXPECT_EQ(v.rows(), 1);
  EXPECT_EQ(v.cols(), 3);
  EXPECT_FLOAT_EQ(v.at(2), 3.0f);

  Tensor s = Tensor::Scalar(5.0f);
  EXPECT_FLOAT_EQ(s.item(), 5.0f);
}

TEST(TensorTest, AddSubMulForward) {
  Tensor a = Tensor::FromData({2}, {1, 2});
  Tensor b = Tensor::FromData({2}, {10, 20});
  EXPECT_FLOAT_EQ(Add(a, b).at(1), 22.0f);
  EXPECT_FLOAT_EQ(Sub(b, a).at(0), 9.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).at(1), 40.0f);
  EXPECT_FLOAT_EQ(Scale(a, 3.0f).at(0), 3.0f);
  EXPECT_FLOAT_EQ(AddScalar(a, 1.0f).at(1), 3.0f);
}

TEST(TensorTest, MatMulForward) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (std::vector<int>{2, 2}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorTest, MatMulVectorLhs) {
  Tensor a = Tensor::FromData({3}, {1, 2, 3});
  Tensor b = Tensor::FromData({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.rank(), 1);
  EXPECT_FLOAT_EQ(c.at(0), 4.0f);
  EXPECT_FLOAT_EQ(c.at(1), 5.0f);
}

TEST(TensorTest, BackwardThroughChain) {
  // loss = sum((a + a) * a) = sum(2 a^2); d/da = 4a.
  Tensor a = Tensor::FromData({3}, {1, 2, 3}, /*requires_grad=*/true);
  Tensor loss = Sum(Mul(Add(a, a), a));
  loss.Backward();
  ASSERT_EQ(a.grad().size(), 3u);
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
  EXPECT_FLOAT_EQ(a.grad()[2], 12.0f);
}

TEST(TensorTest, BackwardSharedNodeAccumulates) {
  // Diamond: b = 2a, c = 3a, loss = sum(b + c) -> d/da = 5.
  Tensor a = Tensor::FromData({2}, {1, 1}, true);
  Tensor loss = Sum(Add(Scale(a, 2.0f), Scale(a, 3.0f)));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 5.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 5.0f);
}

TEST(TensorTest, NoGradGuardSkipsGraph) {
  Tensor a = Tensor::FromData({2}, {1, 2}, true);
  NoGradGuard guard;
  Tensor b = Scale(a, 2.0f);
  EXPECT_FALSE(b.requires_grad());
}

// ---- gradient checks for each op ----

TEST(GradCheckTest, Add) {
  util::Rng rng(1);
  Tensor b = RandomTensor({2, 3}, &rng);
  double diff = GradCheck(RandomTensor({2, 3}, &rng), [&](Tensor t) {
    return Sum(Add(t, b));
  });
  EXPECT_LT(diff, 1e-2);
}

TEST(GradCheckTest, MulAndSub) {
  util::Rng rng(2);
  Tensor b = RandomTensor({4}, &rng);
  double diff = GradCheck(RandomTensor({4}, &rng), [&](Tensor t) {
    return Sum(Mul(Sub(t, b), t));
  });
  EXPECT_LT(diff, 1e-2);
}

TEST(GradCheckTest, MatMulLhs) {
  util::Rng rng(3);
  Tensor b = RandomTensor({3, 4}, &rng);
  double diff = GradCheck(RandomTensor({2, 3}, &rng), [&](Tensor t) {
    return Sum(MatMul(t, b));
  });
  EXPECT_LT(diff, 1e-2);
}

TEST(GradCheckTest, MatMulRhs) {
  util::Rng rng(4);
  Tensor a = RandomTensor({2, 3}, &rng);
  double diff = GradCheck(RandomTensor({3, 4}, &rng), [&](Tensor t) {
    return Sum(Tanh(MatMul(a, t)));
  });
  EXPECT_LT(diff, 1e-2);
}

TEST(GradCheckTest, Activations) {
  util::Rng rng(5);
  EXPECT_LT(GradCheck(RandomTensor({5}, &rng),
                      [](Tensor t) { return Sum(Tanh(t)); }),
            1e-2);
  EXPECT_LT(GradCheck(RandomTensor({5}, &rng),
                      [](Tensor t) { return Sum(Sigmoid(t)); }),
            1e-2);
  // Keep values away from the ReLU kink for a clean numeric check.
  Tensor pos = Tensor::FromData({4}, {0.5f, 1.5f, -0.7f, -2.0f});
  EXPECT_LT(GradCheck(pos, [](Tensor t) { return Sum(Relu(t)); }), 1e-2);
}

TEST(GradCheckTest, AddRowVectorBothSides) {
  util::Rng rng(6);
  Tensor m = RandomTensor({3, 4}, &rng);
  Tensor v = RandomTensor({4}, &rng);
  EXPECT_LT(GradCheck(m, [&](Tensor t) { return Sum(AddRowVector(t, v)); }),
            1e-2);
  EXPECT_LT(GradCheck(v, [&](Tensor t) { return Sum(AddRowVector(m, t)); }),
            1e-2);
}

TEST(GradCheckTest, RowwiseDotAndWeightedSum) {
  util::Rng rng(7);
  Tensor x = RandomTensor({3, 4}, &rng);
  Tensor q = RandomTensor({4}, &rng);
  Tensor w = RandomTensor({3}, &rng);
  EXPECT_LT(GradCheck(x, [&](Tensor t) { return Sum(RowwiseDot(t, q)); }),
            1e-2);
  EXPECT_LT(GradCheck(q, [&](Tensor t) { return Sum(RowwiseDot(x, t)); }),
            1e-2);
  EXPECT_LT(
      GradCheck(x, [&](Tensor t) { return Sum(WeightedSumRows(t, w)); }),
      1e-2);
  EXPECT_LT(
      GradCheck(w, [&](Tensor t) { return Sum(WeightedSumRows(x, t)); }),
      1e-2);
}

TEST(GradCheckTest, ConcatAndSlice) {
  util::Rng rng(8);
  Tensor other = RandomTensor({4}, &rng);
  EXPECT_LT(GradCheck(RandomTensor({4}, &rng),
                      [&](Tensor t) {
                        return Sum(Mul(ConcatVec({t, other}),
                                       ConcatVec({other, t})));
                      }),
            1e-2);
  EXPECT_LT(GradCheck(RandomTensor({2, 3}, &rng),
                      [&](Tensor t) {
                        Tensor stacked = ConcatRows({t, t});
                        return Sum(Mul(stacked, stacked));
                      }),
            1e-2);
  EXPECT_LT(GradCheck(RandomTensor({6}, &rng),
                      [](Tensor t) {
                        Tensor s = Slice(t, 1, 3);
                        return Sum(Mul(s, s));
                      }),
            1e-2);
  EXPECT_LT(GradCheck(RandomTensor({3, 4}, &rng),
                      [](Tensor t) {
                        Tensor r = Row(t, 1);
                        return Sum(Mul(r, r));
                      }),
            1e-2);
}

TEST(GradCheckTest, GatherRows) {
  util::Rng rng(9);
  std::vector<int> indices = {2, 0, 2, 1};  // repeated index accumulates
  EXPECT_LT(GradCheck(RandomTensor({3, 4}, &rng),
                      [&](Tensor t) {
                        Tensor g = GatherRows(t, indices);
                        return Sum(Mul(g, g));
                      }),
            1e-2);
}

TEST(GradCheckTest, Reductions) {
  util::Rng rng(10);
  EXPECT_LT(GradCheck(RandomTensor({3, 4}, &rng),
                      [](Tensor t) { return Mean(Mul(t, t)); }),
            1e-2);
  EXPECT_LT(GradCheck(RandomTensor({3, 4}, &rng),
                      [](Tensor t) {
                        Tensor s = SumRows(t);
                        return Sum(Mul(s, s));
                      }),
            1e-2);
  EXPECT_LT(GradCheck(RandomTensor({3, 4}, &rng),
                      [](Tensor t) {
                        Tensor s = MeanRows(t);
                        return Sum(Mul(s, s));
                      }),
            1e-2);
}

TEST(GradCheckTest, MaxOverRows) {
  // Use well-separated values so the argmax is stable under +-eps.
  Tensor x = Tensor::FromData({3, 2}, {1, 9, 5, 2, 3, 4});
  EXPECT_LT(GradCheck(x,
                      [](Tensor t) {
                        Tensor m = MaxOverRows(t);
                        return Sum(Mul(m, m));
                      }),
            1e-2);
}

TEST(GradCheckTest, PiecewiseMaxOverRows) {
  Tensor x = Tensor::FromData({5, 2},
                              {1, 9, 5, 2, 3, 4, 8, 1, 2, 7});
  EXPECT_LT(GradCheck(x,
                      [](Tensor t) {
                        Tensor m = PiecewiseMaxOverRows(t, 2, 4);
                        return Sum(Mul(m, m));
                      }),
            1e-2);
}

TEST(TensorTest, PiecewiseMaxEmptySegmentIsZero) {
  Tensor x = Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor out = PiecewiseMaxOverRows(x, 0, 2);  // first segment empty
  ASSERT_EQ(out.size(), 6u);
  EXPECT_FLOAT_EQ(out.at(0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1), 0.0f);
  EXPECT_FLOAT_EQ(out.at(2), 3.0f);  // max of rows 0..1, col 0
  EXPECT_FLOAT_EQ(out.at(4), 5.0f);  // row 2, col 0
}

TEST(GradCheckTest, SoftmaxAndLogSoftmax) {
  util::Rng rng(11);
  Tensor q = RandomTensor({4}, &rng);
  EXPECT_LT(GradCheck(RandomTensor({2, 4}, &rng),
                      [&](Tensor t) {
                        Tensor s = Softmax(t);
                        return Sum(Mul(s, s));
                      }),
            1e-2);
  EXPECT_LT(GradCheck(RandomTensor({2, 4}, &rng),
                      [&](Tensor t) {
                        Tensor s = LogSoftmax(t);
                        return Sum(Mul(s, s));
                      }),
            2e-2);
}

TEST(TensorTest, SoftmaxRowsSumToOne) {
  util::Rng rng(12);
  Tensor x = RandomTensor({3, 5}, &rng, 3.0f);
  Tensor s = Softmax(x);
  for (int r = 0; r < 3; ++r) {
    float sum = 0;
    for (int c = 0; c < 5; ++c) {
      EXPECT_GE(s.at(r, c), 0.0f);
      sum += s.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(GradCheckTest, CrossEntropy) {
  util::Rng rng(13);
  std::vector<int> labels = {1, 0, 3};
  EXPECT_LT(GradCheck(RandomTensor({3, 4}, &rng),
                      [&](Tensor t) {
                        return CrossEntropyLoss(t, labels);
                      }),
            1e-2);
}

TEST(TensorTest, CrossEntropyOfUniformLogits) {
  Tensor logits = Tensor::Zeros({2, 4});
  Tensor loss = CrossEntropyLoss(logits, {0, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5);
}

TEST(GradCheckTest, Conv1dSameAllInputs) {
  util::Rng rng(14);
  const int window = 3, dim = 3, filters = 2, time = 4;
  Tensor x = RandomTensor({time, dim}, &rng);
  Tensor w = RandomTensor({filters, window * dim}, &rng);
  Tensor b = RandomTensor({filters}, &rng);
  EXPECT_LT(GradCheck(x,
                      [&](Tensor t) {
                        return Sum(Tanh(Conv1dSame(t, w, b, window)));
                      }),
            2e-2);
  EXPECT_LT(GradCheck(w,
                      [&](Tensor t) {
                        return Sum(Tanh(Conv1dSame(x, t, b, window)));
                      }),
            2e-2);
  EXPECT_LT(GradCheck(b,
                      [&](Tensor t) {
                        return Sum(Tanh(Conv1dSame(x, w, t, window)));
                      }),
            2e-2);
}

TEST(TensorTest, Conv1dShapeAndPadding) {
  // Single filter summing the window over a 1-dim input: verifies padding.
  Tensor x = Tensor::FromData({4, 1}, {1, 2, 3, 4});
  Tensor w = Tensor::FromData({1, 3}, {1, 1, 1});
  Tensor b = Tensor::Zeros({1});
  Tensor out = Conv1dSame(x, w, b, 3);
  ASSERT_EQ(out.shape(), (std::vector<int>{4, 1}));
  EXPECT_FLOAT_EQ(out.at(0, 0), 3.0f);   // 0+1+2
  EXPECT_FLOAT_EQ(out.at(1, 0), 6.0f);   // 1+2+3
  EXPECT_FLOAT_EQ(out.at(3, 0), 7.0f);   // 3+4+0
}

TEST(TensorTest, DropoutTrainAndEval) {
  util::Rng rng(15);
  Tensor x = Tensor::Full({1000}, 1.0f, true);
  Tensor dropped = Dropout(x, 0.5f, &rng, /*training=*/true);
  int zeros = 0;
  double sum = 0;
  for (float v : dropped.data()) {
    if (v == 0.0f)
      ++zeros;
    else
      EXPECT_FLOAT_EQ(v, 2.0f);  // inverted dropout scaling
    sum += v;
  }
  EXPECT_GT(zeros, 400);
  EXPECT_LT(zeros, 600);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.15);  // expectation preserved

  Tensor same = Dropout(x, 0.5f, &rng, /*training=*/false);
  EXPECT_EQ(same.impl().get(), x.impl().get());
}

TEST(GradCheckTest, ScaleAndAddScalar) {
  util::Rng rng(16);
  EXPECT_LT(GradCheck(RandomTensor({5}, &rng),
                      [](Tensor t) { return Sum(Scale(t, -2.5f)); }),
            1e-2);
  EXPECT_LT(GradCheck(RandomTensor({5}, &rng),
                      [](Tensor t) {
                        return Sum(Mul(AddScalar(t, 3.0f), t));
                      }),
            1e-2);
}

TEST(GradCheckTest, ScaleByScalarTensorBothInputs) {
  util::Rng rng(17);
  Tensor s = Tensor::Scalar(1.7f);
  EXPECT_LT(GradCheck(RandomTensor({6}, &rng),
                      [&](Tensor t) {
                        return Sum(Mul(ScaleByScalarTensor(t, s), t));
                      }),
            1e-2);
  Tensor x = RandomTensor({6}, &rng);
  EXPECT_LT(GradCheck(Tensor::Scalar(0.8f),
                      [&](Tensor t) {
                        Tensor y = ScaleByScalarTensor(x, t);
                        return Sum(Mul(y, y));
                      }),
            2e-2);
}

TEST(TensorTest, ConcatColsLayout) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromData({2, 1}, {5, 6});
  Tensor c = ConcatCols({a, b});
  ASSERT_EQ(c.shape(), (std::vector<int>{2, 3}));
  EXPECT_FLOAT_EQ(c.at(0, 2), 5.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 6.0f);
}

TEST(GradCheckTest, ConcatCols) {
  util::Rng rng(18);
  Tensor other = RandomTensor({3, 2}, &rng);
  EXPECT_LT(GradCheck(RandomTensor({3, 4}, &rng),
                      [&](Tensor t) {
                        Tensor c = ConcatCols({t, other});
                        return Sum(Mul(c, c));
                      }),
            1e-2);
}

TEST(TensorTest, ReshapeGradFlows) {
  Tensor x = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6}, true);
  Tensor y = Reshape(x, {6});
  Sum(Mul(y, y)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[5], 12.0f);
}

// ---- thread-count determinism ---------------------------------------------
//
// The parallel kernels promise BIT-identical outputs and gradients at any
// --imr_threads value (every output element's float accumulation sequence
// is independent of chunk boundaries), so these compare with EXPECT_EQ on
// raw float vectors — no tolerance.

struct MatMulRun {
  std::vector<float> out, ga, gb;
};

MatMulRun RunMatMul(int threads, const std::vector<float>& adata,
                    const std::vector<float>& bdata, int rows, int inner,
                    int cols) {
  util::SetGlobalThreads(threads);
  Tensor a = Tensor::FromData({rows, inner}, adata, true);
  Tensor b = Tensor::FromData({inner, cols}, bdata, true);
  Tensor out = MatMul(a, b);
  Sum(out).Backward();
  util::SetGlobalThreads(0);
  return {out.data(), a.grad(), b.grad()};
}

TEST(ThreadedKernelsTest, MatMulBitIdenticalAcrossThreadCounts) {
  // 48x40x56 is above the parallel/packing thresholds, so the blocked
  // packed-transpose kernels run (over a 4-thread pool in the N=4 case).
  const int rows = 48, inner = 40, cols = 56;
  util::Rng rng(77);
  std::vector<float> adata(static_cast<size_t>(rows) * inner);
  std::vector<float> bdata(static_cast<size_t>(inner) * cols);
  for (float& v : adata) v = static_cast<float>(rng.Normal());
  for (float& v : bdata) v = static_cast<float>(rng.Normal());
  // Some exact zeros to exercise the sparse skip on every path.
  for (size_t i = 0; i < adata.size(); i += 13) adata[i] = 0.0f;

  const MatMulRun one = RunMatMul(1, adata, bdata, rows, inner, cols);
  const MatMulRun four = RunMatMul(4, adata, bdata, rows, inner, cols);
  const MatMulRun eight = RunMatMul(8, adata, bdata, rows, inner, cols);
  EXPECT_EQ(one.out, four.out);
  EXPECT_EQ(one.ga, four.ga);
  EXPECT_EQ(one.gb, four.gb);
  EXPECT_EQ(one.out, eight.out);
  EXPECT_EQ(one.ga, eight.ga);
  EXPECT_EQ(one.gb, eight.gb);
}

struct ConvRun {
  std::vector<float> out, gx, gw, gb;
};

ConvRun RunConv(int threads, const std::vector<float>& xdata,
                const std::vector<float>& wdata,
                const std::vector<float>& bdata, int time, int dim,
                int filters, int window) {
  util::SetGlobalThreads(threads);
  Tensor x = Tensor::FromData({time, dim}, xdata, true);
  Tensor w = Tensor::FromData({filters, window * dim}, wdata, true);
  Tensor b = Tensor::FromData({filters}, bdata, true);
  Tensor out = Conv1dSame(x, w, b, window);
  Sum(out).Backward();
  util::SetGlobalThreads(0);
  return {out.data(), x.grad(), w.grad(), b.grad()};
}

TEST(ThreadedKernelsTest, Conv1dSameBitIdenticalAcrossThreadCounts) {
  const int time = 40, dim = 16, filters = 32, window = 3;
  util::Rng rng(78);
  std::vector<float> xdata(static_cast<size_t>(time) * dim);
  std::vector<float> wdata(static_cast<size_t>(filters) * window * dim);
  std::vector<float> bdata(static_cast<size_t>(filters));
  for (float& v : xdata) v = static_cast<float>(rng.Normal());
  for (float& v : wdata) v = static_cast<float>(rng.Normal()) * 0.1f;
  for (float& v : bdata) v = static_cast<float>(rng.Normal()) * 0.01f;

  const ConvRun one = RunConv(1, xdata, wdata, bdata, time, dim, filters,
                              window);
  const ConvRun four = RunConv(4, xdata, wdata, bdata, time, dim, filters,
                               window);
  EXPECT_EQ(one.out, four.out);
  EXPECT_EQ(one.gx, four.gx);
  EXPECT_EQ(one.gw, four.gw);
  EXPECT_EQ(one.gb, four.gb);
}

TEST(ThreadedKernelsTest, ScopedGradSinkCapturesLeafGrads) {
  internal::ScopedGradSink sink;
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4}, true);
  Tensor b = Tensor::FromData({2, 2}, {5, 6, 7, 8}, true);
  Sum(Mul(a, b)).Backward();
  sink.Deactivate();
  // The shared grads stay untouched until the merge.
  EXPECT_TRUE(a.grad().empty() ||
              a.grad() == std::vector<float>(4, 0.0f));
  ASSERT_EQ(sink.entries().size(), 2u);
  sink.MergeIntoShared();
  EXPECT_EQ(a.grad(), b.data());
  EXPECT_EQ(b.grad(), a.data());
}

}  // namespace
}  // namespace imr::tensor
