// Corruption fuzz-smoke for the snapshot/delta readers: seeded byte flips
// and truncations over real v1, v2, and IMRD fixtures. The contract under
// test is narrow and absolute — LoadSnapshot / ReadDeltaHeader / ApplyDelta
// NEVER crash on corrupt input. Every outcome is either an ok() load (a
// flip the reader legitimately cannot see, e.g. in a v2 bulk payload whose
// hash is identity-only) or a Status naming the file. Runs under the same
// ASan/UBSan trees as the rest of the suite, so an out-of-bounds parse or
// a corrupt-length allocation fails CI even when it does not segfault.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "graph/embedding_store.h"
#include "re/config.h"
#include "re/pa_model.h"
#include "serve/delta.h"
#include "serve/snapshot.h"
#include "text/vocab.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"

namespace imr {
namespace {

// A small but fully populated snapshot bundle (untrained weights are fine:
// the readers validate structure, not accuracy), saved in both formats,
// plus a delta chained on the v2 file. Built once.
struct FuzzFixture {
  FuzzFixture() {
    for (const char* word :
         {"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"}) {
      vocab.Count(word);
    }
    vocab.Freeze();

    const int num_vertices = 10;
    const int dim = 8;
    embeddings = graph::EmbeddingStore(num_vertices, dim);
    util::Rng rng(17);
    for (int v = 0; v < num_vertices; ++v)
      for (int d = 0; d < dim; ++d)
        embeddings.Vector(v)[d] = static_cast<float>(rng.Normal());
    for (int v = 0; v < num_vertices; ++v) {
      serve::EntityRecord record;
      record.name = "entity_" + std::to_string(v);
      record.type_ids = {v % 3};
      entities.push_back(record);
    }

    re::PaModelConfig config;
    config.num_relations = 3;
    config.encoder = "pcnn";
    config.use_mutual_relation = true;
    config.use_entity_type = true;
    config.type_dim = 4;
    config.mutual_relation_dim = dim;
    config.encoder_config.vocab_size = vocab.size();
    config.encoder_config.word_dim = 6;
    config.encoder_config.position_dim = 2;
    config.encoder_config.max_position = 10;
    config.encoder_config.filters = 4;
    util::Rng model_rng(23);
    model = std::make_unique<re::PaModel>(config, &model_rng);
    model->SetTraining(false);

    const auto quantized = graph::QuantizedEmbeddingStore::Quantize(embeddings);
    const std::vector<std::string> relation_names = {"NA", "r1", "r2"};
    v2_path = testing::TempDir() + "/imr_fuzz_v2.imrs";
    v1_path = testing::TempDir() + "/imr_fuzz_v1.imrs";
    IMR_CHECK(serve::SaveSnapshot(*model, vocab, embeddings, relation_names,
                                  entities, {}, 1, "fuzz", v2_path,
                                  &quantized, nullptr,
                                  serve::kSnapshotFormatV2)
                  .ok());
    IMR_CHECK(serve::SaveSnapshot(*model, vocab, embeddings, relation_names,
                                  entities, {}, 1, "fuzz", v1_path,
                                  &quantized, nullptr,
                                  serve::kSnapshotFormatV1)
                  .ok());

    auto loaded = serve::LoadSnapshot(v2_path);
    IMR_CHECK(loaded.ok());
    base = std::make_unique<serve::Snapshot>(std::move(*loaded));

    graph::EmbeddingStore patched(num_vertices, dim);
    std::memcpy(patched.Vector(0), embeddings.raw(),
                embeddings.value_count() * sizeof(float));
    for (int d = 0; d < dim; ++d) patched.Vector(3)[d] += 0.5f;
    serve::DeltaSpec spec;
    spec.touched_rows = {3, 7};
    spec.changed_params = {model->Parameters()[0].name};
    delta_path = testing::TempDir() + "/imr_fuzz.imrd";
    IMR_CHECK(serve::SaveDelta(base->content_hash, patched, model.get(),
                               spec, delta_path)
                  .ok());
  }

  text::Vocabulary vocab;
  graph::EmbeddingStore embeddings;
  std::vector<serve::EntityRecord> entities;
  std::unique_ptr<re::PaModel> model;
  std::unique_ptr<serve::Snapshot> base;
  std::string v1_path;
  std::string v2_path;
  std::string delta_path;
};

FuzzFixture& Fixture() {
  static FuzzFixture* fixture = new FuzzFixture();
  return *fixture;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  IMR_CHECK(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::string WriteMutant(const std::string& bytes, const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

/// Flips a seeded-random byte of `bytes` per iteration and feeds the
/// mutant to `probe`, which must return (ok or Status) — any crash or
/// sanitizer report fails the test. Returns how many mutants still loaded
/// ok (a flip the format legitimately does not authenticate).
template <typename Probe>
int FuzzByteFlips(const std::string& bytes, const std::string& name,
                  int iterations, uint64_t seed, const Probe& probe) {
  util::Rng rng(seed);
  int survivors = 0;
  for (int i = 0; i < iterations; ++i) {
    std::string mutant = bytes;
    const size_t pos = rng.UniformInt(mutant.size());
    // Bias half the flips into the first 256 bytes, where the header,
    // section framing, and counts live — the highest-value targets.
    const size_t target =
        i % 2 == 0 ? pos % std::min<size_t>(mutant.size(), 256) : pos;
    const uint8_t flip = static_cast<uint8_t>(1 + rng.UniformInt(255));
    mutant[target] = static_cast<char>(
        static_cast<uint8_t>(mutant[target]) ^ flip);
    const std::string path = WriteMutant(mutant, name);
    if (probe(path).ok()) ++survivors;
    std::remove(path.c_str());
  }
  return survivors;
}

/// Truncates `bytes` at a seeded-random point per iteration (plus the
/// always-interesting boundary cuts) and feeds each to `probe`; a
/// truncation must never crash and must never load ok.
template <typename Probe>
void FuzzTruncations(const std::string& bytes, const std::string& name,
                     int iterations, uint64_t seed, const Probe& probe) {
  util::Rng rng(seed);
  std::vector<size_t> cuts = {0,  1,  4,  7,  8,  12, bytes.size() / 2,
                              bytes.size() - 1, bytes.size() - 8,
                              bytes.size() - 16, bytes.size() - 17};
  for (int i = 0; i < iterations; ++i) cuts.push_back(rng.UniformInt(bytes.size()));
  for (const size_t cut : cuts) {
    const std::string path = WriteMutant(bytes.substr(0, cut), name);
    EXPECT_FALSE(probe(path).ok()) << name << " truncated to " << cut;
    std::remove(path.c_str());
  }
}

util::Status ProbeSnapshot(const std::string& path) {
  return serve::LoadSnapshot(path).status();
}

util::Status ProbeDelta(const std::string& path) {
  // Both entry points must survive: the O(1) header probe and the full
  // apply against a live base generation.
  const util::Status header = serve::ReadDeltaHeader(path).status();
  const util::Status applied =
      serve::ApplyDelta(*Fixture().base, path).status();
  // ApplyDelta validates strictly more than the header probe.
  if (header.ok() && applied.ok()) return util::OkStatus();
  return applied.ok() ? header : applied;
}

TEST(SnapshotFuzzTest, V2ByteFlipsNeverCrash) {
  const std::string bytes = Slurp(Fixture().v2_path);
  FuzzByteFlips(bytes, "imr_fuzz_mut_v2.imrs", 400, 0xF00D, ProbeSnapshot);
}

TEST(SnapshotFuzzTest, V1ByteFlipsNeverCrash) {
  const std::string bytes = Slurp(Fixture().v1_path);
  FuzzByteFlips(bytes, "imr_fuzz_mut_v1.imrs", 300, 0xBEEF, ProbeSnapshot);
}

TEST(SnapshotFuzzTest, DeltaByteFlipsNeverCrash) {
  const std::string bytes = Slurp(Fixture().delta_path);
  // Deltas ARE hash-authenticated end to end (result_hash covers every
  // payload byte), so unlike v2 snapshots, no interior flip survives — a
  // flipped delta can never silently patch a serving generation.
  const int survivors = FuzzByteFlips(bytes, "imr_fuzz_mut.imrd", 400,
                                      0xCAFE, ProbeDelta);
  EXPECT_EQ(survivors, 0);
}

TEST(SnapshotFuzzTest, TruncationsNeverCrashOrHalfLoad) {
  FuzzTruncations(Slurp(Fixture().v2_path), "imr_fuzz_trunc_v2.imrs", 40,
                  0x7777, ProbeSnapshot);
}

TEST(SnapshotFuzzTest, V1AndDeltaTruncationsNeverCrashOrHalfLoad) {
  FuzzTruncations(Slurp(Fixture().v1_path), "imr_fuzz_trunc_v1.imrs", 30,
                  0xABCD, ProbeSnapshot);
  FuzzTruncations(Slurp(Fixture().delta_path), "imr_fuzz_trunc.imrd", 30,
                  0x1234, ProbeDelta);
}

TEST(SnapshotFuzzTest, ErrorsNameTheFile) {
  // Spot-check the diagnosability contract: corruption Statuses carry the
  // path so an operator knows WHICH generation file is bad.
  const std::string bytes = Slurp(Fixture().v2_path);
  std::string mutant = bytes;
  mutant[9] = static_cast<char>(mutant[9] ^ 0x40);  // section tag byte
  const std::string path = WriteMutant(mutant, "imr_fuzz_named.imrs");
  const util::Status status = serve::LoadSnapshot(path).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("imr_fuzz_named.imrs"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace imr
