#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "datagen/distant_supervision.h"
#include "datagen/presets.h"
#include "datagen/stats.h"
#include "datagen/templates.h"
#include "datagen/unlabeled.h"
#include "datagen/world.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace imr::datagen {
namespace {

WorldConfig SmallWorldConfig() {
  WorldConfig config;
  config.num_relations = 6;
  config.pairs_per_relation = 12;
  config.seed = 3;
  return config;
}

TemplateConfig SmallTemplateConfig() {
  TemplateConfig config;
  config.num_relations = 6;
  config.background_vocab = 50;
  config.seed = 5;
  return config;
}

TEST(WorldTest, BuildsRequestedShape) {
  World world = BuildWorld(SmallWorldConfig());
  EXPECT_EQ(world.graph.num_relations(), 6);
  EXPECT_EQ(world.graph.relation(kg::kNaRelation).name, "NA");
  EXPECT_GT(world.graph.num_entities(), 0);
  // Every non-NA relation has facts and role clusters.
  for (int r = 1; r < 6; ++r) {
    EXPECT_FALSE(world.head_role[static_cast<size_t>(r)].empty());
    EXPECT_FALSE(world.tail_role[static_cast<size_t>(r)].empty());
  }
  EXPECT_GT(world.graph.triples().size(), 5u * 6u);
}

TEST(WorldTest, FactsRespectTypeSignatures) {
  World world = BuildWorld(SmallWorldConfig());
  for (const kg::Triple& triple : world.graph.triples()) {
    EXPECT_TRUE(
        world.graph.TypeCompatible(triple.head, triple.relation, triple.tail))
        << world.graph.entity(triple.head).name << " -"
        << world.graph.relation(triple.relation).name;
  }
}

TEST(WorldTest, DeterministicForSeed) {
  World a = BuildWorld(SmallWorldConfig());
  World b = BuildWorld(SmallWorldConfig());
  ASSERT_EQ(a.graph.triples().size(), b.graph.triples().size());
  for (size_t i = 0; i < a.graph.triples().size(); ++i) {
    EXPECT_EQ(a.graph.triples()[i].head, b.graph.triples()[i].head);
    EXPECT_EQ(a.graph.triples()[i].tail, b.graph.triples()[i].tail);
  }
}

TEST(WorldTest, SomeEntitiesHaveMultipleTypes) {
  WorldConfig config = SmallWorldConfig();
  config.extra_type_prob = 0.5;
  World world = BuildWorld(config);
  int multi = 0;
  for (const kg::Entity& e : world.graph.entities())
    multi += (e.type_ids.size() > 1);
  EXPECT_GT(multi, 0);
}

TEST(TemplateTest, RealisedSentenceContainsEntitiesAtIndices) {
  TemplateRealiser realiser(SmallTemplateConfig());
  util::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    text::Sentence s = realiser.Realise(2, "head_ent", "tail_ent", &rng);
    ASSERT_LT(static_cast<size_t>(s.head_index), s.tokens.size());
    ASSERT_LT(static_cast<size_t>(s.tail_index), s.tokens.size());
    EXPECT_EQ(s.tokens[static_cast<size_t>(s.head_index)], "head_ent");
    EXPECT_EQ(s.tokens[static_cast<size_t>(s.tail_index)], "tail_ent");
    EXPECT_NE(s.head_index, s.tail_index);
  }
}

TEST(TemplateTest, RelationSentencesCarryTriggers) {
  TemplateRealiser realiser(SmallTemplateConfig());
  util::Rng rng(9);
  const auto& triggers = realiser.Triggers(3);
  ASSERT_FALSE(triggers.empty());
  std::set<std::string> trigger_set(triggers.begin(), triggers.end());
  int with_trigger = 0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    text::Sentence s = realiser.Realise(3, "h", "t", &rng);
    for (const std::string& token : s.tokens) {
      if (trigger_set.count(token)) {
        ++with_trigger;
        break;
      }
    }
  }
  // Most relational sentences must carry lexical evidence (a trigger can
  // occasionally be overwritten by entity collision or skipped).
  EXPECT_GT(with_trigger, n * 6 / 10);
}

TEST(TemplateTest, NaSentencesNeverCarryTriggers) {
  TemplateRealiser realiser(SmallTemplateConfig());
  util::Rng rng(11);
  std::set<std::string> all_triggers;
  for (int r = 1; r < 6; ++r)
    for (const auto& t : realiser.Triggers(r)) all_triggers.insert(t);
  for (int i = 0; i < 100; ++i) {
    text::Sentence s = realiser.Realise(kg::kNaRelation, "h", "t", &rng);
    for (const std::string& token : s.tokens) {
      EXPECT_EQ(all_triggers.count(token), 0u) << token;
    }
  }
}

TEST(TemplateTest, LengthsWithinBounds) {
  TemplateConfig config = SmallTemplateConfig();
  config.min_length = 6;
  config.max_length = 9;
  TemplateRealiser realiser(config);
  util::Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    text::Sentence s = realiser.Realise(1, "h", "t", &rng);
    EXPECT_GE(s.tokens.size(), 6u);
    EXPECT_LE(s.tokens.size(), 9u);
  }
}

class DistantSupervisionTest : public ::testing::Test {
 protected:
  DistantSupervisionTest()
      : world_(BuildWorld(SmallWorldConfig())),
        realiser_(SmallTemplateConfig()) {
    config_.seed = 21;
    corpus_ = SampleDistantSupervision(world_, realiser_, config_);
  }

  World world_;
  TemplateRealiser realiser_;
  DistantSupervisionConfig config_;
  DistantSupervisionCorpus corpus_;
};

TEST_F(DistantSupervisionTest, SplitsAreDisjoint) {
  std::set<std::pair<int64_t, int64_t>> train_pairs;
  for (const auto& p : corpus_.train_pairs)
    train_pairs.insert({p.head, p.tail});
  for (const auto& p : corpus_.test_pairs) {
    EXPECT_EQ(train_pairs.count({p.head, p.tail}), 0u);
  }
}

TEST_F(DistantSupervisionTest, LabelsMatchKnowledgeGraph) {
  for (const auto& labeled : corpus_.train) {
    EXPECT_EQ(labeled.relation,
              world_.graph.PairRelation(labeled.sentence.head_entity,
                                        labeled.sentence.tail_entity));
  }
}

TEST_F(DistantSupervisionTest, ContainsNaPairs) {
  int na = 0, non_na = 0;
  for (const auto& p : corpus_.train_pairs)
    (p.relation == kg::kNaRelation ? na : non_na)++;
  EXPECT_GT(na, 0);
  EXPECT_GT(non_na, 0);
}

TEST_F(DistantSupervisionTest, NoiseRateRoughlyRespected) {
  int noisy = 0, total = 0;
  for (const auto& labeled : corpus_.train) {
    if (labeled.relation == kg::kNaRelation) continue;
    ++total;
    noisy += (labeled.true_relation != labeled.relation);
  }
  ASSERT_GT(total, 100);
  const double rate = static_cast<double>(noisy) / total;
  EXPECT_NEAR(rate, config_.noise_rate, 0.08);
}

TEST_F(DistantSupervisionTest, SentencesPerPairLongTailed) {
  PairCounts counts = CountPairs(corpus_.train);
  FrequencyHistogram hist = HistogramOf(counts);
  // Long tail: singleton+small buckets dominate.
  EXPECT_GT(hist.buckets[0] + hist.buckets[1],
            hist.buckets[2] + hist.buckets[3]);
  // But the tail is not empty.
  EXPECT_GT(hist.buckets[2] + hist.buckets[3], 0);
}

TEST(UnlabeledTest, RoleMixingCreatesSharedNeighbors) {
  World world = BuildWorld(SmallWorldConfig());
  TemplateRealiser realiser(SmallTemplateConfig());
  UnlabeledConfig config;
  config.seed = 31;
  UnlabeledCorpus corpus = SampleUnlabeledCorpus(world, realiser, config);
  ASSERT_FALSE(corpus.sentences.empty());

  // Count how many distinct tails each head of relation 1 co-occurs with.
  std::map<int64_t, std::set<int64_t>> partners;
  for (const auto& s : corpus.sentences)
    partners[s.head_entity].insert(s.tail_entity);
  const auto& heads = world.head_role[1];
  int heads_with_multiple = 0;
  for (kg::EntityId h : heads)
    if (partners[h].size() > 1) ++heads_with_multiple;
  EXPECT_GT(heads_with_multiple, 0);
}

TEST(UnlabeledTest, EntitiesAnnotated) {
  World world = BuildWorld(SmallWorldConfig());
  TemplateRealiser realiser(SmallTemplateConfig());
  UnlabeledConfig config;
  config.seed = 33;
  UnlabeledCorpus corpus = SampleUnlabeledCorpus(world, realiser, config);
  for (const auto& s : corpus.sentences) {
    ASSERT_GE(s.head_entity, 0);
    ASSERT_GE(s.tail_entity, 0);
    EXPECT_EQ(s.tokens[static_cast<size_t>(s.head_index)],
              world.graph.entity(s.head_entity).name);
  }
}

TEST(StatsTest, HistogramBuckets) {
  EXPECT_EQ(FrequencyHistogram::BucketOf(1), 0);
  EXPECT_EQ(FrequencyHistogram::BucketOf(2), 1);
  EXPECT_EQ(FrequencyHistogram::BucketOf(9), 1);
  EXPECT_EQ(FrequencyHistogram::BucketOf(10), 2);
  EXPECT_EQ(FrequencyHistogram::BucketOf(99), 2);
  EXPECT_EQ(FrequencyHistogram::BucketOf(100), 3);
}

TEST(PresetTest, GdsShape) {
  PresetOptions options;
  options.scale = 0.2;
  SyntheticDataset dataset = MakeGdsLike(options);
  EXPECT_EQ(dataset.name, "gds");
  EXPECT_EQ(dataset.world.graph.num_relations(), 5);
  EXPECT_FALSE(dataset.corpus.train.empty());
  EXPECT_FALSE(dataset.corpus.test.empty());
  EXPECT_FALSE(dataset.unlabeled.sentences.empty());
}

TEST(PresetTest, NytShape) {
  PresetOptions options;
  options.scale = 0.1;
  SyntheticDataset dataset = MakeNytLike(options);
  EXPECT_EQ(dataset.world.graph.num_relations(), 53);
  // NYT corpus must be bigger than a GDS corpus at the same scale in
  // sentences (Table II relation).
  SyntheticDataset gds = MakeGdsLike(options);
  EXPECT_GT(dataset.corpus.train.size() + dataset.corpus.test.size(),
            gds.corpus.train.size() + gds.corpus.test.size());
}

TEST(PresetTest, DispatchByName) {
  PresetOptions options;
  options.scale = 0.05;
  EXPECT_EQ(MakeDataset("nyt", options).world.graph.num_relations(), 53);
  EXPECT_EQ(MakeDataset("gds", options).world.graph.num_relations(), 5);
}

}  // namespace
}  // namespace imr::datagen
