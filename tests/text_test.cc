#include <gtest/gtest.h>

#include <cstdio>

#include "text/position.h"
#include "text/tokenizer.h"
#include "text/vocab.h"

namespace imr::text {
namespace {

TEST(TokenizerTest, SplitsWhitespaceAndPunctuation) {
  auto tokens = Tokenize("Obama was born in Honolulu, Hawaii.");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0], "obama");
  EXPECT_EQ(tokens[4], "honolulu");
  EXPECT_EQ(tokens[5], ",");
  EXPECT_EQ(tokens[6], "hawaii");
  EXPECT_EQ(tokens[7], ".");
}

TEST(TokenizerTest, KeepsUnderscoreEntities) {
  auto tokens = Tokenize("the University_of_Washington in seattle");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1], "university_of_washington");
}

TEST(TokenizerTest, NoLowercaseOption) {
  TokenizerOptions options;
  options.lowercase = false;
  auto tokens = Tokenize("Hello World", options);
  EXPECT_EQ(tokens[0], "Hello");
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \t\n ").empty());
}

TEST(TokenizerTest, FindToken) {
  auto tokens = Tokenize("a b c b");
  EXPECT_EQ(FindToken(tokens, "b"), 1);
  EXPECT_EQ(FindToken(tokens, "z"), -1);
}

TEST(VocabularyTest, ReservedIds) {
  Vocabulary vocab;
  vocab.Count("apple");
  vocab.Freeze();
  EXPECT_EQ(vocab.Word(Vocabulary::kPadId), "<pad>");
  EXPECT_EQ(vocab.Word(Vocabulary::kUnkId), "<unk>");
  EXPECT_EQ(vocab.size(), 3);
  EXPECT_EQ(vocab.Id("apple"), 2);
  EXPECT_EQ(vocab.Id("banana"), Vocabulary::kUnkId);
}

TEST(VocabularyTest, MinCountPrunes) {
  Vocabulary vocab;
  for (int i = 0; i < 3; ++i) vocab.Count("common");
  vocab.Count("rare");
  vocab.Freeze(/*min_count=*/2);
  EXPECT_TRUE(vocab.Contains("common"));
  EXPECT_FALSE(vocab.Contains("rare"));
  EXPECT_EQ(vocab.Id("rare"), Vocabulary::kUnkId);
}

TEST(VocabularyTest, DeterministicIdsByFrequencyThenName) {
  Vocabulary vocab;
  vocab.Count("zeta");
  vocab.Count("zeta");
  vocab.Count("alpha");
  vocab.Count("beta");
  vocab.Freeze();
  EXPECT_EQ(vocab.Id("zeta"), 2);   // most frequent first
  EXPECT_EQ(vocab.Id("alpha"), 3);  // then lexicographic
  EXPECT_EQ(vocab.Id("beta"), 4);
}

TEST(VocabularyTest, IdsForTokenSequence) {
  Vocabulary vocab;
  vocab.Count("a");
  vocab.Count("b");
  vocab.Freeze();
  auto ids = vocab.Ids({"a", "x", "b"});
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[1], Vocabulary::kUnkId);
}

TEST(VocabularyTest, SaveLoadRoundTrip) {
  Vocabulary vocab;
  vocab.Count("hello");
  vocab.Count("world");
  vocab.Count("hello");
  vocab.Freeze();
  const std::string path = "/tmp/imr_vocab_test.bin";
  ASSERT_TRUE(vocab.Save(path).ok());
  auto loaded = Vocabulary::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), vocab.size());
  EXPECT_EQ(loaded->Id("hello"), vocab.Id("hello"));
  EXPECT_EQ(loaded->Id("nope"), Vocabulary::kUnkId);
  std::remove(path.c_str());
}

TEST(VocabularyTest, SaveUnfrozenFails) {
  Vocabulary vocab;
  vocab.Count("x");
  EXPECT_FALSE(vocab.Save("/tmp/imr_vocab_unfrozen.bin").ok());
}

TEST(PositionTest, RelativeIdsClippedAndShifted) {
  auto ids = RelativePositionIds(5, 2, 10);
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids[0], 8);   // -2 + 10
  EXPECT_EQ(ids[2], 10);  // 0 + 10
  EXPECT_EQ(ids[4], 12);  // +2 + 10

  // Clipping on long sentences.
  auto long_ids = RelativePositionIds(100, 0, 10);
  EXPECT_EQ(long_ids[99], 20);  // clipped at +10
  EXPECT_EQ(long_ids[50], 20);
}

TEST(PositionTest, TruncationNoOpWhenShort) {
  auto r = TruncateAroundEntities(10, 2, 7, 20);
  EXPECT_EQ(r.begin, 0);
  EXPECT_EQ(r.end, 10);
}

TEST(PositionTest, TruncationKeepsBothEntities) {
  for (int head = 0; head < 40; head += 7) {
    for (int tail = 0; tail < 40; tail += 5) {
      if (head == tail) continue;
      auto r = TruncateAroundEntities(40, head, tail, 15);
      EXPECT_EQ(r.end - r.begin, 15);
      if (std::abs(head - tail) < 15) {
        EXPECT_LE(r.begin, std::min(head, tail))
            << "head=" << head << " tail=" << tail;
        EXPECT_GT(r.end, std::max(head, tail));
      }
    }
  }
}

TEST(PositionTest, TruncationWindowInBounds) {
  auto r = TruncateAroundEntities(30, 29, 28, 10);
  EXPECT_GE(r.begin, 0);
  EXPECT_LE(r.end, 30);
  EXPECT_EQ(r.end - r.begin, 10);
}

}  // namespace
}  // namespace imr::text
