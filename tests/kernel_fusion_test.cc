// Fused-kernel correctness: AffineTanh must be bit-identical to the
// MatMul + AddRowVector + Tanh composition it replaces (same floats at any
// thread count, forward and backward), the fused CrossEntropyLoss must agree
// with an explicit LogSoftmax construction, and the in-place optimizer
// updates must reproduce the original element loops exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/gradcheck.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace imr {
namespace {

using tensor::Tensor;

std::vector<float> RandomData(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> out(n);
  for (float& v : out) {
    v = static_cast<float>(rng.Uniform(-1.5, 1.5));
  }
  return out;
}

// Builds fused and composed graphs over separate but bit-identical leaves,
// drives both backward through the same weighting tensor, and requires every
// float — output and all three leaf gradients — to match exactly.
void ExpectAffineTanhMatchesComposition(const std::vector<int>& x_shape,
                                        int inner, int cols, uint64_t seed) {
  size_t x_size = 1;
  for (int d : x_shape) x_size *= static_cast<size_t>(d);
  const std::vector<float> xd = RandomData(x_size, seed);
  const std::vector<float> wd =
      RandomData(static_cast<size_t>(inner) * cols, seed + 1);
  const std::vector<float> bd = RandomData(static_cast<size_t>(cols),
                                           seed + 2);

  auto run = [&](bool fused) {
    Tensor x = Tensor::FromData(x_shape, xd, /*requires_grad=*/true);
    Tensor w = Tensor::FromData({inner, cols}, wd, /*requires_grad=*/true);
    Tensor b = Tensor::FromData({cols}, bd, /*requires_grad=*/true);
    Tensor y;
    if (fused) {
      y = tensor::AffineTanh(x, w, b);
    } else if (x_shape.size() == 1) {
      y = tensor::Tanh(tensor::Add(tensor::MatMul(x, w), b));
    } else {
      y = tensor::Tanh(tensor::AddRowVector(tensor::MatMul(x, w), b));
    }
    // Non-uniform upstream gradient so the backward kernels see a general
    // incoming grad, not all-ones.
    Tensor c = Tensor::FromData(y.shape(), RandomData(y.size(), seed + 3));
    tensor::Sum(tensor::Mul(y, c)).Backward();
    struct Result {
      std::vector<float> y, gx, gw, gb;
    };
    return Result{y.data(), x.grad(), w.grad(), b.grad()};
  };

  const auto fused = run(true);
  const auto composed = run(false);
  EXPECT_EQ(fused.y, composed.y);
  EXPECT_EQ(fused.gx, composed.gx);
  EXPECT_EQ(fused.gw, composed.gw);
  EXPECT_EQ(fused.gb, composed.gb);
}

TEST(AffineTanhTest, BitIdenticalToCompositionSmall) {
  // Below the parallel/packing thresholds: plain ikj kernels.
  ExpectAffineTanhMatchesComposition({3, 4}, 4, 5, 11);
}

TEST(AffineTanhTest, BitIdenticalToCompositionPacked) {
  // 48*40*56 flops exceed kMatMulParallelFlops and rows >= the packing
  // minimum, so this exercises the tiled/packed MatMul path.
  ExpectAffineTanhMatchesComposition({48, 40}, 40, 56, 12);
}

TEST(AffineTanhTest, BitIdenticalToCompositionRank1) {
  ExpectAffineTanhMatchesComposition({40}, 40, 56, 13);
}

TEST(AffineTanhTest, BitIdenticalAcrossThreadCounts) {
  const int saved_threads = util::GlobalThreads();
  auto run = [] {
    Tensor x = Tensor::FromData({48, 40}, RandomData(48 * 40, 21),
                                /*requires_grad=*/true);
    Tensor w = Tensor::FromData({40, 56}, RandomData(40 * 56, 22),
                                /*requires_grad=*/true);
    Tensor b =
        Tensor::FromData({56}, RandomData(56, 23), /*requires_grad=*/true);
    Tensor y = tensor::AffineTanh(x, w, b);
    Tensor c = Tensor::FromData(y.shape(), RandomData(y.size(), 24));
    tensor::Sum(tensor::Mul(y, c)).Backward();
    struct Result {
      std::vector<float> y, gx, gw, gb;
    };
    return Result{y.data(), x.grad(), w.grad(), b.grad()};
  };
  util::SetGlobalThreads(1);
  const auto serial = run();
  util::SetGlobalThreads(4);
  const auto threaded = run();
  util::SetGlobalThreads(saved_threads);
  EXPECT_EQ(serial.y, threaded.y);
  EXPECT_EQ(serial.gx, threaded.gx);
  EXPECT_EQ(serial.gw, threaded.gw);
  EXPECT_EQ(serial.gb, threaded.gb);
}

TEST(AffineTanhTest, GradCheckThroughLinearForwardTanh) {
  util::Rng rng(31);
  nn::Linear layer(6, 5, &rng);
  Tensor x = nn::NormalInit({4, 6}, 1.0f, &rng);
  Tensor c = nn::NormalInit({4, 5}, 1.0f, &rng);
  auto result = nn::CheckModuleGradients(&layer, [&] {
    return tensor::Sum(tensor::Mul(layer.ForwardTanh(x), c));
  });
  EXPECT_LT(result.max_abs_diff, 1e-2) << result.worst_parameter;
}

TEST(FusedCrossEntropyTest, GradCheckThroughLinear) {
  util::Rng rng(32);
  nn::Linear layer(5, 4, &rng);
  Tensor x = nn::NormalInit({6, 5}, 1.0f, &rng);
  const std::vector<int> labels = {0, 3, 1, 2, 3, 0};
  auto result = nn::CheckModuleGradients(&layer, [&] {
    return tensor::CrossEntropyLoss(layer.Forward(x), labels);
  });
  EXPECT_LT(result.max_abs_diff, 1e-2) << result.worst_parameter;
}

TEST(FusedCrossEntropyTest, MatchesLogSoftmaxComposition) {
  const int rows = 6, cols = 5;
  const std::vector<float> ld = RandomData(rows * cols, 41);
  const std::vector<int> labels = {0, 3, 1, 2, 4, 0};

  Tensor fused_logits =
      Tensor::FromData({rows, cols}, ld, /*requires_grad=*/true);
  Tensor fused_loss = tensor::CrossEntropyLoss(fused_logits, labels);
  fused_loss.Backward();

  // Reference: -mean over rows of the label entry of LogSoftmax, built from
  // generic ops via a one-hot mask.
  Tensor ref_logits =
      Tensor::FromData({rows, cols}, ld, /*requires_grad=*/true);
  std::vector<float> onehot(static_cast<size_t>(rows) * cols, 0.0f);
  for (int r = 0; r < rows; ++r) {
    onehot[static_cast<size_t>(r) * cols + labels[static_cast<size_t>(r)]] =
        1.0f;
  }
  Tensor mask = Tensor::FromData({rows, cols}, onehot);
  Tensor ref_loss = tensor::Scale(
      tensor::Sum(tensor::Mul(tensor::LogSoftmax(ref_logits), mask)),
      -1.0f / static_cast<float>(rows));
  ref_loss.Backward();

  EXPECT_NEAR(fused_loss.item(), ref_loss.item(), 1e-6);
  ASSERT_EQ(fused_logits.grad().size(), ref_logits.grad().size());
  for (size_t i = 0; i < fused_logits.grad().size(); ++i) {
    EXPECT_NEAR(fused_logits.grad()[i], ref_logits.grad()[i], 1e-6) << i;
  }
}

// ---- optimizer updates ----------------------------------------------------

struct ParamSnapshot {
  std::vector<std::vector<float>> values;
  std::vector<std::vector<float>> grads;
};

ParamSnapshot Snapshot(nn::Module* module) {
  ParamSnapshot snap;
  for (nn::NamedParameter& p : module->Parameters()) {
    snap.values.push_back(p.tensor.data());
    snap.grads.push_back(p.tensor.grad());
  }
  return snap;
}

void PopulateGrads(nn::Linear* layer, const Tensor& x, const Tensor& c) {
  tensor::Sum(tensor::Mul(layer->Forward(x), c)).Backward();
}

std::vector<std::vector<float>> CurrentValues(nn::Module* module) {
  std::vector<std::vector<float>> values;
  for (nn::NamedParameter& p : module->Parameters()) {
    values.push_back(p.tensor.data());
  }
  return values;
}

TEST(OptimizerFusionTest, SgdMatchesReferenceLoops) {
  for (const bool with_decay : {false, true}) {
    util::Rng rng(51);
    nn::Linear layer(4, 3, &rng);
    Tensor x = nn::NormalInit({5, 4}, 1.0f, &rng);
    Tensor c = nn::NormalInit({5, 3}, 1.0f, &rng);
    const float lr = 0.1f;
    const float wd = with_decay ? 0.01f : 0.0f;
    const float clip = with_decay ? 0.5f : 0.0f;  // small enough to trigger
    nn::Sgd opt(&layer, lr, wd, clip);

    PopulateGrads(&layer, x, c);
    ParamSnapshot snap = Snapshot(&layer);

    // Reference: the pre-fusion element loops, verbatim.
    float scale = 1.0f;
    if (clip > 0.0f) {
      double total = 0.0;
      for (const auto& g : snap.grads) {
        for (float gv : g) total += static_cast<double>(gv) * gv;
      }
      const double norm = std::sqrt(total);
      if (norm > clip) scale = static_cast<float>(clip / norm);
      ASSERT_LT(scale, 1.0f);  // the clip branch must actually fire
    }
    for (size_t p = 0; p < snap.values.size(); ++p) {
      auto& v = snap.values[p];
      const auto& g = snap.grads[p];
      for (size_t i = 0; i < v.size(); ++i) {
        if (wd > 0.0f) {
          const float grad = g[i] * scale + wd * v[i];
          v[i] -= lr * grad;
        } else {
          v[i] -= lr * (g[i] * scale);
        }
      }
    }

    opt.Step();
    EXPECT_EQ(CurrentValues(&layer), snap.values)
        << "weight_decay=" << with_decay;
  }
}

TEST(OptimizerFusionTest, AdagradMatchesReferenceLoops) {
  util::Rng rng(52);
  nn::Linear layer(4, 3, &rng);
  Tensor x = nn::NormalInit({5, 4}, 1.0f, &rng);
  Tensor c = nn::NormalInit({5, 3}, 1.0f, &rng);
  const float lr = 0.05f;
  const float eps = 1e-8f;
  nn::Adagrad opt(&layer, lr, eps);

  std::vector<std::vector<float>> acc;
  for (nn::NamedParameter& p : layer.Parameters()) {
    acc.emplace_back(p.tensor.size(), 0.0f);
  }
  // Two steps so the accumulator history feeds into the second update.
  for (int step = 0; step < 2; ++step) {
    PopulateGrads(&layer, x, c);
    ParamSnapshot snap = Snapshot(&layer);
    for (size_t p = 0; p < snap.values.size(); ++p) {
      auto& v = snap.values[p];
      const auto& g = snap.grads[p];
      for (size_t i = 0; i < v.size(); ++i) {
        acc[p][i] += g[i] * g[i];
        v[i] -= lr * g[i] / (std::sqrt(acc[p][i]) + eps);
      }
    }
    opt.Step();
    EXPECT_EQ(CurrentValues(&layer), snap.values) << "step " << step;
  }
}

TEST(OptimizerFusionTest, AdamMatchesReferenceLoops) {
  util::Rng rng(53);
  nn::Linear layer(4, 3, &rng);
  Tensor x = nn::NormalInit({5, 4}, 1.0f, &rng);
  Tensor c = nn::NormalInit({5, 3}, 1.0f, &rng);
  const float lr = 0.01f, beta1 = 0.9f, beta2 = 0.999f, eps = 1e-8f;
  nn::Adam opt(&layer, lr, beta1, beta2, eps);

  std::vector<std::vector<float>> m, s;
  for (nn::NamedParameter& p : layer.Parameters()) {
    m.emplace_back(p.tensor.size(), 0.0f);
    s.emplace_back(p.tensor.size(), 0.0f);
  }
  // Bias correction via running double beta-power products, matching the
  // optimizer (float std::pow drifts; see AdamBiasCorrection* in
  // sparse_grad_test.cc for the large-step regression).
  double beta1_pow = 1.0, beta2_pow = 1.0;
  for (int step = 1; step <= 2; ++step) {
    PopulateGrads(&layer, x, c);
    ParamSnapshot snap = Snapshot(&layer);
    beta1_pow *= static_cast<double>(beta1);
    beta2_pow *= static_cast<double>(beta2);
    const float bias1 = static_cast<float>(1.0 - beta1_pow);
    const float bias2 = static_cast<float>(1.0 - beta2_pow);
    for (size_t p = 0; p < snap.values.size(); ++p) {
      auto& v = snap.values[p];
      const auto& g = snap.grads[p];
      for (size_t i = 0; i < v.size(); ++i) {
        m[p][i] = beta1 * m[p][i] + (1.0f - beta1) * g[i];
        s[p][i] = beta2 * s[p][i] + (1.0f - beta2) * g[i] * g[i];
        const float m_hat = m[p][i] / bias1;
        const float v_hat = s[p][i] / bias2;
        v[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
      }
    }
    opt.Step();
    EXPECT_EQ(CurrentValues(&layer), snap.values) << "step " << step;
  }
}

}  // namespace
}  // namespace imr
