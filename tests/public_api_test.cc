// Compilation-surface test: the umbrella header must be self-contained and
// the whole public API reachable through it. Exercises one tiny call into
// each namespace so the symbols actually link.
#include "imr.h"

#include <gtest/gtest.h>

namespace {

TEST(PublicApiTest, EveryNamespaceReachableThroughUmbrellaHeader) {
  // util
  imr::util::Rng rng(1);
  EXPECT_NE(rng.Next(), 0u);
  EXPECT_TRUE(imr::util::OkStatus().ok());

  // tensor
  imr::tensor::Tensor t = imr::tensor::Tensor::Scalar(2.0f);
  EXPECT_FLOAT_EQ(imr::tensor::Scale(t, 2.0f).item(), 4.0f);

  // text
  EXPECT_EQ(imr::text::Tokenize("a b").size(), 2u);

  // kg
  EXPECT_EQ(imr::kg::CoarseTypeId("person"), 0);

  // datagen (smallest possible world)
  imr::datagen::WorldConfig world_config;
  world_config.num_relations = 2;
  world_config.pairs_per_relation = 2;
  imr::datagen::World world = imr::datagen::BuildWorld(world_config);
  EXPECT_GT(world.graph.num_entities(), 0);

  // graph
  imr::graph::ProximityGraph proximity(4);
  proximity.AddCooccurrence(0, 1);
  proximity.AddCooccurrence(0, 1);
  proximity.Finalize(2);
  EXPECT_EQ(proximity.edges().size(), 1u);

  // nn
  imr::nn::Linear linear(2, 2, &rng);
  EXPECT_EQ(linear.ParameterCount(), 6u);

  // eval
  auto f1 = imr::eval::MicroF1NonNa({1}, {1});
  EXPECT_NEAR(f1.f1, 1.0, 1e-12);

  // re
  imr::re::PaModelConfig config = imr::re::PaperDefaults(5, 100);
  EXPECT_EQ(config.encoder_config.filters, 230);
}

}  // namespace
