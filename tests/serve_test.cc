// serve:: subsystem tests — snapshot round trips (bit-identical logits,
// loud failure on corruption), the LRU cache, and the inference engine's
// determinism across caching, thread counts, and the async micro-batcher.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include "datagen/presets.h"
#include "graph/line.h"
#include "graph/proximity_graph.h"
#include "nn/module.h"
#include "re/bag_dataset.h"
#include "re/pa_model.h"
#include "re/trainer.h"
#include "serve/admission.h"
#include "serve/delta.h"
#include "serve/inference_engine.h"
#include "serve/lru_cache.h"
#include "serve/router.h"
#include "serve/sharded_cache.h"
#include "serve/snapshot.h"
#include "serve/snapshot_watcher.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/serialization.h"

namespace imr {
namespace {

// One trained pipeline + saved snapshot shared across tests (training is
// the expensive part; every test reads, none mutates).
struct ServeFixture {
  ServeFixture() {
    datagen::PresetOptions options;
    options.scale = 0.5;
    options.seed = 7;
    dataset = std::make_unique<datagen::SyntheticDataset>(
        datagen::MakeGdsLike(options));
    bag_options.max_sentence_length = 40;
    bag_options.max_position = 20;
    bags = std::make_unique<re::BagDataset>(re::BagDataset::Build(
        dataset->world.graph, dataset->corpus.train, dataset->corpus.test,
        bag_options));
    graph::ProximityGraph proximity(dataset->world.graph.num_entities());
    proximity.AddCorpus(dataset->unlabeled.sentences);
    proximity.Finalize(2);
    graph::LineConfig line;
    line.dim = 32;
    line.samples_per_edge = 150;
    embeddings = graph::TrainLine(proximity, line);
    IMR_CHECK(bags->AttachMutualRelations(embeddings).ok());

    re::PaModelConfig config;
    config.num_relations = bags->num_relations();
    config.encoder = "pcnn";
    config.aggregation = re::Aggregation::kAttention;
    config.use_mutual_relation = true;
    config.use_entity_type = true;
    config.mutual_relation_dim = embeddings.dim();
    config.type_dim = 6;
    config.encoder_config.vocab_size = bags->vocabulary().size();
    config.encoder_config.word_dim = 12;
    config.encoder_config.position_dim = 3;
    config.encoder_config.max_position = 20;
    config.encoder_config.filters = 16;
    config.encoder_config.word_dropout = 0.25f;

    util::Rng rng(1);
    model = std::make_unique<re::PaModel>(config, &rng);
    re::TrainerConfig trainer_config;
    trainer_config.epochs = 8;
    trainer_config.batch_size = 32;
    trainer_config.optimizer = "adam";
    trainer_config.learning_rate = 0.01f;
    trainer_config.seed = 3;
    re::Trainer trainer(model.get(), trainer_config);
    trainer.Train(bags->train_bags());
    model->SetTraining(false);

    snapshot_path = testing::TempDir() + "/imr_serve_test.imrs";
    IMR_CHECK(serve::SaveSnapshot(*model, bags->vocabulary(), embeddings,
                                  dataset->world.graph, bag_options,
                                  /*trained_steps=*/8, "serve_test",
                                  snapshot_path)
                  .ok());

    // Generation B for hot-swap tests: the same trained model over
    // embeddings retrained with a different seed — bit-different MR
    // vectors, so the two generations give bit-different predictions.
    // Saved WITH a QEMB section so a swap can also flip the quantized
    // serving path onto a file-supplied int8 store.
    graph::LineConfig line_b = line;
    line_b.seed = 41;
    embeddings_b = graph::TrainLine(proximity, line_b);
    const auto quantized_b =
        graph::QuantizedEmbeddingStore::Quantize(embeddings_b);
    snapshot_b_path = testing::TempDir() + "/imr_serve_test_b.imrs";
    IMR_CHECK(serve::SaveSnapshot(*model, bags->vocabulary(), embeddings_b,
                                  dataset->world.graph, bag_options,
                                  /*trained_steps=*/9, "serve_test_b",
                                  snapshot_b_path, &quantized_b)
                  .ok());
  }

  /// Sentences of the held-out corpus mentioning the bag's entity pair.
  std::vector<text::Sentence> PairSentences(const re::Bag& bag,
                                            size_t limit = 4) const {
    std::vector<text::Sentence> sentences;
    for (const text::LabeledSentence& labeled : dataset->corpus.test) {
      if (labeled.sentence.head_entity == bag.head &&
          labeled.sentence.tail_entity == bag.tail) {
        sentences.push_back(labeled.sentence);
        if (sentences.size() >= limit) break;
      }
    }
    return sentences;
  }

  /// Engine-style queries derived from held-out bags.
  std::vector<serve::Query> SampleQueries(size_t count) const {
    std::vector<serve::Query> queries;
    for (const re::Bag& bag : bags->test_bags()) {
      serve::Query query;
      query.head = bag.head;
      query.tail = bag.tail;
      query.sentences = PairSentences(bag);
      if (query.sentences.empty()) continue;
      queries.push_back(std::move(query));
      if (queries.size() >= count) break;
    }
    IMR_CHECK(!queries.empty());
    return queries;
  }

  std::unique_ptr<datagen::SyntheticDataset> dataset;
  std::unique_ptr<re::BagDataset> bags;
  re::BagDatasetOptions bag_options;
  graph::EmbeddingStore embeddings;
  graph::EmbeddingStore embeddings_b;
  std::unique_ptr<re::PaModel> model;
  std::string snapshot_path;
  std::string snapshot_b_path;
};

ServeFixture& Shared() {
  static ServeFixture* fixture = new ServeFixture();
  return *fixture;
}

// ---- LRU cache ------------------------------------------------------------

TEST(LruCacheTest, PutGetAndEvictionOrder) {
  serve::LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_EQ(cache.Get(1).value(), 10);  // 1 becomes most-recent
  cache.Put(3, 30);                     // evicts 2
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_EQ(cache.Get(1).value(), 10);
  EXPECT_EQ(cache.Get(3).value(), 30);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PutRefreshesExistingKey) {
  serve::LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // refresh, not insert
  cache.Put(3, 30);  // evicts 2 (1 was refreshed)
  EXPECT_EQ(cache.Get(1).value(), 11);
  EXPECT_FALSE(cache.Get(2).has_value());
}

TEST(LruCacheTest, ZeroCapacityDisables) {
  serve::LruCache<int, int> cache(0);
  cache.Put(1, 10);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// ---- snapshot round trip --------------------------------------------------

TEST(SnapshotTest, RoundTripLogitsBitIdentical) {
  ServeFixture& f = Shared();
  auto snapshot = serve::LoadSnapshot(f.snapshot_path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_NE(snapshot->model, nullptr);
  EXPECT_FALSE(snapshot->model->training());

  int checked = 0;
  for (const re::Bag& bag : f.bags->test_bags()) {
    const std::vector<float> expected = f.model->Predict(bag);
    const std::vector<float> actual = snapshot->model->Predict(bag);
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t r = 0; r < expected.size(); ++r) {
      ASSERT_EQ(expected[r], actual[r]) << "relation " << r;  // bit-exact
    }
    if (++checked >= 25) break;
  }
}

TEST(SnapshotTest, PreservesManifestAndTables) {
  ServeFixture& f = Shared();
  auto snapshot = serve::LoadSnapshot(f.snapshot_path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  EXPECT_EQ(snapshot->manifest.model_config.num_relations,
            f.bags->num_relations());
  EXPECT_EQ(snapshot->manifest.model_config.encoder, "pcnn");
  EXPECT_TRUE(snapshot->manifest.model_config.use_mutual_relation);
  EXPECT_EQ(snapshot->manifest.bag_options.max_sentence_length,
            f.bag_options.max_sentence_length);
  EXPECT_EQ(snapshot->manifest.bag_options.max_position,
            f.bag_options.max_position);
  EXPECT_EQ(snapshot->manifest.trained_steps, 8u);
  EXPECT_EQ(snapshot->manifest.notes, "serve_test");

  EXPECT_EQ(snapshot->vocab().size(), f.bags->vocabulary().size());
  ASSERT_EQ(static_cast<int>(snapshot->relation_names().size()),
            f.bags->num_relations());
  EXPECT_EQ(snapshot->relation_names()[0],
            f.dataset->world.graph.relation(0).name);
  ASSERT_EQ(static_cast<int>(snapshot->entities().size()),
            f.dataset->world.graph.num_entities());
  EXPECT_EQ(snapshot->entities()[0].name,
            f.dataset->world.graph.entity(0).name);
  EXPECT_EQ(snapshot->embeddings.num_vertices(),
            f.embeddings.num_vertices());
  EXPECT_EQ(snapshot->embeddings.dim(), f.embeddings.dim());
}

TEST(SnapshotTest, SaveRejectsInconsistentBundle) {
  ServeFixture& f = Shared();
  const std::string path = testing::TempDir() + "/imr_serve_bad_save.imrs";
  // Wrong relation-name count.
  auto status = serve::SaveSnapshot(
      *f.model, f.bags->vocabulary(), f.embeddings, {"only-one"}, {},
      f.bag_options, 0, "", path);
  EXPECT_FALSE(status.ok());
  // Entity table sized unlike the embedding store.
  std::vector<std::string> names;
  for (const auto& schema : f.dataset->world.graph.relations())
    names.push_back(schema.name);
  status = serve::SaveSnapshot(*f.model, f.bags->vocabulary(), f.embeddings,
                               names, {{"lonely", {0}}}, f.bag_options, 0, "",
                               path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

// ---- corruption -----------------------------------------------------------

std::string SlurpSnapshot() {
  std::ifstream in(Shared().snapshot_path, std::ios::binary);
  IMR_CHECK(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

util::Status LoadMutated(const std::string& bytes, const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  util::Status status = serve::LoadSnapshot(path).status();
  std::remove(path.c_str());
  return status;
}

TEST(SnapshotTest, RejectsWrongMagic) {
  std::string bytes = SlurpSnapshot();
  bytes[0] = static_cast<char>(bytes[0] ^ 0xFF);
  util::Status status = LoadMutated(bytes, "bad_magic.imrs");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("magic"), std::string::npos);
}

TEST(SnapshotTest, RejectsWrongVersion) {
  std::string bytes = SlurpSnapshot();
  bytes[4] = static_cast<char>(bytes[4] + 1);
  util::Status status = LoadMutated(bytes, "bad_version.imrs");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("version"), std::string::npos);
}

TEST(SnapshotTest, RejectsGarbageSectionTag) {
  std::string bytes = SlurpSnapshot();
  bytes[8] = static_cast<char>(bytes[8] ^ 0xFF);  // first section tag
  EXPECT_FALSE(LoadMutated(bytes, "bad_tag.imrs").ok());
}

TEST(SnapshotTest, RejectsTruncatedFiles) {
  const std::string bytes = SlurpSnapshot();
  // Header only, mid-section, and just shy of the end sentinel: every
  // truncation point must fail loudly, never half-load.
  for (size_t size : {size_t{12}, bytes.size() / 2, bytes.size() - 6}) {
    util::Status status =
        LoadMutated(bytes.substr(0, size), "truncated.imrs");
    EXPECT_FALSE(status.ok()) << "truncated to " << size << " bytes";
  }
}

// ---- Rng-free inference overload -----------------------------------------

TEST(PaModelTest, RngFreePredictMatchesRngOverload) {
  ServeFixture& f = Shared();
  util::Rng rng(123);
  int checked = 0;
  for (const re::Bag& bag : f.bags->test_bags()) {
    const std::vector<float> with_rng = f.model->Predict(bag, &rng);
    const std::vector<float> without = f.model->Predict(bag);
    ASSERT_EQ(with_rng.size(), without.size());
    for (size_t r = 0; r < without.size(); ++r)
      ASSERT_EQ(with_rng[r], without[r]);
    if (++checked >= 10) break;
  }
}

TEST(PaModelTest, EvalModeGuardRestoresTrainingMode) {
  ServeFixture& f = Shared();
  f.model->SetTraining(true);
  {
    nn::EvalModeGuard guard(f.model.get());
    EXPECT_FALSE(f.model->training());
  }
  EXPECT_TRUE(f.model->training());
  f.model->SetTraining(false);  // restore fixture invariant
}

// ---- inference engine -----------------------------------------------------

TEST(InferenceEngineTest, MatchesInProcessModel) {
  ServeFixture& f = Shared();
  auto engine = serve::InferenceEngine::Open(f.snapshot_path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  int checked = 0;
  for (const re::Bag& bag : f.bags->test_bags()) {
    serve::Query query;
    query.head = bag.head;
    query.tail = bag.tail;
    query.sentences = f.PairSentences(bag);
    if (query.sentences.empty()) continue;

    // The same bag, featurized in-process the way BagDataset does it.
    re::Bag manual;
    manual.head = bag.head;
    manual.tail = bag.tail;
    for (const text::Sentence& sentence : query.sentences) {
      manual.sentences.push_back(re::MakeEncoderInput(
          sentence, f.bags->vocabulary(), f.bag_options));
    }
    manual.head_types = f.dataset->world.graph.entity(bag.head).type_ids;
    manual.tail_types = f.dataset->world.graph.entity(bag.tail).type_ids;
    manual.mutual_relation = f.embeddings.MutualRelation(
        static_cast<int>(bag.head), static_cast<int>(bag.tail));

    const std::vector<float> expected = f.model->Predict(manual);
    auto prediction = (*engine)->Predict(query);
    ASSERT_TRUE(prediction.ok()) << prediction.status().ToString();
    ASSERT_EQ(prediction->probabilities.size(), expected.size());
    for (size_t r = 0; r < expected.size(); ++r)
      ASSERT_EQ(prediction->probabilities[r], expected[r]);
    ASSERT_FALSE(prediction->top.empty());
    EXPECT_EQ(prediction->top[0].name,
        (*engine)->snapshot().relation_names()[prediction->top[0].relation]);
    if (++checked >= 8) break;
  }
  EXPECT_GT(checked, 0);
}

TEST(InferenceEngineTest, CachedUncachedAndThreadedBitIdentical) {
  ServeFixture& f = Shared();
  serve::EngineOptions no_cache;
  no_cache.mr_cache_capacity = 0;
  serve::EngineOptions cached;
  cached.mr_cache_capacity = 256;
  serve::EngineOptions threaded;
  threaded.mr_cache_capacity = 256;
  threaded.threads = 4;

  auto engine_no_cache = serve::InferenceEngine::Open(f.snapshot_path, no_cache);
  auto engine_cached = serve::InferenceEngine::Open(f.snapshot_path, cached);
  auto engine_threaded =
      serve::InferenceEngine::Open(f.snapshot_path, threaded);
  ASSERT_TRUE(engine_no_cache.ok());
  ASSERT_TRUE(engine_cached.ok());
  ASSERT_TRUE(engine_threaded.ok());

  // Replay unique pairs three times so the cache actually gets hits.
  std::vector<serve::Query> queries = f.SampleQueries(12);
  std::vector<serve::Query> stream;
  for (int repeat = 0; repeat < 3; ++repeat)
    stream.insert(stream.end(), queries.begin(), queries.end());

  auto results_no_cache = (*engine_no_cache)->PredictBatch(stream);
  auto results_cached = (*engine_cached)->PredictBatch(stream);
  auto results_threaded = (*engine_threaded)->PredictBatch(stream);
  ASSERT_EQ(results_no_cache.size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(results_no_cache[i].ok());
    ASSERT_TRUE(results_cached[i].ok());
    ASSERT_TRUE(results_threaded[i].ok());
    const auto& baseline = results_no_cache[i]->probabilities;
    ASSERT_EQ(results_cached[i]->probabilities.size(), baseline.size());
    for (size_t r = 0; r < baseline.size(); ++r) {
      ASSERT_EQ(results_cached[i]->probabilities[r], baseline[r]);
      ASSERT_EQ(results_threaded[i]->probabilities[r], baseline[r]);
    }
  }

  const serve::EngineStats stats = (*engine_cached)->Stats();
  EXPECT_EQ(stats.requests, stream.size());
  EXPECT_GT(stats.mr_cache_hits, 0u);  // repeats hit the pair cache
  EXPECT_EQ(stats.mr_cache_hits + stats.mr_cache_misses, stream.size());
  const serve::EngineStats uncached_stats = (*engine_no_cache)->Stats();
  EXPECT_EQ(uncached_stats.mr_cache_hits, 0u);
}

TEST(InferenceEngineTest, AsyncMicroBatchingMatchesSync) {
  ServeFixture& f = Shared();
  serve::EngineOptions options;
  options.max_batch = 8;
  options.batch_delay_us = 500;
  auto engine = serve::InferenceEngine::Open(f.snapshot_path, options);
  ASSERT_TRUE(engine.ok());
  auto reference = serve::InferenceEngine::Open(f.snapshot_path);
  ASSERT_TRUE(reference.ok());

  std::vector<serve::Query> queries = f.SampleQueries(10);
  std::vector<std::future<util::StatusOr<serve::Prediction>>> futures;
  futures.reserve(queries.size() * 2);
  for (int repeat = 0; repeat < 2; ++repeat)
    for (const serve::Query& query : queries)
      futures.push_back((*engine)->SubmitAsync(query));

  for (size_t i = 0; i < futures.size(); ++i) {
    auto result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto expected = (*reference)->Predict(queries[i % queries.size()]);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(result->probabilities.size(), expected->probabilities.size());
    for (size_t r = 0; r < expected->probabilities.size(); ++r)
      ASSERT_EQ(result->probabilities[r], expected->probabilities[r]);
  }
  const serve::EngineStats stats = (*engine)->Stats();
  EXPECT_EQ(stats.requests, futures.size());
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GT(stats.qps, 0.0);
  EXPECT_GT(stats.p99_latency_us, 0.0);
}

TEST(InferenceEngineTest, MakeQueryResolvesNamesAndMentions) {
  ServeFixture& f = Shared();
  auto engine = serve::InferenceEngine::Open(f.snapshot_path);
  ASSERT_TRUE(engine.ok());

  // A held-out sentence whose tokens contain both entity names.
  const text::Sentence* found = nullptr;
  for (const text::LabeledSentence& labeled : f.dataset->corpus.test) {
    if (labeled.sentence.head_entity >= 0 &&
        labeled.sentence.tail_entity >= 0) {
      found = &labeled.sentence;
      break;
    }
  }
  ASSERT_NE(found, nullptr);
  const std::string head_name =
      f.dataset->world.graph.entity(found->head_entity).name;
  const std::string tail_name =
      f.dataset->world.graph.entity(found->tail_entity).name;

  text::Sentence unlocated = *found;
  unlocated.head_index = -1;
  unlocated.tail_index = -1;
  auto query = (*engine)->MakeQuery(head_name, tail_name, {unlocated});
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->head, found->head_entity);
  EXPECT_EQ(query->tail, found->tail_entity);
  ASSERT_EQ(query->sentences.size(), 1u);
  EXPECT_EQ(query->sentences[0].head_index, found->head_index);
  EXPECT_EQ(query->sentences[0].tail_index, found->tail_index);
  EXPECT_TRUE((*engine)->Predict(*query).ok());

  EXPECT_FALSE((*engine)->MakeQuery("no_such_entity", tail_name, {}).ok());
}

TEST(InferenceEngineTest, RejectsMalformedQueries) {
  ServeFixture& f = Shared();
  auto engine = serve::InferenceEngine::Open(f.snapshot_path);
  ASSERT_TRUE(engine.ok());

  serve::Query no_sentences;
  no_sentences.head = 0;
  no_sentences.tail = 1;
  EXPECT_FALSE((*engine)->Predict(no_sentences).ok());

  std::vector<serve::Query> queries = f.SampleQueries(1);
  serve::Query out_of_range = queries[0];
  out_of_range.head = f.embeddings.num_vertices() + 5;
  EXPECT_FALSE((*engine)->Predict(out_of_range).ok());

  serve::Query negative = queries[0];
  negative.tail = -2;
  EXPECT_FALSE((*engine)->Predict(negative).ok());

  serve::Query bad_mention = queries[0];
  bad_mention.sentences[0].head_index = 10'000;
  EXPECT_FALSE((*engine)->Predict(bad_mention).ok());
}

// ---- int8 quantized serving -----------------------------------------------

TEST(QuantizedSnapshotTest, QuantizedSectionRoundTripsBitExactly) {
  ServeFixture& f = Shared();
  const auto quantized =
      graph::QuantizedEmbeddingStore::Quantize(f.embeddings);
  const std::string path =
      testing::TempDir() + "/imr_serve_test_quantized.imrs";
  ASSERT_TRUE(serve::SaveSnapshot(*f.model, f.bags->vocabulary(),
                                  f.embeddings, f.dataset->world.graph,
                                  f.bag_options, /*trained_steps=*/8,
                                  "quantized", path, &quantized)
                  .ok());
  auto snapshot = serve::LoadSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_FALSE(snapshot->quantized_embeddings.empty());
  EXPECT_EQ(snapshot->quantized_embeddings.num_vertices(),
            quantized.num_vertices());
  EXPECT_EQ(snapshot->quantized_embeddings.dim(), quantized.dim());
  for (int v = 0; v < quantized.num_vertices(); ++v) {
    ASSERT_EQ(snapshot->quantized_embeddings.scale(v), quantized.scale(v))
        << "vertex " << v;
    const int8_t* expected = quantized.Row(v);
    const int8_t* actual = snapshot->quantized_embeddings.Row(v);
    for (int d = 0; d < quantized.dim(); ++d) {
      ASSERT_EQ(actual[d], expected[d]) << "vertex " << v << " dim " << d;
    }
  }
  // The fp32 sections are untouched by the extra tail section. (The loaded
  // store may be a borrowed mmap view, so compare raw rows, not flat().)
  ASSERT_EQ(snapshot->embeddings.value_count(), f.embeddings.value_count());
  EXPECT_EQ(std::memcmp(snapshot->embeddings.raw(), f.embeddings.raw(),
                        f.embeddings.value_count() * sizeof(float)),
            0);
  std::remove(path.c_str());
}

TEST(QuantizedSnapshotTest, SnapshotsWithoutQembSectionStillLoad) {
  // The fixture snapshot predates the QEMB section by construction — the
  // forward-compat promise is that such files keep loading unchanged.
  auto snapshot = serve::LoadSnapshot(Shared().snapshot_path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_TRUE(snapshot->quantized_embeddings.empty());
  EXPECT_NE(snapshot->model, nullptr);
}

TEST(QuantizedSnapshotTest, SaveRejectsShapeMismatchedQuantizedStore) {
  ServeFixture& f = Shared();
  graph::EmbeddingStore wrong_shape(3, 4);
  const auto quantized =
      graph::QuantizedEmbeddingStore::Quantize(wrong_shape);
  const std::string path =
      testing::TempDir() + "/imr_serve_test_bad_quantized.imrs";
  EXPECT_FALSE(serve::SaveSnapshot(*f.model, f.bags->vocabulary(),
                                   f.embeddings, f.dataset->world.graph,
                                   f.bag_options, 0, "", path, &quantized)
                   .ok());
}

TEST(QuantizedEngineTest, QuantizedServingAgreesWithFp32) {
  ServeFixture& f = Shared();
  auto fp32 = serve::InferenceEngine::Open(f.snapshot_path);
  ASSERT_TRUE(fp32.ok()) << fp32.status().ToString();
  serve::EngineOptions options;
  options.quantized = true;
  // Opening a pre-quantization snapshot with the quantized option must
  // work: the int8 store is built at load time.
  auto quantized = serve::InferenceEngine::Open(f.snapshot_path, options);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
  EXPECT_TRUE((*quantized)->snapshot().model->quantized_inference());
  EXPECT_FALSE((*quantized)->snapshot().quantized_embeddings.empty());

  const std::vector<serve::Query> queries = f.SampleQueries(12);
  int top1_agreements = 0;
  float max_delta = 0.0f;
  for (const serve::Query& query : queries) {
    auto exact = (*fp32)->Predict(query);
    auto approx = (*quantized)->Predict(query);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    ASSERT_TRUE(approx.ok()) << approx.status().ToString();
    ASSERT_EQ(approx->probabilities.size(), exact->probabilities.size());
    for (size_t r = 0; r < exact->probabilities.size(); ++r) {
      max_delta = std::max(max_delta,
                           std::fabs(approx->probabilities[r] -
                                     exact->probabilities[r]));
    }
    ASSERT_FALSE(exact->top.empty());
    ASSERT_FALSE(approx->top.empty());
    if (exact->top[0].relation == approx->top[0].relation) ++top1_agreements;
  }
  // The bench_serve gate demands >= 99.5% agreement over a replay; on this
  // small sample demand exact agreement and a tight score delta.
  EXPECT_EQ(top1_agreements, static_cast<int>(queries.size()));
  EXPECT_LT(max_delta, 0.05f);
}

// ---- sharded cache ---------------------------------------------------------

TEST(ShardedCacheTest, SingleShardReproducesLruBehavior) {
  serve::ShardedLruCache<int, int> cache(2, 1);
  EXPECT_EQ(cache.num_shards(), 1u);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_EQ(cache.Get(1).value(), 10);  // 1 becomes most-recent
  cache.Put(3, 30);                     // evicts 2
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_EQ(cache.Get(1).value(), 10);
  EXPECT_EQ(cache.Get(3).value(), 30);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedCacheTest, RoundsShardCountToPowerOfTwo) {
  serve::ShardedLruCache<int, int> cache(64, 5);
  EXPECT_EQ(cache.num_shards(), 8u);
  serve::ShardedLruCache<int, int> one(64, 0);
  EXPECT_EQ(one.num_shards(), 1u);
}

TEST(ShardedCacheTest, CountsHitsAndMissesPerShard) {
  serve::ShardedLruCache<int, int> cache(256, 4);
  for (int k = 0; k < 64; ++k) cache.Put(k, k * 2);
  for (int k = 0; k < 64; ++k) EXPECT_EQ(cache.Get(k).value(), k * 2);
  for (int k = 100; k < 110; ++k) EXPECT_FALSE(cache.Get(k).has_value());
  EXPECT_EQ(cache.TotalHits(), 64u);
  EXPECT_EQ(cache.TotalMisses(), 10u);
  const std::vector<serve::CacheShardStats> shards = cache.ShardStats();
  ASSERT_EQ(shards.size(), 4u);
  uint64_t hits = 0, misses = 0, resident = 0;
  for (const serve::CacheShardStats& shard : shards) {
    hits += shard.hits;
    misses += shard.misses;
    resident += shard.size;
  }
  EXPECT_EQ(hits, 64u);
  EXPECT_EQ(misses, 10u);
  EXPECT_EQ(resident, cache.size());
  EXPECT_EQ(resident, 64u);
}

TEST(ShardedCacheTest, SpreadsKeysAcrossShards) {
  // std::hash<int> is the identity on libstdc++; the shard picker must
  // still spread sequential keys instead of piling them on shard 0.
  serve::ShardedLruCache<int, int> cache(1024, 8);
  for (int k = 0; k < 256; ++k) cache.Put(k, k);
  size_t populated = 0;
  for (const serve::CacheShardStats& shard : cache.ShardStats()) {
    if (shard.size > 0) ++populated;
  }
  EXPECT_GE(populated, 6u);
}

TEST(ShardedCacheTest, ClearEmptiesEveryShard) {
  serve::ShardedLruCache<int, int> cache(256, 4);
  for (int k = 0; k < 32; ++k) cache.Put(k, k);
  EXPECT_GT(cache.size(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  for (int k = 0; k < 32; ++k) EXPECT_FALSE(cache.Get(k).has_value());
}

TEST(EngineShardingTest, ShardCountsAreBitIdentical) {
  ServeFixture& f = Shared();
  serve::EngineOptions one_shard;
  one_shard.cache_shards = 1;
  serve::EngineOptions many_shards;
  many_shards.cache_shards = 16;
  auto engine_one = serve::InferenceEngine::Open(f.snapshot_path, one_shard);
  auto engine_many =
      serve::InferenceEngine::Open(f.snapshot_path, many_shards);
  ASSERT_TRUE(engine_one.ok());
  ASSERT_TRUE(engine_many.ok());

  std::vector<serve::Query> queries = f.SampleQueries(10);
  std::vector<serve::Query> stream;
  for (int repeat = 0; repeat < 3; ++repeat)
    stream.insert(stream.end(), queries.begin(), queries.end());
  auto results_one = (*engine_one)->PredictBatch(stream);
  auto results_many = (*engine_many)->PredictBatch(stream);
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(results_one[i].ok());
    ASSERT_TRUE(results_many[i].ok());
    EXPECT_EQ(results_one[i]->probabilities, results_many[i]->probabilities);
  }
  // Hit behavior is shard-count independent: same pairs, same repeats.
  const serve::EngineStats one_stats = (*engine_one)->Stats();
  const serve::EngineStats many_stats = (*engine_many)->Stats();
  EXPECT_EQ(one_stats.mr_cache_hits, many_stats.mr_cache_hits);
  EXPECT_EQ(one_stats.cache_shards.size(), 1u);
  EXPECT_EQ(many_stats.cache_shards.size(), 16u);
}

// ---- admission control -----------------------------------------------------

TEST(AdmissionTest, RejectsWithRetryAfterWhenQueuesFill) {
  serve::AdmissionOptions options;
  options.max_queue = 2;
  serve::AdmissionController admission(/*replicas=*/2, options);
  // Four admits with no dequeues saturate both replicas (2 each)...
  for (int i = 0; i < 4; ++i) {
    auto replica = admission.Admit();
    ASSERT_TRUE(replica.ok()) << i;
  }
  // ...the fifth finds every queue full.
  auto rejected = admission.Admit();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kUnavailable);
  EXPECT_NE(rejected.status().message().find("retry"), std::string::npos);
  const serve::AdmissionCounters totals = admission.TotalCounters();
  EXPECT_EQ(totals.admitted, 4u);
  EXPECT_EQ(totals.rejected_queue_full, 1u);
  EXPECT_EQ(totals.queue_depth, 4u);
  EXPECT_EQ(totals.queue_peak, 2u);  // per-replica peak
  // Draining a queue reopens the door.
  admission.OnDequeue(0);
  EXPECT_TRUE(admission.Admit().ok());
}

TEST(AdmissionTest, PicksLeastLoadedReplica) {
  serve::AdmissionController admission(/*replicas=*/2, {});
  auto first = admission.Admit();
  auto second = admission.Admit();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // With equal depth the rotating start point spreads consecutive admits.
  EXPECT_NE(*first, *second);
  // Load one replica; the next admits must all land on the other.
  for (int i = 0; i < 3; ++i) {
    auto replica = admission.Admit();
    ASSERT_TRUE(replica.ok());
  }
  const serve::AdmissionCounters replica0 = admission.Counters(0);
  const serve::AdmissionCounters replica1 = admission.Counters(1);
  EXPECT_LE(replica0.queue_depth > replica1.queue_depth
                ? replica0.queue_depth - replica1.queue_depth
                : replica1.queue_depth - replica0.queue_depth,
            1u);
}

TEST(AdmissionTest, DeadlineExpiryAndShedding) {
  serve::AdmissionOptions options;
  options.deadline_us = 1000;
  serve::AdmissionController admission(/*replicas=*/1, options);
  const auto now = std::chrono::steady_clock::now();
  EXPECT_FALSE(admission.ExpiredInQueue(now));
  EXPECT_TRUE(admission.ExpiredInQueue(now - std::chrono::milliseconds(10)));
  util::Status shed = admission.Shed(0, /*waited_us=*/10000.0);
  EXPECT_EQ(shed.code(), util::StatusCode::kUnavailable);
  EXPECT_NE(shed.message().find("shed"), std::string::npos);
  EXPECT_EQ(admission.Counters(0).shed_deadline, 1u);

  serve::AdmissionController no_deadline(/*replicas=*/1, {});
  EXPECT_FALSE(no_deadline.ExpiredInQueue(
      now - std::chrono::milliseconds(10)));  // 0 disables shedding
}

TEST(AdmissionTest, ExecutionSlotsBoundConcurrency) {
  serve::AdmissionOptions options;
  options.max_concurrent = 1;
  serve::AdmissionController admission(/*replicas=*/1, options);
  EXPECT_EQ(admission.max_concurrent(), 1);
  admission.AcquireSlot();  // take the only slot
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    admission.AcquireSlot();
    acquired.store(true);
    admission.ReleaseSlot();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());  // blocked behind the held slot
  admission.ReleaseSlot();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

// ---- serve router ----------------------------------------------------------

TEST(RouterTest, MatchesBareEngineBitExactly) {
  ServeFixture& f = Shared();
  serve::RouterOptions options;
  options.replicas = 2;
  options.workers_per_replica = 2;
  options.engine.cache_shards = 4;
  auto router = serve::ServeRouter::Open(f.snapshot_path, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  auto reference = serve::InferenceEngine::Open(f.snapshot_path);
  ASSERT_TRUE(reference.ok());

  std::vector<serve::Query> queries = f.SampleQueries(10);
  std::vector<serve::Query> stream;
  for (int repeat = 0; repeat < 2; ++repeat)
    stream.insert(stream.end(), queries.begin(), queries.end());
  auto results = (*router)->PredictBatch(stream);
  ASSERT_EQ(results.size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    auto expected = (*reference)->Predict(stream[i]);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(results[i]->probabilities, expected->probabilities);
    EXPECT_EQ(results[i]->generation, 1u);
  }

  const serve::RouterStats stats = (*router)->Stats();
  EXPECT_EQ(stats.aggregate.requests, stream.size());
  EXPECT_EQ(stats.aggregate.admitted, stream.size());
  EXPECT_EQ(stats.aggregate.rejected_queue_full, 0u);
  EXPECT_EQ(stats.aggregate.shed_deadline, 0u);
  EXPECT_EQ(stats.generation, 1u);
  ASSERT_EQ(stats.replicas.size(), 2u);
  EXPECT_EQ(stats.replicas[0].requests + stats.replicas[1].requests,
            stream.size());
  // Both replicas actually served traffic (least-depth spread).
  EXPECT_GT(stats.replicas[0].requests, 0u);
  EXPECT_GT(stats.replicas[1].requests, 0u);
}

TEST(RouterTest, SyncAsyncAndInvalidQueriesFlowThrough) {
  ServeFixture& f = Shared();
  auto router = serve::ServeRouter::Open(f.snapshot_path);
  ASSERT_TRUE(router.ok());
  std::vector<serve::Query> queries = f.SampleQueries(4);

  auto sync = (*router)->Predict(queries[0]);
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();
  auto future = (*router)->SubmitAsync(queries[1]);
  auto async = future.get();
  ASSERT_TRUE(async.ok()) << async.status().ToString();

  serve::Query invalid = queries[0];
  invalid.tail = -2;
  auto bad = (*router)->Predict(invalid);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(RouterTest, BackpressureRejectsUnderOverload) {
  ServeFixture& f = Shared();
  serve::RouterOptions options;
  options.replicas = 1;
  options.workers_per_replica = 1;
  options.admission.max_queue = 2;
  auto router = serve::ServeRouter::Open(f.snapshot_path, options);
  ASSERT_TRUE(router.ok());

  // Submissions take microseconds, a forward takes hundreds: firing 50
  // at a 2-deep queue must trip the door.
  const std::vector<serve::Query> queries = f.SampleQueries(4);
  std::vector<std::future<util::StatusOr<serve::Prediction>>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back((*router)->SubmitAsync(queries[i % queries.size()]));
  }
  uint64_t ok = 0, unavailable = 0;
  for (auto& future : futures) {
    auto result = future.get();
    if (result.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(result.status().code(), util::StatusCode::kUnavailable);
      EXPECT_NE(result.status().message().find("retry"), std::string::npos);
      ++unavailable;
    }
  }
  EXPECT_EQ(ok + unavailable, 50u);
  EXPECT_GT(unavailable, 0u);
  const serve::RouterStats stats = (*router)->Stats();
  EXPECT_EQ(stats.aggregate.rejected_queue_full, unavailable);
  EXPECT_EQ(stats.aggregate.admitted, ok);
  EXPECT_LE(stats.aggregate.queue_peak, 2u);
}

TEST(RouterTest, DeadlineShedsStaleWork) {
  ServeFixture& f = Shared();
  serve::RouterOptions options;
  options.replicas = 1;
  options.workers_per_replica = 1;
  options.admission.deadline_us = 1;  // everything queued goes stale
  options.admission.max_queue = 0;    // unbounded: shedding, not rejection
  auto router = serve::ServeRouter::Open(f.snapshot_path, options);
  ASSERT_TRUE(router.ok());

  const std::vector<serve::Query> queries = f.SampleQueries(4);
  std::vector<std::future<util::StatusOr<serve::Prediction>>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back((*router)->SubmitAsync(queries[i % queries.size()]));
  }
  uint64_t shed = 0;
  for (auto& future : futures) {
    auto result = future.get();
    if (!result.ok()) {
      ASSERT_EQ(result.status().code(), util::StatusCode::kUnavailable);
      ++shed;
    }
  }
  // A 1us budget against a ~hundreds-of-us forward: the backlog is shed.
  EXPECT_GT(shed, 0u);
  EXPECT_EQ((*router)->Stats().aggregate.shed_deadline, shed);
}

// ---- hot swap --------------------------------------------------------------

TEST(HotSwapTest, ReloadFlipsGenerationsAndPredictions) {
  ServeFixture& f = Shared();
  auto router = serve::ServeRouter::Open(f.snapshot_path);
  ASSERT_TRUE(router.ok());
  const std::vector<serve::Query> queries = f.SampleQueries(4);

  auto before = (*router)->Predict(queries[0]);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->generation, 1u);

  ASSERT_TRUE((*router)->Reload(f.snapshot_b_path).ok());
  EXPECT_EQ((*router)->generation(), 2u);
  auto after = (*router)->Predict(queries[0]);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->generation, 2u);
  // Generation B retrained the embeddings: the MR vector differs, so the
  // distribution must differ (same model, different fusion input).
  EXPECT_NE(before->probabilities, after->probabilities);

  // Swap back: bit-identical to the original generation's output.
  ASSERT_TRUE((*router)->Reload(f.snapshot_path).ok());
  auto back = (*router)->Predict(queries[0]);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->generation, 3u);
  EXPECT_EQ(back->probabilities, before->probabilities);

  const serve::RouterStats stats = (*router)->Stats();
  EXPECT_EQ(stats.reloads, 2u);
  EXPECT_TRUE(stats.last_reload_error.empty());
}

TEST(HotSwapTest, RejectsIncompatibleGeneration) {
  ServeFixture& f = Shared();
  auto router = serve::ServeRouter::Open(f.snapshot_path);
  ASSERT_TRUE(router.ok());
  // A corrupt file must be refused with the old generation still serving.
  const std::string bad_path = testing::TempDir() + "/imr_swap_garbage.imrs";
  {
    std::ofstream out(bad_path, std::ios::binary);
    out << "not a snapshot";
  }
  util::Status status = (*router)->Reload(bad_path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ((*router)->generation(), 1u);
  EXPECT_FALSE((*router)->Stats().last_reload_error.empty());
  const std::vector<serve::Query> queries = f.SampleQueries(1);
  EXPECT_TRUE((*router)->Predict(queries[0]).ok());  // still serving
  std::remove(bad_path.c_str());
}

/// Sustained concurrent traffic across all three calling conventions while
/// the main thread flips generations A<->B. Every response must succeed
/// and be bit-consistent with exactly one generation — the one stamped in
/// Prediction::generation. Runs under TSan in the sanitizer tree.
void HotSwapUnderFire(bool quantized) {
  ServeFixture& f = Shared();
  serve::RouterOptions options;
  options.replicas = 2;
  options.workers_per_replica = 2;
  options.engine.cache_shards = 4;
  options.engine.quantized = quantized;
  options.admission.max_queue = 0;   // nothing rejected:
  options.admission.deadline_us = 0; // the gate is ZERO failed requests
  auto router = serve::ServeRouter::Open(f.snapshot_path, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // Reference predictions per generation, computed single-threaded on bare
  // engines. Odd generations serve snapshot A, even ones snapshot B.
  serve::EngineOptions reference_options;
  reference_options.quantized = quantized;
  auto engine_a =
      serve::InferenceEngine::Open(f.snapshot_path, reference_options);
  auto engine_b =
      serve::InferenceEngine::Open(f.snapshot_b_path, reference_options);
  ASSERT_TRUE(engine_a.ok());
  ASSERT_TRUE(engine_b.ok());
  const std::vector<serve::Query> queries = f.SampleQueries(6);
  std::vector<std::vector<float>> expected_a, expected_b;
  for (const serve::Query& query : queries) {
    auto a = (*engine_a)->Predict(query);
    auto b = (*engine_b)->Predict(query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_NE(a->probabilities, b->probabilities);  // generations differ
    expected_a.push_back(a->probabilities);
    expected_b.push_back(b->probabilities);
  }

  struct Observed {
    size_t query = 0;
    uint64_t generation = 0;
    std::vector<float> probabilities;
  };
  util::Mutex observed_mutex;
  std::vector<Observed> observed;
  std::atomic<uint64_t> failures{0};
  std::atomic<bool> stop{false};
  const auto record = [&](size_t query_index,
                          const util::StatusOr<serve::Prediction>& result) {
    if (!result.ok()) {
      failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    util::MutexLock lock(observed_mutex);
    observed.push_back(
        Observed{query_index, result->generation, result->probabilities});
  };

  std::vector<std::thread> traffic;
  traffic.emplace_back([&] {  // sync caller
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t q = i++ % queries.size();
      record(q, (*router)->Predict(queries[q]));
    }
  });
  traffic.emplace_back([&] {  // batch caller
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<serve::Query> batch;
      std::vector<size_t> indices;
      for (int b = 0; b < 4; ++b) {
        indices.push_back(i % queries.size());
        batch.push_back(queries[i % queries.size()]);
        ++i;
      }
      auto results = (*router)->PredictBatch(batch);
      for (size_t r = 0; r < results.size(); ++r)
        record(indices[r], results[r]);
    }
  });
  traffic.emplace_back([&] {  // async caller
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t q = i++ % queries.size();
      auto future = (*router)->SubmitAsync(queries[q]);
      record(q, future.get());
    }
  });

  // Flip generations under fire: A -> B -> A -> ... with live traffic.
  constexpr int kReloads = 6;
  for (int flip = 0; flip < kReloads; ++flip) {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    const std::string& next =
        flip % 2 == 0 ? f.snapshot_b_path : f.snapshot_path;
    ASSERT_TRUE((*router)->Reload(next).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  stop.store(true);
  for (std::thread& t : traffic) t.join();

  EXPECT_EQ(failures.load(), 0u);  // zero failed requests across all swaps
  EXPECT_EQ((*router)->generation(), static_cast<uint64_t>(kReloads + 1));
  util::MutexLock lock(observed_mutex);
  ASSERT_GT(observed.size(), 0u);
  uint64_t max_generation = 0;
  for (const Observed& response : observed) {
    ASSERT_GE(response.generation, 1u);
    ASSERT_LE(response.generation, static_cast<uint64_t>(kReloads + 1));
    // Odd generation == snapshot A, even == snapshot B; no torn reads
    // means bit-exact agreement with that generation's reference.
    const std::vector<std::vector<float>>& expected =
        response.generation % 2 == 1 ? expected_a : expected_b;
    ASSERT_EQ(response.probabilities, expected[response.query])
        << "generation " << response.generation << " query "
        << response.query;
    max_generation = std::max(max_generation, response.generation);
  }
  EXPECT_GT(max_generation, 1u);  // traffic actually observed a swap
}

TEST(HotSwapTest, ServesConsistentGenerationsUnderFire) {
  HotSwapUnderFire(/*quantized=*/false);
}

TEST(HotSwapTest, ServesConsistentQuantizedGenerationsUnderFire) {
  // Generation B's int8 store comes from the file's QEMB section,
  // generation A's is built at load: the swap flips between them.
  HotSwapUnderFire(/*quantized=*/true);
}

// ---- snapshot watcher ------------------------------------------------------

namespace {

// Atomic replace: write a temp sibling, then rename() over the target.
// This is the published contract for snapshot writers — live generations
// mmap the old inode, and rename keeps that inode alive while swapping
// the path. Truncating the watched file in place would SIGBUS readers.
void CopyFile(const std::string& from, const std::string& to) {
  const std::string tmp = to + ".tmp";
  {
    std::ifstream in(from, std::ios::binary);
    IMR_CHECK(in.good());
    std::ofstream out(tmp, std::ios::binary);
    out << in.rdbuf();
  }
  IMR_CHECK_EQ(std::rename(tmp.c_str(), to.c_str()), 0);
}

void WriteFileAtomic(const std::string& to, const std::string& bytes) {
  const std::string tmp = to + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  IMR_CHECK_EQ(std::rename(tmp.c_str(), to.c_str()), 0);
}

}  // namespace

TEST(SnapshotWatcherTest, RequiresStabilityThenReloads) {
  ServeFixture& f = Shared();
  const std::string watched = testing::TempDir() + "/imr_watched.imrs";
  CopyFile(f.snapshot_path, watched);

  std::vector<std::string> reloads;
  serve::SnapshotWatcher watcher(
      watched, [&](const std::string& path) {
        reloads.push_back(path);
        return util::OkStatus();
      });
  // Unchanged file: polls do nothing.
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_TRUE(reloads.empty());

  // New generation lands: first poll only records the candidate (the
  // writer might still be flushing), the second poll sees it stable and
  // fires the reload.
  CopyFile(f.snapshot_b_path, watched);
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_TRUE(reloads.empty());
  EXPECT_TRUE(watcher.CheckNow());
  ASSERT_EQ(reloads.size(), 1u);
  EXPECT_EQ(reloads[0], watched);
  // Settled: no re-fire.
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_EQ(reloads.size(), 1u);

  const serve::WatcherStats stats = watcher.Stats();
  EXPECT_EQ(stats.reloads_attempted, 1u);
  EXPECT_EQ(stats.reloads_succeeded, 1u);
  EXPECT_EQ(stats.reloads_failed, 0u);
  EXPECT_GE(stats.polls, 5u);
  std::remove(watched.c_str());
}

TEST(SnapshotWatcherTest, FailedReloadKeepsServingAndRearms) {
  ServeFixture& f = Shared();
  const std::string watched = testing::TempDir() + "/imr_watched_bad.imrs";
  CopyFile(f.snapshot_path, watched);

  serve::RouterOptions options;
  auto router = serve::ServeRouter::Open(watched, options);
  ASSERT_TRUE(router.ok());
  serve::SnapshotWatcher watcher(watched, [&](const std::string& path) {
    return (*router)->Reload(path);
  });

  // A corrupt write lands at the watched path (atomically, like any
  // well-behaved publisher — the serving mmap stays on the old inode).
  WriteFileAtomic(watched, "garbage, definitely not IMRS");
  EXPECT_FALSE(watcher.CheckNow());  // candidate observed
  EXPECT_TRUE(watcher.CheckNow());   // stable -> reload attempted, fails
  EXPECT_EQ(watcher.Stats().reloads_failed, 1u);
  EXPECT_FALSE(watcher.last_error().empty());
  // The old generation keeps serving.
  EXPECT_EQ((*router)->generation(), 1u);
  const std::vector<serve::Query> queries = f.SampleQueries(1);
  EXPECT_TRUE((*router)->Predict(queries[0]).ok());
  // The corrupt signature is consumed — no retry storm on every poll.
  EXPECT_FALSE(watcher.CheckNow());

  // The fixed snapshot lands: rollout proceeds.
  CopyFile(f.snapshot_b_path, watched);
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_TRUE(watcher.CheckNow());
  EXPECT_EQ(watcher.Stats().reloads_succeeded, 1u);
  EXPECT_TRUE(watcher.last_error().empty());
  EXPECT_EQ((*router)->generation(), 2u);
  std::remove(watched.c_str());
}

TEST(SnapshotWatcherTest, BackgroundThreadPicksUpChanges) {
  ServeFixture& f = Shared();
  const std::string watched = testing::TempDir() + "/imr_watched_bg.imrs";
  CopyFile(f.snapshot_path, watched);

  std::atomic<int> reloads{0};
  serve::WatcherOptions options;
  options.poll_interval_ms = 5;
  serve::SnapshotWatcher watcher(
      watched,
      [&](const std::string&) {
        reloads.fetch_add(1);
        return util::OkStatus();
      },
      options);
  watcher.Start();
  CopyFile(f.snapshot_b_path, watched);
  for (int i = 0; i < 400 && reloads.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  watcher.Stop();
  EXPECT_EQ(reloads.load(), 1);
  std::remove(watched.c_str());
}

// ---- format compat (v1 <-> v2) --------------------------------------------
//
// check.sh's snapshot-compat stage runs exactly `SnapshotCompat*`.

TEST(SnapshotCompatTest, V1WrittenByCurrentWriterLoadsBitIdentical) {
  ServeFixture& f = Shared();
  const std::string v1_path = testing::TempDir() + "/imr_compat_v1.imrs";
  ASSERT_TRUE(serve::SaveSnapshot(*f.model, f.bags->vocabulary(),
                                  f.embeddings, f.dataset->world.graph,
                                  f.bag_options, /*trained_steps=*/8,
                                  "compat", v1_path, nullptr, nullptr,
                                  serve::kSnapshotFormatV1)
                  .ok());
  auto v1 = serve::LoadSnapshot(v1_path);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(v1->format_version, serve::kSnapshotFormatV1);
  EXPECT_FALSE(v1->embeddings.borrowed());  // v1 parses into owned storage
  EXPECT_EQ(v1->mapping, nullptr);
  EXPECT_EQ(v1->content_hash, 0u);  // v1 files carry no identity hash

  auto v2 = serve::LoadSnapshot(f.snapshot_path);  // the fixture file is v2
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();

  // Same bundle through both layouts: identical tables, embeddings, and
  // bit-identical model outputs.
  EXPECT_EQ(v1->vocab().size(), v2->vocab().size());
  EXPECT_EQ(v1->relation_names(), v2->relation_names());
  ASSERT_EQ(v1->entities().size(), v2->entities().size());
  EXPECT_EQ(v1->entities()[0].name, v2->entities()[0].name);
  ASSERT_EQ(v1->embeddings.value_count(), v2->embeddings.value_count());
  EXPECT_EQ(std::memcmp(v1->embeddings.raw(), v2->embeddings.raw(),
                        v1->embeddings.value_count() * sizeof(float)),
            0);
  int checked = 0;
  for (const re::Bag& bag : f.bags->test_bags()) {
    EXPECT_EQ(v1->model->Predict(bag), v2->model->Predict(bag));
    if (++checked >= 5) break;
  }
  std::remove(v1_path.c_str());
}

TEST(SnapshotCompatTest, V2OpensZeroCopyWithContentHash) {
  ServeFixture& f = Shared();
  auto v2 = serve::LoadSnapshot(f.snapshot_path);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(v2->format_version, serve::kSnapshotFormatV2);
  EXPECT_TRUE(v2->embeddings.borrowed());  // views into the mapping
  ASSERT_NE(v2->mapping, nullptr);
  EXPECT_TRUE(v2->layout.valid);
  EXPECT_NE(v2->content_hash, 0u);
  // The borrowed rows point into the mapped file, on a 64-byte boundary.
  const auto* raw = reinterpret_cast<const uint8_t*>(v2->embeddings.raw());
  EXPECT_GE(raw, v2->mapping->data());
  EXPECT_LT(raw, v2->mapping->data() + v2->mapping->size());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(raw) % 64, 0u);
  // The footer hash is reproducible from the file bytes (identity, not
  // checked on the open fast path): FNV-1a over [8, footer_offset), where
  // footer_offset sits in the 16-byte trailer.
  const std::string bytes = SlurpSnapshot();
  ASSERT_GT(bytes.size(), 24u);
  uint64_t footer_offset = 0;
  std::memcpy(&footer_offset, bytes.data() + bytes.size() - 16, 8);
  ASSERT_LT(footer_offset, bytes.size());
  EXPECT_EQ(util::Fnv1a(bytes.data() + 8, footer_offset - 8),
            v2->content_hash);
}

TEST(SnapshotCompatTest, V2RejectedBySimulatedV1Reader) {
  // A v1-era reader validates (magic, version=1) in the BinaryReader
  // header check; a v2 file must fail that check with a clean Status, not
  // misparse the section table as sections.
  util::BinaryReader reader(Shared().snapshot_path, 0x494D5253u, 1u);
  ASSERT_FALSE(reader.status().ok());
  EXPECT_NE(reader.status().message().find("unsupported version"),
            std::string::npos);
  EXPECT_NE(reader.status().message().find("file has 2"), std::string::npos);
}

// ---- IMRD delta generations ------------------------------------------------

namespace {

/// Owned copy of `source` with `rows` perturbed by a row-dependent offset.
graph::EmbeddingStore PerturbRows(const graph::EmbeddingStore& source,
                                  const std::vector<int>& rows,
                                  float offset = 0.5f) {
  graph::EmbeddingStore copy(source.num_vertices(), source.dim());
  std::memcpy(copy.Vector(0), source.raw(),
              source.value_count() * sizeof(float));
  for (int row : rows) {
    float* values = copy.Vector(row);
    for (int d = 0; d < copy.dim(); ++d)
      values[d] += offset + 0.01f * static_cast<float>(d);
  }
  return copy;
}

}  // namespace

TEST(DeltaTest, HeaderProbeAndRowPatchRoundTrip) {
  ServeFixture& f = Shared();
  auto base = serve::LoadSnapshot(f.snapshot_path);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_NE(base->content_hash, 0u);

  const std::vector<int> rows = {1, 7, f.embeddings.num_vertices() - 1};
  const graph::EmbeddingStore patched = PerturbRows(f.embeddings, rows);
  const std::string delta_path = testing::TempDir() + "/imr_rt.imrd";
  serve::DeltaSpec spec;
  spec.touched_rows = {rows[2], rows[0], rows[1], rows[0]};  // unsorted, dup
  auto result_hash = serve::SaveDelta(base->content_hash, patched, nullptr,
                                      spec, delta_path);
  ASSERT_TRUE(result_hash.ok()) << result_hash.status().ToString();
  EXPECT_NE(*result_hash, base->content_hash);

  // O(1) identity probe.
  auto header = serve::ReadDeltaHeader(delta_path);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->base_hash, base->content_hash);
  EXPECT_EQ(header->result_hash, *result_hash);

  auto applied = serve::ApplyDelta(*base, delta_path);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->content_hash, *result_hash);
  EXPECT_EQ(applied->format_version, serve::kSnapshotFormatV2);
  EXPECT_TRUE(applied->embeddings.borrowed());  // views over the CoW clone
  ASSERT_NE(applied->mapping, nullptr);
  EXPECT_NE(applied->mapping, base->mapping);  // private clone, not the base
  // Tables and kNN ride along by refcount, not copy.
  EXPECT_EQ(applied->tables.get(), base->tables.get());
  EXPECT_EQ(applied->knn.get(), base->knn.get());

  const int dim = f.embeddings.dim();
  const graph::EmbeddingStore& base_rows = base->embeddings;
  const graph::EmbeddingStore& applied_rows = applied->embeddings;
  for (int v = 0; v < f.embeddings.num_vertices(); ++v) {
    const bool touched =
        std::find(rows.begin(), rows.end(), v) != rows.end();
    const float* expected =
        touched ? patched.Vector(v) : base_rows.Vector(v);
    ASSERT_EQ(std::memcmp(applied_rows.Vector(v), expected,
                          static_cast<size_t>(dim) * sizeof(float)),
              0)
        << "row " << v << (touched ? " (touched)" : " (untouched)");
  }
  // The base generation is untouched by the apply (CoW isolation).
  EXPECT_EQ(std::memcmp(base->embeddings.raw(), f.embeddings.raw(),
                        f.embeddings.value_count() * sizeof(float)),
            0);
  // The applied model still predicts (parameters rebuilt from the base).
  ASSERT_NE(applied->model, nullptr);
  EXPECT_EQ(applied->model->Predict(*f.bags->test_bags().begin()),
            base->model->Predict(*f.bags->test_bags().begin()));
  std::remove(delta_path.c_str());
}

TEST(DeltaTest, PatchesNamedParameters) {
  ServeFixture& f = Shared();
  auto base = serve::LoadSnapshot(f.snapshot_path);
  ASSERT_TRUE(base.ok());
  // A scratch model (same trained weights) whose first parameter we nudge:
  // the delta must carry exactly that tensor.
  auto scratch = serve::LoadSnapshot(f.snapshot_path);
  ASSERT_TRUE(scratch.ok());
  auto scratch_params = scratch->model->Parameters();
  ASSERT_FALSE(scratch_params.empty());
  const std::string& name = scratch_params[0].name;
  scratch_params[0].tensor.mutable_data()[0] += 0.25f;  // shared node

  const std::string delta_path = testing::TempDir() + "/imr_param.imrd";
  serve::DeltaSpec spec;
  spec.touched_rows = {0};
  spec.changed_params = {name};
  auto result_hash = serve::SaveDelta(base->content_hash, f.embeddings,
                                      scratch->model.get(), spec, delta_path);
  ASSERT_TRUE(result_hash.ok()) << result_hash.status().ToString();

  auto applied = serve::ApplyDelta(*base, delta_path);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  const auto applied_params = applied->model->Parameters();
  const auto base_params = base->model->Parameters();
  ASSERT_EQ(applied_params.size(), base_params.size());
  for (size_t i = 0; i < applied_params.size(); ++i) {
    const std::vector<float>& expected = i == 0
                                             ? scratch_params[0].tensor.data()
                                             : base_params[i].tensor.data();
    EXPECT_EQ(applied_params[i].tensor.data(), expected)
        << "parameter " << applied_params[i].name;
  }
  // End to end: the applied model now predicts like the scratch model.
  int checked = 0;
  for (const re::Bag& bag : f.bags->test_bags()) {
    EXPECT_EQ(applied->model->Predict(bag), scratch->model->Predict(bag));
    if (++checked >= 3) break;
  }
  std::remove(delta_path.c_str());
}

TEST(DeltaTest, QuantizedRowsPatchInPlaceBitExactly) {
  ServeFixture& f = Shared();
  auto base = serve::LoadSnapshot(f.snapshot_b_path);  // carries QEMB
  ASSERT_TRUE(base.ok());
  ASSERT_FALSE(base->quantized_embeddings.empty());
  ASSERT_TRUE(base->quantized_embeddings.borrowed());

  const std::vector<int> rows = {0, 5, 11};
  const graph::EmbeddingStore patched = PerturbRows(f.embeddings_b, rows);
  const std::string delta_path = testing::TempDir() + "/imr_qemb.imrd";
  serve::DeltaSpec spec;
  spec.touched_rows = rows;  // include_quantized defaults to true
  auto result_hash = serve::SaveDelta(base->content_hash, patched, nullptr,
                                      spec, delta_path);
  ASSERT_TRUE(result_hash.ok()) << result_hash.status().ToString();

  auto applied = serve::ApplyDelta(*base, delta_path);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_FALSE(applied->quantized_embeddings.empty());
  EXPECT_TRUE(applied->quantized_embeddings.borrowed());

  const int dim = patched.dim();
  std::vector<int8_t> expected_row(static_cast<size_t>(dim));
  for (int v = 0; v < patched.num_vertices(); ++v) {
    const bool touched =
        std::find(rows.begin(), rows.end(), v) != rows.end();
    float expected_scale;
    if (touched) {
      // Bit-identical to save-time quantization: one shared kernel.
      graph::QuantizedEmbeddingStore::QuantizeRow(
          patched.Vector(v), dim, expected_row.data(), &expected_scale);
    } else {
      std::memcpy(expected_row.data(), base->quantized_embeddings.Row(v),
                  static_cast<size_t>(dim));
      expected_scale = base->quantized_embeddings.scale(v);
    }
    ASSERT_EQ(applied->quantized_embeddings.scale(v), expected_scale)
        << "row " << v;
    ASSERT_EQ(std::memcmp(applied->quantized_embeddings.Row(v),
                          expected_row.data(), static_cast<size_t>(dim)),
              0)
        << "row " << v;
  }
  std::remove(delta_path.c_str());
}

TEST(DeltaTest, RejectsBaseHashMismatchAndBadFraming) {
  ServeFixture& f = Shared();
  auto base = serve::LoadSnapshot(f.snapshot_path);
  auto other = serve::LoadSnapshot(f.snapshot_b_path);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(other.ok());
  ASSERT_NE(base->content_hash, other->content_hash);

  const std::string delta_path = testing::TempDir() + "/imr_mismatch.imrd";
  serve::DeltaSpec spec;
  spec.touched_rows = {3};
  ASSERT_TRUE(serve::SaveDelta(base->content_hash, f.embeddings, nullptr,
                               spec, delta_path)
                  .ok());
  // Wrong generation: clean FailedPrecondition naming both hashes.
  auto mismatch = serve::ApplyDelta(*other, delta_path);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(mismatch.status().message().find("applies to base hash"),
            std::string::npos);

  // Bad framing: Status, never a crash.
  WriteFileAtomic(delta_path, "definitely not an IMRD file");
  EXPECT_FALSE(serve::ReadDeltaHeader(delta_path).ok());
  EXPECT_FALSE(serve::ApplyDelta(*base, delta_path).ok());

  // Bad spec: out-of-range rows and unknown parameter names fail the save.
  serve::DeltaSpec bad_rows;
  bad_rows.touched_rows = {f.embeddings.num_vertices() + 3};
  EXPECT_FALSE(serve::SaveDelta(base->content_hash, f.embeddings, nullptr,
                                bad_rows, delta_path)
                   .ok());
  serve::DeltaSpec bad_param;
  bad_param.touched_rows = {0};
  bad_param.changed_params = {"no/such/parameter"};
  EXPECT_FALSE(serve::SaveDelta(base->content_hash, f.embeddings,
                                f.model.get(), bad_param, delta_path)
                   .ok());
  std::remove(delta_path.c_str());
}

TEST(DeltaTest, ChainedDeltasComposeAcrossGenerations) {
  ServeFixture& f = Shared();
  auto base = serve::LoadSnapshot(f.snapshot_path);
  ASSERT_TRUE(base.ok());

  const std::vector<int> rows1 = {2, 9};
  const std::vector<int> rows2 = {4};
  const graph::EmbeddingStore step1 = PerturbRows(f.embeddings, rows1);
  const graph::EmbeddingStore step2 = PerturbRows(step1, rows2, 0.25f);
  const std::string d1 = testing::TempDir() + "/imr_chain1.imrd";
  const std::string d2 = testing::TempDir() + "/imr_chain2.imrd";
  serve::DeltaSpec spec1;
  spec1.touched_rows = rows1;
  auto h1 = serve::SaveDelta(base->content_hash, step1, nullptr, spec1, d1);
  ASSERT_TRUE(h1.ok());
  serve::DeltaSpec spec2;
  spec2.touched_rows = rows2;
  auto h2 = serve::SaveDelta(*h1, step2, nullptr, spec2, d2);
  ASSERT_TRUE(h2.ok());

  // d2 refuses the base generation (it chains on d1's result)...
  EXPECT_FALSE(serve::ApplyDelta(*base, d2).ok());
  // ...but composes through the chain.
  auto gen1 = serve::ApplyDelta(*base, d1);
  ASSERT_TRUE(gen1.ok()) << gen1.status().ToString();
  EXPECT_EQ(gen1->content_hash, *h1);
  auto gen2 = serve::ApplyDelta(*gen1, d2);
  ASSERT_TRUE(gen2.ok()) << gen2.status().ToString();
  EXPECT_EQ(gen2->content_hash, *h2);
  EXPECT_EQ(gen2->tables.get(), base->tables.get());
  ASSERT_EQ(gen2->embeddings.value_count(), step2.value_count());
  EXPECT_EQ(std::memcmp(gen2->embeddings.raw(), step2.raw(),
                        step2.value_count() * sizeof(float)),
            0);
  std::remove(d1.c_str());
  std::remove(d2.c_str());
}

TEST(DeltaTest, OwnedV1BaseFallbackStillApplies) {
  ServeFixture& f = Shared();
  const auto quantized = graph::QuantizedEmbeddingStore::Quantize(f.embeddings);
  const std::string v1_path = testing::TempDir() + "/imr_delta_v1.imrs";
  ASSERT_TRUE(serve::SaveSnapshot(*f.model, f.bags->vocabulary(),
                                  f.embeddings, f.dataset->world.graph,
                                  f.bag_options, 8, "v1", v1_path, &quantized,
                                  nullptr, serve::kSnapshotFormatV1)
                  .ok());
  auto base = serve::LoadSnapshot(v1_path);
  ASSERT_TRUE(base.ok());
  ASSERT_FALSE(base->embeddings.borrowed());
  ASSERT_EQ(base->content_hash, 0u);  // v1: deltas chain on hash 0

  const std::vector<int> rows = {6, 13};
  const graph::EmbeddingStore patched = PerturbRows(f.embeddings, rows);
  const std::string delta_path = testing::TempDir() + "/imr_delta_v1.imrd";
  serve::DeltaSpec spec;
  spec.touched_rows = rows;
  auto result_hash =
      serve::SaveDelta(0, patched, nullptr, spec, delta_path);
  ASSERT_TRUE(result_hash.ok());

  auto applied = serve::ApplyDelta(*base, delta_path);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_FALSE(applied->embeddings.borrowed());  // owned fallback
  EXPECT_EQ(applied->content_hash, *result_hash);
  EXPECT_EQ(std::memcmp(applied->embeddings.raw(), patched.raw(),
                        patched.value_count() * sizeof(float)),
            0);
  // The owned fallback requantizes the whole patched store through the
  // same kernel — bit-identical to quantizing from scratch.
  ASSERT_FALSE(applied->quantized_embeddings.empty());
  const auto requantized = graph::QuantizedEmbeddingStore::Quantize(patched);
  EXPECT_EQ(std::memcmp(applied->quantized_embeddings.raw(),
                        requantized.raw(), patched.value_count()),
            0);
  EXPECT_EQ(std::memcmp(applied->quantized_embeddings.raw_scales(),
                        requantized.raw_scales(),
                        static_cast<size_t>(patched.num_vertices()) *
                            sizeof(float)),
            0);
  std::remove(v1_path.c_str());
  std::remove(delta_path.c_str());
}

TEST(DeltaTest, RouterReloadDeltaMatchesFullSnapshot) {
  ServeFixture& f = Shared();
  serve::RouterOptions options;
  options.replicas = 2;
  auto router = serve::ServeRouter::Open(f.snapshot_path, options);
  ASSERT_TRUE(router.ok());
  const uint64_t base_hash = (*router)->content_hash();
  ASSERT_NE(base_hash, 0u);

  // Touch every sampled query's head row so predictions actually change.
  const std::vector<serve::Query> queries = f.SampleQueries(6);
  std::vector<int> rows;
  for (const serve::Query& query : queries)
    rows.push_back(static_cast<int>(query.head));
  const graph::EmbeddingStore patched = PerturbRows(f.embeddings, rows);
  const std::string delta_path = testing::TempDir() + "/imr_router.imrd";
  serve::DeltaSpec spec;
  spec.touched_rows = rows;
  auto result_hash =
      serve::SaveDelta(base_hash, patched, nullptr, spec, delta_path);
  ASSERT_TRUE(result_hash.ok());

  // Reference: the same post-step state saved as a FULL snapshot.
  const std::string ref_path = testing::TempDir() + "/imr_router_ref.imrs";
  ASSERT_TRUE(serve::SaveSnapshot(*f.model, f.bags->vocabulary(), patched,
                                  f.dataset->world.graph, f.bag_options, 9,
                                  "ref", ref_path)
                  .ok());
  auto reference = serve::InferenceEngine::Open(ref_path);
  ASSERT_TRUE(reference.ok());

  ASSERT_TRUE((*router)->ReloadDelta(delta_path).ok());
  EXPECT_EQ((*router)->generation(), 2u);
  EXPECT_EQ((*router)->content_hash(), *result_hash);
  const serve::RouterStats stats = (*router)->Stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.delta_reloads, 1u);
  EXPECT_EQ(stats.content_hash, *result_hash);
  EXPECT_TRUE(stats.last_reload_error.empty());

  for (const serve::Query& query : queries) {
    auto via_delta = (*router)->Predict(query);
    auto via_full = (*reference)->Predict(query);
    ASSERT_TRUE(via_delta.ok()) << via_delta.status().ToString();
    ASSERT_TRUE(via_full.ok());
    EXPECT_EQ(via_delta->probabilities, via_full->probabilities);
    EXPECT_EQ(via_delta->generation, 2u);
  }

  // Replaying the same delta fails cleanly (its base generation is gone)
  // and leaves the serving generation untouched.
  EXPECT_FALSE((*router)->ReloadDelta(delta_path).ok());
  EXPECT_EQ((*router)->generation(), 2u);
  EXPECT_FALSE((*router)->Stats().last_reload_error.empty());
  std::remove(delta_path.c_str());
  std::remove(ref_path.c_str());
}

// ---- watcher-driven delta rollout ------------------------------------------

namespace {

std::string MakeWatchDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

}  // namespace

TEST(SnapshotWatcherTest, AppliesSettledDeltasInChainOrder) {
  ServeFixture& f = Shared();
  const std::string dir = MakeWatchDir("imr_watch_chain");
  const std::string watched = dir + "/base.imrs";
  CopyFile(f.snapshot_path, watched);
  auto router = serve::ServeRouter::Open(watched);
  ASSERT_TRUE(router.ok());
  const uint64_t h0 = (*router)->content_hash();

  // Two chained deltas, NAMED so lexicographic order disagrees with chain
  // order — the watcher must order by base hash, not by name.
  const graph::EmbeddingStore step1 = PerturbRows(f.embeddings, {2, 9});
  const graph::EmbeddingStore step2 = PerturbRows(step1, {4}, 0.25f);
  serve::DeltaSpec spec1;
  spec1.touched_rows = {2, 9};
  auto h1 = serve::SaveDelta(h0, step1, nullptr, spec1,
                             dir + "/z_first.imrd");
  ASSERT_TRUE(h1.ok());
  serve::DeltaSpec spec2;
  spec2.touched_rows = {4};
  auto h2 = serve::SaveDelta(*h1, step2, nullptr, spec2,
                             dir + "/a_second.imrd");
  ASSERT_TRUE(h2.ok());

  serve::SnapshotWatcher watcher(watched, [&](const std::string& path) {
    return (*router)->Reload(path);
  });
  watcher.WatchDeltas(serve::DeltaHooks{
      [&] { return (*router)->content_hash(); },
      [&](const std::string& path) { return (*router)->ReloadDelta(path); }});

  // First poll: both files become debounce candidates, nothing applies.
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_EQ((*router)->generation(), 1u);
  // Second poll: both settled; the chain rolls out fully, in hash order.
  EXPECT_TRUE(watcher.CheckNow());
  EXPECT_EQ((*router)->generation(), 3u);
  EXPECT_EQ((*router)->content_hash(), *h2);
  serve::WatcherStats stats = watcher.Stats();
  EXPECT_EQ(stats.delta_applies_attempted, 2u);
  EXPECT_EQ(stats.delta_applies_succeeded, 2u);
  EXPECT_EQ(stats.delta_applies_failed, 0u);
  // Consumed: further polls are quiet.
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_EQ(watcher.Stats().delta_applies_attempted, 2u);

  std::remove((dir + "/z_first.imrd").c_str());
  std::remove((dir + "/a_second.imrd").c_str());
  std::remove(watched.c_str());
}

TEST(SnapshotWatcherTest, ConsumesFailedDeltasWithoutRetryStorm) {
  ServeFixture& f = Shared();
  const std::string dir = MakeWatchDir("imr_watch_bad_delta");
  const std::string watched = dir + "/base.imrs";
  CopyFile(f.snapshot_path, watched);
  auto router = serve::ServeRouter::Open(watched);
  ASSERT_TRUE(router.ok());
  const uint64_t h0 = (*router)->content_hash();

  serve::SnapshotWatcher watcher(watched, [&](const std::string& path) {
    return (*router)->Reload(path);
  });
  watcher.WatchDeltas(serve::DeltaHooks{
      [&] { return (*router)->content_hash(); },
      [&](const std::string& path) { return (*router)->ReloadDelta(path); }});

  // Corrupt framing: consumed after one failed probe, never retried.
  WriteFileAtomic(dir + "/bad.imrd", "garbage, definitely not IMRD");
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_TRUE(watcher.CheckNow());
  serve::WatcherStats stats = watcher.Stats();
  EXPECT_EQ(stats.delta_applies_attempted, 1u);
  EXPECT_EQ(stats.delta_applies_failed, 1u);
  EXPECT_FALSE(watcher.last_error().empty());
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_EQ(watcher.Stats().delta_applies_attempted, 1u);  // no storm

  // A delta for a FUTURE generation stays pending (cheap header probe,
  // not consumed, not counted as an attempt).
  serve::DeltaSpec spec;
  spec.touched_rows = {1};
  ASSERT_TRUE(serve::SaveDelta(0xDEADBEEFu, f.embeddings, nullptr, spec,
                               dir + "/pending.imrd")
                  .ok());
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_EQ(watcher.Stats().delta_applies_attempted, 1u);

  // A hash-matched delta whose APPLY fails (shape mismatch) is consumed.
  graph::EmbeddingStore tiny(4, 3);
  serve::DeltaSpec tiny_spec;
  tiny_spec.touched_rows = {0};
  ASSERT_TRUE(serve::SaveDelta(h0, tiny, nullptr, tiny_spec,
                               dir + "/mismatch.imrd")
                  .ok());
  EXPECT_FALSE(watcher.CheckNow());  // debounce
  EXPECT_TRUE(watcher.CheckNow());   // apply attempted, fails, consumed
  stats = watcher.Stats();
  EXPECT_EQ(stats.delta_applies_attempted, 2u);
  EXPECT_EQ(stats.delta_applies_failed, 2u);
  EXPECT_FALSE(watcher.CheckNow());
  EXPECT_EQ(watcher.Stats().delta_applies_attempted, 2u);
  // Through it all the old generation kept serving.
  EXPECT_EQ((*router)->generation(), 1u);
  EXPECT_EQ((*router)->content_hash(), h0);

  for (const char* name : {"/bad.imrd", "/pending.imrd", "/mismatch.imrd"})
    std::remove((dir + name).c_str());
  std::remove(watched.c_str());
}

// ---- mmap lifetime under fire ----------------------------------------------

TEST(MmapLifetimeTest, UnlinkedBaseServesBitExactThroughDeltaSwap) {
  // The base snapshot file is DELETED mid-traffic while borrowed views are
  // live, then a delta generation is published (CoW clone of the unlinked
  // mapping) and the delta file is deleted too. Every response must carry
  // an in-range generation stamp and bit-match that generation's
  // reference — the mapping outlives the directory entry.
  ServeFixture& f = Shared();
  const std::string dir = MakeWatchDir("imr_mmap_lifetime");
  const std::string base_path = dir + "/base.imrs";
  CopyFile(f.snapshot_path, base_path);

  serve::RouterOptions options;
  options.replicas = 2;
  options.workers_per_replica = 2;
  auto router = serve::ServeRouter::Open(base_path, options);
  ASSERT_TRUE(router.ok());

  const std::vector<serve::Query> queries = f.SampleQueries(4);
  std::vector<int> rows;
  for (const serve::Query& query : queries)
    rows.push_back(static_cast<int>(query.head));
  const graph::EmbeddingStore patched = PerturbRows(f.embeddings, rows);
  const std::string delta_path = dir + "/step.imrd";
  auto result_hash = [&] {
    serve::DeltaSpec spec;
    spec.touched_rows = rows;
    return serve::SaveDelta((*router)->content_hash(), patched, nullptr,
                            spec, delta_path);
  }();
  ASSERT_TRUE(result_hash.ok());

  // Per-generation references, from in-memory state (no files needed).
  auto engine_a = serve::InferenceEngine::Open(f.snapshot_path);
  ASSERT_TRUE(engine_a.ok());
  const std::string ref_path = dir + "/ref.imrs";
  ASSERT_TRUE(serve::SaveSnapshot(*f.model, f.bags->vocabulary(), patched,
                                  f.dataset->world.graph, f.bag_options, 9,
                                  "ref", ref_path)
                  .ok());
  auto engine_b = serve::InferenceEngine::Open(ref_path);
  ASSERT_TRUE(engine_b.ok());
  std::vector<std::vector<float>> expected_a, expected_b;
  for (const serve::Query& query : queries) {
    auto a = (*engine_a)->Predict(query);
    auto b = (*engine_b)->Predict(query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_NE(a->probabilities, b->probabilities);
    expected_a.push_back(a->probabilities);
    expected_b.push_back(b->probabilities);
  }
  std::remove(ref_path.c_str());

  struct Observed {
    size_t query = 0;
    uint64_t generation = 0;
    std::vector<float> probabilities;
  };
  util::Mutex observed_mutex;
  std::vector<Observed> observed;
  std::atomic<uint64_t> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t q = i++ % queries.size();
        auto result = (*router)->Predict(queries[q]);
        if (!result.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        util::MutexLock lock(observed_mutex);
        observed.push_back(
            Observed{q, result->generation, result->probabilities});
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  // Unlink the base snapshot out from under the live mapping...
  ASSERT_EQ(std::remove(base_path.c_str()), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  // ...publish the delta generation (CoW over the unlinked mapping)...
  ASSERT_TRUE((*router)->ReloadDelta(delta_path).ok());
  // ...and delete the delta file as well: serving owes nothing to disk.
  ASSERT_EQ(std::remove(delta_path.c_str()), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  stop.store(true);
  for (std::thread& t : traffic) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ((*router)->generation(), 2u);
  EXPECT_EQ((*router)->content_hash(), *result_hash);
  util::MutexLock lock(observed_mutex);
  ASSERT_GT(observed.size(), 0u);
  uint64_t max_generation = 0;
  for (const Observed& response : observed) {
    ASSERT_GE(response.generation, 1u);
    ASSERT_LE(response.generation, 2u);
    const std::vector<std::vector<float>>& expected =
        response.generation == 1 ? expected_a : expected_b;
    ASSERT_EQ(response.probabilities, expected[response.query])
        << "generation " << response.generation << " query "
        << response.query;
    max_generation = std::max(max_generation, response.generation);
  }
  EXPECT_EQ(max_generation, 2u);  // traffic actually crossed the swap
}

TEST(QuantizedEngineTest, QuantizedServingIsDeterministic) {
  ServeFixture& f = Shared();
  serve::EngineOptions options;
  options.quantized = true;
  auto engine = serve::InferenceEngine::Open(f.snapshot_path, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const std::vector<serve::Query> queries = f.SampleQueries(4);
  for (const serve::Query& query : queries) {
    auto first = (*engine)->Predict(query);
    auto second = (*engine)->Predict(query);  // second hits the MR cache
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first->probabilities, second->probabilities);
  }
}

}  // namespace
}  // namespace imr
