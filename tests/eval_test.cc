#include <gtest/gtest.h>

#include "eval/buckets.h"
#include "eval/heldout.h"
#include "eval/metrics.h"

namespace imr::eval {
namespace {

TEST(MetricsTest, PerfectRankingHasAucOne) {
  std::vector<ScoredFact> facts;
  for (int i = 0; i < 5; ++i)
    facts.push_back({i, i + 100, 1, 1.0 - 0.1 * i, true});
  for (int i = 0; i < 5; ++i)
    facts.push_back({i + 50, i + 100, 1, 0.3 - 0.01 * i, false});
  auto curve = PrecisionRecallCurve(&facts, 5);
  EXPECT_NEAR(AucPr(curve), 1.0, 1e-9);
  auto best = MaxF1(curve);
  EXPECT_NEAR(best.f1, 1.0, 1e-9);
  EXPECT_NEAR(PrecisionAtK(facts, 5), 1.0, 1e-9);
  EXPECT_NEAR(PrecisionAtK(facts, 10), 0.5, 1e-9);
}

TEST(MetricsTest, InvertedRankingHasLowAuc) {
  std::vector<ScoredFact> facts;
  for (int i = 0; i < 5; ++i)
    facts.push_back({i, i + 100, 1, 0.1 + 0.01 * i, true});
  for (int i = 0; i < 5; ++i)
    facts.push_back({i + 50, i + 100, 1, 0.9 - 0.01 * i, false});
  auto curve = PrecisionRecallCurve(&facts, 5);
  EXPECT_LT(AucPr(curve), 0.4);
}

TEST(MetricsTest, RecallDenominatorRespected) {
  // Only 1 of 4 positives retrieved.
  std::vector<ScoredFact> facts = {{1, 2, 1, 0.9, true}};
  auto curve = PrecisionRecallCurve(&facts, 4);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_NEAR(curve[0].recall, 0.25, 1e-9);
  EXPECT_NEAR(curve[0].precision, 1.0, 1e-9);
}

TEST(MetricsTest, CurveIsDeterministicUnderTies) {
  std::vector<ScoredFact> a = {{2, 3, 1, 0.5, false}, {1, 3, 1, 0.5, true}};
  std::vector<ScoredFact> b = {{1, 3, 1, 0.5, true}, {2, 3, 1, 0.5, false}};
  auto ca = PrecisionRecallCurve(&a, 1);
  auto cb = PrecisionRecallCurve(&b, 1);
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.size(); ++i)
    EXPECT_EQ(ca[i].precision, cb[i].precision);
}

TEST(MetricsTest, MicroF1IgnoresNa) {
  // gold:      1 1 0 2 0
  // predicted: 1 0 0 2 1
  MicroF1 f1 = MicroF1NonNa({1, 1, 0, 2, 0}, {1, 0, 0, 2, 1});
  // predicted non-NA = 3 (indices 0,3,4), correct = 2 -> P = 2/3
  // gold non-NA = 3, recalled = 2 -> R = 2/3
  EXPECT_NEAR(f1.precision, 2.0 / 3, 1e-9);
  EXPECT_NEAR(f1.recall, 2.0 / 3, 1e-9);
  EXPECT_EQ(f1.support, 3);
}

TEST(MetricsTest, MicroF1EmptyInput) {
  MicroF1 f1 = MicroF1NonNa({}, {});
  EXPECT_EQ(f1.f1, 0.0);
  EXPECT_EQ(f1.support, 0);
}

TEST(HeldOutTest, OracleScorerGetsPerfectMetrics) {
  std::vector<re::Bag> bags;
  for (int i = 0; i < 6; ++i) {
    re::Bag bag;
    bag.head = i;
    bag.tail = i + 100;
    bag.relation = i % 3;  // relations 0 (NA), 1, 2
    bags.push_back(bag);
  }
  const int num_relations = 3;
  auto oracle = [&](const re::Bag& bag) {
    std::vector<float> probs(num_relations, 0.01f);
    probs[static_cast<size_t>(bag.relation)] = 0.98f;
    return probs;
  };
  HeldOutResult result = Evaluate(oracle, bags, num_relations);
  EXPECT_EQ(result.total_positives, 4);
  EXPECT_NEAR(result.auc, 1.0, 1e-6);
  EXPECT_NEAR(result.best.f1, 1.0, 1e-6);
  ASSERT_EQ(result.hard_predictions.size(), bags.size());
  for (size_t i = 0; i < bags.size(); ++i)
    EXPECT_EQ(result.hard_predictions[i], bags[i].relation);
}

TEST(HeldOutTest, UniformScorerIsWeak) {
  std::vector<re::Bag> bags;
  for (int i = 0; i < 20; ++i) {
    re::Bag bag;
    bag.head = i;
    bag.tail = i + 100;
    bag.relation = (i >= 16) ? 1 : 0;  // positives rank last under ties
    bags.push_back(bag);
  }
  auto uniform = [](const re::Bag&) {
    return std::vector<float>{0.5f, 0.5f};
  };
  HeldOutResult result = Evaluate(uniform, bags, 2);
  EXPECT_LT(result.auc, 0.5);
}

TEST(BucketsTest, QuantileSplitsEvenly) {
  std::vector<re::Bag> bags(100);
  for (size_t i = 0; i < bags.size(); ++i) bags[i].head = static_cast<int64_t>(i);
  std::vector<std::string> labels;
  auto bucket_of = QuantileBuckets(
      bags, [](const re::Bag& b) { return static_cast<double>(b.head); }, 4,
      &labels);
  ASSERT_EQ(labels.size(), 4u);
  std::vector<int> counts(4, 0);
  for (const auto& bag : bags) counts[static_cast<size_t>(bucket_of(bag))]++;
  for (int c : counts) EXPECT_NEAR(c, 25, 2);
}

TEST(BucketsTest, F1PerBucket) {
  std::vector<re::Bag> bags(4);
  bags[0].head = 0;  // bucket 0
  bags[1].head = 0;
  bags[2].head = 1;  // bucket 1
  bags[3].head = 1;
  std::vector<int> gold = {1, 1, 1, 1};
  std::vector<int> pred = {1, 1, 0, 0};  // perfect in bucket 0, zero in 1
  auto result = F1ByBucket(
      bags, gold, pred, {"lo", "hi"},
      [](const re::Bag& b) { return static_cast<int>(b.head); });
  ASSERT_EQ(result.scores.size(), 2u);
  EXPECT_NEAR(result.scores[0].f1, 1.0, 1e-9);
  EXPECT_NEAR(result.scores[1].f1, 0.0, 1e-9);
  EXPECT_EQ(result.bag_counts[0], 2);
}

TEST(BucketsTest, SkippedBagsExcluded) {
  std::vector<re::Bag> bags(3);
  std::vector<int> gold = {1, 1, 1};
  std::vector<int> pred = {1, 1, 1};
  auto result = F1ByBucket(bags, gold, pred, {"only"},
                           [](const re::Bag&) { return -1; });
  EXPECT_EQ(result.bag_counts[0], 0);
}

}  // namespace
}  // namespace imr::eval
