// graph::ann + re::KnnPredictor tests — FlatIndex exactness against a
// naive reference (scalar-pinned, where the contract is bit-identity),
// backend agreement for the ANN distance kernels, IVF recall bounds and
// build determinism at any thread count, serialization round trips, and
// the ANNI snapshot section (including old-snapshot compatibility).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "graph/ann/ann_index.h"
#include "graph/ann/flat_index.h"
#include "graph/ann/ivf_index.h"
#include "graph/embedding_store.h"
#include "re/bag_dataset.h"
#include "re/knn_predictor.h"
#include "re/pa_model.h"
#include "serve/snapshot.h"
#include "tensor/simd/dispatch.h"
#include "text/vocab.h"
#include "util/rng.h"
#include "util/serialization.h"
#include "util/thread_pool.h"

namespace imr {
namespace {

namespace ann = graph::ann;
namespace simd = tensor::simd;

std::vector<float> RandomFloats(size_t n, uint64_t seed, float lo = -1.0f,
                                float hi = 1.0f) {
  util::Rng rng(seed);
  std::vector<float> out(n);
  for (float& v : out) v = static_cast<float>(rng.Uniform(lo, hi));
  return out;
}

// Clustered rows (the shape entity-embedding tables have): IVF recall
// bounds are only meaningful when the coarse quantizer has structure.
std::vector<float> ClusteredRows(int rows, int dim, int clusters,
                                 uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> centers(static_cast<size_t>(clusters) * dim);
  for (float& c : centers) c = static_cast<float>(rng.Uniform(-1.0, 1.0));
  std::vector<float> data(static_cast<size_t>(rows) * dim);
  for (int r = 0; r < rows; ++r) {
    const float* center =
        centers.data() +
        static_cast<size_t>(rng.UniformInt(static_cast<uint64_t>(clusters))) *
            dim;
    float* row = data.data() + static_cast<size_t>(r) * dim;
    for (int d = 0; d < dim; ++d) {
      row[d] = center[d] + static_cast<float>(rng.Uniform(-0.1, 0.1));
    }
  }
  return data;
}

// Naive sequential reference — the same ascending-k accumulation order as
// the scalar kernels, so under a scalar pin FlatIndex must match exactly.
std::vector<ann::SearchResult> BruteForce(const float* data, int rows,
                                          int dim, ann::Metric metric,
                                          const float* query, int k) {
  std::vector<ann::SearchResult> all(static_cast<size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    const float* row = data + static_cast<size_t>(r) * dim;
    float dot = 0.0f, l2 = 0.0f, row_sq = 0.0f;
    for (int d = 0; d < dim; ++d) {
      dot += query[d] * row[d];
      const float diff = query[d] - row[d];
      l2 += diff * diff;
      row_sq += row[d] * row[d];
    }
    float score = 0.0f;
    switch (metric) {
      case ann::Metric::kDot:
        score = dot;
        break;
      case ann::Metric::kCosine: {
        float query_sq = 0.0f;
        for (int d = 0; d < dim; ++d) query_sq += query[d] * query[d];
        const float inv_r =
            row_sq > 0.0f ? 1.0f / std::sqrt(row_sq) : 0.0f;
        const float inv_q =
            query_sq > 0.0f ? 1.0f / std::sqrt(query_sq) : 0.0f;
        score = dot * inv_r * inv_q;
        break;
      }
      case ann::Metric::kL2:
        score = -l2;
        break;
    }
    all[static_cast<size_t>(r)] = {r, score};
  }
  std::sort(all.begin(), all.end(), ann::Better);
  all.resize(static_cast<size_t>(std::min(k, rows)));
  return all;
}

double Recall(const std::vector<ann::SearchResult>& truth,
              const std::vector<ann::SearchResult>& got) {
  if (truth.empty()) return 1.0;
  int hit = 0;
  for (const auto& t : truth) {
    for (const auto& g : got) {
      if (g.id == t.id) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(AnnKernelsTest, AllBackendsPopulateAnnEntries) {
  for (simd::Backend backend : simd::SupportedBackends()) {
    const simd::Kernels& kernels = simd::KernelsFor(backend);
    EXPECT_NE(kernels.ann_dot_many, nullptr);
    EXPECT_NE(kernels.ann_l2sqr_many, nullptr);
    EXPECT_NE(kernels.ann_cosine_many, nullptr);
    EXPECT_NE(kernels.ann_dot_batch, nullptr);
  }
}

TEST(AnnKernelsTest, BackendsMatchScalarWithinTolerance) {
  constexpr size_t kRows = 37;   // odd: exercises SIMD row-tail handling
  constexpr size_t kDim = 29;    // odd: exercises lane-tail handling
  const std::vector<float> base = RandomFloats(kRows * kDim, 11);
  const std::vector<float> query = RandomFloats(kDim, 13);
  std::vector<float> inv_norms(kRows);
  for (size_t r = 0; r < kRows; ++r) {
    inv_norms[r] = ann::detail::InvNorm(base.data() + r * kDim, kDim);
  }
  const float query_inv = ann::detail::InvNorm(query.data(), kDim);

  const simd::Kernels& scalar = simd::KernelsFor(simd::Backend::kScalar);
  std::vector<float> want_dot(kRows), want_l2(kRows), want_cos(kRows);
  scalar.ann_dot_many(query.data(), base.data(), kRows, kDim,
                      want_dot.data());
  scalar.ann_l2sqr_many(query.data(), base.data(), kRows, kDim,
                        want_l2.data());
  scalar.ann_cosine_many(query.data(), base.data(), inv_norms.data(),
                         query_inv, kRows, kDim, want_cos.data());

  for (simd::Backend backend : simd::SupportedBackends()) {
    const simd::Kernels& kernels = simd::KernelsFor(backend);
    std::vector<float> got(kRows);
    kernels.ann_dot_many(query.data(), base.data(), kRows, kDim, got.data());
    for (size_t r = 0; r < kRows; ++r) {
      EXPECT_NEAR(got[r], want_dot[r], 1e-4f)
          << simd::BackendName(backend) << " dot row " << r;
    }
    kernels.ann_l2sqr_many(query.data(), base.data(), kRows, kDim,
                           got.data());
    for (size_t r = 0; r < kRows; ++r) {
      EXPECT_NEAR(got[r], want_l2[r], 1e-4f)
          << simd::BackendName(backend) << " l2 row " << r;
    }
    kernels.ann_cosine_many(query.data(), base.data(), inv_norms.data(),
                            query_inv, kRows, kDim, got.data());
    for (size_t r = 0; r < kRows; ++r) {
      EXPECT_NEAR(got[r], want_cos[r], 1e-4f)
          << simd::BackendName(backend) << " cosine row " << r;
    }
    // Batch kernel: each query row must match the single-query kernel of
    // the same backend.
    constexpr size_t kQueries = 5;
    const std::vector<float> queries = RandomFloats(kQueries * kDim, 17);
    std::vector<float> batch(kQueries * kRows);
    kernels.ann_dot_batch(queries.data(), kQueries, base.data(), kRows, kDim,
                          batch.data());
    std::vector<float> single(kRows);
    for (size_t q = 0; q < kQueries; ++q) {
      kernels.ann_dot_many(queries.data() + q * kDim, base.data(), kRows,
                           kDim, single.data());
      for (size_t r = 0; r < kRows; ++r) {
        EXPECT_NEAR(batch[q * kRows + r], single[r], 1e-4f)
            << simd::BackendName(backend) << " batch q" << q << " row " << r;
      }
    }
  }
}

TEST(FlatIndexTest, MatchesBruteForceExactlyUnderScalarPin) {
  simd::ScopedEvalBackend pin(simd::Backend::kScalar);
  constexpr int kRows = 200, kDim = 24, kK = 10;
  const std::vector<float> data =
      RandomFloats(static_cast<size_t>(kRows) * kDim, 23);
  const std::vector<float> queries = RandomFloats(8 * kDim, 29);
  for (ann::Metric metric :
       {ann::Metric::kDot, ann::Metric::kCosine, ann::Metric::kL2}) {
    ann::FlatIndex index;
    index.Build(data.data(), kRows, kDim, metric);
    std::vector<ann::SearchResult> got;
    for (int q = 0; q < 8; ++q) {
      const float* query = queries.data() + static_cast<size_t>(q) * kDim;
      const auto want = BruteForce(data.data(), kRows, kDim, metric, query,
                                   kK);
      index.Search(query, kK, &got);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].id, want[i].id)
            << ann::MetricName(metric) << " query " << q << " rank " << i;
        EXPECT_EQ(got[i].score, want[i].score)  // bit-identical contract
            << ann::MetricName(metric) << " query " << q << " rank " << i;
      }
    }
  }
}

TEST(FlatIndexTest, BackendsAgreeOnNeighborSets) {
  constexpr int kRows = 300, kDim = 32, kK = 10;
  const std::vector<float> data = ClusteredRows(kRows, kDim, 16, 31);
  const std::vector<float> query = RandomFloats(kDim, 37);
  std::vector<ann::SearchResult> scalar_results;
  {
    simd::ScopedEvalBackend pin(simd::Backend::kScalar);
    ann::FlatIndex index;
    index.Build(data.data(), kRows, kDim, ann::Metric::kCosine);
    index.Search(query.data(), kK, &scalar_results);
  }
  for (simd::Backend backend : simd::SupportedBackends()) {
    simd::ScopedEvalBackend pin(backend);
    ann::FlatIndex index;
    index.Build(data.data(), kRows, kDim, ann::Metric::kCosine);
    std::vector<ann::SearchResult> results;
    index.Search(query.data(), kK, &results);
    EXPECT_EQ(Recall(scalar_results, results), 1.0)
        << simd::BackendName(backend);
  }
}

TEST(FlatIndexTest, SearchBatchMatchesSearch) {
  constexpr int kRows = 150, kDim = 16, kK = 7, kQueries = 19;
  const std::vector<float> data =
      RandomFloats(static_cast<size_t>(kRows) * kDim, 41);
  const std::vector<float> queries =
      RandomFloats(static_cast<size_t>(kQueries) * kDim, 43);
  for (ann::Metric metric :
       {ann::Metric::kDot, ann::Metric::kCosine, ann::Metric::kL2}) {
    ann::FlatIndex index;
    index.Build(data.data(), kRows, kDim, metric);
    std::vector<std::vector<ann::SearchResult>> batch;
    index.SearchBatch(queries.data(), kQueries, kK, &batch);
    ASSERT_EQ(batch.size(), static_cast<size_t>(kQueries));
    std::vector<ann::SearchResult> single;
    for (int q = 0; q < kQueries; ++q) {
      index.Search(queries.data() + static_cast<size_t>(q) * kDim, kK,
                   &single);
      ASSERT_EQ(batch[static_cast<size_t>(q)].size(), single.size());
      for (size_t i = 0; i < single.size(); ++i) {
        EXPECT_EQ(batch[static_cast<size_t>(q)][i].id, single[i].id)
            << ann::MetricName(metric) << " q" << q << " rank " << i;
      }
    }
  }
}

TEST(FlatIndexTest, EdgeCases) {
  std::vector<ann::SearchResult> results;
  // Empty index: any search comes back empty.
  ann::FlatIndex empty;
  empty.Build(nullptr, 0, 4, ann::Metric::kCosine);
  empty.Search(std::vector<float>(4, 1.0f).data(), 5, &results);
  EXPECT_TRUE(results.empty());

  // Single entity: returned for any k >= 1; k larger than the index
  // clamps; k <= 0 is empty.
  const std::vector<float> one = {1.0f, 2.0f, 3.0f, 4.0f};
  ann::FlatIndex single;
  single.Build(one.data(), 1, 4, ann::Metric::kCosine);
  single.Search(one.data(), 10, &results);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, 0);
  EXPECT_NEAR(results[0].score, 1.0f, 1e-5f);  // self-similarity
  single.Search(one.data(), 0, &results);
  EXPECT_TRUE(results.empty());

  // Zero query against a cosine index: zero scores, but still k results
  // with deterministic ascending-id order.
  const std::vector<float> zero(4, 0.0f);
  single.Search(zero.data(), 1, &results);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].score, 0.0f);
}

TEST(FlatIndexTest, DuplicateVectorsTieBreakOnAscendingId) {
  // Rows 1, 3, 4 are identical; the equal-score block must come back in
  // ascending id order every time.
  std::vector<float> data = RandomFloats(5 * 8, 47);
  for (int d = 0; d < 8; ++d) {
    data[static_cast<size_t>(3) * 8 + d] = data[static_cast<size_t>(1) * 8 + d];
    data[static_cast<size_t>(4) * 8 + d] = data[static_cast<size_t>(1) * 8 + d];
  }
  ann::FlatIndex index;
  index.Build(data.data(), 5, 8, ann::Metric::kCosine);
  std::vector<ann::SearchResult> results;
  index.Search(data.data() + 8, 3, &results);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].id, 1);
  EXPECT_EQ(results[1].id, 3);
  EXPECT_EQ(results[2].id, 4);
  EXPECT_EQ(results[0].score, results[1].score);
  EXPECT_EQ(results[1].score, results[2].score);
}

TEST(IvfIndexTest, RecallBoundsAtFixedSeed) {
  constexpr int kRows = 2000, kDim = 16, kK = 10;
  const std::vector<float> data = ClusteredRows(kRows, kDim, 32, 53);
  const std::vector<float> queries = ClusteredRows(32, kDim, 32, 53);
  ann::FlatIndex flat;
  flat.Build(data.data(), kRows, kDim, ann::Metric::kCosine);
  ann::IvfOptions options;
  options.nlist = 32;
  options.nprobe = 8;
  ann::IvfIndex ivf;
  ivf.Build(data.data(), kRows, kDim, ann::Metric::kCosine, options,
            nullptr);
  EXPECT_EQ(ivf.size(), kRows);
  EXPECT_EQ(ivf.nlist(), 32);

  std::vector<ann::SearchResult> exact, approx;
  double recall_sum = 0.0;
  for (int q = 0; q < 32; ++q) {
    const float* query = queries.data() + static_cast<size_t>(q) * kDim;
    flat.Search(query, kK, &exact);
    ivf.Search(query, kK, &approx);
    recall_sum += Recall(exact, approx);
  }
  EXPECT_GE(recall_sum / 32.0, 0.95);

  // Probing every cell is an exhaustive scan: recall must be perfect.
  ivf.set_nprobe(ivf.nlist());
  recall_sum = 0.0;
  for (int q = 0; q < 32; ++q) {
    const float* query = queries.data() + static_cast<size_t>(q) * kDim;
    flat.Search(query, kK, &exact);
    ivf.Search(query, kK, &approx);
    recall_sum += Recall(exact, approx);
  }
  EXPECT_GE(recall_sum / 32.0, 0.99);
}

TEST(IvfIndexTest, BuildIsDeterministicAtAnyThreadCount) {
  constexpr int kRows = 1200, kDim = 12;
  const std::vector<float> data = ClusteredRows(kRows, kDim, 24, 59);
  ann::IvfOptions options;
  options.nlist = 24;
  options.nprobe = 6;

  util::ThreadPool pool_one(1);
  util::ThreadPool pool_many(7);
  ann::IvfIndex sequential, one, many;
  sequential.Build(data.data(), kRows, kDim, ann::Metric::kL2, options,
                   nullptr);
  one.Build(data.data(), kRows, kDim, ann::Metric::kL2, options, &pool_one);
  many.Build(data.data(), kRows, kDim, ann::Metric::kL2, options,
             &pool_many);

  // The serialized structure (centroids + assignments) must be
  // byte-identical, which makes search results identical by construction.
  const std::string dir = testing::TempDir();
  const auto dump = [&](const ann::IvfIndex& index, const std::string& name) {
    util::BinaryWriter writer(dir + "/" + name, 0x414E4E54, 1);
    index.WriteTo(&writer);
    EXPECT_TRUE(writer.Close().ok());
    return ReadFileBytes(dir + "/" + name);
  };
  const std::string bytes_sequential = dump(sequential, "ivf_seq.bin");
  EXPECT_EQ(bytes_sequential, dump(one, "ivf_one.bin"));
  EXPECT_EQ(bytes_sequential, dump(many, "ivf_many.bin"));

  const std::vector<float> query = RandomFloats(kDim, 61);
  std::vector<ann::SearchResult> a, b;
  sequential.Search(query.data(), 5, &a);
  many.Search(query.data(), 5, &b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].score, b[i].score);
  }
}

TEST(IvfIndexTest, SerializationRoundTripAndValidation) {
  constexpr int kRows = 500, kDim = 8;
  const std::vector<float> data = ClusteredRows(kRows, kDim, 16, 67);
  ann::IvfOptions options;
  options.nlist = 16;
  options.nprobe = 4;
  ann::IvfIndex index;
  index.Build(data.data(), kRows, kDim, ann::Metric::kCosine, options,
              nullptr);

  const std::string path = testing::TempDir() + "/ivf_roundtrip.bin";
  {
    util::BinaryWriter writer(path, 0x414E4E54, 1);
    index.WriteTo(&writer);
    ASSERT_TRUE(writer.Close().ok());
  }
  {
    util::BinaryReader reader(path, 0x414E4E54, 1);
    auto loaded = ann::IvfIndex::ReadFrom(&reader, data.data(), kRows, kDim);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->nlist(), index.nlist());
    EXPECT_EQ(loaded->nprobe(), index.nprobe());
    const std::vector<float> query = RandomFloats(kDim, 71);
    std::vector<ann::SearchResult> want, got;
    index.Search(query.data(), 8, &want);
    loaded->Search(query.data(), 8, &got);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_EQ(got[i].score, want[i].score);
    }
  }
  // A different base matrix shape is rejected, not misread.
  {
    util::BinaryReader reader(path, 0x414E4E54, 1);
    auto loaded =
        ann::IvfIndex::ReadFrom(&reader, data.data(), kRows - 1, kDim);
    EXPECT_FALSE(loaded.ok());
  }
}

TEST(IvfIndexTest, EmptyAndTinyInputs) {
  ann::IvfOptions options;
  options.nlist = 8;
  ann::IvfIndex empty;
  empty.Build(nullptr, 0, 4, ann::Metric::kCosine, options, nullptr);
  std::vector<ann::SearchResult> results;
  empty.Search(std::vector<float>(4, 1.0f).data(), 3, &results);
  EXPECT_TRUE(results.empty());

  // Fewer rows than nlist: nlist clamps to rows, every row still found.
  const std::vector<float> data = RandomFloats(3 * 4, 73);
  ann::IvfIndex tiny;
  tiny.Build(data.data(), 3, 4, ann::Metric::kCosine, options, nullptr);
  EXPECT_LE(tiny.nlist(), 3);
  tiny.set_nprobe(tiny.nlist());
  tiny.Search(data.data(), 3, &results);
  EXPECT_EQ(results.size(), 3u);
}

// ---------------------------------------------------------------------------
// KnnPredictor

re::Bag MakeBag(int64_t head, int64_t tail, int relation) {
  re::Bag bag;
  bag.head = head;
  bag.tail = tail;
  bag.relation = relation;
  return bag;
}

// 30 entities, dim 8; pairs of relation r have MR vectors clustered around
// a per-relation direction, so the kNN vote is informative.
struct KnnFixture {
  KnnFixture() : embeddings(30, 8) {
    util::Rng rng(79);
    for (int v = 0; v < 30; ++v) {
      float* row = embeddings.Vector(v);
      for (int d = 0; d < 8; ++d) {
        row[d] = static_cast<float>(rng.Uniform(-0.2, 0.2));
      }
    }
    // Relation r shifts tail - head by +2 in component r.
    for (int r = 1; r <= 3; ++r) {
      for (int p = 0; p < 6; ++p) {
        const int64_t head = (r - 1) * 8 + p;
        const int64_t tail = head + 4;
        embeddings.Vector(static_cast<int>(tail))[r] =
            embeddings.Vector(static_cast<int>(head))[r] + 2.0f;
        bags.push_back(MakeBag(head, tail, r));
      }
    }
  }
  graph::EmbeddingStore embeddings;
  std::vector<re::Bag> bags;
};

TEST(KnnPredictorTest, GateBlocksConfidentPredictionsAndVoteFires) {
  KnnFixture fixture;
  re::KnnOptions options;
  options.k = 4;
  options.lambda = 0.5f;
  options.confidence_gate = 0.6f;
  const re::KnnPredictor knn = re::KnnPredictor::Build(
      fixture.embeddings, fixture.bags, /*num_relations=*/4, options,
      nullptr);
  EXPECT_EQ(knn.num_pairs(), 18);
  EXPECT_FALSE(knn.uses_ivf());  // 18 pairs < min_pairs_for_ivf

  const std::vector<float> mr =
      fixture.embeddings.MutualRelation(0, 4);  // relation-1 shaped pair

  // Confident model: the gate holds the vote back and probs are untouched.
  std::vector<float> confident = {0.9f, 0.04f, 0.03f, 0.03f};
  const std::vector<float> before = confident;
  EXPECT_FALSE(knn.Interpolate(mr.data(), &confident));
  EXPECT_EQ(confident, before);

  // Unsure model: the vote fires and pushes mass onto the right relation.
  std::vector<float> unsure = {0.3f, 0.24f, 0.23f, 0.23f};
  EXPECT_TRUE(knn.Interpolate(mr.data(), &unsure));
  EXPECT_GT(unsure[1], 0.5f);  // neighbors all carry label 1
  float sum = 0.0f;
  for (const float p : unsure) sum += p;
  EXPECT_NEAR(sum, 1.0f, 1e-4f);  // blend of two distributions
}

TEST(KnnPredictorTest, SerializationRoundTripPreservesInterpolation) {
  KnnFixture fixture;
  re::KnnOptions options;
  options.k = 4;
  options.min_pairs_for_ivf = 10;  // force the IVF path through the trip
  options.nlist = 4;
  options.nprobe = 4;
  const re::KnnPredictor knn = re::KnnPredictor::Build(
      fixture.embeddings, fixture.bags, /*num_relations=*/4, options,
      nullptr);
  ASSERT_TRUE(knn.uses_ivf());

  const std::string path = testing::TempDir() + "/knn_roundtrip.bin";
  {
    util::BinaryWriter writer(path, 0x414E4E54, 1);
    knn.WriteTo(&writer);
    ASSERT_TRUE(writer.Close().ok());
  }
  util::BinaryReader reader(path, 0x414E4E54, 1);
  auto loaded = re::KnnPredictor::ReadFrom(&reader, fixture.embeddings);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_pairs(), knn.num_pairs());
  EXPECT_EQ(loaded->uses_ivf(), knn.uses_ivf());
  EXPECT_EQ(loaded->options().k, options.k);

  const std::vector<float> mr = fixture.embeddings.MutualRelation(8, 12);
  std::vector<float> a = {0.3f, 0.24f, 0.23f, 0.23f};
  std::vector<float> b = a;
  EXPECT_EQ(knn.Interpolate(mr.data(), &a),
            loaded->Interpolate(mr.data(), &b));
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

// ---------------------------------------------------------------------------
// ANNI snapshot section

// Minimal but valid snapshot bundle (untrained model — section layout and
// validation are what's under test, not accuracy).
struct SnapshotFixture {
  SnapshotFixture() : embeddings(30, 8) {
    vocab.Count("alpha");
    vocab.Count("beta");
    vocab.Count("gamma");
    vocab.Freeze(1);

    util::Rng rng(83);
    for (int v = 0; v < 30; ++v) {
      float* row = embeddings.Vector(v);
      for (int d = 0; d < 8; ++d) {
        row[d] = static_cast<float>(rng.Uniform(-1.0, 1.0));
      }
    }

    config.num_relations = 4;
    config.encoder = "pcnn";
    config.aggregation = re::Aggregation::kAttention;
    config.use_mutual_relation = true;
    config.use_entity_type = false;
    config.mutual_relation_dim = 8;
    config.encoder_config.vocab_size = vocab.size();
    config.encoder_config.word_dim = 6;
    config.encoder_config.position_dim = 2;
    config.encoder_config.max_position = 10;
    config.encoder_config.window = 3;
    config.encoder_config.filters = 4;
    util::Rng model_rng(5);
    model = std::make_unique<re::PaModel>(config, &model_rng);
    model->SetTraining(false);

    relation_names = {"NA", "r1", "r2", "r3"};
    bag_options.max_sentence_length = 20;
    bag_options.max_position = 10;
  }

  util::Status Save(const std::string& path,
                    const re::KnnPredictor* knn = nullptr,
                    const graph::QuantizedEmbeddingStore* quantized =
                        nullptr) const {
    return serve::SaveSnapshot(*model, vocab, embeddings, relation_names,
                               /*entities=*/{}, bag_options,
                               /*trained_steps=*/1, "ann_test", path,
                               quantized, knn);
  }

  text::Vocabulary vocab;
  graph::EmbeddingStore embeddings;
  re::PaModelConfig config;
  std::unique_ptr<re::PaModel> model;
  std::vector<std::string> relation_names;
  re::BagDatasetOptions bag_options;
};

TEST(AnnSnapshotTest, SnapshotWithoutAnnSectionLoadsWithNullKnn) {
  SnapshotFixture fixture;
  const std::string path = testing::TempDir() + "/ann_snapshot_plain.imrs";
  ASSERT_TRUE(fixture.Save(path).ok());
  auto snapshot = serve::LoadSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->knn, nullptr);
}

TEST(AnnSnapshotTest, AnnSectionRoundTripsThroughSnapshot) {
  SnapshotFixture fixture;
  std::vector<re::Bag> bags;
  util::Rng rng(89);
  for (int p = 0; p < 20; ++p) {
    bags.push_back(MakeBag(static_cast<int64_t>(rng.UniformInt(30)),
                           static_cast<int64_t>(rng.UniformInt(30)),
                           1 + static_cast<int>(rng.UniformInt(3))));
  }
  re::KnnOptions options;
  options.k = 3;
  const re::KnnPredictor knn = re::KnnPredictor::Build(
      fixture.embeddings, bags, fixture.config.num_relations, options,
      nullptr);
  ASSERT_GT(knn.num_pairs(), 0);

  const std::string path = testing::TempDir() + "/ann_snapshot_knn.imrs";
  ASSERT_TRUE(fixture.Save(path, &knn).ok());
  auto snapshot = serve::LoadSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_NE(snapshot->knn, nullptr);
  EXPECT_EQ(snapshot->knn->num_pairs(), knn.num_pairs());
  EXPECT_EQ(snapshot->knn->num_relations(), knn.num_relations());
  EXPECT_EQ(snapshot->knn->options().k, options.k);

  // The reloaded predictor interpolates identically (MR vectors are
  // recomputed from the snapshot's own embedding section).
  const std::vector<float> mr = fixture.embeddings.MutualRelation(1, 7);
  std::vector<float> a = {0.3f, 0.24f, 0.23f, 0.23f};
  std::vector<float> b = a;
  EXPECT_EQ(knn.Interpolate(mr.data(), &a),
            snapshot->knn->Interpolate(mr.data(), &b));
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(AnnSnapshotTest, AnnSectionChainsAfterQuantizedSection) {
  SnapshotFixture fixture;
  std::vector<re::Bag> bags;
  for (int p = 0; p < 12; ++p) bags.push_back(MakeBag(p, p + 10, 1 + p % 3));
  const re::KnnPredictor knn = re::KnnPredictor::Build(
      fixture.embeddings, bags, fixture.config.num_relations, {}, nullptr);
  const auto quantized =
      graph::QuantizedEmbeddingStore::Quantize(fixture.embeddings);

  const std::string path = testing::TempDir() + "/ann_snapshot_both.imrs";
  ASSERT_TRUE(fixture.Save(path, &knn, &quantized).ok());
  auto snapshot = serve::LoadSnapshot(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_FALSE(snapshot->quantized_embeddings.empty());
  ASSERT_NE(snapshot->knn, nullptr);
  EXPECT_EQ(snapshot->knn->num_pairs(), knn.num_pairs());
}

TEST(AnnSnapshotTest, MismatchedKnnRejectedAtSaveTime) {
  SnapshotFixture fixture;
  std::vector<re::Bag> bags = {MakeBag(0, 1, 1)};
  // Predictor over a different embedding dim than the snapshot's store.
  graph::EmbeddingStore other(30, 4);
  const re::KnnPredictor knn = re::KnnPredictor::Build(
      other, bags, fixture.config.num_relations, {}, nullptr);
  const std::string path = testing::TempDir() + "/ann_snapshot_bad.imrs";
  EXPECT_FALSE(fixture.Save(path, &knn).ok());
}

}  // namespace
}  // namespace imr
