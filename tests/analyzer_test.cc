// Tests for pass 2 of the static-analysis framework (tools/analyzer.h):
// seeded fixtures for each whole-program analysis (lock-order cycle,
// hot-path reachability, Status-drop) asserting exact rule id and
// file:line, suppression and baseline mechanics, the on-disk model cache,
// and the real-tree regressions (lock-order graph cycle-free, analyzer
// clean against the checked-in baseline).
//
// imr-lint: allow-file(mutex-guard)
#include "analyzer.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint.h"

namespace analysis = imr::analysis;
namespace lint = imr::lint;

namespace {

analysis::AnalysisReport Analyze(
    const std::vector<analysis::SourceFile>& files,
    analysis::AnalyzerOptions options = {}) {
  options.run_lint = false;  // pass-2 behavior only; pass 1 has lint_test
  return analysis::AnalyzeSources(files, options);
}

std::vector<lint::Finding> ForRule(const std::vector<lint::Finding>& all,
                                   const std::string& rule) {
  std::vector<lint::Finding> out;
  for (const lint::Finding& f : all) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

TEST(AnalysisIdsTest, Stable) {
  const std::vector<std::string> expected = {
      "lock-order-cycle",
      "hot-path-blocking",
      "hot-path-alloc",
      "status-drop",
  };
  EXPECT_EQ(analysis::AnalysisIds(), expected);
}

// ---- lock-order cycles ---------------------------------------------------

TEST(LockOrderTest, DetectsSeededTwoMutexCycleAcrossFiles) {
  const std::string a_cc = R"cc(namespace fix {
void LockAB() {
  util::MutexLock a(mu_a);
  util::MutexLock b(mu_b);
}
}  // namespace fix
)cc";
  const std::string b_cc = R"cc(namespace fix {
void LockBA() {
  util::MutexLock b(mu_b);
  util::MutexLock a(mu_a);
}
}  // namespace fix
)cc";
  const analysis::AnalysisReport report =
      Analyze({{"src/fix/a.cc", a_cc}, {"src/fix/b.cc", b_cc}});
  const auto cycles = ForRule(report.findings, "lock-order-cycle");
  ASSERT_EQ(cycles.size(), 1u);
  // the cycle leader is the lexicographically smallest mutex (mu_a), so
  // the reported site is the mu_b acquisition under mu_a: a.cc line 4
  EXPECT_EQ(cycles[0].file, "src/fix/a.cc");
  EXPECT_EQ(cycles[0].line, 4);
  EXPECT_NE(cycles[0].message.find("mu_a -> mu_b"), std::string::npos);
  EXPECT_NE(cycles[0].message.find("mu_b -> mu_a"), std::string::npos);
  EXPECT_EQ(cycles[0].key, "mu_a<->mu_b");
}

TEST(LockOrderTest, DetectsTransitiveCycleThroughCallGraph) {
  const std::string a_cc = R"cc(namespace fix {
void TakeB();
void Outer() {
  util::MutexLock a(mu_a);
  TakeB();
}
}  // namespace fix
)cc";
  const std::string b_cc = R"cc(namespace fix {
void TakeB() {
  util::MutexLock b(mu_b);
}
void TakeA() {
  util::MutexLock a2(mu_a);
}
void Outer2() {
  util::MutexLock b2(mu_b);
  TakeA();
}
}  // namespace fix
)cc";
  const analysis::AnalysisReport report =
      Analyze({{"src/fix/a.cc", a_cc}, {"src/fix/b.cc", b_cc}});
  const auto cycles = ForRule(report.findings, "lock-order-cycle");
  ASSERT_EQ(cycles.size(), 1u);
  // the acquisition chain names the functions the edge flows through
  EXPECT_NE(cycles[0].message.find("fix::Outer -> fix::TakeB"),
            std::string::npos);
}

TEST(LockOrderTest, ManualUnlockReleasesBeforeNextAcquire) {
  const std::string src = R"cc(namespace fix {
void Manual() {
  mu_a.Lock();
  mu_a.Unlock();
  util::MutexLock b(mu_b);
}
void Reverse() {
  util::MutexLock b(mu_b);
}
}  // namespace fix
)cc";
  const analysis::AnalysisReport report = Analyze({{"src/fix/m.cc", src}});
  EXPECT_TRUE(ForRule(report.findings, "lock-order-cycle").empty());
}

TEST(LockOrderTest, NestedOrderInOneDirectionIsNotACycle) {
  const std::string src = R"cc(namespace fix {
void One() {
  util::MutexLock a(mu_a);
  util::MutexLock b(mu_b);
}
void Two() {
  util::MutexLock a(mu_a);
  util::MutexLock b(mu_b);
}
}  // namespace fix
)cc";
  const analysis::AnalysisReport report = Analyze({{"src/fix/n.cc", src}});
  EXPECT_TRUE(ForRule(report.findings, "lock-order-cycle").empty());
}

// ---- hot-path reachability -----------------------------------------------

TEST(HotPathTest, DetectsBlockingCallThreeFramesBelowPredict) {
  const std::string src = R"cc(namespace fix {
class InferenceEngine {
 public:
  int Predict(int q) { return Level1(q); }
  int Level1(int q) { return Level2(q); }
  int Level2(int q) { return Level3(q); }
  int Level3(int q) {
    std::ifstream in(path_);
    return q;
  }
};
}  // namespace fix
)cc";
  const analysis::AnalysisReport report =
      Analyze({{"src/fix/engine.cc", src}});
  const auto blocking = ForRule(report.findings, "hot-path-blocking");
  ASSERT_EQ(blocking.size(), 1u);
  EXPECT_EQ(blocking[0].file, "src/fix/engine.cc");
  EXPECT_EQ(blocking[0].line, 8);
  EXPECT_NE(blocking[0].message.find("std::ifstream"), std::string::npos);
  EXPECT_NE(blocking[0].message.find(
                "fix::InferenceEngine::Predict -> fix::InferenceEngine::"
                "Level1 -> fix::InferenceEngine::Level2 -> "
                "fix::InferenceEngine::Level3"),
            std::string::npos);
}

TEST(HotPathTest, DetectsPoolBypassingAllocationUnderTrain) {
  const std::string src = R"cc(namespace fix {
class Trainer {
 public:
  void Train() { Step(); }
  void Step() {
    float* scratch = new float[8];
    Use(scratch);
  }
};
}  // namespace fix
)cc";
  const analysis::AnalysisReport report =
      Analyze({{"src/fix/trainer.cc", src}});
  const auto allocs = ForRule(report.findings, "hot-path-alloc");
  ASSERT_EQ(allocs.size(), 1u);
  EXPECT_EQ(allocs[0].file, "src/fix/trainer.cc");
  EXPECT_EQ(allocs[0].line, 6);
  EXPECT_NE(allocs[0].message.find("new"), std::string::npos);
}

TEST(HotPathTest, UnreachableBlockingCallIsNotReported) {
  const std::string src = R"cc(namespace fix {
void ColdMaintenance() {
  std::ifstream in(path);
}
}  // namespace fix
)cc";
  const analysis::AnalysisReport report = Analyze({{"src/fix/cold.cc", src}});
  EXPECT_TRUE(ForRule(report.findings, "hot-path-blocking").empty());
}

// ---- Status propagation --------------------------------------------------

constexpr const char* kStatusFixture = R"cc(namespace fix {
util::Status DoWork() { return util::Status(); }
void Drops() {
  util::Status s = DoWork();
}
void Reads() {
  util::Status s = DoWork();
  if (!s.ok()) return;
}
void Discards() {
  util::Status s = DoWork();
  (void)s;
}
void AutoDrops() {
  auto s = DoWork();
}
}  // namespace fix
)cc";

TEST(StatusDropTest, DetectsDroppedTypedAndAutoLocals) {
  const analysis::AnalysisReport report =
      Analyze({{"src/fix/status.cc", kStatusFixture}});
  const auto drops = ForRule(report.findings, "status-drop");
  ASSERT_EQ(drops.size(), 2u);
  EXPECT_EQ(drops[0].file, "src/fix/status.cc");
  EXPECT_EQ(drops[0].line, 4);  // Drops()
  EXPECT_NE(drops[0].message.find("'s'"), std::string::npos);
  EXPECT_NE(drops[0].message.find("fix::Drops"), std::string::npos);
  EXPECT_EQ(drops[1].line, 15);  // AutoDrops(): resolved Status-returning call
  EXPECT_NE(drops[1].message.find("fix::AutoDrops"), std::string::npos);
}

TEST(StatusDropTest, DetectsDroppedStatusOr) {
  const std::string src = R"cc(namespace fix {
util::StatusOr<int> Make() { return 1; }
void G() {
  util::StatusOr<int> v = Make();
}
}  // namespace fix
)cc";
  const analysis::AnalysisReport report = Analyze({{"src/fix/so.cc", src}});
  const auto drops = ForRule(report.findings, "status-drop");
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].line, 4);
  EXPECT_NE(drops[0].message.find("'v'"), std::string::npos);
}

TEST(StatusDropTest, AutoFromNonStatusCallIsNotReported) {
  const std::string src = R"cc(namespace fix {
int Count() { return 3; }
void H() {
  auto n = Count();
}
}  // namespace fix
)cc";
  const analysis::AnalysisReport report = Analyze({{"src/fix/nn.cc", src}});
  EXPECT_TRUE(ForRule(report.findings, "status-drop").empty());
}

// ---- suppression: allow, allow-file, baseline ----------------------------

TEST(SuppressionTest, LineAllowSuppressesPass2Finding) {
  const std::string src = R"cc(namespace fix {
util::Status DoWork() { return util::Status(); }
void Drops() {
  util::Status s = DoWork();  // imr-lint: allow(status-drop)
}
}  // namespace fix
)cc";
  const analysis::AnalysisReport report = Analyze({{"src/fix/s.cc", src}});
  EXPECT_TRUE(ForRule(report.findings, "status-drop").empty());
}

TEST(SuppressionTest, AllowFileHeaderSuppressesPass2Finding) {
  const std::string src = R"cc(// fixture file
// imr-lint: allow-file(status-drop)
namespace fix {
util::Status DoWork() { return util::Status(); }
void Drops() {
  util::Status s = DoWork();
}
}  // namespace fix
)cc";
  const analysis::AnalysisReport report = Analyze({{"src/fix/s.cc", src}});
  EXPECT_TRUE(ForRule(report.findings, "status-drop").empty());
}

TEST(SuppressionTest, BaselineMatchesByKeyNotByLine) {
  namespace fs = std::filesystem;
  const fs::path baseline =
      fs::temp_directory_path() / "imr_analyzer_test_baseline.txt";
  {
    std::ofstream out(baseline, std::ios::trunc);
    out << "# justification lives here\n";
    out << "status-drop src/fix/status.cc#fix::Drops#s\n";
  }
  analysis::AnalyzerOptions options;
  options.baseline_path = baseline.string();
  const analysis::AnalysisReport report =
      Analyze({{"src/fix/status.cc", kStatusFixture}}, options);
  // Drops() is baselined; AutoDrops() still fires
  ASSERT_EQ(report.baselined.size(), 1u);
  EXPECT_EQ(report.baselined[0].line, 4);
  const auto drops = ForRule(report.findings, "status-drop");
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].line, 15);
  fs::remove(baseline);
}

TEST(SuppressionTest, LoadBaselineSkipsCommentsAndBlanks) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "imr_analyzer_test_baseline2.txt";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "# comment\n\n  status-drop some#key  \nmalformed-no-space\n";
  }
  const auto baseline = analysis::LoadBaseline(path.string());
  EXPECT_EQ(baseline.size(), 1u);
  EXPECT_EQ(baseline.count({"status-drop", "some#key"}), 1u);
  fs::remove(path);
}

// ---- on-disk model cache -------------------------------------------------

TEST(CacheTest, WarmRunReusesModelsAndInvalidatesOnEdit) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "imr_analyzer_test_tree";
  fs::remove_all(root);
  fs::create_directories(root / "src");
  {
    std::ofstream out(root / "src" / "a.cc", std::ios::trunc);
    out << kStatusFixture;
  }
  analysis::AnalyzerOptions options;
  options.cache_dir = (root / "cache").string();
  options.run_lint = false;

  const analysis::AnalysisReport cold =
      analysis::AnalyzeTree(root.string(), options);
  EXPECT_EQ(cold.files_scanned, 1);
  EXPECT_EQ(cold.files_parsed, 1);
  EXPECT_EQ(cold.files_cached, 0);
  ASSERT_EQ(ForRule(cold.findings, "status-drop").size(), 2u);

  const analysis::AnalysisReport warm =
      analysis::AnalyzeTree(root.string(), options);
  EXPECT_EQ(warm.files_parsed, 0);
  EXPECT_EQ(warm.files_cached, 1);
  // cached models produce identical findings
  ASSERT_EQ(warm.findings.size(), cold.findings.size());
  for (size_t i = 0; i < warm.findings.size(); ++i) {
    EXPECT_EQ(lint::FormatFinding(warm.findings[i]),
              lint::FormatFinding(cold.findings[i]));
  }

  {
    std::ofstream out(root / "src" / "a.cc", std::ios::trunc);
    out << "namespace fix {\nvoid Fine() {}\n}\n";
  }
  const analysis::AnalysisReport edited =
      analysis::AnalyzeTree(root.string(), options);
  EXPECT_EQ(edited.files_parsed, 1);
  EXPECT_EQ(edited.files_cached, 0);
  EXPECT_TRUE(edited.findings.empty());
  fs::remove_all(root);
}

// ---- JSON report ---------------------------------------------------------

TEST(JsonTest, ReportCarriesFindingsKeysAndTimings) {
  const analysis::AnalysisReport report =
      Analyze({{"src/fix/status.cc", kStatusFixture}});
  const std::string json = analysis::ReportToJson(report, "/repo");
  EXPECT_NE(json.find("\"rule\": \"status-drop\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/fix/status.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"key\": \"src/fix/status.cc#fix::Drops#s\""),
            std::string::npos);
  EXPECT_NE(json.find("\"baselined\": false"), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"timings\""), std::string::npos);
}

// ---- real-tree regressions -----------------------------------------------

TEST(RealTreeTest, LockOrderGraphIsCycleFree) {
  analysis::AnalyzerOptions options;
  options.run_lint = false;  // pass 1 has its own ctest
  const analysis::AnalysisReport report =
      analysis::AnalyzeTree(IMR_PROJECT_SOURCE_DIR, options);
  EXPECT_TRUE(ForRule(report.findings, "lock-order-cycle").empty());
  EXPECT_TRUE(ForRule(report.baselined, "lock-order-cycle").empty());
}

TEST(RealTreeTest, AnalyzerIsCleanAgainstCheckedInBaseline) {
  analysis::AnalyzerOptions options;
  options.run_lint = false;
  options.baseline_path =
      std::string(IMR_PROJECT_SOURCE_DIR) + "/tools/analyze_baseline.txt";
  const analysis::AnalysisReport report =
      analysis::AnalyzeTree(IMR_PROJECT_SOURCE_DIR, options);
  for (const lint::Finding& f : report.findings) {
    ADD_FAILURE() << "unbaselined finding: " << lint::FormatFinding(f);
  }
  // the baseline holds only justified entries that still fire
  EXPECT_FALSE(report.baselined.empty());
}

TEST(RealTreeTest, RepoRootIsFoundFromSubdirectory) {
  namespace fs = std::filesystem;
  const std::string from_src =
      lint::RepoRootFor(std::string(IMR_PROJECT_SOURCE_DIR) + "/src");
  const std::string from_root = lint::RepoRootFor(IMR_PROJECT_SOURCE_DIR);
  EXPECT_EQ(from_src, from_root);
  EXPECT_TRUE(fs::exists(fs::path(from_root) / "ROADMAP.md"));
}

}  // namespace
