#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>

#include "util/flags.h"
#include "util/rng.h"
#include "util/serialization.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/tsv_writer.h"

namespace imr::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad dim");
}

TEST(StatusTest, StatusOrHoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = NotFound("nope");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[rng.UniformInt(8)]++;
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 1000) << "value " << value << " under-sampled";
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.Discrete(weights)]++;
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.012);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.012);
}

TEST(RngTest, ZipfHeavyHead) {
  Rng rng(19);
  const int n = 50000;
  int ones = 0;
  for (int i = 0; i < n; ++i) {
    uint64_t v = rng.Zipf(1000, 1.2);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    ones += (v == 1);
  }
  // Rank 1 should dominate: for s=1.2, P(1) ~ 1/zeta-ish, well above 20%.
  EXPECT_GT(ones, n / 5);
}

TEST(RngTest, ZipfRankMonotone) {
  Rng rng(23);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 200000; ++i) {
    uint64_t v = rng.Zipf(10, 1.0);
    counts[v]++;
  }
  for (int r = 1; r < 10; ++r) {
    EXPECT_GT(counts[r], counts[r + 1]) << "rank " << r;
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitWhitespace) {
  auto parts = SplitWhitespace("  hello   world \t foo\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[2], "foo");
}

TEST(StringUtilTest, JoinStripLower) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Strip("  x y  "), "x y");
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
}

TEST(FlagsTest, ParsesTypedFlags) {
  FlagParser parser;
  parser.AddInt("n", 10, "count")
      .AddDouble("lr", 0.3, "rate")
      .AddString("name", "abc", "label")
      .AddBool("verbose", false, "noise");
  const char* argv[] = {"prog", "--n=20", "--lr", "0.5", "--verbose"};
  ASSERT_TRUE(parser.Parse(5, const_cast<char**>(argv)).ok());
  EXPECT_EQ(parser.GetInt("n"), 20);
  EXPECT_DOUBLE_EQ(parser.GetDouble("lr"), 0.5);
  EXPECT_EQ(parser.GetString("name"), "abc");
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagParser parser;
  parser.AddInt("n", 1, "count");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, RejectsBadInt) {
  FlagParser parser;
  parser.AddInt("n", 1, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(SerializationTest, RoundTrip) {
  const std::string path = "/tmp/imr_serialization_test.bin";
  {
    BinaryWriter writer(path, 0xABCD1234u, 1);
    ASSERT_TRUE(writer.status().ok());
    writer.WriteU32(7);
    writer.WriteU64(1ull << 40);
    writer.WriteI64(-5);
    writer.WriteFloat(1.5f);
    writer.WriteDouble(2.25);
    writer.WriteString("hello");
    writer.WriteFloatVector({1.0f, 2.0f, 3.0f});
    ASSERT_TRUE(writer.Close().ok());
  }
  {
    BinaryReader reader(path, 0xABCD1234u, 1);
    ASSERT_TRUE(reader.status().ok());
    EXPECT_EQ(reader.ReadU32(), 7u);
    EXPECT_EQ(reader.ReadU64(), 1ull << 40);
    EXPECT_EQ(reader.ReadI64(), -5);
    EXPECT_FLOAT_EQ(reader.ReadFloat(), 1.5f);
    EXPECT_DOUBLE_EQ(reader.ReadDouble(), 2.25);
    EXPECT_EQ(reader.ReadString(), "hello");
    auto vec = reader.ReadFloatVector();
    ASSERT_EQ(vec.size(), 3u);
    EXPECT_FLOAT_EQ(vec[2], 3.0f);
    EXPECT_TRUE(reader.status().ok());
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsBadMagic) {
  const std::string path = "/tmp/imr_serialization_magic.bin";
  {
    BinaryWriter writer(path, 0x1111u, 1);
    writer.WriteU32(1);
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path, 0x2222u, 1);
  EXPECT_FALSE(reader.status().ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsTruncatedFile) {
  const std::string path = "/tmp/imr_serialization_trunc.bin";
  {
    BinaryWriter writer(path, 0x1111u, 1);
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path, 0x1111u, 1);
  ASSERT_TRUE(reader.status().ok());
  reader.ReadU64();  // nothing left to read
  EXPECT_FALSE(reader.status().ok());
  std::remove(path.c_str());
}

TEST(TsvWriterTest, WritesRowsAndEscapes) {
  const std::string path = "/tmp/imr_tsv_test/sub/out.tsv";
  {
    TsvWriter writer(path);
    ASSERT_TRUE(writer.status().ok());
    writer.WriteRow({"a", "b\tc", "d\ne"});
    ASSERT_TRUE(writer.Close().ok());
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a\tb c\td e");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace imr::util
