#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/flags.h"
#include "util/rng.h"
#include "util/serialization.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/tsv_writer.h"

namespace imr::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad dim");
}

TEST(StatusTest, StatusOrHoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = NotFound("nope");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[rng.UniformInt(8)]++;
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 1000) << "value " << value << " under-sampled";
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.Discrete(weights)]++;
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.012);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.012);
}

TEST(RngTest, ZipfHeavyHead) {
  Rng rng(19);
  const int n = 50000;
  int ones = 0;
  for (int i = 0; i < n; ++i) {
    uint64_t v = rng.Zipf(1000, 1.2);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 1000u);
    ones += (v == 1);
  }
  // Rank 1 should dominate: for s=1.2, P(1) ~ 1/zeta-ish, well above 20%.
  EXPECT_GT(ones, n / 5);
}

TEST(RngTest, ZipfRankMonotone) {
  Rng rng(23);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 200000; ++i) {
    uint64_t v = rng.Zipf(10, 1.0);
    counts[v]++;
  }
  for (int r = 1; r < 10; ++r) {
    EXPECT_GT(counts[r], counts[r + 1]) << "rank " << r;
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitWhitespace) {
  auto parts = SplitWhitespace("  hello   world \t foo\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[2], "foo");
}

TEST(StringUtilTest, JoinStripLower) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Strip("  x y  "), "x y");
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
}

TEST(FlagsTest, ParsesTypedFlags) {
  FlagParser parser;
  parser.AddInt("n", 10, "count")
      .AddDouble("lr", 0.3, "rate")
      .AddString("name", "abc", "label")
      .AddBool("verbose", false, "noise");
  const char* argv[] = {"prog", "--n=20", "--lr", "0.5", "--verbose"};
  ASSERT_TRUE(parser.Parse(5, const_cast<char**>(argv)).ok());
  EXPECT_EQ(parser.GetInt("n"), 20);
  EXPECT_DOUBLE_EQ(parser.GetDouble("lr"), 0.5);
  EXPECT_EQ(parser.GetString("name"), "abc");
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagParser parser;
  parser.AddInt("n", 1, "count");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, RejectsBadInt) {
  FlagParser parser;
  parser.AddInt("n", 1, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(SerializationTest, RoundTrip) {
  const std::string path = "/tmp/imr_serialization_test.bin";
  {
    BinaryWriter writer(path, 0xABCD1234u, 1);
    ASSERT_TRUE(writer.status().ok());
    writer.WriteU32(7);
    writer.WriteU64(1ull << 40);
    writer.WriteI64(-5);
    writer.WriteFloat(1.5f);
    writer.WriteDouble(2.25);
    writer.WriteString("hello");
    writer.WriteFloatVector({1.0f, 2.0f, 3.0f});
    ASSERT_TRUE(writer.Close().ok());
  }
  {
    BinaryReader reader(path, 0xABCD1234u, 1);
    ASSERT_TRUE(reader.status().ok());
    EXPECT_EQ(reader.ReadU32(), 7u);
    EXPECT_EQ(reader.ReadU64(), 1ull << 40);
    EXPECT_EQ(reader.ReadI64(), -5);
    EXPECT_FLOAT_EQ(reader.ReadFloat(), 1.5f);
    EXPECT_DOUBLE_EQ(reader.ReadDouble(), 2.25);
    EXPECT_EQ(reader.ReadString(), "hello");
    auto vec = reader.ReadFloatVector();
    ASSERT_EQ(vec.size(), 3u);
    EXPECT_FLOAT_EQ(vec[2], 3.0f);
    EXPECT_TRUE(reader.status().ok());
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsBadMagic) {
  const std::string path = "/tmp/imr_serialization_magic.bin";
  {
    BinaryWriter writer(path, 0x1111u, 1);
    writer.WriteU32(1);
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path, 0x2222u, 1);
  EXPECT_FALSE(reader.status().ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsTruncatedFile) {
  const std::string path = "/tmp/imr_serialization_trunc.bin";
  {
    BinaryWriter writer(path, 0x1111u, 1);
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path, 0x1111u, 1);
  ASSERT_TRUE(reader.status().ok());
  reader.ReadU64();  // nothing left to read
  EXPECT_FALSE(reader.status().ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsWrongVersion) {
  const std::string path = "/tmp/imr_serialization_version.bin";
  {
    BinaryWriter writer(path, 0x1111u, 3);
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path, 0x1111u, 2);
  ASSERT_FALSE(reader.status().ok());
  EXPECT_NE(reader.status().ToString().find(path), std::string::npos);
  EXPECT_NE(reader.status().ToString().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializationTest, ErrorsNameFileAndByteOffset) {
  const std::string path = "/tmp/imr_serialization_offset.bin";
  {
    BinaryWriter writer(path, 0x1111u, 1);
    writer.WriteU32(9);
    ASSERT_TRUE(writer.Close().ok());
  }
  {
    BinaryReader reader(path, 0x2222u, 1);
    ASSERT_FALSE(reader.status().ok());
    EXPECT_NE(reader.status().ToString().find(path), std::string::npos);
  }
  BinaryReader reader(path, 0x1111u, 1);
  ASSERT_TRUE(reader.status().ok());
  EXPECT_EQ(reader.offset(), 8u);  // magic + version header
  reader.ReadU32();
  EXPECT_EQ(reader.offset(), 12u);
  reader.ReadU64();  // truncated: only 4 payload bytes existed
  ASSERT_FALSE(reader.status().ok());
  const std::string message = reader.status().ToString();
  EXPECT_NE(message.find(path), std::string::npos);
  EXPECT_NE(message.find("offset 12"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializationTest, EmptyStringAndVectorsRoundTrip) {
  const std::string path = "/tmp/imr_serialization_empty.bin";
  {
    BinaryWriter writer(path, 0x1111u, 1);
    writer.WriteString("");
    writer.WriteFloatVector({});
    writer.WriteIntVector({});
    writer.WriteString("tail");
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path, 0x1111u, 1);
  ASSERT_TRUE(reader.status().ok());
  EXPECT_EQ(reader.ReadString(), "");
  EXPECT_TRUE(reader.ReadFloatVector().empty());
  EXPECT_TRUE(reader.ReadIntVector().empty());
  EXPECT_EQ(reader.ReadString(), "tail");
  EXPECT_TRUE(reader.status().ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, IntVectorRoundTrip) {
  const std::string path = "/tmp/imr_serialization_ints.bin";
  const std::vector<int> values = {-3, 0, 7, 1 << 20};
  {
    BinaryWriter writer(path, 0x1111u, 1);
    writer.WriteIntVector(values);
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path, 0x1111u, 1);
  ASSERT_TRUE(reader.status().ok());
  EXPECT_EQ(reader.ReadIntVector(), values);
  EXPECT_TRUE(reader.status().ok());
  std::remove(path.c_str());
}

TEST(ThreadPoolTest, ParallelForVisitsEachIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(100);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(0, 100, 7, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) visits[static_cast<size_t>(i)]++;
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  auto collect = [](int threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::array<int64_t, 3>> chunks;
    pool.ParallelForChunks(3, 50, 8,
                           [&](int64_t lo, int64_t hi, int64_t chunk) {
                             std::lock_guard<std::mutex> lock(mu);
                             chunks.push_back({lo, hi, chunk});
                           });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  EXPECT_EQ(collect(1), collect(4));
  EXPECT_EQ(ThreadPool::NumChunks(3, 50, 8), 6);
  EXPECT_EQ(ThreadPool::NumChunks(5, 5, 8), 0);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 64, 1,
                       [&](int64_t lo, int64_t) {
                         if (lo == 13) throw std::runtime_error("chunk 13");
                       }),
      std::runtime_error);
  // The pool survives a throwing region and runs later work.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 8, 1, [&](int64_t, int64_t) { count++; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, GrainMustBePositive) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(0, 10, 0, [](int64_t, int64_t) {}),
               std::invalid_argument);
  EXPECT_THROW(pool.ParallelFor(0, 10, -3, [](int64_t, int64_t) {}),
               std::invalid_argument);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(64);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // The nested call must not deadlock or reschedule; it runs inline on
    // this worker over its own chunk partition.
    pool.ParallelFor(0, 8, 2, [&](int64_t ilo, int64_t ihi) {
      for (int64_t i = ilo; i < ihi; ++i)
        visits[static_cast<size_t>(lo * 8 + i)]++;
    });
    (void)hi;
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, RegionTeardownStress) {
  // Regression test: a worker's final (failed) chunk claim, or a
  // late-waking worker that grabbed the region pointer, must not touch the
  // caller's stack-allocated region after ParallelFor returned. Many short
  // regions maximize the window; run under IMR_SANITIZE=thread|address to
  // catch regressions.
  ThreadPool pool(4);
  for (int iter = 0; iter < 2000; ++iter) {
    std::atomic<int> count{0};
    pool.ParallelFor(0, 8, 1, [&](int64_t, int64_t) { count++; });
    ASSERT_EQ(count.load(), 8) << "iter " << iter;
  }
}

TEST(ThreadPoolTest, ConcurrentSubmittersSerialize) {
  // Two non-worker threads submitting to the same pool must queue up, not
  // crash on the single-region invariant.
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  auto submit = [&] {
    for (int iter = 0; iter < 100; ++iter) {
      pool.ParallelFor(0, 64, 4,
                       [&](int64_t lo, int64_t hi) { total += hi - lo; });
    }
  };
  std::thread a(submit), b(submit);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * 100 * 64);
}

TEST(ThreadPoolTest, TreeReduceIsDeterministicAcrossPools) {
  Rng rng(97);
  auto make_parts = [&]() {
    Rng local(97);
    std::vector<std::vector<float>> parts(7, std::vector<float>(33));
    for (auto& part : parts)
      for (float& x : part) x = static_cast<float>(local.Uniform(-1.0, 1.0));
    return parts;
  };
  auto a = make_parts();
  auto b = make_parts();
  auto c = make_parts();
  ThreadPool pool1(1), pool4(4);
  TreeReduce(&pool1, &a);
  TreeReduce(&pool4, &b);
  TreeReduce(nullptr, &c);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[0], c[0]);
  // Sanity: the reduction actually sums.
  auto parts = make_parts();
  double expect = 0;
  for (const auto& part : parts) expect += part[0];
  EXPECT_NEAR(a[0][0], expect, 1e-5);
}

TEST(ThreadPoolTest, GlobalPoolFollowsSetGlobalThreads) {
  SetGlobalThreads(3);
  EXPECT_EQ(GlobalThreads(), 3);
  EXPECT_EQ(GlobalPool().threads(), 3);
  SetGlobalThreads(0);  // restore the hardware-concurrency default
  EXPECT_GE(GlobalThreads(), 1);
}

TEST(TsvWriterTest, WritesRowsAndEscapes) {
  const std::string path = "/tmp/imr_tsv_test/sub/out.tsv";
  {
    TsvWriter writer(path);
    ASSERT_TRUE(writer.status().ok());
    writer.WriteRow({"a", "b\tc", "d\ne"});
    ASSERT_TRUE(writer.Close().ok());
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a\tb c\td e");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace imr::util
