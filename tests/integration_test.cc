// Cross-module integration tests: full pipeline runs, determinism,
// serialization round trips through the whole stack, and failure paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "datagen/presets.h"
#include "graph/line.h"
#include "graph/proximity_graph.h"
#include "re/bag_dataset.h"
#include "re/pa_model.h"
#include "re/trainer.h"
#include "util/logging.h"

namespace imr {
namespace {

struct Pipeline {
  explicit Pipeline(double scale = 0.6, uint64_t seed = 7) {
    datagen::PresetOptions options;
    options.scale = scale;
    options.seed = seed;
    dataset = std::make_unique<datagen::SyntheticDataset>(
        datagen::MakeGdsLike(options));
    re::BagDatasetOptions bag_options;
    bag_options.max_sentence_length = 40;
    bag_options.max_position = 20;
    bags = std::make_unique<re::BagDataset>(re::BagDataset::Build(
        dataset->world.graph, dataset->corpus.train, dataset->corpus.test,
        bag_options));
    proximity = std::make_unique<graph::ProximityGraph>(
        dataset->world.graph.num_entities());
    proximity->AddCorpus(dataset->unlabeled.sentences);
    proximity->Finalize(2);
    graph::LineConfig line;
    line.dim = 32;
    line.samples_per_edge = 150;
    embeddings = graph::TrainLine(*proximity, line);
    IMR_CHECK(bags->AttachMutualRelations(embeddings).ok());
  }

  re::PaModelConfig Config(bool use_extras) const {
    re::PaModelConfig config;
    config.num_relations = bags->num_relations();
    config.encoder = "pcnn";
    config.aggregation = re::Aggregation::kAttention;
    config.use_mutual_relation = use_extras;
    config.use_entity_type = use_extras;
    config.mutual_relation_dim = embeddings.dim();
    config.type_dim = 6;
    config.encoder_config.vocab_size = bags->vocabulary().size();
    config.encoder_config.word_dim = 12;
    config.encoder_config.position_dim = 3;
    config.encoder_config.max_position = 20;
    config.encoder_config.filters = 16;
    config.encoder_config.word_dropout = 0.25f;
    return config;
  }

  re::TrainerConfig TrainConfig(uint64_t seed = 3) const {
    re::TrainerConfig config;
    config.epochs = 12;
    config.batch_size = 32;
    config.optimizer = "adam";
    config.learning_rate = 0.01f;
    config.seed = seed;
    return config;
  }

  std::unique_ptr<datagen::SyntheticDataset> dataset;
  std::unique_ptr<re::BagDataset> bags;
  std::unique_ptr<graph::ProximityGraph> proximity;
  graph::EmbeddingStore embeddings;
};

Pipeline& SharedPipeline() {
  static Pipeline* pipeline = new Pipeline();
  return *pipeline;
}

TEST(IntegrationTest, PaTmrTrainsEndToEnd) {
  Pipeline& p = SharedPipeline();
  util::Rng rng(1);
  re::PaModel model(p.Config(true), &rng);
  auto result = re::TrainAndEvaluate(&model, p.bags->train_bags(),
                                     p.bags->test_bags(), p.TrainConfig());
  EXPECT_GT(result.auc, 0.3);  // MR carries strong signal even on tiny data
  EXPECT_GT(result.total_positives, 0);
  EXPECT_EQ(result.hard_predictions.size(), p.bags->test_bags().size());
}

TEST(IntegrationTest, DeterministicGivenSeeds) {
  Pipeline& p = SharedPipeline();
  double auc[2];
  for (int run = 0; run < 2; ++run) {
    util::Rng rng(99);
    re::PaModel model(p.Config(true), &rng);
    auc[run] = re::TrainAndEvaluate(&model, p.bags->train_bags(),
                                    p.bags->test_bags(),
                                    p.TrainConfig(123))
                   .auc;
  }
  EXPECT_DOUBLE_EQ(auc[0], auc[1]);
}

TEST(IntegrationTest, DatasetGenerationDeterministic) {
  datagen::PresetOptions options;
  options.scale = 0.3;
  options.seed = 55;
  auto a = datagen::MakeGdsLike(options);
  auto b = datagen::MakeGdsLike(options);
  ASSERT_EQ(a.corpus.train.size(), b.corpus.train.size());
  for (size_t i = 0; i < a.corpus.train.size(); i += 37) {
    EXPECT_EQ(a.corpus.train[i].sentence.tokens,
              b.corpus.train[i].sentence.tokens);
    EXPECT_EQ(a.corpus.train[i].relation, b.corpus.train[i].relation);
  }
}

TEST(IntegrationTest, ModelSerializationPreservesPredictions) {
  Pipeline& p = SharedPipeline();
  util::Rng rng(5);
  re::PaModel model(p.Config(true), &rng);
  re::Trainer trainer(&model, p.TrainConfig());
  trainer.Train(p.bags->train_bags());
  model.SetTraining(false);

  const std::string path = "/tmp/imr_integration_model.bin";
  ASSERT_TRUE(model.SaveParameters(path).ok());
  util::Rng rng2(999);
  re::PaModel restored(p.Config(true), &rng2);
  ASSERT_TRUE(restored.LoadParameters(path).ok());
  restored.SetTraining(false);

  util::Rng eval_rng(1);
  for (size_t i = 0; i < 10 && i < p.bags->test_bags().size(); ++i) {
    auto original = model.Predict(p.bags->test_bags()[i], &eval_rng);
    auto loaded = restored.Predict(p.bags->test_bags()[i], &eval_rng);
    ASSERT_EQ(original.size(), loaded.size());
    for (size_t r = 0; r < original.size(); ++r)
      EXPECT_FLOAT_EQ(original[r], loaded[r]);
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, LoadIntoMismatchedArchitectureFails) {
  Pipeline& p = SharedPipeline();
  util::Rng rng(5);
  re::PaModel full(p.Config(true), &rng);
  const std::string path = "/tmp/imr_integration_mismatch.bin";
  ASSERT_TRUE(full.SaveParameters(path).ok());
  re::PaModel smaller(p.Config(false), &rng);
  EXPECT_FALSE(smaller.LoadParameters(path).ok());
  std::remove(path.c_str());
}

TEST(IntegrationTest, EmbeddingRoundTripThroughDisk) {
  Pipeline& p = SharedPipeline();
  const std::string path = "/tmp/imr_integration_embeddings.bin";
  ASSERT_TRUE(p.embeddings.Save(path).ok());
  auto loaded = graph::EmbeddingStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  auto fresh_bags = re::BagDataset::Build(
      p.dataset->world.graph, p.dataset->corpus.train,
      p.dataset->corpus.test, re::BagDatasetOptions{});
  ASSERT_TRUE(fresh_bags.AttachMutualRelations(*loaded).ok());
  // MR vectors identical to the in-memory ones.
  const re::Bag& bag = fresh_bags.train_bags().front();
  auto expected = p.embeddings.MutualRelation(static_cast<int>(bag.head),
                                              static_cast<int>(bag.tail));
  EXPECT_EQ(bag.mutual_relation, expected);
  std::remove(path.c_str());
}

TEST(IntegrationTest, AllEncodersRunThroughFusion) {
  Pipeline& p = SharedPipeline();
  for (const char* encoder : {"pcnn", "cnn", "gru", "bgwa"}) {
    util::Rng rng(17);
    re::PaModelConfig config = p.Config(true);
    config.encoder = encoder;
    re::PaModel model(config, &rng);
    const re::Bag& bag = p.bags->train_bags().front();
    auto probs = model.Predict(bag, &rng);
    ASSERT_EQ(probs.size(), static_cast<size_t>(p.bags->num_relations()))
        << encoder;
    for (float prob : probs) {
      EXPECT_TRUE(std::isfinite(prob)) << encoder;
      EXPECT_GE(prob, 0.0f) << encoder;
    }
  }
}

TEST(IntegrationTest, AttachMutualRelationsRejectsSmallStore) {
  Pipeline& p = SharedPipeline();
  graph::EmbeddingStore tiny(2, 4);  // fewer vertices than entities
  auto fresh_bags = re::BagDataset::Build(
      p.dataset->world.graph, p.dataset->corpus.train,
      p.dataset->corpus.test, re::BagDatasetOptions{});
  EXPECT_FALSE(fresh_bags.AttachMutualRelations(tiny).ok());
}

TEST(IntegrationTest, MismatchedMrDimensionIsFatalInDebugOnly) {
  // Contract check: PaModel requires bag.mutual_relation.size() ==
  // config.mutual_relation_dim; using a model configured for a different
  // dim than the attached store is a programming error. Here we only
  // verify the *correct* dim passes (the CHECK path aborts by design).
  Pipeline& p = SharedPipeline();
  util::Rng rng(23);
  re::PaModelConfig config = p.Config(true);
  ASSERT_EQ(config.mutual_relation_dim, p.embeddings.dim());
  re::PaModel model(config, &rng);
  auto logits =
      model.BagLogits(p.bags->train_bags().front(),
                      p.bags->train_bags().front().relation, &rng);
  EXPECT_EQ(logits.size(), static_cast<size_t>(p.bags->num_relations()));
}

}  // namespace
}  // namespace imr
