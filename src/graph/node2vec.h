// node2vec (Grover & Leskovec 2016): second-order biased random walks +
// skip-gram. Generalises DeepWalk with the return parameter p and in-out
// parameter q; p = q = 1 recovers unbiased walks. Completes the trio of
// MR embedding sources (LINE / DeepWalk / node2vec) compared by the
// ablation bench.
#ifndef IMR_GRAPH_NODE2VEC_H_
#define IMR_GRAPH_NODE2VEC_H_

#include "graph/embedding_store.h"
#include "graph/proximity_graph.h"

namespace imr::graph {

struct Node2VecConfig {
  int dim = 128;
  int walks_per_vertex = 10;
  int walk_length = 20;
  int window = 4;
  int negative_samples = 5;
  float initial_lr = 0.025f;
  double noise_power = 0.75;
  double p = 1.0;  // return parameter: > 1 discourages backtracking
  double q = 1.0;  // in-out parameter: > 1 keeps walks local (BFS-like)
  uint64_t seed = 151;
  // Hogwild worker count; 0 defers to util::GlobalThreads(). 1 runs the
  // original sequential path bit-exactly; N>1 shards each round's shuffled
  // start vertices across workers (quality-equivalent, not bit-exact).
  int threads = 0;
};

/// Trains node2vec on a finalised proximity graph. Isolated vertices keep
/// their random initialisation.
EmbeddingStore TrainNode2Vec(const ProximityGraph& graph,
                             const Node2VecConfig& config);

}  // namespace imr::graph

#endif  // IMR_GRAPH_NODE2VEC_H_
