// Embedding propagation over the proximity graph — the lightweight version
// of the GNN extension the paper proposes as future work (Section V): LINE
// "may fail for vertices that have few or even no edges"; propagating each
// vertex's embedding through its neighbourhood smooths exactly those
// vertices. Two neighbour weightings:
//   * kEdgeWeight  — GCN-flavoured, normalised edge weights;
//   * kAttention   — GAT-flavoured, softmax over embedding similarity.
#ifndef IMR_GRAPH_PROPAGATION_H_
#define IMR_GRAPH_PROPAGATION_H_

#include "graph/embedding_store.h"
#include "graph/proximity_graph.h"

namespace imr::graph {

enum class PropagationWeighting {
  kEdgeWeight,  // w_uv / sum_w (GCN-style mean aggregation)
  kAttention,   // softmax_v(cos(h_u, h_v) / temperature) (GAT-style)
};

struct PropagationConfig {
  int rounds = 2;
  // h'_u = (1 - mix) * h_u + mix * aggregate(neighbours).
  float mix = 0.5f;
  PropagationWeighting weighting = PropagationWeighting::kEdgeWeight;
  float attention_temperature = 0.2f;
  bool renormalize = true;  // L2-normalise rows after each round
};

/// Returns a smoothed copy of `store`. Isolated vertices are unchanged.
EmbeddingStore PropagateEmbeddings(const ProximityGraph& graph,
                                   const EmbeddingStore& store,
                                   const PropagationConfig& config);

}  // namespace imr::graph

#endif  // IMR_GRAPH_PROPAGATION_H_
