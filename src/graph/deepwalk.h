// DeepWalk-style network embedding (Perozzi et al. 2014): truncated random
// walks + skip-gram with negative sampling. Provided as an alternative to
// LINE for sourcing the implicit mutual relations — the ablation bench
// compares the two (the paper uses LINE; DeepWalk is the natural
// contemporaneous baseline).
#ifndef IMR_GRAPH_DEEPWALK_H_
#define IMR_GRAPH_DEEPWALK_H_

#include "graph/embedding_store.h"
#include "graph/proximity_graph.h"

namespace imr::graph {

struct DeepWalkConfig {
  int dim = 128;
  int walks_per_vertex = 10;
  int walk_length = 20;
  int window = 4;              // skip-gram context radius
  int negative_samples = 5;
  float initial_lr = 0.025f;
  double noise_power = 0.75;   // P_n(v) ~ deg^noise_power
  uint64_t seed = 131;
  // Hogwild worker count; 0 defers to util::GlobalThreads(). 1 runs the
  // original sequential path bit-exactly; N>1 shards each round's shuffled
  // start vertices across workers (quality-equivalent, not bit-exact).
  int threads = 0;
};

/// Trains DeepWalk on a finalised proximity graph. Walks choose the next
/// vertex proportionally to edge weight. Isolated vertices keep their
/// small random initialisation.
EmbeddingStore TrainDeepWalk(const ProximityGraph& graph,
                             const DeepWalkConfig& config);

}  // namespace imr::graph

#endif  // IMR_GRAPH_DEEPWALK_H_
