#include "graph/proximity_graph.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace imr::graph {

ProximityGraph::ProximityGraph(int num_vertices)
    : num_vertices_(num_vertices) {
  IMR_CHECK_GT(num_vertices, 0);
}

void ProximityGraph::AddCooccurrence(int64_t a, int64_t b) {
  IMR_CHECK_GE(a, 0);
  IMR_CHECK_LT(a, num_vertices_);
  IMR_CHECK_GE(b, 0);
  IMR_CHECK_LT(b, num_vertices_);
  if (a == b) return;  // self-co-occurrence carries no relational signal
  const int64_t count = ++counts_[Key(a, b)];
  max_count_ = std::max(max_count_, count);
  finalized_ = false;
}

void ProximityGraph::AddCorpus(const std::vector<text::Sentence>& sentences) {
  for (const text::Sentence& sentence : sentences) {
    if (sentence.head_entity < 0 || sentence.tail_entity < 0) continue;
    AddCooccurrence(sentence.head_entity, sentence.tail_entity);
  }
}

void ProximityGraph::Finalize(int min_cooccurrence) {
  IMR_CHECK_GE(min_cooccurrence, 1);
  edges_.clear();
  degrees_.assign(static_cast<size_t>(num_vertices_), 0.0);
  adjacency_.assign(static_cast<size_t>(num_vertices_), {});
  // log(1) == 0 would zero all weights when the max count is 1; clamp the
  // denominator so single-count graphs still get usable weights.
  const double denom =
      std::log(std::max<double>(2.0, static_cast<double>(max_count_)));
  for (const auto& [key, count] : counts_) {
    if (count < min_cooccurrence) continue;
    Edge edge;
    edge.source = static_cast<int32_t>(key >> 32);
    edge.target = static_cast<int32_t>(key & 0xffffffff);
    edge.cooccurrence = count;
    edge.weight =
        std::log(static_cast<double>(std::max<int64_t>(2, count))) / denom;
    degrees_[static_cast<size_t>(edge.source)] += edge.weight;
    degrees_[static_cast<size_t>(edge.target)] += edge.weight;
    adjacency_[static_cast<size_t>(edge.source)].push_back(edge.target);
    adjacency_[static_cast<size_t>(edge.target)].push_back(edge.source);
    edges_.push_back(edge);
  }
  // Deterministic ordering regardless of hash-map iteration.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.source != b.source) return a.source < b.source;
    return a.target < b.target;
  });
  for (auto& neighbors : adjacency_)
    std::sort(neighbors.begin(), neighbors.end());
  finalized_ = true;
}

const std::vector<Edge>& ProximityGraph::edges() const {
  IMR_CHECK(finalized_);
  return edges_;
}

const std::vector<double>& ProximityGraph::degrees() const {
  IMR_CHECK(finalized_);
  return degrees_;
}

int64_t ProximityGraph::CooccurrenceCount(int64_t a, int64_t b) const {
  auto it = counts_.find(Key(a, b));
  return it == counts_.end() ? 0 : it->second;
}

std::vector<int> ProximityGraph::Neighbors(int vertex) const {
  IMR_CHECK(finalized_);
  IMR_CHECK_GE(vertex, 0);
  IMR_CHECK_LT(vertex, num_vertices_);
  return adjacency_[static_cast<size_t>(vertex)];
}

}  // namespace imr::graph
