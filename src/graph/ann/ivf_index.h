// IVF (inverted-file) index: a k-means coarse quantizer partitions the
// base rows into `nlist` cells; a query scores only the `nprobe` closest
// cells' rows, so per-query cost drops from O(rows) to roughly
// O(nlist + nprobe/nlist * rows) sweeps. `nprobe` is the recall/latency
// dial — the bench_ann gate holds recall@10 >= 0.95 vs FlatIndex.
//
// Build is parallelised over util::ThreadPool and deterministic at any
// thread count: assignment chunking depends only on (rows, grain), each
// row's assignment is written element-wise, and the centroid update
// accumulates sequentially in row order. Cosine bases are normalized into
// the packed lists at build so the probe scan is a pure dot sweep.
//
// Serialization stores the learned structure (centroids + assignments),
// never the vectors: ReadFrom() re-packs the lists from the same base
// matrix, so a snapshot carries O(rows) ints instead of O(rows * dim)
// floats and the reload is bit-identical to the build.
#ifndef IMR_GRAPH_ANN_IVF_INDEX_H_
#define IMR_GRAPH_ANN_IVF_INDEX_H_

#include <cstdint>
#include <vector>

#include "graph/ann/ann_index.h"
#include "graph/embedding_store.h"
#include "util/serialization.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace imr::graph::ann {

struct IvfOptions {
  int nlist = 64;        // clamped to [1, rows] at build
  int nprobe = 8;        // cells scanned per query (clamped to [1, nlist])
  int kmeans_iters = 8;  // Lloyd iterations for the coarse quantizer
  uint64_t seed = 17;    // centroid seeding
};

class IvfIndex : public AnnIndex {
 public:
  IvfIndex() = default;

  /// Builds over the [rows x dim] row-major view `data` (non-owning; must
  /// outlive the index). `pool` may be null (sequential build).
  void Build(const float* data, int rows, int dim, Metric metric,
             const IvfOptions& options, util::ThreadPool* pool);

  static IvfIndex Over(const EmbeddingStore& store, Metric metric,
                       const IvfOptions& options, util::ThreadPool* pool);

  int size() const override { return rows_; }
  int dim() const override { return dim_; }
  Metric metric() const override { return metric_; }
  int nlist() const { return nlist_; }
  int nprobe() const { return nprobe_; }
  /// Adjusts the recall/latency dial; clamped to [1, nlist]. Not
  /// thread-safe against concurrent Search — set before serving.
  void set_nprobe(int nprobe);

  void Search(const float* query, int k,
              std::vector<SearchResult>* out) const override;

  /// Serialises metric/options/centroids/assignments (not the vectors).
  void WriteTo(util::BinaryWriter* writer) const;

  /// Rebuilds from a serialised structure over the SAME base matrix it was
  /// built on (validated via rows/dim; assignment range checked).
  static util::StatusOr<IvfIndex> ReadFrom(util::BinaryReader* reader,
                                           const float* data, int rows,
                                           int dim);

 private:
  /// Packs rows into per-cell contiguous slabs from assignments_.
  void BuildLists(const std::vector<float>& work);
  /// Metric-adjusted working copy of the base (cosine: normalized rows).
  void PrepareWork(std::vector<float>* work) const;

  const float* data_ = nullptr;
  int rows_ = 0;
  int dim_ = 0;
  Metric metric_ = Metric::kCosine;
  int nlist_ = 0;
  int nprobe_ = 8;
  IvfOptions options_;

  std::vector<float> centroids_;      // [nlist x dim]
  std::vector<int> assignments_;      // [rows] cell of each base row
  std::vector<float> packed_;         // [rows x dim] grouped by cell
  std::vector<int> packed_ids_;       // base row id of each packed row
  std::vector<int64_t> list_offsets_; // [nlist + 1] into packed rows
  int64_t max_list_len_ = 0;
};

}  // namespace imr::graph::ann

#endif  // IMR_GRAPH_ANN_IVF_INDEX_H_
