#include "graph/ann/flat_index.h"

#include <algorithm>

#include "tensor/buffer_pool.h"
#include "tensor/simd/dispatch.h"
#include "util/logging.h"

namespace imr::graph::ann {

using tensor::internal::AcquireBuffer;
using tensor::internal::PooledFloats;

void FlatIndex::Build(const float* data, int rows, int dim, Metric metric) {
  IMR_CHECK_GE(rows, 0);
  IMR_CHECK_GT(dim, 0);
  if (rows > 0) IMR_CHECK(data != nullptr);
  data_ = data;
  rows_ = rows;
  dim_ = dim;
  metric_ = metric;
  inv_norms_.clear();
  if (metric_ == Metric::kCosine) {
    inv_norms_.resize(static_cast<size_t>(rows_));
    for (int r = 0; r < rows_; ++r) {
      inv_norms_[static_cast<size_t>(r)] = detail::InvNorm(
          data_ + static_cast<size_t>(r) * dim_, static_cast<size_t>(dim_));
    }
  }
}

FlatIndex FlatIndex::Over(const EmbeddingStore& store, Metric metric) {
  FlatIndex index;
  index.Build(store.raw(), store.num_vertices(), store.dim(), metric);
  return index;
}

void FlatIndex::Search(const float* query, int k,
                       std::vector<SearchResult>* out) const {
  out->clear();
  if (rows_ == 0 || k <= 0) return;
  const auto& kernels = tensor::simd::EvalKernels();
  const size_t rows = static_cast<size_t>(rows_);
  const size_t dim = static_cast<size_t>(dim_);
  PooledFloats scores(AcquireBuffer(rows));
  switch (metric_) {
    case Metric::kDot:
      kernels.ann_dot_many(query, data_, rows, dim, scores.data());
      break;
    case Metric::kCosine:
      kernels.ann_cosine_many(query, data_, inv_norms_.data(),
                              detail::InvNorm(query, dim), rows, dim,
                              scores.data());
      break;
    case Metric::kL2:
      kernels.ann_l2sqr_many(query, data_, rows, dim, scores.data());
      kernels.scale(scores.data(), -1.0f, scores.data(), rows);
      break;
  }
  const int keep = std::min(k, rows_);
  out->resize(static_cast<size_t>(keep));
  detail::TopK top(out->data(), keep);
  for (int r = 0; r < rows_; ++r) top.Offer(r, scores[static_cast<size_t>(r)]);
  out->resize(static_cast<size_t>(top.Finish()));
}

void FlatIndex::SearchBatch(const float* queries, int num_queries, int k,
                            std::vector<std::vector<SearchResult>>* out) const {
  out->resize(static_cast<size_t>(num_queries));
  if (rows_ == 0 || k <= 0) {
    for (auto& r : *out) r.clear();
    return;
  }
  if (metric_ == Metric::kL2) {
    // No batch L2 kernel; the single-query path is already one sweep each.
    for (int q = 0; q < num_queries; ++q) {
      Search(queries + static_cast<size_t>(q) * dim_, k,
             &(*out)[static_cast<size_t>(q)]);
    }
    return;
  }
  // Dot/cosine: block queries through the batch kernel so several queries
  // amortise each pass over the base.
  constexpr int kQueryBlock = 8;
  const auto& kernels = tensor::simd::EvalKernels();
  const size_t rows = static_cast<size_t>(rows_);
  const size_t dim = static_cast<size_t>(dim_);
  PooledFloats scores(AcquireBuffer(static_cast<size_t>(kQueryBlock) * rows));
  for (int q0 = 0; q0 < num_queries; q0 += kQueryBlock) {
    const int block = std::min(kQueryBlock, num_queries - q0);
    kernels.ann_dot_batch(queries + static_cast<size_t>(q0) * dim,
                          static_cast<size_t>(block), data_, rows, dim,
                          scores.data());
    for (int b = 0; b < block; ++b) {
      float* qscores = scores.data() + static_cast<size_t>(b) * rows;
      if (metric_ == Metric::kCosine) {
        const float* query = queries + static_cast<size_t>(q0 + b) * dim;
        const float query_inv = detail::InvNorm(query, dim);
        kernels.mul(qscores, inv_norms_.data(), qscores, rows);
        kernels.scale(qscores, query_inv, qscores, rows);
      }
      auto& result = (*out)[static_cast<size_t>(q0 + b)];
      const int keep = std::min(k, rows_);
      result.resize(static_cast<size_t>(keep));
      detail::TopK top(result.data(), keep);
      for (int r = 0; r < rows_; ++r) {
        top.Offer(r, qscores[static_cast<size_t>(r)]);
      }
      result.resize(static_cast<size_t>(top.Finish()));
    }
  }
}

}  // namespace imr::graph::ann
