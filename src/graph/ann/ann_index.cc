#include "graph/ann/ann_index.h"

#include <algorithm>
#include <cmath>

namespace imr::graph::ann {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kDot:
      return "dot";
    case Metric::kCosine:
      return "cosine";
    case Metric::kL2:
      return "l2";
  }
  return "unknown";
}

void AnnIndex::SearchBatch(const float* queries, int num_queries, int k,
                           std::vector<std::vector<SearchResult>>* out) const {
  out->resize(static_cast<size_t>(num_queries));
  for (int q = 0; q < num_queries; ++q) {
    Search(queries + static_cast<size_t>(q) * dim(), k,
           &(*out)[static_cast<size_t>(q)]);
  }
}

namespace detail {

namespace {
// std::*_heap with "less == Better" keeps the WORST kept entry at the
// root, which is the one a new candidate must beat.
inline bool HeapLess(const SearchResult& a, const SearchResult& b) {
  return Better(a, b);
}
}  // namespace

void TopK::Offer(int id, float score) {
  const SearchResult candidate{id, score};
  if (count_ < k_) {
    slots_[count_++] = candidate;
    std::push_heap(slots_, slots_ + count_, HeapLess);
    return;
  }
  if (!Better(candidate, slots_[0])) return;
  std::pop_heap(slots_, slots_ + count_, HeapLess);
  slots_[count_ - 1] = candidate;
  std::push_heap(slots_, slots_ + count_, HeapLess);
}

int TopK::Finish() {
  std::sort_heap(slots_, slots_ + count_, HeapLess);
  return count_;
}

float InvNorm(const float* v, size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i) acc += v[i] * v[i];
  if (acc <= 0.0f) return 0.0f;
  return 1.0f / std::sqrt(acc);
}

}  // namespace detail

}  // namespace imr::graph::ann
