// Approximate-nearest-neighbor indexes over row-major float matrices
// (entity embeddings, mutual-relation vectors). Two implementations share
// this interface:
//
//   * FlatIndex  — exact brute-force scan; the recall reference.
//   * IvfIndex   — k-means coarse quantizer + inverted lists; `nprobe`
//                  trades recall against scan cost.
//
// Scores are ALWAYS "higher is closer": dot and cosine are returned as-is,
// L2 is returned negated. Ties break toward the lower id, so results are
// deterministic for duplicate vectors.
//
// Hot-path contract: Search() performs no steady-state heap allocation —
// float scratch comes from the tensor buffer pool and top-k selection runs
// in the caller's (reused) result vector. Distance sweeps route through
// the SIMD dispatch table (tensor/simd), so backend pinning and the
// per-backend ctest sweep cover this subsystem like any tensor op.
#ifndef IMR_GRAPH_ANN_ANN_INDEX_H_
#define IMR_GRAPH_ANN_ANN_INDEX_H_

#include <cstddef>
#include <vector>

namespace imr::graph::ann {

enum class Metric : int {
  kDot = 0,
  kCosine = 1,
  kL2 = 2,
};

const char* MetricName(Metric metric);

struct SearchResult {
  int id = -1;
  float score = 0.0f;  // higher = closer (L2 is negated)
};

/// Result ordering: descending score, ascending id on ties.
inline bool Better(const SearchResult& a, const SearchResult& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

class AnnIndex {
 public:
  virtual ~AnnIndex() = default;

  virtual int size() const = 0;
  virtual int dim() const = 0;
  virtual Metric metric() const = 0;

  /// Fills *out with (at most) the k closest entries, best first. `out` is
  /// cleared and reused — a caller that keeps the vector across queries
  /// pays no steady-state allocation.
  virtual void Search(const float* query, int k,
                      std::vector<SearchResult>* out) const = 0;

  /// Batch form over `num_queries` contiguous queries ([num_queries x
  /// dim]). The default loops Search; FlatIndex overrides it with the
  /// query-batch kernel. `out` is resized to num_queries.
  virtual void SearchBatch(const float* queries, int num_queries, int k,
                           std::vector<std::vector<SearchResult>>* out) const;
};

namespace detail {

/// Fixed-capacity top-k selector over caller-provided storage (no heap).
/// Offer() keeps the k Better()-est entries; Finish() sorts them best
/// first and returns the count.
class TopK {
 public:
  TopK(SearchResult* slots, int k) : slots_(slots), k_(k) {}

  void Offer(int id, float score);
  int Finish();

 private:
  SearchResult* slots_;
  int k_;
  int count_ = 0;
};

/// 1/||v|| with sequential float accumulation (0 for a zero vector).
float InvNorm(const float* v, size_t dim);

}  // namespace detail

}  // namespace imr::graph::ann

#endif  // IMR_GRAPH_ANN_ANN_INDEX_H_
