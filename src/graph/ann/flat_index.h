// Exact brute-force index: one SIMD distance sweep over every row, then a
// heap top-k. O(rows * dim) per query — the recall/exactness reference the
// IVF index is gated against, and fast enough on its own for small bases.
//
// The index does NOT own the row matrix; the caller keeps `data` alive for
// the index's lifetime (EmbeddingStore::flat() or a KnnPredictor-owned MR
// matrix). Only cosine inverse row norms are stored here.
#ifndef IMR_GRAPH_ANN_FLAT_INDEX_H_
#define IMR_GRAPH_ANN_FLAT_INDEX_H_

#include <vector>

#include "graph/ann/ann_index.h"
#include "graph/embedding_store.h"

namespace imr::graph::ann {

class FlatIndex : public AnnIndex {
 public:
  FlatIndex() = default;

  /// Indexes the [rows x dim] row-major view `data` (non-owning; must
  /// outlive the index). rows == 0 builds a valid empty index.
  void Build(const float* data, int rows, int dim, Metric metric);

  /// Convenience over a whole embedding store.
  static FlatIndex Over(const EmbeddingStore& store, Metric metric);

  int size() const override { return rows_; }
  int dim() const override { return dim_; }
  Metric metric() const override { return metric_; }

  void Search(const float* query, int k,
              std::vector<SearchResult>* out) const override;
  void SearchBatch(const float* queries, int num_queries, int k,
                   std::vector<std::vector<SearchResult>>* out) const override;

 private:
  const float* data_ = nullptr;
  int rows_ = 0;
  int dim_ = 0;
  Metric metric_ = Metric::kCosine;
  std::vector<float> inv_norms_;  // per-row 1/||x||, cosine only
};

}  // namespace imr::graph::ann

#endif  // IMR_GRAPH_ANN_FLAT_INDEX_H_
