#include "graph/ann/ivf_index.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <numeric>

#include "tensor/buffer_pool.h"
#include "tensor/simd/dispatch.h"
#include "util/logging.h"
#include "util/rng.h"

namespace imr::graph::ann {

using tensor::internal::AcquireBuffer;
using tensor::internal::PooledFloats;

namespace {

// Probe selection runs in a fixed stack array; nprobe is clamped to this.
// 256 probed cells at the 100k-entity preset is already an exact scan.
constexpr int kMaxNprobe = 256;

constexpr int64_t kAssignGrain = 2048;

int ClampNprobe(int nprobe, int nlist) {
  return std::max(1, std::min({nprobe, nlist, kMaxNprobe}));
}

}  // namespace

void IvfIndex::PrepareWork(std::vector<float>* work) const {
  work->assign(data_, data_ + static_cast<size_t>(rows_) * dim_);
  if (metric_ != Metric::kCosine) return;
  for (int r = 0; r < rows_; ++r) {
    float* row = work->data() + static_cast<size_t>(r) * dim_;
    const float inv = detail::InvNorm(row, static_cast<size_t>(dim_));
    for (int d = 0; d < dim_; ++d) row[d] *= inv;
  }
}

void IvfIndex::BuildLists(const std::vector<float>& work) {
  list_offsets_.assign(static_cast<size_t>(nlist_) + 1, 0);
  for (int r = 0; r < rows_; ++r) {
    ++list_offsets_[static_cast<size_t>(assignments_[static_cast<size_t>(r)]) +
                    1];
  }
  for (int c = 0; c < nlist_; ++c) {
    list_offsets_[static_cast<size_t>(c) + 1] +=
        list_offsets_[static_cast<size_t>(c)];
  }
  max_list_len_ = 0;
  for (int c = 0; c < nlist_; ++c) {
    max_list_len_ =
        std::max(max_list_len_, list_offsets_[static_cast<size_t>(c) + 1] -
                                    list_offsets_[static_cast<size_t>(c)]);
  }
  packed_ids_.resize(static_cast<size_t>(rows_));
  packed_.resize(static_cast<size_t>(rows_) * dim_);
  std::vector<int64_t> cursor(list_offsets_.begin(), list_offsets_.end() - 1);
  // Ascending row order within each cell keeps duplicate-vector ties
  // deterministic.
  for (int r = 0; r < rows_; ++r) {
    const int cell = assignments_[static_cast<size_t>(r)];
    const int64_t pos = cursor[static_cast<size_t>(cell)]++;
    packed_ids_[static_cast<size_t>(pos)] = r;
    std::memcpy(packed_.data() + static_cast<size_t>(pos) * dim_,
                work.data() + static_cast<size_t>(r) * dim_,
                sizeof(float) * static_cast<size_t>(dim_));
  }
}

void IvfIndex::Build(const float* data, int rows, int dim, Metric metric,
                     const IvfOptions& options, util::ThreadPool* pool) {
  IMR_CHECK_GE(rows, 0);
  IMR_CHECK_GT(dim, 0);
  if (rows > 0) IMR_CHECK(data != nullptr);
  data_ = data;
  rows_ = rows;
  dim_ = dim;
  metric_ = metric;
  options_ = options;
  centroids_.clear();
  assignments_.clear();
  packed_.clear();
  packed_ids_.clear();
  list_offsets_.clear();
  max_list_len_ = 0;
  if (rows_ == 0) {
    nlist_ = 0;
    nprobe_ = 1;
    return;
  }
  nlist_ = std::max(1, std::min(options.nlist, rows_));
  nprobe_ = ClampNprobe(options.nprobe, nlist_);

  std::vector<float> work;
  PrepareWork(&work);

  // Seed centroids from a deterministic sample of distinct rows.
  util::Rng rng(options.seed);
  std::vector<int> perm(static_cast<size_t>(rows_));
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(&perm);
  centroids_.resize(static_cast<size_t>(nlist_) * dim_);
  for (int c = 0; c < nlist_; ++c) {
    std::memcpy(centroids_.data() + static_cast<size_t>(c) * dim_,
                work.data() + static_cast<size_t>(perm[static_cast<size_t>(c)]) *
                                  dim_,
                sizeof(float) * static_cast<size_t>(dim_));
  }

  assignments_.assign(static_cast<size_t>(rows_), 0);
  // Resolve the kernel table once on this thread (grad mode is
  // thread-local) and pass it into the parallel bodies by reference.
  const auto& kernels = tensor::simd::EvalKernels();
  const auto assign_rows = [&](int64_t lo, int64_t hi) {
    PooledFloats dists(AcquireBuffer(static_cast<size_t>(nlist_)));
    for (int64_t r = lo; r < hi; ++r) {
      kernels.ann_l2sqr_many(work.data() + static_cast<size_t>(r) * dim_,
                             centroids_.data(), static_cast<size_t>(nlist_),
                             static_cast<size_t>(dim_), dists.data());
      int best = 0;
      for (int c = 1; c < nlist_; ++c) {
        if (dists[static_cast<size_t>(c)] < dists[static_cast<size_t>(best)]) {
          best = c;
        }
      }
      assignments_[static_cast<size_t>(r)] = best;
    }
  };
  const auto assign_all = [&] {
    if (pool != nullptr) {
      pool->ParallelFor(0, rows_, kAssignGrain, assign_rows);
    } else {
      assign_rows(0, rows_);
    }
  };

  std::vector<float> sums;
  std::vector<int64_t> counts;
  for (int iter = 0; iter < options.kmeans_iters; ++iter) {
    assign_all();
    // Sequential row-order accumulation: bit-identical at any thread count.
    sums.assign(static_cast<size_t>(nlist_) * dim_, 0.0f);
    counts.assign(static_cast<size_t>(nlist_), 0);
    for (int r = 0; r < rows_; ++r) {
      const int cell = assignments_[static_cast<size_t>(r)];
      const float* row = work.data() + static_cast<size_t>(r) * dim_;
      float* sum = sums.data() + static_cast<size_t>(cell) * dim_;
      for (int d = 0; d < dim_; ++d) sum[d] += row[d];
      ++counts[static_cast<size_t>(cell)];
    }
    for (int c = 0; c < nlist_; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;  // keep old centroid
      const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(c)]);
      float* centroid = centroids_.data() + static_cast<size_t>(c) * dim_;
      const float* sum = sums.data() + static_cast<size_t>(c) * dim_;
      for (int d = 0; d < dim_; ++d) centroid[d] = sum[d] * inv;
      if (metric_ == Metric::kCosine) {
        // Spherical k-means: centroids live on the unit sphere too.
        const float cinv = detail::InvNorm(centroid, static_cast<size_t>(dim_));
        for (int d = 0; d < dim_; ++d) centroid[d] *= cinv;
      }
    }
  }
  assign_all();
  BuildLists(work);
}

IvfIndex IvfIndex::Over(const EmbeddingStore& store, Metric metric,
                        const IvfOptions& options, util::ThreadPool* pool) {
  IvfIndex index;
  index.Build(store.raw(), store.num_vertices(), store.dim(), metric,
              options, pool);
  return index;
}

void IvfIndex::set_nprobe(int nprobe) {
  if (nlist_ == 0) return;
  nprobe_ = ClampNprobe(nprobe, nlist_);
}

void IvfIndex::Search(const float* query, int k,
                      std::vector<SearchResult>* out) const {
  out->clear();
  if (rows_ == 0 || k <= 0) return;
  const auto& kernels = tensor::simd::EvalKernels();
  const size_t dim = static_cast<size_t>(dim_);

  PooledFloats qbuf(AcquireBuffer(dim));
  const float* q = query;
  if (metric_ == Metric::kCosine) {
    // Packed rows are normalized at build, so a normalized query turns the
    // probe scan into a pure dot sweep.
    kernels.scale(query, detail::InvNorm(query, dim), qbuf.data(), dim);
    q = qbuf.data();
  }

  PooledFloats cell_scores(AcquireBuffer(static_cast<size_t>(nlist_)));
  if (metric_ == Metric::kL2) {
    kernels.ann_l2sqr_many(q, centroids_.data(), static_cast<size_t>(nlist_),
                           dim, cell_scores.data());
    kernels.scale(cell_scores.data(), -1.0f, cell_scores.data(),
                  static_cast<size_t>(nlist_));
  } else {
    kernels.ann_dot_many(q, centroids_.data(), static_cast<size_t>(nlist_),
                         dim, cell_scores.data());
  }

  std::array<SearchResult, kMaxNprobe> probe_slots;
  detail::TopK probe_top(probe_slots.data(), nprobe_);
  for (int c = 0; c < nlist_; ++c) {
    probe_top.Offer(c, cell_scores[static_cast<size_t>(c)]);
  }
  const int probes = probe_top.Finish();

  const int keep = std::min(k, rows_);
  out->resize(static_cast<size_t>(keep));
  detail::TopK top(out->data(), keep);
  PooledFloats list_scores(
      AcquireBuffer(static_cast<size_t>(std::max<int64_t>(max_list_len_, 1))));
  for (int p = 0; p < probes; ++p) {
    const int cell = probe_slots[static_cast<size_t>(p)].id;
    const int64_t begin = list_offsets_[static_cast<size_t>(cell)];
    const int64_t len = list_offsets_[static_cast<size_t>(cell) + 1] - begin;
    if (len == 0) continue;
    const float* slab = packed_.data() + static_cast<size_t>(begin) * dim;
    if (metric_ == Metric::kL2) {
      kernels.ann_l2sqr_many(q, slab, static_cast<size_t>(len), dim,
                             list_scores.data());
      for (int64_t i = 0; i < len; ++i) {
        top.Offer(packed_ids_[static_cast<size_t>(begin + i)],
                  -list_scores[static_cast<size_t>(i)]);
      }
    } else {
      kernels.ann_dot_many(q, slab, static_cast<size_t>(len), dim,
                           list_scores.data());
      for (int64_t i = 0; i < len; ++i) {
        top.Offer(packed_ids_[static_cast<size_t>(begin + i)],
                  list_scores[static_cast<size_t>(i)]);
      }
    }
  }
  out->resize(static_cast<size_t>(top.Finish()));
}

void IvfIndex::WriteTo(util::BinaryWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(metric_));
  writer->WriteU32(static_cast<uint32_t>(rows_));
  writer->WriteU32(static_cast<uint32_t>(dim_));
  writer->WriteU32(static_cast<uint32_t>(nlist_));
  writer->WriteU32(static_cast<uint32_t>(nprobe_));
  writer->WriteU32(static_cast<uint32_t>(options_.kmeans_iters));
  writer->WriteU64(options_.seed);
  writer->WriteFloatVector(centroids_);
  writer->WriteIntVector(assignments_);
}

util::StatusOr<IvfIndex> IvfIndex::ReadFrom(util::BinaryReader* reader,
                                            const float* data, int rows,
                                            int dim) {
  const uint32_t metric_raw = reader->ReadU32();
  const int stored_rows = static_cast<int>(reader->ReadU32());
  const int stored_dim = static_cast<int>(reader->ReadU32());
  const int nlist = static_cast<int>(reader->ReadU32());
  const int nprobe = static_cast<int>(reader->ReadU32());
  const int kmeans_iters = static_cast<int>(reader->ReadU32());
  const uint64_t seed = reader->ReadU64();
  std::vector<float> centroids = reader->ReadFloatVector();
  std::vector<int> assignments = reader->ReadIntVector();
  IMR_RETURN_IF_ERROR(reader->status());
  if (metric_raw > static_cast<uint32_t>(Metric::kL2)) {
    return util::InvalidArgument("corrupt ANN section: bad metric in '" +
                                 reader->path() + "'");
  }
  if (stored_rows != rows || stored_dim != dim) {
    return util::InvalidArgument(
        "ANN section does not match its base matrix in '" + reader->path() +
        "'");
  }
  IvfIndex index;
  index.data_ = data;
  index.rows_ = rows;
  index.dim_ = dim;
  index.metric_ = static_cast<Metric>(metric_raw);
  index.options_.nlist = nlist;
  index.options_.nprobe = nprobe;
  index.options_.kmeans_iters = kmeans_iters;
  index.options_.seed = seed;
  if (rows == 0) {
    index.nlist_ = 0;
    index.nprobe_ = 1;
    return index;
  }
  if (nlist <= 0 || nlist > rows ||
      centroids.size() != static_cast<size_t>(nlist) * dim ||
      assignments.size() != static_cast<size_t>(rows)) {
    return util::InvalidArgument("corrupt ANN section in '" + reader->path() +
                                 "'");
  }
  for (int r = 0; r < rows; ++r) {
    const int cell = assignments[static_cast<size_t>(r)];
    if (cell < 0 || cell >= nlist) {
      return util::InvalidArgument(
          "corrupt ANN section: assignment out of range in '" +
          reader->path() + "'");
    }
  }
  index.nlist_ = nlist;
  index.nprobe_ = ClampNprobe(nprobe, nlist);
  index.centroids_ = std::move(centroids);
  index.assignments_ = std::move(assignments);
  std::vector<float> work;
  index.PrepareWork(&work);
  index.BuildLists(work);
  return index;
}

}  // namespace imr::graph::ann
