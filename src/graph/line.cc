#include "graph/line.h"

#include <algorithm>
#include <cmath>

#include "graph/alias_sampler.h"
#include "graph/hogwild_sgns.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace imr::graph {

namespace {

// Fast, clamped sigmoid.
inline float FastSigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

// One SGD step of skip-gram-with-negative-sampling on (source, target):
// maximises log sigma(ctx_t . emb_s) and K terms log sigma(-ctx_n . emb_s).
// `embeddings`/`contexts` are [V x dim] row-major; for first-order LINE,
// pass the same buffer for both.
void SgnsUpdate(float* embeddings, float* contexts, int dim, int source,
                int target, int negatives, const AliasSampler& noise,
                float lr, util::Rng* rng) {
  float* source_vec = embeddings + static_cast<size_t>(source) * dim;
  std::vector<float> source_grad(static_cast<size_t>(dim), 0.0f);
  for (int k = 0; k <= negatives; ++k) {
    int vertex;
    float label;
    if (k == 0) {
      vertex = target;
      label = 1.0f;
    } else {
      vertex = static_cast<int>(noise.Sample(rng));
      if (vertex == target) continue;
      label = 0.0f;
    }
    float* ctx_vec = contexts + static_cast<size_t>(vertex) * dim;
    float dot = 0.0f;
    for (int d = 0; d < dim; ++d) dot += source_vec[d] * ctx_vec[d];
    const float grad_scale = (label - FastSigmoid(dot)) * lr;
    for (int d = 0; d < dim; ++d) {
      source_grad[static_cast<size_t>(d)] += grad_scale * ctx_vec[d];
      ctx_vec[d] += grad_scale * source_vec[d];
    }
  }
  for (int d = 0; d < dim; ++d)
    source_vec[d] += source_grad[static_cast<size_t>(d)];
}

// Hogwild variant of SgnsUpdate: identical math through the shared
// relaxed-atomic kernel (see hogwild_sgns.h); `scratch` is the caller's
// per-worker gradient buffer, avoiding a heap allocation per step.
void SgnsUpdateHogwild(float* embeddings, float* contexts, int dim,
                       int source, int target, int negatives,
                       const AliasSampler& noise, float lr, util::Rng* rng,
                       std::vector<float>* scratch) {
  internal::HogwildSgnsUpdate(embeddings + static_cast<size_t>(source) * dim,
                              contexts, dim, target, negatives, noise, lr,
                              rng, scratch);
}

// Trains one LINE order into `embeddings`; `contexts` is a separate buffer
// for second order and aliases `embeddings` for first order.
void TrainOrder(const ProximityGraph& graph, const LineConfig& config,
                int dim, float* embeddings, float* contexts,
                util::Rng* rng) {
  const auto& edges = graph.edges();
  if (edges.empty()) return;

  std::vector<double> edge_weights;
  edge_weights.reserve(edges.size());
  for (const Edge& edge : edges) edge_weights.push_back(edge.weight);
  AliasSampler edge_sampler(edge_weights);

  std::vector<double> noise_weights(graph.degrees().size());
  for (size_t v = 0; v < noise_weights.size(); ++v)
    noise_weights[v] = std::pow(graph.degrees()[v], config.noise_power);
  double total_noise = 0;
  for (double w : noise_weights) total_noise += w;
  if (total_noise <= 0) {
    // Degenerate graph: uniform noise.
    std::fill(noise_weights.begin(), noise_weights.end(), 1.0);
  }
  AliasSampler noise_sampler(noise_weights);

  const int64_t total_samples =
      static_cast<int64_t>(edges.size()) * config.samples_per_edge;
  const int threads =
      config.threads > 0 ? config.threads : util::GlobalThreads();

  if (threads > 1 && total_samples > 1) {
    // Hogwild: shard the sample budget into `threads` contiguous ranges,
    // one private rng per shard (seeded sequentially from the caller's rng
    // so the caller's stream advances deterministically). Learning rate
    // decays with the GLOBAL step index, exactly as the sequential
    // schedule. Updates race benignly through relaxed atomics.
    const int64_t grain = (total_samples + threads - 1) / threads;
    const int64_t shards =
        util::ThreadPool::NumChunks(0, total_samples, grain);
    std::vector<uint64_t> seeds(static_cast<size_t>(shards));
    for (uint64_t& s : seeds) s = rng->Next();
    util::GlobalPool().ParallelForChunks(
        0, total_samples, grain,
        [&](int64_t lo, int64_t hi, int64_t shard) {
          util::Rng worker_rng(seeds[static_cast<size_t>(shard)]);
          std::vector<float> scratch(static_cast<size_t>(dim));
          for (int64_t step = lo; step < hi; ++step) {
            const float progress =
                static_cast<float>(step) / static_cast<float>(total_samples);
            const float lr =
                std::max(config.initial_lr * (1.0f - progress),
                         config.initial_lr * 1e-4f);
            const Edge& edge = edges[edge_sampler.Sample(&worker_rng)];
            if (worker_rng.Bernoulli(0.5)) {
              SgnsUpdateHogwild(embeddings, contexts, dim, edge.source,
                                edge.target, config.negative_samples,
                                noise_sampler, lr, &worker_rng, &scratch);
            } else {
              SgnsUpdateHogwild(embeddings, contexts, dim, edge.target,
                                edge.source, config.negative_samples,
                                noise_sampler, lr, &worker_rng, &scratch);
            }
          }
        });
    return;
  }

  for (int64_t step = 0; step < total_samples; ++step) {
    const float progress =
        static_cast<float>(step) / static_cast<float>(total_samples);
    const float lr =
        std::max(config.initial_lr * (1.0f - progress),
                 config.initial_lr * 1e-4f);
    const Edge& edge = edges[edge_sampler.Sample(rng)];
    // Undirected edge: train both directions (LINE treats each undirected
    // edge as two directed ones).
    if (rng->Bernoulli(0.5)) {
      SgnsUpdate(embeddings, contexts, dim, edge.source, edge.target,
                 config.negative_samples, noise_sampler, lr, rng);
    } else {
      SgnsUpdate(embeddings, contexts, dim, edge.target, edge.source,
                 config.negative_samples, noise_sampler, lr, rng);
    }
  }
}

void RandomInit(float* data, size_t n, int dim, util::Rng* rng) {
  const float bound = 0.5f / static_cast<float>(dim);
  for (size_t i = 0; i < n; ++i)
    data[i] = static_cast<float>(rng->Uniform(-bound, bound));
}

// L2-normalises [V x dim] rows in place.
void NormalizeBlock(float* data, int vertices, int dim) {
  for (int v = 0; v < vertices; ++v) {
    float* row = data + static_cast<size_t>(v) * dim;
    double norm = 0;
    for (int d = 0; d < dim; ++d)
      norm += static_cast<double>(row[d]) * row[d];
    norm = std::sqrt(norm);
    if (norm <= 0) continue;
    const float inv = static_cast<float>(1.0 / norm);
    for (int d = 0; d < dim; ++d) row[d] *= inv;
  }
}

}  // namespace

EmbeddingStore TrainLine(const ProximityGraph& graph,
                         const LineConfig& config) {
  IMR_CHECK(config.first_order || config.second_order);
  IMR_CHECK_GT(config.dim, 1);
  util::Rng rng(config.seed);
  const int vertices = graph.num_vertices();
  const bool both = config.first_order && config.second_order;
  const int half = both ? config.dim / 2 : config.dim;

  EmbeddingStore store(vertices, both ? 2 * half : half);

  std::vector<float> first, second, second_context;
  if (config.first_order) {
    first.resize(static_cast<size_t>(vertices) * half);
    RandomInit(first.data(), first.size(), half, &rng);
    TrainOrder(graph, config, half, first.data(), first.data(), &rng);
    NormalizeBlock(first.data(), vertices, half);
  }
  if (config.second_order) {
    second.resize(static_cast<size_t>(vertices) * half);
    second_context.assign(static_cast<size_t>(vertices) * half, 0.0f);
    RandomInit(second.data(), second.size(), half, &rng);
    TrainOrder(graph, config, half, second.data(), second_context.data(),
               &rng);
    NormalizeBlock(second.data(), vertices, half);
  }

  for (int v = 0; v < vertices; ++v) {
    float* out = store.Vector(v);
    int offset = 0;
    if (config.first_order) {
      std::copy_n(first.data() + static_cast<size_t>(v) * half, half, out);
      offset = half;
    }
    if (config.second_order) {
      std::copy_n(second.data() + static_cast<size_t>(v) * half, half,
                  out + offset);
    }
  }
  return store;
}

}  // namespace imr::graph
