// Internal shared kernel for Hogwild-style skip-gram with negative sampling
// (Recht et al. 2011), used by the parallel paths of LINE, DeepWalk and
// node2vec. Every access to the shared embedding/context matrices goes
// through the relaxed-atomic helpers so the intentional data races of
// asynchronous SGD are well-defined C++ (and quiet under
// -fsanitize=thread); lost updates are statistically benign.
//
// The math matches the sequential per-update kernels exactly — only the
// memory accesses differ — so a 1-thread run through this kernel would be
// bit-identical to the legacy loops. The callers still keep the legacy code
// for threads == 1 to preserve the original rng stream.
#ifndef IMR_GRAPH_HOGWILD_SGNS_H_
#define IMR_GRAPH_HOGWILD_SGNS_H_

#include <cmath>
#include <vector>

#include "graph/alias_sampler.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace imr::graph::internal {

inline float FastSigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

/// One SGNS step on (center, target): maximises log sigma(ctx_t . center)
/// plus `negatives` terms log sigma(-ctx_n . center). `center_vec` points at
/// the center row of the shared embedding matrix; `contexts` is the shared
/// [V x dim] context matrix (may alias the embedding matrix for first-order
/// LINE). `scratch` is the caller's per-worker gradient buffer.
inline void HogwildSgnsUpdate(float* center_vec, float* contexts, int dim,
                              int target, int negatives,
                              const AliasSampler& noise, float lr,
                              util::Rng* rng, std::vector<float>* scratch) {
  scratch->assign(static_cast<size_t>(dim), 0.0f);
  float* center_grad = scratch->data();
  for (int k = 0; k <= negatives; ++k) {
    int vertex;
    float label;
    if (k == 0) {
      vertex = target;
      label = 1.0f;
    } else {
      vertex = static_cast<int>(noise.Sample(rng));
      if (vertex == target) continue;
      label = 0.0f;
    }
    float* ctx_vec = contexts + static_cast<size_t>(vertex) * dim;
    float dot = 0.0f;
    for (int d = 0; d < dim; ++d)
      dot += util::RelaxedLoad(center_vec + d) * util::RelaxedLoad(ctx_vec + d);
    const float grad_scale = (label - FastSigmoid(dot)) * lr;
    for (int d = 0; d < dim; ++d) {
      const float cv = util::RelaxedLoad(center_vec + d);
      const float xv = util::RelaxedLoad(ctx_vec + d);
      center_grad[d] += grad_scale * xv;
      util::RelaxedStore(ctx_vec + d, xv + grad_scale * cv);
    }
  }
  for (int d = 0; d < dim; ++d)
    util::RelaxedAdd(center_vec + d, center_grad[d]);
}

}  // namespace imr::graph::internal

#endif  // IMR_GRAPH_HOGWILD_SGNS_H_
