// Dense entity-embedding store with cosine nearest-neighbour queries and
// the paper's implicit-mutual-relation vector MR(i, j) = U_j - U_i.
//
// Storage comes in two modes behind one read API:
//   - owned:    the classic std::vector<float> copy (training, v1 loads)
//   - borrowed: a View() over bytes owned by someone else — an mmap'd IMRS
//     v2 snapshot section. The view holds a shared_ptr to the owner, so the
//     mapping stays pinned while any store (and thus any serving
//     generation) still reads from it. Borrowed stores are read-only:
//     mutating accessors (Vector(int), NormalizeRows, flat) CHECK-fail.
#ifndef IMR_GRAPH_EMBEDDING_STORE_H_
#define IMR_GRAPH_EMBEDDING_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "util/serialization.h"
#include "util/status.h"

namespace imr::graph {

class EmbeddingStore {
 public:
  EmbeddingStore() = default;
  EmbeddingStore(int num_vertices, int dim);

  /// Borrowed-storage mode: reads route to `data` (row-major
  /// [num_vertices x dim]) without copying; `owner` is pinned for the
  /// store's lifetime (an mmap keeps its pages valid even after the
  /// backing file is unlinked).
  static EmbeddingStore View(int num_vertices, int dim, const float* data,
                             std::shared_ptr<const void> owner);
  bool borrowed() const { return view_ != nullptr; }

  int num_vertices() const { return num_vertices_; }
  int dim() const { return dim_; }

  /// Mutable row access.
  float* Vector(int vertex);
  const float* Vector(int vertex) const;
  std::vector<float> VectorCopy(int vertex) const;

  /// MR(i, j) = U_j - U_i (paper Section III-A.3).
  std::vector<float> MutualRelation(int i, int j) const;

  /// Top-k most cosine-similar vertices to `vertex` (excluding itself).
  struct Neighbor {
    int vertex = -1;
    double similarity = 0.0;
  };
  std::vector<Neighbor> NearestNeighbors(int vertex, int k) const;

  /// Cosine similarity between two stored vectors.
  double Cosine(int a, int b) const;
  /// Cosine similarity between two raw vectors of dim().
  static double Cosine(const std::vector<float>& a,
                       const std::vector<float>& b);

  /// L2-normalises every row in place (no-op for zero rows).
  void NormalizeRows();

  /// Flat [num_vertices x dim] vector, row-major. Owned stores only; use
  /// raw() for mode-agnostic access.
  const std::vector<float>& flat() const;
  /// First element of the row-major [num_vertices x dim] block, in either
  /// storage mode.
  const float* raw() const { return view_ != nullptr ? view_ : data_.data(); }
  size_t value_count() const {
    return static_cast<size_t>(num_vertices_) * static_cast<size_t>(dim_);
  }

  [[nodiscard]] util::Status Save(const std::string& path) const;
  [[nodiscard]] static util::StatusOr<EmbeddingStore> Load(const std::string& path);

  /// Streams the store into an already-open writer / restores it from one —
  /// used by composite formats (model snapshots) that carry the entity
  /// embeddings as one section of a larger file. Values round-trip
  /// bit-exactly.
  void WriteTo(util::BinaryWriter* writer) const;
  [[nodiscard]] static util::StatusOr<EmbeddingStore> ReadFrom(util::BinaryReader* reader);

 private:
  int num_vertices_ = 0;
  int dim_ = 0;
  std::vector<float> data_;
  const float* view_ = nullptr;          // non-null: borrowed mode
  std::shared_ptr<const void> storage_;  // pins the borrowed bytes' owner
};

/// Int8 companion of EmbeddingStore for the serving path: every row is
/// quantized with its own symmetric scale (scale_v = maxabs(row)/127, zero
/// rows get scale 0), so dequantization is q[d] * scale and the worst-case
/// row error is scale/2 ≈ maxabs/254. MR vectors computed from the
/// quantized rows therefore differ from fp32 MR by at most
/// (scale_i + scale_j)/2 per element — small enough for the serve-time
/// accuracy gate in bench_serve, at a quarter of the memory traffic.
class QuantizedEmbeddingStore {
 public:
  QuantizedEmbeddingStore() = default;

  /// Quantizes every row of `source` (round-to-nearest, saturating).
  static QuantizedEmbeddingStore Quantize(const EmbeddingStore& source);

  /// Quantizes one row (the shared kernel of Quantize and IMRD delta
  /// writers, so a patched row re-quantized at apply time is bit-identical
  /// to the same row quantized at save time).
  static void QuantizeRow(const float* row, int dim, int8_t* out,
                          float* scale);

  /// Borrowed-storage mode over externally owned bytes (mmap'd QEMB
  /// section): `data` is row-major int8 [num_vertices x dim], `scales` one
  /// float per row. Read-only; `owner` is pinned for the store's lifetime.
  static QuantizedEmbeddingStore View(int num_vertices, int dim,
                                      const int8_t* data, const float* scales,
                                      std::shared_ptr<const void> owner);
  bool borrowed() const { return data_view_ != nullptr; }

  int num_vertices() const { return num_vertices_; }
  int dim() const { return dim_; }
  bool empty() const { return num_vertices_ == 0; }

  const int8_t* Row(int vertex) const;
  float scale(int vertex) const;
  const int8_t* raw() const {
    return data_view_ != nullptr ? data_view_ : data_.data();
  }
  const float* raw_scales() const {
    return scales_view_ != nullptr ? scales_view_ : scales_.data();
  }

  /// Reconstructed fp32 row: q[d] * scale.
  std::vector<float> Dequantize(int vertex) const;

  /// MR(i, j) = U_j - U_i over the dequantized rows — the quantized
  /// serving analogue of EmbeddingStore::MutualRelation.
  std::vector<float> MutualRelation(int i, int j) const;

  /// Largest |dequantized - reference| over all elements; the round-trip
  /// test asserts this stays within the per-row scale/2 bound.
  double MaxAbsError(const EmbeddingStore& reference) const;

  /// Streams the store into / out of an already-open writer (the QEMB
  /// snapshot section). Values round-trip bit-exactly.
  void WriteTo(util::BinaryWriter* writer) const;
  [[nodiscard]] static util::StatusOr<QuantizedEmbeddingStore> ReadFrom(
      util::BinaryReader* reader);

 private:
  int num_vertices_ = 0;
  int dim_ = 0;
  std::vector<int8_t> data_;    // [num_vertices x dim], row-major
  std::vector<float> scales_;   // [num_vertices]
  const int8_t* data_view_ = nullptr;   // non-null: borrowed mode
  const float* scales_view_ = nullptr;
  std::shared_ptr<const void> storage_;
};

}  // namespace imr::graph

#endif  // IMR_GRAPH_EMBEDDING_STORE_H_
