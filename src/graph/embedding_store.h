// Dense entity-embedding store with cosine nearest-neighbour queries and
// the paper's implicit-mutual-relation vector MR(i, j) = U_j - U_i.
#ifndef IMR_GRAPH_EMBEDDING_STORE_H_
#define IMR_GRAPH_EMBEDDING_STORE_H_

#include <string>
#include <vector>

#include "util/serialization.h"
#include "util/status.h"

namespace imr::graph {

class EmbeddingStore {
 public:
  EmbeddingStore() = default;
  EmbeddingStore(int num_vertices, int dim);

  int num_vertices() const { return num_vertices_; }
  int dim() const { return dim_; }

  /// Mutable row access.
  float* Vector(int vertex);
  const float* Vector(int vertex) const;
  std::vector<float> VectorCopy(int vertex) const;

  /// MR(i, j) = U_j - U_i (paper Section III-A.3).
  std::vector<float> MutualRelation(int i, int j) const;

  /// Top-k most cosine-similar vertices to `vertex` (excluding itself).
  struct Neighbor {
    int vertex = -1;
    double similarity = 0.0;
  };
  std::vector<Neighbor> NearestNeighbors(int vertex, int k) const;

  /// Cosine similarity between two stored vectors.
  double Cosine(int a, int b) const;
  /// Cosine similarity between two raw vectors of dim().
  static double Cosine(const std::vector<float>& a,
                       const std::vector<float>& b);

  /// L2-normalises every row in place (no-op for zero rows).
  void NormalizeRows();

  /// Flat [num_vertices x dim] view, row-major.
  const std::vector<float>& flat() const { return data_; }

  [[nodiscard]] util::Status Save(const std::string& path) const;
  [[nodiscard]] static util::StatusOr<EmbeddingStore> Load(const std::string& path);

  /// Streams the store into an already-open writer / restores it from one —
  /// used by composite formats (model snapshots) that carry the entity
  /// embeddings as one section of a larger file. Values round-trip
  /// bit-exactly.
  void WriteTo(util::BinaryWriter* writer) const;
  [[nodiscard]] static util::StatusOr<EmbeddingStore> ReadFrom(util::BinaryReader* reader);

 private:
  int num_vertices_ = 0;
  int dim_ = 0;
  std::vector<float> data_;
};

}  // namespace imr::graph

#endif  // IMR_GRAPH_EMBEDDING_STORE_H_
