#include "graph/deepwalk.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "graph/alias_sampler.h"
#include "graph/hogwild_sgns.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace imr::graph {

namespace {

inline float FastSigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

// Weighted adjacency with per-vertex alias samplers for O(1) next-step
// draws.
struct WalkGraph {
  std::vector<std::vector<int>> neighbors;
  std::vector<std::unique_ptr<AliasSampler>> samplers;

  explicit WalkGraph(const ProximityGraph& graph)
      : neighbors(static_cast<size_t>(graph.num_vertices())),
        samplers(static_cast<size_t>(graph.num_vertices())) {
    std::vector<std::vector<double>> weights(
        static_cast<size_t>(graph.num_vertices()));
    for (const Edge& edge : graph.edges()) {
      neighbors[static_cast<size_t>(edge.source)].push_back(edge.target);
      weights[static_cast<size_t>(edge.source)].push_back(edge.weight);
      neighbors[static_cast<size_t>(edge.target)].push_back(edge.source);
      weights[static_cast<size_t>(edge.target)].push_back(edge.weight);
    }
    for (size_t v = 0; v < neighbors.size(); ++v) {
      if (!neighbors[v].empty())
        samplers[v] = std::make_unique<AliasSampler>(weights[v]);
    }
  }

  int Step(int vertex, util::Rng* rng) const {
    const auto& sampler = samplers[static_cast<size_t>(vertex)];
    if (sampler == nullptr) return -1;
    return neighbors[static_cast<size_t>(vertex)]
                    [sampler->Sample(rng)];
  }
};

}  // namespace

EmbeddingStore TrainDeepWalk(const ProximityGraph& graph,
                             const DeepWalkConfig& config) {
  IMR_CHECK_GT(config.dim, 0);
  IMR_CHECK_GT(config.walk_length, 1);
  util::Rng rng(config.seed);
  const int vertices = graph.num_vertices();
  const int dim = config.dim;

  EmbeddingStore store(vertices, dim);
  std::vector<float> contexts(static_cast<size_t>(vertices) * dim, 0.0f);
  const float bound = 0.5f / static_cast<float>(dim);
  for (int v = 0; v < vertices; ++v) {
    float* row = store.Vector(v);
    for (int d = 0; d < dim; ++d)
      row[d] = static_cast<float>(rng.Uniform(-bound, bound));
  }

  std::vector<double> noise_weights(static_cast<size_t>(vertices));
  for (int v = 0; v < vertices; ++v)
    noise_weights[static_cast<size_t>(v)] =
        std::pow(graph.degrees()[static_cast<size_t>(v)],
                 config.noise_power);
  bool any_noise = false;
  for (double w : noise_weights) any_noise |= (w > 0);
  if (!any_noise) std::fill(noise_weights.begin(), noise_weights.end(), 1.0);
  AliasSampler noise(noise_weights);

  WalkGraph walk_graph(graph);
  std::vector<int> order(static_cast<size_t>(vertices));
  for (int v = 0; v < vertices; ++v) order[static_cast<size_t>(v)] = v;

  const int64_t total_walks =
      static_cast<int64_t>(vertices) * config.walks_per_vertex;

  const int threads =
      config.threads > 0 ? config.threads : util::GlobalThreads();
  if (threads > 1 && vertices > 1) {
    // Hogwild: each round shuffles the start order on the caller's rng
    // (deterministic), then shards it across workers. Workers roll walks
    // and apply skip-gram updates with private rngs and scratch; shared
    // matrices are touched through relaxed atomics. Learning rate decays
    // with the global walk index, as in the sequential schedule.
    const int64_t grain =
        (static_cast<int64_t>(vertices) + threads - 1) / threads;
    const int64_t shards = util::ThreadPool::NumChunks(0, vertices, grain);
    for (int round = 0; round < config.walks_per_vertex; ++round) {
      rng.Shuffle(&order);
      std::vector<uint64_t> seeds(static_cast<size_t>(shards));
      for (uint64_t& s : seeds) s = rng.Next();
      util::GlobalPool().ParallelForChunks(
          0, vertices, grain, [&](int64_t lo, int64_t hi, int64_t shard) {
            util::Rng worker_rng(seeds[static_cast<size_t>(shard)]);
            std::vector<int> walk(static_cast<size_t>(config.walk_length));
            std::vector<float> scratch(static_cast<size_t>(dim));
            for (int64_t idx = lo; idx < hi; ++idx) {
              const int64_t done =
                  static_cast<int64_t>(round) * vertices + idx;
              const float progress = static_cast<float>(done) /
                                     static_cast<float>(total_walks);
              const float lr =
                  std::max(config.initial_lr * (1.0f - progress),
                           config.initial_lr * 1e-4f);
              int length = 0;
              int current = order[static_cast<size_t>(idx)];
              while (length < config.walk_length && current >= 0) {
                walk[static_cast<size_t>(length++)] = current;
                current = walk_graph.Step(current, &worker_rng);
              }
              if (length < 2) continue;
              for (int center = 0; center < length; ++center) {
                const int w_lo = std::max(0, center - config.window);
                const int w_hi = std::min(length - 1, center + config.window);
                float* center_vec =
                    store.Vector(walk[static_cast<size_t>(center)]);
                for (int pos = w_lo; pos <= w_hi; ++pos) {
                  if (pos == center) continue;
                  internal::HogwildSgnsUpdate(
                      center_vec, contexts.data(), dim,
                      walk[static_cast<size_t>(pos)],
                      config.negative_samples, noise, lr, &worker_rng,
                      &scratch);
                }
              }
            }
          });
    }
    store.NormalizeRows();
    return store;
  }

  int64_t done_walks = 0;
  std::vector<int> walk(static_cast<size_t>(config.walk_length));
  for (int round = 0; round < config.walks_per_vertex; ++round) {
    rng.Shuffle(&order);
    for (int start : order) {
      const float progress =
          static_cast<float>(done_walks) / static_cast<float>(total_walks);
      const float lr = std::max(config.initial_lr * (1.0f - progress),
                                config.initial_lr * 1e-4f);
      ++done_walks;
      // Roll the walk.
      int length = 0;
      int current = start;
      while (length < config.walk_length && current >= 0) {
        walk[static_cast<size_t>(length++)] = current;
        current = walk_graph.Step(current, &rng);
      }
      if (length < 2) continue;
      // Skip-gram over the walk.
      for (int center = 0; center < length; ++center) {
        const int lo = std::max(0, center - config.window);
        const int hi = std::min(length - 1, center + config.window);
        float* center_vec =
            store.Vector(walk[static_cast<size_t>(center)]);
        for (int pos = lo; pos <= hi; ++pos) {
          if (pos == center) continue;
          const int target = walk[static_cast<size_t>(pos)];
          std::vector<float> grad(static_cast<size_t>(dim), 0.0f);
          for (int k = 0; k <= config.negative_samples; ++k) {
            int vertex;
            float label;
            if (k == 0) {
              vertex = target;
              label = 1.0f;
            } else {
              vertex = static_cast<int>(noise.Sample(&rng));
              if (vertex == target) continue;
              label = 0.0f;
            }
            float* ctx =
                contexts.data() + static_cast<size_t>(vertex) * dim;
            float dot = 0.0f;
            for (int d = 0; d < dim; ++d) dot += center_vec[d] * ctx[d];
            const float g = (label - FastSigmoid(dot)) * lr;
            for (int d = 0; d < dim; ++d) {
              grad[static_cast<size_t>(d)] += g * ctx[d];
              ctx[d] += g * center_vec[d];
            }
          }
          for (int d = 0; d < dim; ++d)
            center_vec[d] += grad[static_cast<size_t>(d)];
        }
      }
    }
  }
  store.NormalizeRows();
  return store;
}

}  // namespace imr::graph
