#include "graph/propagation.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace imr::graph {

namespace {

struct Adjacency {
  std::vector<std::vector<int>> neighbors;
  std::vector<std::vector<double>> weights;

  explicit Adjacency(const ProximityGraph& graph)
      : neighbors(static_cast<size_t>(graph.num_vertices())),
        weights(static_cast<size_t>(graph.num_vertices())) {
    for (const Edge& edge : graph.edges()) {
      neighbors[static_cast<size_t>(edge.source)].push_back(edge.target);
      weights[static_cast<size_t>(edge.source)].push_back(edge.weight);
      neighbors[static_cast<size_t>(edge.target)].push_back(edge.source);
      weights[static_cast<size_t>(edge.target)].push_back(edge.weight);
    }
  }
};

double CosineRaw(const float* a, const float* b, int dim) {
  double dot = 0, na = 0, nb = 0;
  for (int d = 0; d < dim; ++d) {
    dot += static_cast<double>(a[d]) * b[d];
    na += static_cast<double>(a[d]) * a[d];
    nb += static_cast<double>(b[d]) * b[d];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0 ? dot / denom : 0.0;
}

}  // namespace

EmbeddingStore PropagateEmbeddings(const ProximityGraph& graph,
                                   const EmbeddingStore& store,
                                   const PropagationConfig& config) {
  IMR_CHECK_EQ(graph.num_vertices(), store.num_vertices());
  IMR_CHECK_GE(config.rounds, 0);
  IMR_CHECK_GE(config.mix, 0.0f);
  IMR_CHECK_LE(config.mix, 1.0f);
  const int dim = store.dim();
  Adjacency adjacency(graph);

  EmbeddingStore current(store.num_vertices(), dim);
  std::copy(store.flat().begin(), store.flat().end(),
            current.Vector(0));

  for (int round = 0; round < config.rounds; ++round) {
    EmbeddingStore next(store.num_vertices(), dim);
    for (int u = 0; u < store.num_vertices(); ++u) {
      const auto& neighbors = adjacency.neighbors[static_cast<size_t>(u)];
      const float* self = current.Vector(u);
      float* out = next.Vector(u);
      if (neighbors.empty()) {
        std::copy(self, self + dim, out);
        continue;
      }
      // Neighbour weights.
      std::vector<double> alphas(neighbors.size());
      if (config.weighting == PropagationWeighting::kEdgeWeight) {
        double total = 0;
        for (size_t i = 0; i < neighbors.size(); ++i) {
          alphas[i] = adjacency.weights[static_cast<size_t>(u)][i];
          total += alphas[i];
        }
        if (total <= 0) total = 1;
        for (double& alpha : alphas) alpha /= total;
      } else {
        double max_score = -1e30;
        for (size_t i = 0; i < neighbors.size(); ++i) {
          alphas[i] = CosineRaw(self, current.Vector(neighbors[i]), dim) /
                      config.attention_temperature;
          max_score = std::max(max_score, alphas[i]);
        }
        double total = 0;
        for (double& alpha : alphas) {
          alpha = std::exp(alpha - max_score);
          total += alpha;
        }
        for (double& alpha : alphas) alpha /= total;
      }
      // Aggregate.
      for (int d = 0; d < dim; ++d)
        out[d] = (1.0f - config.mix) * self[d];
      for (size_t i = 0; i < neighbors.size(); ++i) {
        const float* nv = current.Vector(neighbors[i]);
        const float scale =
            config.mix * static_cast<float>(alphas[i]);
        for (int d = 0; d < dim; ++d) out[d] += scale * nv[d];
      }
    }
    if (config.renormalize) next.NormalizeRows();
    current = std::move(next);
  }
  return current;
}

}  // namespace imr::graph
