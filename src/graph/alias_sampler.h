// Walker's alias method: O(1) sampling from a fixed discrete distribution.
// Used for LINE's edge sampling (proportional to edge weight) and negative
// sampling (proportional to degree^0.75).
#ifndef IMR_GRAPH_ALIAS_SAMPLER_H_
#define IMR_GRAPH_ALIAS_SAMPLER_H_

#include <vector>

#include "util/rng.h"

namespace imr::graph {

class AliasSampler {
 public:
  /// Builds the table from non-negative weights (at least one positive).
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index with probability weight[i] / sum(weights).
  size_t Sample(util::Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace imr::graph

#endif  // IMR_GRAPH_ALIAS_SAMPLER_H_
