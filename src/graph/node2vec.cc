#include "graph/node2vec.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>

#include "graph/alias_sampler.h"
#include "graph/hogwild_sgns.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace imr::graph {

namespace {

inline float FastSigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

// Adjacency with per-vertex neighbour sets for O(1) "is x a neighbour of
// y" checks, needed by the second-order transition bias.
struct BiasedWalkGraph {
  std::vector<std::vector<int>> neighbors;
  std::vector<std::vector<double>> weights;
  std::vector<std::unordered_set<int>> neighbor_sets;

  explicit BiasedWalkGraph(const ProximityGraph& graph)
      : neighbors(static_cast<size_t>(graph.num_vertices())),
        weights(static_cast<size_t>(graph.num_vertices())),
        neighbor_sets(static_cast<size_t>(graph.num_vertices())) {
    for (const Edge& edge : graph.edges()) {
      neighbors[static_cast<size_t>(edge.source)].push_back(edge.target);
      weights[static_cast<size_t>(edge.source)].push_back(edge.weight);
      neighbors[static_cast<size_t>(edge.target)].push_back(edge.source);
      weights[static_cast<size_t>(edge.target)].push_back(edge.weight);
      neighbor_sets[static_cast<size_t>(edge.source)].insert(edge.target);
      neighbor_sets[static_cast<size_t>(edge.target)].insert(edge.source);
    }
  }

  // Second-order step: walker came from `previous` and sits at `current`.
  // Transition weight to candidate x is w(current,x) * bias(previous, x)
  // with bias 1/p when x == previous, 1 when x neighbours previous, and
  // 1/q otherwise. Sampled on the fly (the full alias precomputation is
  // O(E * avg_degree) memory, overkill for these graph sizes).
  int Step(int previous, int current, double p, double q,
           util::Rng* rng) const {
    const auto& nbrs = neighbors[static_cast<size_t>(current)];
    if (nbrs.empty()) return -1;
    const auto& wts = weights[static_cast<size_t>(current)];
    std::vector<double> biased(nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      double bias = 1.0 / q;
      if (nbrs[i] == previous) {
        bias = 1.0 / p;
      } else if (previous >= 0 &&
                 neighbor_sets[static_cast<size_t>(previous)].count(
                     nbrs[i]) > 0) {
        bias = 1.0;
      }
      biased[i] = wts[i] * bias;
    }
    return nbrs[rng->Discrete(biased)];
  }
};

}  // namespace

EmbeddingStore TrainNode2Vec(const ProximityGraph& graph,
                             const Node2VecConfig& config) {
  IMR_CHECK_GT(config.dim, 0);
  IMR_CHECK_GT(config.walk_length, 1);
  IMR_CHECK_GT(config.p, 0.0);
  IMR_CHECK_GT(config.q, 0.0);
  util::Rng rng(config.seed);
  const int vertices = graph.num_vertices();
  const int dim = config.dim;

  EmbeddingStore store(vertices, dim);
  std::vector<float> contexts(static_cast<size_t>(vertices) * dim, 0.0f);
  const float bound = 0.5f / static_cast<float>(dim);
  for (int v = 0; v < vertices; ++v) {
    float* row = store.Vector(v);
    for (int d = 0; d < dim; ++d)
      row[d] = static_cast<float>(rng.Uniform(-bound, bound));
  }

  std::vector<double> noise_weights(static_cast<size_t>(vertices));
  for (int v = 0; v < vertices; ++v)
    noise_weights[static_cast<size_t>(v)] = std::pow(
        graph.degrees()[static_cast<size_t>(v)], config.noise_power);
  bool any_noise = false;
  for (double w : noise_weights) any_noise |= (w > 0);
  if (!any_noise) std::fill(noise_weights.begin(), noise_weights.end(), 1.0);
  AliasSampler noise(noise_weights);

  BiasedWalkGraph walk_graph(graph);
  std::vector<int> order(static_cast<size_t>(vertices));
  for (int v = 0; v < vertices; ++v) order[static_cast<size_t>(v)] = v;

  const int64_t total_walks =
      static_cast<int64_t>(vertices) * config.walks_per_vertex;

  const int threads =
      config.threads > 0 ? config.threads : util::GlobalThreads();
  if (threads > 1 && vertices > 1) {
    // Hogwild: same sharding scheme as DeepWalk (see deepwalk.cc), with the
    // second-order biased step rolled on each worker's private rng.
    const int64_t grain =
        (static_cast<int64_t>(vertices) + threads - 1) / threads;
    const int64_t shards = util::ThreadPool::NumChunks(0, vertices, grain);
    for (int round = 0; round < config.walks_per_vertex; ++round) {
      rng.Shuffle(&order);
      std::vector<uint64_t> seeds(static_cast<size_t>(shards));
      for (uint64_t& s : seeds) s = rng.Next();
      util::GlobalPool().ParallelForChunks(
          0, vertices, grain, [&](int64_t lo, int64_t hi, int64_t shard) {
            util::Rng worker_rng(seeds[static_cast<size_t>(shard)]);
            std::vector<int> walk(static_cast<size_t>(config.walk_length));
            std::vector<float> scratch(static_cast<size_t>(dim));
            for (int64_t idx = lo; idx < hi; ++idx) {
              const int64_t done =
                  static_cast<int64_t>(round) * vertices + idx;
              const float progress = static_cast<float>(done) /
                                     static_cast<float>(total_walks);
              const float lr =
                  std::max(config.initial_lr * (1.0f - progress),
                           config.initial_lr * 1e-4f);
              int length = 0;
              int previous = -1;
              int current = order[static_cast<size_t>(idx)];
              while (length < config.walk_length && current >= 0) {
                walk[static_cast<size_t>(length++)] = current;
                const int next = walk_graph.Step(previous, current, config.p,
                                                 config.q, &worker_rng);
                previous = current;
                current = next;
              }
              if (length < 2) continue;
              for (int center = 0; center < length; ++center) {
                const int w_lo = std::max(0, center - config.window);
                const int w_hi = std::min(length - 1, center + config.window);
                float* center_vec =
                    store.Vector(walk[static_cast<size_t>(center)]);
                for (int pos = w_lo; pos <= w_hi; ++pos) {
                  if (pos == center) continue;
                  internal::HogwildSgnsUpdate(
                      center_vec, contexts.data(), dim,
                      walk[static_cast<size_t>(pos)],
                      config.negative_samples, noise, lr, &worker_rng,
                      &scratch);
                }
              }
            }
          });
    }
    store.NormalizeRows();
    return store;
  }

  int64_t done_walks = 0;
  std::vector<int> walk(static_cast<size_t>(config.walk_length));
  for (int round = 0; round < config.walks_per_vertex; ++round) {
    rng.Shuffle(&order);
    for (int start : order) {
      const float progress =
          static_cast<float>(done_walks) / static_cast<float>(total_walks);
      const float lr = std::max(config.initial_lr * (1.0f - progress),
                                config.initial_lr * 1e-4f);
      ++done_walks;
      int length = 0;
      int previous = -1;
      int current = start;
      while (length < config.walk_length && current >= 0) {
        walk[static_cast<size_t>(length++)] = current;
        const int next =
            walk_graph.Step(previous, current, config.p, config.q, &rng);
        previous = current;
        current = next;
      }
      if (length < 2) continue;
      for (int center = 0; center < length; ++center) {
        const int lo = std::max(0, center - config.window);
        const int hi = std::min(length - 1, center + config.window);
        float* center_vec =
            store.Vector(walk[static_cast<size_t>(center)]);
        for (int pos = lo; pos <= hi; ++pos) {
          if (pos == center) continue;
          const int target = walk[static_cast<size_t>(pos)];
          std::vector<float> grad(static_cast<size_t>(dim), 0.0f);
          for (int k = 0; k <= config.negative_samples; ++k) {
            int vertex;
            float label;
            if (k == 0) {
              vertex = target;
              label = 1.0f;
            } else {
              vertex = static_cast<int>(noise.Sample(&rng));
              if (vertex == target) continue;
              label = 0.0f;
            }
            float* ctx =
                contexts.data() + static_cast<size_t>(vertex) * dim;
            float dot = 0.0f;
            for (int d = 0; d < dim; ++d) dot += center_vec[d] * ctx[d];
            const float g = (label - FastSigmoid(dot)) * lr;
            for (int d = 0; d < dim; ++d) {
              grad[static_cast<size_t>(d)] += g * ctx[d];
              ctx[d] += g * center_vec[d];
            }
          }
          for (int d = 0; d < dim; ++d)
            center_vec[d] += grad[static_cast<size_t>(d)];
        }
      }
    }
  }
  store.NormalizeRows();
  return store;
}

}  // namespace imr::graph
