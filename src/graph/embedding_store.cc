#include "graph/embedding_store.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/serialization.h"

namespace imr::graph {

namespace {
constexpr uint32_t kEmbeddingMagic = 0x494D5245;  // "IMRE"
constexpr uint32_t kEmbeddingVersion = 1;
}  // namespace

EmbeddingStore::EmbeddingStore(int num_vertices, int dim)
    : num_vertices_(num_vertices), dim_(dim) {
  IMR_CHECK_GT(num_vertices, 0);
  IMR_CHECK_GT(dim, 0);
  data_.assign(static_cast<size_t>(num_vertices) * dim, 0.0f);
}

EmbeddingStore EmbeddingStore::View(int num_vertices, int dim,
                                    const float* data,
                                    std::shared_ptr<const void> owner) {
  IMR_CHECK_GT(num_vertices, 0);
  IMR_CHECK_GT(dim, 0);
  IMR_CHECK(data != nullptr);
  EmbeddingStore store;
  store.num_vertices_ = num_vertices;
  store.dim_ = dim;
  store.view_ = data;
  store.storage_ = std::move(owner);
  return store;
}

float* EmbeddingStore::Vector(int vertex) {
  IMR_CHECK(view_ == nullptr);  // borrowed storage is read-only
  IMR_CHECK_GE(vertex, 0);
  IMR_CHECK_LT(vertex, num_vertices_);
  return data_.data() + static_cast<size_t>(vertex) * dim_;
}

const float* EmbeddingStore::Vector(int vertex) const {
  IMR_CHECK_GE(vertex, 0);
  IMR_CHECK_LT(vertex, num_vertices_);
  return raw() + static_cast<size_t>(vertex) * dim_;
}

const std::vector<float>& EmbeddingStore::flat() const {
  IMR_CHECK(view_ == nullptr);  // borrowed stores have no backing vector
  return data_;
}

std::vector<float> EmbeddingStore::VectorCopy(int vertex) const {
  const float* row = Vector(vertex);
  return std::vector<float>(row, row + dim_);
}

std::vector<float> EmbeddingStore::MutualRelation(int i, int j) const {
  const float* ui = Vector(i);
  const float* uj = Vector(j);
  std::vector<float> mr(static_cast<size_t>(dim_));
  for (int d = 0; d < dim_; ++d) mr[static_cast<size_t>(d)] = uj[d] - ui[d];
  return mr;
}

double EmbeddingStore::Cosine(int a, int b) const {
  const float* va = Vector(a);
  const float* vb = Vector(b);
  double dot = 0, na = 0, nb = 0;
  for (int d = 0; d < dim_; ++d) {
    dot += static_cast<double>(va[d]) * vb[d];
    na += static_cast<double>(va[d]) * va[d];
    nb += static_cast<double>(vb[d]) * vb[d];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0 ? dot / denom : 0.0;
}

double EmbeddingStore::Cosine(const std::vector<float>& a,
                              const std::vector<float>& b) {
  IMR_CHECK_EQ(a.size(), b.size());
  double dot = 0, na = 0, nb = 0;
  for (size_t d = 0; d < a.size(); ++d) {
    dot += static_cast<double>(a[d]) * b[d];
    na += static_cast<double>(a[d]) * a[d];
    nb += static_cast<double>(b[d]) * b[d];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0 ? dot / denom : 0.0;
}

std::vector<EmbeddingStore::Neighbor> EmbeddingStore::NearestNeighbors(
    int vertex, int k) const {
  std::vector<Neighbor> all;
  all.reserve(static_cast<size_t>(num_vertices_ - 1));
  for (int v = 0; v < num_vertices_; ++v) {
    if (v == vertex) continue;
    all.push_back({v, Cosine(vertex, v)});
  }
  const size_t keep = std::min<size_t>(static_cast<size_t>(k), all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(keep),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      return a.similarity > b.similarity;
                    });
  all.resize(keep);
  return all;
}

void EmbeddingStore::NormalizeRows() {
  for (int v = 0; v < num_vertices_; ++v) {
    float* row = Vector(v);
    double norm = 0;
    for (int d = 0; d < dim_; ++d) norm += static_cast<double>(row[d]) * row[d];
    norm = std::sqrt(norm);
    if (norm <= 0) continue;
    const float inv = static_cast<float>(1.0 / norm);
    for (int d = 0; d < dim_; ++d) row[d] *= inv;
  }
}

util::Status EmbeddingStore::Save(const std::string& path) const {
  util::BinaryWriter writer(path, kEmbeddingMagic, kEmbeddingVersion);
  IMR_RETURN_IF_ERROR(writer.status());
  WriteTo(&writer);
  return writer.Close();
}

util::StatusOr<EmbeddingStore> EmbeddingStore::Load(const std::string& path) {
  util::BinaryReader reader(path, kEmbeddingMagic, kEmbeddingVersion);
  IMR_RETURN_IF_ERROR(reader.status());
  return ReadFrom(&reader);
}

void EmbeddingStore::WriteTo(util::BinaryWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(num_vertices_));
  writer->WriteU32(static_cast<uint32_t>(dim_));
  // Length prefix + raw block == WriteFloatVector bytes, but works for
  // borrowed storage too (no backing std::vector to hand over).
  writer->WriteU64(value_count());
  writer->WriteRawBytes(raw(), value_count() * sizeof(float));
}

util::StatusOr<EmbeddingStore> EmbeddingStore::ReadFrom(
    util::BinaryReader* reader) {
  const int num_vertices = static_cast<int>(reader->ReadU32());
  const int dim = static_cast<int>(reader->ReadU32());
  std::vector<float> data = reader->ReadFloatVector();
  IMR_RETURN_IF_ERROR(reader->status());
  if (num_vertices <= 0 || dim <= 0 ||
      data.size() != static_cast<size_t>(num_vertices) * dim) {
    return util::InvalidArgument("corrupt embedding section in '" +
                                 reader->path() + "'");
  }
  EmbeddingStore store(num_vertices, dim);
  store.data_ = std::move(data);
  return store;
}

void QuantizedEmbeddingStore::QuantizeRow(const float* row, int dim,
                                          int8_t* out, float* scale) {
  float maxabs = 0.0f;
  for (int d = 0; d < dim; ++d) {
    maxabs = std::max(maxabs, std::fabs(row[d]));
  }
  *scale = maxabs / 127.0f;
  if (*scale <= 0.0f) {
    std::fill(out, out + dim, static_cast<int8_t>(0));
    return;
  }
  const float inv = 1.0f / *scale;
  for (int d = 0; d < dim; ++d) {
    const long q = std::lrintf(row[d] * inv);
    out[d] = static_cast<int8_t>(std::clamp(q, -127L, 127L));
  }
}

QuantizedEmbeddingStore QuantizedEmbeddingStore::Quantize(
    const EmbeddingStore& source) {
  QuantizedEmbeddingStore store;
  store.num_vertices_ = source.num_vertices();
  store.dim_ = source.dim();
  store.data_.resize(static_cast<size_t>(store.num_vertices_) * store.dim_);
  store.scales_.resize(static_cast<size_t>(store.num_vertices_));
  for (int v = 0; v < store.num_vertices_; ++v) {
    QuantizeRow(source.Vector(v), store.dim_,
                store.data_.data() + static_cast<size_t>(v) * store.dim_,
                &store.scales_[static_cast<size_t>(v)]);
  }
  return store;
}

QuantizedEmbeddingStore QuantizedEmbeddingStore::View(
    int num_vertices, int dim, const int8_t* data, const float* scales,
    std::shared_ptr<const void> owner) {
  IMR_CHECK_GT(num_vertices, 0);
  IMR_CHECK_GT(dim, 0);
  IMR_CHECK(data != nullptr);
  IMR_CHECK(scales != nullptr);
  QuantizedEmbeddingStore store;
  store.num_vertices_ = num_vertices;
  store.dim_ = dim;
  store.data_view_ = data;
  store.scales_view_ = scales;
  store.storage_ = std::move(owner);
  return store;
}

const int8_t* QuantizedEmbeddingStore::Row(int vertex) const {
  IMR_CHECK_GE(vertex, 0);
  IMR_CHECK_LT(vertex, num_vertices_);
  return raw() + static_cast<size_t>(vertex) * dim_;
}

float QuantizedEmbeddingStore::scale(int vertex) const {
  IMR_CHECK_GE(vertex, 0);
  IMR_CHECK_LT(vertex, num_vertices_);
  return raw_scales()[static_cast<size_t>(vertex)];
}

std::vector<float> QuantizedEmbeddingStore::Dequantize(int vertex) const {
  const int8_t* row = Row(vertex);
  const float s = raw_scales()[static_cast<size_t>(vertex)];
  std::vector<float> out(static_cast<size_t>(dim_));
  for (int d = 0; d < dim_; ++d) {
    out[static_cast<size_t>(d)] = static_cast<float>(row[d]) * s;
  }
  return out;
}

std::vector<float> QuantizedEmbeddingStore::MutualRelation(int i,
                                                           int j) const {
  const int8_t* qi = Row(i);
  const int8_t* qj = Row(j);
  const float si = raw_scales()[static_cast<size_t>(i)];
  const float sj = raw_scales()[static_cast<size_t>(j)];
  std::vector<float> mr(static_cast<size_t>(dim_));
  for (int d = 0; d < dim_; ++d) {
    mr[static_cast<size_t>(d)] =
        static_cast<float>(qj[d]) * sj - static_cast<float>(qi[d]) * si;
  }
  return mr;
}

double QuantizedEmbeddingStore::MaxAbsError(
    const EmbeddingStore& reference) const {
  IMR_CHECK_EQ(num_vertices_, reference.num_vertices());
  IMR_CHECK_EQ(dim_, reference.dim());
  double worst = 0.0;
  for (int v = 0; v < num_vertices_; ++v) {
    const float* row = reference.Vector(v);
    const int8_t* qrow = Row(v);
    const float s = raw_scales()[static_cast<size_t>(v)];
    for (int d = 0; d < dim_; ++d) {
      worst = std::max(
          worst, std::fabs(static_cast<double>(qrow[d]) * s - row[d]));
    }
  }
  return worst;
}

void QuantizedEmbeddingStore::WriteTo(util::BinaryWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(num_vertices_));
  writer->WriteU32(static_cast<uint32_t>(dim_));
  const size_t count = static_cast<size_t>(num_vertices_) * dim_;
  writer->WriteU64(static_cast<uint64_t>(num_vertices_));
  writer->WriteRawBytes(raw_scales(), static_cast<size_t>(num_vertices_) * sizeof(float));
  writer->WriteU64(count);
  writer->WriteRawBytes(raw(), count);
}

util::StatusOr<QuantizedEmbeddingStore> QuantizedEmbeddingStore::ReadFrom(
    util::BinaryReader* reader) {
  const int num_vertices = static_cast<int>(reader->ReadU32());
  const int dim = static_cast<int>(reader->ReadU32());
  std::vector<float> scales = reader->ReadFloatVector();
  std::vector<int8_t> data = reader->ReadByteVector();
  IMR_RETURN_IF_ERROR(reader->status());
  if (num_vertices <= 0 || dim <= 0 ||
      scales.size() != static_cast<size_t>(num_vertices) ||
      data.size() != static_cast<size_t>(num_vertices) * dim) {
    return util::InvalidArgument("corrupt quantized embedding section in '" +
                                 reader->path() + "'");
  }
  QuantizedEmbeddingStore store;
  store.num_vertices_ = num_vertices;
  store.dim_ = dim;
  store.scales_ = std::move(scales);
  store.data_ = std::move(data);
  return store;
}

}  // namespace imr::graph
