#include "graph/embedding_store.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/serialization.h"

namespace imr::graph {

namespace {
constexpr uint32_t kEmbeddingMagic = 0x494D5245;  // "IMRE"
constexpr uint32_t kEmbeddingVersion = 1;
}  // namespace

EmbeddingStore::EmbeddingStore(int num_vertices, int dim)
    : num_vertices_(num_vertices), dim_(dim) {
  IMR_CHECK_GT(num_vertices, 0);
  IMR_CHECK_GT(dim, 0);
  data_.assign(static_cast<size_t>(num_vertices) * dim, 0.0f);
}

float* EmbeddingStore::Vector(int vertex) {
  IMR_CHECK_GE(vertex, 0);
  IMR_CHECK_LT(vertex, num_vertices_);
  return data_.data() + static_cast<size_t>(vertex) * dim_;
}

const float* EmbeddingStore::Vector(int vertex) const {
  IMR_CHECK_GE(vertex, 0);
  IMR_CHECK_LT(vertex, num_vertices_);
  return data_.data() + static_cast<size_t>(vertex) * dim_;
}

std::vector<float> EmbeddingStore::VectorCopy(int vertex) const {
  const float* row = Vector(vertex);
  return std::vector<float>(row, row + dim_);
}

std::vector<float> EmbeddingStore::MutualRelation(int i, int j) const {
  const float* ui = Vector(i);
  const float* uj = Vector(j);
  std::vector<float> mr(static_cast<size_t>(dim_));
  for (int d = 0; d < dim_; ++d) mr[static_cast<size_t>(d)] = uj[d] - ui[d];
  return mr;
}

double EmbeddingStore::Cosine(int a, int b) const {
  const float* va = Vector(a);
  const float* vb = Vector(b);
  double dot = 0, na = 0, nb = 0;
  for (int d = 0; d < dim_; ++d) {
    dot += static_cast<double>(va[d]) * vb[d];
    na += static_cast<double>(va[d]) * va[d];
    nb += static_cast<double>(vb[d]) * vb[d];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0 ? dot / denom : 0.0;
}

double EmbeddingStore::Cosine(const std::vector<float>& a,
                              const std::vector<float>& b) {
  IMR_CHECK_EQ(a.size(), b.size());
  double dot = 0, na = 0, nb = 0;
  for (size_t d = 0; d < a.size(); ++d) {
    dot += static_cast<double>(a[d]) * b[d];
    na += static_cast<double>(a[d]) * a[d];
    nb += static_cast<double>(b[d]) * b[d];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0 ? dot / denom : 0.0;
}

std::vector<EmbeddingStore::Neighbor> EmbeddingStore::NearestNeighbors(
    int vertex, int k) const {
  std::vector<Neighbor> all;
  all.reserve(static_cast<size_t>(num_vertices_ - 1));
  for (int v = 0; v < num_vertices_; ++v) {
    if (v == vertex) continue;
    all.push_back({v, Cosine(vertex, v)});
  }
  const size_t keep = std::min<size_t>(static_cast<size_t>(k), all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(keep),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      return a.similarity > b.similarity;
                    });
  all.resize(keep);
  return all;
}

void EmbeddingStore::NormalizeRows() {
  for (int v = 0; v < num_vertices_; ++v) {
    float* row = Vector(v);
    double norm = 0;
    for (int d = 0; d < dim_; ++d) norm += static_cast<double>(row[d]) * row[d];
    norm = std::sqrt(norm);
    if (norm <= 0) continue;
    const float inv = static_cast<float>(1.0 / norm);
    for (int d = 0; d < dim_; ++d) row[d] *= inv;
  }
}

util::Status EmbeddingStore::Save(const std::string& path) const {
  util::BinaryWriter writer(path, kEmbeddingMagic, kEmbeddingVersion);
  IMR_RETURN_IF_ERROR(writer.status());
  WriteTo(&writer);
  return writer.Close();
}

util::StatusOr<EmbeddingStore> EmbeddingStore::Load(const std::string& path) {
  util::BinaryReader reader(path, kEmbeddingMagic, kEmbeddingVersion);
  IMR_RETURN_IF_ERROR(reader.status());
  return ReadFrom(&reader);
}

void EmbeddingStore::WriteTo(util::BinaryWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(num_vertices_));
  writer->WriteU32(static_cast<uint32_t>(dim_));
  writer->WriteFloatVector(data_);
}

util::StatusOr<EmbeddingStore> EmbeddingStore::ReadFrom(
    util::BinaryReader* reader) {
  const int num_vertices = static_cast<int>(reader->ReadU32());
  const int dim = static_cast<int>(reader->ReadU32());
  std::vector<float> data = reader->ReadFloatVector();
  IMR_RETURN_IF_ERROR(reader->status());
  if (num_vertices <= 0 || dim <= 0 ||
      data.size() != static_cast<size_t>(num_vertices) * dim) {
    return util::InvalidArgument("corrupt embedding section in '" +
                                 reader->path() + "'");
  }
  EmbeddingStore store(num_vertices, dim);
  store.data_ = std::move(data);
  return store;
}

}  // namespace imr::graph
