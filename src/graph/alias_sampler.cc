#include "graph/alias_sampler.h"

#include "util/logging.h"

namespace imr::graph {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  IMR_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    IMR_CHECK_GE(w, 0.0);
    total += w;
  }
  IMR_CHECK_GT(total, 0.0);

  prob_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (size_t i : small) {  // numerical leftovers
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

size_t AliasSampler::Sample(util::Rng* rng) const {
  const size_t column = rng->UniformInt(prob_.size());
  return rng->Uniform() < prob_[column] ? column : alias_[column];
}

}  // namespace imr::graph
