// Entity proximity graph (paper Section III-A.1): vertices are entities,
// an edge (i, j) exists when the pair co-occurs in at least
// `min_cooccurrence` unlabeled sentences, and its weight is
//     w_ij = log(co_ij) / log(max_kl co_kl).
#ifndef IMR_GRAPH_PROXIMITY_GRAPH_H_
#define IMR_GRAPH_PROXIMITY_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "text/sentence.h"
#include "util/status.h"

namespace imr::graph {

struct Edge {
  int32_t source = 0;
  int32_t target = 0;
  double weight = 0.0;
  int64_t cooccurrence = 0;
};

class ProximityGraph {
 public:
  /// `num_vertices` is the entity-id space; sentences reference entity ids
  /// in [0, num_vertices).
  explicit ProximityGraph(int num_vertices);

  /// Counts one co-occurrence (order-insensitive).
  void AddCooccurrence(int64_t a, int64_t b);

  /// Counts every sentence's (head, tail) pair.
  void AddCorpus(const std::vector<text::Sentence>& sentences);

  /// Materialises edges for pairs with count >= min_cooccurrence and
  /// computes the log-normalised weights. Must be called after counting
  /// and before the accessors below; may be called again after more counts.
  void Finalize(int min_cooccurrence = 2);

  int num_vertices() const { return num_vertices_; }
  /// Undirected edges (each stored once, source < target).
  const std::vector<Edge>& edges() const;
  /// Weighted degree of each vertex.
  const std::vector<double>& degrees() const;
  /// Raw co-occurrence count of a pair (0 when never seen).
  int64_t CooccurrenceCount(int64_t a, int64_t b) const;
  int64_t max_cooccurrence() const { return max_count_; }

  /// Neighbours of a vertex in the finalised graph.
  std::vector<int> Neighbors(int vertex) const;

 private:
  static uint64_t Key(int64_t a, int64_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) |
           static_cast<uint64_t>(b & 0xffffffff);
  }

  int num_vertices_;
  bool finalized_ = false;
  std::unordered_map<uint64_t, int64_t> counts_;
  int64_t max_count_ = 0;
  std::vector<Edge> edges_;
  std::vector<double> degrees_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace imr::graph

#endif  // IMR_GRAPH_PROXIMITY_GRAPH_H_
