// LINE network embedding (Tang et al. 2015), as used by the paper to embed
// the entity proximity graph (Section III-A.2).
//
//  * First-order objective:  O1 = -sum_(i,j) w_ij log sigma(u_i . u_j)
//  * Second-order objective: O2 with context vectors and K negative samples
//    from P_n(v) ~ degree(v)^0.75.
//
// Training samples edges proportionally to their weight via an alias table
// and applies asynchronous SGD with a linearly decaying learning rate. The
// final entity vector concatenates the (L2-normalised) first- and second-
// order embeddings.
#ifndef IMR_GRAPH_LINE_H_
#define IMR_GRAPH_LINE_H_

#include <cstdint>

#include "graph/embedding_store.h"
#include "graph/proximity_graph.h"

namespace imr::graph {

struct LineConfig {
  int dim = 128;              // total output dim (paper ke = 128)
  bool first_order = true;    // train the O1 half
  bool second_order = true;   // train the O2 half
  int negative_samples = 5;   // K
  int64_t samples_per_edge = 400;  // total SGD samples = edges * this
  float initial_lr = 0.025f;
  double noise_power = 0.75;  // P_n(v) ~ deg^noise_power
  uint64_t seed = 97;
  // Hogwild worker count; 0 defers to util::GlobalThreads(). At 1 the
  // original sequential SGD path (and rng stream) runs bit-exactly; at N>1
  // edge sampling shards across workers with per-worker rngs and lock-free
  // updates — quality-equivalent but not bit-reproducible across counts.
  int threads = 0;
};

/// Trains LINE on a finalised proximity graph. When both orders are on,
/// each gets dim/2 dimensions; otherwise the single order gets all of dim.
/// Vertices with no edges keep small random vectors (the paper notes this
/// failure mode in its future-work discussion).
EmbeddingStore TrainLine(const ProximityGraph& graph,
                         const LineConfig& config);

}  // namespace imr::graph

#endif  // IMR_GRAPH_LINE_H_
