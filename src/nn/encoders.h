// Sentence encoders used by the RE models: PCNN (Zeng et al. 2015), plain
// CNN (Zeng et al. 2014), and a bidirectional GRU with optional word-level
// attention (BGWA-style, Jat et al. 2018). All encoders share the same
// input features and expose one virtual Encode() so the implicit-mutual-
// relation fusion can wrap any of them (the paper's "flexibility" claim).
#ifndef IMR_NN_ENCODERS_H_
#define IMR_NN_ENCODERS_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace imr::nn {

/// Features of one sentence, produced by the text pipeline.
struct EncoderInput {
  std::vector<int> word_ids;       // token ids, length T >= 1
  std::vector<int> head_offsets;   // relative-position ids w.r.t. head
  std::vector<int> tail_offsets;   // relative-position ids w.r.t. tail
  int head_index = 0;              // token index of the head mention
  int tail_index = 0;              // token index of the tail mention
};

/// Hyper-parameters shared by the encoders (paper Table III defaults).
struct EncoderConfig {
  int vocab_size = 0;       // required
  int word_dim = 50;        // kw
  int position_dim = 5;     // kp
  int max_position = 60;    // offsets clipped to [-max, max]
  int window = 3;           // l
  int filters = 230;        // k (CNN/PCNN); GRU hidden = filters / 2
  float dropout = 0.5f;     // p
  // Word-level dropout: during training each token id is replaced by <unk>
  // with this probability. Discourages memorising bag-specific word
  // combinations, which dominates small distant-supervision corpora.
  float word_dropout = 0.0f;
};

class SentenceEncoder : public Module {
 public:
  ~SentenceEncoder() override = default;

  /// Encodes one sentence into a fixed-size vector. `rng` drives dropout
  /// and is only touched when training() is true.
  virtual tensor::Tensor Encode(const EncoderInput& input,
                                util::Rng* rng) const = 0;

  /// Dimension of the encoded vector.
  virtual int output_dim() const = 0;
};

/// Shared word + position embedding front-end: [T x (kw + 2*kp)].
class FeatureEmbedder : public Module {
 public:
  FeatureEmbedder(const EncoderConfig& config, util::Rng* rng);

  /// `rng` is only used for word dropout while training() is true (pass
  /// nullptr to disable).
  tensor::Tensor Embed(const EncoderInput& input, util::Rng* rng) const;
  int feature_dim() const;
  Embedding* word_embedding() { return word_.get(); }

 private:
  float word_dropout_;
  int position_vocab_;
  std::unique_ptr<Embedding> word_;
  std::unique_ptr<Embedding> pos_head_;
  std::unique_ptr<Embedding> pos_tail_;
};

/// Piecewise CNN: conv over windows, 3-segment max pooling split at the
/// entity positions, tanh, dropout. Output dim = 3 * filters.
class PcnnEncoder : public SentenceEncoder {
 public:
  PcnnEncoder(const EncoderConfig& config, util::Rng* rng);

  tensor::Tensor Encode(const EncoderInput& input,
                        util::Rng* rng) const override;
  int output_dim() const override { return 3 * config_.filters; }

 private:
  EncoderConfig config_;
  std::unique_ptr<FeatureEmbedder> embedder_;
  tensor::Tensor conv_weight_;
  tensor::Tensor conv_bias_;
};

/// Plain CNN: conv + single max pooling. Output dim = filters.
class CnnEncoder : public SentenceEncoder {
 public:
  CnnEncoder(const EncoderConfig& config, util::Rng* rng);

  tensor::Tensor Encode(const EncoderInput& input,
                        util::Rng* rng) const override;
  int output_dim() const override { return config_.filters; }

 private:
  EncoderConfig config_;
  std::unique_ptr<FeatureEmbedder> embedder_;
  tensor::Tensor conv_weight_;
  tensor::Tensor conv_bias_;
};

/// Bidirectional GRU; the sentence vector is a max over time of the
/// concatenated directions, or a word-attention weighted sum when
/// `word_attention` is set (BGWA). Output dim = 2 * hidden.
class GruEncoder : public SentenceEncoder {
 public:
  GruEncoder(const EncoderConfig& config, bool word_attention,
             util::Rng* rng);

  tensor::Tensor Encode(const EncoderInput& input,
                        util::Rng* rng) const override;
  int output_dim() const override { return 2 * hidden_; }

 private:
  // Runs one direction; returns per-step hidden states [T x H].
  tensor::Tensor RunDirection(const tensor::Tensor& features, bool reverse,
                              const tensor::Tensor& wx,
                              const tensor::Tensor& bx,
                              const tensor::Tensor& u_zr,
                              const tensor::Tensor& u_n) const;

  EncoderConfig config_;
  int hidden_;
  bool word_attention_;
  std::unique_ptr<FeatureEmbedder> embedder_;
  // Per direction: input projection [D x 3H], bias [3H], recurrent
  // [H x 2H] (update/reset) and [H x H] (candidate).
  tensor::Tensor fwd_wx_, fwd_bx_, fwd_u_zr_, fwd_u_n_;
  tensor::Tensor bwd_wx_, bwd_bx_, bwd_u_zr_, bwd_u_n_;
  // Word attention: projection + query vector.
  std::unique_ptr<Linear> attn_proj_;
  tensor::Tensor attn_query_;
};

/// Factory by name: "pcnn", "cnn", "gru", "bgwa" (gru + word attention).
std::unique_ptr<SentenceEncoder> MakeEncoder(const std::string& kind,
                                             const EncoderConfig& config,
                                             util::Rng* rng);

}  // namespace imr::nn

#endif  // IMR_NN_ENCODERS_H_
