#include "nn/gradcheck.h"

#include <cmath>

namespace imr::nn {

GradCheckResult CheckModuleGradients(
    Module* module, const std::function<tensor::Tensor()>& loss_fn,
    double eps, int max_entries_per_param) {
  module->ZeroGrad();
  tensor::Tensor loss = loss_fn();
  loss.Backward();

  // Snapshot analytic gradients (Step() is never called here).
  auto params = module->Parameters();
  GradCheckResult result;
  for (NamedParameter& p : params) {
    std::vector<float> analytic = p.tensor.grad();
    if (analytic.empty()) analytic.assign(p.tensor.size(), 0.0f);
    const size_t n = p.tensor.size();
    const size_t stride =
        n <= static_cast<size_t>(max_entries_per_param)
            ? 1
            : n / static_cast<size_t>(max_entries_per_param);
    for (size_t i = 0; i < n; i += stride) {
      auto& values = p.tensor.mutable_data();
      const float saved = values[i];
      values[i] = saved + static_cast<float>(eps);
      const double up = loss_fn().item();
      values[i] = saved - static_cast<float>(eps);
      const double down = loss_fn().item();
      values[i] = saved;
      const double numeric = (up - down) / (2 * eps);
      const double diff = std::abs(numeric - analytic[i]);
      if (diff > result.max_abs_diff) {
        result.max_abs_diff = diff;
        result.worst_parameter = p.name;
        result.worst_index = i;
      }
    }
  }
  return result;
}

}  // namespace imr::nn
