// Basic neural layers: Linear and Embedding.
#ifndef IMR_NN_LAYERS_H_
#define IMR_NN_LAYERS_H_

#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace imr::nn {

/// y = x W + b, with W: [in x out], b: [out].
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, util::Rng* rng);

  /// x: [N x in] or rank-1 [in]; returns [N x out] or rank-1 [out].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  /// Tanh(Forward(x)) through the fused tensor::AffineTanh kernel:
  /// bit-identical to the composition, one node instead of three.
  tensor::Tensor ForwardTanh(const tensor::Tensor& x) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const tensor::Tensor& weight() const { return weight_; }
  const tensor::Tensor& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  tensor::Tensor weight_;
  tensor::Tensor bias_;
};

/// Trainable lookup table [vocab x dim].
class Embedding : public Module {
 public:
  Embedding(int vocab_size, int dim, util::Rng* rng, float init_bound = 0.0f);

  /// Returns [indices.size() x dim].
  tensor::Tensor Forward(const std::vector<int>& indices) const;

  /// Overwrites the table rows with pre-trained values [vocab x dim];
  /// used to load LINE entity embeddings. Copies element-wise into the
  /// existing storage so the pooled buffer and its data pointer survive.
  [[nodiscard]] util::Status SetWeights(const std::vector<float>& values);

  int vocab_size() const { return vocab_size_; }
  int dim() const { return dim_; }
  const tensor::Tensor& table() const { return table_; }

 private:
  int vocab_size_;
  int dim_;
  tensor::Tensor table_;
};

}  // namespace imr::nn

#endif  // IMR_NN_LAYERS_H_
