// Basic neural layers: Linear and Embedding.
#ifndef IMR_NN_LAYERS_H_
#define IMR_NN_LAYERS_H_

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace imr::nn {

/// y = x W + b, with W: [in x out], b: [out].
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, util::Rng* rng);

  /// x: [N x in] or rank-1 [in]; returns [N x out] or rank-1 [out].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  /// Tanh(Forward(x)) through the fused tensor::AffineTanh kernel:
  /// bit-identical to the composition, one node instead of three.
  tensor::Tensor ForwardTanh(const tensor::Tensor& x) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const tensor::Tensor& weight() const { return weight_; }
  const tensor::Tensor& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  tensor::Tensor weight_;
  tensor::Tensor bias_;
};

/// Serving-only int8 shadow of a Linear: weights are quantized once per
/// OUTPUT channel (symmetric scale maxabs/127 over W[:, out]) and packed
/// transposed ([out x in]) for the dispatch table's gemm_s8s32 kernel.
/// Forward quantizes each activation row with its own symmetric scale,
/// runs the int8 GEMM accumulating in int32 (bit-identical across SIMD
/// backends — pure integer arithmetic), and dequantizes with
/// acc * s_x * s_w + bias at the output. No autograd node is created;
/// construction from a Linear under training is the caller's bug.
class QuantizedLinear {
 public:
  explicit QuantizedLinear(const Linear& source);

  /// x: [N x in] or rank-1 [in]; returns [N x out] or rank-1 [out].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  std::vector<int8_t> weight_t_;    // [out x in], W^T packed row-major
  std::vector<float> weight_scales_;  // per output channel
  std::vector<float> bias_;
};

/// Trainable lookup table [vocab x dim].
class Embedding : public Module {
 public:
  Embedding(int vocab_size, int dim, util::Rng* rng, float init_bound = 0.0f);

  /// Returns [indices.size() x dim].
  tensor::Tensor Forward(const std::vector<int>& indices) const;

  /// Overwrites the table rows with pre-trained values [vocab x dim];
  /// used to load LINE entity embeddings. Copies element-wise into the
  /// existing storage so the pooled buffer and its data pointer survive.
  [[nodiscard]] util::Status SetWeights(const std::vector<float>& values);

  int vocab_size() const { return vocab_size_; }
  int dim() const { return dim_; }
  const tensor::Tensor& table() const { return table_; }

 private:
  int vocab_size_;
  int dim_;
  tensor::Tensor table_;
};

}  // namespace imr::nn

#endif  // IMR_NN_LAYERS_H_
