// Sentence-level selective attention over a bag of sentence encodings
// (Lin et al. 2016): alpha_j = softmax_j(x_j A r), bag = sum_j alpha_j x_j,
// where A is a learned diagonal matrix and r a per-relation query vector.
#ifndef IMR_NN_ATTENTION_H_
#define IMR_NN_ATTENTION_H_

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"

namespace imr::nn {

class SelectiveAttention : public Module {
 public:
  /// `dim` is the sentence-encoding width, `num_relations` the number of
  /// query vectors.
  SelectiveAttention(int dim, int num_relations, util::Rng* rng);

  /// Attention-weighted bag representation for a query relation.
  /// x: [N x dim] sentence encodings; returns [dim].
  tensor::Tensor BagRepresentation(const tensor::Tensor& x,
                                   int relation) const;

  /// The attention weights themselves (softmax over sentences), useful for
  /// inspection and tests. Returns [N].
  tensor::Tensor Weights(const tensor::Tensor& x, int relation) const;

  int dim() const { return dim_; }
  int num_relations() const { return num_relations_; }

 private:
  int dim_;
  int num_relations_;
  tensor::Tensor diag_;  // A, stored as its diagonal [dim]
  std::unique_ptr<Embedding> queries_;
};

}  // namespace imr::nn

#endif  // IMR_NN_ATTENTION_H_
