#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "nn/init.h"
#include "tensor/simd/dispatch.h"
#include "util/logging.h"

namespace imr::nn {

Linear::Linear(int in_features, int out_features, util::Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  IMR_CHECK_GT(in_features, 0);
  IMR_CHECK_GT(out_features, 0);
  weight_ = RegisterParameter(
      "weight", XavierInit({in_features, out_features}, rng));
  bias_ = RegisterParameter("bias", tensor::Tensor::Zeros({out_features}));
}

tensor::Tensor Linear::Forward(const tensor::Tensor& x) const {
  tensor::Tensor y = tensor::MatMul(x, weight_);
  if (y.rank() == 1) return tensor::Add(y, bias_);
  return tensor::AddRowVector(y, bias_);
}

tensor::Tensor Linear::ForwardTanh(const tensor::Tensor& x) const {
  return tensor::AffineTanh(x, weight_, bias_);
}

Embedding::Embedding(int vocab_size, int dim, util::Rng* rng,
                     float init_bound)
    : vocab_size_(vocab_size), dim_(dim) {
  IMR_CHECK_GT(vocab_size, 0);
  IMR_CHECK_GT(dim, 0);
  const float bound =
      init_bound > 0.0f ? init_bound
                        : std::sqrt(6.0f / static_cast<float>(dim));
  table_ =
      RegisterParameter("table", UniformInit({vocab_size, dim}, bound, rng));
  // Gradients only ever arrive through GatherRows' backward, so the table
  // qualifies for row-sparse gradient handling (optimizers and ZeroGrad
  // walk touched rows only; see tensor.h).
  table_.set_row_sparse_grad(true);
}

tensor::Tensor Embedding::Forward(const std::vector<int>& indices) const {
  return tensor::GatherRows(table_, indices);
}

util::Status Embedding::SetWeights(const std::vector<float>& values) {
  if (values.size() != table_.size()) {
    return util::InvalidArgument(
        "embedding weight size mismatch: expected " +
        std::to_string(table_.size()) + ", got " +
        std::to_string(values.size()));
  }
  // Copy element-wise into the existing storage: vector assignment would
  // reallocate, dropping the pooled buffer's capacity and invalidating the
  // data-pointer stability a warmed-up training step relies on.
  auto& data = table_.mutable_data();
  std::copy(values.begin(), values.end(), data.begin());
  return util::OkStatus();
}

namespace {

// Round-to-nearest saturating int8 quantization of n floats with a shared
// symmetric scale. Returns the scale (maxabs / 127, 0 for all-zero input).
float QuantizeRow(const float* values, int n, int8_t* out) {
  float maxabs = 0.0f;
  for (int i = 0; i < n; ++i) maxabs = std::max(maxabs, std::fabs(values[i]));
  const float scale = maxabs / 127.0f;
  if (scale <= 0.0f) {
    std::fill(out, out + n, static_cast<int8_t>(0));
    return 0.0f;
  }
  const float inv = 1.0f / scale;
  for (int i = 0; i < n; ++i) {
    const long q = std::lrintf(values[i] * inv);
    out[i] = static_cast<int8_t>(std::clamp(q, -127L, 127L));
  }
  return scale;
}

}  // namespace

QuantizedLinear::QuantizedLinear(const Linear& source)
    : in_features_(source.in_features()),
      out_features_(source.out_features()) {
  // W is stored [in x out]; quantize per OUTPUT channel (a column of W)
  // and pack transposed so the GEMM kernel streams contiguous rows.
  const std::vector<float>& w = source.weight().data();
  weight_t_.resize(static_cast<size_t>(out_features_) * in_features_);
  weight_scales_.resize(static_cast<size_t>(out_features_));
  std::vector<float> column(static_cast<size_t>(in_features_));
  for (int o = 0; o < out_features_; ++o) {
    for (int i = 0; i < in_features_; ++i) {
      column[static_cast<size_t>(i)] =
          w[static_cast<size_t>(i) * out_features_ + o];
    }
    weight_scales_[static_cast<size_t>(o)] = QuantizeRow(
        column.data(), in_features_,
        weight_t_.data() + static_cast<size_t>(o) * in_features_);
  }
  const std::vector<float>& b = source.bias().data();
  bias_.assign(b.begin(), b.end());
}

tensor::Tensor QuantizedLinear::Forward(const tensor::Tensor& x) const {
  IMR_CHECK(x.rank() == 1 || x.rank() == 2);
  const int rows = x.rank() == 1 ? 1 : x.shape()[0];
  const int cols = x.rank() == 1 ? x.shape()[0] : x.shape()[1];
  IMR_CHECK_EQ(cols, in_features_);

  const float* xv = x.data().data();
  std::vector<int8_t> qx(static_cast<size_t>(rows) * in_features_);
  std::vector<float> x_scales(static_cast<size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    x_scales[static_cast<size_t>(r)] = QuantizeRow(
        xv + static_cast<size_t>(r) * in_features_, in_features_,
        qx.data() + static_cast<size_t>(r) * in_features_);
  }

  std::vector<int32_t> acc(static_cast<size_t>(rows) * out_features_);
  tensor::simd::Active().gemm_s8s32(qx.data(), weight_t_.data(), acc.data(),
                                    rows, in_features_, out_features_);

  std::vector<float> out(static_cast<size_t>(rows) * out_features_);
  for (int r = 0; r < rows; ++r) {
    const float sx = x_scales[static_cast<size_t>(r)];
    const int32_t* arow = acc.data() + static_cast<size_t>(r) * out_features_;
    float* orow = out.data() + static_cast<size_t>(r) * out_features_;
    for (int o = 0; o < out_features_; ++o) {
      orow[o] = static_cast<float>(arow[o]) * sx *
                    weight_scales_[static_cast<size_t>(o)] +
                bias_[static_cast<size_t>(o)];
    }
  }
  if (x.rank() == 1) {
    return tensor::Tensor::FromData({out_features_}, std::move(out));
  }
  return tensor::Tensor::FromData({rows, out_features_}, std::move(out));
}

}  // namespace imr::nn
