#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "nn/init.h"
#include "util/logging.h"

namespace imr::nn {

Linear::Linear(int in_features, int out_features, util::Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  IMR_CHECK_GT(in_features, 0);
  IMR_CHECK_GT(out_features, 0);
  weight_ = RegisterParameter(
      "weight", XavierInit({in_features, out_features}, rng));
  bias_ = RegisterParameter("bias", tensor::Tensor::Zeros({out_features}));
}

tensor::Tensor Linear::Forward(const tensor::Tensor& x) const {
  tensor::Tensor y = tensor::MatMul(x, weight_);
  if (y.rank() == 1) return tensor::Add(y, bias_);
  return tensor::AddRowVector(y, bias_);
}

tensor::Tensor Linear::ForwardTanh(const tensor::Tensor& x) const {
  return tensor::AffineTanh(x, weight_, bias_);
}

Embedding::Embedding(int vocab_size, int dim, util::Rng* rng,
                     float init_bound)
    : vocab_size_(vocab_size), dim_(dim) {
  IMR_CHECK_GT(vocab_size, 0);
  IMR_CHECK_GT(dim, 0);
  const float bound =
      init_bound > 0.0f ? init_bound
                        : std::sqrt(6.0f / static_cast<float>(dim));
  table_ =
      RegisterParameter("table", UniformInit({vocab_size, dim}, bound, rng));
  // Gradients only ever arrive through GatherRows' backward, so the table
  // qualifies for row-sparse gradient handling (optimizers and ZeroGrad
  // walk touched rows only; see tensor.h).
  table_.set_row_sparse_grad(true);
}

tensor::Tensor Embedding::Forward(const std::vector<int>& indices) const {
  return tensor::GatherRows(table_, indices);
}

util::Status Embedding::SetWeights(const std::vector<float>& values) {
  if (values.size() != table_.size()) {
    return util::InvalidArgument(
        "embedding weight size mismatch: expected " +
        std::to_string(table_.size()) + ", got " +
        std::to_string(values.size()));
  }
  // Copy element-wise into the existing storage: vector assignment would
  // reallocate, dropping the pooled buffer's capacity and invalidating the
  // data-pointer stability a warmed-up training step relies on.
  auto& data = table_.mutable_data();
  std::copy(values.begin(), values.end(), data.begin());
  return util::OkStatus();
}

}  // namespace imr::nn
