#include "nn/attention.h"

#include "nn/init.h"
#include "util/logging.h"

namespace imr::nn {

using tensor::Tensor;

SelectiveAttention::SelectiveAttention(int dim, int num_relations,
                                       util::Rng* rng)
    : dim_(dim), num_relations_(num_relations) {
  IMR_CHECK_GT(dim, 0);
  IMR_CHECK_GT(num_relations, 0);
  // A initialised to identity so attention starts as plain dot-product
  // similarity with the query.
  diag_ = RegisterParameter("diag", tensor::Tensor::Full({dim}, 1.0f));
  queries_ = std::make_unique<Embedding>(num_relations, dim, rng);
  RegisterChild("queries", queries_.get());
}

Tensor SelectiveAttention::Weights(const Tensor& x, int relation) const {
  IMR_CHECK_GE(relation, 0);
  IMR_CHECK_LT(relation, num_relations_);
  Tensor query = tensor::Reshape(queries_->Forward({relation}), {dim_});
  // q_j = x_j A r with diagonal A == x_j . (diag * r).
  Tensor scores = tensor::RowwiseDot(x, tensor::Mul(diag_, query));
  return tensor::Softmax(scores);
}

Tensor SelectiveAttention::BagRepresentation(const Tensor& x,
                                             int relation) const {
  Tensor alpha = Weights(x, relation);
  return tensor::WeightedSumRows(x, alpha);
}

}  // namespace imr::nn
