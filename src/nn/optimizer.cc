#include "nn/optimizer.h"

#include <cmath>

namespace imr::nn {

Optimizer::Optimizer(Module* module, float learning_rate)
    : learning_rate_(learning_rate) {
  for (NamedParameter& p : module->Parameters())
    params_.push_back(p.tensor);
}

Sgd::Sgd(Module* module, float learning_rate, float weight_decay,
         float clip_norm)
    : Optimizer(module, learning_rate),
      weight_decay_(weight_decay),
      clip_norm_(clip_norm) {}

void Sgd::Step() {
  float scale = 1.0f;
  if (clip_norm_ > 0.0f) {
    double total = 0.0;
    for (auto& p : params_) {
      const auto& g = p.grad();
      for (float gv : g) total += static_cast<double>(gv) * gv;
    }
    const double norm = std::sqrt(total);
    if (norm > clip_norm_) scale = static_cast<float>(clip_norm_ / norm);
  }
  for (auto& p : params_) {
    auto& values = p.mutable_data();
    const auto& g = p.grad();
    if (g.empty()) continue;
    for (size_t i = 0; i < values.size(); ++i) {
      float grad = g[i] * scale;
      if (weight_decay_ > 0.0f) grad += weight_decay_ * values[i];
      values[i] -= learning_rate_ * grad;
    }
    p.ZeroGrad();
  }
}

Adagrad::Adagrad(Module* module, float learning_rate, float epsilon)
    : Optimizer(module, learning_rate), epsilon_(epsilon) {
  accum_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i)
    accum_[i].assign(params_[i].size(), 0.0f);
}

void Adagrad::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto& values = p.mutable_data();
    const auto& g = p.grad();
    if (g.empty()) continue;
    auto& acc = accum_[i];
    for (size_t j = 0; j < values.size(); ++j) {
      acc[j] += g[j] * g[j];
      values[j] -= learning_rate_ * g[j] /
                   (std::sqrt(acc[j]) + epsilon_);
    }
    p.ZeroGrad();
  }
}

Adam::Adam(Module* module, float learning_rate, float beta1, float beta2,
           float epsilon)
    : Optimizer(module, learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].size(), 0.0f);
    v_[i].assign(params_[i].size(), 0.0f);
  }
}

void Adam::Step() {
  ++step_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto& values = p.mutable_data();
    const auto& g = p.grad();
    if (g.empty()) continue;
    for (size_t j = 0; j < values.size(); ++j) {
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g[j];
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g[j] * g[j];
      const float m_hat = m_[i][j] / bias1;
      const float v_hat = v_[i][j] / bias2;
      values[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
    p.ZeroGrad();
  }
}

}  // namespace imr::nn
