#include "nn/optimizer.h"

#include <cmath>

namespace imr::nn {

namespace {

// In-place AXPY-style parameter updates. Raw __restrict pointer loops the
// compiler can vectorise; the float expressions keep the exact association
// and operation order of the original element loops, so the fused updates
// are bit-identical to the code they replace.

void SgdUpdateInPlace(float* __restrict v, const float* __restrict g,
                      size_t n, float lr, float scale, float weight_decay) {
  if (weight_decay > 0.0f) {
    for (size_t i = 0; i < n; ++i) {
      const float grad = g[i] * scale + weight_decay * v[i];
      v[i] -= lr * grad;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      v[i] -= lr * (g[i] * scale);
    }
  }
}

void AdagradUpdateInPlace(float* __restrict v, float* __restrict acc,
                          const float* __restrict g, size_t n, float lr,
                          float epsilon) {
  for (size_t i = 0; i < n; ++i) {
    acc[i] += g[i] * g[i];
    v[i] -= lr * g[i] / (std::sqrt(acc[i]) + epsilon);
  }
}

void AdamUpdateInPlace(float* __restrict v, float* __restrict m,
                       float* __restrict s, const float* __restrict g,
                       size_t n, float lr, float beta1, float beta2,
                       float bias1, float bias2, float epsilon) {
  for (size_t i = 0; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
    s[i] = beta2 * s[i] + (1.0f - beta2) * g[i] * g[i];
    const float m_hat = m[i] / bias1;
    const float v_hat = s[i] / bias2;
    v[i] -= lr * m_hat / (std::sqrt(v_hat) + epsilon);
  }
}

}  // namespace

Optimizer::Optimizer(Module* module, float learning_rate)
    : learning_rate_(learning_rate) {
  for (NamedParameter& p : module->Parameters())
    params_.push_back(p.tensor);
}

Sgd::Sgd(Module* module, float learning_rate, float weight_decay,
         float clip_norm)
    : Optimizer(module, learning_rate),
      weight_decay_(weight_decay),
      clip_norm_(clip_norm) {}

void Sgd::Step() {
  float scale = 1.0f;
  if (clip_norm_ > 0.0f) {
    double total = 0.0;
    for (auto& p : params_) {
      const auto& g = p.grad();
      for (float gv : g) total += static_cast<double>(gv) * gv;
    }
    const double norm = std::sqrt(total);
    if (norm > clip_norm_) scale = static_cast<float>(clip_norm_ / norm);
  }
  for (auto& p : params_) {
    auto& values = p.mutable_data();
    const auto& g = p.grad();
    if (g.empty()) continue;
    SgdUpdateInPlace(values.data(), g.data(), values.size(), learning_rate_,
                     scale, weight_decay_);
    p.ZeroGrad();
  }
}

Adagrad::Adagrad(Module* module, float learning_rate, float epsilon)
    : Optimizer(module, learning_rate), epsilon_(epsilon) {
  accum_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i)
    accum_[i].assign(params_[i].size(), 0.0f);
}

void Adagrad::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto& values = p.mutable_data();
    const auto& g = p.grad();
    if (g.empty()) continue;
    AdagradUpdateInPlace(values.data(), accum_[i].data(), g.data(),
                         values.size(), learning_rate_, epsilon_);
    p.ZeroGrad();
  }
}

Adam::Adam(Module* module, float learning_rate, float beta1, float beta2,
           float epsilon)
    : Optimizer(module, learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].size(), 0.0f);
    v_[i].assign(params_[i].size(), 0.0f);
  }
}

void Adam::Step() {
  ++step_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto& values = p.mutable_data();
    const auto& g = p.grad();
    if (g.empty()) continue;
    AdamUpdateInPlace(values.data(), m_[i].data(), v_[i].data(), g.data(),
                      values.size(), learning_rate_, beta1_, beta2_, bias1,
                      bias2, epsilon_);
    p.ZeroGrad();
  }
}

}  // namespace imr::nn
