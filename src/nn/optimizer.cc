#include "nn/optimizer.h"

#include <cmath>
#include <cstddef>

#include "tensor/tensor.h"

namespace imr::nn {

namespace {

// In-place AXPY-style parameter updates. Raw __restrict pointer loops the
// compiler can vectorise; the float expressions keep the exact association
// and operation order of the original element loops, so the fused updates
// are bit-identical to the code they replace. The row-sparse paths below
// call the same kernels on row slices, which keeps per-element arithmetic
// (and therefore the result bits) identical to a full dense pass.

void SgdUpdateInPlace(float* __restrict v, const float* __restrict g,
                      size_t n, float lr, float scale, float weight_decay) {
  if (weight_decay > 0.0f) {
    for (size_t i = 0; i < n; ++i) {
      const float grad = g[i] * scale + weight_decay * v[i];
      v[i] -= lr * grad;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      v[i] -= lr * (g[i] * scale);
    }
  }
}

void AdagradUpdateInPlace(float* __restrict v, float* __restrict acc,
                          const float* __restrict g, size_t n, float lr,
                          float epsilon) {
  for (size_t i = 0; i < n; ++i) {
    acc[i] += g[i] * g[i];
    v[i] -= lr * g[i] / (std::sqrt(acc[i]) + epsilon);
  }
}

void AdamUpdateInPlace(float* __restrict v, float* __restrict m,
                       float* __restrict s, const float* __restrict g,
                       size_t n, float lr, float beta1, float beta2,
                       float bias1, float bias2, float epsilon) {
  for (size_t i = 0; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
    s[i] = beta2 * s[i] + (1.0f - beta2) * g[i] * g[i];
    const float m_hat = m[i] / bias1;
    const float v_hat = s[i] / bias2;
    v[i] -= lr * m_hat / (std::sqrt(v_hat) + epsilon);
  }
}

// Sanctioned gradient readers. These are the only places optimizers walk a
// gradient buffer, so the row-sparse/dense split lives here; the imr_lint
// rule `optimizer-dense-grad` flags ad-hoc full-gradient loops added
// elsewhere in this file.

// Sum of squared gradient elements. Walks only touched rows when the
// gradient is row-sparse — untouched rows are all-zero and a square is
// never -0.0, so skipping them adds exactly 0.0 and the double total is
// bit-identical to the dense scan.
double GradSquaredSum(const tensor::Tensor& p) {
  const auto& g = p.grad();
  if (g.empty()) return 0.0;
  double total = 0.0;
  if (p.grad_is_row_sparse()) {
    const size_t cols = static_cast<size_t>(p.cols());
    for (int r : p.grad_touched_rows()) {
      const float* row = g.data() + static_cast<size_t>(r) * cols;
      for (size_t c = 0; c < cols; ++c)
        total += static_cast<double>(row[c]) * row[c];
    }
    return total;
  }
  const float* gp = g.data();
  const size_t n = g.size();
  for (size_t i = 0; i < n; ++i)
    total += static_cast<double>(gp[i]) * gp[i];
  return total;
}

// Books one optimizer consumption of parameter p's gradient into
// tensor::SparseGradStats. Only row-sparse-capable parameters are counted;
// `walked_rows` is the number of rows the update actually visited.
void NoteConsumption(const tensor::Tensor& p, bool capable,
                     size_t walked_rows, bool dense_fallback) {
  if (!capable) return;
  tensor::internal::NoteSparseRowsConsumed(
      static_cast<uint64_t>(walked_rows), static_cast<uint64_t>(p.rows()));
  if (dense_fallback) tensor::internal::NoteDenseFallback();
}

}  // namespace

Optimizer::Optimizer(Module* module, float learning_rate)
    : learning_rate_(learning_rate) {
  for (NamedParameter& p : module->Parameters()) {
    params_.push_back(p.tensor);
    sparse_capable_.push_back(p.tensor.row_sparse_grad());
  }
}

Sgd::Sgd(Module* module, float learning_rate, float weight_decay,
         float clip_norm)
    : Optimizer(module, learning_rate),
      weight_decay_(weight_decay),
      clip_norm_(clip_norm) {}

void Sgd::Step() {
  float scale = 1.0f;
  if (clip_norm_ > 0.0f) {
    double total = 0.0;
    for (auto& p : params_) total += GradSquaredSum(p);
    const double norm = std::sqrt(total);
    if (norm > clip_norm_) scale = static_cast<float>(clip_norm_ / norm);
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const auto& g = p.grad();
    if (g.empty()) continue;
    auto& values = p.mutable_data();
    // Weight decay reads every parameter element, so it is dense-only.
    if (weight_decay_ == 0.0f && p.grad_is_row_sparse()) {
      const size_t cols = static_cast<size_t>(p.cols());
      const auto& touched = p.grad_touched_rows();
      for (int r : touched) {
        const size_t off = static_cast<size_t>(r) * cols;
        SgdUpdateInPlace(values.data() + off, g.data() + off, cols,
                         learning_rate_, scale, 0.0f);
      }
      NoteConsumption(p, sparse_capable_[i], touched.size(),
                      /*dense_fallback=*/false);
    } else {
      SgdUpdateInPlace(values.data(), g.data(), values.size(),
                       learning_rate_, scale, weight_decay_);
      NoteConsumption(p, sparse_capable_[i],
                      static_cast<size_t>(p.rows()), /*dense_fallback=*/true);
    }
    p.ZeroGrad();
  }
}

Adagrad::Adagrad(Module* module, float learning_rate, float epsilon)
    : Optimizer(module, learning_rate), epsilon_(epsilon) {
  accum_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i)
    accum_[i].assign(params_[i].size(), 0.0f);
}

void Adagrad::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const auto& g = p.grad();
    if (g.empty()) continue;
    auto& values = p.mutable_data();
    // A zero-gradient Adagrad element update is an exact no-op (the
    // accumulator gains +0.0 and the write-back subtracts 0.0), so walking
    // only touched rows is bit-identical to the dense pass.
    if (p.grad_is_row_sparse()) {
      const size_t cols = static_cast<size_t>(p.cols());
      const auto& touched = p.grad_touched_rows();
      for (int r : touched) {
        const size_t off = static_cast<size_t>(r) * cols;
        AdagradUpdateInPlace(values.data() + off, accum_[i].data() + off,
                             g.data() + off, cols, learning_rate_, epsilon_);
      }
      NoteConsumption(p, sparse_capable_[i], touched.size(),
                      /*dense_fallback=*/false);
    } else {
      AdagradUpdateInPlace(values.data(), accum_[i].data(), g.data(),
                           values.size(), learning_rate_, epsilon_);
      NoteConsumption(p, sparse_capable_[i],
                      static_cast<size_t>(p.rows()), /*dense_fallback=*/true);
    }
    p.ZeroGrad();
  }
}

Adam::Adam(Module* module, float learning_rate, float beta1, float beta2,
           float epsilon)
    : Optimizer(module, learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  hist_.resize(params_.size());
  row_done_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].size(), 0.0f);
    v_[i].assign(params_[i].size(), 0.0f);
    if (sparse_capable_[i]) {
      row_done_[i].assign(static_cast<size_t>(params_[i].rows()), 0);
      if (zero_row_.size() < static_cast<size_t>(params_[i].cols()))
        zero_row_.assign(static_cast<size_t>(params_[i].cols()), 0.0f);
      // Replay deferred updates for a stale row before GatherRows reads
      // its value — required for sparse == dense trajectory bit-identity.
      params_[i].set_row_materializer([this, i](const std::vector<int>& rows) {
        MaterializeRows(i, rows);
      });
    }
  }
}

Adam::~Adam() {
  // The hooks capture `this`; detach them before it dies.
  for (size_t i = 0; i < params_.size(); ++i)
    if (sparse_capable_[i]) params_[i].set_row_materializer(nullptr);
}

void Adam::MaterializeRows(size_t i, const std::vector<int>& rows) {
  util::MutexLock lock(mu_);
  const size_t upto = hist_[i].size();
  if (upto == 0) return;
  for (int r : rows) CatchUpRow(i, r, upto);
}

void Adam::CatchUpRow(size_t i, int row, size_t upto) {
  const size_t cols = static_cast<size_t>(params_[i].cols());
  const size_t off = static_cast<size_t>(row) * cols;
  float* values = params_[i].mutable_data().data() + off;
  float* m = m_[i].data() + off;
  float* s = v_[i].data() + off;
  for (size_t t = row_done_[i][static_cast<size_t>(row)]; t < upto; ++t) {
    const StepRecord& h = hist_[i][t];
    AdamUpdateInPlace(values, m, s, zero_row_.data(), cols, h.lr, beta1_,
                      beta2_, h.bias1, h.bias2, epsilon_);
  }
  row_done_[i][static_cast<size_t>(row)] = static_cast<uint32_t>(upto);
}

void Adam::Step() {
  ++step_;
  beta1_pow_ *= static_cast<double>(beta1_);
  beta2_pow_ *= static_cast<double>(beta2_);
  const float bias1 = static_cast<float>(1.0 - beta1_pow_);
  const float bias2 = static_cast<float>(1.0 - beta2_pow_);
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const auto& g = p.grad();
    if (g.empty()) continue;
    auto& values = p.mutable_data();
    if (!sparse_capable_[i]) {
      AdamUpdateInPlace(values.data(), m_[i].data(), v_[i].data(), g.data(),
                        values.size(), learning_rate_, beta1_, beta2_, bias1,
                        bias2, epsilon_);
      p.ZeroGrad();
      continue;
    }
    // Row-sparse-capable parameter: record this step so rows skipped now
    // can replay the m/v decay later, then update each gradient-bearing
    // row after first catching it up on everything it missed. A dense
    // gradient (fallback) still goes row-by-row so per-row bookkeeping
    // stays exact; the arithmetic per element is unchanged either way.
    util::MutexLock lock(mu_);
    hist_[i].push_back({learning_rate_, bias1, bias2});
    const size_t upto = hist_[i].size();
    const size_t cols = static_cast<size_t>(p.cols());
    const int rows = p.rows();
    const bool sparse = p.grad_is_row_sparse();
    if (sparse) {
      const auto& touched = p.grad_touched_rows();
      for (int r : touched) {
        CatchUpRow(i, r, upto - 1);
        const size_t off = static_cast<size_t>(r) * cols;
        AdamUpdateInPlace(values.data() + off, m_[i].data() + off,
                          v_[i].data() + off, g.data() + off, cols,
                          learning_rate_, beta1_, beta2_, bias1, bias2,
                          epsilon_);
        row_done_[i][static_cast<size_t>(r)] = static_cast<uint32_t>(upto);
      }
      NoteConsumption(p, true, touched.size(), /*dense_fallback=*/false);
    } else {
      for (int r = 0; r < rows; ++r) {
        CatchUpRow(i, r, upto - 1);
        const size_t off = static_cast<size_t>(r) * cols;
        AdamUpdateInPlace(values.data() + off, m_[i].data() + off,
                          v_[i].data() + off, g.data() + off, cols,
                          learning_rate_, beta1_, beta2_, bias1, bias2,
                          epsilon_);
        row_done_[i][static_cast<size_t>(r)] = static_cast<uint32_t>(upto);
      }
      NoteConsumption(p, true, static_cast<size_t>(rows),
                      /*dense_fallback=*/true);
    }
    p.ZeroGrad();
  }
}

void Adam::Finalize() {
  util::MutexLock lock(mu_);
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!sparse_capable_[i] || hist_[i].empty()) continue;
    const int rows = params_[i].rows();
    for (int r = 0; r < rows; ++r) CatchUpRow(i, r, hist_[i].size());
  }
}

}  // namespace imr::nn
