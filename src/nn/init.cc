#include "nn/init.h"

#include <cmath>

namespace imr::nn {

tensor::Tensor UniformInit(std::vector<int> shape, float bound,
                           util::Rng* rng) {
  size_t n = 1;
  for (int d : shape) n *= static_cast<size_t>(d);
  std::vector<float> data(n);
  for (float& v : data)
    v = static_cast<float>(rng->Uniform(-bound, bound));
  return tensor::Tensor::FromData(std::move(shape), std::move(data));
}

tensor::Tensor XavierInit(std::vector<int> shape, util::Rng* rng) {
  float fan_in = 1.0f, fan_out = 1.0f;
  if (shape.size() == 2) {
    fan_in = static_cast<float>(shape[0]);
    fan_out = static_cast<float>(shape[1]);
  } else if (shape.size() == 1) {
    fan_in = fan_out = static_cast<float>(shape[0]);
  }
  const float bound = std::sqrt(6.0f / (fan_in + fan_out));
  return UniformInit(std::move(shape), bound, rng);
}

tensor::Tensor NormalInit(std::vector<int> shape, float stddev,
                          util::Rng* rng) {
  size_t n = 1;
  for (int d : shape) n *= static_cast<size_t>(d);
  std::vector<float> data(n);
  for (float& v : data) v = static_cast<float>(rng->Normal(0.0, stddev));
  return tensor::Tensor::FromData(std::move(shape), std::move(data));
}

}  // namespace imr::nn
