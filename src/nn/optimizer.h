// First-order optimizers over a Module's parameters. The paper trains with
// SGD (lr = 0.3); Adagrad is used for LINE-style embedding training and
// Adam is provided for convenience.
//
// Row-sparse parameters (embedding tables that opted in via
// Tensor::set_row_sparse_grad, see DESIGN.md §10) are updated in O(touched
// rows) instead of O(vocab × dim): the clip-norm reduction, the state
// updates and the parameter writes all walk only the rows GatherRows'
// backward recorded. The sparse path is bit-identical to the dense one —
// untouched-row updates are exact no-ops for SGD (without weight decay) and
// Adagrad, and Adam replays the skipped decay steps exactly on the next
// touch (lazy catch-up; call Finalize() to bring every row up to date
// before reading parameters).
#ifndef IMR_NN_OPTIMIZER_H_
#define IMR_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace imr::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients, then zeroes them.
  virtual void Step() = 0;

  /// Brings lazily-updated optimizer state fully up to date. Adam defers
  /// the decay of untouched rows of row-sparse parameters until their next
  /// touch; Finalize() replays those skipped steps for every row so the
  /// parameter values match a dense run exactly. Safe to call at any point
  /// (idempotent between Steps); a no-op for SGD and Adagrad, whose
  /// untouched-row updates are exact no-ops already. The trainer calls it
  /// after the last epoch.
  virtual void Finalize() {}

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

 protected:
  Optimizer(Module* module, float learning_rate);

  std::vector<tensor::Tensor> params_;
  // params_[i].row_sparse_grad() snapshotted at construction; a parameter
  // toggled afterwards keeps its dense treatment (toggling mid-training is
  // unsupported).
  std::vector<bool> sparse_capable_;
  float learning_rate_;
};

/// Plain SGD with optional L2 weight decay and gradient clipping (by global
/// norm; 0 disables). Weight decay reads every parameter element, so it
/// forces the dense path for row-sparse parameters (counted as a dense
/// fallback in tensor::SparseGradStats).
class Sgd : public Optimizer {
 public:
  Sgd(Module* module, float learning_rate, float weight_decay = 0.0f,
      float clip_norm = 0.0f);
  void Step() override;

 private:
  float weight_decay_;
  float clip_norm_;
};

class Adagrad : public Optimizer {
 public:
  Adagrad(Module* module, float learning_rate, float epsilon = 1e-8f);
  void Step() override;

 private:
  float epsilon_;
  std::vector<std::vector<float>> accum_;
};

/// Adam defers the zero-gradient m/v decay of untouched rows of row-sparse
/// parameters. The deferred steps are replayed exactly (same kernel, same
/// recorded lr/bias floats) the moment a stale row becomes visible again —
/// via a row-materializer hook that GatherRows' forward fires before
/// reading — so training trajectories are bit-identical to a dense run.
/// Finalize() (or destruction of the model-reading scope calling it)
/// catches the remaining rows up.
class Adam : public Optimizer {
 public:
  Adam(Module* module, float learning_rate, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f);
  ~Adam() override;
  void Step() override;
  void Finalize() override;

 private:
  // One recorded step a row-sparse parameter took part in: enough to replay
  // the update of a row whose gradient was zero that step (m/v decay plus
  // the bias-corrected write-back) bit-for-bit later.
  struct StepRecord {
    float lr;
    float bias1;
    float bias2;
  };

  // Replays the recorded steps [row_done_[i][row], upto) for one row of
  // parameter i with an all-zero gradient row, through the same in-place
  // kernel as live updates. Distinct rows touch disjoint slices of the
  // parameter/m/v storage, so replay order across rows cannot change the
  // result.
  void CatchUpRow(size_t i, int row, size_t upto) IMR_REQUIRES(mu_);

  // The row-materializer hook installed on row-sparse parameters: brings
  // `rows` fully up to date before their values are read. Safe under
  // concurrent data-parallel forward passes (serialized on mu_; per-row
  // replay is idempotent and deterministic, so the winner is irrelevant).
  void MaterializeRows(size_t i, const std::vector<int>& rows);

  float beta1_, beta2_, epsilon_;
  int64_t step_ = 0;
  // Running beta^step accumulators in double: float std::pow(beta, step)
  // drifts from the true power long before step 10k, and the bias term is
  // the one place Adam is sensitive to it.
  double beta1_pow_ = 1.0;
  double beta2_pow_ = 1.0;
  std::vector<std::vector<float>> m_, v_;
  // Serializes deferred-row replay between the materializer hook (fired
  // from data-parallel forwards) and Step/Finalize. m_/v_/parameter values
  // are row-disjoint under the replay, so guarding the bookkeeping is
  // enough.
  util::Mutex mu_;
  // Per row-sparse parameter: the steps it had a gradient for (hist_), and
  // per row how many of those steps have been applied (row_done_). Empty
  // for dense parameters.
  std::vector<std::vector<StepRecord>> hist_ IMR_GUARDED_BY(mu_);
  std::vector<std::vector<uint32_t>> row_done_ IMR_GUARDED_BY(mu_);
  std::vector<float> zero_row_;  // scratch all-zero gradient row, read-only
};

}  // namespace imr::nn

#endif  // IMR_NN_OPTIMIZER_H_
