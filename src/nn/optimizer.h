// First-order optimizers over a Module's parameters. The paper trains with
// SGD (lr = 0.3); Adagrad is used for LINE-style embedding training and
// Adam is provided for convenience.
#ifndef IMR_NN_OPTIMIZER_H_
#define IMR_NN_OPTIMIZER_H_

#include <vector>

#include "nn/module.h"

namespace imr::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients, then zeroes them.
  virtual void Step() = 0;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

 protected:
  Optimizer(Module* module, float learning_rate);

  std::vector<tensor::Tensor> params_;
  float learning_rate_;
};

/// Plain SGD with optional L2 weight decay and gradient clipping (by global
/// norm; 0 disables).
class Sgd : public Optimizer {
 public:
  Sgd(Module* module, float learning_rate, float weight_decay = 0.0f,
      float clip_norm = 0.0f);
  void Step() override;

 private:
  float weight_decay_;
  float clip_norm_;
};

class Adagrad : public Optimizer {
 public:
  Adagrad(Module* module, float learning_rate, float epsilon = 1e-8f);
  void Step() override;

 private:
  float epsilon_;
  std::vector<std::vector<float>> accum_;
};

class Adam : public Optimizer {
 public:
  Adam(Module* module, float learning_rate, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f);
  void Step() override;

 private:
  float beta1_, beta2_, epsilon_;
  int64_t step_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace imr::nn

#endif  // IMR_NN_OPTIMIZER_H_
