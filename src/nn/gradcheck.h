// Numerical gradient checking for layers and whole models: compares the
// analytic gradient of a scalar loss with central finite differences over
// every parameter of a Module. Used extensively in tests.
#ifndef IMR_NN_GRADCHECK_H_
#define IMR_NN_GRADCHECK_H_

#include <functional>
#include <string>

#include "nn/module.h"

namespace imr::nn {

struct GradCheckResult {
  double max_abs_diff = 0.0;
  std::string worst_parameter;
  size_t worst_index = 0;
};

/// `loss_fn` must rebuild the forward graph from scratch on every call and
/// return a scalar tensor. Checks up to `max_entries_per_param` entries of
/// each parameter (stride-sampled) to keep the check fast on big tables.
GradCheckResult CheckModuleGradients(
    Module* module, const std::function<tensor::Tensor()>& loss_fn,
    double eps = 1e-3, int max_entries_per_param = 24);

}  // namespace imr::nn

#endif  // IMR_NN_GRADCHECK_H_
