// Parameter registry shared by all neural layers. A Module owns named
// parameter tensors; composite modules register their children so that
// Parameters() walks the whole tree (optimizers and serialization use it).
#ifndef IMR_NN_MODULE_H_
#define IMR_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace imr::nn {

struct NamedParameter {
  std::string name;
  tensor::Tensor tensor;
};

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its registered children, prefixed
  /// with the child path ("encoder.conv_weight").
  std::vector<NamedParameter> Parameters() const;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Total number of scalar parameters.
  size_t ParameterCount() const;

  /// Switches training mode (affects dropout) for this module and children.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Serializes / restores all parameter values (by registry order).
  util::Status SaveParameters(const std::string& path) const;
  util::Status LoadParameters(const std::string& path);

 protected:
  /// Registers a parameter; the returned tensor has requires_grad set.
  tensor::Tensor RegisterParameter(const std::string& name,
                                   tensor::Tensor tensor);
  /// Registers a child module (not owned).
  void RegisterChild(const std::string& name, Module* child);

 private:
  std::vector<NamedParameter> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace imr::nn

#endif  // IMR_NN_MODULE_H_
