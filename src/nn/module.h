// Parameter registry shared by all neural layers. A Module owns named
// parameter tensors; composite modules register their children so that
// Parameters() walks the whole tree (optimizers and serialization use it).
#ifndef IMR_NN_MODULE_H_
#define IMR_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"
#include "util/serialization.h"
#include "util/status.h"

namespace imr::nn {

struct NamedParameter {
  std::string name;
  tensor::Tensor tensor;
};

class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its registered children, prefixed
  /// with the child path ("encoder.conv_weight").
  std::vector<NamedParameter> Parameters() const;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Total number of scalar parameters.
  size_t ParameterCount() const;

  /// Switches training mode (affects dropout) for this module and children.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Serializes / restores all parameter values (by registry order).
  [[nodiscard]] util::Status SaveParameters(const std::string& path) const;
  [[nodiscard]] util::Status LoadParameters(const std::string& path);

  /// Streams all parameters (count, then name + values per parameter) into
  /// an already-open writer — used by composite on-disk formats (model
  /// snapshots) that pack parameters alongside vocab/embedding sections.
  void WriteParameters(util::BinaryWriter* writer) const;
  /// Restores parameters from an already-open reader; validates the count,
  /// every name, and every shape against the live registry before touching
  /// any tensor data.
  [[nodiscard]] util::Status ReadParameters(util::BinaryReader* reader);

 protected:
  /// Registers a parameter; the returned tensor has requires_grad set.
  tensor::Tensor RegisterParameter(const std::string& name,
                                   tensor::Tensor tensor);
  /// Registers a child module (not owned).
  void RegisterChild(const std::string& name, Module* child);

 private:
  std::vector<NamedParameter> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

/// RAII eval-mode switch: puts a module (and its children) into inference
/// mode for the guard's lifetime and restores the previous mode on exit.
/// Dropout layers are identity in eval mode, so guarded forward passes are
/// deterministic and need no Rng.
class EvalModeGuard {
 public:
  explicit EvalModeGuard(Module* module)
      : module_(module), previous_(module->training()) {
    module_->SetTraining(false);
  }
  ~EvalModeGuard() { module_->SetTraining(previous_); }

  EvalModeGuard(const EvalModeGuard&) = delete;
  EvalModeGuard& operator=(const EvalModeGuard&) = delete;

 private:
  Module* module_;
  bool previous_;
};

}  // namespace imr::nn

#endif  // IMR_NN_MODULE_H_
