#include "nn/encoders.h"

#include <algorithm>

#include "nn/init.h"
#include "util/logging.h"

namespace imr::nn {

using tensor::Tensor;

FeatureEmbedder::FeatureEmbedder(const EncoderConfig& config,
                                 util::Rng* rng)
    : word_dropout_(config.word_dropout),
      position_vocab_(2 * config.max_position + 1) {
  IMR_CHECK_GT(config.vocab_size, 0);
  word_ = std::make_unique<Embedding>(config.vocab_size, config.word_dim,
                                      rng);
  pos_head_ = std::make_unique<Embedding>(position_vocab_,
                                          config.position_dim, rng);
  pos_tail_ = std::make_unique<Embedding>(position_vocab_,
                                          config.position_dim, rng);
  RegisterChild("word", word_.get());
  RegisterChild("pos_head", pos_head_.get());
  RegisterChild("pos_tail", pos_tail_.get());
}

int FeatureEmbedder::feature_dim() const {
  return word_->dim() + pos_head_->dim() + pos_tail_->dim();
}

Tensor FeatureEmbedder::Embed(const EncoderInput& input,
                              util::Rng* rng) const {
  IMR_CHECK(!input.word_ids.empty());
  IMR_CHECK_EQ(input.word_ids.size(), input.head_offsets.size());
  IMR_CHECK_EQ(input.word_ids.size(), input.tail_offsets.size());
  Tensor words;
  if (training() && word_dropout_ > 0.0f && rng != nullptr) {
    std::vector<int> dropped = input.word_ids;
    // <unk> has id 1 in every vocabulary built by text::Vocabulary.
    for (int& id : dropped) {
      if (rng->Bernoulli(word_dropout_)) id = 1;
    }
    words = word_->Forward(dropped);
  } else {
    words = word_->Forward(input.word_ids);
  }
  Tensor ph = pos_head_->Forward(input.head_offsets);
  Tensor pt = pos_tail_->Forward(input.tail_offsets);
  return tensor::ConcatCols({words, ph, pt});  // [T x (kw + 2*kp)]
}

namespace {

// Piecewise boundaries: segments end after each entity position
// (inclusive), as in Zeng et al. 2015.
void SegmentBounds(const EncoderInput& input, int time, int* b1, int* b2) {
  int first = std::min(input.head_index, input.tail_index);
  int second = std::max(input.head_index, input.tail_index);
  first = std::clamp(first, 0, time - 1);
  second = std::clamp(second, 0, time - 1);
  *b1 = first + 1;
  *b2 = second + 1;
}

}  // namespace

PcnnEncoder::PcnnEncoder(const EncoderConfig& config, util::Rng* rng)
    : config_(config) {
  embedder_ = std::make_unique<FeatureEmbedder>(config, rng);
  RegisterChild("embedder", embedder_.get());
  const int in_dim = embedder_->feature_dim();
  conv_weight_ = RegisterParameter(
      "conv_weight",
      XavierInit({config.filters, config.window * in_dim}, rng));
  conv_bias_ = RegisterParameter("conv_bias",
                                 tensor::Tensor::Zeros({config.filters}));
}

Tensor PcnnEncoder::Encode(const EncoderInput& input, util::Rng* rng) const {
  Tensor features = embedder_->Embed(input, rng);
  Tensor conv =
      tensor::Conv1dSame(features, conv_weight_, conv_bias_, config_.window);
  int b1 = 0, b2 = 0;
  SegmentBounds(input, conv.rows(), &b1, &b2);
  Tensor pooled = tensor::PiecewiseMaxOverRows(conv, b1, b2);
  Tensor activated = tensor::Tanh(pooled);
  return tensor::Dropout(activated, config_.dropout, rng, training());
}

CnnEncoder::CnnEncoder(const EncoderConfig& config, util::Rng* rng)
    : config_(config) {
  embedder_ = std::make_unique<FeatureEmbedder>(config, rng);
  RegisterChild("embedder", embedder_.get());
  const int in_dim = embedder_->feature_dim();
  conv_weight_ = RegisterParameter(
      "conv_weight",
      XavierInit({config.filters, config.window * in_dim}, rng));
  conv_bias_ = RegisterParameter("conv_bias",
                                 tensor::Tensor::Zeros({config.filters}));
}

Tensor CnnEncoder::Encode(const EncoderInput& input, util::Rng* rng) const {
  Tensor features = embedder_->Embed(input, rng);
  Tensor conv =
      tensor::Conv1dSame(features, conv_weight_, conv_bias_, config_.window);
  Tensor pooled = tensor::MaxOverRows(conv);
  Tensor activated = tensor::Tanh(pooled);
  return tensor::Dropout(activated, config_.dropout, rng, training());
}

GruEncoder::GruEncoder(const EncoderConfig& config, bool word_attention,
                       util::Rng* rng)
    : config_(config),
      hidden_(std::max(1, config.filters / 2)),
      word_attention_(word_attention) {
  embedder_ = std::make_unique<FeatureEmbedder>(config, rng);
  RegisterChild("embedder", embedder_.get());
  const int in_dim = embedder_->feature_dim();
  const int h = hidden_;
  fwd_wx_ = RegisterParameter("fwd_wx", XavierInit({in_dim, 3 * h}, rng));
  fwd_bx_ = RegisterParameter("fwd_bx", tensor::Tensor::Zeros({3 * h}));
  fwd_u_zr_ = RegisterParameter("fwd_u_zr", XavierInit({h, 2 * h}, rng));
  fwd_u_n_ = RegisterParameter("fwd_u_n", XavierInit({h, h}, rng));
  bwd_wx_ = RegisterParameter("bwd_wx", XavierInit({in_dim, 3 * h}, rng));
  bwd_bx_ = RegisterParameter("bwd_bx", tensor::Tensor::Zeros({3 * h}));
  bwd_u_zr_ = RegisterParameter("bwd_u_zr", XavierInit({h, 2 * h}, rng));
  bwd_u_n_ = RegisterParameter("bwd_u_n", XavierInit({h, h}, rng));
  if (word_attention_) {
    attn_proj_ = std::make_unique<Linear>(2 * h, 2 * h, rng);
    RegisterChild("attn_proj", attn_proj_.get());
    attn_query_ = RegisterParameter("attn_query", XavierInit({2 * h}, rng));
  }
}

Tensor GruEncoder::RunDirection(const Tensor& features, bool reverse,
                                const Tensor& wx, const Tensor& bx,
                                const Tensor& u_zr,
                                const Tensor& u_n) const {
  const int time = features.rows();
  const int h = hidden_;
  // Project all inputs at once: [T x 3H].
  Tensor gates_x = tensor::AddRowVector(tensor::MatMul(features, wx), bx);
  Tensor state = Tensor::Zeros({h});
  std::vector<Tensor> states(time);
  for (int step = 0; step < time; ++step) {
    const int t = reverse ? time - 1 - step : step;
    Tensor gx = tensor::Row(gates_x, t);
    Tensor h_zr = tensor::MatMul(state, u_zr);  // [2H]
    Tensor z = tensor::Sigmoid(
        tensor::Add(tensor::Slice(gx, 0, h), tensor::Slice(h_zr, 0, h)));
    Tensor r = tensor::Sigmoid(
        tensor::Add(tensor::Slice(gx, h, h), tensor::Slice(h_zr, h, h)));
    Tensor candidate = tensor::Tanh(tensor::Add(
        tensor::Slice(gx, 2 * h, h),
        tensor::Mul(r, tensor::MatMul(state, u_n))));
    // h' = z * h + (1 - z) * candidate
    Tensor one_minus_z = tensor::AddScalar(tensor::Scale(z, -1.0f), 1.0f);
    state = tensor::Add(tensor::Mul(z, state),
                        tensor::Mul(one_minus_z, candidate));
    states[t] = state;
  }
  return tensor::ConcatRows(states);
}

Tensor GruEncoder::Encode(const EncoderInput& input, util::Rng* rng) const {
  Tensor features = embedder_->Embed(input, rng);
  Tensor fwd =
      RunDirection(features, /*reverse=*/false, fwd_wx_, fwd_bx_, fwd_u_zr_,
                   fwd_u_n_);
  Tensor bwd =
      RunDirection(features, /*reverse=*/true, bwd_wx_, bwd_bx_, bwd_u_zr_,
                   bwd_u_n_);
  // Concat directions per step: [T x 2H].
  Tensor hidden = tensor::ConcatCols({fwd, bwd});
  Tensor repr;
  if (word_attention_) {
    // Fused MatMul+bias+Tanh (bit-identical to the composition it replaces).
    Tensor proj = attn_proj_->ForwardTanh(hidden);
    Tensor scores = tensor::RowwiseDot(proj, attn_query_);
    Tensor alpha = tensor::Softmax(scores);
    repr = tensor::WeightedSumRows(hidden, alpha);
  } else {
    repr = tensor::MaxOverRows(hidden);
  }
  return tensor::Dropout(repr, config_.dropout, rng, training());
}

std::unique_ptr<SentenceEncoder> MakeEncoder(const std::string& kind,
                                             const EncoderConfig& config,
                                             util::Rng* rng) {
  if (kind == "pcnn") return std::make_unique<PcnnEncoder>(config, rng);
  if (kind == "cnn") return std::make_unique<CnnEncoder>(config, rng);
  if (kind == "gru")
    return std::make_unique<GruEncoder>(config, /*word_attention=*/false,
                                        rng);
  if (kind == "bgwa")
    return std::make_unique<GruEncoder>(config, /*word_attention=*/true,
                                        rng);
  IMR_LOG(Error) << "unknown encoder kind: " << kind;
  return nullptr;
}

}  // namespace imr::nn
