// Weight initializers.
#ifndef IMR_NN_INIT_H_
#define IMR_NN_INIT_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace imr::nn {

/// Uniform in [-bound, bound].
tensor::Tensor UniformInit(std::vector<int> shape, float bound,
                           util::Rng* rng);

/// Glorot/Xavier uniform: bound = sqrt(6 / (fan_in + fan_out)). For rank-2
/// shapes [rows, cols], fan_in = rows and fan_out = cols; rank-1 uses size.
tensor::Tensor XavierInit(std::vector<int> shape, util::Rng* rng);

/// N(0, stddev^2).
tensor::Tensor NormalInit(std::vector<int> shape, float stddev,
                          util::Rng* rng);

}  // namespace imr::nn

#endif  // IMR_NN_INIT_H_
