#include "nn/module.h"

#include "util/logging.h"
#include "util/serialization.h"

namespace imr::nn {

namespace {
constexpr uint32_t kParamsMagic = 0x494D5250;  // "IMRP"
constexpr uint32_t kParamsVersion = 1;
}  // namespace

std::vector<NamedParameter> Module::Parameters() const {
  std::vector<NamedParameter> out = params_;
  for (const auto& [name, child] : children_) {
    for (NamedParameter p : child->Parameters()) {
      p.name = name + "." + p.name;
      out.push_back(std::move(p));
    }
  }
  return out;
}

void Module::ZeroGrad() {
  for (auto& p : params_) p.tensor.ZeroGrad();
  for (auto& [name, child] : children_) child->ZeroGrad();
}

size_t Module::ParameterCount() const {
  size_t n = 0;
  for (const NamedParameter& p : Parameters()) n += p.tensor.size();
  return n;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

tensor::Tensor Module::RegisterParameter(const std::string& name,
                                         tensor::Tensor tensor) {
  tensor.set_requires_grad(true);
  params_.push_back({name, tensor});
  return tensor;
}

void Module::RegisterChild(const std::string& name, Module* child) {
  IMR_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

util::Status Module::SaveParameters(const std::string& path) const {
  util::BinaryWriter writer(path, kParamsMagic, kParamsVersion);
  IMR_RETURN_IF_ERROR(writer.status());
  const auto params = Parameters();
  writer.WriteU64(params.size());
  for (const NamedParameter& p : params) {
    writer.WriteString(p.name);
    writer.WriteFloatVector(p.tensor.data());
  }
  return writer.Close();
}

util::Status Module::LoadParameters(const std::string& path) {
  util::BinaryReader reader(path, kParamsMagic, kParamsVersion);
  IMR_RETURN_IF_ERROR(reader.status());
  auto params = Parameters();
  const uint64_t count = reader.ReadU64();
  if (count != params.size()) {
    return util::InvalidArgument("parameter count mismatch: file has " +
                                 std::to_string(count) + ", model has " +
                                 std::to_string(params.size()));
  }
  for (NamedParameter& p : params) {
    const std::string name = reader.ReadString();
    std::vector<float> values = reader.ReadFloatVector();
    IMR_RETURN_IF_ERROR(reader.status());
    if (name != p.name) {
      return util::InvalidArgument("parameter name mismatch: expected " +
                                   p.name + ", file has " + name);
    }
    if (values.size() != p.tensor.size()) {
      return util::InvalidArgument("parameter size mismatch for " + p.name);
    }
    p.tensor.mutable_data() = std::move(values);
  }
  return util::OkStatus();
}

}  // namespace imr::nn
