#include "nn/module.h"

#include "util/logging.h"
#include "util/serialization.h"

namespace imr::nn {

namespace {
constexpr uint32_t kParamsMagic = 0x494D5250;  // "IMRP"
constexpr uint32_t kParamsVersion = 1;
}  // namespace

std::vector<NamedParameter> Module::Parameters() const {
  std::vector<NamedParameter> out = params_;
  for (const auto& [name, child] : children_) {
    for (NamedParameter p : child->Parameters()) {
      p.name = name + "." + p.name;
      out.push_back(std::move(p));
    }
  }
  return out;
}

void Module::ZeroGrad() {
  for (auto& p : params_) p.tensor.ZeroGrad();
  for (auto& [name, child] : children_) child->ZeroGrad();
}

size_t Module::ParameterCount() const {
  size_t n = 0;
  for (const NamedParameter& p : Parameters()) n += p.tensor.size();
  return n;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

tensor::Tensor Module::RegisterParameter(const std::string& name,
                                         tensor::Tensor tensor) {
  tensor.set_requires_grad(true);
  params_.push_back({name, tensor});
  return tensor;
}

void Module::RegisterChild(const std::string& name, Module* child) {
  IMR_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

util::Status Module::SaveParameters(const std::string& path) const {
  util::BinaryWriter writer(path, kParamsMagic, kParamsVersion);
  IMR_RETURN_IF_ERROR(writer.status());
  WriteParameters(&writer);
  return writer.Close();
}

util::Status Module::LoadParameters(const std::string& path) {
  util::BinaryReader reader(path, kParamsMagic, kParamsVersion);
  IMR_RETURN_IF_ERROR(reader.status());
  return ReadParameters(&reader);
}

void Module::WriteParameters(util::BinaryWriter* writer) const {
  const auto params = Parameters();
  writer->WriteU64(params.size());
  for (const NamedParameter& p : params) {
    writer->WriteString(p.name);
    writer->WriteFloatVector(p.tensor.data());
  }
}

util::Status Module::ReadParameters(util::BinaryReader* reader) {
  auto params = Parameters();
  const uint64_t count = reader->ReadU64();
  IMR_RETURN_IF_ERROR(reader->status());
  if (count != params.size()) {
    return util::InvalidArgument(
        "parameter count mismatch in '" + reader->path() + "': file has " +
        std::to_string(count) + ", model has " +
        std::to_string(params.size()));
  }
  // Validate everything before mutating the model: a corrupt file must not
  // leave a half-loaded parameter set behind.
  std::vector<std::vector<float>> values(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const std::string name = reader->ReadString();
    values[i] = reader->ReadFloatVector();
    IMR_RETURN_IF_ERROR(reader->status());
    if (name != params[i].name) {
      return util::InvalidArgument(
          "parameter name mismatch in '" + reader->path() + "': expected " +
          params[i].name + ", file has " + name);
    }
    if (values[i].size() != params[i].tensor.size()) {
      return util::InvalidArgument(
          "parameter size mismatch for " + params[i].name + " in '" +
          reader->path() + "': file has " +
          std::to_string(values[i].size()) + " values, model needs " +
          std::to_string(params[i].tensor.size()));
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].tensor.mutable_data() = std::move(values[i]);
  }
  return util::OkStatus();
}

}  // namespace imr::nn
