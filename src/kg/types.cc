#include "kg/types.h"

#include <unordered_map>

#include "util/logging.h"

namespace imr::kg {

const std::vector<std::string>& CoarseTypeNames() {
  // FIGER first-level types (Ling & Weld 2012, Figure 1).
  static const std::vector<std::string> kNames{
          "person",        "organization", "location",   "product",
          "art",           "event",        "building",   "people",
          "internet",      "time",         "law",        "game",
          "transportation","food",         "title",      "broadcast",
          "living_thing",  "education",    "written_work","medicine",
          "body_part",     "disease",      "symptom",    "award",
          "language",      "religion",     "god",        "chemistry",
          "biology",       "finance",      "astral_body","geography",
          "government",    "military",     "news_agency","park",
          "play",          "visual_art"};
  IMR_CHECK_EQ(static_cast<int>(kNames.size()), kNumCoarseTypes);
  return kNames;
}

int CoarseTypeId(const std::string& name) {
  static const std::unordered_map<std::string, int> kIndex = [] {
    std::unordered_map<std::string, int> index;
    const auto& names = CoarseTypeNames();
    for (size_t i = 0; i < names.size(); ++i)
      index.emplace(names[i], static_cast<int>(i));
    return index;
  }();
  auto it = kIndex.find(name);
  return it == kIndex.end() ? -1 : it->second;
}

}  // namespace imr::kg
