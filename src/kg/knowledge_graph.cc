#include "kg/knowledge_graph.h"

#include "util/logging.h"

namespace imr::kg {

EntityId KnowledgeGraph::AddEntity(const std::string& name,
                                   std::vector<int> type_ids, int cluster) {
  IMR_CHECK(!name.empty());
  IMR_CHECK(!type_ids.empty());
  IMR_CHECK(entity_by_name_.find(name) == entity_by_name_.end());
  Entity entity;
  entity.id = static_cast<EntityId>(entities_.size());
  entity.name = name;
  entity.type_ids = std::move(type_ids);
  entity.cluster = cluster;
  entity_by_name_.emplace(name, entity.id);
  entities_.push_back(std::move(entity));
  return entities_.back().id;
}

int KnowledgeGraph::AddRelation(const std::string& name, int head_type,
                                int tail_type) {
  IMR_CHECK(relation_by_name_.find(name) == relation_by_name_.end());
  RelationSchema schema;
  schema.id = static_cast<int>(relations_.size());
  if (schema.id == kNaRelation) {
    IMR_CHECK_EQ(name, "NA");
  }
  schema.name = name;
  schema.head_type = head_type;
  schema.tail_type = tail_type;
  relation_by_name_.emplace(name, schema.id);
  relations_.push_back(std::move(schema));
  return relations_.back().id;
}

void KnowledgeGraph::AddTriple(EntityId head, int relation, EntityId tail) {
  IMR_CHECK_GE(head, 0);
  IMR_CHECK_LT(head, num_entities());
  IMR_CHECK_GE(tail, 0);
  IMR_CHECK_LT(tail, num_entities());
  IMR_CHECK_GE(relation, 0);
  IMR_CHECK_LT(relation, num_relations());
  const uint64_t key = PairKey(head, tail);
  auto [it, inserted] = relation_by_pair_.emplace(key, relation);
  if (!inserted) return;  // first fact wins; duplicates ignored
  triples_.push_back({head, relation, tail});
}

const Entity& KnowledgeGraph::entity(EntityId id) const {
  IMR_CHECK_GE(id, 0);
  IMR_CHECK_LT(id, num_entities());
  return entities_[static_cast<size_t>(id)];
}

const RelationSchema& KnowledgeGraph::relation(int id) const {
  IMR_CHECK_GE(id, 0);
  IMR_CHECK_LT(id, num_relations());
  return relations_[static_cast<size_t>(id)];
}

util::StatusOr<EntityId> KnowledgeGraph::FindEntity(
    const std::string& name) const {
  auto it = entity_by_name_.find(name);
  if (it == entity_by_name_.end())
    return util::NotFound("entity: " + name);
  return it->second;
}

util::StatusOr<int> KnowledgeGraph::FindRelation(
    const std::string& name) const {
  auto it = relation_by_name_.find(name);
  if (it == relation_by_name_.end())
    return util::NotFound("relation: " + name);
  return it->second;
}

int KnowledgeGraph::PairRelation(EntityId head, EntityId tail) const {
  auto it = relation_by_pair_.find(PairKey(head, tail));
  return it == relation_by_pair_.end() ? kNaRelation : it->second;
}

bool KnowledgeGraph::HasTriple(EntityId head, int relation,
                               EntityId tail) const {
  return PairRelation(head, tail) == relation && relation != kNaRelation;
}

bool KnowledgeGraph::TypeCompatible(EntityId head, int relation,
                                    EntityId tail) const {
  const RelationSchema& schema = this->relation(relation);
  auto has_type = [this](EntityId id, int type) {
    if (type < 0) return true;
    for (int t : entity(id).type_ids)
      if (t == type) return true;
    return false;
  };
  return has_type(head, schema.head_type) &&
         has_type(tail, schema.tail_type);
}

}  // namespace imr::kg
