// FIGER first-hierarchy entity types (Ling & Weld 2012). The paper uses the
// 38 coarse types that form FIGER's first level; we embed the same taxonomy
// so entity-type features are structurally identical to the original.
#ifndef IMR_KG_TYPES_H_
#define IMR_KG_TYPES_H_

#include <string>
#include <vector>

namespace imr::kg {

/// Number of coarse types (paper Section III-B).
constexpr int kNumCoarseTypes = 38;

/// Names of the 38 coarse FIGER types, index == type id.
const std::vector<std::string>& CoarseTypeNames();

/// Id for a type name; -1 when unknown.
int CoarseTypeId(const std::string& name);

}  // namespace imr::kg

#endif  // IMR_KG_TYPES_H_
