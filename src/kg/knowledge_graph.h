// In-memory knowledge graph: entities with FIGER-style types, relation
// schemas with type signatures, and a triple store with the indexes the RE
// pipeline needs (pair -> relation for distant supervision, held-out eval).
#ifndef IMR_KG_KNOWLEDGE_GRAPH_H_
#define IMR_KG_KNOWLEDGE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kg/types.h"
#include "util/status.h"

namespace imr::kg {

using EntityId = int64_t;

struct Entity {
  EntityId id = -1;
  std::string name;            // single-token surface form, e.g. "stanford_university"
  std::vector<int> type_ids;   // coarse FIGER type ids (>= 1 entry)
  int cluster = -1;            // latent semantic cluster (datagen metadata)
};

struct RelationSchema {
  int id = -1;
  std::string name;       // e.g. "/location/location/contains"
  int head_type = -1;     // required coarse type of the head entity
  int tail_type = -1;     // required coarse type of the tail entity
};

struct Triple {
  EntityId head = -1;
  int relation = 0;
  EntityId tail = -1;
};

/// Relation id 0 is always NA ("no relation"), as in NYT/GDS.
constexpr int kNaRelation = 0;

class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;

  // Movable, not copyable (indexes can be large).
  KnowledgeGraph(KnowledgeGraph&&) = default;
  KnowledgeGraph& operator=(KnowledgeGraph&&) = default;
  KnowledgeGraph(const KnowledgeGraph&) = delete;
  KnowledgeGraph& operator=(const KnowledgeGraph&) = delete;

  /// Adds an entity; returns its id. Names must be unique.
  EntityId AddEntity(const std::string& name, std::vector<int> type_ids,
                     int cluster = -1);

  /// Adds a relation schema; returns its id. Id 0 must be NA.
  int AddRelation(const std::string& name, int head_type = -1,
                  int tail_type = -1);

  /// Records a fact. Duplicate facts are ignored.
  void AddTriple(EntityId head, int relation, EntityId tail);

  const Entity& entity(EntityId id) const;
  const RelationSchema& relation(int id) const;
  [[nodiscard]] util::StatusOr<EntityId> FindEntity(const std::string& name) const;
  [[nodiscard]] util::StatusOr<int> FindRelation(const std::string& name) const;

  /// Relation between a pair; kNaRelation when no fact exists.
  int PairRelation(EntityId head, EntityId tail) const;
  bool HasTriple(EntityId head, int relation, EntityId tail) const;

  int num_entities() const { return static_cast<int>(entities_.size()); }
  int num_relations() const { return static_cast<int>(relations_.size()); }
  const std::vector<Triple>& triples() const { return triples_; }
  const std::vector<Entity>& entities() const { return entities_; }
  const std::vector<RelationSchema>& relations() const { return relations_; }

  /// True when (head_type, tail_type) of the entities satisfies the
  /// relation's signature (unconstrained slots always match).
  bool TypeCompatible(EntityId head, int relation, EntityId tail) const;

 private:
  static uint64_t PairKey(EntityId head, EntityId tail) {
    return (static_cast<uint64_t>(head) << 32) ^
           static_cast<uint64_t>(tail & 0xffffffff);
  }

  std::vector<Entity> entities_;
  std::vector<RelationSchema> relations_;
  std::vector<Triple> triples_;
  std::unordered_map<std::string, EntityId> entity_by_name_;
  std::unordered_map<std::string, int> relation_by_name_;
  std::unordered_map<uint64_t, int> relation_by_pair_;
};

}  // namespace imr::kg

#endif  // IMR_KG_KNOWLEDGE_GRAPH_H_
