#include "re/type_embedding.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace imr::re {

TypeEmbedding::TypeEmbedding(int type_dim, util::Rng* rng, int num_types)
    : type_dim_(type_dim) {
  table_ = std::make_unique<nn::Embedding>(num_types, type_dim, rng);
  RegisterChild("table", table_.get());
}

tensor::Tensor TypeEmbedding::EntityVector(
    const std::vector<int>& type_ids) const {
  IMR_CHECK(!type_ids.empty());
  tensor::Tensor rows = table_->Forward(type_ids);
  return tensor::MeanRows(rows);
}

tensor::Tensor TypeEmbedding::PairVector(
    const std::vector<int>& head_types,
    const std::vector<int>& tail_types) const {
  return tensor::ConcatVec(
      {EntityVector(head_types), EntityVector(tail_types)});
}

}  // namespace imr::re
