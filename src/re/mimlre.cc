#include "re/mimlre.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace imr::re {

namespace {
void SoftmaxInPlace(std::vector<float>* scores) {
  const float max_v = *std::max_element(scores->begin(), scores->end());
  float denom = 0.0f;
  for (float& s : *scores) {
    s = std::exp(s - max_v);
    denom += s;
  }
  for (float& s : *scores) s /= denom;
}
}  // namespace

MimlreModel::MimlreModel(int num_relations, const MimlreConfig& config)
    : num_relations_(num_relations),
      config_(config),
      extractor_(config.hash_bits) {
  IMR_CHECK_GT(num_relations, 1);
  weights_.assign(
      static_cast<size_t>(num_relations) * extractor_.dim(), 0.0f);
  bias_.assign(static_cast<size_t>(num_relations), 0.0f);
}

std::vector<float> MimlreModel::SentenceScores(
    const SparseFeatures& f) const {
  std::vector<float> scores(bias_.begin(), bias_.end());
  for (int r = 0; r < num_relations_; ++r) {
    const float* row =
        weights_.data() + static_cast<size_t>(r) * extractor_.dim();
    float acc = 0.0f;
    for (size_t i = 0; i < f.indices.size(); ++i)
      acc += row[f.indices[i]] * f.values[i];
    scores[static_cast<size_t>(r)] += acc;
  }
  return scores;
}

void MimlreModel::SgdStep(const SparseFeatures& f, int label, float lr) {
  std::vector<float> probs = SentenceScores(f);
  SoftmaxInPlace(&probs);
  for (int r = 0; r < num_relations_; ++r) {
    const float grad =
        probs[static_cast<size_t>(r)] - (r == label ? 1.0f : 0.0f);
    if (grad == 0.0f) continue;
    float* row =
        weights_.data() + static_cast<size_t>(r) * extractor_.dim();
    for (size_t i = 0; i < f.indices.size(); ++i) {
      float& w = row[f.indices[i]];
      w -= lr * (grad * f.values[i] + config_.l2 * w);
    }
    bias_[static_cast<size_t>(r)] -= lr * grad;
  }
}

void MimlreModel::Train(const std::vector<Bag>& bags) {
  IMR_CHECK(!bags.empty());
  util::Rng rng(config_.seed);
  // Pre-extract sentence features; initialise latent labels to the bag
  // label (the distant-supervision assumption).
  std::vector<std::vector<SparseFeatures>> features(bags.size());
  std::vector<std::vector<int>> latent(bags.size());
  for (size_t b = 0; b < bags.size(); ++b) {
    for (const nn::EncoderInput& sentence : bags[b].sentences)
      features[b].push_back(extractor_.SentenceFeatures(sentence));
    latent[b].assign(bags[b].sentences.size(), bags[b].relation);
  }

  std::vector<size_t> order(bags.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  float lr = config_.learning_rate;
  for (int round = 0; round < config_.em_rounds; ++round) {
    // E-step (skipped on the first round: latent labels start at the bag
    // label): re-impute each sentence's latent label.
    if (round > 0) {
      for (size_t b = 0; b < bags.size(); ++b) {
        const int bag_label = bags[b].relation;
        if (bag_label == 0) continue;  // NA bags: all sentences stay NA
        // Score every sentence; the one most confident in the bag label
        // keeps it (at-least-one constraint); the rest choose between the
        // bag label and NA by posterior.
        size_t best_sentence = 0;
        float best_score = -1.0f;
        std::vector<std::vector<float>> posteriors(features[b].size());
        for (size_t s = 0; s < features[b].size(); ++s) {
          posteriors[s] = SentenceScores(features[b][s]);
          SoftmaxInPlace(&posteriors[s]);
          const float score =
              posteriors[s][static_cast<size_t>(bag_label)];
          if (score > best_score) {
            best_score = score;
            best_sentence = s;
          }
        }
        for (size_t s = 0; s < features[b].size(); ++s) {
          if (s == best_sentence) {
            latent[b][s] = bag_label;
          } else {
            latent[b][s] =
                posteriors[s][static_cast<size_t>(bag_label)] >=
                        posteriors[s][0]
                    ? bag_label
                    : 0;
          }
        }
      }
    }
    // M-step: logistic regression on the imputed sentence labels.
    for (int epoch = 0; epoch < config_.epochs_per_round; ++epoch) {
      rng.Shuffle(&order);
      for (size_t b : order) {
        for (size_t s = 0; s < features[b].size(); ++s)
          SgdStep(features[b][s], latent[b][s], lr);
      }
      lr *= 0.9f;
    }
  }
}

std::vector<float> MimlreModel::Predict(const Bag& bag) const {
  // Noisy-OR over sentence posteriors: P(r | bag) = 1 - prod_s (1 - p_rs).
  std::vector<double> not_prob(static_cast<size_t>(num_relations_), 1.0);
  for (const nn::EncoderInput& sentence : bag.sentences) {
    std::vector<float> posterior =
        SentenceScores(extractor_.SentenceFeatures(sentence));
    SoftmaxInPlace(&posterior);
    for (int r = 0; r < num_relations_; ++r)
      not_prob[static_cast<size_t>(r)] *=
          1.0 - static_cast<double>(posterior[static_cast<size_t>(r)]);
  }
  std::vector<float> probs(static_cast<size_t>(num_relations_));
  float total = 0.0f;
  for (int r = 0; r < num_relations_; ++r) {
    probs[static_cast<size_t>(r)] =
        static_cast<float>(1.0 - not_prob[static_cast<size_t>(r)]);
    total += probs[static_cast<size_t>(r)];
  }
  if (total > 0) {
    for (float& p : probs) p /= total;
  }
  return probs;
}

}  // namespace imr::re
