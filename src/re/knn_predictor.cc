#include "re/knn_predictor.h"

#include <algorithm>

#include "tensor/buffer_pool.h"
#include "util/logging.h"

namespace imr::re {

using tensor::internal::AcquireBufferFill;
using tensor::internal::PooledFloats;

const graph::ann::AnnIndex& KnnPredictor::index() const {
  if (use_ivf_) return ivf_;
  return flat_;
}

void KnnPredictor::BuildMatrixAndIndex(const graph::EmbeddingStore& embeddings,
                                       util::ThreadPool* pool,
                                       bool ivf_from_scratch) {
  const int pairs = num_pairs();
  mr_matrix_.assign(static_cast<size_t>(pairs) * dim_, 0.0f);
  for (int p = 0; p < pairs; ++p) {
    const float* head =
        embeddings.Vector(static_cast<int>(heads_[static_cast<size_t>(p)]));
    const float* tail =
        embeddings.Vector(static_cast<int>(tails_[static_cast<size_t>(p)]));
    float* mr = mr_matrix_.data() + static_cast<size_t>(p) * dim_;
    for (int d = 0; d < dim_; ++d) mr[d] = tail[d] - head[d];
  }
  flat_.Build(mr_matrix_.data(), pairs, dim_, graph::ann::Metric::kCosine);
  use_ivf_ = pairs >= options_.min_pairs_for_ivf;
  if (use_ivf_ && ivf_from_scratch) {
    graph::ann::IvfOptions ivf_options;
    ivf_options.nlist = options_.nlist;
    ivf_options.nprobe = options_.nprobe;
    ivf_options.kmeans_iters = options_.kmeans_iters;
    ivf_options.seed = options_.seed;
    ivf_.Build(mr_matrix_.data(), pairs, dim_, graph::ann::Metric::kCosine,
               ivf_options, pool);
  }
}

KnnPredictor KnnPredictor::Build(const graph::EmbeddingStore& embeddings,
                                 const std::vector<Bag>& train_bags,
                                 int num_relations, const KnnOptions& options,
                                 util::ThreadPool* pool) {
  KnnPredictor predictor;
  predictor.options_ = options;
  predictor.num_relations_ = num_relations;
  predictor.dim_ = embeddings.dim();
  for (const Bag& bag : train_bags) {
    if (bag.relation < 0 || bag.relation >= num_relations) continue;
    if (!options.include_na && bag.relation == 0) continue;
    if (bag.head < 0 || bag.head >= embeddings.num_vertices()) continue;
    if (bag.tail < 0 || bag.tail >= embeddings.num_vertices()) continue;
    predictor.heads_.push_back(bag.head);
    predictor.tails_.push_back(bag.tail);
    predictor.labels_.push_back(bag.relation);
  }
  predictor.BuildMatrixAndIndex(embeddings, pool, /*ivf_from_scratch=*/true);
  return predictor;
}

bool KnnPredictor::Interpolate(const float* mr,
                               std::vector<float>* probs) const {
  if (labels_.empty()) return false;
  IMR_CHECK_EQ(static_cast<int>(probs->size()), num_relations_);
  float max_p = 0.0f;
  for (const float p : *probs) max_p = std::max(max_p, p);
  if (max_p >= options_.confidence_gate) return false;

  // Reused per thread: no steady-state allocation on the serve hot path.
  static thread_local std::vector<graph::ann::SearchResult> neighbors;
  index().Search(mr, options_.k, &neighbors);
  if (neighbors.empty()) return false;

  PooledFloats votes(
      AcquireBufferFill(static_cast<size_t>(num_relations_), 0.0f));
  float total = 0.0f;
  for (const auto& neighbor : neighbors) {
    // Cosine similarity clipped at zero: anti-correlated pairs carry no
    // evidence, and a degenerate (zero-MR) query contributes nothing.
    const float weight = std::max(neighbor.score, 0.0f);
    if (weight <= 0.0f) continue;
    votes[static_cast<size_t>(labels_[static_cast<size_t>(neighbor.id)])] +=
        weight;
    total += weight;
  }
  if (total <= 0.0f) return false;

  const float lambda = options_.lambda;
  const float inv_total = 1.0f / total;
  for (int r = 0; r < num_relations_; ++r) {
    (*probs)[static_cast<size_t>(r)] =
        (1.0f - lambda) * (*probs)[static_cast<size_t>(r)] +
        lambda * votes[static_cast<size_t>(r)] * inv_total;
  }
  return true;
}

void KnnPredictor::WriteTo(util::BinaryWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(num_relations_));
  writer->WriteU32(static_cast<uint32_t>(dim_));
  writer->WriteU32(static_cast<uint32_t>(options_.k));
  writer->WriteFloat(options_.lambda);
  writer->WriteFloat(options_.confidence_gate);
  writer->WriteU32(options_.include_na ? 1 : 0);
  writer->WriteU32(static_cast<uint32_t>(options_.min_pairs_for_ivf));
  writer->WriteU32(static_cast<uint32_t>(options_.nlist));
  writer->WriteU32(static_cast<uint32_t>(options_.nprobe));
  writer->WriteU32(static_cast<uint32_t>(options_.kmeans_iters));
  writer->WriteU64(options_.seed);
  writer->WriteU32(static_cast<uint32_t>(labels_.size()));
  for (const int64_t head : heads_) writer->WriteI64(head);
  for (const int64_t tail : tails_) writer->WriteI64(tail);
  writer->WriteIntVector(labels_);
  writer->WriteU32(use_ivf_ ? 1 : 0);
  if (use_ivf_) ivf_.WriteTo(writer);
}

util::StatusOr<KnnPredictor> KnnPredictor::ReadFrom(
    util::BinaryReader* reader, const graph::EmbeddingStore& embeddings) {
  KnnPredictor predictor;
  predictor.num_relations_ = static_cast<int>(reader->ReadU32());
  predictor.dim_ = static_cast<int>(reader->ReadU32());
  predictor.options_.k = static_cast<int>(reader->ReadU32());
  predictor.options_.lambda = reader->ReadFloat();
  predictor.options_.confidence_gate = reader->ReadFloat();
  predictor.options_.include_na = reader->ReadU32() != 0;
  predictor.options_.min_pairs_for_ivf = static_cast<int>(reader->ReadU32());
  predictor.options_.nlist = static_cast<int>(reader->ReadU32());
  predictor.options_.nprobe = static_cast<int>(reader->ReadU32());
  predictor.options_.kmeans_iters = static_cast<int>(reader->ReadU32());
  predictor.options_.seed = reader->ReadU64();
  const uint32_t pairs = reader->ReadU32();
  predictor.heads_.resize(pairs);
  for (uint32_t p = 0; p < pairs; ++p) predictor.heads_[p] = reader->ReadI64();
  predictor.tails_.resize(pairs);
  for (uint32_t p = 0; p < pairs; ++p) predictor.tails_[p] = reader->ReadI64();
  predictor.labels_ = reader->ReadIntVector();
  const bool stored_ivf = reader->ReadU32() != 0;
  IMR_RETURN_IF_ERROR(reader->status());
  if (predictor.dim_ != embeddings.dim()) {
    return util::InvalidArgument(
        "kNN section dim does not match the embedding store in '" +
        reader->path() + "'");
  }
  if (predictor.num_relations_ <= 0 ||
      predictor.labels_.size() != static_cast<size_t>(pairs)) {
    return util::InvalidArgument("corrupt kNN section in '" + reader->path() +
                                 "'");
  }
  for (uint32_t p = 0; p < pairs; ++p) {
    if (predictor.heads_[p] < 0 ||
        predictor.heads_[p] >= embeddings.num_vertices() ||
        predictor.tails_[p] < 0 ||
        predictor.tails_[p] >= embeddings.num_vertices() ||
        predictor.labels_[p] < 0 ||
        predictor.labels_[p] >= predictor.num_relations_) {
      return util::InvalidArgument(
          "corrupt kNN section: pair out of range in '" + reader->path() +
          "'");
    }
  }
  // MR vectors are derived state: recompute from the embeddings, then
  // restore the learned IVF structure over the recomputed matrix.
  predictor.BuildMatrixAndIndex(embeddings, nullptr,
                                /*ivf_from_scratch=*/false);
  if (stored_ivf != predictor.use_ivf_) {
    return util::InvalidArgument(
        "corrupt kNN section: index kind mismatch in '" + reader->path() +
        "'");
  }
  if (predictor.use_ivf_) {
    auto ivf = graph::ann::IvfIndex::ReadFrom(
        reader, predictor.mr_matrix_.data(), predictor.num_pairs(),
        predictor.dim_);
    IMR_RETURN_IF_ERROR(ivf.status());
    predictor.ivf_ = std::move(ivf).value();
  }
  return predictor;
}

}  // namespace imr::re
