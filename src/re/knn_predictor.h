// kNN-interpolated long-tail predictor (Wan et al. 2022, "Rescue Implicit
// and Long-tail Cases: Nearest Neighbor Relation Extraction").
//
// The paper's weakest regime is sparse entity pairs: few sentences means a
// noisy PaModel posterior. This predictor memorises the TRAINING pairs'
// mutual-relation vectors MR(h,t) = U_t - U_h together with their
// distant-supervision labels, and at inference retrieves the k nearest
// stored pairs (cosine over MR space, served by the ANN index) to form a
// similarity-weighted label vote. The vote is blended into the model
// posterior only when the model is unsure:
//
//     fire  iff  max_r p_model(r) < confidence_gate
//     p(r)  =    (1 - lambda) * p_model(r) + lambda * vote(r)
//
// so confident (dense-pair) predictions pass through untouched and the
// kNN evidence only rescues the long tail.
//
// Thread model: Build once, then Interpolate is const and safe to call
// concurrently from every serve replica (float scratch is pooled
// thread-locally; the neighbor list is a thread_local reused buffer).
#ifndef IMR_RE_KNN_PREDICTOR_H_
#define IMR_RE_KNN_PREDICTOR_H_

#include <cstdint>
#include <vector>

#include "graph/ann/flat_index.h"
#include "graph/ann/ivf_index.h"
#include "graph/embedding_store.h"
#include "re/bag_dataset.h"
#include "util/serialization.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace imr::re {

struct KnnOptions {
  int k = 8;                     // neighbors per vote
  float lambda = 0.5f;           // weight of the kNN vote in the blend
  float confidence_gate = 0.6f;  // fire when max model prob < gate
  bool include_na = false;       // memorise NA-labelled (id 0) pairs too
  int min_pairs_for_ivf = 256;   // below this, brute force is cheaper
  int nlist = 64;
  int nprobe = 8;
  int kmeans_iters = 8;
  uint64_t seed = 17;
};

class KnnPredictor {
 public:
  KnnPredictor() = default;
  // The ANN indexes view mr_matrix_; moving transfers the heap buffer (so
  // the view stays valid) but copying would dangle it.
  KnnPredictor(const KnnPredictor&) = delete;
  KnnPredictor& operator=(const KnnPredictor&) = delete;
  KnnPredictor(KnnPredictor&&) = default;
  KnnPredictor& operator=(KnnPredictor&&) = default;

  /// Memorises the train bags' (pair, label) set. `pool` may be null.
  static KnnPredictor Build(const graph::EmbeddingStore& embeddings,
                            const std::vector<Bag>& train_bags,
                            int num_relations, const KnnOptions& options,
                            util::ThreadPool* pool);

  /// Blends the kNN vote into `probs` (size num_relations, the model
  /// posterior) for the pair whose MR vector is `mr` (dim() floats).
  /// Returns true when the vote fired (gate passed and neighbors found).
  bool Interpolate(const float* mr, std::vector<float>* probs) const;

  int num_pairs() const { return static_cast<int>(labels_.size()); }
  int num_relations() const { return num_relations_; }
  int dim() const { return dim_; }
  const KnnOptions& options() const { return options_; }
  bool uses_ivf() const { return use_ivf_; }
  const graph::ann::AnnIndex& index() const;

  /// Serialises pairs/labels and the learned IVF structure. MR vectors are
  /// NOT stored — they are recomputed from the embedding store at load, so
  /// the section stays O(pairs) instead of O(pairs * dim).
  void WriteTo(util::BinaryWriter* writer) const;
  static util::StatusOr<KnnPredictor> ReadFrom(
      util::BinaryReader* reader, const graph::EmbeddingStore& embeddings);

 private:
  void BuildMatrixAndIndex(const graph::EmbeddingStore& embeddings,
                           util::ThreadPool* pool, bool ivf_from_scratch);

  KnnOptions options_;
  int num_relations_ = 0;
  int dim_ = 0;
  std::vector<int64_t> heads_;
  std::vector<int64_t> tails_;
  std::vector<int> labels_;
  std::vector<float> mr_matrix_;  // [num_pairs x dim]
  graph::ann::FlatIndex flat_;
  graph::ann::IvfIndex ivf_;
  bool use_ivf_ = false;
};

}  // namespace imr::re

#endif  // IMR_RE_KNN_PREDICTOR_H_
