// Sparse hashed lexical features for the non-neural baselines (Mintz et
// al. 2009 style): unigrams, entity-adjacent words, the between-entities
// word sequence, mention distance, and entity-type conjunctions. Features
// are hashed into a fixed-size space so the models stay allocation-free.
#ifndef IMR_RE_FEATURES_H_
#define IMR_RE_FEATURES_H_

#include <cstdint>
#include <vector>

#include "re/bag_dataset.h"

namespace imr::re {

struct SparseFeatures {
  // Parallel arrays: hashed feature index -> value (1.0 for indicators).
  std::vector<uint32_t> indices;
  std::vector<float> values;
};

class FeatureExtractor {
 public:
  explicit FeatureExtractor(int hash_bits = 15);

  int dim() const { return 1 << hash_bits_; }

  /// Features of one sentence (word ids are enough: the synthetic corpus is
  /// already tokenised and vocabulary-mapped).
  SparseFeatures SentenceFeatures(const nn::EncoderInput& sentence) const;

  /// Union of sentence features plus pair-level (type) features; values
  /// accumulate so repeated evidence counts.
  SparseFeatures BagFeatures(const Bag& bag) const;

 private:
  uint32_t HashFeature(uint64_t a, uint64_t b, uint64_t c) const;

  int hash_bits_;
};

}  // namespace imr::re

#endif  // IMR_RE_FEATURES_H_
