// Bags of sentences per entity pair — the multi-instance unit of distant
// supervision. BagDataset turns a labeled corpus into encoder-ready bags,
// attaches entity-type ids from the knowledge graph and (optionally) the
// implicit-mutual-relation vectors from a LINE embedding store.
#ifndef IMR_RE_BAG_DATASET_H_
#define IMR_RE_BAG_DATASET_H_

#include <vector>

#include "graph/embedding_store.h"
#include "kg/knowledge_graph.h"
#include "nn/encoders.h"
#include "text/sentence.h"
#include "text/vocab.h"
#include "util/status.h"

namespace imr::re {

struct Bag {
  kg::EntityId head = -1;
  kg::EntityId tail = -1;
  int relation = 0;  // distant-supervision label
  std::vector<nn::EncoderInput> sentences;
  std::vector<int> head_types;
  std::vector<int> tail_types;
  // MR(head, tail) = U_tail - U_head; empty until attached.
  std::vector<float> mutual_relation;
};

struct BagDatasetOptions {
  int max_sentence_length = 120;  // paper Table III
  int max_position = 60;          // must match EncoderConfig.max_position
  int vocab_min_count = 1;
  // Replace the head/tail mentions with placeholder tokens. Entity-level
  // semantics then enter the model only through the MR / type components,
  // which is the paper's division of labour, and unseen test entities stop
  // injecting untrained <unk> activations into the max pooling.
  bool blind_entities = true;
};

/// Placeholder surface forms used when blind_entities is set.
inline constexpr const char* kHeadPlaceholder = "<head_entity>";
inline constexpr const char* kTailPlaceholder = "<tail_entity>";

class BagDataset {
 public:
  /// Builds train/test bags. The vocabulary is built from the training
  /// split only (standard protocol) and frozen.
  static BagDataset Build(const kg::KnowledgeGraph& graph,
                          const std::vector<text::LabeledSentence>& train,
                          const std::vector<text::LabeledSentence>& test,
                          const BagDatasetOptions& options = {});

  const std::vector<Bag>& train_bags() const { return train_bags_; }
  const std::vector<Bag>& test_bags() const { return test_bags_; }
  std::vector<Bag>& mutable_train_bags() { return train_bags_; }
  std::vector<Bag>& mutable_test_bags() { return test_bags_; }
  const text::Vocabulary& vocabulary() const { return vocab_; }
  int num_relations() const { return num_relations_; }

  /// Copies MR vectors out of `store` into every bag (entity id == vertex).
  [[nodiscard]] util::Status AttachMutualRelations(const graph::EmbeddingStore& store);

 private:
  text::Vocabulary vocab_;
  std::vector<Bag> train_bags_;
  std::vector<Bag> test_bags_;
  int num_relations_ = 0;
};

/// Converts one sentence into encoder features using a frozen vocabulary
/// (exposed for tests and custom pipelines).
nn::EncoderInput MakeEncoderInput(const text::Sentence& sentence,
                                  const text::Vocabulary& vocab,
                                  const BagDatasetOptions& options);

}  // namespace imr::re

#endif  // IMR_RE_BAG_DATASET_H_
