// Entity-type embedding (paper Section III-B): each of the 38 coarse FIGER
// types gets a kt-dimensional vector; an entity's type vector is the mean
// over its types, and a pair is represented as concat(head, tail) in 2*kt.
#ifndef IMR_RE_TYPE_EMBEDDING_H_
#define IMR_RE_TYPE_EMBEDDING_H_

#include <memory>
#include <vector>

#include "kg/types.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace imr::re {

class TypeEmbedding : public nn::Module {
 public:
  TypeEmbedding(int type_dim, util::Rng* rng,
                int num_types = kg::kNumCoarseTypes);

  /// Mean type embedding of one entity: [type_dim]. Requires >= 1 type.
  tensor::Tensor EntityVector(const std::vector<int>& type_ids) const;

  /// T_ij = concat(Type_i, Type_j): [2 * type_dim].
  tensor::Tensor PairVector(const std::vector<int>& head_types,
                            const std::vector<int>& tail_types) const;

  int type_dim() const { return type_dim_; }

 private:
  int type_dim_;
  std::unique_ptr<nn::Embedding> table_;
};

}  // namespace imr::re

#endif  // IMR_RE_TYPE_EMBEDDING_H_
