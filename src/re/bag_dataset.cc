#include "re/bag_dataset.h"

#include <algorithm>
#include <map>

#include "text/position.h"
#include "util/logging.h"

namespace imr::re {

nn::EncoderInput MakeEncoderInput(const text::Sentence& sentence,
                                  const text::Vocabulary& vocab,
                                  const BagDatasetOptions& options) {
  IMR_CHECK(!sentence.tokens.empty());
  const int num_tokens = static_cast<int>(sentence.tokens.size());
  const text::TruncationResult window = text::TruncateAroundEntities(
      num_tokens, sentence.head_index, sentence.tail_index,
      options.max_sentence_length);

  nn::EncoderInput input;
  input.word_ids.reserve(static_cast<size_t>(window.end - window.begin));
  for (int t = window.begin; t < window.end; ++t) {
    if (options.blind_entities && t == sentence.head_index) {
      input.word_ids.push_back(vocab.Id(kHeadPlaceholder));
    } else if (options.blind_entities && t == sentence.tail_index) {
      input.word_ids.push_back(vocab.Id(kTailPlaceholder));
    } else {
      input.word_ids.push_back(
          vocab.Id(sentence.tokens[static_cast<size_t>(t)]));
    }
  }
  const int length = window.end - window.begin;
  // Mentions may fall outside the window on pathological sentences; clamp
  // so position features stay valid.
  input.head_index =
      std::clamp(sentence.head_index - window.begin, 0, length - 1);
  input.tail_index =
      std::clamp(sentence.tail_index - window.begin, 0, length - 1);
  input.head_offsets = text::RelativePositionIds(length, input.head_index,
                                                 options.max_position);
  input.tail_offsets = text::RelativePositionIds(length, input.tail_index,
                                                 options.max_position);
  return input;
}

namespace {

std::vector<Bag> BuildBags(const kg::KnowledgeGraph& graph,
                           const std::vector<text::LabeledSentence>& corpus,
                           const text::Vocabulary& vocab,
                           const BagDatasetOptions& options) {
  // Group sentences by (head, tail); deterministic ordering via std::map.
  std::map<std::pair<int64_t, int64_t>, std::vector<const text::LabeledSentence*>>
      groups;
  for (const text::LabeledSentence& labeled : corpus) {
    groups[{labeled.sentence.head_entity, labeled.sentence.tail_entity}]
        .push_back(&labeled);
  }
  std::vector<Bag> bags;
  bags.reserve(groups.size());
  for (const auto& [pair, sentences] : groups) {
    Bag bag;
    bag.head = pair.first;
    bag.tail = pair.second;
    bag.relation = sentences.front()->relation;
    bag.head_types = graph.entity(bag.head).type_ids;
    bag.tail_types = graph.entity(bag.tail).type_ids;
    bag.sentences.reserve(sentences.size());
    for (const text::LabeledSentence* labeled : sentences) {
      bag.sentences.push_back(
          MakeEncoderInput(labeled->sentence, vocab, options));
    }
    bags.push_back(std::move(bag));
  }
  return bags;
}

}  // namespace

BagDataset BagDataset::Build(const kg::KnowledgeGraph& graph,
                             const std::vector<text::LabeledSentence>& train,
                             const std::vector<text::LabeledSentence>& test,
                             const BagDatasetOptions& options) {
  BagDataset dataset;
  for (const text::LabeledSentence& labeled : train) {
    for (const std::string& token : labeled.sentence.tokens)
      dataset.vocab_.Count(token);
  }
  if (options.blind_entities) {
    // Guarantee the placeholders survive min-count pruning.
    for (int i = 0; i < options.vocab_min_count; ++i) {
      dataset.vocab_.Count(kHeadPlaceholder);
      dataset.vocab_.Count(kTailPlaceholder);
    }
  }
  dataset.vocab_.Freeze(options.vocab_min_count);
  dataset.train_bags_ = BuildBags(graph, train, dataset.vocab_, options);
  dataset.test_bags_ = BuildBags(graph, test, dataset.vocab_, options);
  dataset.num_relations_ = graph.num_relations();
  return dataset;
}

util::Status BagDataset::AttachMutualRelations(
    const graph::EmbeddingStore& store) {
  for (std::vector<Bag>* split : {&train_bags_, &test_bags_}) {
    for (Bag& bag : *split) {
      if (bag.head >= store.num_vertices() ||
          bag.tail >= store.num_vertices()) {
        return util::InvalidArgument(
            "bag references an entity outside the embedding store");
      }
      bag.mutual_relation = store.MutualRelation(
          static_cast<int>(bag.head), static_cast<int>(bag.tail));
    }
  }
  return util::OkStatus();
}

}  // namespace imr::re
