// CNN+RL baseline (Feng et al. 2018): a reinforcement-learning instance
// selector paired with a CNN relation classifier. The selector is a
// Bernoulli policy over sentences (logistic regression on sparse sentence
// features, trained with REINFORCE against the classifier's log-likelihood
// as reward); the classifier is a CNN encoder with average aggregation
// trained on the selected instances.
#ifndef IMR_RE_CNN_RL_H_
#define IMR_RE_CNN_RL_H_

#include <memory>
#include <vector>

#include "re/features.h"
#include "re/pa_model.h"

namespace imr::re {

struct CnnRlConfig {
  // Encoder of the convolutional classifier. Piecewise pooling by default:
  // plain single-max-pool CNN with average bag aggregation fails to locate
  // the entity context on the 53-relation preset (see EXPERIMENTS.md); the
  // contribution under test here is the RL instance selector either way.
  std::string encoder = "pcnn";
  int pretrain_epochs = 2;   // classifier warm-up on all instances
  int joint_epochs = 3;      // selector + classifier episodes
  int batch_size = 160;
  float classifier_lr = 0.01f;  // Adam
  float selector_lr = 0.05f;
  float lr_decay = 0.98f;
  int hash_bits = 15;
  uint64_t seed = 331;
};

class CnnRlModel {
 public:
  CnnRlModel(const PaModelConfig& classifier_config,
             const CnnRlConfig& config, util::Rng* rng);

  void Train(const std::vector<Bag>& bags);

  /// P(relation | bag) using the selector to filter instances first.
  std::vector<float> Predict(const Bag& bag);

  int num_relations() const { return classifier_->num_relations(); }
  /// Selector keep-probability of a single sentence (for tests).
  float KeepProbability(const nn::EncoderInput& sentence) const;

 private:
  Bag SelectInstances(const Bag& bag, bool stochastic, util::Rng* rng,
                      std::vector<int>* kept_indices) const;

  CnnRlConfig config_;
  FeatureExtractor extractor_;
  std::unique_ptr<PaModel> classifier_;
  std::vector<float> selector_weights_;
  float selector_bias_ = 0.0f;
  float reward_baseline_ = 0.0f;
  bool baseline_initialized_ = false;
  util::Rng rng_;
};

}  // namespace imr::re

#endif  // IMR_RE_CNN_RL_H_
