// The paper's unified relation-extraction model (Section III-D).
//
// Per bag of sentences for an entity pair (e_i, e_j):
//   RE     = softmax(W_RE X_bag + b_RE)   X_bag from the sentence encoder +
//                                          selective attention / averaging
//   C_MR   = softmax(W_MR MR_ij + b_MR)    MR_ij = U_j - U_i from LINE
//   C_T    = softmax(W_T  T_ij  + b_T)     T_ij = concat(type embeddings)
//   P(r)   = softmax(w (a C_MR + b C_T + g RE) + bias)
// with scalar a, b, g, w learned jointly with everything else.
//
// Configuration degrees of freedom reproduce the paper's model zoo:
//   encoder=pcnn, att, no MR/T            -> PCNN+ATT   (Lin et al.)
//   encoder=pcnn, avg, no MR/T            -> PCNN       (Zeng et al.)
//   encoder=cnn,  att, no MR/T            -> CNN+ATT
//   encoder=gru,  att, no MR/T            -> GRU+ATT
//   encoder=bgwa, att, no MR/T            -> BGWA-style
//   + use_entity_type                     -> PA-T
//   + use_mutual_relation                 -> PA-MR
//   + both                                -> PA-TMR (the paper's model)
#ifndef IMR_RE_PA_MODEL_H_
#define IMR_RE_PA_MODEL_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/encoders.h"
#include "nn/layers.h"
#include "re/bag_dataset.h"
#include "re/config.h"
#include "re/type_embedding.h"
#include "util/status.h"

namespace imr::re {

class PaModel : public nn::Module {
 public:
  PaModel(const PaModelConfig& config, util::Rng* rng);

  /// Final (pre-softmax) logits of one bag, with the attention query fixed
  /// to `query_relation` (the gold label during training).
  tensor::Tensor BagLogits(const Bag& bag, int query_relation,
                           util::Rng* rng) const;

  /// Training loss of a batch of bags (mean cross-entropy of the gold
  /// labels, attention queried with the gold label as in Lin et al.).
  tensor::Tensor BatchLoss(const std::vector<const Bag*>& batch,
                           util::Rng* rng) const;

  /// Inference: probability of every relation for a bag. With selective
  /// attention each relation r is scored under its own query (the standard
  /// "diagonal" evaluation); with avg/max one forward pass suffices.
  /// `rng` only drives dropout and is untouched (may be null) unless the
  /// model is in training mode.
  std::vector<float> Predict(const Bag& bag, util::Rng* rng) const;

  /// Deterministic, Rng-free inference: the same probabilities with dropout
  /// guaranteed off. Requires the model to be in eval mode
  /// (SetTraining(false) or nn::EvalModeGuard); checked loudly.
  std::vector<float> Predict(const Bag& bag) const;

  const PaModelConfig& config() const { return config_; }
  int num_relations() const { return config_.num_relations; }

  /// The learned fusion weights (alpha, beta, gamma) — exposed for the
  /// ablation benches.
  float alpha() const;
  float beta() const;
  float gamma() const;

  /// Builds int8 shadows of the RE/MR/type heads from the current fp32
  /// weights. Afterwards every no-grad forward (Predict, serving) routes
  /// those heads through the quantized int8 GEMM; training-mode forwards
  /// (gradients recording) still use the fp32 parameters, so a co-located
  /// fine-tuning loop keeps exact gradients. Call again after a weight
  /// update to refresh the shadows.
  void EnableQuantizedInference();
  bool quantized_inference() const { return quantized_re_head_ != nullptr; }

 private:
  // Shared inference path behind both Predict overloads.
  std::vector<float> PredictImpl(const Bag& bag, util::Rng* rng) const;
  // Encodes all sentences of a bag into [N x C].
  tensor::Tensor EncodeBag(const Bag& bag, util::Rng* rng) const;
  tensor::Tensor Aggregate(const tensor::Tensor& encodings,
                           int query_relation) const;
  // Fuses RE logits with the MR / Type confidences for one bag.
  tensor::Tensor FuseLogits(const Bag& bag,
                            const tensor::Tensor& re_logits) const;
  // Head forward that honors quantized inference: the int8 shadow when one
  // exists and no gradients are recording, the fp32 layer otherwise.
  tensor::Tensor HeadForward(const nn::Linear& head,
                             const nn::QuantizedLinear* quantized,
                             const tensor::Tensor& x) const;

  PaModelConfig config_;
  std::unique_ptr<nn::SentenceEncoder> encoder_;
  std::unique_ptr<nn::SelectiveAttention> attention_;
  std::unique_ptr<nn::Linear> re_head_;
  std::unique_ptr<nn::Linear> mr_head_;
  std::unique_ptr<TypeEmbedding> type_embedding_;
  std::unique_ptr<nn::Linear> type_head_;
  // Int8 serving shadows (EnableQuantizedInference); null until enabled.
  std::unique_ptr<nn::QuantizedLinear> quantized_re_head_;
  std::unique_ptr<nn::QuantizedLinear> quantized_mr_head_;
  std::unique_ptr<nn::QuantizedLinear> quantized_type_head_;
  // Fusion parameters.
  tensor::Tensor alpha_, beta_, gamma_, fuse_scale_, fuse_bias_;
};

}  // namespace imr::re

#endif  // IMR_RE_PA_MODEL_H_
