// Hyper-parameters of the relation-extraction models (paper Table III).
#ifndef IMR_RE_CONFIG_H_
#define IMR_RE_CONFIG_H_

#include <string>

#include "nn/encoders.h"

namespace imr::re {

enum class Aggregation {
  kAttention,  // selective attention (Lin et al. 2016)
  kAverage,    // uniform average of sentence encodings
  kMax,        // elementwise max over sentence encodings
};

struct PaModelConfig {
  int num_relations = 0;            // required, including NA
  std::string encoder = "pcnn";     // pcnn | cnn | gru | bgwa
  Aggregation aggregation = Aggregation::kAttention;
  bool use_mutual_relation = false; // the paper's MR component
  bool use_entity_type = false;     // the paper's T component
  int type_dim = 20;                // kt
  int mutual_relation_dim = 128;    // ke (LINE embedding dim)
  // Weight of an auxiliary cross-entropy on the raw RE logits when the
  // fusion components are active. Keeps the text path training even while
  // the (much faster to learn) type/MR heads dominate the fused loss early
  // on; 0 disables.
  float auxiliary_re_loss = 0.5f;
  nn::EncoderConfig encoder_config; // kw/kp/l/k/p (Table III defaults)
};

struct TrainerConfig {
  int epochs = 60;
  int batch_size = 160;      // n (Table III)
  std::string optimizer = "sgd";  // sgd | adagrad | adam
  float learning_rate = 0.3f;// lr (Table III; use ~0.01 for adam)
  float lr_decay = 0.98f;    // multiplicative per-epoch decay
  float weight_decay = 1e-4f;
  float clip_norm = 5.0f;
  // Adversarial training (Wu et al. 2017, paper Section II-B): when > 0,
  // each batch is trained a second time with the word-embedding table
  // perturbed by epsilon * sign(grad) (FGSM). Regularises against the
  // wrong-label noise of distant supervision.
  float adversarial_epsilon = 0.0f;
  uint64_t seed = 101;
  bool verbose = false;
  // Data-parallel worker count; 0 defers to util::GlobalThreads(). At 1 the
  // original sequential batch loop (and rng stream) runs bit-exactly. At
  // N>1 each batch splits into a FIXED number of chunks with per-chunk rngs
  // and gradient sinks, merged in chunk order — so all N>1 runs are
  // bit-identical to each other (though not to the N=1 stream, whose
  // dropout draws interleave differently).
  int threads = 0;
};

/// Paper defaults for a dataset with `num_relations` relations and a
/// vocabulary of `vocab_size` words.
PaModelConfig PaperDefaults(int num_relations, int vocab_size);

}  // namespace imr::re

#endif  // IMR_RE_CONFIG_H_
