#include "re/features.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace imr::re {

namespace {
// Feature namespaces keep different feature kinds from colliding
// systematically.
enum FeatureKind : uint64_t {
  kUnigram = 1,
  kBetween = 2,
  kAdjacent = 3,
  kDistance = 4,
  kTypePair = 5,
};

uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

FeatureExtractor::FeatureExtractor(int hash_bits) : hash_bits_(hash_bits) {
  IMR_CHECK_GE(hash_bits, 8);
  IMR_CHECK_LE(hash_bits, 24);
}

uint32_t FeatureExtractor::HashFeature(uint64_t a, uint64_t b,
                                       uint64_t c) const {
  const uint64_t h = Mix(a * 0x9E3779B97F4A7C15ULL + Mix(b) + Mix(c) * 31);
  return static_cast<uint32_t>(h & ((1ULL << hash_bits_) - 1));
}

SparseFeatures FeatureExtractor::SentenceFeatures(
    const nn::EncoderInput& sentence) const {
  std::map<uint32_t, float> accum;
  const auto& words = sentence.word_ids;
  const int n = static_cast<int>(words.size());
  for (int t = 0; t < n; ++t) {
    accum[HashFeature(kUnigram, static_cast<uint64_t>(words[t]), 0)] += 1.0f;
  }
  const int lo = std::min(sentence.head_index, sentence.tail_index);
  const int hi = std::max(sentence.head_index, sentence.tail_index);
  // Words strictly between the mentions, position-tagged.
  for (int t = lo + 1; t < hi; ++t) {
    accum[HashFeature(kBetween, static_cast<uint64_t>(words[t]),
                      static_cast<uint64_t>(t - lo))] += 1.0f;
  }
  // Window of +-2 around each mention.
  for (int delta = -2; delta <= 2; ++delta) {
    if (delta == 0) continue;
    for (int center : {sentence.head_index, sentence.tail_index}) {
      const int t = center + delta;
      if (t < 0 || t >= n) continue;
      accum[HashFeature(kAdjacent, static_cast<uint64_t>(words[t]),
                        static_cast<uint64_t>(delta + 8))] += 1.0f;
    }
  }
  // Bucketed mention distance.
  const int distance = std::min(hi - lo, 10);
  accum[HashFeature(kDistance, static_cast<uint64_t>(distance), 0)] += 1.0f;

  SparseFeatures out;
  out.indices.reserve(accum.size());
  out.values.reserve(accum.size());
  for (const auto& [index, value] : accum) {
    out.indices.push_back(index);
    out.values.push_back(value);
  }
  return out;
}

SparseFeatures FeatureExtractor::BagFeatures(const Bag& bag) const {
  std::map<uint32_t, float> accum;
  for (const nn::EncoderInput& sentence : bag.sentences) {
    SparseFeatures features = SentenceFeatures(sentence);
    for (size_t i = 0; i < features.indices.size(); ++i)
      accum[features.indices[i]] += features.values[i];
  }
  // Normalise by bag size so big bags don't dominate.
  const float inv = 1.0f / static_cast<float>(bag.sentences.size());
  for (auto& [index, value] : accum) value *= inv;
  // Type-conjunction features.
  for (int head_type : bag.head_types) {
    for (int tail_type : bag.tail_types) {
      accum[HashFeature(kTypePair, static_cast<uint64_t>(head_type),
                        static_cast<uint64_t>(tail_type))] += 1.0f;
    }
  }
  SparseFeatures out;
  out.indices.reserve(accum.size());
  out.values.reserve(accum.size());
  for (const auto& [index, value] : accum) {
    out.indices.push_back(index);
    out.values.push_back(value);
  }
  return out;
}

}  // namespace imr::re
