// Mintz et al. 2009 baseline: multiclass logistic regression over sparse
// bag-level lexical features (the classic non-neural distant-supervision
// model of paper Fig. 4a).
#ifndef IMR_RE_MINTZ_H_
#define IMR_RE_MINTZ_H_

#include <vector>

#include "re/features.h"

namespace imr::re {

struct MintzConfig {
  int epochs = 12;
  float learning_rate = 0.5f;
  float l2 = 1e-5f;
  int hash_bits = 15;
  uint64_t seed = 211;
};

class MintzModel {
 public:
  MintzModel(int num_relations, const MintzConfig& config);

  void Train(const std::vector<Bag>& bags);

  /// P(relation | bag) for every relation.
  std::vector<float> Predict(const Bag& bag) const;

  int num_relations() const { return num_relations_; }

 private:
  std::vector<float> Scores(const SparseFeatures& features) const;

  int num_relations_;
  MintzConfig config_;
  FeatureExtractor extractor_;
  std::vector<float> weights_;  // [num_relations x dim], row-major
  std::vector<float> bias_;
};

}  // namespace imr::re

#endif  // IMR_RE_MINTZ_H_
