// Mini-batch SGD training loop for PaModel over a bag dataset, with the
// paper's schedule (SGD, lr 0.3, batch 160, per-epoch decay) and an
// optional per-epoch held-out evaluation callback.
#ifndef IMR_RE_TRAINER_H_
#define IMR_RE_TRAINER_H_

#include <functional>
#include <vector>

#include "eval/heldout.h"
#include "re/config.h"
#include "re/pa_model.h"

namespace imr::re {

struct EpochStats {
  int epoch = 0;
  double mean_loss = 0.0;
  double seconds = 0.0;
};

class Trainer {
 public:
  Trainer(PaModel* model, const TrainerConfig& config);

  /// Trains on `train_bags`; returns per-epoch stats. The optional callback
  /// fires after each epoch (e.g. for eval logging / early stopping: return
  /// false to stop).
  std::vector<EpochStats> Train(
      const std::vector<Bag>& train_bags,
      const std::function<bool(const EpochStats&)>& on_epoch = nullptr);

  /// Convenience: evaluates the trained model on `test_bags`.
  eval::HeldOutResult Evaluate(const std::vector<Bag>& test_bags);

 private:
  /// Data-parallel forward/backward over one batch (clean pass plus the
  /// optional FGSM adversarial pass), leaving full-batch gradients in the
  /// shared parameter tensors. Returns the batch mean loss. Chunking is a
  /// pure function of the batch size, so results are bit-identical for any
  /// worker count > 1.
  double ParallelBatchStep(const std::vector<const Bag*>& batch,
                           std::vector<tensor::Tensor>* adversarial_targets);

  /// FGSM helpers shared by the sequential and data-parallel paths:
  /// snapshot the targeted embedding tables and nudge them along the sign
  /// of the accumulated gradient, then (after the adversarial pass) copy
  /// the snapshots back in place. Tables with a row-sparse gradient save,
  /// perturb and restore only the touched rows — exact, because rows with
  /// zero gradient receive a zero perturbation and the adversarial pass
  /// re-gathers the same batch, so untouched rows are never read while
  /// perturbed. Snapshot storage is a reused member, so steady-state FGSM
  /// steps stop allocating O(vocab x dim) copies.
  void PerturbAdversarial(std::vector<tensor::Tensor>* targets);
  void RestoreAdversarial(std::vector<tensor::Tensor>* targets);

  PaModel* model_;
  TrainerConfig config_;
  util::Rng rng_;

  struct FgsmSnapshot {
    bool sparse = false;
    std::vector<int> rows;      // touched rows when sparse
    std::vector<float> values;  // row slices when sparse, whole table dense
  };
  std::vector<FgsmSnapshot> fgsm_saved_;
};

/// One-call helper used by benches: train a model, return the held-out
/// result.
eval::HeldOutResult TrainAndEvaluate(PaModel* model,
                                     const std::vector<Bag>& train_bags,
                                     const std::vector<Bag>& test_bags,
                                     const TrainerConfig& config);

}  // namespace imr::re

#endif  // IMR_RE_TRAINER_H_
