#include "re/pa_model.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace imr::re {

using tensor::Tensor;

PaModel::PaModel(const PaModelConfig& config, util::Rng* rng)
    : config_(config) {
  IMR_CHECK_GT(config.num_relations, 1);
  encoder_ = nn::MakeEncoder(config.encoder, config.encoder_config, rng);
  IMR_CHECK(encoder_ != nullptr);
  RegisterChild("encoder", encoder_.get());

  const int repr_dim = encoder_->output_dim();
  if (config.aggregation == Aggregation::kAttention) {
    attention_ = std::make_unique<nn::SelectiveAttention>(
        repr_dim, config.num_relations, rng);
    RegisterChild("attention", attention_.get());
  }
  re_head_ =
      std::make_unique<nn::Linear>(repr_dim, config.num_relations, rng);
  RegisterChild("re_head", re_head_.get());

  if (config.use_mutual_relation) {
    mr_head_ = std::make_unique<nn::Linear>(config.mutual_relation_dim,
                                            config.num_relations, rng);
    RegisterChild("mr_head", mr_head_.get());
  }
  if (config.use_entity_type) {
    type_embedding_ = std::make_unique<TypeEmbedding>(config.type_dim, rng);
    RegisterChild("type_embedding", type_embedding_.get());
    type_head_ = std::make_unique<nn::Linear>(2 * config.type_dim,
                                              config.num_relations, rng);
    RegisterChild("type_head", type_head_.get());
  }
  if (config.use_mutual_relation || config.use_entity_type) {
    // The side components start down-weighted relative to the base RE
    // model: with few training bags the type head otherwise wins the early
    // optimisation race and the fused model collapses onto it.
    alpha_ = RegisterParameter("alpha", Tensor::Scalar(0.5f));
    beta_ = RegisterParameter("beta", Tensor::Scalar(0.5f));
    gamma_ = RegisterParameter("gamma", Tensor::Scalar(1.5f));
    // w and the bias of the final linear fusion; w starts at a value that
    // keeps initial logits in a useful softmax range.
    fuse_scale_ = RegisterParameter("fuse_scale", Tensor::Scalar(4.0f));
    fuse_bias_ = RegisterParameter(
        "fuse_bias", Tensor::Zeros({config.num_relations}));
  }
}

void PaModel::EnableQuantizedInference() {
  quantized_re_head_ = std::make_unique<nn::QuantizedLinear>(*re_head_);
  if (mr_head_ != nullptr) {
    quantized_mr_head_ = std::make_unique<nn::QuantizedLinear>(*mr_head_);
  }
  if (type_head_ != nullptr) {
    quantized_type_head_ = std::make_unique<nn::QuantizedLinear>(*type_head_);
  }
}

Tensor PaModel::HeadForward(const nn::Linear& head,
                            const nn::QuantizedLinear* quantized,
                            const Tensor& x) const {
  if (quantized != nullptr && !tensor::GradModeEnabled()) {
    return quantized->Forward(x);
  }
  return head.Forward(x);
}

float PaModel::alpha() const { return alpha_.defined() ? alpha_.item() : 0; }
float PaModel::beta() const { return beta_.defined() ? beta_.item() : 0; }
float PaModel::gamma() const { return gamma_.defined() ? gamma_.item() : 0; }

Tensor PaModel::EncodeBag(const Bag& bag, util::Rng* rng) const {
  IMR_CHECK(!bag.sentences.empty());
  std::vector<Tensor> rows;
  rows.reserve(bag.sentences.size());
  for (const nn::EncoderInput& sentence : bag.sentences) {
    rows.push_back(encoder_->Encode(sentence, rng));
  }
  return tensor::ConcatRows(rows);
}

Tensor PaModel::Aggregate(const Tensor& encodings, int query_relation) const {
  switch (config_.aggregation) {
    case Aggregation::kAttention:
      return attention_->BagRepresentation(encodings, query_relation);
    case Aggregation::kAverage:
      return tensor::MeanRows(encodings);
    case Aggregation::kMax:
      return tensor::MaxOverRows(encodings);
  }
  IMR_CHECK(false);
  return Tensor();
}

Tensor PaModel::FuseLogits(const Bag& bag, const Tensor& re_logits) const {
  if (!config_.use_mutual_relation && !config_.use_entity_type) {
    return re_logits;
  }
  // gamma * RE with RE = softmax(re_logits).
  Tensor mixture =
      tensor::ScaleByScalarTensor(tensor::Softmax(re_logits), gamma_);
  if (config_.use_mutual_relation) {
    IMR_CHECK_EQ(static_cast<int>(bag.mutual_relation.size()),
                 config_.mutual_relation_dim);
    Tensor mr_input = Tensor::FromData({config_.mutual_relation_dim},
                                       bag.mutual_relation);
    Tensor c_mr = tensor::Softmax(
        HeadForward(*mr_head_, quantized_mr_head_.get(), mr_input));
    mixture = tensor::Add(mixture, tensor::ScaleByScalarTensor(c_mr, alpha_));
  }
  if (config_.use_entity_type) {
    Tensor t_input =
        type_embedding_->PairVector(bag.head_types, bag.tail_types);
    Tensor c_t = tensor::Softmax(
        HeadForward(*type_head_, quantized_type_head_.get(), t_input));
    mixture = tensor::Add(mixture, tensor::ScaleByScalarTensor(c_t, beta_));
  }
  return tensor::Add(tensor::ScaleByScalarTensor(mixture, fuse_scale_),
                     fuse_bias_);
}

Tensor PaModel::BagLogits(const Bag& bag, int query_relation,
                          util::Rng* rng) const {
  Tensor encodings = EncodeBag(bag, rng);
  Tensor bag_repr = Aggregate(encodings, query_relation);
  Tensor re_logits = re_head_->Forward(bag_repr);
  return FuseLogits(bag, re_logits);
}

Tensor PaModel::BatchLoss(const std::vector<const Bag*>& batch,
                          util::Rng* rng) const {
  IMR_CHECK(!batch.empty());
  const bool fused =
      config_.use_mutual_relation || config_.use_entity_type;
  const bool auxiliary = fused && config_.auxiliary_re_loss > 0.0f;
  std::vector<Tensor> logit_rows;
  std::vector<Tensor> re_rows;
  std::vector<int> labels;
  logit_rows.reserve(batch.size());
  labels.reserve(batch.size());
  for (const Bag* bag : batch) {
    Tensor encodings = EncodeBag(*bag, rng);
    Tensor bag_repr = Aggregate(encodings, bag->relation);
    Tensor re_logits = re_head_->Forward(bag_repr);
    logit_rows.push_back(FuseLogits(*bag, re_logits));
    if (auxiliary) re_rows.push_back(re_logits);
    labels.push_back(bag->relation);
  }
  Tensor loss =
      tensor::CrossEntropyLoss(tensor::ConcatRows(logit_rows), labels);
  if (auxiliary) {
    // Keep the text path trained even when the fused loss leans on the
    // faster-converging MR/type heads (see PaModelConfig).
    Tensor re_loss =
        tensor::CrossEntropyLoss(tensor::ConcatRows(re_rows), labels);
    loss = tensor::Add(
        loss, tensor::Scale(re_loss, config_.auxiliary_re_loss));
  }
  return loss;
}

std::vector<float> PaModel::Predict(const Bag& bag, util::Rng* rng) const {
  return PredictImpl(bag, rng);
}

std::vector<float> PaModel::Predict(const Bag& bag) const {
  // Without an rng there is nothing to drive dropout, so a training-mode
  // forward pass would be silently wrong — refuse it.
  IMR_CHECK(!training());
  return PredictImpl(bag, /*rng=*/nullptr);
}

std::vector<float> PaModel::PredictImpl(const Bag& bag,
                                        util::Rng* rng) const {
  tensor::NoGradGuard no_grad;
  Tensor encodings = EncodeBag(bag, rng);
  std::vector<float> probabilities(
      static_cast<size_t>(config_.num_relations), 0.0f);
  if (config_.aggregation == Aggregation::kAttention) {
    // Diagonal evaluation: relation r is scored under its own query.
    for (int r = 0; r < config_.num_relations; ++r) {
      Tensor bag_repr = Aggregate(encodings, r);
      Tensor logits = FuseLogits(
          bag, HeadForward(*re_head_, quantized_re_head_.get(), bag_repr));
      Tensor probs = tensor::Softmax(logits);
      probabilities[static_cast<size_t>(r)] = probs.at(r);
    }
  } else {
    Tensor bag_repr = Aggregate(encodings, /*query_relation=*/0);
    Tensor probs = tensor::Softmax(FuseLogits(
        bag, HeadForward(*re_head_, quantized_re_head_.get(), bag_repr)));
    for (int r = 0; r < config_.num_relations; ++r)
      probabilities[static_cast<size_t>(r)] = probs.at(r);
  }
  return probabilities;
}

}  // namespace imr::re
