#include "re/cnn_rl.h"

#include <algorithm>
#include <cmath>

#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace imr::re {

CnnRlModel::CnnRlModel(const PaModelConfig& classifier_config,
                       const CnnRlConfig& config, util::Rng* rng)
    : config_(config), extractor_(config.hash_bits), rng_(config.seed) {
  PaModelConfig cnn_config = classifier_config;
  cnn_config.encoder = config.encoder;
  cnn_config.aggregation = Aggregation::kAverage;
  cnn_config.use_mutual_relation = false;
  cnn_config.use_entity_type = false;
  classifier_ = std::make_unique<PaModel>(cnn_config, rng);
  selector_weights_.assign(static_cast<size_t>(extractor_.dim()), 0.0f);
}

float CnnRlModel::KeepProbability(const nn::EncoderInput& sentence) const {
  const SparseFeatures f = extractor_.SentenceFeatures(sentence);
  float score = selector_bias_;
  for (size_t i = 0; i < f.indices.size(); ++i)
    score += selector_weights_[f.indices[i]] * f.values[i];
  return 1.0f / (1.0f + std::exp(-score));
}

Bag CnnRlModel::SelectInstances(const Bag& bag, bool stochastic,
                                util::Rng* rng,
                                std::vector<int>* kept_indices) const {
  Bag selected = bag;
  selected.sentences.clear();
  kept_indices->clear();
  float best_p = -1.0f;
  int best_index = 0;
  for (size_t s = 0; s < bag.sentences.size(); ++s) {
    const float p = KeepProbability(bag.sentences[s]);
    if (p > best_p) {
      best_p = p;
      best_index = static_cast<int>(s);
    }
    const bool keep = stochastic ? rng->Bernoulli(p) : p >= 0.5f;
    if (keep) {
      selected.sentences.push_back(bag.sentences[s]);
      kept_indices->push_back(static_cast<int>(s));
    }
  }
  if (selected.sentences.empty()) {
    // Never leave a bag empty: keep the selector's favourite sentence.
    selected.sentences.push_back(
        bag.sentences[static_cast<size_t>(best_index)]);
    kept_indices->push_back(best_index);
  }
  return selected;
}

void CnnRlModel::Train(const std::vector<Bag>& bags) {
  IMR_CHECK(!bags.empty());
  // Adam: the synthetic corpora are too small for the paper's raw-SGD
  // schedule to escape memorisation (see DESIGN.md).
  nn::Adam optimizer(classifier_.get(), config_.classifier_lr);

  std::vector<const Bag*> order;
  order.reserve(bags.size());
  for (const Bag& bag : bags) order.push_back(&bag);

  // Phase 1: pretrain the classifier on all instances.
  for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
    classifier_->SetTraining(true);
    rng_.Shuffle(&order);
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(config_.batch_size)) {
      const size_t end = std::min(
          order.size(), begin + static_cast<size_t>(config_.batch_size));
      std::vector<const Bag*> batch(order.begin() + static_cast<long>(begin),
                                    order.begin() + static_cast<long>(end));
      classifier_->ZeroGrad();
      classifier_->BatchLoss(batch, &rng_).Backward();
      optimizer.Step();
    }
    optimizer.set_learning_rate(optimizer.learning_rate() *
                                config_.lr_decay);
  }

  // Phase 2: joint episodes — the selector samples instance subsets, the
  // classifier's log-likelihood is the reward. Classifier updates are
  // batched (per-bag Adam steps destabilise it on larger corpora); the
  // selector's REINFORCE update stays per-bag.
  float selector_lr = config_.selector_lr;
  std::vector<Bag> batch_buffer;
  auto flush_classifier_batch = [&] {
    if (batch_buffer.empty()) return;
    std::vector<const Bag*> batch;
    batch.reserve(batch_buffer.size());
    for (const Bag& bag : batch_buffer) batch.push_back(&bag);
    classifier_->ZeroGrad();
    classifier_->BatchLoss(batch, &rng_).Backward();
    optimizer.Step();
    batch_buffer.clear();
  };
  for (int epoch = 0; epoch < config_.joint_epochs; ++epoch) {
    classifier_->SetTraining(true);
    rng_.Shuffle(&order);
    std::vector<int> kept;
    for (const Bag* bag : order) {
      Bag selected = SelectInstances(*bag, /*stochastic=*/true, &rng_, &kept);

      float reward;
      {
        tensor::NoGradGuard no_grad;
        reward = -classifier_->BatchLoss({&selected}, &rng_).item();
      }
      batch_buffer.push_back(selected);
      if (static_cast<int>(batch_buffer.size()) >= config_.batch_size) {
        flush_classifier_batch();
      }

      if (!baseline_initialized_) {
        reward_baseline_ = reward;
        baseline_initialized_ = true;
      }
      const float advantage = reward - reward_baseline_;
      reward_baseline_ = 0.95f * reward_baseline_ + 0.05f * reward;

      // REINFORCE update: grad log pi = (action - p) * features.
      for (size_t s = 0; s < bag->sentences.size(); ++s) {
        const float p = KeepProbability(bag->sentences[s]);
        const bool was_kept =
            std::find(kept.begin(), kept.end(), static_cast<int>(s)) !=
            kept.end();
        const float action = was_kept ? 1.0f : 0.0f;
        const float scale = selector_lr * advantage * (action - p);
        if (scale == 0.0f) continue;
        const SparseFeatures f =
            extractor_.SentenceFeatures(bag->sentences[s]);
        for (size_t i = 0; i < f.indices.size(); ++i)
          selector_weights_[f.indices[i]] += scale * f.values[i];
        selector_bias_ += scale;
      }
    }
    flush_classifier_batch();
    selector_lr *= config_.lr_decay;
    optimizer.set_learning_rate(optimizer.learning_rate() *
                                config_.lr_decay);
  }
  classifier_->SetTraining(false);
}

std::vector<float> CnnRlModel::Predict(const Bag& bag) {
  classifier_->SetTraining(false);
  std::vector<int> kept;
  Bag selected =
      SelectInstances(bag, /*stochastic=*/false, &rng_, &kept);
  return classifier_->Predict(selected, &rng_);
}

}  // namespace imr::re
