// MultiR-style baseline (Hoffmann et al. 2011): multi-instance perceptron.
// Each sentence is scored independently; a bag's relation score is the max
// over its sentences (at-least-one assumption). Training is a structured
// perceptron update on the highest-scoring sentence when the bag-level
// prediction is wrong.
#ifndef IMR_RE_MULTIR_H_
#define IMR_RE_MULTIR_H_

#include <vector>

#include "re/features.h"

namespace imr::re {

struct MultirConfig {
  int epochs = 8;
  float learning_rate = 0.1f;
  int hash_bits = 15;
  uint64_t seed = 223;
};

class MultirModel {
 public:
  MultirModel(int num_relations, const MultirConfig& config);

  void Train(const std::vector<Bag>& bags);

  /// Pseudo-probabilities: softmax over the bag's max-over-sentences scores.
  std::vector<float> Predict(const Bag& bag) const;

 private:
  // Per-relation max over sentence scores, plus which sentence attains it.
  void BagScores(const std::vector<SparseFeatures>& sentences,
                 std::vector<float>* scores,
                 std::vector<int>* best_sentence) const;
  float SentenceScore(const SparseFeatures& f, int relation) const;
  void Update(const SparseFeatures& f, int relation, float step);

  int num_relations_;
  MultirConfig config_;
  FeatureExtractor extractor_;
  std::vector<float> weights_;  // [num_relations x dim]
};

}  // namespace imr::re

#endif  // IMR_RE_MULTIR_H_
