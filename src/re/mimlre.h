// MIMLRE-style baseline (Surdeanu et al. 2012): multi-instance multi-label
// learning via hard EM. Each sentence carries a latent label; the E-step
// assigns latent labels consistent with the bag's relation under the
// at-least-one constraint (the best-scoring sentence keeps the bag label,
// the others may flip to NA), and the M-step retrains a per-sentence
// multiclass logistic regression on the imputed labels. This is the
// classic simplification of the full graphical model, sufficient for the
// Fig. 4a baseline roster.
#ifndef IMR_RE_MIMLRE_H_
#define IMR_RE_MIMLRE_H_

#include <vector>

#include "re/features.h"

namespace imr::re {

struct MimlreConfig {
  int em_rounds = 4;
  int epochs_per_round = 4;  // logistic-regression epochs per M-step
  float learning_rate = 0.5f;
  float l2 = 1e-5f;
  int hash_bits = 15;
  uint64_t seed = 239;
};

class MimlreModel {
 public:
  MimlreModel(int num_relations, const MimlreConfig& config);

  void Train(const std::vector<Bag>& bags);

  /// Bag-level probabilities: noisy-OR of per-sentence posteriors for each
  /// non-NA relation, renormalised.
  std::vector<float> Predict(const Bag& bag) const;

 private:
  std::vector<float> SentenceScores(const SparseFeatures& f) const;
  void SgdStep(const SparseFeatures& f, int label, float lr);

  int num_relations_;
  MimlreConfig config_;
  FeatureExtractor extractor_;
  std::vector<float> weights_;  // [num_relations x dim]
  std::vector<float> bias_;
};

}  // namespace imr::re

#endif  // IMR_RE_MIMLRE_H_
