#include "re/multir.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace imr::re {

MultirModel::MultirModel(int num_relations, const MultirConfig& config)
    : num_relations_(num_relations),
      config_(config),
      extractor_(config.hash_bits) {
  IMR_CHECK_GT(num_relations, 1);
  weights_.assign(
      static_cast<size_t>(num_relations) * extractor_.dim(), 0.0f);
}

float MultirModel::SentenceScore(const SparseFeatures& f,
                                 int relation) const {
  const float* row =
      weights_.data() + static_cast<size_t>(relation) * extractor_.dim();
  float acc = 0.0f;
  for (size_t i = 0; i < f.indices.size(); ++i)
    acc += row[f.indices[i]] * f.values[i];
  return acc;
}

void MultirModel::Update(const SparseFeatures& f, int relation, float step) {
  float* row =
      weights_.data() + static_cast<size_t>(relation) * extractor_.dim();
  for (size_t i = 0; i < f.indices.size(); ++i)
    row[f.indices[i]] += step * f.values[i];
}

void MultirModel::BagScores(const std::vector<SparseFeatures>& sentences,
                            std::vector<float>* scores,
                            std::vector<int>* best_sentence) const {
  scores->assign(static_cast<size_t>(num_relations_),
                 -std::numeric_limits<float>::infinity());
  best_sentence->assign(static_cast<size_t>(num_relations_), 0);
  for (size_t s = 0; s < sentences.size(); ++s) {
    for (int r = 0; r < num_relations_; ++r) {
      const float score = SentenceScore(sentences[s], r);
      if (score > (*scores)[static_cast<size_t>(r)]) {
        (*scores)[static_cast<size_t>(r)] = score;
        (*best_sentence)[static_cast<size_t>(r)] = static_cast<int>(s);
      }
    }
  }
}

void MultirModel::Train(const std::vector<Bag>& bags) {
  IMR_CHECK(!bags.empty());
  util::Rng rng(config_.seed);
  std::vector<std::vector<SparseFeatures>> features(bags.size());
  for (size_t b = 0; b < bags.size(); ++b) {
    for (const nn::EncoderInput& sentence : bags[b].sentences)
      features[b].push_back(extractor_.SentenceFeatures(sentence));
  }
  std::vector<size_t> order(bags.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<float> scores;
  std::vector<int> best;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t index : order) {
      BagScores(features[index], &scores, &best);
      const int gold = bags[index].relation;
      int predicted = 0;
      for (int r = 1; r < num_relations_; ++r) {
        if (scores[static_cast<size_t>(r)] >
            scores[static_cast<size_t>(predicted)])
          predicted = r;
      }
      if (predicted == gold) continue;
      // Promote the gold relation on its best sentence, demote the wrongly
      // predicted one on the sentence that caused it.
      const auto& gold_sentence = features[index][static_cast<size_t>(
          best[static_cast<size_t>(gold)])];
      const auto& bad_sentence = features[index][static_cast<size_t>(
          best[static_cast<size_t>(predicted)])];
      Update(gold_sentence, gold, config_.learning_rate);
      Update(bad_sentence, predicted, -config_.learning_rate);
    }
  }
}

std::vector<float> MultirModel::Predict(const Bag& bag) const {
  std::vector<SparseFeatures> sentences;
  sentences.reserve(bag.sentences.size());
  for (const nn::EncoderInput& sentence : bag.sentences)
    sentences.push_back(extractor_.SentenceFeatures(sentence));
  std::vector<float> scores;
  std::vector<int> best;
  BagScores(sentences, &scores, &best);
  // Softmax into pseudo-probabilities for the held-out harness.
  float max_v = *std::max_element(scores.begin(), scores.end());
  float denom = 0.0f;
  for (float& s : scores) {
    s = std::exp(s - max_v);
    denom += s;
  }
  for (float& s : scores) s /= denom;
  return scores;
}

}  // namespace imr::re
