#include "re/trainer.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace imr::re {

namespace {
// Each batch splits into at most this many data-parallel chunks. The chunk
// count depends only on the batch size — never on the worker count — so
// every threads > 1 run reproduces the same floats.
constexpr int64_t kTrainerChunks = 16;
}  // namespace

Trainer::Trainer(PaModel* model, const TrainerConfig& config)
    : model_(model), config_(config), rng_(config.seed) {
  IMR_CHECK(model != nullptr);
}

std::vector<EpochStats> Trainer::Train(
    const std::vector<Bag>& train_bags,
    const std::function<bool(const EpochStats&)>& on_epoch) {
  IMR_CHECK(!train_bags.empty());
  std::unique_ptr<nn::Optimizer> optimizer_holder;
  if (config_.optimizer == "adam") {
    optimizer_holder =
        std::make_unique<nn::Adam>(model_, config_.learning_rate);
  } else if (config_.optimizer == "adagrad") {
    optimizer_holder =
        std::make_unique<nn::Adagrad>(model_, config_.learning_rate);
  } else {
    IMR_CHECK(config_.optimizer == "sgd");
    optimizer_holder = std::make_unique<nn::Sgd>(
        model_, config_.learning_rate, config_.weight_decay,
        config_.clip_norm);
  }
  nn::Optimizer& optimizer = *optimizer_holder;
  std::vector<const Bag*> order;
  order.reserve(train_bags.size());
  for (const Bag& bag : train_bags) order.push_back(&bag);

  // Word-embedding tables targeted by adversarial perturbation.
  std::vector<tensor::Tensor> adversarial_targets;
  if (config_.adversarial_epsilon > 0.0f) {
    for (nn::NamedParameter& p : model_->Parameters()) {
      if (p.name.size() >= 10 &&
          p.name.compare(p.name.size() - 10, 10, "word.table") == 0) {
        adversarial_targets.push_back(p.tensor);
      }
    }
  }

  std::vector<EpochStats> history;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto start = std::chrono::steady_clock::now();
    model_->SetTraining(true);
    rng_.Shuffle(&order);
    double loss_sum = 0.0;
    int batches = 0;
    // Reused across batches: assign() reuses capacity, so the steady-state
    // epoch loop does not allocate for batch bookkeeping.
    std::vector<const Bag*> batch;
    batch.reserve(static_cast<size_t>(config_.batch_size));
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(config_.batch_size)) {
      const size_t end = std::min(
          order.size(), begin + static_cast<size_t>(config_.batch_size));
      batch.assign(order.begin() + static_cast<long>(begin),
                   order.begin() + static_cast<long>(end));
      model_->ZeroGrad();
      const int threads =
          config_.threads > 0 ? config_.threads : util::GlobalThreads();
      if (threads > 1 && batch.size() > 1) {
        loss_sum += ParallelBatchStep(batch, &adversarial_targets);
      } else {
        tensor::Tensor loss = model_->BatchLoss(batch, &rng_);
        loss.Backward();
        if (!adversarial_targets.empty()) {
          // FGSM: perturb the embedding tables along the loss gradient,
          // accumulate the adversarial gradients, then restore the tables
          // so the optimizer steps from the clean point.
          PerturbAdversarial(&adversarial_targets);
          model_->BatchLoss(batch, &rng_).Backward();
          RestoreAdversarial(&adversarial_targets);
        }
        loss_sum += loss.item();
      }
      optimizer.Step();
      ++batches;
    }
    optimizer.set_learning_rate(optimizer.learning_rate() *
                                config_.lr_decay);

    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss = batches > 0 ? loss_sum / batches : 0.0;
    stats.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (config_.verbose) {
      IMR_LOG(Info) << "epoch " << epoch << " loss=" << stats.mean_loss
                    << " (" << stats.seconds << "s)";
    }
    history.push_back(stats);
    if (on_epoch && !on_epoch(stats)) break;
  }
  // Bring lazily-updated optimizer state (Adam's deferred row decay for
  // row-sparse embedding tables) fully up to date before the model is read.
  optimizer.Finalize();
  model_->SetTraining(false);
  return history;
}

double Trainer::ParallelBatchStep(
    const std::vector<const Bag*>& batch,
    std::vector<tensor::Tensor>* adversarial_targets) {
  const int64_t n = static_cast<int64_t>(batch.size());
  const int64_t grain = (n + kTrainerChunks - 1) / kTrainerChunks;
  const int64_t chunks = util::ThreadPool::NumChunks(0, n, grain);

  // One data-parallel forward/backward over the batch. Chunk seeds are
  // drawn sequentially from the trainer rng up front (so its stream
  // advances identically at any worker count); each chunk builds its own
  // graph with a private rng (dropout) and a gradient sink capturing its
  // leaf gradients. Sinks merge into the shared grads in ascending chunk
  // order afterwards. Each chunk loss is scaled by chunk_size / batch_size
  // before backward, so the merged gradient equals the gradient of the
  // global batch mean. Returns the batch mean loss.
  auto run_pass = [&]() -> double {
    std::vector<uint64_t> seeds(static_cast<size_t>(chunks));
    for (uint64_t& s : seeds) s = rng_.Next();
    std::vector<std::unique_ptr<tensor::internal::ScopedGradSink>> sinks(
        static_cast<size_t>(chunks));
    std::vector<double> losses(static_cast<size_t>(chunks), 0.0);
    util::GlobalPool().ParallelForChunks(
        0, n, grain, [&](int64_t lo, int64_t hi, int64_t chunk) {
          const auto c = static_cast<size_t>(chunk);
          util::Rng chunk_rng(seeds[c]);
          sinks[c] = std::make_unique<tensor::internal::ScopedGradSink>();
          struct SinkGuard {
            tensor::internal::ScopedGradSink* sink;
            ~SinkGuard() { sink->Deactivate(); }
          } guard{sinks[c].get()};
          std::vector<const Bag*> chunk_bags(
              batch.begin() + static_cast<long>(lo),
              batch.begin() + static_cast<long>(hi));
          tensor::Tensor loss = model_->BatchLoss(chunk_bags, &chunk_rng);
          const float weight =
              static_cast<float>(hi - lo) / static_cast<float>(n);
          tensor::Scale(loss, weight).Backward();
          losses[c] = static_cast<double>(loss.item()) *
                      static_cast<double>(hi - lo);
        });
    for (auto& sink : sinks) sink->MergeIntoShared();
    double sum = 0.0;
    for (double l : losses) sum += l;
    return sum / static_cast<double>(n);
  };

  const double mean_loss = run_pass();
  if (!adversarial_targets->empty()) {
    // FGSM on the merged full-batch gradients, mirroring the sequential
    // path: perturb, run a second (parallel) pass that accumulates the
    // adversarial gradients on top, then restore the clean tables.
    PerturbAdversarial(adversarial_targets);
    run_pass();
    RestoreAdversarial(adversarial_targets);
  }
  return mean_loss;
}

void Trainer::PerturbAdversarial(std::vector<tensor::Tensor>* targets) {
  fgsm_saved_.resize(targets->size());
  for (size_t t = 0; t < targets->size(); ++t) {
    tensor::Tensor& table = (*targets)[t];
    FgsmSnapshot& snap = fgsm_saved_[t];
    const auto& grad = table.grad();
    if (grad.empty()) {
      snap.sparse = false;
      snap.rows.clear();
      snap.values.clear();
      continue;
    }
    auto& values = table.mutable_data();
    if (table.grad_is_row_sparse()) {
      // Snapshot and perturb only the touched rows. Rows with zero
      // gradient would receive sign(0) * eps == +0.0f, and the
      // adversarial pass gathers the same batch, so untouched rows are
      // never read while perturbed: skipping them is exact.
      const auto& rows = table.grad_touched_rows();
      const size_t cols = static_cast<size_t>(table.cols());
      snap.sparse = true;
      snap.rows.assign(rows.begin(), rows.end());
      snap.values.resize(rows.size() * cols);
      float* dst = snap.values.data();
      for (int r : rows) {
        const size_t off = static_cast<size_t>(r) * cols;
        std::copy_n(values.data() + off, cols, dst);
        dst += cols;
        for (size_t c = 0; c < cols; ++c) {
          const float gv = grad[off + c];
          const float sign = gv > 0 ? 1.0f : (gv < 0 ? -1.0f : 0.0f);
          values[off + c] += config_.adversarial_epsilon * sign;
        }
      }
      continue;
    }
    snap.sparse = false;
    snap.rows.clear();
    snap.values.assign(values.begin(), values.end());
    for (size_t i = 0; i < values.size(); ++i) {
      const float sign = grad[i] > 0 ? 1.0f : (grad[i] < 0 ? -1.0f : 0.0f);
      values[i] += config_.adversarial_epsilon * sign;
    }
  }
}

void Trainer::RestoreAdversarial(std::vector<tensor::Tensor>* targets) {
  for (size_t t = 0; t < targets->size(); ++t) {
    const FgsmSnapshot& snap = fgsm_saved_[t];
    if (snap.values.empty()) continue;
    // Copy back in place: keeps the parameter's (pooled) storage stable
    // instead of swapping in the snapshot's allocation.
    auto& values = (*targets)[t].mutable_data();
    if (snap.sparse) {
      const size_t cols = static_cast<size_t>((*targets)[t].cols());
      const float* src = snap.values.data();
      for (int r : snap.rows) {
        std::copy_n(src, cols, values.data() + static_cast<size_t>(r) * cols);
        src += cols;
      }
    } else {
      std::copy(snap.values.begin(), snap.values.end(), values.begin());
    }
  }
}

eval::HeldOutResult Trainer::Evaluate(const std::vector<Bag>& test_bags) {
  model_->SetTraining(false);
  util::Rng* rng = &rng_;
  PaModel* model = model_;
  return eval::Evaluate(
      [model, rng](const Bag& bag) { return model->Predict(bag, rng); },
      test_bags, model_->num_relations());
}

eval::HeldOutResult TrainAndEvaluate(PaModel* model,
                                     const std::vector<Bag>& train_bags,
                                     const std::vector<Bag>& test_bags,
                                     const TrainerConfig& config) {
  Trainer trainer(model, config);
  trainer.Train(train_bags);
  return trainer.Evaluate(test_bags);
}

}  // namespace imr::re
