#include "re/mintz.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace imr::re {

MintzModel::MintzModel(int num_relations, const MintzConfig& config)
    : num_relations_(num_relations),
      config_(config),
      extractor_(config.hash_bits) {
  IMR_CHECK_GT(num_relations, 1);
  weights_.assign(
      static_cast<size_t>(num_relations) * extractor_.dim(), 0.0f);
  bias_.assign(static_cast<size_t>(num_relations), 0.0f);
}

std::vector<float> MintzModel::Scores(const SparseFeatures& features) const {
  std::vector<float> scores(bias_.begin(), bias_.end());
  for (int r = 0; r < num_relations_; ++r) {
    const float* row =
        weights_.data() + static_cast<size_t>(r) * extractor_.dim();
    float acc = 0.0f;
    for (size_t i = 0; i < features.indices.size(); ++i)
      acc += row[features.indices[i]] * features.values[i];
    scores[static_cast<size_t>(r)] += acc;
  }
  return scores;
}

namespace {
void SoftmaxInPlace(std::vector<float>* scores) {
  float max_v = *std::max_element(scores->begin(), scores->end());
  float denom = 0.0f;
  for (float& s : *scores) {
    s = std::exp(s - max_v);
    denom += s;
  }
  for (float& s : *scores) s /= denom;
}
}  // namespace

void MintzModel::Train(const std::vector<Bag>& bags) {
  IMR_CHECK(!bags.empty());
  util::Rng rng(config_.seed);
  // Pre-extract features once.
  std::vector<SparseFeatures> features;
  features.reserve(bags.size());
  for (const Bag& bag : bags) features.push_back(extractor_.BagFeatures(bag));

  std::vector<size_t> order(bags.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  float lr = config_.learning_rate;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t index : order) {
      const SparseFeatures& f = features[index];
      std::vector<float> probs = Scores(f);
      SoftmaxInPlace(&probs);
      const int label = bags[index].relation;
      // Gradient of cross-entropy on the touched features only.
      for (int r = 0; r < num_relations_; ++r) {
        const float grad =
            probs[static_cast<size_t>(r)] - (r == label ? 1.0f : 0.0f);
        if (grad == 0.0f) continue;
        float* row =
            weights_.data() + static_cast<size_t>(r) * extractor_.dim();
        for (size_t i = 0; i < f.indices.size(); ++i) {
          float& w = row[f.indices[i]];
          w -= lr * (grad * f.values[i] + config_.l2 * w);
        }
        bias_[static_cast<size_t>(r)] -= lr * grad;
      }
    }
    lr *= 0.9f;
  }
}

std::vector<float> MintzModel::Predict(const Bag& bag) const {
  std::vector<float> probs = Scores(extractor_.BagFeatures(bag));
  SoftmaxInPlace(&probs);
  return probs;
}

}  // namespace imr::re
