#include "re/config.h"

namespace imr::re {

PaModelConfig PaperDefaults(int num_relations, int vocab_size) {
  PaModelConfig config;
  config.num_relations = num_relations;
  config.encoder = "pcnn";
  config.aggregation = Aggregation::kAttention;
  config.encoder_config.vocab_size = vocab_size;
  config.encoder_config.word_dim = 50;       // kw
  config.encoder_config.position_dim = 5;    // kp
  config.encoder_config.max_position = 60;   // half of max length 120
  config.encoder_config.window = 3;          // l
  config.encoder_config.filters = 230;       // k
  config.encoder_config.dropout = 0.5f;      // p
  config.type_dim = 20;                      // kt
  config.mutual_relation_dim = 128;          // ke
  return config;
}

}  // namespace imr::re
