#include "text/tokenizer.h"

#include <cctype>

namespace imr::text {

std::vector<std::string> Tokenize(std::string_view raw,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char raw_c : raw) {
    unsigned char c = static_cast<unsigned char>(raw_c);
    if (std::isspace(c)) {
      flush();
      continue;
    }
    if (options.split_punctuation && std::ispunct(c) && c != '_' &&
        c != '\'') {
      flush();
      tokens.push_back(std::string(1, raw_c));
      continue;
    }
    current.push_back(options.lowercase
                          ? static_cast<char>(std::tolower(c))
                          : raw_c);
  }
  flush();
  return tokens;
}

int FindToken(const std::vector<std::string>& tokens,
              const std::string& mention) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] == mention) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace imr::text
