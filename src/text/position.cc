#include "text/position.h"

#include <algorithm>

#include "util/logging.h"

namespace imr::text {

std::vector<int> RelativePositionIds(int num_tokens, int entity_index,
                                     int max_position) {
  IMR_CHECK_GT(num_tokens, 0);
  IMR_CHECK_GT(max_position, 0);
  std::vector<int> ids(static_cast<size_t>(num_tokens));
  for (int t = 0; t < num_tokens; ++t) {
    int offset = t - entity_index;
    offset = std::clamp(offset, -max_position, max_position);
    ids[static_cast<size_t>(t)] = offset + max_position;
  }
  return ids;
}

TruncationResult TruncateAroundEntities(int num_tokens, int head_index,
                                        int tail_index, int max_length) {
  IMR_CHECK_GT(max_length, 0);
  TruncationResult result;
  if (num_tokens <= max_length) {
    result.begin = 0;
    result.end = num_tokens;
    return result;
  }
  const int lo = std::min(head_index, tail_index);
  const int hi = std::max(head_index, tail_index);
  // Centre the window on the entity span; widen symmetrically.
  int begin = std::max(0, (lo + hi) / 2 - max_length / 2);
  if (begin + max_length > num_tokens) begin = num_tokens - max_length;
  // Guarantee both mentions are inside when the span fits.
  if (hi - lo < max_length) {
    begin = std::min(begin, lo);
    begin = std::max(begin, hi - max_length + 1);
    begin = std::max(0, std::min(begin, num_tokens - max_length));
  }
  result.begin = begin;
  result.end = begin + max_length;
  return result;
}

}  // namespace imr::text
