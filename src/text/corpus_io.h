// Binary persistence for corpora: labeled distant-supervision sentences
// and unlabeled co-occurrence sentences. Lets the expensive generation /
// annotation step run once and be shared across experiments, exactly like
// shipping a preprocessed NYT/GDS dump.
#ifndef IMR_TEXT_CORPUS_IO_H_
#define IMR_TEXT_CORPUS_IO_H_

#include <string>
#include <vector>

#include "text/sentence.h"
#include "util/status.h"

namespace imr::text {

[[nodiscard]] util::Status SaveLabeledCorpus(const std::vector<LabeledSentence>& corpus,
                               const std::string& path);
util::StatusOr<std::vector<LabeledSentence>> LoadLabeledCorpus(
    const std::string& path);

[[nodiscard]] util::Status SaveUnlabeledCorpus(const std::vector<Sentence>& corpus,
                                 const std::string& path);
util::StatusOr<std::vector<Sentence>> LoadUnlabeledCorpus(
    const std::string& path);

}  // namespace imr::text

#endif  // IMR_TEXT_CORPUS_IO_H_
