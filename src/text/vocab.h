// Word vocabulary with UNK handling and frequency-based pruning.
#ifndef IMR_TEXT_VOCAB_H_
#define IMR_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/serialization.h"
#include "util/status.h"

namespace imr::text {

/// Maps words to dense ids. Id 0 is reserved for <pad>, id 1 for <unk>.
class Vocabulary {
 public:
  static constexpr int kPadId = 0;
  static constexpr int kUnkId = 1;

  Vocabulary();

  /// Counts a word occurrence (call during the first corpus pass).
  void Count(const std::string& word);

  /// Freezes the vocabulary, keeping words with count >= min_count.
  /// Idempotent; counting after freezing is an error.
  void Freeze(int min_count = 1);
  bool frozen() const { return frozen_; }

  /// Id for a word; kUnkId when unknown. Requires frozen().
  int Id(const std::string& word) const;
  /// Word for an id; "<unk>"/"<pad>" for the reserved ids.
  const std::string& Word(int id) const;
  bool Contains(const std::string& word) const;

  /// Number of ids (including the two reserved ones). Requires frozen().
  int size() const;

  /// Convenience: ids for a token sequence.
  std::vector<int> Ids(const std::vector<std::string>& tokens) const;

  [[nodiscard]] util::Status Save(const std::string& path) const;
  [[nodiscard]] static util::StatusOr<Vocabulary> Load(const std::string& path);

  /// Streams the frozen word list into an already-open writer / restores it
  /// from one — used by composite formats (model snapshots) that embed the
  /// vocabulary as one section of a larger file. Ids are preserved exactly.
  [[nodiscard]] util::Status WriteTo(util::BinaryWriter* writer) const;
  [[nodiscard]] static util::StatusOr<Vocabulary> ReadFrom(util::BinaryReader* reader);

 private:
  bool frozen_ = false;
  std::unordered_map<std::string, int64_t> counts_;
  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> words_;
};

}  // namespace imr::text

#endif  // IMR_TEXT_VOCAB_H_
