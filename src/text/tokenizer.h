// Whitespace/punctuation tokenizer with lower-casing, plus helpers for
// locating entity mentions in raw text.
#ifndef IMR_TEXT_TOKENIZER_H_
#define IMR_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace imr::text {

struct TokenizerOptions {
  bool lowercase = true;
  bool split_punctuation = true;  // "Hawaii." -> "hawaii", "."
};

/// Splits raw text into tokens. Entity mentions containing underscores are
/// kept as single tokens (the synthetic realiser emits "new_york_city").
std::vector<std::string> Tokenize(std::string_view raw,
                                  const TokenizerOptions& options = {});

/// Finds the first token equal to `mention`; returns -1 when absent.
int FindToken(const std::vector<std::string>& tokens,
              const std::string& mention);

}  // namespace imr::text

#endif  // IMR_TEXT_TOKENIZER_H_
