#include "text/vocab.h"

#include <algorithm>

#include "util/logging.h"
#include "util/serialization.h"

namespace imr::text {

namespace {
constexpr uint32_t kVocabMagic = 0x494D5256;  // "IMRV"
constexpr uint32_t kVocabVersion = 1;
}  // namespace

Vocabulary::Vocabulary() : words_{"<pad>", "<unk>"} {}

void Vocabulary::Count(const std::string& word) {
  IMR_CHECK(!frozen_);
  ++counts_[word];
}

void Vocabulary::Freeze(int min_count) {
  if (frozen_) return;
  // Sort by (count desc, word asc) for a deterministic id assignment.
  std::vector<std::pair<std::string, int64_t>> entries(counts_.begin(),
                                                       counts_.end());
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  for (auto& [word, count] : entries) {
    if (count < min_count) continue;
    ids_.emplace(word, static_cast<int>(words_.size()));
    words_.push_back(word);
  }
  counts_.clear();
  frozen_ = true;
}

int Vocabulary::Id(const std::string& word) const {
  IMR_CHECK(frozen_);
  auto it = ids_.find(word);
  return it == ids_.end() ? kUnkId : it->second;
}

const std::string& Vocabulary::Word(int id) const {
  IMR_CHECK_GE(id, 0);
  IMR_CHECK_LT(id, static_cast<int>(words_.size()));
  return words_[static_cast<size_t>(id)];
}

bool Vocabulary::Contains(const std::string& word) const {
  return ids_.count(word) > 0;
}

int Vocabulary::size() const {
  IMR_CHECK(frozen_);
  return static_cast<int>(words_.size());
}

std::vector<int> Vocabulary::Ids(
    const std::vector<std::string>& tokens) const {
  std::vector<int> out;
  out.reserve(tokens.size());
  for (const std::string& token : tokens) out.push_back(Id(token));
  return out;
}

util::Status Vocabulary::Save(const std::string& path) const {
  if (!frozen_) return util::FailedPrecondition("vocabulary not frozen");
  util::BinaryWriter writer(path, kVocabMagic, kVocabVersion);
  IMR_RETURN_IF_ERROR(writer.status());
  IMR_RETURN_IF_ERROR(WriteTo(&writer));
  return writer.Close();
}

util::Status Vocabulary::WriteTo(util::BinaryWriter* writer) const {
  if (!frozen_) return util::FailedPrecondition("vocabulary not frozen");
  writer->WriteU64(words_.size());
  for (const std::string& word : words_) writer->WriteString(word);
  return writer->status();
}

util::StatusOr<Vocabulary> Vocabulary::ReadFrom(util::BinaryReader* reader) {
  const uint64_t count = reader->ReadU64();
  IMR_RETURN_IF_ERROR(reader->status());
  // Every word costs at least a u64 length prefix, so an honest count is
  // bounded by the bytes left; reject corrupt counts before reserving.
  if (count > reader->remaining() / 8) {
    return util::InvalidArgument("corrupt vocabulary section in '" +
                                 reader->path() + "'");
  }
  Vocabulary vocab;
  vocab.words_.clear();
  vocab.words_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    vocab.words_.push_back(reader->ReadString());
    IMR_RETURN_IF_ERROR(reader->status());
  }
  if (vocab.words_.size() < 2 || vocab.words_[0] != "<pad>" ||
      vocab.words_[1] != "<unk>") {
    return util::InvalidArgument("corrupt vocabulary section in '" +
                                 reader->path() + "'");
  }
  for (size_t i = 2; i < vocab.words_.size(); ++i)
    vocab.ids_.emplace(vocab.words_[i], static_cast<int>(i));
  vocab.frozen_ = true;
  return vocab;
}

util::StatusOr<Vocabulary> Vocabulary::Load(const std::string& path) {
  util::BinaryReader reader(path, kVocabMagic, kVocabVersion);
  IMR_RETURN_IF_ERROR(reader.status());
  return ReadFrom(&reader);
}

}  // namespace imr::text
