#include "text/corpus_io.h"

#include "util/serialization.h"

namespace imr::text {

namespace {
constexpr uint32_t kLabeledMagic = 0x494D524C;    // "IMRL"
constexpr uint32_t kUnlabeledMagic = 0x494D5255;  // "IMRU"
constexpr uint32_t kVersion = 1;

void WriteSentence(util::BinaryWriter* writer, const Sentence& sentence) {
  writer->WriteU64(sentence.tokens.size());
  for (const std::string& token : sentence.tokens)
    writer->WriteString(token);
  writer->WriteI64(sentence.head_index);
  writer->WriteI64(sentence.tail_index);
  writer->WriteI64(sentence.head_entity);
  writer->WriteI64(sentence.tail_entity);
}

util::Status ReadSentence(util::BinaryReader* reader, Sentence* sentence) {
  const uint64_t tokens = reader->ReadU64();
  IMR_RETURN_IF_ERROR(reader->status());
  if (tokens > (1u << 20))
    return util::InvalidArgument("corrupt corpus: oversized sentence");
  sentence->tokens.clear();
  sentence->tokens.reserve(tokens);
  for (uint64_t t = 0; t < tokens; ++t)
    sentence->tokens.push_back(reader->ReadString());
  sentence->head_index = static_cast<int>(reader->ReadI64());
  sentence->tail_index = static_cast<int>(reader->ReadI64());
  sentence->head_entity = reader->ReadI64();
  sentence->tail_entity = reader->ReadI64();
  IMR_RETURN_IF_ERROR(reader->status());
  const int n = static_cast<int>(sentence->tokens.size());
  if (n == 0 || sentence->head_index < 0 || sentence->head_index >= n ||
      sentence->tail_index < 0 || sentence->tail_index >= n) {
    return util::InvalidArgument("corrupt corpus: bad mention index");
  }
  return util::OkStatus();
}

}  // namespace

util::Status SaveLabeledCorpus(const std::vector<LabeledSentence>& corpus,
                               const std::string& path) {
  util::BinaryWriter writer(path, kLabeledMagic, kVersion);
  IMR_RETURN_IF_ERROR(writer.status());
  writer.WriteU64(corpus.size());
  for (const LabeledSentence& labeled : corpus) {
    WriteSentence(&writer, labeled.sentence);
    writer.WriteI64(labeled.relation);
    writer.WriteI64(labeled.true_relation);
  }
  return writer.Close();
}

util::StatusOr<std::vector<LabeledSentence>> LoadLabeledCorpus(
    const std::string& path) {
  util::BinaryReader reader(path, kLabeledMagic, kVersion);
  IMR_RETURN_IF_ERROR(reader.status());
  const uint64_t count = reader.ReadU64();
  IMR_RETURN_IF_ERROR(reader.status());
  std::vector<LabeledSentence> corpus;
  corpus.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    LabeledSentence labeled;
    IMR_RETURN_IF_ERROR(ReadSentence(&reader, &labeled.sentence));
    labeled.relation = static_cast<int>(reader.ReadI64());
    labeled.true_relation = static_cast<int>(reader.ReadI64());
    IMR_RETURN_IF_ERROR(reader.status());
    corpus.push_back(std::move(labeled));
  }
  return corpus;
}

util::Status SaveUnlabeledCorpus(const std::vector<Sentence>& corpus,
                                 const std::string& path) {
  util::BinaryWriter writer(path, kUnlabeledMagic, kVersion);
  IMR_RETURN_IF_ERROR(writer.status());
  writer.WriteU64(corpus.size());
  for (const Sentence& sentence : corpus) WriteSentence(&writer, sentence);
  return writer.Close();
}

util::StatusOr<std::vector<Sentence>> LoadUnlabeledCorpus(
    const std::string& path) {
  util::BinaryReader reader(path, kUnlabeledMagic, kVersion);
  IMR_RETURN_IF_ERROR(reader.status());
  const uint64_t count = reader.ReadU64();
  IMR_RETURN_IF_ERROR(reader.status());
  std::vector<Sentence> corpus;
  corpus.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Sentence sentence;
    IMR_RETURN_IF_ERROR(ReadSentence(&reader, &sentence));
    corpus.push_back(std::move(sentence));
  }
  return corpus;
}

}  // namespace imr::text
