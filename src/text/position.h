// Relative position features (Zeng et al. 2014): each token's offset to the
// head/tail mention, clipped to [-max_position, max_position] and shifted to
// non-negative ids for the position embedding table.
#ifndef IMR_TEXT_POSITION_H_
#define IMR_TEXT_POSITION_H_

#include <vector>

namespace imr::text {

/// Offset ids for every token w.r.t. the mention at `entity_index`.
/// Returned ids lie in [0, 2*max_position].
std::vector<int> RelativePositionIds(int num_tokens, int entity_index,
                                     int max_position);

/// Truncates a sentence (tokens and both mention indices) to `max_length`
/// tokens, keeping a window that contains both mentions when possible.
struct TruncationResult {
  int begin = 0;  // first kept token
  int end = 0;    // one past the last kept token
};
TruncationResult TruncateAroundEntities(int num_tokens, int head_index,
                                        int tail_index, int max_length);

}  // namespace imr::text

#endif  // IMR_TEXT_POSITION_H_
