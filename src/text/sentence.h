// Core text-corpus structures: a tokenized sentence mentioning an entity
// pair, and a labeled distant-supervision instance.
#ifndef IMR_TEXT_SENTENCE_H_
#define IMR_TEXT_SENTENCE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace imr::text {

/// One sentence mentioning a (head, tail) entity pair.
struct Sentence {
  std::vector<std::string> tokens;
  int head_index = 0;  // token index of the head entity mention
  int tail_index = 0;  // token index of the tail entity mention
  int64_t head_entity = -1;
  int64_t tail_entity = -1;
};

/// A distant-supervision labeled sentence (label may be noisy).
struct LabeledSentence {
  Sentence sentence;
  int relation = 0;       // distant-supervision label
  int true_relation = 0;  // generator ground truth (for noise diagnostics)
};

}  // namespace imr::text

#endif  // IMR_TEXT_SENTENCE_H_
