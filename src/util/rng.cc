#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace imr::util {

namespace {
// splitmix64, used to expand the seed into the 256-bit xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  IMR_CHECK_GT(n, 0u);
  // Rejection to remove modulo bias.
  const uint64_t threshold = -n % n;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  IMR_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Uniform() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    IMR_CHECK_GE(w, 0.0);
    total += w;
  }
  IMR_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  IMR_CHECK_GT(n, 0u);
  IMR_CHECK_GT(s, 0.0);
  // Devroye's rejection method for the Zipf distribution.
  const double nd = static_cast<double>(n);
  auto h_integral = [s](double x) {
    // integral of t^{-s} from 1 to x (log when s == 1).
    if (std::abs(s - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_integral_inv = [s](double y) {
    if (std::abs(s - 1.0) < 1e-12) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx_max = h_integral(nd + 0.5);
  const double hx_min = h_integral(0.5);
  while (true) {
    const double u = hx_min + Uniform() * (hx_max - hx_min);
    const double x = h_integral_inv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    const double kd = static_cast<double>(k);
    // Acceptance probability for the discretized sample.
    const double ratio =
        (h_integral(kd + 0.5) - h_integral(kd - 0.5)) / std::pow(kd, -s);
    if (Uniform() * 1.1 <= ratio) return k;
  }
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace imr::util
