#include "util/serialization.h"

#include <algorithm>

#include "util/string_util.h"

namespace imr::util {

namespace {
constexpr uint64_t kFnvPrime = 1099511628211ULL;
}  // namespace

uint64_t Fnv1a(const void* data, size_t size, uint64_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

BinaryWriter::BinaryWriter(const std::string& path, uint32_t magic,
                           uint32_t version)
    : out_(path, std::ios::binary), path_(path) {
  if (!out_.is_open()) {
    status_ = IoError("cannot open for write: " + path);
    return;
  }
  WriteU32(magic);
  WriteU32(version);
}

void BinaryWriter::WriteRaw(const void* data, size_t size) {
  if (!status_.ok()) return;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!out_.good()) {
    status_ = IoError(StrFormat("write failed in '%s' at byte offset %llu",
                                path_.c_str(),
                                static_cast<unsigned long long>(offset_)));
    return;
  }
  if (hashing_) hash_ = Fnv1a(data, size, hash_);
  offset_ += size;
}

void BinaryWriter::WriteU32(uint32_t value) { WriteRaw(&value, sizeof value); }
void BinaryWriter::WriteU64(uint64_t value) { WriteRaw(&value, sizeof value); }
void BinaryWriter::WriteI64(int64_t value) { WriteRaw(&value, sizeof value); }
void BinaryWriter::WriteFloat(float value) { WriteRaw(&value, sizeof value); }
void BinaryWriter::WriteDouble(double value) {
  WriteRaw(&value, sizeof value);
}

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  WriteRaw(value.data(), value.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& values) {
  WriteU64(values.size());
  WriteRaw(values.data(), values.size() * sizeof(float));
}

void BinaryWriter::WriteByteVector(const std::vector<int8_t>& values) {
  WriteU64(values.size());
  WriteRaw(values.data(), values.size());
}

void BinaryWriter::WriteIntVector(const std::vector<int>& values) {
  WriteU64(values.size());
  for (int value : values) WriteI64(value);
}

void BinaryWriter::WriteRawBytes(const void* data, size_t size) {
  WriteRaw(data, size);
}

void BinaryWriter::PadTo(size_t alignment) {
  static constexpr char kZeros[64] = {};
  if (alignment == 0) return;
  while (status_.ok() && offset_ % alignment != 0) {
    const size_t pad = std::min<size_t>(sizeof kZeros,
                                        alignment - offset_ % alignment);
    WriteRaw(kZeros, pad);
  }
}

void BinaryWriter::StartHashing(uint64_t seed) {
  hashing_ = true;
  hash_ = seed;
}

void BinaryWriter::StopHashing() { hashing_ = false; }

Status BinaryWriter::Close() {
  if (status_.ok()) {
    out_.flush();
    if (!out_.good()) status_ = IoError("flush failed for '" + path_ + "'");
  }
  out_.close();
  return status_;
}

BinaryReader::BinaryReader(const std::string& path, uint32_t magic,
                           uint32_t version)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_.is_open()) {
    status_ = IoError("cannot open for read: " + path);
    return;
  }
  in_.seekg(0, std::ios::end);
  const std::streamoff size = in_.tellg();
  in_.seekg(0, std::ios::beg);
  if (!in_.good() || size < 0) {
    status_ = IoError("cannot determine size of '" + path + "'");
    return;
  }
  end_offset_ = static_cast<uint64_t>(size);
  const uint32_t file_magic = ReadU32();
  const uint32_t file_version = ReadU32();
  if (!status_.ok()) return;
  if (file_magic != magic) {
    status_ = InvalidArgument(
        StrFormat("bad magic in '%s': file has 0x%08x, expected 0x%08x",
                  path.c_str(), file_magic, magic));
  } else if (file_version != version) {
    status_ = InvalidArgument(
        StrFormat("unsupported version in '%s': file has %u, expected %u",
                  path.c_str(), file_version, version));
  }
}

BinaryReader::BinaryReader(const std::string& label, const void* data,
                           size_t size, uint64_t base_offset)
    : path_(label),
      offset_(base_offset),
      end_offset_(base_offset + size),
      view_(static_cast<const uint8_t*>(data)),
      view_base_(base_offset) {}

uint64_t BinaryReader::remaining() const {
  return offset_ >= end_offset_ ? 0 : end_offset_ - offset_;
}

void BinaryReader::ReadRaw(void* data, size_t size) {
  if (!status_.ok()) return;
  if (view_ != nullptr) {
    if (size > remaining()) {
      status_ = IoError(StrFormat(
          "unexpected end of section in '%s' at byte offset %llu (wanted "
          "%zu bytes, got %llu)",
          path_.c_str(), static_cast<unsigned long long>(offset_), size,
          static_cast<unsigned long long>(remaining())));
      return;
    }
    std::copy_n(view_ + (offset_ - view_base_), size,
                static_cast<uint8_t*>(data));
    offset_ += size;
    return;
  }
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  const auto got = in_.gcount();
  if (got != static_cast<std::streamsize>(size)) {
    status_ = IoError(StrFormat(
        "unexpected end of file in '%s' at byte offset %llu (wanted %zu "
        "bytes, got %zu)",
        path_.c_str(), static_cast<unsigned long long>(offset_), size,
        static_cast<size_t>(got)));
    return;
  }
  offset_ += size;
}

void BinaryReader::FailCorruptLength(const char* what) {
  status_ = InvalidArgument(StrFormat(
      "%s longer than the bytes remaining in '%s' at byte offset %llu; "
      "corrupt file?",
      what, path_.c_str(), static_cast<unsigned long long>(offset_)));
}

uint32_t BinaryReader::ReadU32() {
  uint32_t value = 0;
  ReadRaw(&value, sizeof value);
  return value;
}

uint64_t BinaryReader::ReadU64() {
  uint64_t value = 0;
  ReadRaw(&value, sizeof value);
  return value;
}

int64_t BinaryReader::ReadI64() {
  int64_t value = 0;
  ReadRaw(&value, sizeof value);
  return value;
}

float BinaryReader::ReadFloat() {
  float value = 0;
  ReadRaw(&value, sizeof value);
  return value;
}

double BinaryReader::ReadDouble() {
  double value = 0;
  ReadRaw(&value, sizeof value);
  return value;
}

std::string BinaryReader::ReadString() {
  const uint64_t size = ReadU64();
  if (!status_.ok()) return {};
  if (size > remaining()) {
    FailCorruptLength("string");
    return {};
  }
  std::string value(size, '\0');
  ReadRaw(value.data(), size);
  return value;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  const uint64_t size = ReadU64();
  if (!status_.ok()) return {};
  if (size > remaining() / sizeof(float)) {
    FailCorruptLength("vector");
    return {};
  }
  std::vector<float> values(size);
  ReadRaw(values.data(), size * sizeof(float));
  return values;
}

std::vector<int8_t> BinaryReader::ReadByteVector() {
  const uint64_t size = ReadU64();
  if (!status_.ok()) return {};
  if (size > remaining()) {
    FailCorruptLength("byte vector");
    return {};
  }
  std::vector<int8_t> values(size);
  ReadRaw(values.data(), size);
  return values;
}

std::vector<int> BinaryReader::ReadIntVector() {
  const uint64_t size = ReadU64();
  if (!status_.ok()) return {};
  if (size > remaining() / sizeof(int64_t)) {
    FailCorruptLength("int vector");
    return {};
  }
  std::vector<int> values(size);
  for (uint64_t i = 0; i < size; ++i) {
    values[i] = static_cast<int>(ReadI64());
    if (!status_.ok()) return {};
  }
  return values;
}

}  // namespace imr::util
