// Small string helpers used across the text pipeline and report writers.
#ifndef IMR_UTIL_STRING_UTIL_H_
#define IMR_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace imr::util {

/// Splits on any occurrence of `sep` (single character); empty pieces kept.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on runs of whitespace; no empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string Strip(std::string_view text);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace imr::util

#endif  // IMR_UTIL_STRING_UTIL_H_
