#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace imr::util {

namespace {
const char* TypeName(int t) {
  static const char* kNames[] = {"int", "double", "string", "bool"};
  return kNames[t];
}
}  // namespace

FlagParser& FlagParser::AddInt(const std::string& name, int64_t default_value,
                               const std::string& help) {
  flags_[name] = Flag{Type::kInt, std::to_string(default_value), help};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::AddDouble(const std::string& name,
                                  double default_value,
                                  const std::string& help) {
  flags_[name] = Flag{Type::kDouble, std::to_string(default_value), help};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::AddString(const std::string& name,
                                  const std::string& default_value,
                                  const std::string& help) {
  flags_[name] = Flag{Type::kString, default_value, help};
  order_.push_back(name);
  return *this;
}

FlagParser& FlagParser::AddBool(const std::string& name, bool default_value,
                                const std::string& help) {
  flags_[name] = Flag{Type::kBool, default_value ? "true" : "false", help};
  order_.push_back(name);
  return *this;
}

Status FlagParser::SetValue(const std::string& name,
                            const std::string& text) {
  auto it = flags_.find(name);
  if (it == flags_.end())
    return InvalidArgument("unknown flag --" + name);
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kInt: {
      char* end = nullptr;
      (void)std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0')
        return InvalidArgument("flag --" + name + " expects an int, got '" +
                               text + "'");
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      (void)std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0')
        return InvalidArgument("flag --" + name + " expects a double, got '" +
                               text + "'");
      break;
    }
    case Type::kBool: {
      if (text != "true" && text != "false" && text != "1" && text != "0")
        return InvalidArgument("flag --" + name +
                               " expects true/false, got '" + text + "'");
      break;
    }
    case Type::kString:
      break;
  }
  flag.value = text;
  return OkStatus();
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      return NotFound("help requested");
    }
    if (!StartsWith(arg, "--"))
      return InvalidArgument("expected --flag, got '" + arg + "'");
    arg = arg.substr(2);
    std::string name;
    std::string value;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        value = "true";  // bare --flag enables a bool
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return InvalidArgument("flag --" + name + " is missing a value");
      }
    }
    IMR_RETURN_IF_ERROR(SetValue(name, value));
  }
  return OkStatus();
}

int64_t FlagParser::GetInt(const std::string& name) const {
  auto it = flags_.find(name);
  IMR_CHECK(it != flags_.end());
  IMR_CHECK(it->second.type == Type::kInt);
  return std::strtoll(it->second.value.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name) const {
  auto it = flags_.find(name);
  IMR_CHECK(it != flags_.end());
  IMR_CHECK(it->second.type == Type::kDouble);
  return std::strtod(it->second.value.c_str(), nullptr);
}

std::string FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  IMR_CHECK(it != flags_.end());
  return it->second.value;
}

bool FlagParser::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  IMR_CHECK(it != flags_.end());
  IMR_CHECK(it->second.type == Type::kBool);
  return it->second.value == "true" || it->second.value == "1";
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    out += StrFormat("  --%s (%s, default %s)\n      %s\n", name.c_str(),
                     TypeName(static_cast<int>(flag.type)),
                     flag.value.c_str(), flag.help.c_str());
  }
  return out;
}

}  // namespace imr::util
