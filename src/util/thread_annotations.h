// Clang thread-safety-analysis macros (https://clang.llvm.org/docs/
// ThreadSafetyAnalysis.html), following the LevelDB/abseil convention: under
// clang they expand to the corresponding attributes so `-Wthread-safety` can
// prove lock discipline at compile time; under every other compiler they
// expand to nothing. Pair them with util::Mutex / util::MutexLock from
// util/mutex.h — plain std::mutex is invisible to the analysis because
// libstdc++ carries no capability attributes.
//
// Usage summary:
//   IMR_GUARDED_BY(mu)     on a data member: reads/writes require `mu` held
//   IMR_PT_GUARDED_BY(mu)  on a pointer member: the pointee requires `mu`
//   IMR_REQUIRES(mu)       on a function: caller must already hold `mu`
//   IMR_EXCLUDES(mu)       on a function: caller must NOT hold `mu`
//   IMR_ACQUIRE(mu) / IMR_RELEASE(mu)  on lock/unlock-shaped functions
//   IMR_CAPABILITY("mutex")            on a lockable class
//   IMR_SCOPED_CAPABILITY              on an RAII lock class
//   IMR_NO_THREAD_SAFETY_ANALYSIS      opt a function out of the analysis
#ifndef IMR_UTIL_THREAD_ANNOTATIONS_H_
#define IMR_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define IMR_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef IMR_THREAD_ANNOTATION
#define IMR_THREAD_ANNOTATION(x)  // expands to nothing outside clang
#endif

#define IMR_CAPABILITY(name) IMR_THREAD_ANNOTATION(capability(name))
#define IMR_SCOPED_CAPABILITY IMR_THREAD_ANNOTATION(scoped_lockable)
#define IMR_GUARDED_BY(mu) IMR_THREAD_ANNOTATION(guarded_by(mu))
#define IMR_PT_GUARDED_BY(mu) IMR_THREAD_ANNOTATION(pt_guarded_by(mu))
#define IMR_REQUIRES(...) \
  IMR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define IMR_ACQUIRE(...) \
  IMR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IMR_RELEASE(...) \
  IMR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define IMR_EXCLUDES(...) IMR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define IMR_RETURN_CAPABILITY(x) IMR_THREAD_ANNOTATION(lock_returned(x))
#define IMR_NO_THREAD_SAFETY_ANALYSIS \
  IMR_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // IMR_UTIL_THREAD_ANNOTATIONS_H_
