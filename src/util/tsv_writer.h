// Writes tab-separated report files under a results directory; used by the
// benchmark harness so every table/figure leaves a machine-readable trace.
#ifndef IMR_UTIL_TSV_WRITER_H_
#define IMR_UTIL_TSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace imr::util {

class TsvWriter {
 public:
  /// Creates parent directories as needed and opens `path` for writing.
  explicit TsvWriter(const std::string& path);

  const Status& status() const { return status_; }

  /// Writes one row; cells are escaped minimally (tabs/newlines -> spaces).
  void WriteRow(const std::vector<std::string>& cells);

  [[nodiscard]] Status Close();

 private:
  std::ofstream out_;
  Status status_;
};

/// mkdir -p equivalent; returns OK if the directory already exists.
[[nodiscard]] Status MakeDirectories(const std::string& path);

}  // namespace imr::util

#endif  // IMR_UTIL_TSV_WRITER_H_
