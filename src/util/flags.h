// Tiny command-line flag parser used by benches and examples.
// Supports --name=value and --name value; unrecognised flags are an error
// so typos are caught.
#ifndef IMR_UTIL_FLAGS_H_
#define IMR_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace imr::util {

class FlagParser {
 public:
  /// Registers a flag with a default and help text. Returns *this for
  /// chaining.
  FlagParser& AddInt(const std::string& name, int64_t default_value,
                     const std::string& help);
  FlagParser& AddDouble(const std::string& name, double default_value,
                        const std::string& help);
  FlagParser& AddString(const std::string& name,
                        const std::string& default_value,
                        const std::string& help);
  FlagParser& AddBool(const std::string& name, bool default_value,
                      const std::string& help);

  /// Parses argv. On "--help" prints usage and returns a NotFound status the
  /// caller should treat as "exit 0".
  [[nodiscard]] Status Parse(int argc, char** argv);

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  std::string GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string value;  // textual representation
    std::string help;
  };
  [[nodiscard]] Status SetValue(const std::string& name, const std::string& text);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace imr::util

#endif  // IMR_UTIL_FLAGS_H_
