// Deterministic, fast pseudo-random number generation (xoshiro256**).
// Every stochastic component in IMR takes an explicit Rng so that training
// runs, data generation, and tests are reproducible from a single seed.
#ifndef IMR_UTIL_RNG_H_
#define IMR_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace imr::util {

/// xoshiro256** generator. Not thread-safe; create one per thread/component.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal();
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Samples an index proportionally to the (non-negative) weights.
  /// Requires at least one strictly positive weight.
  size_t Discrete(const std::vector<double>& weights);

  /// Zipf-distributed integer in [1, n] with exponent s (> 0); implements
  /// inverse-CDF sampling over precomputed harmonic weights would be O(n),
  /// so this uses rejection sampling (Devroye) which is O(1) amortized.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Spawns an independent generator (splitmix over the current state).
  Rng Split();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace imr::util

#endif  // IMR_UTIL_RNG_H_
