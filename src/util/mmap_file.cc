#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace imr::util {

namespace {

bool MmapDisabled() {
  const char* flag = std::getenv("IMR_NO_MMAP");
  return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

/// Reads the whole file behind `fd` into `out` (fallback mode).
Status ReadAll(int fd, size_t size, const std::string& path,
               std::vector<uint8_t>* out) {
  out->resize(size);
  size_t done = 0;
  while (done < size) {
    const ssize_t got =
        ::pread(fd, out->data() + done, size - done, static_cast<off_t>(done));
    if (got < 0) return IoError("read failed for '" + path + "'");
    if (got == 0) {
      return IoError(StrFormat("file '%s' shrank while reading (wanted %zu "
                               "bytes, got %zu)",
                               path.c_str(), size, done));
    }
    done += static_cast<size_t>(got);
  }
  return OkStatus();
}

}  // namespace

MmapFile::~MmapFile() {
  if (map_ != nullptr) ::munmap(map_, size_);
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::shared_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return IoError("cannot open for read: " + path);
  struct ::stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return IoError("cannot stat regular file: " + path);
  }
  auto file = std::make_shared<MmapFile>();
  file->fd_ = fd;
  file->size_ = static_cast<size_t>(st.st_size);
  file->path_ = path;
  if (file->size_ > 0 && !MmapDisabled()) {
    void* map = ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      file->map_ = map;
      file->data_ = static_cast<const uint8_t*>(map);
      return file;
    }
    // mmap unavailable (filesystem, rlimit, ...): fall through to the read
    // fallback rather than failing the load.
  }
  const Status read = ReadAll(fd, file->size_, path, &file->heap_);
  if (!read.ok()) return read;
  file->data_ = file->heap_.data();
  return file;
}

StatusOr<std::shared_ptr<MmapFile>> MmapFile::PrivateCopy() const {
  auto copy = std::make_shared<MmapFile>();
  copy->size_ = size_;
  copy->path_ = path_;
  copy->writable_ = true;
  if (map_ != nullptr && fd_ >= 0) {
    // Fresh CoW mapping from the retained descriptor: valid after unlink,
    // and only the pages we later store into get private copies.
    void* map = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_PRIVATE,
                       fd_, 0);
    if (map == MAP_FAILED) {
      return IoError("cannot remap for private copy: " + path_);
    }
    copy->map_ = map;
    copy->data_ = static_cast<uint8_t*>(map);
    return copy;
  }
  copy->heap_.assign(data_, data_ + size_);
  copy->data_ = copy->heap_.data();
  return copy;
}

uint8_t* MmapFile::mutable_data() {
  IMR_CHECK(writable_);
  if (map_ != nullptr) return static_cast<uint8_t*>(map_);
  return heap_.data();
}

}  // namespace imr::util
