#include "util/logging.h"

#include <atomic>

#include "util/mutex.h"

namespace imr::util {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Serializes the final stderr write so concurrent IMR_LOG lines never
// interleave mid-line. Each message is formatted into a private
// ostringstream first; only the flush takes the lock.
Mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_min_level.load(std::memory_order_relaxed)) {
    MutexLock lock(g_emit_mutex);
    std::cerr << stream_.str() << "\n";
  }
}

FatalMessage::FatalMessage(const char* file, int line,
                           const char* condition) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  {
    MutexLock lock(g_emit_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal_logging
}  // namespace imr::util
