// Binary (little-endian) serialization helpers for corpora, vocabularies and
// embedding matrices. All readers validate a magic+version header so stale
// files fail loudly rather than producing garbage models, and every error
// message names the file and the byte offset where the failure happened so a
// corrupt snapshot is diagnosable without a hex dump.
#ifndef IMR_UTIL_SERIALIZATION_H_
#define IMR_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace imr::util {

class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the header. Check status() before
  /// use.
  BinaryWriter(const std::string& path, uint32_t magic, uint32_t version);

  const Status& status() const { return status_; }
  const std::string& path() const { return path_; }
  /// Bytes written so far (including the 8-byte header).
  uint64_t offset() const { return offset_; }

  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  void WriteFloat(float value);
  void WriteDouble(double value);
  void WriteString(const std::string& value);
  void WriteFloatVector(const std::vector<float>& values);
  /// Length-prefixed raw byte payload; the bulk carrier for quantized
  /// (int8) tensors.
  void WriteByteVector(const std::vector<int8_t>& values);
  /// Length-prefixed vector of ints (stored as i64 each; meant for small
  /// id lists like entity types, not bulk data).
  void WriteIntVector(const std::vector<int>& values);

  /// Flushes and closes; returns the final status.
  [[nodiscard]] Status Close();

 private:
  void WriteRaw(const void* data, size_t size);

  std::ofstream out_;
  std::string path_;
  uint64_t offset_ = 0;
  Status status_;
};

class BinaryReader {
 public:
  /// Opens `path` and validates the header against magic/version.
  BinaryReader(const std::string& path, uint32_t magic, uint32_t version);

  const Status& status() const { return status_; }
  const std::string& path() const { return path_; }
  /// Bytes consumed so far (including the 8-byte header).
  uint64_t offset() const { return offset_; }

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadFloat();
  double ReadDouble();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<int8_t> ReadByteVector();
  std::vector<int> ReadIntVector();

 private:
  void ReadRaw(void* data, size_t size);

  std::ifstream in_;
  std::string path_;
  uint64_t offset_ = 0;
  Status status_;
};

}  // namespace imr::util

#endif  // IMR_UTIL_SERIALIZATION_H_
