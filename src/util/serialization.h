// Binary (little-endian) serialization helpers for corpora, vocabularies and
// embedding matrices. All readers validate a magic+version header so stale
// files fail loudly rather than producing garbage models, and every error
// message names the file and the byte offset where the failure happened so a
// corrupt snapshot is diagnosable without a hex dump.
//
// Readers come in two modes sharing one API:
//   - file mode: streams from an ifstream (the classic parse-and-copy path)
//   - view mode: walks an in-memory byte range (an mmap'd snapshot section)
//     without copying; offset() still reports absolute file offsets so error
//     messages stay diagnosable
// Every length-prefixed read validates the length against the bytes actually
// remaining, so a corrupt count fails with a Status before any allocation —
// never an OOM or a multi-GB vector resize.
#ifndef IMR_UTIL_SERIALIZATION_H_
#define IMR_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace imr::util {

/// FNV-1a over `size` bytes, seedable so section hashes chain (the IMRD
/// delta result hash seeds with the base snapshot's content hash).
inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
uint64_t Fnv1a(const void* data, size_t size,
               uint64_t seed = kFnvOffsetBasis);

class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the header. Check status() before
  /// use.
  BinaryWriter(const std::string& path, uint32_t magic, uint32_t version);

  const Status& status() const { return status_; }
  const std::string& path() const { return path_; }
  /// Bytes written so far (including the 8-byte header).
  uint64_t offset() const { return offset_; }

  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI64(int64_t value);
  void WriteFloat(float value);
  void WriteDouble(double value);
  void WriteString(const std::string& value);
  void WriteFloatVector(const std::vector<float>& values);
  /// Length-prefixed raw byte payload; the bulk carrier for quantized
  /// (int8) tensors.
  void WriteByteVector(const std::vector<int8_t>& values);
  /// Length-prefixed vector of ints (stored as i64 each; meant for small
  /// id lists like entity types, not bulk data).
  void WriteIntVector(const std::vector<int>& values);

  /// Unprefixed raw bytes — the bulk carrier for v2 zero-copy sections,
  /// whose sizes live in the trailing offset table instead of inline.
  void WriteRawBytes(const void* data, size_t size);
  /// Zero-fills until offset() is a multiple of `alignment` (a power of
  /// two), so mmap'd payloads start on cache-line / SIMD-safe boundaries.
  void PadTo(size_t alignment);

  /// Content hashing: every byte written while enabled folds into an
  /// FNV-1a running hash. The v2 snapshot writer enables it after the
  /// header and records hash() in the footer as the file's identity.
  void StartHashing(uint64_t seed = kFnvOffsetBasis);
  void StopHashing();
  uint64_t hash() const { return hash_; }

  /// Flushes and closes; returns the final status.
  [[nodiscard]] Status Close();

 private:
  void WriteRaw(const void* data, size_t size);

  std::ofstream out_;
  std::string path_;
  uint64_t offset_ = 0;
  bool hashing_ = false;
  uint64_t hash_ = kFnvOffsetBasis;
  Status status_;
};

class BinaryReader {
 public:
  /// File mode: opens `path` and validates the header against
  /// magic/version.
  BinaryReader(const std::string& path, uint32_t magic, uint32_t version);

  /// View mode: walks `[data, data + size)` in memory with NO header —
  /// the caller (the v2 snapshot reader) already validated framing and
  /// hands in one section's byte range. `label` names the backing file and
  /// `base_offset` is the range's absolute file offset, so errors report
  /// real file positions.
  BinaryReader(const std::string& label, const void* data, size_t size,
               uint64_t base_offset);

  const Status& status() const { return status_; }
  const std::string& path() const { return path_; }
  /// Bytes consumed so far (including the 8-byte header in file mode; the
  /// absolute file offset in view mode).
  uint64_t offset() const { return offset_; }
  /// Bytes left before end-of-file (file mode) or end-of-view. Length
  /// prefixes are validated against this before allocating.
  uint64_t remaining() const;

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadFloat();
  double ReadDouble();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<int8_t> ReadByteVector();
  std::vector<int> ReadIntVector();

  /// Unprefixed raw bytes into caller storage — the counterpart of
  /// WriteRawBytes. ApplyDelta streams row payloads straight into the
  /// copy-on-write clone with this instead of bouncing through a vector.
  void ReadBytes(void* out, size_t size) { ReadRaw(out, size); }

 private:
  void ReadRaw(void* data, size_t size);
  void FailCorruptLength(const char* what);

  std::ifstream in_;
  std::string path_;
  uint64_t offset_ = 0;
  uint64_t end_offset_ = 0;  // file size (file mode) / view end (view mode)
  const uint8_t* view_ = nullptr;  // non-null in view mode
  uint64_t view_base_ = 0;         // absolute file offset of view_[0]
  Status status_;
};

}  // namespace imr::util

#endif  // IMR_UTIL_SERIALIZATION_H_
