// Shared parallelism substrate: a fixed-size thread pool with a blocking
// ParallelFor, a deterministic tree reduction, and relaxed-atomic float
// helpers for Hogwild-style embedding training.
//
// Design rules that every caller relies on:
//
//  * Chunking is a function of (begin, end, grain) ONLY — never of the
//    worker count. A kernel that assigns each output element to exactly one
//    chunk therefore produces bit-identical results at any thread count.
//  * Nested ParallelFor calls (a parallel kernel invoked from inside a
//    chunk body) run inline on the calling worker. This keeps per-thread
//    state (rngs, gradient sinks, grad-mode flags) coherent and makes
//    composition deadlock-free.
//  * Exceptions thrown by a chunk body are captured and the first one is
//    rethrown on the calling thread after the region drains.
//
// A process-wide pool is sized by util::SetGlobalThreads (wired to the
// --imr_threads flag in benches and the CLI). Thread count 1 bypasses the
// pool entirely and reproduces the pre-threading scalar code paths
// bit-exactly.
//
// Lock discipline is machine-checked: every mutex-protected member carries
// an IMR_GUARDED_BY annotation and the pool locks through util::Mutex, so a
// clang build with IMR_THREAD_SAFETY=ON proves the invariants at compile
// time.
#ifndef IMR_UTIL_THREAD_POOL_H_
#define IMR_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace imr::util {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller participates in every
  /// region). `threads` < 1 is clamped to 1; a 1-thread pool runs
  /// everything inline with zero synchronisation.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Splits [begin, end) into chunks of at most `grain` items (boundaries
  /// depend only on begin/end/grain, not on the worker count), runs
  /// fn(chunk_begin, chunk_end) across the pool, and blocks until every
  /// chunk finished. Throws std::invalid_argument when grain <= 0.
  /// Rethrows the first exception a chunk body threw. Safe to call from
  /// inside a chunk body: nested calls run inline on the current thread.
  /// Also safe to call from several non-worker threads at once: the pool
  /// runs one region at a time and later submitters block until the
  /// current region drains.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn)
      IMR_EXCLUDES(submit_mutex_, mutex_);

  /// As above but fn also receives the zero-based chunk index, for kernels
  /// that keep per-chunk scratch (partial gradient buffers, shard rngs).
  /// Chunk indices are assigned in ascending range order.
  void ParallelForChunks(
      int64_t begin, int64_t end, int64_t grain,
      const std::function<void(int64_t, int64_t, int64_t)>& fn)
      IMR_EXCLUDES(submit_mutex_, mutex_);

  /// Number of chunks ParallelFor would create — callers pre-size
  /// per-chunk scratch with this.
  static int64_t NumChunks(int64_t begin, int64_t end, int64_t grain);

  /// True while the current thread is executing a chunk body (used to run
  /// nested regions inline).
  static bool InParallelRegion();

 private:
  struct Region;
  void WorkerLoop() IMR_EXCLUDES(mutex_);
  void RunRegion(Region* region);

  int threads_;
  std::vector<std::thread> workers_;
  // Held for the full lifetime of a top-level region so concurrent
  // submitters serialize instead of violating the one-region invariant.
  Mutex submit_mutex_;
  Mutex mutex_;
  CondVar wake_;
  CondVar done_;
  Region* active_region_ IMR_GUARDED_BY(mutex_) = nullptr;
  uint64_t region_epoch_ IMR_GUARDED_BY(mutex_) = 0;
  bool shutdown_ IMR_GUARDED_BY(mutex_) = false;
};

/// Deterministic tree reduction: pairwise-merges `parts` (in index order,
/// stride doubling) until everything lands in parts[0]. The reduction tree
/// depends only on parts.size(), so the result is bit-identical at any
/// thread count. Each part must have `n` floats; `merge` defaults to
/// elementwise addition into the left operand.
void TreeReduce(ThreadPool* pool, std::vector<std::vector<float>>* parts);

// ---- process-wide pool ----

/// Sets the size of the global pool; <= 0 restores the default (hardware
/// concurrency). Resizing destroys the previous pool, so any reference an
/// earlier GlobalPool() call returned is invalidated. Call this only from
/// the single orchestrating thread — in practice right after flag parsing,
/// before any other thread has obtained or used GlobalPool().
void SetGlobalThreads(int threads);

/// Current global thread count (>= 1).
int GlobalThreads();

/// The lazily-created global pool, sized by SetGlobalThreads.
ThreadPool& GlobalPool();

// ---- Hogwild helpers ----
//
// Unsynchronised SGD (Recht et al. 2011) intentionally races on the shared
// embedding matrices; lost updates are statistically benign. These wrappers
// make every such access a relaxed atomic so the races are well-defined
// C++ (and invisible to -fsanitize=thread) while compiling to plain
// loads/stores on x86-64 and AArch64.

inline float RelaxedLoad(const float* p) {
  float v;
  __atomic_load(p, &v, __ATOMIC_RELAXED);
  return v;
}

inline void RelaxedStore(float* p, float v) {
  __atomic_store(p, &v, __ATOMIC_RELAXED);
}

/// Hogwild accumulate: racy read-add-write (not a CAS loop; a concurrent
/// writer's delta may be lost, which Hogwild tolerates by design).
inline void RelaxedAdd(float* p, float delta) {
  RelaxedStore(p, RelaxedLoad(p) + delta);
}

}  // namespace imr::util

#endif  // IMR_UTIL_THREAD_POOL_H_
