// Read-only memory-mapped file with RAII unmap — the storage layer for
// zero-copy (IMRS v2) snapshot loading. The mapping retains its file
// descriptor, so the bytes stay valid even after the path is unlinked or
// replaced on disk: a serving generation can keep borrowing rows from a
// snapshot whose file a deployer already rotated away.
//
// Two modes, one interface:
//   - mapped:   mmap(MAP_PRIVATE, PROT_READ); pages fault in lazily, so
//               opening a multi-GB snapshot costs O(header), not O(bytes).
//   - fallback: the whole file read into an owned heap buffer. Selected
//               when mmap is unavailable (or forced with IMR_NO_MMAP=1 so
//               tests can exercise the path on any host).
//
// PrivateCopy() is the delta-apply primitive: it returns a fresh WRITABLE
// MAP_PRIVATE view of the same file bytes. The kernel copy-on-writes only
// the pages actually stored to, so patching k touched embedding rows dirties
// O(k) pages while every untouched block stays aliased to the base file —
// block-aliasing without any explicit block bookkeeping.
#ifndef IMR_UTIL_MMAP_FILE_H_
#define IMR_UTIL_MMAP_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace imr::util {

class MmapFile {
 public:
  /// Maps `path` read-only (heap fallback when mmap is unavailable).
  /// Shared ownership because borrowers (embedding-store views, snapshot
  /// layouts) pin the mapping for as long as any generation serves from it.
  [[nodiscard]] static StatusOr<std::shared_ptr<MmapFile>> Open(
      const std::string& path);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  /// False when serving from the read-into-memory fallback.
  bool mapped() const { return map_ != nullptr; }
  bool writable() const { return writable_; }
  const std::string& path() const { return path_; }

  /// A fresh writable copy-on-write view of the same file bytes (heap copy
  /// in fallback mode). Works after the path was unlinked: the mapping is
  /// re-established from the retained file descriptor, never the path.
  [[nodiscard]] StatusOr<std::shared_ptr<MmapFile>> PrivateCopy() const;

  /// Mutable bytes; only valid on a PrivateCopy() result.
  uint8_t* mutable_data();

 private:
  int fd_ = -1;            // retained for PrivateCopy after unlink
  void* map_ = nullptr;    // mmap base; nullptr in fallback mode
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool writable_ = false;
  std::vector<uint8_t> heap_;  // fallback storage
  std::string path_;
};

}  // namespace imr::util

#endif  // IMR_UTIL_MMAP_FILE_H_
