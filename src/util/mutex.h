// Annotated locking primitives: thin wrappers over std::mutex /
// std::condition_variable that carry clang thread-safety capability
// attributes (see util/thread_annotations.h). libstdc++'s std::mutex has no
// such attributes, so code that wants `-Wthread-safety` to prove its lock
// discipline must lock through these types instead. Outside clang they
// compile to exactly the std primitives they wrap.
//
// Condition waits deliberately take the Mutex by reference rather than a
// std::unique_lock: the wait is annotated IMR_REQUIRES(mu), so the analysis
// checks the caller holds the lock across the wait without needing lambda
// annotations. Write waits as manual `while (!pred) cv.Wait(mu);` loops so
// every guarded read stays inside the annotated caller.
#ifndef IMR_UTIL_MUTEX_H_
#define IMR_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace imr::util {

class CondVar;

/// A std::mutex with capability annotations. Prefer MutexLock for scoped
/// acquisition; call Lock/Unlock directly only for patterns RAII cannot
/// express (e.g. unlocking across a work section inside a loop).
class IMR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() IMR_ACQUIRE() { m_.lock(); }
  void Unlock() IMR_RELEASE() { m_.unlock(); }

 private:
  friend class CondVar;
  std::mutex m_;  // imr-lint: allow(mutex-guard) -- this IS the wrapper
};

/// RAII lock for Mutex, annotated as a scoped capability.
class IMR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) IMR_ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }
  ~MutexLock() IMR_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable bound to util::Mutex. All waits require the mutex
/// held; they atomically release it while blocked and reacquire before
/// returning, exactly like std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) IMR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  /// Returns false if `deadline` passed before a notification (the mutex is
  /// reacquired either way).
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      IMR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace imr::util

#endif  // IMR_UTIL_MUTEX_H_
