// Minimal leveled logging plus CHECK macros. Logging goes to stderr; the
// level can be lowered globally (benches use kWarning to keep stdout clean
// for the reported tables). Thread-safe: each message is formatted into a
// private buffer and the final stderr write is serialized by an internal
// util::Mutex, so concurrent log lines never interleave mid-line.
#ifndef IMR_UTIL_LOGGING_H_
#define IMR_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace imr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted. Thread-compatible (set once at
/// startup).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define IMR_LOG(level)                                              \
  ::imr::util::internal_logging::LogMessage(                        \
      ::imr::util::LogLevel::k##level, __FILE__, __LINE__)

// Fatal invariant check. Stays on in release builds: database-style code
// prefers a crash with context over silent corruption.
#define IMR_CHECK(condition)                                        \
  (condition) ? (void)0                                             \
              : (void)::imr::util::internal_logging::FatalMessage(  \
                    __FILE__, __LINE__, #condition)

#define IMR_CHECK_EQ(a, b) IMR_CHECK((a) == (b))
#define IMR_CHECK_NE(a, b) IMR_CHECK((a) != (b))
#define IMR_CHECK_LT(a, b) IMR_CHECK((a) < (b))
#define IMR_CHECK_LE(a, b) IMR_CHECK((a) <= (b))
#define IMR_CHECK_GT(a, b) IMR_CHECK((a) > (b))
#define IMR_CHECK_GE(a, b) IMR_CHECK((a) >= (b))

}  // namespace imr::util

#endif  // IMR_UTIL_LOGGING_H_
