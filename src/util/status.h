// Lightweight Status / StatusOr error handling, used across all IMR public
// APIs instead of exceptions. Modeled on absl::Status but self-contained.
#ifndef IMR_UTIL_STATUS_H_
#define IMR_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace imr::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kIoError = 7,
  /// The operation was refused by admission control (queue full, deadline
  /// budget exhausted); retrying later may succeed. The serve tier uses
  /// this for backpressure — the message carries a retry-after hint.
  kUnavailable = 8,
};

/// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result. Cheap to copy on the OK path.
///
/// The class itself is [[nodiscard]]: any function returning a Status by
/// value inherits the must-use obligation, and the build promotes the
/// warning to an error (-Werror=unused-result). Call sites that genuinely
/// cannot propagate must either log the error or spell out the discard
/// with a `(void)` cast next to a justification.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INVALID_ARGUMENT: why it failed".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

[[nodiscard]] Status OkStatus();
[[nodiscard]] Status InvalidArgument(std::string message);
[[nodiscard]] Status NotFound(std::string message);
[[nodiscard]] Status OutOfRange(std::string message);
[[nodiscard]] Status FailedPrecondition(std::string message);
[[nodiscard]] Status Internal(std::string message);
[[nodiscard]] Status Unimplemented(std::string message);
[[nodiscard]] Status IoError(std::string message);
[[nodiscard]] Status Unavailable(std::string message);

/// Either a value of type T or an error Status. Dereferencing a non-OK
/// StatusOr is a programming error (asserts in debug builds). [[nodiscard]]
/// for the same reason as Status: dropping one silently drops an error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define IMR_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::imr::util::Status imr_status_ = (expr);      \
    if (!imr_status_.ok()) return imr_status_;     \
  } while (0)

#define IMR_ASSIGN_OR_RETURN(lhs, expr)            \
  auto imr_statusor_##__LINE__ = (expr);           \
  if (!imr_statusor_##__LINE__.ok())               \
    return imr_statusor_##__LINE__.status();       \
  lhs = std::move(imr_statusor_##__LINE__).value()

}  // namespace imr::util

#endif  // IMR_UTIL_STATUS_H_
