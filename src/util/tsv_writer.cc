#include "util/tsv_writer.h"

#include <sys/stat.h>
#include <sys/types.h>

#include "util/string_util.h"

namespace imr::util {

Status MakeDirectories(const std::string& path) {
  if (path.empty()) return OkStatus();
  std::string partial = path[0] == '/' ? "/" : "";
  for (const std::string& piece : Split(path, '/')) {
    if (piece.empty()) continue;
    if (!partial.empty() && partial.back() != '/') partial += "/";
    partial += piece;
    if (partial == ".") continue;
    if (mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return IoError("mkdir failed for " + partial);
    }
  }
  return OkStatus();
}

TsvWriter::TsvWriter(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    status_ = MakeDirectories(path.substr(0, slash));
    if (!status_.ok()) return;
  }
  out_.open(path);
  if (!out_.is_open()) status_ = IoError("cannot open for write: " + path);
}

void TsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!status_.ok()) return;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << '\t';
    std::string cell = cells[i];
    for (char& c : cell) {
      if (c == '\t' || c == '\n' || c == '\r') c = ' ';
    }
    out_ << cell;
  }
  out_ << '\n';
  if (!out_.good()) status_ = IoError("write failed");
}

Status TsvWriter::Close() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_.good() && status_.ok()) status_ = IoError("flush failed");
    out_.close();
  }
  return status_;
}

}  // namespace imr::util
