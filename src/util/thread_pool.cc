#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <stdexcept>

#include "util/logging.h"
#include "util/mutex.h"

namespace imr::util {

namespace {
thread_local int g_region_depth = 0;
}  // namespace

// One ParallelFor invocation. Workers and the caller pull chunk indices
// from `next_chunk`. Lifetime: the Region lives on the caller's stack, so
// workers check in (under the pool mutex, when they take the region
// pointer) and check out (after their final, failed chunk claim); the
// caller may not return — and so destroy the Region — until
// checked_out == checked_in. Waiting on chunk completion alone would be a
// use-after-free: the worker that runs the last chunk still loops back
// for one more next_chunk.fetch_add before it notices the region drained.
struct ThreadPool::Region {
  int64_t begin = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  int64_t end = 0;
  const std::function<void(int64_t, int64_t, int64_t)>* fn = nullptr;
  std::atomic<int64_t> next_chunk{0};
  // checked_in/checked_out are guarded by the owning pool's mutex_; that
  // guard is not expressible as an annotation from this struct, so the
  // invariant is enforced by review (and by TSan) rather than by clang.
  int64_t checked_in = 0;
  int64_t checked_out = 0;
  Mutex exception_mutex;
  std::exception_ptr first_exception IMR_GUARDED_BY(exception_mutex);
};

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

int64_t ThreadPool::NumChunks(int64_t begin, int64_t end, int64_t grain) {
  if (grain <= 0) {
    // The one deliberate exception to the Status-only error model: grain is
    // a compile-time-ish programming error, and ParallelFor's return value
    // is reserved for chunk-body exceptions.
    throw std::invalid_argument(  // imr-lint: allow(no-throw)
        "ParallelFor grain must be positive");
  }
  if (end <= begin) return 0;
  return (end - begin + grain - 1) / grain;
}

bool ThreadPool::InParallelRegion() { return g_region_depth > 0; }

void ThreadPool::RunRegion(Region* region) {
  while (true) {
    const int64_t chunk = region->next_chunk.fetch_add(1);
    if (chunk >= region->num_chunks) break;
    const int64_t lo = region->begin + chunk * region->grain;
    const int64_t hi = std::min(region->end, lo + region->grain);
    ++g_region_depth;
    try {
      (*region->fn)(lo, hi, chunk);
    } catch (...) {
      MutexLock lock(region->exception_mutex);
      if (!region->first_exception) {
        region->first_exception = std::current_exception();
      }
    }
    --g_region_depth;
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  while (true) {
    Region* region = nullptr;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ &&
             (active_region_ == nullptr || region_epoch_ == seen_epoch)) {
        wake_.Wait(mutex_);
      }
      if (shutdown_) return;
      seen_epoch = region_epoch_;
      region = active_region_;
      ++region->checked_in;
    }
    RunRegion(region);
    {
      MutexLock lock(mutex_);
      ++region->checked_out;
    }
    // After the check-out above this thread never touches `region` again,
    // so the caller is free to destroy it once it observes the count.
    done_.NotifyAll();
  }
}

void ThreadPool::ParallelForChunks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  const int64_t num_chunks = NumChunks(begin, end, grain);  // validates grain
  if (num_chunks == 0) return;

  // Sequential fast paths: one-thread pool, a single chunk, or a nested
  // call from inside a chunk body (inline keeps thread-local state — rngs,
  // gradient sinks — attached to the logical task).
  if (threads_ == 1 || num_chunks == 1 || InParallelRegion()) {
    std::exception_ptr first;
    for (int64_t chunk = 0; chunk < num_chunks; ++chunk) {
      const int64_t lo = begin + chunk * grain;
      const int64_t hi = std::min(end, lo + grain);
      ++g_region_depth;
      try {
        fn(lo, hi, chunk);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
      --g_region_depth;
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  Region region;
  region.begin = begin;
  region.end = end;
  region.grain = grain;
  region.num_chunks = num_chunks;
  region.fn = &fn;
  // Regions are serialized: a second top-level submitter blocks here until
  // the first region fully drains instead of tripping the single-region
  // invariant below. (Chunk bodies never reach this point — nested calls
  // took the inline fast path above — so this cannot self-deadlock.)
  MutexLock submit_lock(submit_mutex_);
  {
    MutexLock lock(mutex_);
    IMR_CHECK(active_region_ == nullptr);
    active_region_ = &region;
    ++region_epoch_;
  }
  wake_.NotifyAll();
  RunRegion(&region);  // the caller is a full participant
  {
    // All chunks were claimed either by this thread (done: RunRegion
    // returned) or by a checked-in worker, so checked_out == checked_in
    // implies both "every chunk finished" and "no worker still holds the
    // region pointer". Workers can only check in while active_region_ is
    // set, and we clear it in the same critical section that observes the
    // final count, so no worker checks in afterwards.
    MutexLock lock(mutex_);
    while (region.checked_out != region.checked_in) {
      done_.Wait(mutex_);
    }
    active_region_ = nullptr;
  }
  std::exception_ptr first;
  {
    MutexLock lock(region.exception_mutex);
    first = region.first_exception;
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  ParallelForChunks(begin, end, grain,
                    [&fn](int64_t lo, int64_t hi, int64_t) { fn(lo, hi); });
}

void TreeReduce(ThreadPool* pool, std::vector<std::vector<float>>* parts) {
  IMR_CHECK(parts != nullptr);
  const size_t count = parts->size();
  if (count < 2) return;
  const size_t n = (*parts)[0].size();
  for (const auto& part : *parts) IMR_CHECK_EQ(part.size(), n);
  // Stride-doubling pairwise merge: parts[i] += parts[i + stride]. The tree
  // shape depends only on `count`, so float summation order is fixed
  // regardless of how many threads execute the merges.
  for (size_t stride = 1; stride < count; stride *= 2) {
    const size_t pairs = (count - stride + 2 * stride - 1) / (2 * stride);
    auto merge_pair = [&](int64_t lo, int64_t hi, int64_t) {
      for (int64_t p = lo; p < hi; ++p) {
        const size_t left = static_cast<size_t>(p) * 2 * stride;
        const size_t right = left + stride;
        if (right >= count) continue;
        float* dst = (*parts)[left].data();
        const float* src = (*parts)[right].data();
        for (size_t i = 0; i < n; ++i) dst[i] += src[i];
      }
    };
    if (pool != nullptr && pairs > 1) {
      pool->ParallelForChunks(0, static_cast<int64_t>(pairs), 1, merge_pair);
    } else {
      merge_pair(0, static_cast<int64_t>(pairs), 0);
    }
  }
}

namespace {

Mutex g_pool_mutex;
int g_requested_threads IMR_GUARDED_BY(g_pool_mutex) = 0;  // 0 = hw conc.
std::unique_ptr<ThreadPool> g_pool IMR_GUARDED_BY(g_pool_mutex);

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

void SetGlobalThreads(int threads) {
  MutexLock lock(g_pool_mutex);
  g_requested_threads = threads > 0 ? threads : 0;
  const int resolved = ResolveThreads(g_requested_threads);
  if (g_pool != nullptr && g_pool->threads() != resolved) g_pool.reset();
}

int GlobalThreads() {
  MutexLock lock(g_pool_mutex);
  return ResolveThreads(g_requested_threads);
}

ThreadPool& GlobalPool() {
  MutexLock lock(g_pool_mutex);
  if (g_pool == nullptr) {
    g_pool = std::make_unique<ThreadPool>(ResolveThreads(g_requested_threads));
  }
  return *g_pool;
}

}  // namespace imr::util
