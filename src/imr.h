// Umbrella header for the IMR library — implicit mutual relations for
// neural relation extraction (Kuang et al., ICDE 2020), reimplemented in
// C++20 with all of its substrates.
//
// Typical usage (see examples/quickstart.cpp):
//   #include "imr.h"
//   auto dataset = imr::datagen::MakeGdsLike({});
//   auto bags = imr::re::BagDataset::Build(...);
//   imr::graph::ProximityGraph proximity(...);
//   auto embeddings = imr::graph::TrainLine(proximity, {});
//   bags.AttachMutualRelations(embeddings);
//   imr::re::PaModel model(config, &rng);
//   imr::re::TrainAndEvaluate(&model, bags.train_bags(), bags.test_bags(), {});
#ifndef IMR_IMR_H_
#define IMR_IMR_H_

#include "datagen/distant_supervision.h"   // IWYU pragma: export
#include "datagen/presets.h"               // IWYU pragma: export
#include "datagen/stats.h"                 // IWYU pragma: export
#include "datagen/templates.h"             // IWYU pragma: export
#include "datagen/unlabeled.h"             // IWYU pragma: export
#include "datagen/world.h"                 // IWYU pragma: export
#include "eval/aggregate.h"                // IWYU pragma: export
#include "eval/buckets.h"                  // IWYU pragma: export
#include "eval/heldout.h"                  // IWYU pragma: export
#include "eval/metrics.h"                  // IWYU pragma: export
#include "eval/per_relation.h"             // IWYU pragma: export
#include "graph/alias_sampler.h"           // IWYU pragma: export
#include "graph/ann/ann_index.h"           // IWYU pragma: export
#include "graph/ann/flat_index.h"          // IWYU pragma: export
#include "graph/ann/ivf_index.h"           // IWYU pragma: export
#include "graph/deepwalk.h"                // IWYU pragma: export
#include "graph/embedding_store.h"         // IWYU pragma: export
#include "graph/line.h"                    // IWYU pragma: export
#include "graph/node2vec.h"                // IWYU pragma: export
#include "graph/propagation.h"             // IWYU pragma: export
#include "graph/proximity_graph.h"         // IWYU pragma: export
#include "kg/knowledge_graph.h"            // IWYU pragma: export
#include "kg/types.h"                      // IWYU pragma: export
#include "nn/attention.h"                  // IWYU pragma: export
#include "nn/encoders.h"                   // IWYU pragma: export
#include "nn/gradcheck.h"                  // IWYU pragma: export
#include "nn/layers.h"                     // IWYU pragma: export
#include "nn/optimizer.h"                  // IWYU pragma: export
#include "re/bag_dataset.h"                // IWYU pragma: export
#include "re/cnn_rl.h"                     // IWYU pragma: export
#include "re/config.h"                     // IWYU pragma: export
#include "re/knn_predictor.h"              // IWYU pragma: export
#include "re/mimlre.h"                     // IWYU pragma: export
#include "re/mintz.h"                      // IWYU pragma: export
#include "re/multir.h"                     // IWYU pragma: export
#include "re/pa_model.h"                   // IWYU pragma: export
#include "re/trainer.h"                    // IWYU pragma: export
#include "serve/admission.h"               // IWYU pragma: export
#include "serve/delta.h"                   // IWYU pragma: export
#include "serve/inference_engine.h"        // IWYU pragma: export
#include "serve/lru_cache.h"               // IWYU pragma: export
#include "serve/model_state.h"             // IWYU pragma: export
#include "serve/router.h"                  // IWYU pragma: export
#include "serve/sharded_cache.h"           // IWYU pragma: export
#include "serve/snapshot.h"                // IWYU pragma: export
#include "serve/snapshot_watcher.h"        // IWYU pragma: export
#include "tensor/ops.h"                    // IWYU pragma: export
#include "tensor/tensor.h"                 // IWYU pragma: export
#include "text/corpus_io.h"                // IWYU pragma: export
#include "text/position.h"                 // IWYU pragma: export
#include "text/sentence.h"                 // IWYU pragma: export
#include "text/tokenizer.h"                // IWYU pragma: export
#include "text/vocab.h"                    // IWYU pragma: export
#include "util/flags.h"                    // IWYU pragma: export
#include "util/logging.h"                  // IWYU pragma: export
#include "util/mmap_file.h"                // IWYU pragma: export
#include "util/rng.h"                      // IWYU pragma: export
#include "util/serialization.h"            // IWYU pragma: export
#include "util/status.h"                   // IWYU pragma: export
#include "util/thread_pool.h"              // IWYU pragma: export
#include "util/tsv_writer.h"               // IWYU pragma: export

#endif  // IMR_IMR_H_
